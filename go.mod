module react

go 1.22
