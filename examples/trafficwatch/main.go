// Trafficwatch: the paper's motivating scenario — real-time traffic
// estimation over a city. Requesters ask about road segments at specific
// coordinates; the scheduler uses a blended weight function (quality +
// geographic proximity, §IV.A) so that, among workers who can make the
// deadline, the ones physically near the segment are preferred. The example
// prints, for each answered task, how far the chosen worker was from the
// segment — demonstrating location-aware assignment.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"react/internal/core"
	"react/internal/region"
	"react/internal/schedule"
	"react/internal/taskq"
)

// athens is the city bounding box.
var athens = region.Rect{MinLat: 37.85, MinLon: 23.60, MaxLat: 38.10, MaxLon: 23.90}

func main() {
	// Weight = 50% historical quality + 50% proximity within 8 km.
	weight := schedule.Blend(
		schedule.Term{Coef: 0.5, Fn: schedule.QualityWeight},
		schedule.Term{Coef: 0.5, Fn: schedule.DistanceWeight(8)},
	)
	srv := core.New(core.Options{
		BatchPoll:     10 * time.Millisecond,
		MonitorPeriod: 100 * time.Millisecond,
		Schedule: schedule.Config{
			Weight:      weight,
			BatchBound:  4,
			BatchPeriod: 50 * time.Millisecond,
		},
	})
	srv.Start()
	defer srv.Stop()

	rng := rand.New(rand.NewSource(7))
	var mu sync.Mutex
	workerLoc := map[string]region.Point{}

	// Thirty commuters spread across the city; all fast and reliable so
	// proximity dominates the choice. Each arrives with an established
	// track record (three prior completions) — otherwise the trainee rule
	// would hand everyone maximum weight and the blend would never apply.
	var wg sync.WaitGroup
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("commuter-%02d", i)
		loc := athens.RandomPoint(rng)
		workerLoc[id] = loc
		feed, err := srv.RegisterWorker(id, loc)
		if err != nil {
			log.Fatal(err)
		}
		if p, ok := srv.Workers().Get(id); ok {
			for k := 0; k < 3; k++ {
				p.RecordCompletion("traffic", 0.02+0.01*float64(k), true)
			}
		}
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			for a := range feed {
				time.Sleep(time.Duration(10+rng.Intn(30)) * time.Millisecond)
				if _, err := srv.Complete(a.TaskID, id, "light traffic"); err == nil {
					srv.Feedback(a.TaskID, true)
				}
			}
		}(id)
	}

	// Road segments of interest: eight well-known spots.
	segments := []struct {
		name string
		loc  region.Point
	}{
		{"Kifisias Ave", region.Point{Lat: 38.05, Lon: 23.80}},
		{"Syntagma Sq", region.Point{Lat: 37.975, Lon: 23.735}},
		{"Piraeus Port", region.Point{Lat: 37.94, Lon: 23.64}},
		{"Attiki Odos", region.Point{Lat: 38.06, Lon: 23.70}},
		{"Omonoia", region.Point{Lat: 37.984, Lon: 23.728}},
		{"Glyfada Coast", region.Point{Lat: 37.87, Lon: 23.75}},
		{"Airport Rd", region.Point{Lat: 37.93, Lon: 23.88}},
		{"Ring Road W", region.Point{Lat: 38.00, Lon: 23.65}},
	}
	for i, seg := range segments {
		err := srv.Submit(taskq.Task{
			ID:          fmt.Sprintf("seg-%d-%s", i, seg.name),
			Location:    seg.loc,
			Deadline:    time.Now().Add(5 * time.Second),
			Reward:      0.05,
			Category:    "traffic",
			Description: fmt.Sprintf("Is %s congested right now?", seg.name),
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Let the batcher assign and workers answer.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := srv.Stats(); int(st.Completed) == len(segments) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Report who answered each segment and from how far away.
	type answer struct {
		task, worker string
		km           float64
	}
	var answers []answer
	for i, seg := range segments {
		id := fmt.Sprintf("seg-%d-%s", i, seg.name)
		rec, ok := srv.Tasks().Get(id)
		if !ok || rec.Status != taskq.Completed {
			continue
		}
		mu.Lock()
		loc := workerLoc[rec.Worker]
		mu.Unlock()
		answers = append(answers, answer{seg.name, rec.Worker, loc.DistanceKm(seg.loc)})
	}
	sort.Slice(answers, func(i, j int) bool { return answers[i].km < answers[j].km })
	fmt.Printf("%-14s %-13s %s\n", "segment", "worker", "distance")
	var sum float64
	for _, a := range answers {
		fmt.Printf("%-14s %-13s %.1f km\n", a.task, a.worker, a.km)
		sum += a.km
	}
	if len(answers) > 0 {
		fmt.Printf("answered %d/%d segments, mean distance %.1f km (city spans ~30 km)\n",
			len(answers), len(segments), sum/float64(len(answers)))
	}
	srv.Stop()
	wg.Wait()
}
