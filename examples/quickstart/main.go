// Quickstart: embed a REACT region server in-process, run five goroutine
// workers against it, submit twenty deadline-bound tasks, and print the
// outcome. This is the smallest complete use of the middleware: register
// workers, submit tasks, drain assignment feeds, complete, grade.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"react/internal/core"
	"react/internal/region"
	"react/internal/schedule"
	"react/internal/taskq"
)

func main() {
	// A server with snappy loops: quickstart tasks live for seconds, not
	// minutes.
	srv := core.New(core.Options{
		BatchPoll:     10 * time.Millisecond,
		MonitorPeriod: 50 * time.Millisecond,
		Schedule:      schedule.Config{BatchBound: 3, BatchPeriod: 50 * time.Millisecond},
	})
	srv.Start()
	defer srv.Stop()

	athens := region.Point{Lat: 37.98, Lon: 23.73}
	var completed atomic.Int32
	var wg sync.WaitGroup

	// Five workers with different speeds. Each drains its assignment feed,
	// "works" for its personal duration, and submits an answer.
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("worker-%d", i)
		speed := time.Duration(20+30*i) * time.Millisecond
		feed, err := srv.RegisterWorker(id, athens)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for a := range feed {
				time.Sleep(speed)
				answer := fmt.Sprintf("done by %s", a.WorkerID)
				if _, err := srv.Complete(a.TaskID, a.WorkerID, answer); err == nil {
					completed.Add(1)
					// The requester grades timely work positively, which
					// feeds the Eq. 1 quality weights for future batches.
					srv.Feedback(a.TaskID, true)
				}
			}
		}()
	}

	// Twenty tasks with 2-second deadlines.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		err := srv.Submit(taskq.Task{
			ID:          fmt.Sprintf("task-%02d", i),
			Location:    athens,
			Deadline:    time.Now().Add(2 * time.Second),
			Reward:      0.01 + rng.Float64()*0.09,
			Category:    "traffic",
			Description: "Is the ring road congested?",
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	// Wait for everything to finish (bounded).
	deadline := time.Now().Add(10 * time.Second)
	for completed.Load() < 20 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	srv.Stop() // closes feeds so the workers exit
	wg.Wait()

	st := srv.Stats()
	fmt.Printf("submitted 20 tasks → completed %d, on time %d, batches %d, matcher time %v\n",
		st.Completed, st.OnTime, st.Batches, st.MatcherTime.Round(time.Microsecond))
	for _, p := range srv.Workers().All() {
		acc, _ := p.OverallAccuracy()
		fmt.Printf("  %s finished %d tasks (accuracy %.2f)\n", p.ID(), p.Finished(), acc)
	}
}
