// Overload: the paper's future-work remedy (§V.D, §VII). At large graph
// sizes and rates "the task assignment process cannot be sustained by the
// system ... One possible solution is to split the regions so that each of
// the servers would contain sufficient workers and tasks without being
// overloaded."
//
// This example shows both halves on the deterministic simulation substrate:
//
//  1. one region server with the whole metropolitan crowd (2000 workers,
//     40 tasks/s, cycle budget scaled up for the larger graph) drowns in
//     matcher latency and misses deadlines; then
//  2. the load-adaptive quadtree (internal/region.Tree) splits the area,
//     and the same workload sharded across the four child regions — each
//     its own REACT server — meets its deadlines again.
package main

import (
	"fmt"
	"math/rand"
	"time"

	"react/internal/experiments"
	"react/internal/region"
)

func main() {
	const (
		totalWorkers = 2000
		totalRate    = 40.0 // tasks/s across the metro area
		span         = 180 * time.Second
		seed         = 7
	)

	// Part 1: the quadtree decides the decomposition. Register the crowd's
	// locations; the root splits once its load passes the per-server
	// capacity.
	area := region.Rect{MinLat: 37.8, MinLon: 23.5, MaxLat: 38.2, MaxLon: 24.0}
	tree, err := region.NewTree(area, 600, 1)
	if err != nil {
		panic(err)
	}
	rng := rand.New(rand.NewSource(seed))
	locations := make([]region.Point, totalWorkers)
	for i := range locations {
		locations[i] = area.RandomPoint(rng)
		tree.Add(locations[i])
	}
	// Count per leaf under the *final* decomposition (workers registered
	// before the split were credited to the root at Add time).
	counts := map[string]int{}
	for _, loc := range locations {
		counts[tree.Locate(loc)]++
	}
	fmt.Printf("quadtree split the area %d time(s); leaves:\n", tree.Splits())
	for _, leaf := range tree.Leaves() {
		fmt.Printf("  %-8s %4d workers  %v\n", leaf.ID, counts[leaf.ID], leaf.Bounds)
	}

	// Part 2a: one server for everything, cycles scaled to the graph size
	// as §IV.A prescribes for large graphs.
	single := experiments.RunScenario(experiments.ScenarioConfig{
		Technique:   experiments.REACTTechnique(2000, seed),
		Workers:     totalWorkers,
		Rate:        totalRate,
		TargetTasks: int(totalRate * span.Seconds()),
		Seed:        seed,
	})

	// Part 2b: four region servers, each with a quarter of the crowd and a
	// quarter of the stream (locations are uniform, so the quadtree shards
	// evenly), back at the default 1000-cycle budget.
	var splitOnTime, splitReceived int
	for i := 0; i < 4; i++ {
		r := experiments.RunScenario(experiments.ScenarioConfig{
			Technique:   experiments.REACTTechnique(1000, seed+int64(i)),
			Workers:     totalWorkers / 4,
			Rate:        totalRate / 4,
			TargetTasks: int(totalRate / 4 * span.Seconds()),
			Seed:        seed + int64(i),
		})
		splitOnTime += r.CompletedOnTime
		splitReceived += r.Received
	}

	fmt.Printf("\n%-22s %-10s %-10s %s\n", "deployment", "received", "on-time", "on-time %")
	fmt.Printf("%-22s %-10d %-10d %.1f%%\n", "single region server",
		single.Received, single.CompletedOnTime, 100*single.OnTimeFraction())
	fmt.Printf("%-22s %-10d %-10d %.1f%%\n", "4 split regions",
		splitReceived, splitOnTime, 100*float64(splitOnTime)/float64(splitReceived))
	fmt.Printf("\nsingle-server matcher spent %.0fs of the %.0fs experiment matching (queueing!)\n",
		single.MatcherBusy, span.Seconds())
}
