// Imagesearch: a CrowdSearch-style workload (the paper's reference [16]) —
// an image search engine validates its candidate results with the crowd
// under a tight deadline. Each candidate image becomes three replica
// validation tasks (internal/voting); the engine takes the majority vote of
// whatever answers arrive before the deadline. The example shows how a
// requester layers redundancy and voting on top of REACT's
// single-assignment model, and how the deadline bounds end-to-end search
// latency even when some workers are slow or wrong.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"
	"sync"
	"time"

	"react/internal/core"
	"react/internal/region"
	"react/internal/schedule"
	"react/internal/taskq"
	"react/internal/voting"
)

const (
	replicas    = 3               // duplicate validations per candidate image
	searchSLA   = 3 * time.Second // end-to-end deadline for the whole search
	nCandidates = 6
)

func main() {
	votes := voting.NewCollector(0) // strict-majority quorum

	srv := core.New(core.Options{
		BatchPoll:     10 * time.Millisecond,
		MonitorPeriod: 50 * time.Millisecond,
		Schedule:      schedule.Config{BatchBound: 2, BatchPeriod: 30 * time.Millisecond},
		OnResult: func(r core.Result) {
			if r.Expired || !r.MetDeadline {
				return // late answers don't make it into the vote
			}
			if err := votes.Vote(r.TaskID, r.Answer); err != nil {
				log.Printf("stray result %s: %v", r.TaskID, err)
			}
		},
	})
	srv.Start()
	defer srv.Stop()

	loc := region.Point{Lat: 37.98, Lon: 23.73}
	rng := rand.New(rand.NewSource(99))

	// Validators: mostly careful (right 90% of the time), a few sloppy.
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		id := fmt.Sprintf("validator-%02d", i)
		careful := i < 9
		feed, err := srv.RegisterWorker(id, loc)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go func(id string, careful bool) {
			defer wg.Done()
			for a := range feed {
				time.Sleep(time.Duration(20+rng.Intn(80)) * time.Millisecond)
				// Ground truth is encoded in the task description; careful
				// workers read it, sloppy ones often guess.
				vote := strings.Contains(a.Description, "[match]")
				p := 0.9
				if !careful {
					p = 0.55
				}
				if rng.Float64() > p {
					vote = !vote
				}
				answer := "no"
				if vote {
					answer = "yes"
				}
				if _, err := srv.Complete(a.TaskID, id, answer); err == nil {
					srv.Feedback(a.TaskID, true)
				}
			}
		}(id, careful)
	}

	// Six candidate images; half genuinely match the query. Each becomes a
	// poll of `replicas` validation tasks.
	truth := map[string]bool{}
	deadline := time.Now().Add(searchSLA)
	for i := 0; i < nCandidates; i++ {
		name := fmt.Sprintf("img-%d", i)
		truth[name] = i%2 == 0
		tag := ""
		if truth[name] {
			tag = " [match]"
		}
		tasks, err := votes.Plan(taskq.Task{
			ID:          name,
			Location:    loc,
			Deadline:    deadline,
			Reward:      0.02,
			Category:    "image-validation",
			Description: fmt.Sprintf("Does %s show the query object?%s", name, tag),
		}, replicas)
		if err != nil {
			log.Fatal(err)
		}
		for _, task := range tasks {
			if err := srv.Submit(task); err != nil {
				log.Fatal(err)
			}
		}
	}

	// The search engine answers at the SLA with whatever votes arrived.
	time.Sleep(searchSLA + 500*time.Millisecond)
	fmt.Printf("%-8s %-6s %-7s %-8s %-7s %s\n", "image", "truth", "votes", "verdict", "quorum", "correct")
	correct := 0
	for _, v := range votes.Verdicts() {
		verdict := v.Answer == "yes"
		ok := verdict == truth[v.PollID]
		if ok {
			correct++
		}
		fmt.Printf("%-8s %-6v %d/%d     %-8v %-7v %v\n",
			v.PollID, truth[v.PollID], v.Votes, v.Total, verdict, v.Quorum, ok)
	}
	st := srv.Stats()
	fmt.Printf("verdicts correct: %d/%d; validations on time %d/%d within the %v SLA\n",
		correct, nCandidates, st.OnTime, nCandidates*replicas, searchSLA)
	srv.Stop()
	wg.Wait()
}
