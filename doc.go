// Package react is a Go reproduction of REACT ("REAl-time schEduling for
// Crowd-based Tasks"), the crowdsourcing middleware of Boutsis and
// Kalogeraki, "Crowdsourcing under Real-Time Constraints", IPPS/IPDPS 2013.
//
// REACT assigns crowd tasks to human workers under soft real-time
// deadlines. Its two ideas are (1) an online weighted-bipartite-matching
// heuristic that computes a high-weight assignment for each batch of
// unassigned tasks in bounded time, and (2) a per-worker power-law model of
// completion times whose CCDF both prunes hopeless worker/task edges before
// matching and revokes running assignments whose probability of finishing
// before the deadline has collapsed.
//
// The implementation lives in the internal packages:
//
//   - internal/bipartite — the weighted bipartite graph and matching state
//   - internal/matching  — REACT (Algorithm 1), Metropolis, Greedy, Uniform,
//     and an exact Hungarian reference solver
//   - internal/powerlaw  — the paper's execution-time model (Eqs. 2 and 3)
//   - internal/profile, internal/taskq, internal/schedule,
//     internal/dynassign — the four server components of Figure 1
//   - internal/core      — the deployable region server
//   - internal/wire      — the JSON/TCP protocol (PlanetLab substitute)
//   - internal/federation — multi-region routing by geography
//   - internal/region    — spatial decomposition, incl. overload splitting
//   - internal/voting    — requester-side replication and majority verdicts
//   - internal/trace     — per-task lifecycle recording
//   - internal/sim, internal/crowd, internal/workload, internal/metrics,
//     internal/loadgen, internal/experiments — the evaluation substrate
//     that regenerates every figure of the paper
//
// Binaries: cmd/reactd (region server), cmd/reactctl (client CLI),
// cmd/reactsim (figure regeneration), cmd/reactbench (matcher sweeps).
// Runnable scenarios live under examples/. The benchmarks in bench_test.go
// regenerate each figure via `go test -bench`.
package react
