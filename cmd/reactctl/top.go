package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"react/internal/obs"
)

// runTop scrapes a reactd observability plane and renders the /statusz
// snapshot as a terminal dashboard. -raw dumps the Prometheus /metrics
// exposition verbatim instead, for piping into other tools.
func runTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	obsAddr := fs.String("obs", "localhost:9090", "observability plane address (reactd -http)")
	workers := fs.Int("workers", 10, "worker rows to show per region (0 = all)")
	raw := fs.Bool("raw", false, "dump the raw /metrics exposition and exit")
	timeout := fs.Duration("timeout", 5*time.Second, "scrape timeout")
	fs.Parse(args)

	client := &http.Client{Timeout: *timeout}
	base := "http://" + *obsAddr

	if *raw {
		return dumpMetrics(client, base)
	}

	resp, err := client.Get(fmt.Sprintf("%s/statusz?workers=%d", base, *workers))
	if err != nil {
		return fmt.Errorf("top: scrape %s: %w", base, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("top: read: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("top: %s returned %s: %s", base, resp.Status, body)
	}
	var st obs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		return fmt.Errorf("top: bad /statusz payload: %w", err)
	}
	render(st)
	return nil
}

func dumpMetrics(client *http.Client, base string) error {
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("top: scrape %s: %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("top: %s returned %s: %s", base, resp.Status, body)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

func render(st obs.Status) {
	fmt.Printf("reactd at %s, up %s\n", st.Now, time.Duration(st.UptimeSeconds*float64(time.Second)).Round(time.Second))
	for _, r := range st.Regions {
		e := r.Engine
		fmt.Printf("\nregion %s: workers %d online / %d known, backlog %d, retained %d\n",
			r.ID, r.WorkersOnline, r.WorkersKnown, r.TasksBacklog, r.TasksRetained)
		fmt.Printf("  received %d  assigned %d  completed %d  on-time %d  expired %d  reassigned %d\n",
			e.Received, e.Assigned, e.Completed, e.OnTime, e.Expired, e.Reassigned)
		fmt.Printf("  batches %d  matcher %.3fs total\n", e.Batches, e.MatcherTimeSeconds)

		if a := r.Admission; a != nil {
			model := "(cold)"
			if a.MedianExecSeconds > 0 {
				model = fmt.Sprintf("median %.2fs, capacity %.1f/s", a.MedianExecSeconds, a.CapacityPerSec)
			}
			fmt.Printf("  admission: floor %.2f  inflight %d/%d  fleet model %s (%d samples)\n",
				a.ProbFloor, a.Inflight, a.MaxInflight, model, a.FleetSamples)
			fmt.Printf("  admission: admitted %d  rejected %d prob / %d rate  shed %d\n",
				a.Admitted, a.RejectedProbability, a.RejectedRate, a.Shed)
			for _, b := range a.Buckets {
				fmt.Printf("  admission: bucket %-12s %.1f/%.1f tokens\n", b.Requester, b.Fill, b.Burst)
			}
		}

		if len(r.Shards) > 0 {
			fmt.Printf("  %-6s %-11s %-9s %-9s %s\n", "shard", "unassigned", "assigned", "terminal", "highwater")
			for _, s := range r.Shards {
				fmt.Printf("  %-6d %-11d %-9d %-9d %d\n",
					s.Shard, s.Unassigned, s.Assigned, s.Terminal, s.UnassignedHighWater)
			}
		}

		if len(r.Workers) > 0 {
			fmt.Printf("  %-12s %-5s %-6s %-9s %-9s %-8s %s\n",
				"worker", "conn", "avail", "finished", "accuracy", "samples", "model")
			for _, w := range r.Workers {
				acc := "-"
				if w.Accuracy != nil {
					acc = fmt.Sprintf("%.2f", *w.Accuracy)
				}
				model := "(training)"
				if w.Model != nil {
					model = fmt.Sprintf("alpha=%.2f kmin=%.2f n=%d", w.Model.Alpha, w.Model.Kmin, w.Model.N)
				}
				fmt.Printf("  %-12s %-5v %-6v %-9d %-9s %-8d %s\n",
					w.ID, w.Connected, w.Available, w.Finished, acc, w.FitSamples, model)
			}
			if r.WorkersElided > 0 {
				fmt.Printf("  ... %d more workers (rerun with -workers 0)\n", r.WorkersElided)
			}
		}
	}
}
