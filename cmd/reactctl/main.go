// Command reactctl is the client CLI for a reactd region server.
//
// Usage:
//
//	reactctl -addr localhost:7341 stats
//	reactctl -addr localhost:7341 submit -id t1 -deadline 90s -category traffic -desc "Is road A congested?"
//	reactctl -addr localhost:7341 task -id t1
//	reactctl -addr localhost:7341 work -id alice -min 1s -max 5s -quality 0.9
//	reactctl -addr localhost:7341 watch
//	reactctl -addr localhost:7341 tail -id t1
//	reactctl top -obs localhost:9090
//
// "work" emulates a crowd worker with the §V.C behaviour model: it
// registers, receives assignments, works for a random time inside its band
// (occasionally delaying), and submits an answer. "watch" streams every
// task result and grades it with positive feedback when it met the
// deadline. "tail" streams the engine's lifecycle event spine — one row
// per submit/assign/revoke/complete/expire/forget transition; with -id it
// follows a single task and exits at its terminal event. "top" scrapes a
// reactd observability plane (-http) and renders the /statusz snapshot; it
// talks HTTP, not the wire protocol.
//
// Exit status: 0 on success, 1 when the server reported an error or a
// streaming connection was lost, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"time"

	"react/internal/crowd"
	"react/internal/wire"
)

func main() {
	addr := flag.String("addr", "localhost:7341", "region server address")
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
	}
	cmd, args := flag.Arg(0), flag.Args()[1:]

	// top speaks HTTP to the observability plane, not the wire protocol;
	// handle it before dialing so it works against a reactd whose protocol
	// port is busy or firewalled.
	if cmd == "top" {
		if err := runTop(args); err != nil {
			log.Fatalf("reactctl: %v", err)
		}
		return
	}

	client, err := wire.Dial(*addr)
	if err != nil {
		log.Fatalf("reactctl: dial %s: %v", *addr, err)
	}
	defer client.Close()

	switch cmd {
	case "stats":
		err = runStats(client)
	case "regions":
		err = runRegions(client)
	case "submit":
		err = runSubmit(client, args)
	case "task":
		err = runTask(client, args)
	case "work":
		err = runWork(client, args)
	case "watch":
		err = runWatch(client)
	case "tail":
		err = runTail(client, args)
	default:
		usage()
	}
	if err != nil {
		client.Close()
		log.Fatalf("reactctl: %v", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: reactctl [-addr host:port] {stats|regions|submit|task|work|watch|tail|top} [flags]")
	os.Exit(2)
}

func runStats(c *wire.Client) error {
	st, err := c.Stats()
	if err != nil {
		return err
	}
	fmt.Printf("received    %d\nassigned    %d\ncompleted   %d\non-time     %d\nexpired     %d\nreassigned  %d\nbatches     %d\nworkers     %d (known %d)\n",
		st.Received, st.Assigned, st.Completed, st.OnTime, st.Expired,
		st.Reassigned, st.Batches, st.WorkersOnline, st.WorkersKnown)
	return nil
}

func runRegions(c *wire.Client) error {
	regions, err := c.Regions()
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-9s %-9s %-9s %-8s %s\n",
		"region", "received", "ontime", "expired", "workers", "reassigned")
	for _, r := range regions {
		fmt.Printf("%-10s %-9d %-9d %-9d %-8d %d\n",
			r.Region, r.Stats.Received, r.Stats.OnTime, r.Stats.Expired,
			r.Stats.WorkersOnline, r.Stats.Reassigned)
	}
	return nil
}

func runSubmit(c *wire.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	id := fs.String("id", "", "task id (required)")
	deadline := fs.Duration("deadline", 90*time.Second, "relative deadline")
	category := fs.String("category", "traffic", "task category")
	desc := fs.String("desc", "", "task description")
	lat := fs.Float64("lat", 37.98, "task latitude")
	lon := fs.Float64("lon", 23.73, "task longitude")
	reward := fs.Float64("reward", 0.05, "reward in dollars")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("submit: -id is required")
	}
	err := c.Submit(wire.TaskPayload{
		ID: *id, Lat: *lat, Lon: *lon,
		DeadlineMS: deadline.Milliseconds(),
		Reward:     *reward, Category: *category, Description: *desc,
	})
	if err != nil {
		return err
	}
	fmt.Printf("submitted %s (deadline %v)\n", *id, *deadline)
	return nil
}

func runTask(c *wire.Client, args []string) error {
	fs := flag.NewFlagSet("task", flag.ExitOnError)
	id := fs.String("id", "", "task id (required)")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("task: -id is required")
	}
	st, err := c.TaskStatus(*id)
	if err != nil {
		return err
	}
	fmt.Printf("task     %s\nstate    %s\n", st.TaskID, st.State)
	if st.Worker != "" {
		fmt.Printf("worker   %s\n", st.Worker)
	}
	if st.State == "completed" {
		fmt.Printf("on-time  %v\n", st.MetDeadline)
	}
	return nil
}

func runWork(c *wire.Client, args []string) error {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	id := fs.String("id", "", "worker id (required)")
	lat := fs.Float64("lat", 37.98, "worker latitude")
	lon := fs.Float64("lon", 23.73, "worker longitude")
	minExec := fs.Duration("min", time.Second, "fastest completion")
	maxExec := fs.Duration("max", 5*time.Second, "slowest base completion")
	delayP := fs.Float64("delay-prob", 0, "probability of delaying a task")
	maxDelay := fs.Duration("max-delay", 30*time.Second, "worst delayed completion")
	//lint:ignore clocktaint interactive default: a fresh seed per run is the point; pass -seed to reproduce
	seed := fs.Int64("seed", time.Now().UnixNano(), "behaviour seed")
	fs.Parse(args)
	if *id == "" {
		return fmt.Errorf("work: -id is required")
	}
	b := crowd.Behavior{
		MinExec: *minExec, MaxExec: *maxExec,
		DelayProb: *delayP, MaxDelay: *maxDelay, Quality: 1,
	}
	if err := b.Validate(); err != nil {
		return fmt.Errorf("work: %v", err)
	}
	if err := c.Register(*id, *lat, *lon); err != nil {
		return err
	}
	log.Printf("worker %s online; waiting for assignments", *id)
	rng := rand.New(rand.NewSource(*seed))
	for a := range c.Assignments() {
		exec := b.ExecTime(rng)
		log.Printf("assigned %s (%s, %.0fs left) — working %v",
			a.TaskID, a.Category, float64(a.DeadlineMS)/1000, exec)
		time.Sleep(exec)
		answer := fmt.Sprintf("answer to %q from %s", a.Description, *id)
		if err := c.Complete(a.TaskID, *id, answer); err != nil {
			log.Printf("complete %s: %v (likely reassigned)", a.TaskID, err)
			continue
		}
		log.Printf("completed %s", a.TaskID)
	}
	// The assignment stream only closes when the connection dies; a worker
	// that stops serving by accident must not report success.
	return fmt.Errorf("work: connection to server lost")
}

// runTail streams the engine's lifecycle event spine. With -id it follows
// one task's timeline and exits 0 at its terminal event (complete, expire,
// or forget); without it the stream runs until the connection drops.
func runTail(c *wire.Client, args []string) error {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	id := fs.String("id", "", "task id (empty streams every task)")
	fs.Parse(args)
	if err := c.WatchEvents(*id); err != nil {
		return err
	}
	if *id != "" {
		log.Printf("tailing task %s (exits at its terminal event)", *id)
	} else {
		log.Print("tailing all lifecycle events (ctrl-c to stop)")
	}
	fmt.Printf("%-8s %-21s %-9s %-16s %-12s %s\n",
		"seq", "at", "kind", "task", "worker", "detail")
	for ev := range c.Events() {
		detail := ev.Cause
		switch {
		case ev.Probability > 0:
			detail = fmt.Sprintf("%s p=%.3f", ev.Cause, ev.Probability)
		case ev.Kind == "complete":
			if ev.MetDeadline {
				detail = "on-time"
			} else {
				detail = "late"
			}
			if ev.Attempts > 1 {
				detail += fmt.Sprintf(" attempts=%d", ev.Attempts)
			}
		}
		fmt.Printf("%-8d %-21s %-9s %-16s %-12s %s\n",
			ev.Seq, time.UnixMilli(ev.AtUnixMS).Format("15:04:05.000"),
			ev.Kind, ev.TaskID, ev.Worker, detail)
		if *id != "" && ev.Terminal() {
			return nil
		}
	}
	return fmt.Errorf("tail: connection to server lost")
}

func runWatch(c *wire.Client) error {
	if err := c.Watch(); err != nil {
		return err
	}
	log.Print("watching results (ctrl-c to stop)")
	feedbackErrs := 0
	for r := range c.Results() {
		switch {
		case r.Expired:
			fmt.Printf("EXPIRED  %s\n", r.TaskID)
		case r.MetDeadline:
			fmt.Printf("ON-TIME  %s by %s: %s\n", r.TaskID, r.WorkerID, r.Answer)
			if err := c.Feedback(r.TaskID, true); err != nil {
				log.Printf("feedback %s: %v", r.TaskID, err)
				feedbackErrs++
			}
		default:
			fmt.Printf("LATE     %s by %s: %s\n", r.TaskID, r.WorkerID, r.Answer)
			if err := c.Feedback(r.TaskID, false); err != nil {
				log.Printf("feedback %s: %v", r.TaskID, err)
				feedbackErrs++
			}
		}
	}
	if feedbackErrs > 0 {
		return fmt.Errorf("watch: %d feedback(s) rejected before the stream ended", feedbackErrs)
	}
	return fmt.Errorf("watch: connection to server lost")
}
