// Command reactd runs one REACT region server: the deployable middleware of
// Figure 1, listening for workers and requesters over the JSON/TCP protocol
// in internal/wire.
//
// Usage:
//
//	reactd -addr :7341
//	reactd -addr :7341 -matcher greedy -cycles 3000 -batch-bound 10
//	reactd -addr :7341 -http :9090
//	reactd -addr :7341 -data-dir /var/lib/reactd
//
// With -data-dir set, every mutation is write-ahead journaled with
// group-commit fsync batching and the full server state — tasks, worker
// histories, counters — is recovered from the journal at startup, so a
// crash or kill -9 loses at most one fsync interval of acknowledgements
// (see docs/PERSISTENCE.md).
// Interact with it using reactctl (register workers, submit tasks, watch
// results) or any client speaking the newline-delimited JSON protocol.
// With -http set, a read-only observability plane serves /metrics
// (Prometheus text format), /statusz (JSON snapshot), and /debug/pprof/ on
// its own listener; scrape it with `reactctl top` or any collector.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"react/internal/admission"
	"react/internal/clock"
	"react/internal/core"
	"react/internal/engine"
	"react/internal/event"
	"react/internal/federation"
	"react/internal/journal"
	"react/internal/matching"
	"react/internal/metrics"
	"react/internal/obs"
	"react/internal/region"
	"react/internal/schedule"
	"react/internal/taskq"
	"react/internal/trace"
	"react/internal/wire"
)

// obsWiring carries the observability plane's registry and region list
// through server construction. Nil when -http is unset, so the metrics
// hooks cost nothing in the default configuration.
type obsWiring struct {
	reg     *metrics.Registry
	regions obs.RegionSet
}

// watchEq2 logs the Eq. 2 monitor's revocations from a bounded
// event-spine subscription, off the engine's tick goroutines. The
// subscription lives for the process; a logging stall beyond the buffer
// drops log lines, never scheduling work.
func watchEq2(eng *engine.Engine) {
	sub := eng.Events().Subscribe(256, func(ev event.Event) bool {
		return ev.Kind == event.KindRevoke && ev.Cause == taskq.CauseEq2
	})
	go func() {
		for ev := range sub.C() {
			log.Printf("reassign task=%s worker=%s eq2=%.3f", ev.Task, ev.Worker, ev.Prob)
		}
	}()
}

// attachCollector wires a fresh collector onto an engine's event spine
// and publishes its series and statusz row. adm is the region's
// admission controller (nil when the plane is disabled).
func (ow *obsWiring) attachCollector(regionID string, eng *engine.Engine, adm *admission.Controller) {
	col := obs.NewEngineCollector()
	col.Attach(eng)
	ow.register(col, regionID, eng, adm)
}

// register publishes one engine's series and statusz row.
func (ow *obsWiring) register(col *obs.EngineCollector, regionID string, eng *engine.Engine, adm *admission.Controller) {
	if err := col.Register(ow.reg, eng, metrics.L("region", regionID)); err != nil {
		// Duplicate registration is a wiring bug, not an operational
		// condition; surface it loudly but keep serving tasks.
		log.Printf("reactd: metrics for region %s: %v", regionID, err)
		return
	}
	if adm != nil {
		if err := obs.RegisterAdmission(ow.reg, adm, metrics.L("region", regionID)); err != nil {
			log.Printf("reactd: admission metrics for region %s: %v", regionID, err)
		}
	}
	ow.regions.Add(obs.Source{ID: regionID, Engine: eng, Admission: adm})
}

func main() {
	addr := flag.String("addr", ":7341", "listen address")
	matcherName := flag.String("matcher", "react", "matching algorithm: react|metropolis|greedy|hungarian|uniform")
	cycles := flag.Int("cycles", 0, "cycle budget for react/metropolis (0 = adaptive)")
	batchBound := flag.Int("batch-bound", 10, "run a batch once this many tasks are unassigned")
	batchPeriod := flag.Duration("batch-period", 5*time.Second, "maximum interval between batches")
	probBound := flag.Float64("edge-bound", 0.1, "Eq.3 probability bound for instantiating an edge")
	threshold := flag.Float64("reassign-threshold", 0.1, "Eq.2 probability below which a task is reassigned")
	monitorPeriod := flag.Duration("monitor-period", time.Second, "Eq.2 sweep period")
	statsEvery := flag.Duration("stats-every", 30*time.Second, "stats logging period (0 disables)")
	profiles := flag.String("profiles", "", "profile snapshot file: loaded at startup, saved at shutdown (single-region mode only)")
	dataDir := flag.String("data-dir", "", "write-ahead journal directory: state recovered at startup, every mutation journaled (single-region mode only)")
	fsyncInterval := flag.Duration("fsync-interval", 25*time.Millisecond, "group-commit window: the journal fsyncs at most this far behind the last acknowledged mutation")
	retention := flag.Duration("retention", time.Hour, "how long terminal task records are kept for late feedback")
	grid := flag.String("grid", "", "multi-region mode: \"RxC\" decomposition of -area (e.g. 2x2); empty = single region")
	area := flag.String("area", "37.8,23.5,38.2,24.0", "geographic area as minLat,minLon,maxLat,maxLon (multi-region mode)")
	idleTimeout := flag.Duration("idle-timeout", wire.DefaultIdleTimeout, "drop connections silent for this long (0 disables); clients keepalive-ping well under it")
	shards := flag.Int("shards", 0, "task-bookkeeping stripes in the scheduling engine (0 = GOMAXPROCS)")
	httpAddr := flag.String("http", "", "observability plane listen address (e.g. :9090); empty disables /metrics, /statusz, /debug/pprof")
	traceCap := flag.Int("trace-cap", 65536, "lifecycle events retained for /trace.csv (0 disables; needs -http, single-region mode)")
	admissionOn := flag.Bool("admission", false, "enable deadline-aware admission control and overload shedding (docs/ADMISSION.md)")
	maxInflight := flag.Int("max-inflight", 0, "global in-flight task ceiling (0 = unlimited; needs -admission)")
	admitFloor := flag.Float64("admit-floor", 0, "reject submissions whose predicted deadline-meeting probability falls below this (0 disables; needs -admission)")
	admitRate := flag.Float64("admit-rate", 0, "per-requester submit tokens per second (0 = unlimited; needs -admission)")
	flag.Parse()

	var matcher matching.Matcher
	switch *matcherName {
	case "react":
		matcher = matching.REACT{Cycles: *cycles, Adaptive: *cycles == 0}
	case "metropolis":
		matcher = matching.Metropolis{Cycles: *cycles, Adaptive: *cycles == 0}
	case "greedy":
		matcher = matching.Greedy{}
	case "hungarian":
		matcher = matching.Hungarian{}
	case "uniform":
		matcher = matching.Uniform{}
	default:
		fmt.Fprintf(os.Stderr, "reactd: unknown matcher %q\n", *matcherName)
		os.Exit(2)
	}

	opts := core.Options{
		Matcher:       matcher,
		MonitorPeriod: *monitorPeriod,
		Retention:     *retention,
		Shards:        *shards,
		Schedule: schedule.Config{
			BatchBound:    *batchBound,
			BatchPeriod:   *batchPeriod,
			EdgeProbBound: *probBound,
		},
	}
	opts.Monitor.Threshold = *threshold
	if *admissionOn {
		opts.Admission = &admission.Config{
			ProbFloor:     *admitFloor,
			MaxInflight:   *maxInflight,
			RequesterRate: *admitRate,
		}
	} else if *maxInflight > 0 || *admitFloor > 0 || *admitRate > 0 {
		log.Print("reactd: -max-inflight/-admit-floor/-admit-rate have no effect without -admission")
	}

	var ow *obsWiring
	if *httpAddr != "" {
		ow = &obsWiring{reg: metrics.NewRegistry()}
	}

	var srv *wire.Server
	var store *journal.Store
	var traceRec *trace.Recorder
	var err error
	if *grid != "" {
		srv, err = serveGrid(*addr, *grid, *area, opts, ow)
		if *profiles != "" {
			log.Print("reactd: -profiles is ignored in multi-region mode")
			*profiles = ""
		}
		if *dataDir != "" {
			log.Print("reactd: -data-dir is ignored in multi-region mode")
			*dataDir = ""
		}
	} else {
		if *dataDir != "" {
			// The journal subsumes the profile snapshot: it recovers
			// profiles and tasks and counters, continuously.
			if *profiles != "" {
				log.Print("reactd: -profiles is ignored when -data-dir journaling is on")
				*profiles = ""
			}
			store, err = journal.Open(journal.Options{
				Dir:           *dataDir,
				FsyncInterval: *fsyncInterval,
				Logf:          log.Printf,
			})
			if err == nil {
				var sum journal.Summary
				srv, sum, err = wire.ServeDurable(*addr, opts, store)
				if err != nil {
					store.Close()
				} else {
					log.Printf("reactd: journal %s: recovered %d tasks, %d workers (snapshot seq %d, %d tail records, %d torn bytes dropped)",
						*dataDir, sum.Tasks, sum.Workers, sum.SnapshotSeq, sum.TailRecords, sum.TornBytes)
				}
			}
		} else {
			srv, err = wire.Serve(*addr, opts)
		}
		if err == nil {
			eng := srv.Core().Engine()
			watchEq2(eng)
			if ow != nil {
				ow.attachCollector("all", eng, srv.Core().Admission())
				if *traceCap > 0 {
					traceRec = trace.NewBounded(*traceCap)
					eng.Events().Tap(traceRec.Handle)
				}
			}
		}
	}
	if err != nil {
		log.Fatalf("reactd: %v", err)
	}
	srv.SetIdleTimeout(*idleTimeout)
	log.Printf("reactd: listening on %s (matcher=%s, grid=%q)", srv.Addr(), *matcherName, *grid)

	var plane *obs.Server
	if ow != nil {
		if err := obs.RegisterWireServer(ow.reg, srv); err != nil {
			log.Fatalf("reactd: wire metrics: %v", err)
		}
		if store != nil {
			if err := obs.RegisterJournal(ow.reg, store); err != nil {
				log.Fatalf("reactd: journal metrics: %v", err)
			}
		}
		plane = obs.NewServer(obs.Options{
			Clock:    clock.System{},
			Registry: ow.reg,
			Regions:  ow.regions.Snapshot,
			Trace:    traceRec,
			Logf:     log.Printf,
		})
		if err := plane.Start(*httpAddr); err != nil {
			log.Fatalf("reactd: %v", err)
		}
		log.Printf("reactd: observability plane on http://%s (/metrics /statusz /trace.csv /debug/pprof/)", plane.Addr())
	}

	if *profiles != "" && srv.Core() != nil {
		if f, err := os.Open(*profiles); err == nil {
			n, err := srv.Core().LoadProfiles(f)
			f.Close()
			if err != nil {
				log.Printf("reactd: loading profiles: %v (after %d workers)", err, n)
			} else {
				log.Printf("reactd: restored %d worker profiles from %s", n, *profiles)
			}
		} else if !os.IsNotExist(err) {
			log.Printf("reactd: open profiles: %v", err)
		}
	}

	if *statsEvery > 0 {
		go func() {
			ticker := time.NewTicker(*statsEvery)
			defer ticker.Stop()
			for range ticker.C {
				st := srv.Backend().Stats()
				log.Printf("stats received=%d assigned=%d completed=%d ontime=%d expired=%d reassigned=%d batches=%d workers=%d known=%d",
					st.Received, st.Assigned, st.Completed, st.OnTime,
					st.Expired, st.Reassigned, st.Batches, st.WorkersOnline, st.WorkersKnown)
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("reactd: shutting down")
	if plane != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := plane.Shutdown(ctx); err != nil {
			log.Printf("reactd: observability shutdown: %v", err)
		}
		cancel()
	}
	if *profiles != "" && srv.Core() != nil {
		if err := saveProfiles(srv, *profiles); err != nil {
			log.Printf("reactd: saving profiles: %v", err)
		} else {
			log.Printf("reactd: saved worker profiles to %s", *profiles)
		}
	}
	if err := srv.Close(); err != nil {
		log.Printf("reactd: close: %v", err)
	}
}

// serveGrid hosts one region server per grid cell behind a single port,
// routing by geography — the paper's spatial decomposition as a deployment
// flag.
func serveGrid(addr, gridSpec, areaSpec string, opts core.Options, ow *obsWiring) (*wire.Server, error) {
	var rows, cols int
	if _, err := fmt.Sscanf(gridSpec, "%dx%d", &rows, &cols); err != nil {
		return nil, fmt.Errorf("bad -grid %q (want RxC): %v", gridSpec, err)
	}
	var rect region.Rect
	if _, err := fmt.Sscanf(areaSpec, "%f,%f,%f,%f",
		&rect.MinLat, &rect.MinLon, &rect.MaxLat, &rect.MaxLon); err != nil {
		return nil, fmt.Errorf("bad -area %q: %v", areaSpec, err)
	}
	g, err := region.NewGrid(rect, rows, cols)
	if err != nil {
		return nil, err
	}
	var relay wire.ResultRelay
	regionOpts := opts
	userHook := opts.OnResult
	regionOpts.OnResult = func(r core.Result) {
		if userHook != nil {
			userHook(r)
		}
		relay.Publish(r)
	}
	coord := federation.New(g, func(regionID string) *core.Server {
		log.Printf("reactd: starting region server %s", regionID)
		s := core.New(regionOpts)
		watchEq2(s.Engine())
		if ow != nil {
			// Each region gets its own collector so the shared registry
			// carries one series set per region label.
			ow.attachCollector(regionID, s.Engine(), s.Admission())
		}
		return s
	})
	return wire.ServeBackend(addr, coord, &relay)
}

// saveProfiles writes the snapshot atomically via a temp file rename.
func saveProfiles(srv *wire.Server, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := srv.Core().SaveProfiles(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
