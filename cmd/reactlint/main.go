// Command reactlint runs REACT's project-specific static-analysis
// suite over the module in two tiers. The syntactic tier (go/ast, one
// goroutine per package) checks clock discipline, seeded randomness,
// lock hygiene, goroutine lifecycle, dropped errors, and
// print-debugging. The typed tier type-checks the module with go/types,
// builds per-function CFGs and a module-wide call graph, and runs a
// lock-state dataflow: lock-order deadlock detection, hook reentrancy,
// blocking-under-lock, and interprocedural clock/RNG taint. These are
// the invariants that keep the simulation deterministic and the
// deployed middleware shut-downable; see docs/LINTING.md.
//
// Usage:
//
//	reactlint ./...                  # lint the module containing the cwd
//	reactlint -tier syntactic ./...  # fast tier only (no type checking)
//	reactlint -json ./...            # machine-readable findings
//	reactlint -list                  # describe the analyzers
//	reactlint -disable errdrop ./... # per-analyzer switches
//	reactlint -lockorder-out docs/LOCKORDER.md ./...  # regenerate lock doc
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on a
// usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"react/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as JSON")
		enable  = flag.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable = flag.String("disable", "", "comma-separated analyzers to skip")
		tier    = flag.String("tier", "all", "analysis tier: syntactic, typed, or all")
		lockDoc = flag.String("lockorder-out", "", "write the inferred lock-order doc to this file (implies the typed tier)")
		list    = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.DefaultAnalyzers() {
			fmt.Printf("%-18s [syntactic] %s\n", a.Name(), a.Doc())
		}
		for _, a := range lint.DefaultTypedAnalyzers() {
			fmt.Printf("%-18s [typed]     %s\n", a.Name(), a.Doc())
		}
		return
	}

	analyzers, typed, err := lint.Select(splitList(*enable), splitList(*disable))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch *tier {
	case "all":
	case "syntactic":
		typed = nil
	case "typed":
		analyzers = []lint.Analyzer{}
	default:
		fmt.Fprintf(os.Stderr, "reactlint: unknown tier %q (want syntactic, typed, or all)\n", *tier)
		os.Exit(2)
	}
	if *lockDoc != "" && len(typed) == 0 {
		typed = lint.DefaultTypedAnalyzers()
	}

	root := "."
	if args := flag.Args(); len(args) > 0 {
		// "./..." is the go-tool idiom for "this module"; any other
		// argument names a module root directly.
		if args[0] != "./..." && args[0] != "..." {
			root = strings.TrimSuffix(args[0], "/...")
		}
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	runner := &lint.Runner{
		Analyzers: analyzers,
		Typed:     typed,
		// Staleness is only judged when every analyzer runs: with part
		// of the suite disabled, its suppressions would look unused.
		StaleCheck: *tier == "all" && *enable == "" && *disable == "",
	}
	findings := runner.Run(mod)

	if *lockDoc != "" {
		if runner.TM == nil {
			fmt.Fprintln(os.Stderr, "reactlint: cannot render lock order: typed tier did not run (type-check failure?)")
			os.Exit(2)
		}
		doc, err := lint.RenderLockOrderDoc(runner.TM)
		if err == nil {
			err = os.WriteFile(*lockDoc, []byte(doc), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	if *jsonOut {
		if err := lint.NewReport(mod, *tier, runner, findings).WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if n := len(findings); n > 0 {
			fmt.Fprintf(os.Stderr, "reactlint: %d finding(s)\n", n)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
