// Command reactlint runs REACT's project-specific static-analysis
// suite over the module: clock discipline, seeded randomness, lock
// hygiene, goroutine lifecycle, dropped errors, and print-debugging.
// These are the invariants that keep the simulation deterministic and
// the deployed middleware shut-downable; see docs/LINTING.md.
//
// Usage:
//
//	reactlint ./...                  # lint the module containing the cwd
//	reactlint path/to/module         # lint another module root
//	reactlint -json ./...            # machine-readable findings
//	reactlint -list                  # describe the analyzers
//	reactlint -disable errdrop ./... # per-analyzer switches
//
// Exit status: 0 when clean, 1 when findings were reported, 2 on a
// usage or load error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"react/internal/lint"
)

func main() {
	var (
		jsonOut = flag.Bool("json", false, "emit findings as JSON")
		enable  = flag.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable = flag.String("disable", "", "comma-separated analyzers to skip")
		list    = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.DefaultAnalyzers() {
			fmt.Printf("%-16s %s\n", a.Name(), a.Doc())
		}
		return
	}

	analyzers, err := lint.Select(splitList(*enable), splitList(*disable))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	root := "."
	if args := flag.Args(); len(args) > 0 {
		// "./..." is the go-tool idiom for "this module"; any other
		// argument names a module root directly.
		if args[0] != "./..." && args[0] != "..." {
			root = strings.TrimSuffix(args[0], "/...")
		}
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	findings := (&lint.Runner{Analyzers: analyzers}).Run(mod)
	if *jsonOut {
		if err := lint.NewReport(mod, findings).WriteJSON(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		if n := len(findings); n > 0 {
			fmt.Fprintf(os.Stderr, "reactlint: %d finding(s)\n", n)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
