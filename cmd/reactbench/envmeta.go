package main

import (
	"os"
	"runtime"
	"strings"
)

// benchEnv records the environment a measurement was taken in, embedded in
// every check artifact so a regression report can be read next to the
// hardware that produced it — a -40% "regression" on a 1-core CI runner
// against a 16-core baseline is a provenance bug, not a code bug.
type benchEnv struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	CPUModel   string `json:"cpu_model,omitempty"`
}

func captureEnv() benchEnv {
	return benchEnv{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		CPUModel:   cpuModel(),
	}
}

// cpuModel best-effort reads the CPU model name from /proc/cpuinfo; empty
// where that file does not exist (non-Linux).
func cpuModel() string {
	raw, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if rest, ok := strings.CutPrefix(line, "model name"); ok {
			if i := strings.IndexByte(rest, ':'); i >= 0 {
				return strings.TrimSpace(rest[i+1:])
			}
		}
	}
	return ""
}
