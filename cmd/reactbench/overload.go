package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"react/internal/experiments"
	"react/internal/metrics"
)

// overloadBaselineFile mirrors BENCH_overload.json: the committed
// three-arm overload experiment (1x baseline, 10x with admission off,
// 10x with admission on). The experiment runs entirely in virtual time,
// so unlike the engine and wire baselines these numbers are
// bit-reproducible anywhere; Env is recorded for provenance, not
// normalization.
type overloadBaselineFile struct {
	Benchmark string                          `json:"benchmark"`
	Recorded  string                          `json:"recorded"`
	Env       benchEnv                        `json:"env"`
	Result    experiments.OverloadBenchResult `json:"result"`
}

// overloadConfigFrom rebuilds the bench configuration from the recorded
// baseline, so a re-recorded file with different parameters is replayed
// with those parameters.
func overloadConfigFrom(r experiments.OverloadBenchResult) experiments.OverloadBenchConfig {
	return experiments.OverloadBenchConfig{
		Workers:        r.Workers,
		Duration:       time.Duration(r.DurationSeconds * float64(time.Second)),
		BaseRate:       r.BaseRate,
		OverloadFactor: r.OverloadFactor,
		Deadline:       time.Duration(r.DeadlineSeconds * float64(time.Second)),
		TightEvery:     r.TightEvery,
		TightDeadline:  time.Duration(r.TightDeadlineS * float64(time.Second)),
		Seed:           r.Seed,
	}
}

// runOverloadRecord measures the overload experiment with the default
// configuration and rewrites the baseline file.
func runOverloadRecord(path string) error {
	res, err := experiments.RunOverloadBench(experiments.OverloadBenchConfig{})
	if err != nil {
		return fmt.Errorf("overload-record: %w", err)
	}
	file := overloadBaselineFile{
		Benchmark: "RunOverloadBench",
		Recorded:  time.Now().UTC().Format(time.RFC3339),
		Env:       captureEnv(),
		Result:    res,
	}
	blob, err := json.MarshalIndent(file, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("overload-record: %w", err)
	}
	fmt.Printf("overload baseline written to %s (goodput ratio on=%.2f off=%.2f)\n",
		path, res.GoodputRatioOn, res.GoodputRatioOff)
	return nil
}

// overloadCheckArtifact is the JSON verdict the CI step uploads.
type overloadCheckArtifact struct {
	Baseline  string                          `json:"baseline"`
	Date      string                          `json:"date"`
	Tolerance float64                         `json:"tolerance"`
	Env       benchEnv                        `json:"env"`
	Measured  experiments.OverloadBenchResult `json:"measured"`
	Failures  []string                        `json:"failures,omitempty"`
	Pass      bool                            `json:"pass"`
}

// runOverloadCheck replays the committed overload experiment and enforces
// the admission plane's headline claims: at OverloadFactor-times offered
// load with admission on, goodput stays at >= 70% of the 1x baseline and
// at worst `tolerance` below the committed admission-on goodput, and the
// unassigned pool stays bounded by the in-flight ceiling while the
// admission-off arm's balloons past it.
func runOverloadCheck(baselinePath string, tolerance float64, outPath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("overload-check: %w", err)
	}
	var base overloadBaselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("overload-check: parse %s: %w", baselinePath, err)
	}

	res, err := experiments.RunOverloadBench(overloadConfigFrom(base.Result))
	if err != nil {
		return fmt.Errorf("overload-check: %w", err)
	}

	art := overloadCheckArtifact{
		Baseline:  baselinePath,
		Date:      time.Now().UTC().Format(time.RFC3339),
		Tolerance: tolerance,
		Env:       captureEnv(),
		Measured:  res,
		Pass:      true,
	}
	fail := func(format string, args ...any) {
		art.Failures = append(art.Failures, fmt.Sprintf(format, args...))
		art.Pass = false
	}
	if res.GoodputRatioOn < 0.7 {
		fail("admission-on goodput ratio %.3f below the 0.7 floor", res.GoodputRatioOn)
	}
	if floor := base.Result.OverloadOn.GoodputPerSec * (1 - tolerance); res.OverloadOn.GoodputPerSec < floor {
		fail("admission-on goodput %.2f/s below baseline %.2f/s - %.0f%%",
			res.OverloadOn.GoodputPerSec, base.Result.OverloadOn.GoodputPerSec, 100*tolerance)
	}
	if hw := res.OverloadOn.UnassignedHighWater; hw > 2*res.Workers {
		fail("admission-on unassigned high-water %d exceeds the 2x-fleet ceiling %d", hw, 2*res.Workers)
	}
	if res.OverloadOn.UnassignedHighWater >= res.OverloadOff.UnassignedHighWater {
		fail("admission-on high-water %d not below admission-off %d — the plane is not bounding the pool",
			res.OverloadOn.UnassignedHighWater, res.OverloadOff.UnassignedHighWater)
	}

	table := metrics.NewTable("arm", "offered", "submitted", "on_time", "goodput/s", "expired", "shed", "unassigned_hw")
	for _, a := range []experiments.OverloadArmResult{res.Baseline, res.OverloadOff, res.OverloadOn} {
		table.AddRow(a.Name, a.Offered, a.Submitted, a.OnTime,
			fmt.Sprintf("%.2f", a.GoodputPerSec), a.Expired, a.Shed, a.UnassignedHighWater)
	}
	if err := table.Write(os.Stdout); err != nil {
		return err
	}

	if outPath != "" {
		blob, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("overload-check: write artifact: %w", err)
		}
		fmt.Printf("artifact written to %s\n", outPath)
	}
	if !art.Pass {
		for _, f := range art.Failures {
			fmt.Fprintln(os.Stderr, "overload-check:", f)
		}
		return fmt.Errorf("overload-check: admission gate failed (see above)")
	}
	fmt.Printf("overload goodput holds: on/baseline ratio %.2f (gate 0.7), admission-on pool bounded at %d\n",
		res.GoodputRatioOn, res.OverloadOn.UnassignedHighWater)
	return nil
}
