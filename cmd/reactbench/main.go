// Command reactbench sweeps the matching algorithms over configurable graph
// shapes and prints measured wall time, output weight, and — when the exact
// solver is enabled — the optimality gap of each heuristic. It generalizes
// the Figure 3/4 experiment for ad-hoc exploration.
//
// Usage:
//
//	reactbench -workers 1000 -tasks 1,10,100,1000 -cycles 1000,3000
//	reactbench -workers 200 -tasks 200 -hungarian   # with optimality gaps
//
// With -check, it instead replays the committed benchmark baselines and
// exits non-zero on regression — the CI throughput gate. Three gates run:
// the engine gate (internal/experiments.RunEngineBench against
// BENCH_engine.json, cycles/s per shard count), the wire gate
// (internal/experiments.RunWireBench against BENCH_wire.json, delivered
// frames/s per connection count plus the codec's 0 allocs/op encode
// contract), and the overload gate
// (internal/experiments.RunOverloadBench against BENCH_overload.json:
// at 10x offered load with admission on, goodput must hold at >= 70% of
// the 1x baseline and the unassigned pool must stay bounded):
//
//	reactbench -check -baseline BENCH_engine.json -tolerance 0.4 -check-out bench_check.json \
//	    -wire-baseline BENCH_wire.json -wire-out wire_check.json \
//	    -overload-baseline BENCH_overload.json -overload-out overload_check.json
//
// With -wire-record, it measures the wire grid and rewrites
// -wire-baseline — how BENCH_wire.json is (re)produced on the reference
// box. With -overload-record, it runs the virtual-time overload
// experiment and rewrites -overload-baseline; that one is deterministic,
// so any machine reproduces it bit-for-bit.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"react/internal/experiments"
	"react/internal/metrics"
)

func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	workers := flag.Int("workers", 1000, "worker count (graph rows)")
	tasks := flag.String("tasks", "1,10,50,100,250,500,750,1000", "comma-separated task counts")
	cycles := flag.String("cycles", "1000,3000", "comma-separated cycle budgets for REACT/Metropolis")
	seed := flag.Int64("seed", 42, "weight seed")
	hungarian := flag.Bool("hungarian", false, "also run the exact O(n^3) solver and report optimality gaps")
	check := flag.Bool("check", false, "regression-check engine throughput against -baseline instead of sweeping matchers")
	baseline := flag.String("baseline", "BENCH_engine.json", "committed baseline for -check")
	tolerance := flag.Float64("tolerance", 0.4, "allowed relative cycles/s deviation for -check")
	checkOps := flag.Int("check-ops", 4000, "submit/complete cycles per shard configuration for -check")
	checkOut := flag.String("check-out", "", "write the -check verdict as JSON to this file")
	wireBaseline := flag.String("wire-baseline", "BENCH_wire.json", "committed wire baseline for -check / -wire-record")
	wireOut := flag.String("wire-out", "", "write the wire -check verdict as JSON to this file")
	wireRecord := flag.Bool("wire-record", false, "measure the wire grid and rewrite -wire-baseline instead of checking")
	overloadBaseline := flag.String("overload-baseline", "BENCH_overload.json", "committed overload baseline for -check / -overload-record")
	overloadOut := flag.String("overload-out", "", "write the overload -check verdict as JSON to this file")
	overloadRecord := flag.Bool("overload-record", false, "run the virtual-time overload experiment and rewrite -overload-baseline instead of checking")
	overloadCheck := flag.Bool("overload-check", false, "run only the overload admission gate against -overload-baseline")
	flag.Parse()

	if *wireRecord {
		if err := runWireRecord(*wireBaseline); err != nil {
			fmt.Fprintln(os.Stderr, "reactbench:", err)
			os.Exit(1)
		}
		return
	}

	if *overloadRecord {
		if err := runOverloadRecord(*overloadBaseline); err != nil {
			fmt.Fprintln(os.Stderr, "reactbench:", err)
			os.Exit(1)
		}
		return
	}

	if *overloadCheck {
		if err := runOverloadCheck(*overloadBaseline, *tolerance, *overloadOut); err != nil {
			fmt.Fprintln(os.Stderr, "reactbench:", err)
			os.Exit(1)
		}
		return
	}

	if *check {
		// Run every gate even when an earlier one fails: one CI pass should
		// surface every regression, not the first one.
		engineErr := runCheck(*baseline, *checkOps, *tolerance, *checkOut)
		if engineErr != nil {
			fmt.Fprintln(os.Stderr, "reactbench:", engineErr)
		}
		wireErr := runWireCheck(*wireBaseline, *tolerance, *wireOut)
		if wireErr != nil {
			fmt.Fprintln(os.Stderr, "reactbench:", wireErr)
		}
		overloadErr := runOverloadCheck(*overloadBaseline, *tolerance, *overloadOut)
		if overloadErr != nil {
			fmt.Fprintln(os.Stderr, "reactbench:", overloadErr)
		}
		if engineErr != nil || wireErr != nil || overloadErr != nil {
			os.Exit(1)
		}
		return
	}

	taskCounts, err := parseInts(*tasks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reactbench:", err)
		os.Exit(2)
	}
	cycleCounts, err := parseInts(*cycles)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reactbench:", err)
		os.Exit(2)
	}

	points := experiments.RunMatchBench(experiments.MatchBenchConfig{
		Workers:    *workers,
		TaskCounts: taskCounts,
		Cycles:     cycleCounts,
		Seed:       *seed,
		Hungarian:  *hungarian,
	})

	// Optimal weight per task count, if available, for gap reporting.
	opt := map[int]float64{}
	for _, p := range points {
		if p.Algorithm == "hungarian" {
			opt[p.Tasks] = p.Weight
		}
	}

	table := metrics.NewTable("algorithm", "tasks", "edges", "time_ms", "weight", "matched", "gap_pct")
	for _, p := range points {
		gap := "-"
		if o, ok := opt[p.Tasks]; ok && o > 0 {
			gap = fmt.Sprintf("%.2f", 100*(1-p.Weight/o))
		}
		table.AddRow(p.Algorithm, p.Tasks, p.Edges,
			float64(p.Elapsed.Microseconds())/1000, p.Weight, p.Matched, gap)
	}
	if err := table.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "reactbench:", err)
		os.Exit(1)
	}
}
