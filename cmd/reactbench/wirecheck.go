package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"react/internal/experiments"
	"react/internal/metrics"
	"react/internal/wire"
)

// The wire gate replays the BenchmarkWireBroadcast / BenchmarkWireRequestReply
// workload (internal/experiments.RunWireBench — the same runner the
// benchmarks use) against the committed BENCH_wire.json and fails when
// delivered frames/s drops more than the tolerance below the committed
// number. It also holds the pooled codec to its zero-allocation contract:
// steady-state encode of the hot frame shapes must report exactly 0
// allocs/op via testing.AllocsPerRun.

// wireBaselineFile mirrors BENCH_wire.json.
type wireBaselineFile struct {
	Benchmark string            `json:"benchmark"`
	Env       benchEnv          `json:"env"`
	Results   []wireBaselineRow `json:"results"`
}

type wireBaselineRow struct {
	Shape          string  `json:"shape"`
	Conns          int     `json:"conns"`
	Frames         int     `json:"frames"`
	FramesPerSec   float64 `json:"frames_per_sec"`
	FramesPerFlush float64 `json:"frames_per_flush"`
}

// wireRecordConfigs is the fixed grid both -wire-record and the committed
// baseline cover: each transport shape at 1, 64, and 1024 connections,
// with frame counts chosen so every cell runs long enough to be stable
// but the whole grid stays CI-cheap.
var wireRecordConfigs = []experiments.WireBenchConfig{
	{Shape: "broadcast", Conns: 1, Frames: 4000},
	{Shape: "broadcast", Conns: 64, Frames: 1000},
	{Shape: "broadcast", Conns: 1024, Frames: 200},
	{Shape: "request-reply", Conns: 1, Frames: 2000},
	{Shape: "request-reply", Conns: 64, Frames: 200},
	{Shape: "request-reply", Conns: 1024, Frames: 20},
}

// wireMedianRounds is how many times each cell is measured, by record and
// check alike; the median run is the one reported. Loopback throughput on
// a busy box swings tens of percent run to run — a single sample on
// either side of the comparison would make a -40% gate flake.
const wireMedianRounds = 3

// measureWireMedian runs cfg wireMedianRounds times and returns the run
// with the median frames/s.
func measureWireMedian(cfg experiments.WireBenchConfig) (experiments.WireBenchResult, error) {
	runs := make([]experiments.WireBenchResult, 0, wireMedianRounds)
	for i := 0; i < wireMedianRounds; i++ {
		res, err := experiments.RunWireBench(cfg)
		if err != nil {
			return experiments.WireBenchResult{}, err
		}
		runs = append(runs, res)
	}
	sort.Slice(runs, func(i, j int) bool { return runs[i].FramesPerSec < runs[j].FramesPerSec })
	return runs[len(runs)/2], nil
}

// wireCheckRow is one baseline cell's verdict.
type wireCheckRow struct {
	Shape          string  `json:"shape"`
	Conns          int     `json:"conns"`
	BaselineFPS    float64 `json:"baseline_frames_per_sec"`
	MeasuredFPS    float64 `json:"measured_frames_per_sec"`
	Deviation      float64 `json:"deviation"` // (measured-baseline)/baseline
	FramesPerFlush float64 `json:"frames_per_flush"`
	OK             bool    `json:"ok"`
	FailureReason  string  `json:"failure_reason,omitempty"`
	Note           string  `json:"note,omitempty"`
}

// wireAllocRow is one frame shape's encoder-allocation verdict.
type wireAllocRow struct {
	Frame       string  `json:"frame"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	OK          bool    `json:"ok"`
}

// wireCheckArtifact is the JSON the CI step uploads for the wire gate.
type wireCheckArtifact struct {
	Baseline  string         `json:"baseline"`
	Date      string         `json:"date"`
	Tolerance float64        `json:"tolerance"`
	Env       benchEnv       `json:"env"`
	Rows      []wireCheckRow `json:"rows"`
	Allocs    []wireAllocRow `json:"allocs"`
	Pass      bool           `json:"pass"`
}

// hotFrames is the encode-allocation corpus: the push and submit frames the
// steady state is made of, mirroring BenchmarkWireEncode.
func hotFrames() []struct {
	name string
	m    wire.Message
} {
	return []struct {
		name string
		m    wire.Message
	}{
		{"assign", wire.Message{Type: "assignment", Assignment: &wire.AssignmentPayload{
			TaskID: "t00001234", WorkerID: "w042", Category: "traffic",
			Description: "is the on-ramp at exit 14 jammed?",
			Lat:         37.9838, Lon: 23.7275, DeadlineMS: 60000, Reward: 0.25,
		}}},
		{"submit", wire.Message{Type: "submit", Seq: 7, Task: &wire.TaskPayload{
			ID: "t00001234", Lat: 37.9838, Lon: 23.7275, DeadlineMS: 60000,
			Reward: 0.25, Category: "traffic", Description: "is the on-ramp at exit 14 jammed?",
		}}},
		{"result", wire.Message{Type: "result", Result: &wire.ResultPayload{
			TaskID: "t00001234", WorkerID: "w042", Answer: "yes, jammed", MetDeadline: true,
		}}},
		{"event", wire.Message{Type: "event", Event: &wire.EventPayload{
			Seq: 991, Kind: "complete", TaskID: "t00001234", Worker: "w042",
			AtUnixMS: 1754550000123, Status: "completed", MetDeadline: true, Attempts: 1,
		}}},
	}
}

// runWireRecord measures the full grid and (re)writes the baseline file —
// how BENCH_wire.json is produced on the reference box.
func runWireRecord(path string) error {
	base := wireBaselineFile{
		Benchmark: "BenchmarkWireBroadcast/BenchmarkWireRequestReply (experiments.RunWireBench)",
		Env:       captureEnv(),
	}
	for _, cfg := range wireRecordConfigs {
		res, err := measureWireMedian(cfg)
		if err != nil {
			return fmt.Errorf("wire-record: %s conns=%d: %w", cfg.Shape, cfg.Conns, err)
		}
		base.Results = append(base.Results, wireBaselineRow{
			Shape:          res.Shape,
			Conns:          res.Conns,
			Frames:         res.Frames,
			FramesPerSec:   res.FramesPerSec,
			FramesPerFlush: res.FramesPerFlush,
		})
		fmt.Printf("recorded %s conns=%d: %.0f frames/s (%.1f frames/flush)\n",
			res.Shape, res.Conns, res.FramesPerSec, res.FramesPerFlush)
	}
	blob, err := json.MarshalIndent(base, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return fmt.Errorf("wire-record: %w", err)
	}
	fmt.Printf("baseline written to %s\n", path)
	return nil
}

// runWireCheck replays every baseline cell and the encoder allocs gate.
// Exit is non-zero when any cell falls more than tolerance below its
// committed frames/s or any hot frame's steady-state encode allocates.
func runWireCheck(baselinePath string, tolerance float64, outPath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("wire-check: %w", err)
	}
	var base wireBaselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("wire-check: parse %s: %w", baselinePath, err)
	}
	if len(base.Results) == 0 {
		return fmt.Errorf("wire-check: %s has no results", baselinePath)
	}

	art := wireCheckArtifact{
		Baseline:  baselinePath,
		Date:      time.Now().UTC().Format(time.RFC3339),
		Tolerance: tolerance,
		Env:       captureEnv(),
		Pass:      true,
	}
	for _, b := range base.Results {
		res, err := measureWireMedian(experiments.WireBenchConfig{
			Shape:  b.Shape,
			Conns:  b.Conns,
			Frames: b.Frames,
		})
		if err != nil {
			return fmt.Errorf("wire-check: %s conns=%d: %w", b.Shape, b.Conns, err)
		}
		row := wireCheckRow{
			Shape:          b.Shape,
			Conns:          b.Conns,
			BaselineFPS:    b.FramesPerSec,
			MeasuredFPS:    res.FramesPerSec,
			Deviation:      (res.FramesPerSec - b.FramesPerSec) / b.FramesPerSec,
			FramesPerFlush: res.FramesPerFlush,
			OK:             true,
		}
		switch {
		case row.Deviation < -tolerance:
			row.OK = false
			row.FailureReason = fmt.Sprintf("frames/s %.0f is %+.0f%% off baseline %.0f (tolerance -%.0f%%)",
				res.FramesPerSec, 100*row.Deviation, b.FramesPerSec, 100*tolerance)
		case row.Deviation > tolerance:
			row.Note = fmt.Sprintf("%.0f%% faster than baseline; consider re-recording with -wire-record", 100*row.Deviation)
		}
		if !row.OK {
			art.Pass = false
		}
		art.Rows = append(art.Rows, row)
	}

	// The zero-allocation contract on steady-state encode: a reused buffer
	// plus the pooled appenders must never touch the heap. One alloc here
	// means someone reintroduced a fmt/reflect path on the frame hot loop.
	for _, f := range hotFrames() {
		f := f
		buf := make([]byte, 0, 1024)
		allocs := testing.AllocsPerRun(1000, func() {
			buf = wire.AppendFrame(buf[:0], &f.m)
		})
		row := wireAllocRow{Frame: f.name, AllocsPerOp: allocs, OK: allocs == 0}
		if !row.OK {
			art.Pass = false
		}
		art.Allocs = append(art.Allocs, row)
	}

	table := metrics.NewTable("shape", "conns", "baseline_fps", "measured_fps", "deviation_pct", "frames/flush", "verdict")
	for _, r := range art.Rows {
		verdict := "ok"
		switch {
		case !r.OK:
			verdict = "FAIL: " + r.FailureReason
		case r.Note != "":
			verdict = "ok (" + r.Note + ")"
		}
		table.AddRow(r.Shape, r.Conns, fmt.Sprintf("%.0f", r.BaselineFPS), fmt.Sprintf("%.0f", r.MeasuredFPS),
			fmt.Sprintf("%+.1f", 100*r.Deviation), fmt.Sprintf("%.1f", r.FramesPerFlush), verdict)
	}
	if err := table.Write(os.Stdout); err != nil {
		return err
	}
	for _, a := range art.Allocs {
		verdict := "ok"
		if !a.OK {
			verdict = fmt.Sprintf("FAIL: %.1f allocs/op on steady-state encode (want 0)", a.AllocsPerOp)
		}
		fmt.Printf("encode %-7s %5.1f allocs/op  %s\n", a.Frame, a.AllocsPerOp, verdict)
	}

	if outPath != "" {
		blob, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("wire-check: write artifact: %w", err)
		}
		fmt.Printf("artifact written to %s\n", outPath)
	}
	if !art.Pass {
		return fmt.Errorf("wire-check: wire throughput or encode allocations outside tolerance (see table)")
	}
	fmt.Printf("wire throughput within -%.0f%% of %s; steady-state encode allocation-free\n", 100*tolerance, baselinePath)
	return nil
}
