package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"react/internal/experiments"
	"react/internal/metrics"
)

// baselineFile mirrors BENCH_engine.json, the committed reference numbers
// for BenchmarkEngineThroughput on the reference box.
type baselineFile struct {
	Benchmark string `json:"benchmark"`
	CPU       string `json:"cpu"`
	Results   []struct {
		Shards        int     `json:"shards"`
		NsPerOp       float64 `json:"ns_per_op"`
		CyclesPerSec  float64 `json:"cycles_per_sec"`
		BatchesPerKop float64 `json:"batches_per_kop"`
		Expired       int64   `json:"expired"`
	} `json:"results"`
}

// checkRow is one shard configuration's verdict in the artifact.
type checkRow struct {
	Shards        int     `json:"shards"`
	BaselineCPS   float64 `json:"baseline_cycles_per_sec"`
	MeasuredCPS   float64 `json:"measured_cycles_per_sec"`
	Deviation     float64 `json:"deviation"` // (measured-baseline)/baseline
	Expired       int64   `json:"expired"`
	BatchesPerKop float64 `json:"batches_per_kop"`
	OK            bool    `json:"ok"`
	FailureReason string  `json:"failure_reason,omitempty"`
	Note          string  `json:"note,omitempty"`
}

// checkArtifact is the JSON the CI step uploads.
type checkArtifact struct {
	Baseline  string     `json:"baseline"`
	Date      string     `json:"date"`
	Ops       int        `json:"ops"`
	Tolerance float64    `json:"tolerance"`
	Env       benchEnv   `json:"env"`
	Rows      []checkRow `json:"rows"`
	Pass      bool       `json:"pass"`
}

// runCheck replays the BenchmarkEngineThroughput workload in-process (via
// the shared experiments.RunEngineBench runner) for every shard
// configuration in the baseline file and fails when measured cycles/s
// falls more than tolerance below the committed number, or when any task
// expires (the workload is constructed so none can). Speedups beyond
// tolerance pass with a note to re-record the baseline. Exit status 1 on
// violation, so CI can gate on it.
func runCheck(baselinePath string, ops int, tolerance float64, outPath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("check: %w", err)
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("check: parse %s: %w", baselinePath, err)
	}
	if len(base.Results) == 0 {
		return fmt.Errorf("check: %s has no results", baselinePath)
	}

	art := checkArtifact{
		Baseline:  baselinePath,
		Date:      time.Now().UTC().Format(time.RFC3339),
		Ops:       ops,
		Tolerance: tolerance,
		Env:       captureEnv(),
		Pass:      true,
	}
	for _, b := range base.Results {
		res, err := experiments.RunEngineBench(experiments.EngineBenchConfig{
			Shards: b.Shards,
			Ops:    ops,
		})
		if err != nil {
			return fmt.Errorf("check: shards=%d: %w", b.Shards, err)
		}
		row := checkRow{
			Shards:        b.Shards,
			BaselineCPS:   b.CyclesPerSec,
			MeasuredCPS:   res.CyclesPerSec,
			Deviation:     (res.CyclesPerSec - b.CyclesPerSec) / b.CyclesPerSec,
			Expired:       res.Expired,
			BatchesPerKop: res.BatchesPerKop,
			OK:            true,
		}
		switch {
		case res.Expired > 0:
			row.OK = false
			row.FailureReason = fmt.Sprintf("%d tasks expired; the workload admits none", res.Expired)
		case row.Deviation < -tolerance:
			row.OK = false
			row.FailureReason = fmt.Sprintf("cycles/s %.1f is %+.0f%% off baseline %.1f (tolerance -%.0f%%)",
				res.CyclesPerSec, 100*row.Deviation, b.CyclesPerSec, 100*tolerance)
		case row.Deviation > tolerance:
			// Faster than the committed number is not a regression, but a
			// drift this large means the baseline no longer describes the
			// hardware; say so without failing the gate.
			row.Note = fmt.Sprintf("%.0f%% faster than baseline; consider re-recording BENCH_engine.json", 100*row.Deviation)
		}
		if !row.OK {
			art.Pass = false
		}
		art.Rows = append(art.Rows, row)
	}

	table := metrics.NewTable("shards", "baseline_cps", "measured_cps", "deviation_pct", "batches/kop", "verdict")
	for _, r := range art.Rows {
		verdict := "ok"
		switch {
		case !r.OK:
			verdict = "FAIL: " + r.FailureReason
		case r.Note != "":
			verdict = "ok (" + r.Note + ")"
		}
		table.AddRow(r.Shards, r.BaselineCPS, fmt.Sprintf("%.1f", r.MeasuredCPS),
			fmt.Sprintf("%+.1f", 100*r.Deviation), fmt.Sprintf("%.1f", r.BatchesPerKop), verdict)
	}
	if err := table.Write(os.Stdout); err != nil {
		return err
	}

	if outPath != "" {
		blob, err := json.MarshalIndent(art, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("check: write artifact: %w", err)
		}
		fmt.Printf("artifact written to %s\n", outPath)
	}
	if !art.Pass {
		return fmt.Errorf("check: engine throughput outside tolerance (see table)")
	}
	fmt.Printf("engine throughput within -%.0f%% of %s\n", 100*tolerance, baselinePath)
	return nil
}
