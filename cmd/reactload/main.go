// Command reactload drives a running reactd region server with a synthetic
// crowd and task stream (the §V.C behaviour model) over real TCP, then
// prints the deadline/feedback outcome — a live smoke test of a deployment.
//
// Durations are compressed (default 100×) so a run finishes in seconds; the
// target server's loops must be correspondingly fast, e.g.:
//
//	reactd -addr :7341 -batch-period 50ms -monitor-period 20ms
//	reactload -addr localhost:7341 -workers 30 -rate 8 -tasks 200
//
// With -chaos, reactload instead brings up its own in-process region server
// — journaled to a throwaway data dir — behind a fault-injecting proxy, cuts
// every connection partway through the run, and restarts the server at the
// two-thirds mark, recovering every task and worker profile from the
// write-ahead journal. The run must finish with zero unresolved tasks and
// zero response mismatches. It is the resilience demo in one command.
//
// With -overload, reactload runs the open-loop overload probe instead: a
// fixed submission schedule at -rate (default 10x the stable ratio) that
// never slows down for the server, reporting goodput, the
// admitted/rejected/shed/expired split, and submit-latency quantiles. By
// default it brings up its own in-process server with the admission plane
// on (docs/ADMISSION.md); pass -addr to aim it at a live deployment — a
// reactd started with -admission shows the plane holding goodput, one
// without shows the collapse. The self-contained run is the admission
// demo in one command and the nightly overload soak.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"react/internal/core"
	"react/internal/dynassign"
	"react/internal/faultnet"
	"react/internal/journal"
	"react/internal/loadgen"
	"react/internal/schedule"
	"react/internal/wire"
)

func main() {
	addr := flag.String("addr", "localhost:7341", "region server address")
	workers := flag.Int("workers", 20, "synthetic crowd size")
	rate := flag.Float64("rate", 5, "tasks per (uncompressed) second")
	tasks := flag.Int("tasks", 100, "total tasks to submit")
	//lint:ignore clocktaint interactive default: a fresh seed per run is the point; pass -seed to reproduce
	seed := flag.Int64("seed", time.Now().UnixNano(), "behaviour/workload seed")
	compress := flag.Float64("compress", 100, "time compression factor")
	chaos := flag.Bool("chaos", false, "self-contained fault-injection run: in-process server behind a chaos proxy, with resets and a mid-run restart")
	overload := flag.Bool("overload", false, "open-loop overload probe: fixed submission schedule, goodput and admitted/rejected/shed split; self-hosts an admission-enabled server unless -addr is set explicitly")
	duration := flag.Duration("duration", 60*time.Second, "uncompressed run length for -overload")
	flag.Parse()

	if *overload {
		runOverload(*addr, *workers, *rate, *duration, *seed, *compress)
		return
	}

	cfg := loadgen.Config{
		Addr:     *addr,
		Workers:  *workers,
		Rate:     *rate,
		Tasks:    *tasks,
		Seed:     *seed,
		Compress: *compress,
		Logf:     log.Printf,
	}

	var cleanup func()
	if *chaos {
		var err error
		cleanup, err = setupChaos(&cfg)
		if err != nil {
			log.Fatalf("reactload: chaos setup: %v", err)
		}
	}

	rep, err := loadgen.Run(cfg)
	if cleanup != nil {
		cleanup()
	}
	if err != nil {
		log.Fatalf("reactload: %v", err)
	}
	fmt.Printf("submitted   %d\nresults     %d\non-time     %d (%.1f%%)\nlate        %d\nexpired     %d\npositive    %d\nwall time   %v\n",
		rep.Submitted, rep.Results, rep.OnTime,
		100*float64(rep.OnTime)/float64(max(rep.Submitted, 1)),
		rep.Late, rep.Expired, rep.Positive, rep.Wall.Round(time.Millisecond))
	fmt.Printf("server: assigned %d, reassigned %d, batches %d, workers online %d (known %d)\n",
		rep.Server.Assigned, rep.Server.Reassigned, rep.Server.Batches,
		rep.Server.WorkersOnline, rep.Server.WorkersKnown)
	if *chaos {
		fmt.Printf("chaos: reconnects %d, resubmitted %d, reconciled %d, stale responses %d, mismatched %d\n",
			rep.Reconnects, rep.Resubmitted, rep.Reconciled, rep.Stale, rep.Mismatched)
		if rep.Unresolved > 0 || rep.Mismatched > 0 {
			fmt.Fprintf(os.Stderr, "chaos run FAILED: %d unresolved tasks, %d mismatched responses\n",
				rep.Unresolved, rep.Mismatched)
			os.Exit(1)
		}
		fmt.Println("chaos run survived: zero lost assignments, zero response mismatches")
		return
	}
	if rep.Results < rep.Submitted {
		fmt.Fprintf(os.Stderr, "warning: %d tasks unresolved at exit\n", rep.Submitted-rep.Results)
	}
}

// serverOptions are compressed to match the load generator's time scale,
// like a reactd started with fast loop periods.
func serverOptions() core.Options {
	return core.Options{
		BatchPoll:     5 * time.Millisecond,
		MonitorPeriod: 20 * time.Millisecond,
		Schedule:      schedule.Config{BatchBound: 3, BatchPeriod: 20 * time.Millisecond},
		Monitor:       dynassign.Monitor{Threshold: 0.1},
	}
}

// setupChaos starts the in-process server — journaled to a throwaway data
// dir — and the proxy, points the run at the proxy, turns on resilient
// mode, and installs the fault schedule: every connection hard-reset at
// one third of the submissions, a full server restart at two thirds. The
// restart is the real crash/recovery cycle: the old server stops (flushing
// its write-ahead log), a new one recovers every task and worker profile
// from the same data dir on a new port, and the proxy is retargeted.
// Returns a cleanup for the final server, proxy, and data dir.
func setupChaos(cfg *loadgen.Config) (func(), error) {
	dataDir, err := os.MkdirTemp("", "reactload-chaos-*")
	if err != nil {
		return nil, err
	}
	store, err := journal.Open(journal.Options{Dir: dataDir, Logf: log.Printf})
	if err != nil {
		os.RemoveAll(dataDir)
		return nil, err
	}
	srv, _, err := wire.ServeDurable("127.0.0.1:0", serverOptions(), store)
	if err != nil {
		store.Close()
		os.RemoveAll(dataDir)
		return nil, err
	}
	proxy, err := faultnet.New(faultnet.Config{Target: srv.Addr(), Seed: cfg.Seed})
	if err != nil {
		srv.Close()
		os.RemoveAll(dataDir)
		return nil, err
	}
	cfg.Addr = proxy.Addr()
	cfg.Resilient = true

	resetAt := cfg.Tasks / 3
	restartAt := cfg.Tasks * 2 / 3
	if resetAt < 1 {
		resetAt = 1
	}
	if restartAt <= resetAt {
		restartAt = resetAt + 1
	}
	cfg.OnSubmit = func(n int) {
		switch n {
		case resetAt:
			cut := proxy.ResetAll()
			log.Printf("chaos: hard-reset %d connections at task %d", cut, n)
		case restartAt:
			srv.Close() // flushes and closes the journal
			next, err := journal.Open(journal.Options{Dir: dataDir, Logf: log.Printf})
			if err != nil {
				log.Printf("chaos: journal recovery failed: %v", err)
				return
			}
			nextSrv, sum, err := wire.ServeDurable("127.0.0.1:0", serverOptions(), next)
			if err != nil {
				next.Close()
				log.Printf("chaos: restart failed: %v", err)
				return
			}
			proxy.SetTarget(nextSrv.Addr())
			srv = nextSrv
			log.Printf("chaos: server restarted on %s, recovered %d tasks and %d workers from the journal (seq %d)",
				nextSrv.Addr(), sum.Tasks, sum.Workers, sum.LastSeq)
		}
	}
	return func() {
		proxy.Close()
		srv.Close()
		os.RemoveAll(dataDir)
	}, nil
}
