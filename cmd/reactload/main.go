// Command reactload drives a running reactd region server with a synthetic
// crowd and task stream (the §V.C behaviour model) over real TCP, then
// prints the deadline/feedback outcome — a live smoke test of a deployment.
//
// Durations are compressed (default 100×) so a run finishes in seconds; the
// target server's loops must be correspondingly fast, e.g.:
//
//	reactd -addr :7341 -batch-period 50ms -monitor-period 20ms
//	reactload -addr localhost:7341 -workers 30 -rate 8 -tasks 200
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"react/internal/loadgen"
)

func main() {
	addr := flag.String("addr", "localhost:7341", "region server address")
	workers := flag.Int("workers", 20, "synthetic crowd size")
	rate := flag.Float64("rate", 5, "tasks per (uncompressed) second")
	tasks := flag.Int("tasks", 100, "total tasks to submit")
	seed := flag.Int64("seed", time.Now().UnixNano(), "behaviour/workload seed")
	compress := flag.Float64("compress", 100, "time compression factor")
	flag.Parse()

	rep, err := loadgen.Run(loadgen.Config{
		Addr:     *addr,
		Workers:  *workers,
		Rate:     *rate,
		Tasks:    *tasks,
		Seed:     *seed,
		Compress: *compress,
		Logf:     log.Printf,
	})
	if err != nil {
		log.Fatalf("reactload: %v", err)
	}
	fmt.Printf("submitted   %d\nresults     %d\non-time     %d (%.1f%%)\nlate        %d\nexpired     %d\npositive    %d\nwall time   %v\n",
		rep.Submitted, rep.Results, rep.OnTime,
		100*float64(rep.OnTime)/float64(max(rep.Submitted, 1)),
		rep.Late, rep.Expired, rep.Positive, rep.Wall.Round(time.Millisecond))
	fmt.Printf("server: assigned %d, reassigned %d, batches %d, workers online %d\n",
		rep.Server.Assigned, rep.Server.Reassigned, rep.Server.Batches, rep.Server.WorkersOnline)
	if rep.Results < rep.Submitted {
		fmt.Fprintf(os.Stderr, "warning: %d tasks unresolved at exit\n", rep.Submitted-rep.Results)
	}
}
