package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"react/internal/admission"
	"react/internal/loadgen"
	"react/internal/wire"
)

// runOverload drives the open-loop overload probe. Without an explicit
// -addr it self-hosts an in-process server with the admission plane on,
// so the command doubles as the hermetic nightly soak; the plane's time
// constants are compressed to match the generator's scale, like the
// deadlines are.
func runOverload(addr string, workers int, rate float64, duration time.Duration, seed int64, compress float64) {
	addrSet, rateSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "addr":
			addrSet = true
		case "rate":
			rateSet = true
		}
	})
	if !rateSet {
		rate = 0 // let loadgen default to 10x the stable ratio
	}

	var cleanup func()
	if !addrSet {
		opts := serverOptions()
		opts.Admission = &admission.Config{
			ProbFloor:    0.5,
			MaxInflight:  2 * workers,
			ShedTarget:   time.Duration(float64(500*time.Millisecond) / compress),
			ShedInterval: time.Duration(float64(200*time.Millisecond) / compress),
		}
		srv, err := wire.Serve("127.0.0.1:0", opts)
		if err != nil {
			log.Fatalf("reactload: overload server: %v", err)
		}
		addr = srv.Addr()
		cleanup = func() { srv.Close() }
		log.Printf("reactload: in-process admission server on %s (floor 0.5, ceiling %d)", addr, 2*workers)
	}

	rep, err := loadgen.RunOverload(loadgen.OverloadConfig{
		Addr:     addr,
		Workers:  workers,
		Rate:     rate,
		Duration: duration,
		Seed:     seed,
		Compress: compress,
		Logf:     log.Printf,
	})
	if cleanup != nil {
		cleanup()
	}
	if err != nil {
		log.Fatalf("reactload: %v", err)
	}

	fmt.Printf("offered     %d\nadmitted    %d\nrejected    %d rate, %d probability, %d queue-full\non-time     %d (goodput %.2f/s uncompressed)\nlate        %d\nshed        %d\nexpired     %d\nsubmit p50  %v\nsubmit p99  %v\nwall time   %v\n",
		rep.Offered, rep.Admitted,
		rep.RejectedRate, rep.RejectedProbability, rep.QueueFull,
		rep.OnTime, rep.GoodputPerSec, rep.Late, rep.Shed, rep.Expired,
		rep.SubmitP50.Round(time.Microsecond), rep.SubmitP99.Round(time.Microsecond),
		rep.Wall.Round(time.Millisecond))
	fmt.Printf("server: assigned %d, completed %d, expired %d, workers online %d\n",
		rep.Server.Assigned, rep.Server.Completed, rep.Server.Expired, rep.Server.WorkersOnline)
	if rep.FailedSubmits > 0 {
		fmt.Fprintf(os.Stderr, "warning: %d submissions failed on transport errors\n", rep.FailedSubmits)
	}
	// Self-contained runs double as a gate: the plane must actually turn
	// load away (we offered 10x) and still serve real work.
	if !addrSet {
		if turned := rep.RejectedRate + rep.RejectedProbability + rep.QueueFull + rep.Shed; turned == 0 {
			fmt.Fprintln(os.Stderr, "overload run FAILED: admission plane never engaged at 10x load")
			os.Exit(1)
		}
		if rep.OnTime == 0 {
			fmt.Fprintln(os.Stderr, "overload run FAILED: zero on-time completions")
			os.Exit(1)
		}
		fmt.Println("overload run held: admission engaged and goodput is nonzero")
	}
}
