// Command reactsim regenerates the paper's evaluation figures on the
// deterministic simulation substrate.
//
// Usage:
//
//	reactsim -fig all            # every figure (3-10)
//	reactsim -fig 5              # one figure
//	reactsim -fig 5 -curve       # include the cumulative series points
//	reactsim -fig 5 -csv out/    # write the cumulative series as CSV
//	reactsim -fig 3 -quick       # reduced sweep for a fast smoke run
//	reactsim -seed 7             # change the workload seed
//	reactsim -study              # the synthesized §V.C case study
//	reactsim -seeds 5            # figs 5-8 across seeds (mean ± std)
//	reactsim -losses             # missed-deadline attribution
//	reactsim -sensitivity        # deadline-band and Eq.2-threshold sweeps
//
// Figures 3/4 report measured Go wall time of the real matchers; Figures
// 5-10 run the end-to-end crowdsourcing scenario under the modelled matcher
// latency documented in internal/experiments.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"react/internal/crowd"
	"react/internal/experiments"
	"react/internal/metrics"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 3..10 or 'all'")
	seed := flag.Int64("seed", 42, "workload seed")
	curve := flag.Bool("curve", false, "print cumulative series points for figs 5/6")
	csvDir := flag.String("csv", "", "directory to write fig 5/6 cumulative series as CSV (empty disables)")
	quick := flag.Bool("quick", false, "reduced problem sizes for a fast run")
	hungarian := flag.Bool("hungarian", false, "add the exact Hungarian reference to figs 3/4")
	study := flag.Bool("study", false, "print the synthesized CrowdFlower case study (§V.C) and exit")
	seeds := flag.Int("seeds", 0, "run the figs 5-8 scenario across N seeds and print mean±std (0 disables)")
	losses := flag.Bool("losses", false, "print the missed-deadline attribution table and exit")
	sensitivity := flag.Bool("sensitivity", false, "print deadline-band and Eq.2-threshold sensitivity sweeps and exit")
	flag.Parse()

	if *study {
		printStudy(*seed)
		return
	}
	if *seeds > 0 {
		template := experiments.ScenarioConfig{}
		if *quick {
			template = experiments.ScenarioConfig{Workers: 150, Rate: 2, TargetTasks: 600}
		}
		rep := experiments.ConfidenceReport(template, experiments.SeedList(*seed, *seeds))
		rep.Write(os.Stdout)
		return
	}
	if *losses {
		template := experiments.ScenarioConfig{}
		if *quick {
			template = experiments.ScenarioConfig{Workers: 150, Rate: 2, TargetTasks: 600}
		}
		experiments.LossReport(template, *seed).Write(os.Stdout)
		return
	}
	if *sensitivity {
		template := experiments.ScenarioConfig{}
		if *quick {
			template = experiments.ScenarioConfig{Workers: 150, Rate: 2, TargetTasks: 600}
		}
		experiments.DeadlineSensitivity(*seed, template).Write(os.Stdout)
		experiments.ThresholdSensitivity(*seed, template).Write(os.Stdout)
		return
	}

	want := map[string]bool{}
	if *fig == "all" {
		for f := 3; f <= 10; f++ {
			want[strconv.Itoa(f)] = true
		}
	} else {
		for _, f := range strings.Split(*fig, ",") {
			want[strings.TrimSpace(f)] = true
		}
	}

	if want["3"] || want["4"] {
		cfg := experiments.MatchBenchConfig{Seed: *seed, Hungarian: *hungarian}
		if *quick {
			cfg.Workers = 200
			cfg.TaskCounts = []int{1, 50, 100, 200}
		}
		fig3, fig4 := experiments.Figures34(cfg)
		if want["3"] {
			fig3.Write(os.Stdout)
		}
		if want["4"] {
			fig4.Write(os.Stdout)
		}
	}

	if want["5"] || want["6"] || want["7"] || want["8"] {
		results, reports := experiments.Figures5to8(*seed)
		for _, r := range reports {
			if want[strings.TrimPrefix(r.ID, "fig")] {
				r.Write(os.Stdout)
			}
		}
		if *csvDir != "" {
			if err := writeCurveCSVs(*csvDir, results); err != nil {
				fmt.Fprintln(os.Stderr, "reactsim:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote cumulative series CSVs to %s\n\n", *csvDir)
		}
		if *curve {
			for _, res := range results {
				fmt.Printf("curve %s (received → on-time):", res.Technique)
				for _, p := range res.OnTimeSeries.Downsample(12) {
					fmt.Printf(" (%.0f,%.0f)", p[0], p[1])
				}
				fmt.Println()
				fmt.Printf("curve %s (received → positive):", res.Technique)
				for _, p := range res.PositiveSeries.Downsample(12) {
					fmt.Printf(" (%.0f,%.0f)", p[0], p[1])
				}
				fmt.Println()
			}
			fmt.Println()
		}
	}

	if want["9"] || want["10"] {
		cfg := experiments.ScaleConfig{Seed: *seed}
		if *quick {
			cfg.Sizes = []int{100, 250}
			cfg.Rates = []float64{1.5, 3.125}
		}
		_, fig9, fig10 := experiments.Figures910(cfg)
		if want["9"] {
			fig9.Write(os.Stdout)
		}
		if want["10"] {
			fig10.Write(os.Stdout)
		}
	}
}

// printStudy regenerates the §V.C case study: the synthetic CrowdFlower
// dataset whose marginals (half the responses inside the 20 s proposed
// time, 70 % of trust scores above 0.5, a tail reaching hours) calibrate
// the end-to-end experiments' 60-120 s deadlines.
func printStudy(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	_, report := crowd.SynthesizeStudy(10000, rng)
	fmt.Println("== case study: synthesized CrowdFlower traffic-estimation responses (§V.C) ==")
	fmt.Printf("observations          %d\n", report.N)
	fmt.Printf("median response       %v   (proposed task time: 20s)\n", report.MedianResponse.Round(time.Second))
	fmt.Printf("within 20s            %.1f%%  (paper: 50%%)\n", 100*report.FracUnder20s)
	fmt.Printf("trust > 0.5           %.1f%%  (paper: 70%%)\n", 100*report.FracTrustAbove50)
	fmt.Printf("slowest response      %v  (paper: up to 6 hours)\n", report.MaxResponse.Round(time.Minute))
	fmt.Printf("derived deadlines     %v - %v\n", report.SuggestedDeadlines[0], report.SuggestedDeadlines[1])
}

// writeCurveCSVs dumps each technique's cumulative fig-5/6 series to
// <dir>/<technique>-{ontime,positive}.csv.
func writeCurveCSVs(dir string, results []experiments.ScenarioResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, res := range results {
		for _, s := range []*metrics.Series{res.OnTimeSeries, res.PositiveSeries} {
			f, err := os.Create(filepath.Join(dir, s.Name()+".csv"))
			if err != nil {
				return err
			}
			if err := s.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
