// Benchmarks regenerating every figure of the paper's evaluation (§V).
// One benchmark per figure (Figures 3–10), plus ablation benches for the
// design choices DESIGN.md calls out. Figure benchmarks report the figure's
// headline quantity as a custom metric so `go test -bench` output doubles
// as the reproduction record; EXPERIMENTS.md interprets the numbers.
package react_test

import (
	"fmt"
	"testing"

	"react/internal/bipartite"
	"react/internal/experiments"
	"react/internal/matching"
	"react/internal/wire"
)

// ---- Figures 3 and 4: matcher wall time and output weight ----
//
// The paper's setup: 1000 workers, a full bipartite graph, task counts up
// to 1000, uniform [0,1) weights. Figure 3 is the measured time; Figure 4
// the achieved weight. These run the real Go matchers (no modelled
// latency), so absolute times are far below the paper's Java numbers; the
// shape — Greedy superlinear, REACT/Metropolis linear in cycles, REACT's
// weight above Metropolis' — is the reproduction target.

func benchMatch(b *testing.B, algo string, cycles, tasks int) {
	cfg := experiments.MatchBenchConfig{
		Workers:    1000,
		TaskCounts: []int{tasks},
		Cycles:     []int{cycles},
		Seed:       42,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var pt experiments.MatchPoint
	for i := 0; i < b.N; i++ {
		points := experiments.RunMatchBench(cfg)
		for _, p := range points {
			if p.Algorithm == algo && p.Cycles == cycles {
				pt = p
			}
		}
	}
	// ns/op covers the whole sweep harness (graph build + every
	// algorithm); match_ms is this algorithm's own matching time — the
	// quantity Figure 3 plots.
	b.ReportMetric(float64(pt.Elapsed.Microseconds())/1000, "match_ms")
	b.ReportMetric(pt.Weight, "weight")
	b.ReportMetric(float64(pt.Matched), "matched")
}

func BenchmarkFig3Greedy1000Tasks(b *testing.B)          { benchMatch(b, "greedy", 0, 1000) }
func BenchmarkFig3REACT1000Cycles1000Tasks(b *testing.B) { benchMatch(b, "react-1000", 1000, 1000) }
func BenchmarkFig3REACT3000Cycles1000Tasks(b *testing.B) { benchMatch(b, "react-3000", 3000, 1000) }
func BenchmarkFig3Metropolis1000Cycles1000Tasks(b *testing.B) {
	benchMatch(b, "metropolis-1000", 1000, 1000)
}
func BenchmarkFig3Metropolis3000Cycles1000Tasks(b *testing.B) {
	benchMatch(b, "metropolis-3000", 3000, 1000)
}
func BenchmarkFig3Greedy100Tasks(b *testing.B) { benchMatch(b, "greedy", 0, 100) }
func BenchmarkFig4REACTvsMetropolis(b *testing.B) {
	// Figure 4's claim in one number: REACT weight at 1000 cycles minus
	// Metropolis weight at 3000 cycles (positive reproduces the paper).
	cfg := experiments.MatchBenchConfig{
		Workers:    1000,
		TaskCounts: []int{500},
		Cycles:     []int{1000, 3000},
		Seed:       42,
	}
	b.ReportAllocs()
	b.ResetTimer()
	var react1000, metro3000 float64
	for i := 0; i < b.N; i++ {
		for _, p := range experiments.RunMatchBench(cfg) {
			switch p.Algorithm {
			case "react-1000":
				react1000 = p.Weight
			case "metropolis-3000":
				metro3000 = p.Weight
			}
		}
	}
	b.ReportMetric(react1000, "react1000_weight")
	b.ReportMetric(metro3000, "metropolis3000_weight")
	b.ReportMetric(react1000-metro3000, "react_advantage")
}

// ---- Figures 5-8: the end-to-end §V.C scenario ----
//
// 750 workers, 9.375 tasks/s, 8371 tasks, batch bound 10, Eq.2 threshold
// 0.1, 1000 cycles. Each benchmark runs one technique's full scenario and
// reports the figure's quantity.

func benchScenario(b *testing.B, tech func(int64) experiments.Technique) experiments.ScenarioResult {
	b.Helper()
	var res experiments.ScenarioResult
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = experiments.RunScenario(experiments.ScenarioConfig{
			Technique: tech(42),
			Seed:      42,
		})
	}
	return res
}

func BenchmarkFig5REACTDeadlinesMet(b *testing.B) {
	res := benchScenario(b, func(s int64) experiments.Technique { return experiments.REACTTechnique(0, s) })
	b.ReportMetric(float64(res.CompletedOnTime), "ontime_tasks")
	b.ReportMetric(100*res.OnTimeFraction(), "ontime_pct")
}

func BenchmarkFig5GreedyDeadlinesMet(b *testing.B) {
	res := benchScenario(b, func(s int64) experiments.Technique { return experiments.GreedyTechnique() })
	b.ReportMetric(float64(res.CompletedOnTime), "ontime_tasks")
	b.ReportMetric(100*res.OnTimeFraction(), "ontime_pct")
}

func BenchmarkFig5TraditionalDeadlinesMet(b *testing.B) {
	res := benchScenario(b, experiments.TraditionalTechnique)
	b.ReportMetric(float64(res.CompletedOnTime), "ontime_tasks")
	b.ReportMetric(100*res.OnTimeFraction(), "ontime_pct")
}

func BenchmarkFig6PositiveFeedback(b *testing.B) {
	react := benchScenario(b, func(s int64) experiments.Technique { return experiments.REACTTechnique(0, s) })
	trad := experiments.RunScenario(experiments.ScenarioConfig{
		Technique: experiments.TraditionalTechnique(42), Seed: 42,
	})
	b.ReportMetric(float64(react.Positive), "react_positive")
	b.ReportMetric(float64(trad.Positive), "traditional_positive")
}

func BenchmarkFig7WorkerExecTime(b *testing.B) {
	react := benchScenario(b, func(s int64) experiments.Technique { return experiments.REACTTechnique(0, s) })
	trad := experiments.RunScenario(experiments.ScenarioConfig{
		Technique: experiments.TraditionalTechnique(42), Seed: 42,
	})
	b.ReportMetric(react.MeanWorkerExec, "react_exec_s")
	b.ReportMetric(trad.MeanWorkerExec, "traditional_exec_s")
}

func BenchmarkFig8TotalExecTime(b *testing.B) {
	react := benchScenario(b, func(s int64) experiments.Technique { return experiments.REACTTechnique(0, s) })
	trad := experiments.RunScenario(experiments.ScenarioConfig{
		Technique: experiments.TraditionalTechnique(42), Seed: 42,
	})
	b.ReportMetric(react.MeanTotalExec, "react_total_s")
	b.ReportMetric(trad.MeanTotalExec, "traditional_total_s")
}

// ---- Figures 9 and 10: the scalability sweep ----
//
// Sizes {100,250,500,750,1000} paired with rates {1.5,...,12.5}/s. One
// benchmark covers both figures (same runs); the reported metrics are the
// endpoints the paper highlights: REACT's and Greedy's on-time percentage
// at the largest scale.

func BenchmarkFig9And10Scalability(b *testing.B) {
	b.ReportAllocs()
	var points []experiments.ScalePoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points = experiments.RunScalability(experiments.ScaleConfig{Seed: 42})
	}
	for _, p := range points {
		if p.Workers == 1000 {
			b.ReportMetric(p.OnTimePct, p.Technique+"_1000w_ontime_pct")
			b.ReportMetric(p.PositivePct, p.Technique+"_1000w_positive_pct")
		}
		if p.Workers == 100 {
			b.ReportMetric(p.OnTimePct, p.Technique+"_100w_ontime_pct")
		}
	}
}

// ---- Ablations: the design choices DESIGN.md calls out ----

// BenchmarkAblationNoMonitor removes the Eq. 2 reassignment monitor from
// REACT, isolating how much of Figure 5's gain comes from reassignment
// versus quality-aware matching.
func BenchmarkAblationNoMonitor(b *testing.B) {
	tech := experiments.REACTTechnique(0, 42)
	tech.Name = "react-nomonitor"
	tech.UseMonitor = false
	var res experiments.ScenarioResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = experiments.RunScenario(experiments.ScenarioConfig{Technique: tech, Seed: 42})
	}
	b.ReportMetric(100*res.OnTimeFraction(), "ontime_pct")
	b.ReportMetric(float64(res.Reassignments), "reassignments")
}

// BenchmarkAblationNoPruning removes the Eq. 3 edge filter, so REACT may
// assign tasks to workers whose model says they cannot make the deadline.
func BenchmarkAblationNoPruning(b *testing.B) {
	tech := experiments.REACTTechnique(0, 42)
	tech.Name = "react-nopruning"
	tech.NoPruning = true
	var res experiments.ScenarioResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = experiments.RunScenario(experiments.ScenarioConfig{Technique: tech, Seed: 42})
	}
	b.ReportMetric(100*res.OnTimeFraction(), "ontime_pct")
}

// BenchmarkAblationAdaptiveCycles compares the fixed 1000-cycle budget the
// paper uses against the adaptive budget it suggests (§IV.A), on a large
// full graph where fixed cycles starve.
func BenchmarkAblationAdaptiveCycles(b *testing.B) {
	for _, mode := range []string{"fixed1000", "adaptive"} {
		b.Run(mode, func(b *testing.B) {
			m := matching.REACT{Cycles: 1000}
			if mode == "adaptive" {
				m = matching.REACT{Adaptive: true}
			}
			g := fullGraph(500, 500)
			var weight float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				match, _ := m.Match(g)
				weight = match.Weight()
			}
			b.ReportMetric(weight, "weight")
		})
	}
}

// BenchmarkAblationGreedyScanCost separates the greedy *policy* from the
// paper's Θ(V·E) *cost model*: identical assignments, different scan
// strategy.
func BenchmarkAblationGreedyScanCost(b *testing.B) {
	g := fullGraph(500, 500)
	b.Run("paper-VE-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matching.Greedy{}.Match(g)
		}
	})
	b.Run("indexed-E-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			matching.GreedyIndexed{}.Match(g)
		}
	})
}

// ---- Engine throughput: the sharded scheduling engine under open load ----
//
// BenchmarkEngineThroughput pushes submit→assign→complete cycles through
// internal/engine as fast as one driver goroutine can offer them, with 32
// worker goroutines completing whatever they are handed. The interesting
// variable is the task-store shard count: with a single shard every
// completion, feedback, and status read serializes behind the same lock the
// driver needs for submissions and batch snapshots, so workers fall behind,
// the unassigned backlog climbs past the batch bound, and every scheduling
// round pays the paper's Θ(V·E) greedy scan over an ever-larger graph —
// contention compounds into quadratic matcher work, exactly the failure
// mode a real-time platform cannot afford (§V.C's Greedy queue collapse is
// the same feedback loop). Striping the bookkeeping lets completions drain
// in parallel with batch construction, the backlog stays near the bound,
// and the matcher only ever sees small graphs. The reported cycles/s is
// end-to-end completed tasks per wall second; BENCH_engine.json records the
// baseline (16 shards sustain >4x the single-shard rate on the reference
// box).
// The workload lives in experiments.RunEngineBench so `reactbench -check`
// (the CI regression gate against BENCH_engine.json) measures exactly what
// this benchmark measures.
func benchEngineThroughput(b *testing.B, shards int) {
	b.ResetTimer()
	res, err := experiments.RunEngineBench(experiments.EngineBenchConfig{
		Shards: shards,
		Ops:    b.N,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(res.CyclesPerSec, "cycles/s")
	b.ReportMetric(res.BatchesPerKop, "batches/kop")
	b.ReportMetric(float64(res.Expired), "expired")
}

func BenchmarkEngineThroughput(b *testing.B) {
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			benchEngineThroughput(b, shards)
		})
	}
}

// ---- Wire transport: framing cost and hot-path throughput ----
//
// BenchmarkWireEncode measures the pooled codec's steady state on the hot
// frame shapes: encoding into a reused buffer must report 0 allocs/op —
// the whole point of replacing encoding/json on the push path. The
// reactbench allocs gate holds the same property in CI via
// testing.AllocsPerRun.
func BenchmarkWireEncode(b *testing.B) {
	frames := []struct {
		name string
		m    wire.Message
	}{
		{"assign", wire.Message{Type: "assignment", Assignment: &wire.AssignmentPayload{
			TaskID: "t00001234", WorkerID: "w042", Category: "traffic",
			Description: "is the on-ramp at exit 14 jammed?",
			Lat:         37.9838, Lon: 23.7275, DeadlineMS: 60000, Reward: 0.25,
		}}},
		{"submit", wire.Message{Type: "submit", Seq: 7, Task: &wire.TaskPayload{
			ID: "t00001234", Lat: 37.9838, Lon: 23.7275, DeadlineMS: 60000,
			Reward: 0.25, Category: "traffic", Description: "is the on-ramp at exit 14 jammed?",
		}}},
		{"result", wire.Message{Type: "result", Result: &wire.ResultPayload{
			TaskID: "t00001234", WorkerID: "w042", Answer: "yes, jammed", MetDeadline: true,
		}}},
		{"event", wire.Message{Type: "event", Event: &wire.EventPayload{
			Seq: 991, Kind: "complete", TaskID: "t00001234", Worker: "w042",
			AtUnixMS: 1754550000123, Status: "completed", MetDeadline: true, Attempts: 1,
		}}},
	}
	for _, f := range frames {
		f := f
		b.Run(f.name, func(b *testing.B) {
			buf := make([]byte, 0, 1024)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = wire.AppendFrame(buf[:0], &f.m)
			}
			_ = buf
		})
	}
}

// benchWire runs the shared wire workload (experiments.RunWireBench, the
// same harness `reactbench -check` replays against BENCH_wire.json) and
// reports delivered frames per wall second plus how well the server
// coalesced. One op is one delivered frame, so b.N scales the run length.
func benchWire(b *testing.B, shape string, conns int) {
	frames := b.N/conns + 1 // delivered frames ≈ b.N for either shape
	b.ResetTimer()
	res, err := experiments.RunWireBench(experiments.WireBenchConfig{
		Shape: shape, Conns: conns, Frames: frames,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(res.FramesPerSec, "frames/s")
	b.ReportMetric(res.FramesPerFlush, "frames/flush")
}

func BenchmarkWireBroadcast(b *testing.B) {
	for _, conns := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("conns=%d", conns), func(b *testing.B) {
			benchWire(b, "broadcast", conns)
		})
	}
}

func BenchmarkWireRequestReply(b *testing.B) {
	for _, conns := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("conns=%d", conns), func(b *testing.B) {
			benchWire(b, "request-reply", conns)
		})
	}
}

func fullGraph(w, t int) *bipartite.Graph {
	return bipartite.Full(w, t, func(i, j int) float64 {
		return float64((i*31+j*17)%1000) / 1000
	})
}

// BenchmarkAblationPortfolio runs the end-to-end scenario with 4 parallel
// REACT searches per batch at the same modelled latency as one search,
// isolating what free core-parallelism buys the deadline rate.
func BenchmarkAblationPortfolio(b *testing.B) {
	tech := experiments.PortfolioTechnique(4, 1000, 42)
	var res experiments.ScenarioResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = experiments.RunScenario(experiments.ScenarioConfig{Technique: tech, Seed: 42})
	}
	b.ReportMetric(100*res.OnTimeFraction(), "ontime_pct")
	b.ReportMetric(100*res.PositiveFraction(), "positive_pct")
}

// BenchmarkAblationWarmStart compares cold REACT against the greedy-seeded
// hybrid at a budget too small to build a matching from scratch.
func BenchmarkAblationWarmStart(b *testing.B) {
	g := fullGraph(300, 300)
	for _, mode := range []string{"cold", "warm"} {
		b.Run(mode, func(b *testing.B) {
			var weight float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m, _ := matching.REACT{
					Cycles:    1000,
					WarmStart: mode == "warm",
				}.Match(g)
				weight = m.Weight()
			}
			b.ReportMetric(weight, "weight")
		})
	}
}
