# The same commands CI runs (.github/workflows/ci.yml), runnable locally.

GO ?= go
# Packages with real goroutine concurrency; the race detector gates them
# on every change.
RACE_PKGS = ./internal/engine ./internal/core ./internal/wire ./internal/federation ./internal/taskq ./internal/faultnet

.PHONY: all build lint vet test race chaos determinism ci

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# reactlint is the project-specific suite (docs/LINTING.md): clock
# discipline, seeded randomness, lock hygiene, goroutine lifecycle,
# dropped errors, print-debugging. Exits non-zero on any finding.
lint: vet
	$(GO) run ./cmd/reactlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Fault-injection suite: drives the wire layer through resets, delays,
# partitions, idle-deadline expiry, and a full server restart (via
# internal/faultnet) under the race detector, plus the resilient load
# run. `reactload -chaos` is the same scenario as a live command.
chaos:
	$(GO) test -race -run 'Chaos|Proxy|Resilient' ./internal/wire ./internal/faultnet ./internal/loadgen

# Two same-seed simulation runs must produce byte-identical reports —
# the reproducibility property the linter exists to protect. Figures
# 3/4 are excluded: they measure real matcher wall time by design.
# Figure 5 is additionally diffed against a checked-in golden file so
# refactors of the scheduling path can't silently shift the numbers.
determinism:
	$(GO) build -o /tmp/reactsim-determinism ./cmd/reactsim
	@for fig in 5 6 7 8 9 10; do \
		/tmp/reactsim-determinism -fig $$fig -quick -seed 7 > /tmp/reactsim-det-a || exit 1; \
		/tmp/reactsim-determinism -fig $$fig -quick -seed 7 > /tmp/reactsim-det-b || exit 1; \
		cmp /tmp/reactsim-det-a /tmp/reactsim-det-b || { echo "fig $$fig NOT deterministic"; exit 1; }; \
		if [ $$fig = 5 ]; then \
			cmp /tmp/reactsim-det-a testdata/golden_fig5_seed7.txt || { echo "fig 5 DIVERGES from testdata/golden_fig5_seed7.txt"; exit 1; }; \
			echo "fig 5: byte-identical + matches golden"; \
		else \
			echo "fig $$fig: byte-identical"; \
		fi; \
	done

ci: build lint test race chaos determinism
