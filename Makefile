# The same commands CI runs (.github/workflows/ci.yml), runnable locally.

GO ?= go
# Packages with real goroutine concurrency; the race detector gates them
# on every change.
RACE_PKGS = ./internal/engine ./internal/core ./internal/wire ./internal/federation ./internal/taskq ./internal/faultnet ./internal/obs ./internal/journal ./internal/event ./internal/trace ./internal/admission
# Packages whose statement coverage must not fall below COVER_FLOOR; the
# scheduling engine and the metrics layer are the paper's core claims,
# the linter is the gate everything else leans on, the journal is what
# crash recovery trusts, the event spine is what every consumer of
# lifecycle state (journal, trace, obs, wire) now rides on, and the
# admission plane decides which tasks are turned away at the door.
COVER_PKGS = internal/engine internal/metrics internal/lint internal/journal internal/event internal/trace internal/admission
COVER_FLOOR = 70

.PHONY: all build lint lint-typed lockorder lockorder-check vet test race chaos recovery determinism bench wire-baseline overload overload-baseline fuzz coverage ci

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# reactlint is the project-specific suite (docs/LINTING.md). Both tiers:
# syntactic (clock discipline, seeded randomness, lock hygiene, goroutine
# lifecycle, dropped errors, print-debugging) and typed (lock-order
# deadlock detection, hook reentrancy, blocking-under-lock,
# interprocedural clock/RNG taint). Exits non-zero on any finding.
lint: vet
	$(GO) run ./cmd/reactlint ./...

# Just the typed dataflow tier (type-checks the module; slower than the
# syntactic tier, still a few seconds).
lint-typed:
	$(GO) run ./cmd/reactlint -tier typed ./...

# Regenerate the inferred lock-ordering document from the current code.
lockorder:
	$(GO) run ./cmd/reactlint -lockorder-out docs/LOCKORDER.md ./...

# CI gate: docs/LOCKORDER.md must match what the code implies.
lockorder-check:
	@$(GO) run ./cmd/reactlint -lockorder-out /tmp/LOCKORDER.regen.md ./... || true
	@cmp docs/LOCKORDER.md /tmp/LOCKORDER.regen.md || { \
		echo "docs/LOCKORDER.md is out of date; run 'make lockorder' and commit the result"; exit 1; }

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Fault-injection suite: drives the wire layer through resets, delays,
# partitions, idle-deadline expiry, and a full server restart (via
# internal/faultnet) under the race detector, plus the resilient load
# run. `reactload -chaos` is the same scenario as a live command.
chaos:
	$(GO) test -race -run 'Chaos|Proxy|Resilient' ./internal/wire ./internal/faultnet ./internal/loadgen

# Crash-durability gate: a real reactd with -data-dir is SIGKILLed twice
# mid-run and must recover from its write-ahead journal with zero
# unresolved tasks (docs/PERSISTENCE.md). Skips itself without REACTD_BIN,
# so plain `go test ./...` stays hermetic.
recovery:
	$(GO) build -o /tmp/reactd-recovery ./cmd/reactd
	REACTD_BIN=/tmp/reactd-recovery $(GO) test -race -run TestKillRecovery -count=1 -v ./internal/loadgen

# Two same-seed simulation runs must produce byte-identical reports —
# the reproducibility property the linter exists to protect. Figures
# 3/4 are excluded: they measure real matcher wall time by design.
# Figure 5 is additionally diffed against a checked-in golden file so
# refactors of the scheduling path can't silently shift the numbers.
determinism:
	$(GO) build -o /tmp/reactsim-determinism ./cmd/reactsim
	@for fig in 5 6 7 8 9 10; do \
		/tmp/reactsim-determinism -fig $$fig -quick -seed 7 > /tmp/reactsim-det-a || exit 1; \
		/tmp/reactsim-determinism -fig $$fig -quick -seed 7 > /tmp/reactsim-det-b || exit 1; \
		cmp /tmp/reactsim-det-a /tmp/reactsim-det-b || { echo "fig $$fig NOT deterministic"; exit 1; }; \
		if [ $$fig = 5 ]; then \
			cmp /tmp/reactsim-det-a testdata/golden_fig5_seed7.txt || { echo "fig 5 DIVERGES from testdata/golden_fig5_seed7.txt"; exit 1; }; \
			echo "fig 5: byte-identical + matches golden"; \
		else \
			echo "fig $$fig: byte-identical"; \
		fi; \
	done

# Benchmark gate: first a 1x smoke that the benchmark harnesses still run,
# then the in-process throughput checks against the committed baselines
# (BENCH_engine.json, BENCH_wire.json, and BENCH_overload.json, -40%
# tolerance each, plus the codec's 0 allocs/op encode contract and the
# admission plane's 70%-goodput-at-10x floor). bench_check.json,
# wire_check.json, and overload_check.json are the CI artifacts.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkEngineThroughput|BenchmarkWireEncode' -benchtime 1x .
	$(GO) run ./cmd/reactbench -check -check-out bench_check.json -wire-out wire_check.json -overload-out overload_check.json

# Just the admission overload gate: replay BENCH_overload.json in virtual
# time (deterministic — same numbers on any machine) and enforce the
# goodput floor. docs/ADMISSION.md explains the experiment.
overload:
	$(GO) run ./cmd/reactbench -overload-check -overload-out overload_check.json

# Re-measure the wire grid on this box and rewrite BENCH_wire.json.
wire-baseline:
	$(GO) run ./cmd/reactbench -wire-record

# Re-run the virtual-time overload experiment and rewrite
# BENCH_overload.json (bit-reproducible anywhere).
overload-baseline:
	$(GO) run ./cmd/reactbench -overload-record

# Short fuzz budgets over the frame codec and the journal decoder — the
# nightly workflow's fast leg, runnable locally. FUZZTIME scales it.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzFrameDecode -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzMessageDecode -fuzztime $(FUZZTIME) ./internal/wire
	$(GO) test -run '^$$' -fuzz FuzzJournalDecode -fuzztime $(FUZZTIME) ./internal/journal

# Coverage floor: whole-repo profile (coverage.out is the CI artifact),
# then per-package floors on the packages named in COVER_PKGS.
coverage:
	@$(GO) test -coverprofile=coverage.out ./... > coverage.txt; \
		status=$$?; cat coverage.txt; \
		[ $$status -eq 0 ] || exit $$status
	@for pkg in $(COVER_PKGS); do \
		pct=$$(grep "react/$$pkg" coverage.txt | sed -n 's/.*coverage: \([0-9.]*\)%.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "coverage: no figure for $$pkg"; exit 1; fi; \
		if awk -v p="$$pct" -v f="$(COVER_FLOOR)" 'BEGIN { exit !(p+0 >= f) }'; then \
			echo "coverage: $$pkg $$pct% (floor $(COVER_FLOOR)%)"; \
		else \
			echo "coverage: $$pkg $$pct% BELOW the $(COVER_FLOOR)% floor"; exit 1; \
		fi; \
	done

ci: build lint test race chaos recovery determinism
