package experiments

import (
	"fmt"
	"io"

	"react/internal/metrics"
)

// FigureReport is a rendered reproduction of one of the paper's figures: a
// table of the regenerated data plus notes comparing against the published
// values.
type FigureReport struct {
	ID    string
	Title string
	Table *metrics.Table
	Notes []string
}

// Write renders the report.
func (r FigureReport) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title); err != nil {
		return err
	}
	if err := r.Table.Write(w); err != nil {
		return err
	}
	for _, n := range r.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// Figures34 runs the matcher sweep once and renders Figure 3 (wall time)
// and Figure 4 (output weight).
func Figures34(cfg MatchBenchConfig) (fig3, fig4 FigureReport) {
	points := RunMatchBench(cfg)
	t3 := metrics.NewTable("algorithm", "cycles", "tasks", "edges", "time_ms")
	t4 := metrics.NewTable("algorithm", "cycles", "tasks", "weight", "matched")
	for _, p := range points {
		t3.AddRow(p.Algorithm, p.Cycles, p.Tasks, p.Edges, float64(p.Elapsed.Microseconds())/1000)
		t4.AddRow(p.Algorithm, p.Cycles, p.Tasks, p.Weight, p.Matched)
	}
	fig3 = FigureReport{
		ID:    "fig3",
		Title: "matching wall time vs task count (1000 workers, full graph)",
		Table: t3,
		Notes: []string{
			"paper (Java/PlanetLab): greedy 99.7 s at 1000 tasks; react/metropolis 12 s at 1000 cycles, 45 s at 3000",
			"shape to check: greedy superlinear in tasks; react/metropolis linear in cycles, insensitive to task count",
		},
	}
	fig4 = FigureReport{
		ID:    "fig4",
		Title: "matching output weight vs task count (1000 workers, full graph)",
		Table: t4,
		Notes: []string{
			"paper: greedy near-optimal on full graphs; react above metropolis at equal cycles, and at 1000 cycles react beats metropolis at 3000",
		},
	}
	return fig3, fig4
}

// Figures5to8 runs the §V.C end-to-end scenario for the three techniques
// and renders Figures 5–8.
func Figures5to8(seed int64) (results []ScenarioResult, reports []FigureReport) {
	for _, tech := range []Technique{
		REACTTechnique(0, seed),
		GreedyTechnique(),
		TraditionalTechnique(seed),
	} {
		results = append(results, RunScenario(ScenarioConfig{Technique: tech, Seed: seed}))
	}

	t5 := metrics.NewTable("technique", "received", "ontime", "ontime_pct", "expired", "late")
	t6 := metrics.NewTable("technique", "received", "positive", "positive_pct")
	t7 := metrics.NewTable("technique", "mean_worker_exec_s", "p50_s", "p95_s", "reassignments")
	t8 := metrics.NewTable("technique", "mean_total_exec_s", "matcher_busy_s", "batches")
	for _, r := range results {
		t5.AddRow(r.Technique, r.Received, r.CompletedOnTime, 100*r.OnTimeFraction(), r.Expired, r.CompletedLate)
		t6.AddRow(r.Technique, r.Received, r.Positive, 100*r.PositiveFraction())
		t7.AddRow(r.Technique, r.MeanWorkerExec, r.WorkerExecP50, r.WorkerExecP95, r.Reassignments)
		t8.AddRow(r.Technique, r.MeanTotalExec, r.MatcherBusy, r.Batches)
	}
	reports = []FigureReport{
		{
			ID:    "fig5",
			Title: "tasks finished before deadline (750 workers, 9.375 tasks/s, 8371 tasks)",
			Table: t5,
			Notes: []string{
				"paper: react 6091/8371, traditional 4264/8371 (react +43%; abstract headline: up to 61% more deadline-met tasks); greedy rises until ~4200 then collapses",
				"series points for the cumulative curve: reactsim -fig 5 -curve",
			},
		},
		{
			ID:    "fig6",
			Title: "positive feedbacks",
			Table: t6,
			Notes: []string{"paper: react 4941 vs traditional 3066; greedy mirrors its fig5 collapse"},
		},
		{
			ID:    "fig7",
			Title: "average execution time per worker (final worker only)",
			Table: t7,
			Notes: []string{"paper: react shortest (reassignment rescues delayed tasks), traditional worst"},
		},
		{
			ID:    "fig8",
			Title: "average total execution time (incl. assignment and reassignment)",
			Table: t8,
			Notes: []string{"paper: react faster than traditional despite reassignments; greedy inflated by queueing"},
		},
	}
	return results, reports
}

// Figures910 runs the scalability sweep and renders Figures 9 and 10.
func Figures910(cfg ScaleConfig) (points []ScalePoint, fig9, fig10 FigureReport) {
	points = RunScalability(cfg)
	t9 := metrics.NewTable("workers", "rate", "technique", "received", "ontime_pct")
	t10 := metrics.NewTable("workers", "rate", "technique", "positive_pct")
	for _, p := range points {
		t9.AddRow(p.Workers, p.Rate, p.Technique, p.Received, p.OnTimePct)
		t10.AddRow(p.Workers, p.Rate, p.Technique, p.PositivePct)
	}
	fig9 = FigureReport{
		ID:    "fig9",
		Title: "% tasks before deadline vs scale (sizes 100..1000 at rates 1.5..12.5/s)",
		Table: t9,
		Notes: []string{
			"paper: react mildly affected by scale; greedy beats react at 100 workers but falls to 16% at 1000; traditional noticeably affected only at 1000",
		},
	}
	fig10 = FigureReport{
		ID:    "fig10",
		Title: "% positive feedback vs scale",
		Table: t10,
		Notes: []string{"paper: proportional to fig9 for all techniques"},
	}
	return points, fig9, fig10
}
