package experiments

import (
	"strings"
	"testing"
	"time"

	"react/internal/trace"
)

// smallScenario keeps unit tests fast: 150 workers, 2 tasks/s, 600 tasks
// (5 simulated minutes).
func smallScenario(t Technique, seed int64) ScenarioConfig {
	return ScenarioConfig{
		Technique:   t,
		Workers:     150,
		Rate:        2,
		TargetTasks: 600,
		Seed:        seed,
	}
}

func TestScenarioConservation(t *testing.T) {
	for _, tech := range []Technique{
		REACTTechnique(1000, 1),
		GreedyTechnique(),
		TraditionalTechnique(1),
	} {
		res := RunScenario(smallScenario(tech, 1))
		if res.Received != 600 {
			t.Fatalf("%s: received %d, want 600", tech.Name, res.Received)
		}
		total := res.CompletedOnTime + res.CompletedLate + res.Expired
		if total != res.Received {
			t.Fatalf("%s: terminal %d != received %d (ontime %d late %d expired %d)",
				tech.Name, total, res.Received, res.CompletedOnTime, res.CompletedLate, res.Expired)
		}
		if res.Positive > res.CompletedOnTime {
			t.Fatalf("%s: positive %d exceeds on-time %d", tech.Name, res.Positive, res.CompletedOnTime)
		}
		if res.Batches == 0 {
			t.Fatalf("%s: no batches ran", tech.Name)
		}
		if res.OnTimeSeries.Len() == 0 {
			t.Fatalf("%s: empty Fig.5 series", tech.Name)
		}
	}
}

func TestScenarioDeterministic(t *testing.T) {
	a := RunScenario(smallScenario(REACTTechnique(1000, 7), 7))
	b := RunScenario(smallScenario(REACTTechnique(1000, 7), 7))
	if a.CompletedOnTime != b.CompletedOnTime || a.Positive != b.Positive ||
		a.Reassignments != b.Reassignments || a.Batches != b.Batches {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestREACTBeatsTraditionalOnDeadlines(t *testing.T) {
	// The paper's headline (Fig. 5): REACT meets substantially more
	// deadlines than the traditional platform, because it reassigns doomed
	// tasks. Run the reduced scenario at a scale where all techniques are
	// stable so the comparison isolates the reassignment model.
	react := RunScenario(smallScenario(REACTTechnique(1000, 3), 3))
	trad := RunScenario(smallScenario(TraditionalTechnique(3), 3))
	if react.CompletedOnTime <= trad.CompletedOnTime {
		t.Fatalf("REACT on-time %d not above traditional %d",
			react.CompletedOnTime, trad.CompletedOnTime)
	}
	// And more positive feedback (Fig. 6), via quality-aware selection.
	if react.Positive <= trad.Positive {
		t.Fatalf("REACT positive %d not above traditional %d", react.Positive, trad.Positive)
	}
	// Reassignment actually happened.
	if react.Reassignments == 0 {
		t.Fatal("REACT run never reassigned")
	}
	if trad.Reassignments != 0 {
		t.Fatal("traditional run reassigned")
	}
}

func TestREACTFasterWorkerExec(t *testing.T) {
	// Fig. 7: REACT's final-worker execution times are shorter than the
	// traditional approach's because doomed assignments are cut short and
	// retried on prompt workers.
	react := RunScenario(smallScenario(REACTTechnique(1000, 11), 11))
	trad := RunScenario(smallScenario(TraditionalTechnique(11), 11))
	if react.MeanWorkerExec >= trad.MeanWorkerExec {
		t.Fatalf("REACT mean exec %.1fs not below traditional %.1fs",
			react.MeanWorkerExec, trad.MeanWorkerExec)
	}
	// Fig. 8: total latency (incl. queueing and reassignment) also lower.
	if react.MeanTotalExec >= trad.MeanTotalExec {
		t.Fatalf("REACT mean total %.1fs not below traditional %.1fs",
			react.MeanTotalExec, trad.MeanTotalExec)
	}
}

func TestScenarioNormalizeDefaults(t *testing.T) {
	c := ScenarioConfig{}.Normalize()
	if c.Workers != 750 || c.Rate != 9.375 || c.TargetTasks != 8371 ||
		c.BatchBound != 10 || c.MonitorPeriod != time.Second {
		t.Fatalf("defaults = %+v", c)
	}
	if c.Technique.Name != "react" {
		t.Fatalf("default technique = %q", c.Technique.Name)
	}
}

func TestFractions(t *testing.T) {
	r := ScenarioResult{Received: 200, CompletedOnTime: 150, Positive: 100}
	if r.OnTimeFraction() != 0.75 || r.PositiveFraction() != 0.5 {
		t.Fatalf("fractions = %v/%v", r.OnTimeFraction(), r.PositiveFraction())
	}
	var empty ScenarioResult
	if empty.OnTimeFraction() != 0 || empty.PositiveFraction() != 0 {
		t.Fatal("empty fractions not zero")
	}
}

func TestAttemptsTracked(t *testing.T) {
	react := RunScenario(smallScenario(REACTTechnique(1000, 21), 21))
	trad := RunScenario(smallScenario(TraditionalTechnique(21), 21))
	// Traditional never reassigns: every completion took exactly 1 attempt.
	if trad.MeanAttempts != 1 || trad.MaxAttempts != 1 {
		t.Fatalf("traditional attempts = %v/%d", trad.MeanAttempts, trad.MaxAttempts)
	}
	// REACT reassigns, so attempts exceed 1 on average and sometimes chain.
	if react.MeanAttempts <= 1 {
		t.Fatalf("react mean attempts = %v", react.MeanAttempts)
	}
	if react.MaxAttempts < 2 {
		t.Fatalf("react max attempts = %d", react.MaxAttempts)
	}
}

func TestTraceConsistentWithCounters(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := smallScenario(REACTTechnique(1000, 31), 31)
	cfg.Trace = rec
	res := RunScenario(cfg)
	sum := rec.Summarize()
	if sum.Tasks != res.Received {
		t.Fatalf("trace tasks %d != received %d", sum.Tasks, res.Received)
	}
	if sum.Completed != res.CompletedOnTime+res.CompletedLate {
		t.Fatalf("trace completed %d != %d", sum.Completed, res.CompletedOnTime+res.CompletedLate)
	}
	if sum.Expired != res.Expired {
		t.Fatalf("trace expired %d != %d", sum.Expired, res.Expired)
	}
	if sum.Open != 0 {
		t.Fatalf("trace left %d open tasks", sum.Open)
	}
	if sum.TotalRevoked != res.Reassignments {
		t.Fatalf("trace revoked %d != reassignments %d", sum.TotalRevoked, res.Reassignments)
	}
	if sum.MaxAttempts != res.MaxAttempts && sum.MaxAttempts < res.MaxAttempts {
		t.Fatalf("trace max attempts %d below result %d", sum.MaxAttempts, res.MaxAttempts)
	}
	if sum.MeanQueueWait <= 0 {
		t.Fatalf("mean queue wait = %v", sum.MeanQueueWait)
	}
	// Every completed lifecycle names its final worker.
	for _, l := range rec.Lifecycles() {
		if l.Done && !l.Expired && l.FinalWorker == "" {
			t.Fatalf("completed task %s without final worker", l.Task)
		}
	}
}

func TestLossAttributionPartitionsMisses(t *testing.T) {
	rec := trace.NewRecorder()
	cfg := smallScenario(REACTTechnique(1000, 61), 61)
	cfg.Trace = rec
	res := RunScenario(cfg)
	losses := AttributeLosses(rec)
	if losses.Open != 0 {
		t.Fatalf("open lifecycles after drain: %d", losses.Open)
	}
	if losses.Met != res.CompletedOnTime {
		t.Fatalf("met %d != on-time %d", losses.Met, res.CompletedOnTime)
	}
	if losses.Missed != res.CompletedLate+res.Expired {
		t.Fatalf("missed %d != late+expired %d", losses.Missed, res.CompletedLate+res.Expired)
	}
	var sum int
	for _, n := range losses.ByKind {
		sum += n
	}
	if sum != losses.Missed {
		t.Fatalf("kinds sum %d != missed %d", sum, losses.Missed)
	}

	// Traditional: no monitor, so no rescue categories at all, and nothing
	// expires in queue at this stable scale.
	recT := trace.NewRecorder()
	cfgT := smallScenario(TraditionalTechnique(61), 61)
	cfgT.Trace = recT
	RunScenario(cfgT)
	lt := AttributeLosses(recT)
	if lt.ByKind[LossRescueLate] != 0 || lt.ByKind[LossRescueExpired] != 0 {
		t.Fatalf("traditional has rescue losses: %+v", lt.ByKind)
	}
	if lt.ByKind[LossAbandoned] == 0 {
		t.Fatal("traditional shows no abandoned-late losses")
	}
}

func TestChurnReducesAvailabilityButConserves(t *testing.T) {
	base := smallScenario(REACTTechnique(1000, 71), 71)
	steady := RunScenario(base)

	churned := base
	churned.Technique = REACTTechnique(1000, 71)
	churned.Churn = 60 * time.Second
	res := RunScenario(churned)
	if res.Received != 600 {
		t.Fatalf("received %d", res.Received)
	}
	if got := res.CompletedOnTime + res.CompletedLate + res.Expired; got != res.Received {
		t.Fatalf("conservation broken under churn: %d != %d", got, res.Received)
	}
	// At this light load (150 workers, 2 tasks/s) losing ~20% of workers
	// to connectivity cycles should neither collapse the run nor change it
	// beyond noise: stay within ±20% of the steady result.
	lo := int(0.8 * float64(steady.CompletedOnTime))
	hi := int(1.2 * float64(steady.CompletedOnTime))
	if res.CompletedOnTime < lo || res.CompletedOnTime > hi {
		t.Fatalf("churned on-time %d outside [%d,%d] around steady %d",
			res.CompletedOnTime, lo, hi, steady.CompletedOnTime)
	}
}

func TestChurnOffPreservesBaselineResults(t *testing.T) {
	// The churn feature must not perturb the published figures when off:
	// same seed, same counters as always.
	a := RunScenario(smallScenario(REACTTechnique(1000, 7), 7))
	b := RunScenario(smallScenario(REACTTechnique(1000, 7), 7))
	if a.CompletedOnTime != b.CompletedOnTime || a.Reassignments != b.Reassignments {
		t.Fatalf("baseline drifted: %+v vs %+v", a.CompletedOnTime, b.CompletedOnTime)
	}
}

func TestSensitivityKnobsApply(t *testing.T) {
	// Longer deadlines must raise the traditional baseline's on-time rate
	// (delayed workers fit inside the window).
	short := smallScenario(TraditionalTechnique(81), 81)
	short.DeadlineMin, short.DeadlineMax = 30*time.Second, 60*time.Second
	long := smallScenario(TraditionalTechnique(81), 81)
	long.DeadlineMin, long.DeadlineMax = 4*time.Minute, 8*time.Minute
	rs, rl := RunScenario(short), RunScenario(long)
	if rl.OnTimeFraction() <= rs.OnTimeFraction() {
		t.Fatalf("longer deadlines did not help: %.2f vs %.2f",
			rl.OnTimeFraction(), rs.OnTimeFraction())
	}
	// A higher Eq.2 threshold must produce at least as many reassignments.
	lo := smallScenario(REACTTechnique(1000, 83), 83)
	lo.MonitorThreshold = 0.02
	hi := smallScenario(REACTTechnique(1000, 83), 83)
	hi.MonitorThreshold = 0.5
	rlo, rhi := RunScenario(lo), RunScenario(hi)
	if rhi.Reassignments <= rlo.Reassignments {
		t.Fatalf("threshold 0.5 reassigned %d, not above 0.02's %d",
			rhi.Reassignments, rlo.Reassignments)
	}
}

func TestLossReportRenders(t *testing.T) {
	template := ScenarioConfig{Workers: 100, Rate: 1.5, TargetTasks: 300}
	rep := LossReport(template, 5)
	var b strings.Builder
	if err := rep.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"react", "greedy", "traditional", string(LossQueued)} {
		if !strings.Contains(out, want) {
			t.Fatalf("loss report missing %q:\n%s", want, out)
		}
	}
}
