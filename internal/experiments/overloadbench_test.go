package experiments

import (
	"encoding/json"
	"math"
	"sort"
	"testing"
)

// A short configuration keeps the test fast; the committed baseline uses
// the (longer) defaults via reactbench -overload-record.
func shortOverloadConfig() OverloadBenchConfig {
	return OverloadBenchConfig{Duration: 20e9} // 20 virtual seconds
}

func TestOverloadBenchDeterministic(t *testing.T) {
	a, err := RunOverloadBench(shortOverloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOverloadBench(shortOverloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatalf("same config, different results:\n%s\n%s", ja, jb)
	}
}

func TestOverloadBenchAdmissionProtectsGoodput(t *testing.T) {
	res, err := RunOverloadBench(OverloadBenchConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The headline claim the CI gate replays: at 10x offered load with
	// admission on, goodput holds at >= 70% of the unloaded baseline.
	if res.GoodputRatioOn < 0.7 {
		t.Errorf("admission-on goodput ratio = %.3f, want >= 0.7", res.GoodputRatioOn)
	}
	// The collapse the plane exists to prevent: without admission the
	// offered-load fraction served on time craters, and the unassigned
	// pool balloons; with admission the pool stays bounded near the
	// in-flight ceiling.
	if res.OverloadOff.GoodputPerOffered > res.Baseline.GoodputPerOffered/2 {
		t.Errorf("admission-off goodput fraction %.3f did not collapse (baseline %.3f)",
			res.OverloadOff.GoodputPerOffered, res.Baseline.GoodputPerOffered)
	}
	if res.OverloadOn.UnassignedHighWater >= res.OverloadOff.UnassignedHighWater {
		t.Errorf("admission-on high-water %d not below admission-off %d",
			res.OverloadOn.UnassignedHighWater, res.OverloadOff.UnassignedHighWater)
	}
	if res.OverloadOn.UnassignedHighWater > 2*res.Workers {
		t.Errorf("admission-on high-water %d exceeds the 2x-fleet ceiling %d",
			res.OverloadOn.UnassignedHighWater, 2*res.Workers)
	}
	// Every protection mechanism should actually fire under overload:
	// typed rate rejections, probability-floor rejections, and sheds.
	on := res.OverloadOn
	if on.RejectedRate == 0 || on.RejectedProbability == 0 || on.Shed == 0 {
		t.Errorf("overload_on arm should exercise all gates: rate=%d prob=%d shed=%d",
			on.RejectedRate, on.RejectedProbability, on.Shed)
	}
	// Accounting must close: every offered task is submitted or rejected.
	if got := on.Submitted + int(on.RejectedRate) + int(on.RejectedProbability); got != on.Offered {
		t.Errorf("offered %d != submitted %d + rejected %d+%d",
			on.Offered, on.Submitted, on.RejectedRate, on.RejectedProbability)
	}
}

func TestExecTimeForDistribution(t *testing.T) {
	// The id-hash service-time draw must actually look like the power law
	// the admission model assumes — the earlier FNV-without-finalizer
	// version clustered in the body and starved the tail.
	const n = 20000
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = execTimeFor(taskID(i)).Seconds()
	}
	sort.Float64s(samples)
	if samples[0] < overloadKmin {
		t.Fatalf("sample below kmin: %v", samples[0])
	}
	wantMedian := overloadKmin * math.Pow(0.5, -1/(overloadAlpha-1))
	gotMedian := samples[n/2]
	if math.Abs(gotMedian-wantMedian)/wantMedian > 0.05 {
		t.Errorf("median = %.3f, want ~%.3f", gotMedian, wantMedian)
	}
	// Tail check: Pr(X > 10*kmin) = 10^(1-alpha) = ~3.2% for alpha 2.5.
	tail := 0
	for _, s := range samples {
		if s > 10*overloadKmin {
			tail++
		}
	}
	want := math.Pow(10, 1-overloadAlpha)
	if got := float64(tail) / n; math.Abs(got-want)/want > 0.25 {
		t.Errorf("tail fraction above 10*kmin = %.4f, want ~%.4f", got, want)
	}
}

func taskID(i int) string {
	// Mirrors runOverloadArm's id format.
	return "t" + string([]byte{
		byte('0' + i/1000000%10), byte('0' + i/100000%10), byte('0' + i/10000%10),
		byte('0' + i/1000%10), byte('0' + i/100%10), byte('0' + i/10%10), byte('0' + i%10),
	})
}
