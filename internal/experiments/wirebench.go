package experiments

import (
	"fmt"
	"sync"
	"time"

	"react/internal/clock"
	"react/internal/core"
	"react/internal/profile"
	"react/internal/region"
	"react/internal/taskq"
	"react/internal/wire"
)

// WireBenchConfig shapes one wire-transport throughput run: the workload
// behind the Benchmark_Wire* benchmarks and the `reactbench -check` wire
// gate, shared so the CI gate measures exactly what the benchmarks measure.
//
// Two shapes cover the transport's two hot paths:
//
//   - "broadcast": Conns watcher connections subscribe with `watch`, then
//     Frames result pushes fan out to every one of them. This is the
//     event-storm path — a 10k-watcher fleet being told about completions —
//     and the one write coalescing exists for: the cost target is O(conns)
//     syscalls per flush interval, not O(conns × events).
//   - "request-reply": Conns connections each round-trip Frames `ping`
//     calls concurrently. This is the latency path; coalescing must not
//     tax it (an idle connection's flusher writes immediately).
type WireBenchConfig struct {
	Shape string // "broadcast" or "request-reply" (default "broadcast")
	Conns int    // concurrent client connections (default 1)
	// Frames is, for "broadcast", the number of result pushes published
	// (each is delivered to every connection); for "request-reply", the
	// number of calls each connection performs. Default 1000.
	Frames int
	// Wall supplies wall time for the throughput measurement only.
	// Default the system clock.
	Wall clock.Clock
}

func (c WireBenchConfig) normalize() WireBenchConfig {
	if c.Shape == "" {
		c.Shape = "broadcast"
	}
	if c.Conns < 1 {
		c.Conns = 1
	}
	if c.Frames <= 0 {
		c.Frames = 1000
	}
	if c.Wall == nil {
		c.Wall = clock.System{}
	}
	return c
}

// WireBenchResult is one run's measurements. FramesPerSec is the gated
// quantity: delivered pushes per wall second (broadcast) or completed
// round trips per wall second (request-reply). FramesPerFlush and
// FlushesTotal describe how well the server coalesced (both zero on a
// server predating coalescing).
type WireBenchResult struct {
	Shape          string  `json:"shape"`
	Conns          int     `json:"conns"`
	Frames         int     `json:"frames"`
	DeliveredTotal int64   `json:"delivered_total"`
	ElapsedNS      int64   `json:"elapsed_ns"`
	FramesPerSec   float64 `json:"frames_per_sec"`
	BytesWritten   int64   `json:"bytes_written"`
	FlushesTotal   int64   `json:"flushes_total"`
	FramesPerFlush float64 `json:"frames_per_flush"`
}

// wireNullBackend is the minimal wire.Backend the transport benchmark
// serves: every request succeeds without touching a scheduling engine, so
// the measured quantity is the wire layer alone — framing, queueing, and
// syscalls — not matcher or task-store work.
type wireNullBackend struct {
	mu    sync.Mutex
	feeds map[string]chan core.Assignment
}

func newWireNullBackend() *wireNullBackend {
	return &wireNullBackend{feeds: make(map[string]chan core.Assignment)}
}

func (b *wireNullBackend) RegisterWorker(id string, loc region.Point) (<-chan core.Assignment, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if _, ok := b.feeds[id]; ok {
		return nil, profile.ErrDuplicateWorker
	}
	ch := make(chan core.Assignment)
	b.feeds[id] = ch
	return ch, nil
}

func (b *wireNullBackend) ReconnectWorker(id string) (<-chan core.Assignment, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch, ok := b.feeds[id]
	if !ok {
		ch = make(chan core.Assignment)
		b.feeds[id] = ch
	}
	return ch, nil
}

func (b *wireNullBackend) DeregisterWorker(id string) error { return b.drop(id) }
func (b *wireNullBackend) DetachWorker(id string) error     { return b.drop(id) }

func (b *wireNullBackend) drop(id string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if ch, ok := b.feeds[id]; ok {
		close(ch)
		delete(b.feeds, id)
	}
	return nil
}

func (b *wireNullBackend) Worker(id string) (*profile.Profile, bool) { return nil, false }
func (b *wireNullBackend) Submit(t taskq.Task) error                 { return nil }
func (b *wireNullBackend) Complete(taskID, workerID, answer string) (core.Result, error) {
	return core.Result{TaskID: taskID, WorkerID: workerID, Answer: answer, MetDeadline: true}, nil
}
func (b *wireNullBackend) Feedback(taskID string, positive bool) error { return nil }
func (b *wireNullBackend) Stats() core.Stats                           { return core.Stats{} }
func (b *wireNullBackend) Stop() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, ch := range b.feeds {
		close(ch)
		delete(b.feeds, id)
	}
}

// RunWireBench drives one loopback client/server fleet through the
// configured shape and reports delivered-frame throughput. Broadcast runs
// publish cfg.Frames results through the server's watcher fan-out and wait
// for every connection to drain all of them (client push queues are
// unbounded, so nothing is lost and every run delivers exactly
// Conns×Frames pushes); request-reply runs complete Conns×Frames ping
// round trips.
func RunWireBench(cfg WireBenchConfig) (WireBenchResult, error) {
	cfg = cfg.normalize()
	if err := ensureFDs(3*cfg.Conns + 64); err != nil {
		return WireBenchResult{}, err
	}
	var relay wire.ResultRelay
	srv, err := wire.ServeBackend("127.0.0.1:0", newWireNullBackend(), &relay)
	if err != nil {
		return WireBenchResult{}, err
	}
	defer srv.Close()

	clients := make([]*wire.Client, cfg.Conns)
	defer func() {
		for _, cl := range clients {
			if cl != nil {
				cl.Close()
			}
		}
	}()
	for i := range clients {
		cl, err := wire.Dial(srv.Addr())
		if err != nil {
			return WireBenchResult{}, fmt.Errorf("wirebench: dial conn %d: %w", i, err)
		}
		clients[i] = cl
	}

	res := WireBenchResult{Shape: cfg.Shape, Conns: cfg.Conns, Frames: cfg.Frames}
	var delivered int64
	var elapsed time.Duration
	switch cfg.Shape {
	case "broadcast":
		delivered, elapsed, err = runWireBroadcast(cfg, &relay, clients)
	case "request-reply":
		delivered, elapsed, err = runWireRequestReply(cfg, clients)
	default:
		return WireBenchResult{}, fmt.Errorf("wirebench: unknown shape %q", cfg.Shape)
	}
	if err != nil {
		return WireBenchResult{}, err
	}

	m := srv.Metrics()
	res.DeliveredTotal = delivered
	res.ElapsedNS = elapsed.Nanoseconds()
	if secs := elapsed.Seconds(); secs > 0 {
		res.FramesPerSec = float64(delivered) / secs
	}
	res.BytesWritten = m.BytesWritten
	res.FlushesTotal = m.Flushes
	if m.Flushes > 0 {
		res.FramesPerFlush = float64(m.FramesWritten) / float64(m.Flushes)
	}
	return res, nil
}

func runWireBroadcast(cfg WireBenchConfig, relay *wire.ResultRelay, clients []*wire.Client) (int64, time.Duration, error) {
	for i, cl := range clients {
		if err := cl.Watch(); err != nil {
			return 0, 0, fmt.Errorf("wirebench: watch conn %d: %w", i, err)
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(clients))
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *wire.Client) {
			defer wg.Done()
			got := 0
			for range cl.Results() {
				got++
				if got == cfg.Frames {
					return
				}
			}
			errs <- fmt.Errorf("wirebench: conn %d result feed closed after %d/%d frames", i, got, cfg.Frames)
		}(i, cl)
	}
	start := cfg.Wall.Now()
	for i := 0; i < cfg.Frames; i++ {
		relay.Publish(core.Result{
			TaskID:      fmt.Sprintf("t%08d", i),
			WorkerID:    "w00",
			Answer:      "yes, jammed",
			MetDeadline: true,
		})
	}
	wg.Wait()
	elapsed := cfg.Wall.Now().Sub(start)
	select {
	case err := <-errs:
		return 0, 0, err
	default:
	}
	return int64(cfg.Conns) * int64(cfg.Frames), elapsed, nil
}

func runWireRequestReply(cfg WireBenchConfig, clients []*wire.Client) (int64, time.Duration, error) {
	var wg sync.WaitGroup
	errs := make(chan error, len(clients))
	start := cfg.Wall.Now()
	for i, cl := range clients {
		wg.Add(1)
		go func(i int, cl *wire.Client) {
			defer wg.Done()
			for n := 0; n < cfg.Frames; n++ {
				if err := cl.Ping(); err != nil {
					errs <- fmt.Errorf("wirebench: conn %d ping %d: %w", i, n, err)
					return
				}
			}
		}(i, cl)
	}
	wg.Wait()
	elapsed := cfg.Wall.Now().Sub(start)
	select {
	case err := <-errs:
		return 0, 0, err
	default:
	}
	return int64(cfg.Conns) * int64(cfg.Frames), elapsed, nil
}
