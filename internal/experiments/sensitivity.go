package experiments

import (
	"fmt"
	"time"

	"react/internal/metrics"
)

// Sensitivity sweeps for the two constants the paper fixes from its case
// study without exploring: the 60–120 s deadline band (§V.C, "a tight
// deadline for such systems") and the 10 % Eq. 2 reassignment threshold.
// Both sweeps hold everything else at the Figure 5 configuration.

// DeadlineSensitivity runs REACT and the traditional baseline across
// deadline bands. Expectation: REACT's advantage peaks exactly where the
// paper operates — deadlines long enough for one rescue but too short to
// absorb a delayed worker.
func DeadlineSensitivity(seed int64, template ScenarioConfig) FigureReport {
	bands := []struct{ lo, hi time.Duration }{
		{30 * time.Second, 60 * time.Second},
		{60 * time.Second, 120 * time.Second}, // the paper's band
		{120 * time.Second, 240 * time.Second},
		{240 * time.Second, 480 * time.Second},
	}
	t := metrics.NewTable("deadlines", "react_ontime_pct", "traditional_ontime_pct", "react_advantage_pp", "react_reassigns")
	for _, band := range bands {
		cfgR := template
		cfgR.Seed = seed
		cfgR.Technique = REACTTechnique(0, seed)
		cfgR.DeadlineMin, cfgR.DeadlineMax = band.lo, band.hi
		react := RunScenario(cfgR)

		cfgT := template
		cfgT.Seed = seed
		cfgT.Technique = TraditionalTechnique(seed)
		cfgT.DeadlineMin, cfgT.DeadlineMax = band.lo, band.hi
		trad := RunScenario(cfgT)

		t.AddRow(
			fmt.Sprintf("%v-%v", band.lo, band.hi),
			round2(100*react.OnTimeFraction()),
			round2(100*trad.OnTimeFraction()),
			round2(100*(react.OnTimeFraction()-trad.OnTimeFraction())),
			react.Reassignments,
		)
	}
	return FigureReport{
		ID:    "deadline-sensitivity",
		Title: "on-time % vs deadline band (everything else as fig5)",
		Table: t,
		Notes: []string{
			"with very long deadlines even delayed workers finish in time and the techniques converge; with very short ones no rescue fits and they converge again — the paper's 60-120s band sits in REACT's sweet spot",
		},
	}
}

// ThresholdSensitivity sweeps the Eq. 2 reassignment bound for REACT.
// Expectation: too low and delays go undetected (converges to no-monitor);
// too high and healthy assignments get churned, wasting workers.
func ThresholdSensitivity(seed int64, template ScenarioConfig) FigureReport {
	t := metrics.NewTable("threshold", "ontime_pct", "positive_pct", "reassignments", "mean_attempts")
	for _, th := range []float64{0.01, 0.05, 0.10, 0.20, 0.40, 0.70} {
		cfg := template
		cfg.Seed = seed
		cfg.Technique = REACTTechnique(0, seed)
		cfg.MonitorThreshold = th
		res := RunScenario(cfg)
		t.AddRow(th, round2(100*res.OnTimeFraction()),
			round2(100*res.PositiveFraction()), res.Reassignments, round2(res.MeanAttempts))
	}
	return FigureReport{
		ID:    "threshold-sensitivity",
		Title: "REACT on-time % vs Eq.2 reassignment threshold (paper: 0.10)",
		Table: t,
		Notes: []string{
			"the paper's 10% sits on the plateau; far lower starves the rescue path, far higher multiplies reassignments for little gain",
		},
	}
}
