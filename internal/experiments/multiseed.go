package experiments

import (
	"math"

	"react/internal/metrics"
)

// Multi-seed aggregation: the paper reports single runs; for reproduction
// confidence we re-run scenarios across seeds and report mean ± std of the
// headline metrics, exposing how much of any paper-vs-measured gap is seed
// noise versus model mismatch.

// Stat summarizes one metric across seeds.
type Stat struct {
	Mean, Std, Min, Max float64
}

func statOf(xs []float64) Stat {
	if len(xs) == 0 {
		return Stat{}
	}
	var w metrics.Welford
	for _, x := range xs {
		w.Observe(x)
	}
	return Stat{Mean: w.Mean(), Std: w.Std(), Min: w.Min(), Max: w.Max()}
}

// Aggregate holds the cross-seed summary for one technique.
type Aggregate struct {
	Technique     string
	Seeds         int
	OnTimePct     Stat
	PositivePct   Stat
	WorkerExec    Stat // seconds
	TotalExec     Stat // seconds
	Reassignments Stat
	Expired       Stat
}

// RunScenarioSeeds runs the scenario once per seed and aggregates. The
// technique is rebuilt per seed via mk so each run gets an independent
// matcher RNG; template's own Technique and Seed fields are ignored.
func RunScenarioSeeds(mk func(seed int64) Technique, template ScenarioConfig, seeds []int64) Aggregate {
	var (
		ontime, positive, wexec, texec, reass, expired []float64
		name                                           string
	)
	for _, seed := range seeds {
		cfg := template
		cfg.Seed = seed
		cfg.Technique = mk(seed)
		res := RunScenario(cfg)
		name = res.Technique
		ontime = append(ontime, 100*res.OnTimeFraction())
		positive = append(positive, 100*res.PositiveFraction())
		wexec = append(wexec, res.MeanWorkerExec)
		texec = append(texec, res.MeanTotalExec)
		reass = append(reass, float64(res.Reassignments))
		expired = append(expired, float64(res.Expired))
	}
	return Aggregate{
		Technique:     name,
		Seeds:         len(seeds),
		OnTimePct:     statOf(ontime),
		PositivePct:   statOf(positive),
		WorkerExec:    statOf(wexec),
		TotalExec:     statOf(texec),
		Reassignments: statOf(reass),
		Expired:       statOf(expired),
	}
}

// SeedList builds [base, base+1, ..., base+n-1].
func SeedList(base int64, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = base + int64(i)
	}
	return out
}

// ConfidenceReport renders the three §V.C techniques across seeds as a
// figure-style table.
func ConfidenceReport(template ScenarioConfig, seeds []int64) FigureReport {
	makers := []func(int64) Technique{
		func(s int64) Technique { return REACTTechnique(0, s) },
		func(s int64) Technique { return GreedyTechnique() },
		func(s int64) Technique { return TraditionalTechnique(s) },
	}
	t := metrics.NewTable("technique", "seeds", "ontime_pct_mean", "ontime_pct_std",
		"positive_pct_mean", "worker_exec_s", "total_exec_s")
	for _, mk := range makers {
		agg := RunScenarioSeeds(mk, template, seeds)
		t.AddRow(agg.Technique, agg.Seeds,
			round2(agg.OnTimePct.Mean), round2(agg.OnTimePct.Std),
			round2(agg.PositivePct.Mean), round2(agg.WorkerExec.Mean), round2(agg.TotalExec.Mean))
	}
	return FigureReport{
		ID:    "confidence",
		Title: "figures 5-8 headline metrics across seeds (mean ± std)",
		Table: t,
		Notes: []string{"single-seed figures are representative when std is small relative to the technique gaps"},
	}
}

func round2(x float64) float64 { return math.Round(x*100) / 100 }
