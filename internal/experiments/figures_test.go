package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestMatchBenchSmall(t *testing.T) {
	cfg := MatchBenchConfig{
		Workers:    50,
		TaskCounts: []int{1, 10, 25},
		Cycles:     []int{200},
		Seed:       1,
		Hungarian:  true,
	}
	points := RunMatchBench(cfg)
	// greedy + react + metropolis + hungarian per task count.
	if want := 3 * 4; len(points) != want {
		t.Fatalf("points = %d, want %d", len(points), want)
	}
	byAlgoTasks := map[string]map[int]MatchPoint{}
	for _, p := range points {
		if p.Workers != 50 || p.Edges != 50*p.Tasks {
			t.Fatalf("bad point shape: %+v", p)
		}
		if p.Weight < 0 || p.Matched > p.Tasks {
			t.Fatalf("invalid output: %+v", p)
		}
		if byAlgoTasks[p.Algorithm] == nil {
			byAlgoTasks[p.Algorithm] = map[int]MatchPoint{}
		}
		byAlgoTasks[p.Algorithm][p.Tasks] = p
	}
	// Hungarian dominates everything at every size.
	for tasks := range byAlgoTasks["hungarian"] {
		opt := byAlgoTasks["hungarian"][tasks].Weight
		for algo, m := range byAlgoTasks {
			if p := m[tasks]; p.Weight > opt+1e-9 {
				t.Fatalf("%s weight %v above optimum %v at %d tasks", algo, p.Weight, opt, tasks)
			}
		}
	}
	// Greedy matches every task on a full graph with spare workers.
	if p := byAlgoTasks["greedy"][25]; p.Matched != 25 {
		t.Fatalf("greedy matched %d of 25", p.Matched)
	}
}

func TestMatchBenchDefaults(t *testing.T) {
	cfg := MatchBenchConfig{}.Normalize()
	if cfg.Workers != 1000 || len(cfg.TaskCounts) != 8 || len(cfg.Cycles) != 2 {
		t.Fatalf("defaults = %+v", cfg)
	}
}

func TestFullUniformGraphDeterministic(t *testing.T) {
	a := fullUniformGraph(20, 10, 7)
	b := fullUniformGraph(20, 10, 7)
	for i := 0; i < a.NumEdges(); i++ {
		if a.Edge(i) != b.Edge(i) {
			t.Fatalf("edge %d differs", i)
		}
	}
	c := fullUniformGraph(20, 10, 8)
	same := true
	for i := 0; i < a.NumEdges(); i++ {
		if a.Edge(i) != c.Edge(i) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical graphs")
	}
}

func TestScalabilitySmall(t *testing.T) {
	cfg := ScaleConfig{
		Sizes: []int{60, 120},
		Rates: []float64{1.0, 2.0},
		Seed:  5,
		Span:  120 * time.Second,
	}
	points := RunScalability(cfg)
	if len(points) != 6 { // 2 sizes × 3 techniques
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.OnTimePct < 0 || p.OnTimePct > 100 || p.PositivePct < 0 || p.PositivePct > 100 {
			t.Fatalf("percentage out of range: %+v", p)
		}
		if p.Received == 0 {
			t.Fatalf("no tasks received: %+v", p)
		}
		if p.PositivePct > p.OnTimePct {
			t.Fatalf("positive exceeds on-time: %+v", p)
		}
	}
}

func TestScaleConfigMismatchedListsTruncated(t *testing.T) {
	cfg := ScaleConfig{Sizes: []int{10, 20, 30}, Rates: []float64{1}}.Normalize()
	if len(cfg.Sizes) != 1 || len(cfg.Rates) != 1 {
		t.Fatalf("normalize kept mismatched lists: %+v", cfg)
	}
}

func TestFigureReportsRender(t *testing.T) {
	fig3, fig4 := Figures34(MatchBenchConfig{
		Workers:    30,
		TaskCounts: []int{5},
		Cycles:     []int{100},
		Seed:       2,
	})
	for _, r := range []FigureReport{fig3, fig4} {
		var b strings.Builder
		if err := r.Write(&b); err != nil {
			t.Fatal(err)
		}
		out := b.String()
		if !strings.Contains(out, r.ID) || !strings.Contains(out, "greedy") {
			t.Fatalf("%s rendered without content:\n%s", r.ID, out)
		}
	}
}

// TestPaperShapes runs the full §V.C scenario and asserts the qualitative
// claims of Figures 5–8. It covers ~15 simulated minutes per technique, so
// it is skipped under -short.
func TestPaperShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale scenario; run without -short")
	}
	results, reports := Figures5to8(42)
	byName := map[string]ScenarioResult{}
	for _, r := range results {
		byName[r.Technique] = r
	}
	react, greedy, trad := byName["react"], byName["greedy"], byName["traditional"]

	// Fig. 5: react well above traditional; paper measured +43% on-time.
	if react.CompletedOnTime <= trad.CompletedOnTime {
		t.Fatalf("react %d not above traditional %d", react.CompletedOnTime, trad.CompletedOnTime)
	}
	gain := float64(react.CompletedOnTime)/float64(trad.CompletedOnTime) - 1
	if gain < 0.20 {
		t.Fatalf("react gain over traditional only %.0f%%", 100*gain)
	}
	// Greedy collapses: final on-time below traditional.
	if greedy.CompletedOnTime >= trad.CompletedOnTime {
		t.Fatalf("greedy %d did not collapse below traditional %d",
			greedy.CompletedOnTime, trad.CompletedOnTime)
	}
	// Fig. 6: react's positive feedback above traditional's.
	if react.Positive <= trad.Positive {
		t.Fatalf("react positive %d not above traditional %d", react.Positive, trad.Positive)
	}
	// Fig. 7/8: react's execution times below traditional's.
	if react.MeanWorkerExec >= trad.MeanWorkerExec {
		t.Fatalf("react exec %.1fs not below traditional %.1fs", react.MeanWorkerExec, trad.MeanWorkerExec)
	}
	if react.MeanTotalExec >= trad.MeanTotalExec {
		t.Fatalf("react total %.1fs not below traditional %.1fs", react.MeanTotalExec, trad.MeanTotalExec)
	}
	// Reports render.
	for _, r := range reports {
		var b strings.Builder
		if err := r.Write(&b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestRunScenarioSeeds(t *testing.T) {
	template := ScenarioConfig{Workers: 100, Rate: 1.5, TargetTasks: 300}
	agg := RunScenarioSeeds(func(s int64) Technique { return REACTTechnique(500, s) },
		template, SeedList(1, 3))
	if agg.Seeds != 3 || agg.Technique != "react" {
		t.Fatalf("agg = %+v", agg)
	}
	if agg.OnTimePct.Mean <= 0 || agg.OnTimePct.Mean > 100 {
		t.Fatalf("ontime mean = %v", agg.OnTimePct.Mean)
	}
	if agg.OnTimePct.Min > agg.OnTimePct.Mean || agg.OnTimePct.Max < agg.OnTimePct.Mean {
		t.Fatalf("stat ordering broken: %+v", agg.OnTimePct)
	}
	if agg.OnTimePct.Std < 0 {
		t.Fatalf("negative std: %+v", agg.OnTimePct)
	}
}

func TestSeedList(t *testing.T) {
	got := SeedList(10, 3)
	if len(got) != 3 || got[0] != 10 || got[2] != 12 {
		t.Fatalf("SeedList = %v", got)
	}
}

func TestConfidenceReportRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run scenario; run without -short")
	}
	template := ScenarioConfig{Workers: 100, Rate: 1.5, TargetTasks: 300}
	rep := ConfidenceReport(template, SeedList(1, 2))
	var b strings.Builder
	if err := rep.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"react", "greedy", "traditional", "ontime_pct_mean"} {
		if !strings.Contains(out, want) {
			t.Fatalf("confidence report missing %q:\n%s", want, out)
		}
	}
}
