package experiments

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"react/internal/crowd"
	"react/internal/dynassign"
	"react/internal/engine"
	"react/internal/event"
	"react/internal/metrics"
	"react/internal/region"
	"react/internal/sim"
	"react/internal/taskq"
	"react/internal/trace"
	"react/internal/workload"
)

// newRand derives a deterministic RNG from a seed and a label, mirroring
// sim.Engine.Rand for components constructed before the engine exists.
func newRand(seed int64, label string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprint(h, label)
	return rand.New(rand.NewSource(seed ^ int64(h.Sum64())))
}

// ScenarioConfig describes one end-to-end run of §V.C: a single region
// server, a worker population, and a task stream. Zero fields are filled by
// Normalize with the paper's main-experiment settings (750 workers,
// 9.375 tasks/s, 8371 tasks, batch bound 10, monitor threshold 0.1, 1000
// REACT cycles).
type ScenarioConfig struct {
	Technique     Technique
	Workers       int
	Rate          float64 // tasks per second
	TargetTasks   int     // submissions before the stream stops
	Seed          int64
	BatchBound    int
	BatchPeriod   time.Duration
	MonitorPeriod time.Duration
	DrainGrace    time.Duration // extra virtual time for stragglers after the last arrival
	Area          region.Rect
	// Trace, when non-nil, records every task lifecycle event for offline
	// analysis (queue waits, reassignment chains, loss phases).
	Trace *trace.Recorder
	// DeadlineMin/Max override the task deadline band (zero: the paper's
	// 60-120 s derived from the case study). Used by the sensitivity sweep.
	DeadlineMin time.Duration
	DeadlineMax time.Duration
	// MonitorThreshold overrides the Eq. 2 reassignment bound (zero: the
	// paper's 0.1).
	MonitorThreshold float64
	// Churn enables worker connectivity cycles (§I: "even the most
	// reliable workers may have short connectivity cycles"): each worker
	// alternates online periods with mean Churn and offline periods with
	// mean Churn/4, exponentially distributed. Zero keeps every worker
	// online for the whole run (the paper's setup).
	Churn time.Duration
}

// Normalize fills defaults.
func (c ScenarioConfig) Normalize() ScenarioConfig {
	if c.Workers <= 0 {
		c.Workers = 750
	}
	if c.Rate <= 0 {
		c.Rate = 9.375
	}
	if c.TargetTasks <= 0 {
		c.TargetTasks = 8371
	}
	if c.BatchBound <= 0 {
		c.BatchBound = 10
	}
	if c.BatchPeriod <= 0 {
		c.BatchPeriod = 5 * time.Second
	}
	if c.MonitorPeriod <= 0 {
		c.MonitorPeriod = time.Second
	}
	if c.DrainGrace <= 0 {
		c.DrainGrace = 5 * time.Minute
	}
	if !c.Area.Valid() {
		c.Area = region.Rect{MinLat: 37.8, MinLon: 23.5, MaxLat: 38.2, MaxLon: 24.0}
	}
	if c.Technique.Matcher == nil {
		c.Technique = REACTTechnique(0, c.Seed)
	}
	return c
}

// ScenarioResult aggregates everything Figures 5–8 report for one
// technique.
type ScenarioResult struct {
	Technique string
	Workers   int
	Rate      float64

	Received        int // tasks submitted
	CompletedOnTime int // finished at or before their deadline (Fig. 5)
	CompletedLate   int // finished after the deadline (counted as missed)
	Expired         int // left the repository unassigned
	Positive        int // positive feedbacks (Fig. 6)
	Reassignments   int // Eq. 2 monitor interventions
	Batches         int // matching rounds executed

	MeanWorkerExec float64 // seconds, final worker only (Fig. 7)
	MeanTotalExec  float64 // seconds, submission → completion (Fig. 8)
	MatcherBusy    float64 // total modelled matcher seconds
	MeanAttempts   float64 // assignments per completed task (1 = never reassigned)
	MaxAttempts    int     // worst-case bouncing
	WorkerExecP50  float64 // median final-worker execution seconds
	WorkerExecP95  float64 // tail final-worker execution seconds

	OnTimeSeries   *metrics.Series // (received, cumulative on-time) — Fig. 5
	PositiveSeries *metrics.Series // (received, cumulative positive) — Fig. 6
}

// OnTimeFraction is CompletedOnTime / Received.
func (r ScenarioResult) OnTimeFraction() float64 {
	if r.Received == 0 {
		return 0
	}
	return float64(r.CompletedOnTime) / float64(r.Received)
}

// PositiveFraction is Positive / Received.
func (r ScenarioResult) PositiveFraction() float64 {
	if r.Received == 0 {
		return 0
	}
	return float64(r.Positive) / float64(r.Received)
}

// RunScenario executes one end-to-end simulation and returns its metrics.
//
// All scheduling logic — trigger, graph construction, matching, assignment
// application, Eq. 2 monitoring, expiry — lives in internal/engine, the same
// code the live server runs. This harness only hosts the engine on the
// virtual clock: engine ticks become simulation events, the modelled matcher
// latency of DESIGN.md §2 is charged through Config.Latency/Config.Defer,
// and a tap on the engine's event spine feeds the figure counters and the
// trace recorder.
func RunScenario(cfg ScenarioConfig) ScenarioResult {
	cfg = cfg.Normalize()
	eng := sim.New(cfg.Seed)

	res := ScenarioResult{
		Technique:      cfg.Technique.Name,
		Workers:        cfg.Workers,
		Rate:           cfg.Rate,
		OnTimeSeries:   metrics.NewSeries(cfg.Technique.Name + "-ontime"),
		PositiveSeries: metrics.NewSeries(cfg.Technique.Name + "-positive"),
	}
	var workerExec, totalExec, attempts metrics.Welford
	execHist, _ := metrics.NewHistogram(1, 400) // 1s buckets to 400s

	behaviors := make(map[string]crowd.Behavior, cfg.Workers)
	execRng := eng.Rand("exec")
	fbRng := eng.Rand("feedback")

	// The engine runs on the simulation's virtual clock with a single task
	// shard: one event fires at a time, so striping buys nothing, and one
	// shard keeps snapshot order trivially identical to the live layout
	// (the store re-sorts globally either way).
	var re *engine.Engine

	// completeTask fires when a worker finishes; stale events (task
	// reassigned, completed by someone else, or expired) are recognised by
	// the assignment timestamp and ignored.
	completeTask := func(workerID, taskID string, assignedAt time.Time) sim.Handler {
		return func(now time.Time) {
			rec, okT := re.Tasks().Get(taskID)
			current := okT && rec.Status == taskq.Assigned &&
				rec.Worker == workerID && rec.AssignedAt.Equal(assignedAt)
			if current {
				result, final, err := re.Complete(taskID, workerID, "")
				if err == nil {
					met := result.MetDeadline
					pos := behaviors[workerID].PositiveFeedback(fbRng, met)
					re.Feedback(taskID, pos) // ErrNoWorker impossible: sim workers never deregister
					if met {
						res.CompletedOnTime++
					} else {
						res.CompletedLate++
					}
					if pos {
						res.Positive++
					}
					workerExec.Observe(final.ExecTime().Seconds())
					execHist.Observe(final.ExecTime().Seconds())
					totalExec.Observe(final.TotalTime().Seconds())
					attempts.Observe(float64(final.Attempts))
					if final.Attempts > res.MaxAttempts {
						res.MaxAttempts = final.Attempts
					}
					res.OnTimeSeries.Add(float64(res.Received), float64(res.CompletedOnTime))
					res.PositiveSeries.Add(float64(res.Received), float64(res.Positive))
				}
			}
			// A stale event may still find the worker marked busy on this
			// task (the monitor re-bound it and the old timer outlived the
			// binding); free them.
			if p, ok := re.Workers().Get(workerID); ok && p.CurrentTask() == taskID {
				p.MarkIdle()
			}
			re.TryBatch()
		}
	}

	re = engine.New(engine.Config{
		Clock:    eng.Clock(),
		Matcher:  cfg.Technique.Matcher,
		Schedule: cfg.Technique.ScheduleConfig(cfg.BatchBound, cfg.BatchPeriod),
		Monitor:  dynassign.Monitor{Threshold: cfg.MonitorThreshold},
		Shards:   1,
		Latency:  cfg.Technique.Cost,
		Defer: func(d time.Duration, fn func(now time.Time)) {
			eng.After(d, "batch-apply", fn)
		},
	}, engine.Hooks{
		// Drawing exec times here — inside the engine's sorted-order
		// apply — keeps the RNG stream, and with it the whole run,
		// deterministic.
		Deliver: func(a engine.Assignment) bool {
			exec := behaviors[a.WorkerID].ExecTime(execRng)
			eng.After(exec, "complete", completeTask(a.WorkerID, a.TaskID, a.AssignedAt))
			return true
		},
	})

	// Figure counters and the trace recorder ride the event spine. The sim
	// is single-threaded, so a synchronous tap mutating res is safe.
	re.Events().Tap(func(ev event.Event) {
		switch ev.Kind {
		case event.KindRevoke:
			if ev.Cause == taskq.CauseEq2 {
				res.Reassignments++
			}
		case event.KindExpire:
			res.Expired++
		case event.KindBatch:
			res.Batches++
			res.MatcherBusy += ev.Batch.Latency.Seconds()
		}
		if cfg.Trace != nil {
			cfg.Trace.Handle(ev)
		}
	})

	// Population: behaviours drawn from the case-study marginals, locations
	// uniform in the region.
	locRng := eng.Rand("locations")
	for i, b := range crowd.NewPopulation(cfg.Workers, eng.Rand("population")) {
		id := fmt.Sprintf("w%04d", i)
		behaviors[id] = b
		if _, err := re.AttachWorker(id, cfg.Area.RandomPoint(locRng)); err != nil {
			panic(err) // ids are unique by construction
		}
	}

	gen := workload.Generator{
		Prefix:      "task",
		Area:        cfg.Area,
		DeadlineMin: cfg.DeadlineMin,
		DeadlineMax: cfg.DeadlineMax,
	}
	stream := workload.NewStream(gen, workload.Constant{Rate: cfg.Rate}, eng.Now(), eng.Rand("workload"))

	// Arrival pump: one event per task so the trigger sees every arrival.
	var arrive sim.Handler
	arrive = func(now time.Time) {
		task := stream.Take()
		if err := re.Submit(task); err == nil {
			res.Received++
		}
		if res.Received < cfg.TargetTasks {
			eng.Schedule(stream.Peek(), "arrival", arrive)
		}
		re.TryBatch()
	}
	eng.Schedule(stream.Peek(), "arrival", arrive)

	// Expiry sweep: unassigned tasks leave the repository at their deadline.
	stopExpiry := eng.Every(time.Second, "expire", func(time.Time) {
		re.TickExpiry()
	})

	// Eq. 2 monitor: reassign doomed tasks; the abandoning worker returns
	// to the pool (they were not really working).
	stopMonitor := func() {}
	if cfg.Technique.UseMonitor {
		stopMonitor = eng.Every(cfg.MonitorPeriod, "monitor", func(time.Time) {
			re.TickMonitor()
			re.TryBatch()
		})
	}

	// Connectivity churn: workers drop offline and return, independent of
	// any task they hold (a held task completes normally; the worker just
	// receives no new work while offline).
	if cfg.Churn > 0 {
		churnRng := eng.Rand("churn")
		for _, p := range re.Workers().All() {
			p := p
			var toggle func(online bool) sim.Handler
			toggle = func(online bool) sim.Handler {
				return func(now time.Time) {
					p.SetAvailable(online)
					if online {
						re.TryBatch()
					}
					// The period that starts now determines the next
					// toggle: online periods have mean Churn, offline
					// periods mean Churn/4.
					mean := cfg.Churn.Seconds()
					if !online {
						mean /= 4
					}
					gap := time.Duration(churnRng.ExpFloat64() * mean * float64(time.Second))
					eng.After(gap, "churn", toggle(!online))
				}
			}
			first := time.Duration(churnRng.ExpFloat64() * cfg.Churn.Seconds() * float64(time.Second))
			eng.After(first, "churn", toggle(false))
		}
	}

	// Period flush so sub-bound backlogs are not starved.
	stopFlush := eng.Every(cfg.BatchPeriod, "flush", func(time.Time) {
		re.TryBatch()
	})

	// Run until every submitted task is terminal or the grace window ends.
	arrivalSpan := time.Duration(float64(cfg.TargetTasks)/cfg.Rate*float64(time.Second)) + time.Second
	deadline := eng.Now().Add(arrivalSpan + cfg.DrainGrace)
	for eng.Now().Before(deadline) {
		eng.RunFor(10 * time.Second)
		_, _, completed, expired := re.Tasks().Counts()
		if res.Received >= cfg.TargetTasks && completed+expired == res.Received {
			break
		}
	}
	stopExpiry()
	stopMonitor()
	stopFlush()

	// Anything still live at the cap is a missed task.
	re.ExpireAllDue()

	res.MeanWorkerExec = workerExec.Mean()
	res.MeanTotalExec = totalExec.Mean()
	res.MeanAttempts = attempts.Mean()
	res.WorkerExecP50 = execHist.Quantile(0.5)
	res.WorkerExecP95 = execHist.Quantile(0.95)
	return res
}
