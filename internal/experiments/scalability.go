package experiments

import "time"

// ScalePoint is one cell of the Figure 9/10 sweep: one technique at one
// (worker count, arrival rate) operating point.
type ScalePoint struct {
	Workers       int
	Rate          float64
	Technique     string
	Received      int
	OnTimePct     float64 // Fig. 9
	PositivePct   float64 // Fig. 10
	Reassignments int
	MeanExecSecs  float64
}

// ScaleConfig parameterizes the sweep. The paper pairs sizes with rates
// ("100, 250, 500, 750 and 1000 workers and the tasks are received with a
// rate of 1.5, 3.125, 6.25, 9.375 and 12.5 tasks per second respectively"),
// so Sizes[i] runs against Rates[i].
type ScaleConfig struct {
	Sizes  []int
	Rates  []float64
	Seed   int64
	Cycles int // REACT/Metropolis budget (paper keeps 1000 at every scale)
	// Span is the simulated submission window; each operating point
	// receives Rate×Span tasks so every cell covers the same virtual
	// duration. Defaults to the main experiment's ≈893 s (8371 tasks at
	// 9.375/s).
	Span time.Duration
}

// Normalize fills defaults.
func (c ScaleConfig) Normalize() ScaleConfig {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{100, 250, 500, 750, 1000}
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{1.5, 3.125, 6.25, 9.375, 12.5}
	}
	if c.Cycles <= 0 {
		c.Cycles = 1000
	}
	if c.Span <= 0 {
		c.Span = 893 * time.Second
	}
	if len(c.Rates) != len(c.Sizes) {
		// Pair up to the shorter list rather than guessing a cross product.
		n := min(len(c.Rates), len(c.Sizes))
		c.Rates = c.Rates[:n]
		c.Sizes = c.Sizes[:n]
	}
	return c
}

// RunScalability runs the three techniques at every operating point and
// returns the grid, REACT first within each point.
func RunScalability(cfg ScaleConfig) []ScalePoint {
	cfg = cfg.Normalize()
	var out []ScalePoint
	for i, size := range cfg.Sizes {
		rate := cfg.Rates[i]
		target := int(rate * cfg.Span.Seconds())
		for _, tech := range []Technique{
			REACTTechnique(cfg.Cycles, cfg.Seed),
			GreedyTechnique(),
			TraditionalTechnique(cfg.Seed),
		} {
			res := RunScenario(ScenarioConfig{
				Technique:   tech,
				Workers:     size,
				Rate:        rate,
				TargetTasks: target,
				Seed:        cfg.Seed,
			})
			out = append(out, ScalePoint{
				Workers:       size,
				Rate:          rate,
				Technique:     res.Technique,
				Received:      res.Received,
				OnTimePct:     100 * res.OnTimeFraction(),
				PositivePct:   100 * res.PositiveFraction(),
				Reassignments: res.Reassignments,
				MeanExecSecs:  res.MeanWorkerExec,
			})
		}
	}
	return out
}
