package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"react/internal/bipartite"
	"react/internal/matching"
)

// MatchPoint is one measurement of the Figure 3/4 experiment: one algorithm
// on one full graph, reporting measured wall time (Fig. 3) and output
// weight (Fig. 4).
type MatchPoint struct {
	Algorithm string
	Cycles    int // 0 for non-iterative algorithms
	Workers   int
	Tasks     int
	Edges     int
	Elapsed   time.Duration
	Weight    float64
	Matched   int
}

// MatchBenchConfig parameterizes the sweep. Zero fields are filled with the
// paper's setup: 1000 workers, task counts 1→1000, cycle budgets 1000 and
// 3000, uniform [0,1) weights on a full graph (the WBGM worst case).
type MatchBenchConfig struct {
	Workers    int
	TaskCounts []int
	Cycles     []int
	Seed       int64
	// Hungarian additionally runs the exact solver at every point, giving
	// the optimality reference the paper's offline discussion appeals to.
	// It is off by default: O(n³) at 1000×1000 is slow enough to dominate
	// the sweep.
	Hungarian bool
}

// Normalize fills defaults.
func (c MatchBenchConfig) Normalize() MatchBenchConfig {
	if c.Workers <= 0 {
		c.Workers = 1000
	}
	if len(c.TaskCounts) == 0 {
		c.TaskCounts = []int{1, 10, 50, 100, 250, 500, 750, 1000}
	}
	if len(c.Cycles) == 0 {
		c.Cycles = []int{1000, 3000}
	}
	return c
}

// RunMatchBench executes the Figure 3/4 sweep and returns one point per
// (algorithm, task count) pair. Graph construction is excluded from the
// timings, matching the paper's measurement of assignment time only.
func RunMatchBench(cfg MatchBenchConfig) []MatchPoint {
	cfg = cfg.Normalize()
	var out []MatchPoint
	for _, tasks := range cfg.TaskCounts {
		g := fullUniformGraph(cfg.Workers, tasks, cfg.Seed)
		run := func(name string, cycles int, m matching.Matcher) {
			//lint:ignore clockdiscipline,clocktaint Figs. 3/4 measure the matchers' real Go wall time; a virtual clock here would defeat the experiment
			start := time.Now()
			match, _ := m.Match(g)
			out = append(out, MatchPoint{
				Algorithm: name,
				Cycles:    cycles,
				Workers:   cfg.Workers,
				Tasks:     tasks,
				Edges:     g.NumEdges(),
				//lint:ignore clockdiscipline,clocktaint see above: real wall time by design
				Elapsed: time.Since(start),
				Weight:  match.Weight(),
				Matched: match.Size(),
			})
		}
		run("greedy", 0, matching.Greedy{})
		for _, cycles := range cfg.Cycles {
			run(fmt.Sprintf("react-%d", cycles), cycles,
				matching.REACT{Cycles: cycles, Rand: newRand(cfg.Seed, "fig34-react")})
			run(fmt.Sprintf("metropolis-%d", cycles), cycles,
				matching.Metropolis{Cycles: cycles, Rand: newRand(cfg.Seed, "fig34-metro")})
		}
		if cfg.Hungarian {
			run("hungarian", 0, matching.Hungarian{})
		}
	}
	return out
}

// fullUniformGraph is the paper's worst-case topology: every worker
// connected to every task with a uniform [0,1) weight, deterministic in the
// seed and independent of the task count ordering.
func fullUniformGraph(workers, tasks int, seed int64) *bipartite.Graph {
	// A per-pair RNG would be slow; derive weights from a single stream
	// indexed row-major so the same (worker, task) pair always gets the
	// same weight for a given seed.
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	weights := make([]float64, workers*tasks)
	for i := range weights {
		weights[i] = rng.Float64()
	}
	return bipartite.Full(workers, tasks, func(w, t int) float64 {
		return weights[w*tasks+t]
	})
}
