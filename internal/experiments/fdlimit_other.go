//go:build !unix

package experiments

// ensureFDs is a no-op where rlimits do not exist; a too-small descriptor
// table surfaces as a dial error from the run itself.
func ensureFDs(need int) error { return nil }
