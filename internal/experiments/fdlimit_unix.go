//go:build unix

package experiments

import (
	"fmt"
	"syscall"
)

// ensureFDs best-effort raises the soft open-file limit to at least need:
// the 1024-connection wire benchmark uses ~3 descriptors per connection
// (client socket, server socket, and headroom), which outruns the common
// 1024-descriptor default soft limit. The hard limit is the ceiling; if
// even that is too low, the benchmark fails loudly here instead of with a
// confusing mid-run EMFILE.
func ensureFDs(need int) error {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return nil // can't inspect; let the run surface any EMFILE itself
	}
	if lim.Cur >= uint64(need) {
		return nil
	}
	if lim.Max < uint64(need) {
		return fmt.Errorf("wirebench: needs %d file descriptors but the hard limit is %d", need, lim.Max)
	}
	lim.Cur = uint64(need)
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return fmt.Errorf("wirebench: raise open-file soft limit to %d: %w", need, err)
	}
	return nil
}
