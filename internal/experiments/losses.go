package experiments

import (
	"react/internal/metrics"
	"react/internal/trace"
)

// Loss attribution: every task that missed its deadline did so for one of a
// small set of reasons, and the lifecycle trace contains enough to name it.
// This is the diagnostic the paper's prose reasons about informally ("the
// majority of the missed deadlines is observed before the needed tasks for
// the system training have been completed"; "when the tasks are eventually
// assigned to a worker they have already expired") — here it is computed.

// LossKind classifies one missed deadline.
type LossKind string

// Loss kinds, from the scheduler's point of view.
const (
	// LossQueued: the task expired without any worker ever holding it —
	// matcher queueing or worker shortage (Greedy's collapse mode).
	LossQueued LossKind = "expired-in-queue"
	// LossAbandoned: a single worker held it to a late completion and the
	// monitor never intervened — undetected delay (Traditional's mode).
	LossAbandoned LossKind = "late-never-rescued"
	// LossRescueLate: the monitor revoked at least once but the final
	// worker still finished late — rescue started too late or repeated
	// delays.
	LossRescueLate LossKind = "late-despite-rescue"
	// LossRescueExpired: revoked at least once and then expired without a
	// new completion — rescue found no viable worker in time.
	LossRescueExpired LossKind = "expired-despite-rescue"
)

// Losses is the attribution table for one run.
type Losses struct {
	Total  int // terminal tasks
	Met    int // completed on time
	Missed int // failed the deadline, by any route
	Open   int // non-terminal lifecycles (0 after a drained run)
	ByKind map[LossKind]int
}

// AttributeLosses classifies every lifecycle in the trace. The trace must
// come from a run that records the Late flag on completions (RunScenario
// does).
func AttributeLosses(rec *trace.Recorder) Losses {
	l := Losses{ByKind: make(map[LossKind]int)}
	for _, lc := range rec.Lifecycles() {
		if !lc.Done {
			l.Open++
			continue
		}
		l.Total++
		if !lc.Expired && !lc.Late {
			l.Met++
			continue
		}
		l.Missed++
		switch {
		case lc.Expired && lc.Attempts == 0:
			l.ByKind[LossQueued]++
		case lc.Expired:
			l.ByKind[LossRescueExpired]++
		case lc.Revocations == 0:
			l.ByKind[LossAbandoned]++
		default:
			l.ByKind[LossRescueLate]++
		}
	}
	return l
}

// LossReport runs the §V.C scenario for the three techniques with tracing
// enabled and renders the attribution — the "why did each miss happen"
// companion to Figure 5.
func LossReport(template ScenarioConfig, seed int64) FigureReport {
	t := metrics.NewTable("technique", "met", "missed", string(LossQueued),
		string(LossAbandoned), string(LossRescueLate), string(LossRescueExpired))
	for _, mk := range []func(int64) Technique{
		func(s int64) Technique { return REACTTechnique(0, s) },
		func(s int64) Technique { return GreedyTechnique() },
		func(s int64) Technique { return TraditionalTechnique(s) },
	} {
		cfg := template
		cfg.Seed = seed
		cfg.Technique = mk(seed)
		rec := trace.NewRecorder()
		cfg.Trace = rec
		res := RunScenario(cfg)
		losses := AttributeLosses(rec)
		t.AddRow(res.Technique, losses.Met, losses.Missed,
			losses.ByKind[LossQueued], losses.ByKind[LossAbandoned],
			losses.ByKind[LossRescueLate], losses.ByKind[LossRescueExpired])
	}
	return FigureReport{
		ID:    "losses",
		Title: "missed-deadline attribution (companion to fig5)",
		Table: t,
		Notes: []string{
			"expired-in-queue dominates greedy's collapse; late-never-rescued dominates traditional; react's residual losses concentrate in failed rescues (training-phase tasks and repeat delays)",
		},
	}
}
