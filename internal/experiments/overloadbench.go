package experiments

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"

	"react/internal/admission"
	"react/internal/clock"
	"react/internal/engine"
	"react/internal/matching"
	"react/internal/region"
	"react/internal/schedule"
	"react/internal/taskq"
)

// Overload-bench service-time distribution: the pooled power law the
// admission plane assumes, α=2.5 over k_min=0.35 s (median ≈ 0.55 s,
// mean ≈ 1.05 s — heavy enough that a few stragglers matter, light
// enough that the fleet keeps a predictable service rate).
const (
	overloadAlpha = 2.5
	overloadKmin  = 0.35
)

// OverloadBenchConfig shapes the three-arm overload experiment behind
// `make overload` and `reactbench -check`. Everything runs in virtual
// time on one goroutine, so the recorded numbers are bit-identical
// across machines — the CI gate compares exact behaviour, not wall
// clocks.
type OverloadBenchConfig struct {
	Workers        int           // simulated fleet size (default 20)
	Duration       time.Duration // virtual run length (default 60s)
	BaseRate       float64       // 1x arrivals per second (default 12)
	OverloadFactor int           // overload arms multiply BaseRate by this (default 10)
	Deadline       time.Duration // per-task deadline from submission (default 2s)
	// Every TightEvery-th task carries TightDeadline instead (defaults 4
	// and 700ms): a slice of urgent work that is feasible on an idle
	// fleet but hopeless behind a queue, which is what makes the
	// probability floor — not just the concurrency ceiling — bind.
	TightEvery    int
	TightDeadline time.Duration
	Seed          int64 // drives the uniform matcher's pairing order
}

func (c OverloadBenchConfig) normalize() OverloadBenchConfig {
	if c.Workers <= 0 {
		c.Workers = 20
	}
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if c.BaseRate <= 0 {
		c.BaseRate = 12
	}
	if c.OverloadFactor <= 1 {
		c.OverloadFactor = 10
	}
	if c.Deadline <= 0 {
		c.Deadline = 2 * time.Second
	}
	if c.TightEvery <= 0 {
		c.TightEvery = 4
	}
	if c.TightDeadline <= 0 {
		c.TightDeadline = 700 * time.Millisecond
	}
	return c
}

// OverloadArmResult is one arm's outcome.
type OverloadArmResult struct {
	Name      string `json:"name"`
	Admission bool   `json:"admission"`
	// Offered counts arrivals; Submitted is what passed admission (equal
	// when the plane is off).
	Offered             int     `json:"offered"`
	Submitted           int     `json:"submitted"`
	RejectedRate        int64   `json:"rejected_rate"`
	RejectedProbability int64   `json:"rejected_probability"`
	Shed                int64   `json:"shed"`
	Completed           int64   `json:"completed"`
	OnTime              int64   `json:"on_time"`
	Expired             int64   `json:"expired"`
	GoodputPerSec       float64 `json:"goodput_per_sec"`  // on-time completions / virtual second
	GoodputPerOffered   float64 `json:"goodput_fraction"` // on-time completions / offered
	UnassignedHighWater int     `json:"unassigned_highwater"`
}

// OverloadBenchResult is the full experiment: a 1x baseline, the same
// fleet at OverloadFactor-times the arrival rate with the admission
// plane off (the collapse), and again with it on (the recovery).
type OverloadBenchResult struct {
	Workers         int     `json:"workers"`
	DurationSeconds float64 `json:"duration_seconds"`
	BaseRate        float64 `json:"base_rate"`
	OverloadFactor  int     `json:"overload_factor"`
	DeadlineSeconds float64 `json:"deadline_seconds"`
	TightEvery      int     `json:"tight_every"`
	TightDeadlineS  float64 `json:"tight_deadline_seconds"`
	Seed            int64   `json:"seed"`

	Baseline    OverloadArmResult `json:"baseline_1x"`
	OverloadOff OverloadArmResult `json:"overload_off"`
	OverloadOn  OverloadArmResult `json:"overload_on"`

	// GoodputRatioOff/On compare the overload arms' goodput to the 1x
	// baseline's. The CI gate requires On >= 0.7: an admission-protected
	// region at 10x offered load must keep at least 70% of its unloaded
	// goodput.
	GoodputRatioOff float64 `json:"goodput_ratio_off"`
	GoodputRatioOn  float64 `json:"goodput_ratio_on"`
}

// execTimeFor derives a task's service time from its id: a power-law
// draw whose uniform variate is the id's hash. Tying the draw to the id
// instead of an RNG stream keeps the simulation deterministic no matter
// what order assignments are delivered in.
func execTimeFor(taskID string) time.Duration {
	h := fnv.New64a()
	h.Write([]byte(taskID))
	// FNV's high bits are weakly mixed for short sequential ids; run the
	// sum through a 64-bit finalizer before treating it as uniform.
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	u := (float64(x>>11) + 0.5) / float64(uint64(1)<<53) // (0,1)
	secs := overloadKmin * math.Pow(u, -1/(overloadAlpha-1))
	return time.Duration(secs * float64(time.Second))
}

// completion is one worker's scheduled finish.
type completion struct {
	at     time.Time
	taskID string
	worker string
}

// overloadPool adapts the engine to the shedder's Pool seam.
type overloadPool struct{ eng *engine.Engine }

func (p overloadPool) Unassigned() []taskq.Task { return p.eng.Tasks().Unassigned() }
func (p overloadPool) Shed(taskID string) error { return p.eng.Shed(taskID) }

// runOverloadArm simulates one arm: open-loop arrivals at rate per
// second against a fresh fleet, workers serving power-law execution
// times, with an optional admission plane in front of Submit. The
// matcher is the paper's "traditional" uniform pairing (§V.C) with edge
// pruning off — the point of the experiment is what the admission plane
// does for a scheduler that is itself deadline-blind.
func runOverloadArm(cfg OverloadBenchConfig, name string, rate float64, acfg *admission.Config) (OverloadArmResult, error) {
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	start := clk.Now()
	loc := region.Point{Lat: 38, Lon: 23.7}

	var delivered []engine.Assignment
	eng := engine.New(engine.Config{
		Clock:   clk,
		Matcher: matching.Uniform{Rand: rand.New(rand.NewSource(cfg.Seed))},
		Schedule: schedule.Config{
			BatchBound:  1,
			BatchPeriod: time.Second,
		},
		Shards:    1,
		Retention: time.Minute,
	}, engine.Hooks{
		Deliver: func(a engine.Assignment) bool {
			delivered = append(delivered, a)
			return true
		},
	})
	for w := 0; w < cfg.Workers; w++ {
		if _, err := eng.AttachWorker(fmt.Sprintf("w%02d", w), loc); err != nil {
			return OverloadArmResult{}, err
		}
	}

	var ctl *admission.Controller
	if acfg != nil {
		a := *acfg
		a.Clock = clk
		a.Workers = func() int { return cfg.Workers }
		ctl = admission.New(a)
		eng.Events().Tap(ctl.Tap)
	}

	res := OverloadArmResult{Name: name, Admission: ctl != nil}
	var pending []completion
	const dt = 50 * time.Millisecond
	ticks := int(cfg.Duration / dt)
	for i := 0; i < ticks; i++ {
		clk.Advance(dt)
		now := clk.Now()

		// Finish every service due by now (late completions included:
		// the soft-deadline policy lets assigned tasks run to the end).
		for len(pending) > 0 && !pending[0].at.After(now) {
			c := pending[0]
			pending = pending[1:]
			_, _, _ = eng.Complete(c.taskID, c.worker, "ok") //nolint — a shed/raced task is simply gone
		}

		// Open-loop arrivals: the offered schedule never slows down for
		// the server, which is exactly what makes overload overload.
		for float64(res.Offered) < rate*now.Sub(start).Seconds() {
			deadline := cfg.Deadline
			if res.Offered%cfg.TightEvery == cfg.TightEvery-1 {
				deadline = cfg.TightDeadline
			}
			t := taskq.Task{
				ID:       fmt.Sprintf("t%07d", res.Offered),
				Location: loc,
				Deadline: now.Add(deadline),
				Reward:   1,
			}
			res.Offered++
			if ctl != nil {
				if d := ctl.Decide("load", t); !d.Admitted() {
					continue
				}
			}
			if err := eng.Submit(t); err != nil {
				return OverloadArmResult{}, err
			}
			res.Submitted++
		}

		eng.TickExpiry()
		eng.TryBatch()
		for _, a := range delivered {
			c := completion{at: now.Add(execTimeFor(a.TaskID)), taskID: a.TaskID, worker: a.WorkerID}
			at := sort.Search(len(pending), func(j int) bool {
				if !pending[j].at.Equal(c.at) {
					return pending[j].at.After(c.at)
				}
				return pending[j].taskID > c.taskID
			})
			pending = append(pending, completion{})
			copy(pending[at+1:], pending[at:])
			pending[at] = c
		}
		delivered = delivered[:0]
		if ctl != nil {
			ctl.TickShed(overloadPool{eng})
		}
	}

	st := eng.Stats()
	res.Completed = st.Completed
	res.OnTime = st.OnTime
	res.Expired = st.Expired
	if ctl != nil {
		_, res.RejectedProbability, res.RejectedRate, res.Shed = ctl.Counters()
	}
	res.GoodputPerSec = float64(st.OnTime) / cfg.Duration.Seconds()
	if res.Offered > 0 {
		res.GoodputPerOffered = float64(st.OnTime) / float64(res.Offered)
	}
	for _, sh := range eng.Tasks().ShardStats() {
		res.UnassignedHighWater += sh.UnassignedHighWater
	}
	return res, nil
}

// RunOverloadBench runs the three arms and derives the goodput ratios.
// The admission arm uses the plane's production defaults scaled to the
// simulated fleet: an in-flight ceiling of twice the fleet, a 0.5
// probability floor, and a 500 ms CoDel target.
func RunOverloadBench(cfg OverloadBenchConfig) (OverloadBenchResult, error) {
	cfg = cfg.normalize()
	res := OverloadBenchResult{
		Workers:         cfg.Workers,
		DurationSeconds: cfg.Duration.Seconds(),
		BaseRate:        cfg.BaseRate,
		OverloadFactor:  cfg.OverloadFactor,
		DeadlineSeconds: cfg.Deadline.Seconds(),
		TightEvery:      cfg.TightEvery,
		TightDeadlineS:  cfg.TightDeadline.Seconds(),
		Seed:            cfg.Seed,
	}
	overRate := cfg.BaseRate * float64(cfg.OverloadFactor)
	acfg := &admission.Config{
		ProbFloor:    0.5,
		MaxInflight:  2 * cfg.Workers,
		ShedTarget:   500 * time.Millisecond,
		ShedInterval: 200 * time.Millisecond,
	}
	var err error
	if res.Baseline, err = runOverloadArm(cfg, "baseline_1x", cfg.BaseRate, nil); err != nil {
		return res, err
	}
	if res.OverloadOff, err = runOverloadArm(cfg, "overload_off", overRate, nil); err != nil {
		return res, err
	}
	if res.OverloadOn, err = runOverloadArm(cfg, "overload_on", overRate, acfg); err != nil {
		return res, err
	}
	if res.Baseline.GoodputPerSec > 0 {
		res.GoodputRatioOff = res.OverloadOff.GoodputPerSec / res.Baseline.GoodputPerSec
		res.GoodputRatioOn = res.OverloadOn.GoodputPerSec / res.Baseline.GoodputPerSec
	}
	return res, nil
}
