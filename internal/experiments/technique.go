// Package experiments reproduces the paper's evaluation (§V): the matcher
// micro-benchmarks of Figures 3–4, the end-to-end crowdsourcing scenario of
// Figures 5–8, and the scalability sweep of Figures 9–10. Everything runs
// on the deterministic discrete-event engine, so a (figure, seed) pair
// always regenerates the same series.
//
// # Modelled matcher latency
//
// The paper's middleware ran in Java on a shared PlanetLab node; the
// matcher latencies it observed are what drive the queueing collapse in
// Figures 5 and 9. A Go reimplementation is orders of magnitude faster, so
// charging *our* wall time to the virtual clock would erase the phenomenon
// being studied. Instead each technique charges an analytic latency:
//
//	Greedy:      |V|·|E| · 10 µs    (calibrated to the Figure 5 collapse)
//	REACT/Metro: c·|E|   · 14 ns    (calibrated to Figure 3: 1000 cycles on
//	                                 a 10⁶-edge graph ≈ 14 s vs paper's ≈12 s)
//	Traditional: |E|     · 1 ns     (an availability lookup, effectively free)
//
// The REACT constant comes straight from Figure 3. The Greedy constant
// cannot: with Figure 3's per-op cost (≈0.1 µs) a batch of ~15 tasks clears
// in milliseconds and Greedy would never queue, yet the paper's own Figure 5
// shows it collapsing after ~4200 tasks at 750 workers and 9.375 tasks/s.
// The paper's end-to-end Greedy evidently paid ~50× more per edge
// inspection than its isolated benchmark (shared node also hosting the
// simulated crowd, per-batch graph maintenance, JVM churn). We therefore
// calibrate GreedyScanCost to the collapse boundary the paper reports —
// marginal instability at 750 workers under reassignment traffic — and
// document the substitution in DESIGN.md. The real matchers still run
// (assignments are genuine); only the *clock charge* is modelled. The
// Figure 3/4 micro-benchmarks report measured Go wall time, not this model.
package experiments

import (
	"time"

	"react/internal/matching"
	"react/internal/schedule"
)

// Calibration constants for the modelled matcher latency (see package doc).
const (
	GreedyScanCost = 10 * time.Microsecond // per task×edge inspection (Fig. 5 calibration)
	IterCycleCost  = 14 * time.Nanosecond  // per cycle×edge for REACT/Metropolis (Fig. 3)
	UniformCost    = 1 * time.Nanosecond   // per edge for the traditional pick
)

// CostFunc models the wall-clock latency of one matching batch as a
// function of the graph the batch ran on.
type CostFunc func(tasks, workers, edges, cycles int) time.Duration

// Technique bundles everything that distinguishes the three systems
// compared in §V.C: the matching algorithm, whether the probabilistic
// monitor reassigns tasks, whether Eq. 3 pruning applies, and the modelled
// matcher latency.
type Technique struct {
	Name       string
	Matcher    matching.Matcher
	UseMonitor bool // Eq. 2 reassignment active
	NoPruning  bool // traditional platforms have no worker model
	Cost       CostFunc
}

// REACTTechnique is the paper's system: WBGM via Algorithm 1 with the given
// cycle budget, Eq. 3 edge pruning, and the Eq. 2 reassignment monitor.
func REACTTechnique(cycles int, seed int64) Technique {
	if cycles <= 0 {
		cycles = matching.DefaultCycles
	}
	return Technique{
		Name:       "react",
		Matcher:    matching.REACT{Cycles: cycles, Rand: newRand(seed, "matcher-react")},
		UseMonitor: true,
		Cost: func(tasks, workers, edges, c int) time.Duration {
			return time.Duration(c) * time.Duration(edges) * IterCycleCost
		},
	}
}

// MetropolisTechnique swaps Algorithm 1 for the Metropolis baseline with
// the same surroundings; used by ablation benches.
func MetropolisTechnique(cycles int, seed int64) Technique {
	if cycles <= 0 {
		cycles = matching.DefaultCycles
	}
	return Technique{
		Name:       "metropolis",
		Matcher:    matching.Metropolis{Cycles: cycles, Rand: newRand(seed, "matcher-metro")},
		UseMonitor: true,
		Cost: func(tasks, workers, edges, c int) time.Duration {
			return time.Duration(c) * time.Duration(edges) * IterCycleCost
		},
	}
}

// GreedyTechnique is the §V.C Greedy arm: the highest-weight-edge policy
// with the monitor active, charged the paper's Θ(V·E) scan latency. The
// policy itself runs as GreedyIndexed (identical output, Θ(E) real cost) so
// regenerating the figure stays fast; the modelled charge preserves the
// collapse.
func GreedyTechnique() Technique {
	return Technique{
		Name:       "greedy",
		Matcher:    matching.GreedyIndexed{},
		UseMonitor: true,
		Cost: func(tasks, workers, edges, c int) time.Duration {
			return time.Duration(tasks) * time.Duration(edges) * GreedyScanCost
		},
	}
}

// TraditionalTechnique models AMT-style platforms: uniform worker choice,
// no worker model (no pruning), no reassignment.
func TraditionalTechnique(seed int64) Technique {
	return Technique{
		Name:      "traditional",
		Matcher:   matching.Uniform{Rand: newRand(seed, "matcher-uniform")},
		NoPruning: true,
		Cost: func(tasks, workers, edges, c int) time.Duration {
			return time.Duration(edges) * UniformCost
		},
	}
}

// ScheduleConfig derives the schedule.Config for a technique with the given
// batch bound.
func (t Technique) ScheduleConfig(batchBound int, batchPeriod time.Duration) schedule.Config {
	return schedule.Config{
		BatchBound:  batchBound,
		BatchPeriod: batchPeriod,
		NoPruning:   t.NoPruning,
	}
}

// PortfolioTechnique runs k parallel REACT searches per batch and keeps the
// best matching. The modelled latency charges only ONE search's time — the
// searches run on idle cores — so the ablation isolates what free
// parallelism buys: better matchings at identical virtual cost.
func PortfolioTechnique(searches, cycles int, seed int64) Technique {
	if cycles <= 0 {
		cycles = matching.DefaultCycles
	}
	if searches <= 0 {
		searches = 4
	}
	return Technique{
		Name:       "react-portfolio",
		Matcher:    matching.Portfolio{Searches: searches, Cycles: cycles, Seed: seed},
		UseMonitor: true,
		Cost: func(tasks, workers, edges, c int) time.Duration {
			// c aggregates all searches' cycles; wall time is one search.
			perSearch := c / searches
			return time.Duration(perSearch) * time.Duration(edges) * IterCycleCost
		},
	}
}
