package experiments

import (
	"fmt"
	"time"

	"react/internal/clock"
	"react/internal/engine"
	"react/internal/matching"
	"react/internal/region"
	"react/internal/schedule"
	"react/internal/taskq"
)

// EngineBenchConfig shapes one engine-throughput run: the workload behind
// BenchmarkEngineThroughput and `reactbench -check`, shared so the CI gate
// measures exactly what the benchmark measures.
type EngineBenchConfig struct {
	Shards     int // task-store stripes (default 1)
	Ops        int // submit→assign→complete cycles to drive (default 20000)
	Workers    int // completing goroutines (default 32)
	BatchBound int // batch trigger bound (default 16)
	// Wall supplies wall time for the throughput measurement. The engine
	// itself runs on a virtual clock (deadlines never expire; every config
	// completes identical work) — Wall only times it. Default the system
	// clock.
	Wall clock.Clock
}

func (c EngineBenchConfig) normalize() EngineBenchConfig {
	if c.Shards < 1 {
		c.Shards = 1
	}
	if c.Ops <= 0 {
		c.Ops = 20000
	}
	if c.Workers <= 0 {
		c.Workers = 32
	}
	if c.BatchBound <= 0 {
		c.BatchBound = 16
	}
	if c.Wall == nil {
		c.Wall = clock.System{}
	}
	return c
}

// EngineBenchResult is one run's measurements.
type EngineBenchResult struct {
	Shards        int     `json:"shards"`
	Ops           int     `json:"ops"`
	ElapsedNS     int64   `json:"elapsed_ns"`
	Completed     int64   `json:"completed"`
	Expired       int64   `json:"expired"`
	Batches       int64   `json:"batches"`
	NsPerOp       float64 `json:"ns_per_op"`
	CyclesPerSec  float64 `json:"cycles_per_sec"`
	BatchesPerKop float64 `json:"batches_per_kop"`
}

// RunEngineBench pushes cfg.Ops submit→assign→complete cycles through a
// sharded engine as fast as one driver goroutine can offer them, with
// cfg.Workers goroutines completing whatever they are handed, then drains
// until every task has completed. See bench_test.go for why the shard
// count is the interesting variable: a single stripe serializes
// completions behind the driver's own lock, the backlog outruns the batch
// bound, and the Θ(V·E) greedy scan amplifies the contention
// quadratically.
func RunEngineBench(cfg EngineBenchConfig) (EngineBenchResult, error) {
	cfg = cfg.normalize()
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	feeds := make([]chan engine.Assignment, cfg.Workers)
	feedIdx := make(map[string]int, cfg.Workers)
	for i := range feeds {
		feeds[i] = make(chan engine.Assignment, 8)
		feedIdx[fmt.Sprintf("w%02d", i)] = i
	}
	eng := engine.New(engine.Config{
		Clock:   clk,
		Matcher: matching.Greedy{},
		Schedule: schedule.Config{
			BatchBound:  cfg.BatchBound,
			BatchPeriod: time.Second,
		},
		Shards: cfg.Shards,
		// GC terminal records aggressively so the store holds only live
		// tasks and the run measures steady state, not map growth.
		Retention: time.Nanosecond,
	}, engine.Hooks{
		Deliver: func(a engine.Assignment) bool {
			select {
			case feeds[feedIdx[a.WorkerID]] <- a:
				return true
			default:
				return false // feed full; engine revokes and re-matches later
			}
		},
	})
	for w := 0; w < cfg.Workers; w++ {
		if _, err := eng.AttachWorker(fmt.Sprintf("w%02d", w), region.Point{Lat: 38, Lon: 23.7}); err != nil {
			return EngineBenchResult{}, err
		}
	}
	done := make(chan struct{})
	finished := make(chan struct{}, cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		w := w
		go func() {
			defer func() { finished <- struct{}{} }()
			id := fmt.Sprintf("w%02d", w)
			for {
				select {
				case <-done:
					return
				case a := <-feeds[w]:
					if _, _, err := eng.Complete(a.TaskID, id, "ok"); err == nil {
						eng.Feedback(a.TaskID, true)
					}
				}
			}
		}()
	}

	start := cfg.Wall.Now()
	for i := 0; i < cfg.Ops; i++ {
		clk.Advance(time.Microsecond)
		if err := eng.Submit(taskq.Task{
			ID:       fmt.Sprintf("t%08d", i),
			Deadline: clk.Now().Add(1000 * time.Hour),
			Reward:   1,
		}); err != nil {
			close(done)
			return EngineBenchResult{}, err
		}
		eng.TryBatch()
		if i%256 == 0 {
			eng.TickRetention()
		}
	}
	// Drain: small advances keep every deadline live (nothing may escape
	// by expiring), so every shard configuration finishes the identical
	// cfg.Ops completions.
	for {
		st := eng.Stats()
		if st.Completed+st.Expired == int64(cfg.Ops) {
			break
		}
		clk.Advance(2 * time.Second)
		eng.TryBatch()
	}
	elapsed := cfg.Wall.Now().Sub(start)
	close(done)
	for w := 0; w < cfg.Workers; w++ {
		<-finished
	}

	st := eng.Stats()
	res := EngineBenchResult{
		Shards:    cfg.Shards,
		Ops:       cfg.Ops,
		ElapsedNS: elapsed.Nanoseconds(),
		Completed: st.Completed,
		Expired:   st.Expired,
		Batches:   st.Batches,
	}
	if secs := elapsed.Seconds(); secs > 0 {
		res.CyclesPerSec = float64(st.Completed) / secs
	}
	res.NsPerOp = float64(elapsed.Nanoseconds()) / float64(cfg.Ops)
	res.BatchesPerKop = float64(st.Batches) / float64(cfg.Ops) * 1000
	return res, nil
}
