package profile

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"react/internal/region"
)

var athens = region.Point{Lat: 37.98, Lon: 23.73}

func TestRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	p, err := r.Register("alice", athens)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID() != "alice" || p.Location() != athens {
		t.Fatalf("profile = %v at %v", p.ID(), p.Location())
	}
	if !p.Available() {
		t.Fatal("fresh worker should be available")
	}
	got, ok := r.Get("alice")
	if !ok || got != p {
		t.Fatal("Get returned a different profile")
	}
	if r.Size() != 1 {
		t.Fatalf("Size = %d", r.Size())
	}
}

func TestRegisterDuplicate(t *testing.T) {
	r := NewRegistry()
	r.Register("alice", athens)
	if _, err := r.Register("alice", athens); !errors.Is(err, ErrDuplicateWorker) {
		t.Fatalf("dup err = %v", err)
	}
}

func TestDeregister(t *testing.T) {
	r := NewRegistry()
	r.Register("alice", athens)
	if err := r.Deregister("alice"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Get("alice"); ok {
		t.Fatal("worker still present after deregister")
	}
	if err := r.Deregister("alice"); !errors.Is(err, ErrUnknownWorker) {
		t.Fatalf("double deregister err = %v", err)
	}
}

func TestAvailabilityAndBusy(t *testing.T) {
	r := NewRegistry()
	p, _ := r.Register("alice", athens)
	p.MarkBusy("t1")
	if p.Available() {
		t.Fatal("busy worker reported available")
	}
	if p.CurrentTask() != "t1" {
		t.Fatalf("CurrentTask = %q", p.CurrentTask())
	}
	p.MarkIdle()
	if !p.Available() {
		t.Fatal("idle worker not available")
	}
	p.SetAvailable(false)
	if p.Available() {
		t.Fatal("disconnected worker reported available")
	}
	if got := r.Available(); len(got) != 0 {
		t.Fatalf("registry Available = %d workers", len(got))
	}
}

func TestAvailableSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	for _, id := range []string{"carol", "alice", "bob"} {
		r.Register(id, athens)
	}
	got := r.Available()
	if len(got) != 3 || got[0].ID() != "alice" || got[1].ID() != "bob" || got[2].ID() != "carol" {
		ids := make([]string, len(got))
		for i, p := range got {
			ids[i] = p.ID()
		}
		t.Fatalf("order = %v", ids)
	}
	all := r.All()
	if len(all) != 3 || all[0].ID() != "alice" {
		t.Fatalf("All() wrong: %d entries", len(all))
	}
}

func TestEq1AccuracyPerCategory(t *testing.T) {
	var p Profile
	if _, ok := p.Accuracy("traffic"); ok {
		t.Fatal("accuracy without history should report !ok")
	}
	p.RecordCompletion("traffic", 5, true)
	p.RecordCompletion("traffic", 7, true)
	p.RecordCompletion("traffic", 9, false)
	p.RecordCompletion("photo", 4, false)
	if acc, ok := p.Accuracy("traffic"); !ok || math.Abs(acc-2.0/3) > 1e-12 {
		t.Fatalf("traffic accuracy = %v, %v", acc, ok)
	}
	if acc, ok := p.Accuracy("photo"); !ok || acc != 0 {
		t.Fatalf("photo accuracy = %v, %v", acc, ok)
	}
	if acc, ok := p.OverallAccuracy(); !ok || acc != 0.5 {
		t.Fatalf("overall accuracy = %v, %v", acc, ok)
	}
	if p.Finished() != 4 {
		t.Fatalf("Finished = %d", p.Finished())
	}
}

func TestTraineePhase(t *testing.T) {
	var p Profile
	if !p.Trainee(3) {
		t.Fatal("fresh worker should be a trainee")
	}
	for i := 0; i < 3; i++ {
		p.RecordCompletion("traffic", float64(i+2), true)
	}
	if p.Trainee(3) {
		t.Fatal("worker with 3 completions still a trainee at z=3")
	}
	if p.Trainee(5) != true {
		t.Fatal("worker with 3 completions should be a trainee at z=5")
	}
}

func TestModelRequiresHistory(t *testing.T) {
	var p Profile
	if _, ok := p.Model(3); ok {
		t.Fatal("model with no history")
	}
	p.RecordCompletion("traffic", 5, true)
	p.RecordCompletion("traffic", 8, true)
	if _, ok := p.Model(3); ok {
		t.Fatal("model with 2 samples at minHistory=3")
	}
	p.RecordCompletion("traffic", 12, false)
	m, ok := p.Model(3)
	if !ok {
		t.Fatal("model missing with 3 samples")
	}
	if m.Kmin != 5 || m.N != 3 {
		t.Fatalf("model = %+v", m)
	}
	// minHistory < 1 falls back to the default of 3.
	if _, ok := p.Model(0); !ok {
		t.Fatal("Model(0) should use DefaultMinHistory and succeed")
	}
}

func TestModelSkipsNonPositiveExecTimes(t *testing.T) {
	var p Profile
	p.RecordCompletion("traffic", 0, true)  // counted for accuracy only
	p.RecordCompletion("traffic", -3, true) // likewise
	p.RecordCompletion("traffic", 6, true)
	if p.Finished() != 3 {
		t.Fatalf("Finished = %d", p.Finished())
	}
	if _, ok := p.Model(3); ok {
		t.Fatal("model fitted from only 1 positive sample at minHistory=3")
	}
	if acc, _ := p.OverallAccuracy(); acc != 1 {
		t.Fatalf("accuracy = %v", acc)
	}
}

func TestRewardRange(t *testing.T) {
	var p Profile
	if !p.AcceptsReward(0.01) {
		t.Fatal("default profile should accept any reward")
	}
	p.SetRewardRange(0.05, 0.50)
	if p.AcceptsReward(0.01) || p.AcceptsReward(0.60) {
		t.Fatal("out-of-range reward accepted")
	}
	if !p.AcceptsReward(0.05) || !p.AcceptsReward(0.50) || !p.AcceptsReward(0.25) {
		t.Fatal("in-range reward rejected")
	}
	p.SetRewardRange(0, 0) // disable again
	if !p.AcceptsReward(99) {
		t.Fatal("disabled range still filtering")
	}
}

func TestSetLocation(t *testing.T) {
	var p Profile
	loc := region.Point{Lat: 40.64, Lon: 22.94}
	p.SetLocation(loc)
	if p.Location() != loc {
		t.Fatalf("Location = %v", p.Location())
	}
}

func TestConcurrentRecordAndRead(t *testing.T) {
	r := NewRegistry()
	p, _ := r.Register("w", athens)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p.RecordCompletion("traffic", float64(i%20+1), i%2 == 0)
				p.Accuracy("traffic")
				p.Model(3)
				p.Trainee(3)
			}
		}(g)
	}
	wg.Wait()
	if p.Finished() != 1600 {
		t.Fatalf("Finished = %d", p.Finished())
	}
	if acc, ok := p.OverallAccuracy(); !ok || acc != 0.5 {
		t.Fatalf("accuracy = %v, %v", acc, ok)
	}
	if m, ok := p.Model(3); !ok || m.Kmin != 1 {
		t.Fatalf("model = %+v, %v", m, ok)
	}
}

func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("g%d-w%d", g, i)
				if _, err := r.Register(id, athens); err != nil {
					t.Error(err)
					return
				}
				r.Available()
				if i%2 == 0 {
					r.Deregister(id)
				}
			}
		}(g)
	}
	wg.Wait()
	if r.Size() != 400 {
		t.Fatalf("Size = %d, want 400", r.Size())
	}
}

func TestTwoPhaseRecording(t *testing.T) {
	var p Profile
	// Execution samples arrive at completion time...
	p.RecordExecTime(5)
	p.RecordExecTime(8)
	p.RecordExecTime(12)
	p.RecordExecTime(-1) // ignored
	p.RecordExecTime(0)  // ignored
	if m, ok := p.Model(3); !ok || m.N != 3 || m.Kmin != 5 {
		t.Fatalf("model = %+v, %v", m, ok)
	}
	// ...while feedback lands later, possibly for fewer tasks.
	p.RecordFeedback("traffic", true)
	p.RecordFeedback("traffic", false)
	if acc, ok := p.Accuracy("traffic"); !ok || acc != 0.5 {
		t.Fatalf("accuracy = %v, %v", acc, ok)
	}
	if p.Finished() != 2 {
		t.Fatalf("Finished = %d", p.Finished())
	}
}

func TestTwoPhaseEquivalentToCombined(t *testing.T) {
	var a, b Profile
	a.RecordCompletion("photo", 7, true)
	b.RecordExecTime(7)
	b.RecordFeedback("photo", true)
	am, _ := a.Model(1)
	bm, _ := b.Model(1)
	if am != bm {
		t.Fatalf("models differ: %+v vs %+v", am, bm)
	}
	aa, _ := a.Accuracy("photo")
	ba, _ := b.Accuracy("photo")
	if aa != ba {
		t.Fatalf("accuracy differs: %v vs %v", aa, ba)
	}
}
