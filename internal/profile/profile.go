// Package profile is REACT's Profiling Component (§III.A/B): per-worker
// records of location, availability, per-category feedback accuracy, and the
// completion-time history that feeds the power-law execution model of
// §IV.B. The Scheduling Component reads worker quality (Eq. 1) and deadline
// probabilities from here when constructing the bipartite graph; the
// Dynamic Assignment Component reads the fitted model when deciding
// reassignment.
package profile

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"react/internal/powerlaw"
	"react/internal/region"
)

// DefaultMinHistory is the paper's training threshold: the probabilistic
// model only activates once a worker has at least this many completed tasks
// ("the reassignment of the tasks based on the probabilistic model needs at
// least 3 completed tasks in the worker's profile", §V.C).
const DefaultMinHistory = 3

// Errors reported by the registry.
var (
	ErrDuplicateWorker = errors.New("profile: duplicate worker id")
	ErrUnknownWorker   = errors.New("profile: unknown worker id")
)

// categoryStats tracks Eq. 1's numerator and denominator for one task
// category.
type categoryStats struct {
	positive int
	finished int
}

// Profile is one worker's record. All methods are safe for concurrent use.
type Profile struct {
	id string

	mu         sync.Mutex
	location   region.Point
	available  bool
	busyTask   string // task currently assigned ("" when idle)
	categories map[string]*categoryStats
	positive   int // totals across categories
	finished   int
	fitter     powerlaw.Fitter
	rewardMin  float64 // reward-range extension (§III.C); 0,0 disables
	rewardMax  float64
}

// ID returns the worker's identifier.
func (p *Profile) ID() string { return p.id }

// Location reports the last registered geographical location.
func (p *Profile) Location() region.Point {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.location
}

// SetLocation updates the worker's location (mobile workers move).
func (p *Profile) SetLocation(loc region.Point) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.location = loc
}

// Available reports whether the worker is connected and idle — i.e. a
// vertex the Scheduling Component should put in U.
func (p *Profile) Available() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.available && p.busyTask == ""
}

// Connected reports the raw connectivity flag: true for a worker that is
// attached, whether idle or mid-task. Compare Available, which also
// requires the worker to be idle.
func (p *Profile) Connected() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.available
}

// SetAvailable flips the worker's connectivity status. Workers with short
// connectivity cycles toggle this as they come and go.
func (p *Profile) SetAvailable(v bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.available = v
}

// MarkBusy records that the worker started the given task; MarkIdle clears
// it. A busy worker is excluded from matching (one task at a time, §III.C).
func (p *Profile) MarkBusy(taskID string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.busyTask = taskID
}

// MarkIdle clears the current task.
func (p *Profile) MarkIdle() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.busyTask = ""
}

// CurrentTask reports the task the worker is executing ("" when idle).
func (p *Profile) CurrentTask() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.busyTask
}

// SetRewardRange enables the reward-range extension: the scheduler will not
// instantiate edges to tasks whose reward falls outside [min, max]. A zero
// max disables the filter.
func (p *Profile) SetRewardRange(min, max float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rewardMin, p.rewardMax = min, max
}

// AcceptsReward reports whether a task reward passes the worker's range.
func (p *Profile) AcceptsReward(reward float64) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rewardMax <= 0 {
		return true
	}
	return reward >= p.rewardMin && reward <= p.rewardMax
}

// RecordCompletion stores one finished task: its category, the execution
// time in seconds (ExecTime_ij), and the requester's feedback. Non-positive
// execution times are recorded as accuracy data but skipped by the
// power-law fitter, which requires positive samples.
func (p *Profile) RecordCompletion(category string, execSeconds float64, positiveFeedback bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.categories == nil {
		p.categories = make(map[string]*categoryStats)
	}
	cs := p.categories[category]
	if cs == nil {
		cs = &categoryStats{}
		p.categories[category] = cs
	}
	cs.finished++
	p.finished++
	if positiveFeedback {
		cs.positive++
		p.positive++
	}
	if execSeconds > 0 {
		p.fitter.Add(execSeconds) // error impossible for positive finite input
	}
}

// RecordExecTime stores only the completion-time sample, for deployments
// where requester feedback arrives later (or never): the execution model
// must not starve while accuracy waits. Non-positive samples are ignored.
func (p *Profile) RecordExecTime(execSeconds float64) {
	if execSeconds <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fitter.Add(execSeconds)
}

// RecordFeedback stores only the requester's verdict for a finished task in
// the given category, completing the two-phase form of RecordCompletion.
func (p *Profile) RecordFeedback(category string, positive bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.categories == nil {
		p.categories = make(map[string]*categoryStats)
	}
	cs := p.categories[category]
	if cs == nil {
		cs = &categoryStats{}
		p.categories[category] = cs
	}
	cs.finished++
	p.finished++
	if positive {
		cs.positive++
		p.positive++
	}
}

// Accuracy is Eq. 1 for one category: ΣPositiveTask/ΣFinishedTask. ok is
// false when the worker has no history in the category and the caller must
// fall back (trainee rule or overall accuracy).
func (p *Profile) Accuracy(category string) (acc float64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	cs := p.categories[category]
	if cs == nil || cs.finished == 0 {
		return 0, false
	}
	return float64(cs.positive) / float64(cs.finished), true
}

// OverallAccuracy aggregates Eq. 1 across categories.
func (p *Profile) OverallAccuracy() (acc float64, ok bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.finished == 0 {
		return 0, false
	}
	return float64(p.positive) / float64(p.finished), true
}

// Finished reports the worker's total completed tasks.
func (p *Profile) Finished() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.finished
}

// Trainee reports whether the worker is still in the training phase: fewer
// than z completed tasks. The scheduler gives trainees edges to every task
// at maximum weight so their profile gets built (§IV.A).
func (p *Profile) Trainee(z int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.finished < z
}

// Model returns the fitted power-law execution-time model, requiring at
// least minHistory positive samples. minHistory below 1 uses
// DefaultMinHistory.
func (p *Profile) Model(minHistory int) (powerlaw.Model, bool) {
	if minHistory < 1 {
		minHistory = DefaultMinHistory
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fitter.N() < minHistory {
		return powerlaw.Model{}, false
	}
	m, err := p.fitter.Model()
	if err != nil {
		return powerlaw.Model{}, false
	}
	return m, true
}

// FitSamples reports how many positive execution-time samples the
// power-law fitter holds — the quantity that says how far a worker is from
// the training threshold even while Model still returns false.
func (p *Profile) FitSamples() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fitter.N()
}

// Registry is the set of known workers, keyed by worker id. It is safe for
// concurrent use.
type Registry struct {
	mu      sync.RWMutex
	workers map[string]*Profile
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{workers: make(map[string]*Profile)}
}

// Register adds a worker at a location, initially available.
func (r *Registry) Register(id string, loc region.Point) (*Profile, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.workers[id]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateWorker, id)
	}
	p := &Profile{id: id, location: loc, available: true}
	r.workers[id] = p
	return p, nil
}

// Deregister removes a worker entirely (the worker abandoned the system).
// The profile history is lost, matching real marketplaces where a departed
// worker's record no longer helps scheduling.
func (r *Registry) Deregister(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.workers[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownWorker, id)
	}
	delete(r.workers, id)
	return nil
}

// Get looks up a worker.
func (r *Registry) Get(id string) (*Profile, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.workers[id]
	return p, ok
}

// Size reports the number of registered workers.
func (r *Registry) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.workers)
}

// CountConnected reports how many workers are currently connected (busy or
// idle) — the honest "workers online" figure, as opposed to Size, which
// counts every known profile including detached ones.
func (r *Registry) CountConnected() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, p := range r.workers {
		if p.Connected() {
			n++
		}
	}
	return n
}

// Available snapshots the workers currently available for assignment,
// sorted by id for deterministic graph construction.
func (r *Registry) Available() []*Profile {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Profile, 0, len(r.workers))
	for _, p := range r.workers {
		if p.Available() {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// All snapshots every registered worker, sorted by id.
func (r *Registry) All() []*Profile {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*Profile, 0, len(r.workers))
	for _, p := range r.workers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
