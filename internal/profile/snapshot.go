package profile

import (
	"encoding/json"
	"fmt"
	"io"

	"react/internal/powerlaw"
	"react/internal/region"
)

// Snapshotting lets a deployment persist the Profiling Component across
// restarts. Worker histories are the system's learned state: without them
// every worker reverts to the trainee rule and the probabilistic scheduler
// is blind until z tasks per worker have been re-observed. The format is
// line-oriented JSON, one worker per line, so snapshots stream and diff
// well.

// workerSnapshot is the persisted form of one Profile. Transient state
// (availability, the currently held task) is deliberately excluded: after a
// restart no assignment survives, and a reconnecting worker re-announces
// availability.
type workerSnapshot struct {
	ID         string            `json:"id"`
	Lat        float64           `json:"lat"`
	Lon        float64           `json:"lon"`
	Categories map[string][2]int `json:"categories,omitempty"` // category → [positive, finished]
	FitN       int               `json:"fit_n"`
	FitSumLog  float64           `json:"fit_sum_log"`
	FitMin     float64           `json:"fit_min"`
	RewardMin  float64           `json:"reward_min,omitempty"`
	RewardMax  float64           `json:"reward_max,omitempty"`
}

// WriteSnapshot streams every worker's persistent state to w, sorted by
// worker ID.
func (r *Registry) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, p := range r.All() {
		snap := p.snapshot()
		//lint:ignore blockingunderlock the journal calls this with its compaction lock held and an in-memory buffer as w — deliberate (docs/PERSISTENCE.md); no profile lock is held here
		if err := enc.Encode(snap); err != nil {
			return fmt.Errorf("profile: snapshot %q: %w", p.ID(), err)
		}
	}
	return nil
}

func (p *Profile) snapshot() workerSnapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := workerSnapshot{
		ID:        p.id,
		Lat:       p.location.Lat,
		Lon:       p.location.Lon,
		RewardMin: p.rewardMin,
		RewardMax: p.rewardMax,
	}
	s.FitN, s.FitSumLog, s.FitMin = p.fitter.State()
	if len(p.categories) > 0 {
		s.Categories = make(map[string][2]int, len(p.categories))
		for cat, cs := range p.categories {
			s.Categories[cat] = [2]int{cs.positive, cs.finished}
		}
	}
	return s
}

// ReadSnapshot loads workers from a snapshot stream into the registry.
// Restored workers start unavailable (they have not reconnected yet).
// Workers already present are skipped with an error; decoding stops at the
// first malformed line.
func (r *Registry) ReadSnapshot(rd io.Reader) (restored int, err error) {
	dec := json.NewDecoder(rd)
	for {
		var s workerSnapshot
		//lint:ignore blockingunderlock the journal calls this with its compaction lock held and an in-memory reader as rd — deliberate (docs/PERSISTENCE.md); no profile lock is held here
		if err := dec.Decode(&s); err == io.EOF {
			return restored, nil
		} else if err != nil {
			return restored, fmt.Errorf("profile: snapshot line %d: %w", restored+1, err)
		}
		p, err := r.restore(s)
		if err != nil {
			return restored, err
		}
		_ = p
		restored++
	}
}

func (r *Registry) restore(s workerSnapshot) (*Profile, error) {
	if s.ID == "" {
		return nil, fmt.Errorf("profile: snapshot entry missing id")
	}
	loc := region.Point{Lat: s.Lat, Lon: s.Lon}
	if !loc.Valid() {
		return nil, fmt.Errorf("profile: snapshot %q has invalid location %v", s.ID, loc)
	}
	fitter, err := powerlaw.RestoreFitter(s.FitN, s.FitSumLog, s.FitMin)
	if err != nil {
		return nil, fmt.Errorf("profile: snapshot %q: %w", s.ID, err)
	}
	p, err := r.Register(s.ID, loc)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.available = false // not reconnected yet
	p.fitter = *fitter
	p.rewardMin, p.rewardMax = s.RewardMin, s.RewardMax
	for cat, pf := range s.Categories {
		positive, finished := pf[0], pf[1]
		if positive < 0 || finished < positive {
			return nil, fmt.Errorf("profile: snapshot %q category %q has impossible counts %d/%d",
				s.ID, cat, positive, finished)
		}
		if p.categories == nil {
			p.categories = make(map[string]*categoryStats)
		}
		p.categories[cat] = &categoryStats{positive: positive, finished: finished}
		p.positive += positive
		p.finished += finished
	}
	return p, nil
}
