package profile

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"react/internal/region"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := NewRegistry()
	alice, _ := src.Register("alice", athens)
	alice.RecordCompletion("traffic", 5, true)
	alice.RecordCompletion("traffic", 8, false)
	alice.RecordCompletion("photo", 12, true)
	alice.SetRewardRange(0.05, 0.50)
	bob, _ := src.Register("bob", region.Point{Lat: 40.64, Lon: 22.94})
	_ = bob // fresh worker, no history

	var buf bytes.Buffer
	if err := src.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst := NewRegistry()
	n, err := dst.ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || dst.Size() != 2 {
		t.Fatalf("restored %d workers, size %d", n, dst.Size())
	}

	a, ok := dst.Get("alice")
	if !ok {
		t.Fatal("alice missing")
	}
	// Accuracy preserved per category.
	if acc, ok := a.Accuracy("traffic"); !ok || acc != 0.5 {
		t.Fatalf("traffic accuracy = %v, %v", acc, ok)
	}
	if acc, ok := a.Accuracy("photo"); !ok || acc != 1 {
		t.Fatalf("photo accuracy = %v, %v", acc, ok)
	}
	if a.Finished() != 3 {
		t.Fatalf("Finished = %d", a.Finished())
	}
	// Execution model preserved exactly.
	srcModel, _ := alice.Model(3)
	dstModel, ok := a.Model(3)
	if !ok || math.Abs(srcModel.Alpha-dstModel.Alpha) > 1e-12 || srcModel.Kmin != dstModel.Kmin {
		t.Fatalf("model drifted: %+v vs %+v", srcModel, dstModel)
	}
	// Reward range preserved.
	if a.AcceptsReward(0.01) || !a.AcceptsReward(0.25) {
		t.Fatal("reward range lost")
	}
	// Location preserved.
	if a.Location() != athens {
		t.Fatalf("location = %v", a.Location())
	}
	// Restored workers start offline.
	if a.Available() {
		t.Fatal("restored worker marked available")
	}
	// Fresh bob restored with no history.
	b, _ := dst.Get("bob")
	if b.Finished() != 0 {
		t.Fatalf("bob Finished = %d", b.Finished())
	}
	if _, ok := b.Model(1); ok {
		t.Fatal("bob has a model from nowhere")
	}
}

func TestSnapshotEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry().WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty registry produced %d bytes", buf.Len())
	}
	n, err := NewRegistry().ReadSnapshot(&buf)
	if err != nil || n != 0 {
		t.Fatalf("restore empty: %d, %v", n, err)
	}
}

func TestReadSnapshotRejectsMalformed(t *testing.T) {
	cases := []string{
		`{"id":""}`,                            // missing id
		`{"id":"w","lat":200}`,                 // bad location
		`{"id":"w","fit_n":-1}`,                // negative samples
		`{"id":"w","fit_n":3,"fit_min":0}`,     // samples but no min
		`{"id":"w","categories":{"x":[5,2]}}`,  // positive > finished
		`this is not json`,                     // garbage
		`{"id":"w","fit_n":1,"fit_min":1e999}`, // non-finite after parse (inf)
	}
	for _, line := range cases {
		r := NewRegistry()
		if _, err := r.ReadSnapshot(strings.NewReader(line + "\n")); err == nil {
			t.Errorf("accepted malformed snapshot %q", line)
		}
	}
}

func TestReadSnapshotDuplicateWorker(t *testing.T) {
	r := NewRegistry()
	r.Register("w", athens)
	line := `{"id":"w","lat":1,"lon":1}`
	if _, err := r.ReadSnapshot(strings.NewReader(line + "\n")); err == nil {
		t.Fatal("duplicate restore accepted")
	}
}

func TestReadSnapshotPartialProgress(t *testing.T) {
	input := `{"id":"a","lat":1,"lon":1}
{"id":"b","lat":2,"lon":2}
garbage
`
	r := NewRegistry()
	n, err := r.ReadSnapshot(strings.NewReader(input))
	if err == nil {
		t.Fatal("garbage tail accepted")
	}
	if n != 2 || r.Size() != 2 {
		t.Fatalf("restored %d before failure, size %d", n, r.Size())
	}
}

func TestSnapshotSortedAndStable(t *testing.T) {
	r := NewRegistry()
	for _, id := range []string{"zed", "amy", "mid"} {
		r.Register(id, athens)
	}
	var b1, b2 bytes.Buffer
	r.WriteSnapshot(&b1)
	r.WriteSnapshot(&b2)
	if b1.String() != b2.String() {
		t.Fatal("snapshot not deterministic")
	}
	lines := strings.Split(strings.TrimSpace(b1.String()), "\n")
	if len(lines) != 3 || !strings.Contains(lines[0], `"amy"`) || !strings.Contains(lines[2], `"zed"`) {
		t.Fatalf("snapshot order wrong:\n%s", b1.String())
	}
}
