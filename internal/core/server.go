// Package core assembles the four REACT components (Figure 1) into the
// deployable region server. The control logic itself — batch trigger, WBGM
// scheduling, assignment application, Eq. 2 monitoring, expiry, retention —
// lives in internal/engine and is shared verbatim with the deterministic
// harness in internal/experiments; core adds what a live deployment needs
// on top: lifecycle goroutines that tick the engine against a real clock,
// and per-worker assignment feeds (channels) behind the engine's Deliver
// hook.
//
// It still accepts any clock.Clock, so integration tests drive it with a
// virtual clock.
package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"react/internal/admission"
	"react/internal/clock"
	"react/internal/dynassign"
	"react/internal/engine"
	"react/internal/event"
	"react/internal/journal"
	"react/internal/matching"
	"react/internal/profile"
	"react/internal/region"
	"react/internal/schedule"
	"react/internal/taskq"
)

// Assignment is the notification a worker receives when the scheduler binds
// a task to them.
type Assignment = engine.Assignment

// Result is delivered to the requester side when a task terminates.
type Result = engine.Result

// Options configures a Server. Zero fields take the paper's defaults.
type Options struct {
	Clock         clock.Clock      // default clock.System{}
	Matcher       matching.Matcher // default REACT with adaptive cycles
	Schedule      schedule.Config  // batching, pruning, weights
	Monitor       dynassign.Monitor
	MonitorPeriod time.Duration // Eq. 2 sweep period (default 1s)
	BatchPoll     time.Duration // batch-trigger poll period (default 200ms)
	QueueDepth    int           // per-worker assignment channel depth (default 8)
	Shards        int           // task/feed bookkeeping stripes (default GOMAXPROCS)

	// OnResult, if set, is invoked for every terminating task (completion
	// or expiry). Completions call it inline from Complete; expiries are
	// pumped from a bounded event-spine subscription by a server
	// goroutine, so a burst beyond the buffer drops notifications rather
	// than stalling the expiry tick (requesters reconcile via TaskStatus).
	// Implementations must not block. Richer observation — revocations,
	// batch summaries, full timelines — subscribes to Events() directly.
	OnResult func(Result)

	// Retention bounds how long terminal task records are kept for late
	// Feedback and diagnostics before being garbage-collected. Zero keeps
	// everything (suits tests and short-lived tools); long-running servers
	// should set it (reactd defaults to 1h).
	Retention time.Duration

	// Admission, when non-nil, enables the overload-protection plane
	// (internal/admission): every Submit passes its gates, the CoDel
	// shedder runs on the batch-poll cadence, and the controller's
	// MaxInflight doubles as the engine's hard queue ceiling. The config's
	// Clock and Workers fields are filled in from the server's own when
	// unset. Nil keeps the paper's admit-everything behaviour.
	Admission *admission.Config
}

func (o Options) normalize() Options {
	if o.Clock == nil {
		o.Clock = clock.System{}
	}
	if o.MonitorPeriod <= 0 {
		o.MonitorPeriod = time.Second
	}
	if o.BatchPoll <= 0 {
		o.BatchPoll = 200 * time.Millisecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	return o
}

// Errors returned by the server API.
var (
	ErrStopped = errors.New("core: server stopped")
	// ErrNotAssigned rejects a Complete for a task the worker does not hold.
	ErrNotAssigned = engine.ErrNotAssigned
	// ErrNoWorker rejects Feedback for a task with no worker to credit.
	ErrNoWorker = engine.ErrNoWorker
)

// Stats is a snapshot of the server's counters.
type Stats struct {
	Received    int64
	Assigned    int64
	Completed   int64
	OnTime      int64
	Expired     int64
	Reassigned  int64
	Batches     int64
	MatcherTime time.Duration
	// WorkersOnline counts connected workers (busy or idle). WorkersKnown
	// counts every profile the server remembers, including detached
	// workers whose history is retained for their return.
	WorkersOnline int
	WorkersKnown  int
}

// Server is one REACT region server: the shared scheduling engine plus the
// live-deployment shell (ticker goroutines, channel feeds).
type Server struct {
	opts      Options
	eng       *engine.Engine
	adm       *admission.Controller // non-nil when Options.Admission set
	feeds     feedTable
	store     *journal.Store      // non-nil once EnablePersistence ran
	expireSub *event.Subscription // non-nil once Start ran with OnResult set

	mu     sync.Mutex // guards closed (feeds shard their own locks)
	stop   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// New creates a server; call Start to launch its background loops.
func New(opts Options) *Server {
	opts = opts.normalize()
	s := &Server{
		opts: opts,
		stop: make(chan struct{}),
	}
	ecfg := engine.Config{
		Clock:     opts.Clock,
		Matcher:   opts.Matcher,
		Schedule:  opts.Schedule,
		Monitor:   opts.Monitor,
		Shards:    opts.Shards,
		Retention: opts.Retention,
	}
	if opts.Admission != nil {
		// The controller's ceiling is also installed as the engine's hard
		// queue bound, so even submissions that bypass admission (internal
		// paths) cannot push the live population past it.
		ecfg.MaxInflight = opts.Admission.MaxInflight
	}
	s.eng = engine.New(ecfg, engine.Hooks{
		Deliver: s.deliver,
	})
	if opts.Admission != nil {
		acfg := *opts.Admission
		if acfg.Clock == nil {
			acfg.Clock = opts.Clock
		}
		if acfg.Workers == nil {
			reg := s.eng.Workers()
			acfg.Workers = reg.CountConnected
		}
		s.adm = admission.New(acfg)
		s.eng.Events().Tap(s.adm.Tap)
	}
	s.feeds.init(s.eng.Tasks().Shards())
	return s
}

// Admission exposes the overload-protection controller (nil when
// admission is disabled) for observability wiring.
func (s *Server) Admission() *admission.Controller { return s.adm }

// Events exposes the engine's lifecycle event spine — the wire layer's
// watch-events stream and the observability collectors feed from it.
func (s *Server) Events() *event.Bus { return s.eng.Events() }

// Workers exposes the profiling component (read-mostly; used by tools).
func (s *Server) Workers() *profile.Registry { return s.eng.Workers() }

// Worker looks up one worker's profile — the Backend-interface form of
// Workers().Get used by transports that also serve federations.
func (s *Server) Worker(id string) (*profile.Profile, bool) { return s.eng.Workers().Get(id) }

// Tasks exposes the task-management component.
func (s *Server) Tasks() *engine.TaskStore { return s.eng.Tasks() }

// Engine exposes the shared scheduling engine itself.
func (s *Server) Engine() *engine.Engine { return s.eng }

// Start launches the batch and monitor loops, plus the expiry-result
// pump when OnResult is set.
func (s *Server) Start() {
	if s.opts.OnResult != nil {
		sub := s.eng.Events().Subscribe(expirePumpDepth, func(ev event.Event) bool {
			return ev.Kind == event.KindExpire
		})
		s.expireSub = sub
		s.wg.Add(1)
		go s.expirePump(sub)
	}
	s.wg.Add(2)
	go s.batchLoop()
	go s.monitorLoop()
}

// expirePumpDepth bounds the expiry-notification backlog. A tick that
// expires more tasks than this while the pump is behind drops the
// overflow (counted on the subscription) instead of blocking the engine.
const expirePumpDepth = 1024

// expirePump forwards expiry events to the requester-facing OnResult
// callback, off the engine's tick goroutine.
func (s *Server) expirePump(sub *event.Subscription) {
	defer s.wg.Done()
	for ev := range sub.C() {
		s.opts.OnResult(Result{
			TaskID: ev.Task, FinishedAt: ev.Record.FinishedAt, Expired: true,
		})
	}
}

// Stop terminates the loops, closes every worker feed, and — when
// persistence is enabled — closes the journal last, so its final group
// commit captures every mutation the loops produced on the way down
// (flush-before-shutdown ordering). It is idempotent.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stop)
	s.mu.Unlock()
	if s.expireSub != nil {
		s.expireSub.Close() // ends the expiry pump's range
	}
	s.wg.Wait()
	s.feeds.closeAll()
	if s.store != nil {
		s.store.Close()
	}
}

// RegisterWorker adds a worker and returns the channel on which the worker
// receives assignments. The channel is closed on DeregisterWorker or Stop.
func (s *Server) RegisterWorker(id string, loc region.Point) (<-chan Assignment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrStopped
	}
	if _, err := s.eng.AttachWorker(id, loc); err != nil {
		return nil, err
	}
	s.journalAttach(id, loc)
	ch := make(chan Assignment, s.opts.QueueDepth)
	s.feeds.put(id, ch)
	return ch, nil
}

// DeregisterWorker removes a worker. Any task it held is returned to the
// pool for reassignment.
func (s *Server) DeregisterWorker(id string) error {
	if err := s.eng.DeregisterWorker(id); err != nil {
		return err
	}
	s.journalAppend(journal.Record{Kind: journal.KindDeregister, Worker: id})
	s.feeds.drop(id)
	return nil
}

// DetachWorker handles a worker dropping its connection without leaving
// the platform: the held task (if any) returns to the pool, the feed
// closes, and the profile is kept but marked unavailable — workers have
// "short connectivity cycles" (§I) and their learned history must survive
// them. Compare DeregisterWorker, which forgets the worker entirely.
func (s *Server) DetachWorker(id string) error {
	if err := s.eng.DetachWorker(id); err != nil {
		return err
	}
	s.feeds.drop(id)
	return nil
}

// Submit places a task into the system. With admission enabled it runs
// the gates with an anonymous requester (exempt from per-requester rate
// limits but subject to the ceiling and the probability floor);
// transports that know who is submitting use SubmitFrom.
func (s *Server) Submit(t taskq.Task) error {
	_, err := s.SubmitFrom("", t)
	return err
}

// SubmitFrom places a task into the system on behalf of requester,
// running the admission gates first when the plane is enabled. The
// decision is returned alongside the error so transports can surface
// the status and retry-after hint; on rejection the error is a typed
// *admission.RejectionError and the task never reaches the store.
func (s *Server) SubmitFrom(requester string, t taskq.Task) (admission.Decision, error) {
	if s.adm == nil {
		return admission.Decision{Status: admission.StatusAdmitted}, s.eng.Submit(t)
	}
	d := s.adm.Decide(requester, t)
	if !d.Admitted() {
		return d, d.Err()
	}
	return d, s.eng.Submit(t)
}

// Complete records a worker's answer for a task it holds. The execution
// time feeds the worker's power-law model immediately; the accuracy update
// waits for requester Feedback.
func (s *Server) Complete(taskID, workerID, answer string) (Result, error) {
	res, _, err := s.eng.Complete(taskID, workerID, answer)
	if err != nil {
		return Result{}, err
	}
	if s.opts.OnResult != nil {
		s.opts.OnResult(res)
	}
	return res, nil
}

// Feedback records the requester's verdict on a completed task, updating
// the worker's per-category accuracy (Eq. 1 numerator/denominator). A task
// can be graded once; repeats are rejected so accuracy counters cannot be
// inflated. Feedback for a task that never reached a worker (expired
// unassigned) or whose worker deregistered returns ErrNoWorker without
// consuming the grade.
func (s *Server) Feedback(taskID string, positive bool) error {
	if err := s.eng.Feedback(taskID, positive); err != nil {
		return err
	}
	if s.store != nil {
		// The grade mutated worker accuracy (Eq. 1) and the task's Graded
		// flag — state the taskq sink cannot observe, journaled here.
		if rec, ok := s.eng.Tasks().Get(taskID); ok {
			s.journalAppend(journal.Record{
				Kind:     journal.KindFeedback,
				TaskID:   taskID,
				Worker:   rec.Worker,
				Category: rec.Task.Category,
				Positive: positive,
			})
		}
	}
	return nil
}

// TaskStatus is a point-in-time view of one task's lifecycle, served to
// requesters reconciling their outstanding tasks after a reconnect (a
// result pushed while the watcher was disconnected is gone for good).
type TaskStatus struct {
	TaskID      string
	State       taskq.Status
	Worker      string // current or last worker
	MetDeadline bool   // meaningful when State == taskq.Completed
}

// TaskStatus reports the lifecycle state of a task; ok is false when the
// task was never submitted here or its terminal record has already been
// garbage-collected past the retention window.
func (s *Server) TaskStatus(taskID string) (TaskStatus, bool) {
	rec, ok := s.eng.Tasks().Get(taskID)
	if !ok {
		return TaskStatus{}, false
	}
	return TaskStatus{
		TaskID:      taskID,
		State:       rec.Status,
		Worker:      rec.Worker,
		MetDeadline: rec.Status == taskq.Completed && rec.MetDeadline(),
	}, true
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	est := s.eng.Stats()
	reg := s.eng.Workers()
	return Stats{
		Received:      est.Received,
		Assigned:      est.Assigned,
		Completed:     est.Completed,
		OnTime:        est.OnTime,
		Expired:       est.Expired,
		Reassigned:    est.Reassigned,
		Batches:       est.Batches,
		MatcherTime:   est.MatcherTime,
		WorkersOnline: reg.CountConnected(),
		WorkersKnown:  reg.Size(),
	}
}

// SaveProfiles persists the profiling component (worker histories, models,
// reward ranges) so a restarted server keeps its learned state rather than
// re-training every worker through z tasks.
func (s *Server) SaveProfiles(w io.Writer) error {
	return s.eng.Workers().WriteSnapshot(w)
}

// LoadProfiles restores a previously saved profiling component. Restored
// workers appear offline until they reconnect (RegisterWorker reuses their
// history only through a fresh registry entry, so loading must precede
// traffic; a loaded worker that re-registers by id is rejected as a
// duplicate — deployments reconnect workers via ReconnectWorker).
func (s *Server) LoadProfiles(r io.Reader) (int, error) {
	return s.eng.Workers().ReadSnapshot(r)
}

// ReconnectWorker re-attaches a worker restored by LoadProfiles: it marks
// the profile available again and opens a fresh assignment feed. Unknown
// workers fall back to plain registration semantics via RegisterWorker.
func (s *Server) ReconnectWorker(id string) (<-chan Assignment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrStopped
	}
	if s.feeds.has(id) {
		return nil, fmt.Errorf("core: worker %q already connected", id)
	}
	if _, err := s.eng.ReattachWorker(id); err != nil {
		return nil, err
	}
	ch := make(chan Assignment, s.opts.QueueDepth)
	s.feeds.put(id, ch)
	return ch, nil
}

// deliver is the engine's transport hook: push the assignment onto the
// worker's feed without blocking. A missing or full feed refuses the
// delivery, which makes the engine revoke the binding rather than let the
// task rot in a channel.
func (s *Server) deliver(a Assignment) bool {
	feed := s.feeds.get(a.WorkerID)
	if feed == nil {
		return false
	}
	select {
	case feed <- a:
		return true
	default:
		return false
	}
}

// batchLoop ticks the engine: retention GC, expiry of overdue unassigned
// tasks, and the batch trigger.
func (s *Server) batchLoop() {
	defer s.wg.Done()
	//lint:ignore clockdiscipline the ticker only paces polling; every scheduling decision reads the injected opts.Clock
	ticker := time.NewTicker(s.opts.BatchPoll)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		s.eng.Tick()
		if s.adm != nil {
			// Shedding rides the same cadence as expiry: after the tick has
			// expired what the clock already killed, CoDel decides whether
			// the surviving backlog's queue delay warrants shedding more.
			s.adm.TickShed(enginePool{s.eng})
		}
	}
}

// enginePool adapts the engine to the shedder's Pool seam.
type enginePool struct{ eng *engine.Engine }

func (p enginePool) Unassigned() []taskq.Task { return p.eng.Tasks().Unassigned() }
func (p enginePool) Shed(taskID string) error { return p.eng.Shed(taskID) }

// monitorLoop runs the Eq. 2 sweep.
func (s *Server) monitorLoop() {
	defer s.wg.Done()
	//lint:ignore clockdiscipline the ticker only paces the sweep; Eq. 2 itself reads the injected opts.Clock
	ticker := time.NewTicker(s.opts.MonitorPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		s.eng.TickMonitor()
	}
}

// feedTable stripes the per-worker assignment channels across the same
// shard count as the task store, so feed lookups during a batch never
// funnel through one lock.
type feedTable struct {
	shards []feedShard
}

type feedShard struct {
	mu sync.Mutex
	m  map[string]chan Assignment
}

func (t *feedTable) init(n int) {
	if n < 1 {
		n = 1
	}
	t.shards = make([]feedShard, n)
	for i := range t.shards {
		t.shards[i].m = make(map[string]chan Assignment)
	}
}

func (t *feedTable) shard(id string) *feedShard {
	if len(t.shards) == 1 {
		return &t.shards[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * prime32
	}
	return &t.shards[h%uint32(len(t.shards))]
}

func (t *feedTable) put(id string, ch chan Assignment) {
	sh := t.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.m[id] = ch
}

func (t *feedTable) get(id string) chan Assignment {
	sh := t.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m[id]
}

func (t *feedTable) has(id string) bool {
	sh := t.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.m[id]
	return ok
}

func (t *feedTable) drop(id string) {
	sh := t.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ch, ok := sh.m[id]; ok {
		close(ch)
		delete(sh.m, id)
	}
}

func (t *feedTable) closeAll() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for id, ch := range sh.m {
			close(ch)
			delete(sh.m, id)
		}
		sh.mu.Unlock()
	}
}
