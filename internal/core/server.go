// Package core assembles the four REACT components (Figure 1) into the
// deployable region server: the Profiling Component (worker registry), the
// Task Management Component (task registry), the Scheduling Component
// (batched WBGM), and the Dynamic Assignment Component (Eq. 2 monitor).
//
// Unlike the deterministic harness in internal/experiments, this server
// runs against a real clock with background goroutines, and communicates
// assignments to workers over channels — it is the middleware a deployment
// (cmd/reactd, the examples) actually embeds. It still accepts any
// clock.Clock, so integration tests drive it with a virtual clock.
package core

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"react/internal/clock"
	"react/internal/dynassign"
	"react/internal/matching"
	"react/internal/profile"
	"react/internal/region"
	"react/internal/schedule"
	"react/internal/taskq"
)

// Assignment is the notification a worker receives when the scheduler binds
// a task to them.
type Assignment struct {
	TaskID      string
	WorkerID    string
	Category    string
	Description string
	Location    region.Point
	Deadline    time.Time
	Reward      float64
}

// Result is delivered to the requester side when a task terminates.
type Result struct {
	TaskID      string
	WorkerID    string // "" when the task expired unassigned
	Answer      string
	FinishedAt  time.Time
	MetDeadline bool
	Expired     bool
}

// Options configures a Server. Zero fields take the paper's defaults.
type Options struct {
	Clock         clock.Clock      // default clock.System{}
	Matcher       matching.Matcher // default REACT with adaptive cycles
	Schedule      schedule.Config  // batching, pruning, weights
	Monitor       dynassign.Monitor
	MonitorPeriod time.Duration // Eq. 2 sweep period (default 1s)
	BatchPoll     time.Duration // batch-trigger poll period (default 200ms)
	QueueDepth    int           // per-worker assignment channel depth (default 8)

	// OnResult, if set, is invoked for every terminating task (completion
	// or expiry). Called from server goroutines; implementations must not
	// block.
	OnResult func(Result)
	// OnReassign, if set, is invoked when the monitor revokes an
	// assignment.
	OnReassign func(taskID, workerID string, probability float64)

	// Retention bounds how long terminal task records are kept for late
	// Feedback and diagnostics before being garbage-collected. Zero keeps
	// everything (suits tests and short-lived tools); long-running servers
	// should set it (reactd defaults to 1h).
	Retention time.Duration
}

func (o Options) normalize() Options {
	if o.Clock == nil {
		o.Clock = clock.System{}
	}
	if o.Matcher == nil {
		o.Matcher = matching.REACT{Adaptive: true}
	}
	o.Schedule = o.Schedule.Normalize()
	o.Monitor = o.Monitor.Normalize()
	if o.MonitorPeriod <= 0 {
		o.MonitorPeriod = time.Second
	}
	if o.BatchPoll <= 0 {
		o.BatchPoll = 200 * time.Millisecond
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 8
	}
	return o
}

// Errors returned by the server API.
var (
	ErrStopped     = errors.New("core: server stopped")
	ErrNotAssigned = errors.New("core: task not assigned to this worker")
)

// Stats is a snapshot of the server's counters.
type Stats struct {
	Received      int64
	Assigned      int64
	Completed     int64
	OnTime        int64
	Expired       int64
	Reassigned    int64
	Batches       int64
	MatcherTime   time.Duration
	WorkersOnline int
}

// Server is one REACT region server.
type Server struct {
	opts    Options
	workers *profile.Registry
	tasks   *taskq.Manager
	trigger *schedule.Trigger

	mu     sync.Mutex // guards trigger, feeds, stats, stopped
	feeds  map[string]chan Assignment
	stats  Stats
	stop   chan struct{}
	wg     sync.WaitGroup
	closed bool
}

// New creates a server; call Start to launch its background loops.
func New(opts Options) *Server {
	opts = opts.normalize()
	return &Server{
		opts:    opts,
		workers: profile.NewRegistry(),
		tasks:   taskq.NewManager(opts.Clock),
		trigger: schedule.NewTrigger(opts.Schedule, opts.Clock.Now()),
		feeds:   make(map[string]chan Assignment),
		stop:    make(chan struct{}),
	}
}

// Workers exposes the profiling component (read-mostly; used by tools).
func (s *Server) Workers() *profile.Registry { return s.workers }

// Worker looks up one worker's profile — the Backend-interface form of
// Workers().Get used by transports that also serve federations.
func (s *Server) Worker(id string) (*profile.Profile, bool) { return s.workers.Get(id) }

// Tasks exposes the task-management component.
func (s *Server) Tasks() *taskq.Manager { return s.tasks }

// Start launches the batch and monitor loops.
func (s *Server) Start() {
	s.wg.Add(2)
	go s.batchLoop()
	go s.monitorLoop()
}

// Stop terminates the loops and closes every worker feed. It is idempotent.
func (s *Server) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	close(s.stop)
	s.mu.Unlock()
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, ch := range s.feeds {
		close(ch)
		delete(s.feeds, id)
	}
}

// RegisterWorker adds a worker and returns the channel on which the worker
// receives assignments. The channel is closed on DeregisterWorker or Stop.
func (s *Server) RegisterWorker(id string, loc region.Point) (<-chan Assignment, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrStopped
	}
	if _, err := s.workers.Register(id, loc); err != nil {
		return nil, err
	}
	ch := make(chan Assignment, s.opts.QueueDepth)
	s.feeds[id] = ch
	return ch, nil
}

// DeregisterWorker removes a worker. Any task it held is returned to the
// pool for reassignment.
func (s *Server) DeregisterWorker(id string) error {
	p, ok := s.workers.Get(id)
	if !ok {
		return fmt.Errorf("%w: %q", profile.ErrUnknownWorker, id)
	}
	if taskID := p.CurrentTask(); taskID != "" {
		if err := s.tasks.Unassign(taskID); err == nil {
			s.mu.Lock()
			s.stats.Reassigned++
			s.mu.Unlock()
		}
	}
	if err := s.workers.Deregister(id); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if ch, ok := s.feeds[id]; ok {
		close(ch)
		delete(s.feeds, id)
	}
	return nil
}

// DetachWorker handles a worker dropping its connection without leaving
// the platform: the held task (if any) returns to the pool, the feed
// closes, and the profile is kept but marked unavailable — workers have
// "short connectivity cycles" (§I) and their learned history must survive
// them. Compare DeregisterWorker, which forgets the worker entirely.
func (s *Server) DetachWorker(id string) error {
	p, ok := s.workers.Get(id)
	if !ok {
		return fmt.Errorf("%w: %q", profile.ErrUnknownWorker, id)
	}
	if taskID := p.CurrentTask(); taskID != "" {
		if err := s.tasks.Unassign(taskID); err == nil {
			s.mu.Lock()
			s.stats.Reassigned++
			s.mu.Unlock()
		}
		p.MarkIdle()
	}
	p.SetAvailable(false)
	s.mu.Lock()
	defer s.mu.Unlock()
	if ch, ok := s.feeds[id]; ok {
		close(ch)
		delete(s.feeds, id)
	}
	return nil
}

// Submit places a task into the system.
func (s *Server) Submit(t taskq.Task) error {
	if err := s.tasks.Submit(t); err != nil {
		return err
	}
	s.mu.Lock()
	s.stats.Received++
	s.mu.Unlock()
	return nil
}

// Complete records a worker's answer for a task it holds. The execution
// time feeds the worker's power-law model immediately; the accuracy update
// waits for requester Feedback.
func (s *Server) Complete(taskID, workerID, answer string) (Result, error) {
	rec, ok := s.tasks.Get(taskID)
	if !ok {
		return Result{}, fmt.Errorf("%w: %q", taskq.ErrUnknownTask, taskID)
	}
	if rec.Status != taskq.Assigned || rec.Worker != workerID {
		return Result{}, fmt.Errorf("%w: task %q held by %q", ErrNotAssigned, taskID, rec.Worker)
	}
	final, err := s.tasks.Complete(taskID)
	if err != nil {
		return Result{}, err
	}
	if p, ok := s.workers.Get(workerID); ok {
		p.RecordExecTime(final.ExecTime().Seconds())
		if p.CurrentTask() == taskID {
			p.MarkIdle()
		}
	}
	res := Result{
		TaskID:      taskID,
		WorkerID:    workerID,
		Answer:      answer,
		FinishedAt:  final.FinishedAt,
		MetDeadline: final.MetDeadline(),
	}
	s.mu.Lock()
	s.stats.Completed++
	if res.MetDeadline {
		s.stats.OnTime++
	}
	s.mu.Unlock()
	if s.opts.OnResult != nil {
		s.opts.OnResult(res)
	}
	return res, nil
}

// Feedback records the requester's verdict on a completed task, updating
// the worker's per-category accuracy (Eq. 1 numerator/denominator). A task
// can be graded once; repeats are rejected so accuracy counters cannot be
// inflated.
func (s *Server) Feedback(taskID string, positive bool) error {
	rec, ok := s.tasks.Get(taskID)
	if !ok {
		return fmt.Errorf("%w: %q", taskq.ErrUnknownTask, taskID)
	}
	if err := s.tasks.MarkGraded(taskID); err != nil {
		return err
	}
	if p, ok := s.workers.Get(rec.Worker); ok {
		p.RecordFeedback(rec.Task.Category, positive)
	}
	return nil
}

// TaskStatus is a point-in-time view of one task's lifecycle, served to
// requesters reconciling their outstanding tasks after a reconnect (a
// result pushed while the watcher was disconnected is gone for good).
type TaskStatus struct {
	TaskID      string
	State       taskq.Status
	Worker      string // current or last worker
	MetDeadline bool   // meaningful when State == taskq.Completed
}

// TaskStatus reports the lifecycle state of a task; ok is false when the
// task was never submitted here or its terminal record has already been
// garbage-collected past the retention window.
func (s *Server) TaskStatus(taskID string) (TaskStatus, bool) {
	rec, ok := s.tasks.Get(taskID)
	if !ok {
		return TaskStatus{}, false
	}
	return TaskStatus{
		TaskID:      taskID,
		State:       rec.Status,
		Worker:      rec.Worker,
		MetDeadline: rec.Status == taskq.Completed && rec.MetDeadline(),
	}, true
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.WorkersOnline = s.workers.Size()
	return st
}

// SaveProfiles persists the profiling component (worker histories, models,
// reward ranges) so a restarted server keeps its learned state rather than
// re-training every worker through z tasks.
func (s *Server) SaveProfiles(w io.Writer) error {
	return s.workers.WriteSnapshot(w)
}

// LoadProfiles restores a previously saved profiling component. Restored
// workers appear offline until they reconnect (RegisterWorker reuses their
// history only through a fresh registry entry, so loading must precede
// traffic; a loaded worker that re-registers by id is rejected as a
// duplicate — deployments reconnect workers via ReconnectWorker).
func (s *Server) LoadProfiles(r io.Reader) (int, error) {
	return s.workers.ReadSnapshot(r)
}

// ReconnectWorker re-attaches a worker restored by LoadProfiles: it marks
// the profile available again and opens a fresh assignment feed. Unknown
// workers fall back to plain registration semantics via RegisterWorker.
func (s *Server) ReconnectWorker(id string) (<-chan Assignment, error) {
	p, ok := s.workers.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", profile.ErrUnknownWorker, id)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrStopped
	}
	if _, exists := s.feeds[id]; exists {
		return nil, fmt.Errorf("core: worker %q already connected", id)
	}
	p.SetAvailable(true)
	ch := make(chan Assignment, s.opts.QueueDepth)
	s.feeds[id] = ch
	return ch, nil
}

// batchLoop polls the trigger, runs matching batches, applies assignments,
// and expires overdue unassigned tasks.
func (s *Server) batchLoop() {
	defer s.wg.Done()
	//lint:ignore clockdiscipline the ticker only paces polling; every scheduling decision reads the injected opts.Clock
	ticker := time.NewTicker(s.opts.BatchPoll)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		now := s.opts.Clock.Now()
		if s.opts.Retention > 0 {
			s.tasks.ForgetTerminatedBefore(now.Add(-s.opts.Retention))
		}
		for _, rec := range s.tasks.ExpireUnassigned() {
			s.mu.Lock()
			s.stats.Expired++
			s.mu.Unlock()
			if s.opts.OnResult != nil {
				s.opts.OnResult(Result{
					TaskID: rec.Task.ID, FinishedAt: rec.FinishedAt, Expired: true,
				})
			}
		}
		s.mu.Lock()
		due := s.trigger.Due(s.tasks.UnassignedCount(), now)
		s.mu.Unlock()
		if !due {
			continue
		}
		s.runBatch(now)
	}
}

func (s *Server) runBatch(now time.Time) {
	avail := s.workers.Available()
	unassigned := s.tasks.Unassigned()
	if len(avail) == 0 || len(unassigned) == 0 {
		return
	}
	batch, err := schedule.Run(s.opts.Schedule, s.opts.Matcher, avail, unassigned, now)
	if err != nil {
		return
	}
	s.mu.Lock()
	s.trigger.Ran(now)
	s.stats.Batches++
	s.stats.MatcherTime += batch.Elapsed
	s.mu.Unlock()

	byID := make(map[string]taskq.Task, len(unassigned))
	for _, t := range unassigned {
		byID[t.ID] = t
	}
	for taskID, workerID := range batch.Assignments {
		p, ok := s.workers.Get(workerID)
		if !ok || !p.Available() {
			continue
		}
		if err := s.tasks.Assign(taskID, workerID); err != nil {
			continue
		}
		task := byID[taskID]
		a := Assignment{
			TaskID:      taskID,
			WorkerID:    workerID,
			Category:    task.Category,
			Description: task.Description,
			Location:    task.Location,
			Deadline:    task.Deadline,
			Reward:      task.Reward,
		}
		// Mark busy BEFORE the assignment becomes visible on the feed: a
		// fast worker may Complete the task (and clear the busy mark)
		// before this goroutine resumes, and marking busy afterwards would
		// wedge the worker permanently.
		p.MarkBusy(taskID)
		s.mu.Lock()
		feed := s.feeds[workerID]
		s.mu.Unlock()
		delivered := false
		if feed != nil {
			select {
			case feed <- a:
				delivered = true
			default:
				// Worker not draining its feed: revoke rather than let the
				// task rot in a channel.
			}
		}
		if !delivered {
			s.tasks.Unassign(taskID)
			if p.CurrentTask() == taskID {
				p.MarkIdle()
			}
			continue
		}
		s.mu.Lock()
		s.stats.Assigned++
		s.mu.Unlock()
	}
}

// monitorLoop runs the Eq. 2 sweep.
func (s *Server) monitorLoop() {
	defer s.wg.Done()
	//lint:ignore clockdiscipline the ticker only paces the sweep; Eq. 2 itself reads the injected opts.Clock
	ticker := time.NewTicker(s.opts.MonitorPeriod)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
		}
		now := s.opts.Clock.Now()
		for _, d := range s.opts.Monitor.Sweep(s.workers, s.tasks, now) {
			if !d.Reassign {
				continue
			}
			if err := s.tasks.Unassign(d.TaskID); err != nil {
				continue
			}
			if p, ok := s.workers.Get(d.Worker); ok && p.CurrentTask() == d.TaskID {
				p.MarkIdle()
			}
			s.mu.Lock()
			s.stats.Reassigned++
			s.mu.Unlock()
			if s.opts.OnReassign != nil {
				s.opts.OnReassign(d.TaskID, d.Worker, d.Probability)
			}
		}
	}
}
