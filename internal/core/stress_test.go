package core

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"react/internal/dynassign"
)

// TestServerChurnUnderRace hammers one server with everything that can
// run concurrently in a deployment: requesters submitting, workers
// joining, completing, detaching, and deregistering, the reassignment
// monitor sweeping, and observers snapshotting stats and profiles. It
// asserts no counter is lost and no goroutine deadlocks; its real
// payload is `go test -race ./internal/core`, which CI runs on every
// change — the paper's deadline-miss numbers mean nothing if the server
// that produces them races.
func TestServerChurnUnderRace(t *testing.T) {
	requesters, perRequester, churners := 4, 50, 6
	if testing.Short() {
		requesters, perRequester, churners = 2, 10, 3
	}

	opts := fastOptions()
	// An aggressive monitor makes the Eq. 2 sweep actually contend with
	// submissions and completions instead of idling between them.
	opts.MonitorPeriod = time.Millisecond
	opts.Monitor = dynassign.Monitor{}.Normalize()
	var results atomic.Int64
	opts.OnResult = func(Result) { results.Add(1) }

	s := New(opts)
	s.Start()
	defer s.Stop()

	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Requesters: concurrent task streams with deadlines short enough
	// that some tasks expire while others complete.
	for r := 0; r < requesters; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perRequester; i++ {
				id := fmt.Sprintf("t-%d-%d", r, i)
				if err := s.Submit(newTask(id, 50*time.Millisecond)); err != nil {
					t.Errorf("submit %s: %v", id, err)
					return
				}
			}
		}(r)
	}

	// Churning workers: register, drain a few assignments (completing
	// them), then leave — alternating the detach and deregister paths
	// so both feed-teardown branches run against the batch loop.
	for w := 0; w < churners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for round := 0; ; round++ {
				select {
				case <-stop:
					return
				default:
				}
				id := fmt.Sprintf("churn-%d-%d", w, round)
				feed, err := s.RegisterWorker(id, athens)
				if err != nil {
					t.Errorf("register %s: %v", id, err)
					return
				}
				for drained := 0; drained < 3; drained++ {
					var a Assignment
					var ok bool
					select {
					case a, ok = <-feed:
					case <-stop:
						ok = false
					}
					if !ok {
						break
					}
					// Completion may legitimately fail if the monitor
					// already revoked the assignment.
					_, _ = s.Complete(a.TaskID, id, "answer")
				}
				var err2 error
				if round%2 == 0 {
					err2 = s.DetachWorker(id)
				} else {
					err2 = s.DeregisterWorker(id)
				}
				if err2 != nil {
					t.Errorf("teardown %s: %v", id, err2)
					return
				}
			}
		}(w)
	}

	// Observers: concurrent reads of every snapshot surface.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.Stats()
			if err := s.SaveProfiles(io.Discard); err != nil {
				t.Errorf("SaveProfiles: %v", err)
				return
			}
		}
	}()

	// Every submitted task must terminate: completed or expired.
	total := int64(requesters * perRequester)
	deadline := time.Now().Add(20 * time.Second)
	for results.Load() < total && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	st := s.Stats()
	if results.Load() != total {
		t.Fatalf("only %d/%d tasks terminated (stats %+v)", results.Load(), total, st)
	}
	if st.Received != total {
		t.Errorf("Received = %d, want %d", st.Received, total)
	}
	if st.Completed+st.Expired != total {
		t.Errorf("Completed+Expired = %d+%d, want %d", st.Completed, st.Expired, total)
	}
}
