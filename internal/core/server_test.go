package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"react/internal/dynassign"
	"react/internal/event"
	"react/internal/region"
	"react/internal/schedule"
	"react/internal/taskq"
)

var athens = region.Point{Lat: 37.98, Lon: 23.73}

// fastOptions makes the loops hum in unit tests: short poll periods against
// the system clock.
func fastOptions() Options {
	return Options{
		MonitorPeriod: 20 * time.Millisecond,
		BatchPoll:     5 * time.Millisecond,
		Schedule:      schedule.Config{BatchBound: 1, BatchPeriod: 10 * time.Millisecond},
	}
}

func newTask(id string, deadline time.Duration) taskq.Task {
	return taskq.Task{
		ID:          id,
		Location:    athens,
		Deadline:    time.Now().Add(deadline),
		Reward:      0.05,
		Category:    "traffic",
		Description: "Is road A congested?",
	}
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestAssignmentDeliveredToWorker(t *testing.T) {
	s := New(fastOptions())
	s.Start()
	defer s.Stop()

	feed, err := s.RegisterWorker("alice", athens)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Submit(newTask("t1", time.Minute)); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-feed:
		if a.TaskID != "t1" || a.WorkerID != "alice" || a.Category != "traffic" {
			t.Fatalf("assignment = %+v", a)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("assignment never delivered")
	}

	// Complete and verify stats and result plumbing.
	res, err := s.Complete("t1", "alice", "yes, jammed")
	if err != nil {
		t.Fatal(err)
	}
	if !res.MetDeadline || res.Answer != "yes, jammed" {
		t.Fatalf("result = %+v", res)
	}
	st := s.Stats()
	if st.Received != 1 || st.Assigned != 1 || st.Completed != 1 || st.OnTime != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCompleteWrongWorkerRejected(t *testing.T) {
	s := New(fastOptions())
	s.Start()
	defer s.Stop()
	feed, _ := s.RegisterWorker("alice", athens)
	s.RegisterWorker("mallory", athens)
	s.Submit(newTask("t1", time.Minute))
	<-feed
	if _, err := s.Complete("t1", "mallory", "fake"); !errors.Is(err, ErrNotAssigned) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Complete("ghost", "alice", "x"); !errors.Is(err, taskq.ErrUnknownTask) {
		t.Fatalf("err = %v", err)
	}
}

func TestFeedbackUpdatesAccuracy(t *testing.T) {
	s := New(fastOptions())
	s.Start()
	defer s.Stop()
	feed, _ := s.RegisterWorker("alice", athens)
	s.Submit(newTask("t1", time.Minute))
	<-feed
	if err := s.Feedback("t1", true); err == nil {
		t.Fatal("feedback before completion accepted")
	}
	s.Complete("t1", "alice", "answer")
	if err := s.Feedback("t1", true); err != nil {
		t.Fatal(err)
	}
	p, _ := s.Workers().Get("alice")
	if acc, ok := p.Accuracy("traffic"); !ok || acc != 1 {
		t.Fatalf("accuracy = %v, %v", acc, ok)
	}
}

func TestExpiryNotifiesRequester(t *testing.T) {
	var expired atomic.Int32
	opts := fastOptions()
	opts.OnResult = func(r Result) {
		if r.Expired {
			expired.Add(1)
		}
	}
	s := New(opts)
	s.Start()
	defer s.Stop()
	// No workers registered: the task must expire unassigned.
	s.Submit(newTask("t1", 50*time.Millisecond))
	waitFor(t, 2*time.Second, func() bool { return expired.Load() == 1 })
	if st := s.Stats(); st.Expired != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDeregisterReturnsHeldTask(t *testing.T) {
	s := New(fastOptions())
	s.Start()
	defer s.Stop()
	feedA, _ := s.RegisterWorker("alice", athens)
	s.Submit(newTask("t1", time.Minute))
	<-feedA
	// Alice leaves mid-task; bob should inherit it.
	if err := s.DeregisterWorker("alice"); err != nil {
		t.Fatal(err)
	}
	feedB, _ := s.RegisterWorker("bob", athens)
	select {
	case a := <-feedB:
		if a.TaskID != "t1" {
			t.Fatalf("bob received %+v", a)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("task not reassigned after worker departure")
	}
	if _, ok := <-feedA; ok {
		t.Fatal("alice's feed not closed")
	}
}

func TestStopClosesFeeds(t *testing.T) {
	s := New(fastOptions())
	s.Start()
	feed, _ := s.RegisterWorker("alice", athens)
	s.Stop()
	s.Stop() // idempotent
	if _, ok := <-feed; ok {
		t.Fatal("feed not closed on Stop")
	}
	if _, err := s.RegisterWorker("bob", athens); !errors.Is(err, ErrStopped) {
		t.Fatalf("register after stop err = %v", err)
	}
}

func TestSlowWorkerFeedRevoked(t *testing.T) {
	opts := fastOptions()
	opts.QueueDepth = 1
	s := New(opts)
	s.Start()
	defer s.Stop()
	s.RegisterWorker("sloth", athens) // never drains its feed
	s.Submit(newTask("t1", time.Minute))
	s.Submit(newTask("t2", time.Minute))
	s.Submit(newTask("t3", time.Minute))
	// One task sits in the depth-1 feed; the others must remain (or return
	// to) unassigned rather than vanish into a full channel.
	waitFor(t, 2*time.Second, func() bool {
		u, a, _, _ := s.Tasks().Counts()
		return a == 1 && u == 2
	})
}

func TestMonitorReassignsFromDelayedWorker(t *testing.T) {
	var reassigned atomic.Int32
	opts := fastOptions()
	// Monitor with tight threshold; worker history says tasks take ~50ms,
	// so holding one for >1s collapses Eq. 2.
	opts.Monitor = dynassign.Monitor{Threshold: 0.5, MinHistory: 3}
	s := New(opts)
	sub := s.Events().Subscribe(16, func(ev event.Event) bool {
		return ev.Kind == event.KindRevoke && ev.Cause == taskq.CauseEq2
	})
	defer sub.Close()
	go func() {
		for range sub.C() {
			reassigned.Add(1)
		}
	}()
	s.Start()
	defer s.Stop()

	feed, _ := s.RegisterWorker("flake", athens)
	// Build history: three quick completions.
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("warm%d", i)
		s.Submit(newTask(id, time.Minute))
		a := <-feed
		time.Sleep(30 * time.Millisecond)
		if _, err := s.Complete(a.TaskID, "flake", "ok"); err != nil {
			t.Fatal(err)
		}
	}
	// Now stall: take the task and never finish. The monitor must revoke it.
	s.Submit(newTask("stalled", 10*time.Second))
	<-feed
	waitFor(t, 5*time.Second, func() bool { return reassigned.Load() >= 1 })
	if st := s.Stats(); st.Reassigned < 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentSubmittersAndWorkers(t *testing.T) {
	s := New(fastOptions())
	s.Start()
	defer s.Stop()

	const nWorkers, nTasks = 8, 120
	var completed atomic.Int32
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		id := fmt.Sprintf("w%d", w)
		feed, err := s.RegisterWorker(id, athens)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id string, feed <-chan Assignment) {
			defer wg.Done()
			for a := range feed {
				time.Sleep(time.Millisecond)
				if _, err := s.Complete(a.TaskID, id, "done"); err == nil {
					completed.Add(1)
					s.Feedback(a.TaskID, true)
				}
			}
		}(id, feed)
	}
	for i := 0; i < nTasks; i++ {
		if err := s.Submit(newTask(fmt.Sprintf("t%03d", i), time.Minute)); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool { return completed.Load() == nTasks })
	s.Stop()
	wg.Wait()
	st := s.Stats()
	if st.Completed != nTasks || st.OnTime != nTasks {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProfilePersistenceAcrossRestart(t *testing.T) {
	// First server: alice builds a history.
	s1 := New(fastOptions())
	s1.Start()
	feed, _ := s1.RegisterWorker("alice", athens)
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("t%d", i)
		s1.Submit(newTask(id, time.Minute))
		a := <-feed
		time.Sleep(5 * time.Millisecond)
		if _, err := s1.Complete(a.TaskID, "alice", "ok"); err != nil {
			t.Fatal(err)
		}
		s1.Feedback(a.TaskID, true)
	}
	var snapshot bytes.Buffer
	if err := s1.SaveProfiles(&snapshot); err != nil {
		t.Fatal(err)
	}
	s1.Stop()

	// Second server: restore, reconnect, and the history is live.
	s2 := New(fastOptions())
	s2.Start()
	defer s2.Stop()
	n, err := s2.LoadProfiles(&snapshot)
	if err != nil || n != 1 {
		t.Fatalf("restored %d, %v", n, err)
	}
	p, ok := s2.Workers().Get("alice")
	if !ok || p.Available() {
		t.Fatal("restored worker should exist and be offline")
	}
	if acc, ok := p.Accuracy("traffic"); !ok || acc != 1 {
		t.Fatalf("accuracy lost: %v, %v", acc, ok)
	}
	if _, ok := p.Model(3); !ok {
		t.Fatal("execution model lost")
	}
	// Reconnect and receive work immediately with the trained profile.
	feed2, err := s2.ReconnectWorker("alice")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.ReconnectWorker("alice"); err == nil {
		t.Fatal("double reconnect accepted")
	}
	s2.Submit(newTask("after-restart", time.Minute))
	select {
	case a := <-feed2:
		if a.TaskID != "after-restart" {
			t.Fatalf("assignment = %+v", a)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("restored worker never received work")
	}
}

func TestReconnectUnknownWorker(t *testing.T) {
	s := New(fastOptions())
	s.Start()
	defer s.Stop()
	if _, err := s.ReconnectWorker("ghost"); err == nil {
		t.Fatal("reconnect of unknown worker accepted")
	}
}

func TestRetentionGarbageCollectsTerminalTasks(t *testing.T) {
	opts := fastOptions()
	opts.Retention = 50 * time.Millisecond
	s := New(opts)
	s.Start()
	defer s.Stop()
	feed, _ := s.RegisterWorker("alice", athens)
	s.Submit(newTask("t1", time.Minute))
	a := <-feed
	s.Complete(a.TaskID, "alice", "done")
	// After retention elapses the batch loop sweeps the record away.
	waitFor(t, 2*time.Second, func() bool {
		_, ok := s.Tasks().Get("t1")
		return !ok
	})
	// Stats are unaffected by the GC.
	if st := s.Stats(); st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDoubleFeedbackRejected(t *testing.T) {
	s := New(fastOptions())
	s.Start()
	defer s.Stop()
	feed, _ := s.RegisterWorker("alice", athens)
	s.Submit(newTask("t1", time.Minute))
	a := <-feed
	s.Complete(a.TaskID, "alice", "ok")
	if err := s.Feedback("t1", true); err != nil {
		t.Fatal(err)
	}
	if err := s.Feedback("t1", true); err == nil {
		t.Fatal("double feedback accepted")
	}
	p, _ := s.Workers().Get("alice")
	if p.Finished() != 1 {
		t.Fatalf("accuracy double-counted: finished = %d", p.Finished())
	}
}
