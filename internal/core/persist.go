package core

import (
	"bytes"
	"fmt"
	"sort"

	"react/internal/engine"
	"react/internal/event"
	"react/internal/journal"
	"react/internal/region"
	"react/internal/taskq"
)

// EnablePersistence attaches a journal store to a freshly constructed,
// not-yet-started server: it bulk-loads whatever the store recovered —
// tasks verbatim, worker profiles (restored offline until they
// reconnect), lifecycle counters — then installs the write-ahead hooks so
// every subsequent mutation is journaled. Finally, every recovered task
// still marked Assigned is swept back to the unassigned pool, because its
// worker's connection did not survive the restart; the sweep itself is
// journaled, so a second crash recovers the post-sweep state.
//
// Call it exactly once, after New and before Start or any traffic. The
// returned summary is what Open recovered, for startup logs.
func (s *Server) EnablePersistence(store *journal.Store) (journal.Summary, error) {
	if s.store != nil {
		return journal.Summary{}, fmt.Errorf("core: persistence already enabled")
	}
	sum := store.Summary()
	st := store.TakeRecovered()
	if st == nil {
		return sum, fmt.Errorf("core: journal store's recovered state already taken")
	}

	// Profiles cross registries via the snapshot codec: it persists only
	// durable state and restores workers as offline, exactly the posture a
	// restarted server needs.
	var buf bytes.Buffer
	if err := st.Profiles.WriteSnapshot(&buf); err != nil {
		return sum, err
	}
	if _, err := s.eng.Workers().ReadSnapshot(&buf); err != nil {
		return sum, err
	}
	ids := make([]string, 0, len(st.Tasks))
	for id := range st.Tasks {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if err := s.eng.Tasks().Restore(st.Tasks[id]); err != nil {
			return sum, fmt.Errorf("core: restore task %q: %w", id, err)
		}
	}

	// Journal from here on, as a synchronous tap on the event spine: taps
	// fire under the shard lock, so the WAL inherits the per-task total
	// order, and Append never blocks (it only buffers), so holding that
	// lock is safe. Errors are not actionable here: the store has already
	// logged its sticky failure, and a dead disk must degrade durability,
	// not availability.
	s.store = store
	s.eng.Events().Tap(func(ev event.Event) {
		if rec, ok := journal.FromEvent(ev); ok {
			_ = store.Append(rec)
		}
	})

	// Sweep orphaned assignments back to the pool — journaled through the
	// sink just installed — and seed the counters, crediting the sweep as
	// reassignments (the same accounting a worker disconnect gets).
	swept := int64(0)
	for _, rec := range s.eng.Tasks().AssignedTasks() {
		if err := s.eng.Tasks().Unassign(rec.Task.ID, taskq.CauseRecoverySweep, 0); err != nil {
			return sum, fmt.Errorf("core: return recovered task %q to pool: %w", rec.Task.ID, err)
		}
		swept++
	}
	s.eng.RestoreStats(engine.Stats{
		Received:   st.Stats.Received,
		Assigned:   st.Stats.Assigned,
		Completed:  st.Stats.Completed,
		OnTime:     st.Stats.OnTime,
		Expired:    st.Stats.Expired,
		Reassigned: st.Stats.Reassigned + swept,
	})
	return sum, nil
}

// Journal exposes the attached store (nil when persistence is disabled),
// for the observability plane.
func (s *Server) Journal() *journal.Store { return s.store }

// journalAppend writes one engine-level record when persistence is
// enabled. Task-lifecycle records flow through the taskq sink instead.
func (s *Server) journalAppend(rec journal.Record) {
	if s.store != nil {
		_ = s.store.Append(rec)
	}
}

// journalAttach records a worker registration.
func (s *Server) journalAttach(id string, loc region.Point) {
	s.journalAppend(journal.Record{Kind: journal.KindAttach, Worker: id, Lat: loc.Lat, Lon: loc.Lon})
}
