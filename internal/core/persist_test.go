package core

import (
	"testing"
	"time"

	"react/internal/clock"
	"react/internal/journal"
	"react/internal/region"
	"react/internal/taskq"
)

// TestPersistenceRoundtrip drives a journaled server through a full task
// lifecycle, stops it (flush-before-shutdown), and recovers twice: once to
// check every invariant — completed tasks stay completed and graded,
// in-flight assignments return to the pool, counters and worker history
// survive, restored workers are offline until they reconnect — and once
// more to prove the recovery sweep itself was journaled (a second crash
// recovers the post-sweep state, not the pre-sweep one).
func TestPersistenceRoundtrip(t *testing.T) {
	dir := t.TempDir()
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	clk := clock.NewVirtual(epoch)
	task := func(id string) taskq.Task {
		return taskq.Task{ID: id, Deadline: clk.Now().Add(time.Minute), Reward: 1, Category: "ocr"}
	}

	store, err := journal.Open(journal.Options{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Clock: clk})
	sum, err := srv.EnablePersistence(store)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Tasks != 0 || sum.Workers != 0 {
		t.Fatalf("fresh dir recovered %+v", sum)
	}
	// No Start: the test drives the engine directly so every timing comes
	// from the virtual clock.
	if _, err := srv.RegisterWorker("w1", region.Point{Lat: 40, Lon: -74}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"t1", "t2", "t3", "t4"} {
		if err := srv.Submit(task(id)); err != nil {
			t.Fatal(err)
		}
	}
	// t1 runs to completion and is graded; t2 is mid-flight at "crash"
	// time; t3/t4 never left the pool.
	if err := srv.Tasks().Assign("t1", "w1"); err != nil {
		t.Fatal(err)
	}
	clk.Advance(5 * time.Second)
	if _, err := srv.Complete("t1", "w1", "answer"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Feedback("t1", true); err != nil {
		t.Fatal(err)
	}
	if err := srv.Tasks().Assign("t2", "w1"); err != nil {
		t.Fatal(err)
	}
	srv.Stop() // flushes and closes the journal

	store2, err := journal.Open(journal.Options{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Options{Clock: clk})
	sum2, err := srv2.EnablePersistence(store2)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Tasks != 4 || sum2.Workers != 1 {
		t.Fatalf("recovered %+v, want 4 tasks 1 worker", sum2)
	}

	rec, ok := srv2.Tasks().Get("t1")
	if !ok || rec.Status != taskq.Completed || !rec.Graded || !rec.MetDeadline() {
		t.Fatalf("t1 after recovery: %+v", rec)
	}
	if err := srv2.Feedback("t1", true); err == nil {
		t.Fatal("double grading allowed after recovery")
	}
	rec, ok = srv2.Tasks().Get("t2")
	if !ok || rec.Status != taskq.Unassigned || rec.Attempts != 1 {
		t.Fatalf("t2 should be swept back to the pool with its attempt kept: %+v", rec)
	}
	for _, id := range []string{"t3", "t4"} {
		if rec, ok := srv2.Tasks().Get(id); !ok || rec.Status != taskq.Unassigned {
			t.Fatalf("%s after recovery: %+v", id, rec)
		}
	}
	stats := srv2.Stats()
	if stats.Received != 4 || stats.Assigned != 2 || stats.Completed != 1 ||
		stats.OnTime != 1 || stats.Reassigned != 1 {
		t.Fatalf("recovered stats: %+v", stats)
	}
	if stats.WorkersKnown != 1 || stats.WorkersOnline != 0 {
		t.Fatalf("restored worker should be known but offline: %+v", stats)
	}
	p, ok := srv2.Workers().Get("w1")
	if !ok {
		t.Fatal("worker profile lost")
	}
	if acc, ok := p.Accuracy("ocr"); !ok || acc != 1 {
		t.Fatalf("accuracy after recovery: %v %v", acc, ok)
	}
	if p.FitSamples() != 1 {
		t.Fatalf("execution-time history after recovery: %d samples, want 1", p.FitSamples())
	}
	if _, err := srv2.ReconnectWorker("w1"); err != nil {
		t.Fatalf("restored worker cannot reconnect: %v", err)
	}
	srv2.Stop()

	// Second crash: the sweep that unassigned t2 must itself have been
	// journaled, so recovery converges instead of replaying a stale state.
	store3, err := journal.Open(journal.Options{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv3 := New(Options{Clock: clk})
	if _, err := srv3.EnablePersistence(store3); err != nil {
		t.Fatal(err)
	}
	defer srv3.Stop()
	rec, ok = srv3.Tasks().Get("t2")
	if !ok || rec.Status != taskq.Unassigned {
		t.Fatalf("t2 after second recovery: %+v", rec)
	}
	stats = srv3.Stats()
	if stats.Received != 4 || stats.Reassigned != 1 {
		t.Fatalf("stats after second recovery: %+v", stats)
	}
}

// TestPersistenceDeregisterSurvives pins that a deregistration is
// journaled: the departed worker must not resurrect on recovery.
func TestPersistenceDeregisterSurvives(t *testing.T) {
	dir := t.TempDir()
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))

	store, err := journal.Open(journal.Options{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Options{Clock: clk})
	if _, err := srv.EnablePersistence(store); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.RegisterWorker("w1", region.Point{Lat: 1, Lon: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.RegisterWorker("w2", region.Point{Lat: 3, Lon: 4}); err != nil {
		t.Fatal(err)
	}
	if err := srv.DeregisterWorker("w1"); err != nil {
		t.Fatal(err)
	}
	srv.Stop()

	store2, err := journal.Open(journal.Options{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Options{Clock: clk})
	sum, err := srv2.EnablePersistence(store2)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Stop()
	if sum.Workers != 1 {
		t.Fatalf("recovered %d workers, want 1", sum.Workers)
	}
	if _, ok := srv2.Workers().Get("w1"); ok {
		t.Fatal("deregistered worker resurrected by recovery")
	}
	if _, ok := srv2.Workers().Get("w2"); !ok {
		t.Fatal("registered worker lost")
	}
}
