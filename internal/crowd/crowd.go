// Package crowd models human workers the way §V.C of the paper does after
// its CrowdFlower case study. Each simulated worker draws a base completion
// time from a personal [min, max] band inside 1–20 s (the time the study
// found sufficient for the traffic-estimation task), but with 50 %
// probability delays or abandons the task, stretching completion up to
// 130 s. Feedback quality is a personal probability, distributed so that
// 70 % of workers exceed 0.5 — the trust distribution the study measured.
//
// The package also synthesizes the case study itself: a response-time and
// trust dataset with the published marginals (half the answers inside 20 s,
// a heavy tail reaching hours), from which the experiment configuration
// derives its 60–120 s deadlines. This replaces the live CrowdFlower
// deployment that cannot be reproduced offline.
package crowd

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"react/internal/powerlaw"
)

// Paper-calibrated population constants (§V.C).
const (
	BaseExecMin = 1 * time.Second   // fastest any worker's band may start
	BaseExecMax = 20 * time.Second  // slowest base completion
	MaxDelayed  = 130 * time.Second // worst case when delaying/abandoning
	// DelayedFloor is where the delayed band starts. The case study saw
	// non-prompt workers take minutes to hours — far beyond any 60–120 s
	// deadline — so a delaying worker should essentially always miss; the
	// [DelayedFloor, MaxDelayed] band encodes that while keeping the
	// simulated tail bounded (an abandoned task must still terminate).
	DelayedFloor = 100 * time.Second
	DelayProb    = 0.5              // chance a worker delays a given task
	GoodQuality  = 0.70             // fraction of workers with quality > 0.5
	DeadlineMin  = 60 * time.Second // deadline band derived from the study
	DeadlineMax  = 120 * time.Second
	StudyTailMax = 6 * time.Hour // longest response observed on CrowdFlower
)

// Behavior is one worker's generative model.
type Behavior struct {
	MinExec   time.Duration // personal base band lower edge
	MaxExec   time.Duration // personal base band upper edge (exclusive-ish)
	DelayProb float64       // probability of delaying/abandoning a task
	DelayMin  time.Duration // delayed band lower edge (0 ⇒ starts at MaxExec)
	MaxDelay  time.Duration // upper bound of the delayed completion time
	Quality   float64       // probability a timely answer earns positive feedback
}

// Validate reports the first configuration problem.
func (b Behavior) Validate() error {
	if b.MinExec <= 0 || b.MaxExec < b.MinExec {
		return fmt.Errorf("crowd: bad exec band [%v, %v]", b.MinExec, b.MaxExec)
	}
	if b.DelayProb < 0 || b.DelayProb > 1 {
		return fmt.Errorf("crowd: delay probability %v out of [0,1]", b.DelayProb)
	}
	if b.MaxDelay < b.MaxExec {
		return fmt.Errorf("crowd: max delay %v below exec band top %v", b.MaxDelay, b.MaxExec)
	}
	if b.DelayMin > 0 && b.MaxDelay < b.DelayMin {
		return fmt.Errorf("crowd: max delay %v below delayed band floor %v", b.MaxDelay, b.DelayMin)
	}
	if b.Quality < 0 || b.Quality > 1 {
		return fmt.Errorf("crowd: quality %v out of [0,1]", b.Quality)
	}
	return nil
}

// ExecTime draws the completion time for one task: uniform in the worker's
// base band, or — with probability DelayProb — uniform in the delayed band
// (MaxExec, MaxDelay].
func (b Behavior) ExecTime(rng *rand.Rand) time.Duration {
	if rng.Float64() < b.DelayProb {
		floor := b.DelayMin
		if floor < b.MaxExec {
			floor = b.MaxExec
		}
		span := b.MaxDelay - floor
		if span <= 0 {
			return b.MaxDelay
		}
		return floor + time.Duration(rng.Int63n(int64(span)+1))
	}
	span := b.MaxExec - b.MinExec
	if span <= 0 {
		return b.MinExec
	}
	return b.MinExec + time.Duration(rng.Int63n(int64(span)+1))
}

// PositiveFeedback draws the requester's verdict: §V.C makes feedback
// "positive only if the task finished before the deadline, with a
// probability that is defined from the worker's unique feedback percentage".
func (b Behavior) PositiveFeedback(rng *rand.Rand, metDeadline bool) bool {
	return metDeadline && rng.Float64() < b.Quality
}

// NewPopulation draws n workers with the paper's marginals: personal
// [min, max] bands inside [BaseExecMin, BaseExecMax], DelayProb of 0.5 with
// delays up to MaxDelayed, and quality with GoodQuality of the population
// above 0.5.
func NewPopulation(n int, rng *rand.Rand) []Behavior {
	out := make([]Behavior, n)
	for i := range out {
		out[i] = newWorker(rng)
	}
	return out
}

func newWorker(rng *rand.Rand) Behavior {
	span := float64(BaseExecMax - BaseExecMin)
	a := time.Duration(rng.Float64() * span)
	b := time.Duration(rng.Float64() * span)
	if a > b {
		a, b = b, a
	}
	if b-a < time.Second {
		b = a + time.Second // keep the band non-degenerate
	}
	var quality float64
	if rng.Float64() < GoodQuality {
		quality = 0.5 + rng.Float64()*0.5
	} else {
		quality = rng.Float64() * 0.5
	}
	return Behavior{
		MinExec:   BaseExecMin + a,
		MaxExec:   BaseExecMin + b,
		DelayProb: DelayProb,
		DelayMin:  DelayedFloor,
		MaxDelay:  MaxDelayed,
		Quality:   quality,
	}
}

// Sample is one synthetic case-study observation: how long a CrowdFlower
// worker took to answer the traffic question, and the platform's trust
// score for them.
type Sample struct {
	Response time.Duration
	Trust    float64
}

// StudyReport summarizes a synthesized case study the way §V.C reports the
// real one.
type StudyReport struct {
	N                  int
	MedianResponse     time.Duration
	FracUnder20s       float64
	FracTrustAbove50   float64
	MaxResponse        time.Duration
	SuggestedDeadlines [2]time.Duration // the 60–120 s band the paper derives
}

// SynthesizeStudy generates n observations with the published marginals:
// half the responses arrive within the 20 s proposed time (uniform 2–20 s);
// the rest follow a power-law tail from 20 s that can reach hours ("the
// remaining tasks could take up to 6 hours"). Trust is distributed with 70 %
// of workers above 0.5.
func SynthesizeStudy(n int, rng *rand.Rand) ([]Sample, StudyReport) {
	samples := make([]Sample, n)
	// Tail exponent chosen so the observed maximum at the study's scale is
	// on the order of hours: P(X > 6h | tail) = (21600/20)^(1-α).
	tail, err := powerlaw.New(2.0, 20)
	if err != nil {
		panic(err) // constants are valid
	}
	under := 0
	trusted := 0
	var max time.Duration
	for i := range samples {
		var resp time.Duration
		if rng.Float64() < 0.5 {
			resp = time.Duration(2+rng.Float64()*18) * time.Second
		} else {
			secs := tail.Sample(rng)
			if limit := StudyTailMax.Seconds(); secs > limit {
				secs = limit
			}
			resp = time.Duration(secs * float64(time.Second))
		}
		var trust float64
		if rng.Float64() < GoodQuality {
			trust = 0.5 + rng.Float64()*0.5
		} else {
			trust = rng.Float64() * 0.5
		}
		samples[i] = Sample{Response: resp, Trust: trust}
		if resp < 20*time.Second {
			under++
		}
		if trust > 0.5 {
			trusted++
		}
		if resp > max {
			max = resp
		}
	}
	report := StudyReport{
		N:                  n,
		MedianResponse:     medianResponse(samples),
		MaxResponse:        max,
		SuggestedDeadlines: [2]time.Duration{DeadlineMin, DeadlineMax},
	}
	if n > 0 {
		report.FracUnder20s = float64(under) / float64(n)
		report.FracTrustAbove50 = float64(trusted) / float64(n)
	}
	return samples, report
}

func medianResponse(samples []Sample) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	resp := make([]time.Duration, len(samples))
	for i, s := range samples {
		resp[i] = s.Response
	}
	sort.Slice(resp, func(i, j int) bool { return resp[i] < resp[j] })
	return resp[len(resp)/2]
}
