package crowd

import (
	"math/rand"
	"testing"
	"time"
)

func TestBehaviorValidate(t *testing.T) {
	good := Behavior{MinExec: time.Second, MaxExec: 10 * time.Second,
		DelayProb: 0.5, MaxDelay: 130 * time.Second, Quality: 0.8}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Behavior{
		{MinExec: 0, MaxExec: 10 * time.Second, MaxDelay: time.Minute},
		{MinExec: 10 * time.Second, MaxExec: time.Second, MaxDelay: time.Minute},
		{MinExec: time.Second, MaxExec: 10 * time.Second, DelayProb: 1.5, MaxDelay: time.Minute},
		{MinExec: time.Second, MaxExec: 10 * time.Second, MaxDelay: time.Second},
		{MinExec: time.Second, MaxExec: 10 * time.Second, MaxDelay: time.Minute, Quality: -0.1},
	}
	for i, b := range cases {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, b)
		}
	}
}

func TestExecTimeBands(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	b := Behavior{MinExec: 5 * time.Second, MaxExec: 10 * time.Second,
		DelayProb: 0.5, MaxDelay: 130 * time.Second, Quality: 0.8}
	base, delayed := 0, 0
	for i := 0; i < 20000; i++ {
		d := b.ExecTime(rng)
		switch {
		case d >= 5*time.Second && d <= 10*time.Second:
			base++
		case d > 10*time.Second && d <= 130*time.Second:
			delayed++
		default:
			t.Fatalf("ExecTime %v outside both bands", d)
		}
	}
	frac := float64(delayed) / 20000
	if frac < 0.47 || frac > 0.53 {
		t.Fatalf("delayed fraction = %v, want ≈0.5", frac)
	}
}

func TestExecTimeNeverDelays(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := Behavior{MinExec: 2 * time.Second, MaxExec: 4 * time.Second,
		DelayProb: 0, MaxDelay: 130 * time.Second}
	for i := 0; i < 1000; i++ {
		if d := b.ExecTime(rng); d < 2*time.Second || d > 4*time.Second {
			t.Fatalf("no-delay worker produced %v", d)
		}
	}
}

func TestExecTimeDegenerateBands(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := Behavior{MinExec: 5 * time.Second, MaxExec: 5 * time.Second,
		DelayProb: 1, MaxDelay: 5 * time.Second}
	if d := b.ExecTime(rng); d != 5*time.Second {
		t.Fatalf("degenerate delayed band gave %v", d)
	}
	b.DelayProb = 0
	if d := b.ExecTime(rng); d != 5*time.Second {
		t.Fatalf("degenerate base band gave %v", d)
	}
}

func TestPositiveFeedback(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	b := Behavior{Quality: 0.8}
	// Missed deadline ⇒ never positive.
	for i := 0; i < 100; i++ {
		if b.PositiveFeedback(rng, false) {
			t.Fatal("positive feedback despite missed deadline")
		}
	}
	// Met deadline ⇒ positive at ≈ Quality rate.
	pos := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if b.PositiveFeedback(rng, true) {
			pos++
		}
	}
	if frac := float64(pos) / n; frac < 0.77 || frac > 0.83 {
		t.Fatalf("positive fraction = %v, want ≈0.8", frac)
	}
}

func TestNewPopulationMarginals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	pop := NewPopulation(5000, rng)
	if len(pop) != 5000 {
		t.Fatalf("population size %d", len(pop))
	}
	goodQ := 0
	for i, b := range pop {
		if err := b.Validate(); err != nil {
			t.Fatalf("worker %d invalid: %v", i, err)
		}
		if b.MinExec < BaseExecMin || b.MaxExec > BaseExecMax+time.Second {
			t.Fatalf("worker %d band [%v,%v] outside spec", i, b.MinExec, b.MaxExec)
		}
		if b.DelayProb != DelayProb || b.MaxDelay != MaxDelayed {
			t.Fatalf("worker %d delay model %v/%v", i, b.DelayProb, b.MaxDelay)
		}
		if b.Quality > 0.5 {
			goodQ++
		}
	}
	frac := float64(goodQ) / float64(len(pop))
	if frac < 0.67 || frac > 0.73 {
		t.Fatalf("quality>0.5 fraction = %v, want ≈0.7 (§V.C)", frac)
	}
}

func TestSynthesizeStudyMarginals(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	samples, report := SynthesizeStudy(20000, rng)
	if len(samples) != 20000 || report.N != 20000 {
		t.Fatalf("n = %d/%d", len(samples), report.N)
	}
	// Published marginals: ~50% under 20s, ~70% trust above 0.5.
	if report.FracUnder20s < 0.46 || report.FracUnder20s > 0.54 {
		t.Fatalf("FracUnder20s = %v", report.FracUnder20s)
	}
	if report.FracTrustAbove50 < 0.67 || report.FracTrustAbove50 > 0.73 {
		t.Fatalf("FracTrustAbove50 = %v", report.FracTrustAbove50)
	}
	// Median response at or under the 20s proposed time.
	if report.MedianResponse > 21*time.Second {
		t.Fatalf("MedianResponse = %v", report.MedianResponse)
	}
	// A heavy tail exists but is capped at the 6h observation.
	if report.MaxResponse <= time.Minute || report.MaxResponse > StudyTailMax {
		t.Fatalf("MaxResponse = %v", report.MaxResponse)
	}
	if report.SuggestedDeadlines != [2]time.Duration{DeadlineMin, DeadlineMax} {
		t.Fatalf("SuggestedDeadlines = %v", report.SuggestedDeadlines)
	}
}

func TestSynthesizeStudyEmpty(t *testing.T) {
	_, report := SynthesizeStudy(0, rand.New(rand.NewSource(7)))
	if report.MedianResponse != 0 || report.N != 0 {
		t.Fatalf("empty study report = %+v", report)
	}
}

func TestPopulationDeterministicPerSeed(t *testing.T) {
	a := NewPopulation(100, rand.New(rand.NewSource(42)))
	b := NewPopulation(100, rand.New(rand.NewSource(42)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("population diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestExecTimeDelayedFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	b := Behavior{MinExec: 2 * time.Second, MaxExec: 10 * time.Second,
		DelayProb: 1, DelayMin: 100 * time.Second, MaxDelay: 130 * time.Second}
	for i := 0; i < 2000; i++ {
		d := b.ExecTime(rng)
		if d < 100*time.Second || d > 130*time.Second {
			t.Fatalf("delayed exec %v outside [100s,130s]", d)
		}
	}
}

func TestValidateRejectsFloorAboveMaxDelay(t *testing.T) {
	b := Behavior{MinExec: time.Second, MaxExec: 5 * time.Second,
		DelayMin: 200 * time.Second, MaxDelay: 130 * time.Second}
	if err := b.Validate(); err == nil {
		t.Fatal("floor above max delay accepted")
	}
}

func TestPopulationUsesDelayedFloor(t *testing.T) {
	pop := NewPopulation(10, rand.New(rand.NewSource(9)))
	for _, b := range pop {
		if b.DelayMin != DelayedFloor {
			t.Fatalf("DelayMin = %v, want %v", b.DelayMin, DelayedFloor)
		}
	}
}
