// Package engine is the transport-agnostic REACT scheduling engine: the
// paper's four components (profiling, task management, scheduling, dynamic
// assignment) wired into one control loop that owns the batch trigger, edge
// construction and WBGM invocation, assignment application, the Eq. 2
// monitor sweep, unassigned-task expiry, and terminal-record retention.
//
// The engine has no goroutines, timers, or sockets of its own — it is
// driven entirely by explicit calls (Submit, Complete, Feedback,
// AttachWorker, DetachWorker, Tick, TickMonitor, TryBatch). That lets two
// very different hosts share it verbatim:
//
//   - internal/core runs it against a real clock, calling Tick and
//     TickMonitor from ticker goroutines and delivering assignments over
//     channels via the Deliver hook;
//   - internal/experiments schedules the same calls as discrete events on
//     sim.Engine's virtual clock, injecting the modelled matcher latency of
//     DESIGN.md §2 through Config.Latency/Config.Defer.
//
// The CI determinism gate (same-seed figure runs byte-identical, diffed
// against a pre-refactor golden series in testdata/) is the proof both
// drive modes execute one logic.
//
// Task bookkeeping is striped across Config.Shards taskq shards and the
// counters are atomics, so completions, feedback, and submissions arriving
// concurrently no longer serialize behind a single global mutex or behind a
// running batch (see TaskStore).
package engine

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"react/internal/clock"
	"react/internal/dynassign"
	"react/internal/event"
	"react/internal/matching"
	"react/internal/profile"
	"react/internal/region"
	"react/internal/schedule"
	"react/internal/taskq"
)

// Assignment is the notification a worker receives when the scheduler binds
// a task to them.
type Assignment struct {
	TaskID      string
	WorkerID    string
	Category    string
	Description string
	Location    region.Point
	Deadline    time.Time
	Reward      float64
	AssignedAt  time.Time // instant the binding was applied (staleness checks)
}

// Result is delivered to the requester side when a task terminates.
type Result struct {
	TaskID      string
	WorkerID    string // "" when the task expired unassigned
	Answer      string
	FinishedAt  time.Time
	MetDeadline bool
	Expired     bool
}

// Hooks is the engine's transport seam. Observation moved to the event
// spine (Events); the only hook left is the delivery path, which is
// load-bearing — its return value decides whether a binding sticks.
type Hooks struct {
	// Deliver hands a freshly applied assignment to the transport. Returning
	// false (worker unreachable, feed full) makes the engine revoke the
	// binding: the task returns to the pool and the worker is marked idle.
	// A nil Deliver accepts every assignment. Deliver is invoked with no
	// engine lock held and must not re-enter TryBatch.
	Deliver func(Assignment) bool
}

// Config parameterizes an Engine. Zero fields take the paper's defaults.
type Config struct {
	Clock    clock.Clock      // default clock.System{}
	Matcher  matching.Matcher // default REACT with adaptive cycles
	Schedule schedule.Config  // batching, pruning, weights
	Monitor  dynassign.Monitor
	// Shards stripes the task bookkeeping; default GOMAXPROCS. The stripe
	// count never changes observable behaviour (snapshots re-sort
	// globally), only lock contention.
	Shards int
	// Retention bounds how long terminal task records are kept for late
	// Feedback. Zero keeps everything.
	Retention time.Duration
	// MaxInflight caps the live (unassigned + assigned) task population: a
	// Submit that would exceed it fails with ErrQueueFull. Zero means
	// unbounded — the paper's original intake behaviour.
	MaxInflight int
	// Latency models the matcher's wall time for one batch (the analytic
	// model of DESIGN.md §2). Nil charges nothing: the batch applies with
	// the real elapsed time already spent.
	Latency func(tasks, workers, edges, cycles int) time.Duration
	// Defer postpones batch application by the modelled latency. The
	// experiments harness points this at sim.Engine.After so the virtual
	// clock pays the charge; nil applies assignments synchronously (live
	// mode). Defer must only schedule fn, never run it inline.
	Defer func(d time.Duration, fn func(now time.Time))
}

func (c Config) normalize() Config {
	if c.Clock == nil {
		c.Clock = clock.System{}
	}
	if c.Matcher == nil {
		c.Matcher = matching.REACT{Adaptive: true}
	}
	c.Schedule = c.Schedule.Normalize()
	c.Monitor = c.Monitor.Normalize()
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	return c
}

// Errors returned by the engine API.
var (
	// ErrNotAssigned rejects a Complete for a task the worker does not hold.
	ErrNotAssigned = errors.New("engine: task not assigned to this worker")
	// ErrNoWorker rejects Feedback for a task with no worker profile to
	// credit: the task expired unassigned, or its worker deregistered. The
	// grade is not consumed, so the requester learns it went nowhere
	// instead of silently losing the accuracy update.
	ErrNoWorker = errors.New("engine: no worker to credit feedback to")
	// ErrQueueFull rejects a Submit that would push the live task
	// population past Config.MaxInflight. Retryable: capacity frees as
	// tasks complete or expire.
	ErrQueueFull = errors.New("engine: queue full")
)

// ErrDuplicateTask re-exports taskq's sentinel at the engine boundary so
// transports can map it to a permanent wire error code without reaching
// into task-store internals. It IS taskq.ErrDuplicateTask: errors.Is
// matches either name.
var ErrDuplicateTask = taskq.ErrDuplicateTask

// Stats is a snapshot of the engine's counters.
type Stats struct {
	Received    int64
	Assigned    int64
	Completed   int64
	OnTime      int64
	Expired     int64
	Shed        int64 // subset of Expired terminated by admission control
	Reassigned  int64
	Batches     int64
	MatcherTime time.Duration
}

// counters hold the live stats as atomics so the hot paths never take a
// stats lock.
type counters struct {
	received   atomic.Int64
	assigned   atomic.Int64
	completed  atomic.Int64
	onTime     atomic.Int64
	expired    atomic.Int64
	shed       atomic.Int64
	reassigned atomic.Int64
	batches    atomic.Int64
	matcherNs  atomic.Int64
}

// Engine is one REACT scheduling engine instance.
type Engine struct {
	cfg     Config
	hooks   Hooks
	workers *profile.Registry
	tasks   *TaskStore
	bus     *event.Bus

	// batchMu serializes the trigger check and the scheduling round
	// (planBatch). inFlight is set from the moment a round is planned
	// until its assignments are applied — immediately for synchronous
	// application, after the modelled latency for deferred — so rounds
	// never overlap even though hooks and application run unlocked.
	batchMu  sync.Mutex
	trigger  *schedule.Trigger
	inFlight bool

	ctr counters
}

// New creates an engine. The first batch is considered due immediately
// (the trigger's last run is backdated one period).
func New(cfg Config, hooks Hooks) *Engine {
	cfg = cfg.normalize()
	e := &Engine{
		cfg:     cfg,
		hooks:   hooks,
		workers: profile.NewRegistry(),
		tasks:   NewTaskStore(cfg.Clock, cfg.Shards),
		bus:     event.NewBus(),
		trigger: schedule.NewTrigger(cfg.Schedule, cfg.Clock.Now()),
	}
	// Lifecycle events flow shard sink → spine bus. The sink fires under
	// the shard's lock, so the bus stamps Seq before any second mutation
	// of the same task can start — the per-task total order every spine
	// consumer relies on.
	e.tasks.setSink(func(tev taskq.Event) {
		e.bus.Publish(event.FromTask(tev))
	})
	return e
}

// Workers exposes the profiling component.
func (e *Engine) Workers() *profile.Registry { return e.workers }

// Tasks exposes the sharded task-management component.
func (e *Engine) Tasks() *TaskStore { return e.tasks }

// Events exposes the lifecycle event spine. Taps run under the shard
// locks (lossless, ordered); subscriptions are bounded and lossy. See
// the event package contract before choosing.
func (e *Engine) Events() *event.Bus { return e.bus }

// Submit places a task into the system. With Config.MaxInflight set, a
// submission that would exceed the live-task ceiling fails with
// ErrQueueFull before touching the store.
func (e *Engine) Submit(t taskq.Task) error {
	if e.cfg.MaxInflight > 0 {
		if u, a, _, _ := e.tasks.Counts(); u+a >= e.cfg.MaxInflight {
			return fmt.Errorf("%w: %d tasks in flight (ceiling %d)", ErrQueueFull, u+a, e.cfg.MaxInflight)
		}
	}
	if err := e.tasks.Submit(t); err != nil {
		return err
	}
	e.ctr.received.Add(1)
	return nil
}

// Shed terminates an unassigned task on admission control's orders. The
// record lands as Expired (the requester-visible outcome of never being
// served) but the spine event carries taskq.CauseShed, and the engine
// counts it under both Expired and Shed.
func (e *Engine) Shed(taskID string) error {
	if _, err := e.tasks.Shed(taskID); err != nil {
		return err
	}
	e.ctr.expired.Add(1)
	e.ctr.shed.Add(1)
	return nil
}

// AttachWorker registers a new worker, initially available.
func (e *Engine) AttachWorker(id string, loc region.Point) (*profile.Profile, error) {
	return e.workers.Register(id, loc)
}

// ReattachWorker marks a known (e.g. snapshot-restored or previously
// detached) worker available again.
func (e *Engine) ReattachWorker(id string) (*profile.Profile, error) {
	p, ok := e.workers.Get(id)
	if !ok {
		return nil, fmt.Errorf("%w: %q", profile.ErrUnknownWorker, id)
	}
	p.SetAvailable(true)
	return p, nil
}

// DetachWorker marks a worker unavailable, keeping its learned profile
// (workers have "short connectivity cycles", §I). Any task it held returns
// to the pool for reassignment.
func (e *Engine) DetachWorker(id string) error {
	p, ok := e.workers.Get(id)
	if !ok {
		return fmt.Errorf("%w: %q", profile.ErrUnknownWorker, id)
	}
	if taskID := p.CurrentTask(); taskID != "" {
		if err := e.tasks.Unassign(taskID, taskq.CauseDetach, 0); err == nil {
			e.ctr.reassigned.Add(1)
		}
		p.MarkIdle()
	}
	p.SetAvailable(false)
	return nil
}

// DeregisterWorker removes a worker and its history entirely. Any task it
// held returns to the pool.
func (e *Engine) DeregisterWorker(id string) error {
	p, ok := e.workers.Get(id)
	if !ok {
		return fmt.Errorf("%w: %q", profile.ErrUnknownWorker, id)
	}
	if taskID := p.CurrentTask(); taskID != "" {
		if err := e.tasks.Unassign(taskID, taskq.CauseDeregister, 0); err == nil {
			e.ctr.reassigned.Add(1)
		}
	}
	return e.workers.Deregister(id)
}

// Complete records a worker's answer for a task it holds. The execution
// time feeds the worker's power-law model immediately; the accuracy update
// waits for requester Feedback. The final task record is returned alongside
// the requester-facing result for callers that need the full bookkeeping
// (attempts, timings).
func (e *Engine) Complete(taskID, workerID, answer string) (Result, taskq.Record, error) {
	rec, ok := e.tasks.Get(taskID)
	if !ok {
		return Result{}, taskq.Record{}, fmt.Errorf("%w: %q", taskq.ErrUnknownTask, taskID)
	}
	if rec.Status != taskq.Assigned || rec.Worker != workerID {
		return Result{}, taskq.Record{}, fmt.Errorf("%w: task %q held by %q", ErrNotAssigned, taskID, rec.Worker)
	}
	final, err := e.tasks.Complete(taskID)
	if err != nil {
		return Result{}, taskq.Record{}, err
	}
	if p, ok := e.workers.Get(workerID); ok {
		p.RecordExecTime(final.ExecTime().Seconds())
		if p.CurrentTask() == taskID {
			p.MarkIdle()
		}
	}
	res := Result{
		TaskID:      taskID,
		WorkerID:    workerID,
		Answer:      answer,
		FinishedAt:  final.FinishedAt,
		MetDeadline: final.MetDeadline(),
	}
	e.ctr.completed.Add(1)
	if res.MetDeadline {
		e.ctr.onTime.Add(1)
	}
	return res, final, nil
}

// Feedback records the requester's verdict on a completed task, updating
// the worker's per-category accuracy (Eq. 1). A task can be graded once.
// When the task has no worker to credit — it expired unassigned, or the
// worker deregistered — Feedback returns ErrNoWorker without consuming the
// grade.
func (e *Engine) Feedback(taskID string, positive bool) error {
	rec, ok := e.tasks.Get(taskID)
	if !ok {
		return fmt.Errorf("%w: %q", taskq.ErrUnknownTask, taskID)
	}
	if rec.Worker == "" {
		return fmt.Errorf("%w: task %q never reached a worker", ErrNoWorker, taskID)
	}
	p, okW := e.workers.Get(rec.Worker)
	if !okW {
		return fmt.Errorf("%w: worker %q left before feedback for task %q", ErrNoWorker, rec.Worker, taskID)
	}
	if err := e.tasks.MarkGraded(taskID); err != nil {
		return err
	}
	p.RecordFeedback(rec.Task.Category, positive)
	return nil
}

// Stats snapshots the counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Received:    e.ctr.received.Load(),
		Assigned:    e.ctr.assigned.Load(),
		Completed:   e.ctr.completed.Load(),
		OnTime:      e.ctr.onTime.Load(),
		Expired:     e.ctr.expired.Load(),
		Shed:        e.ctr.shed.Load(),
		Reassigned:  e.ctr.reassigned.Load(),
		Batches:     e.ctr.batches.Load(),
		MatcherTime: time.Duration(e.ctr.matcherNs.Load()),
	}
}

// RestoreStats seeds the lifecycle counters from recovered state, before
// traffic starts. Batches and MatcherTime are deliberately not restorable:
// scheduling rounds are not journaled, so those two reset across a
// recovery (documented in docs/PERSISTENCE.md).
func (e *Engine) RestoreStats(st Stats) {
	e.ctr.received.Store(st.Received)
	e.ctr.assigned.Store(st.Assigned)
	e.ctr.completed.Store(st.Completed)
	e.ctr.onTime.Store(st.OnTime)
	e.ctr.expired.Store(st.Expired)
	e.ctr.shed.Store(st.Shed)
	e.ctr.reassigned.Store(st.Reassigned)
}

// Tick runs one full maintenance pass — retention GC, unassigned-task
// expiry, then the batch trigger — in the order the live server's poll loop
// needs. Event-driven hosts call the individual ticks on their own cadences
// instead.
func (e *Engine) Tick() {
	e.TickRetention()
	e.TickExpiry()
	e.TryBatch()
}

// TickRetention garbage-collects terminal task records older than the
// retention window. A zero retention keeps everything.
func (e *Engine) TickRetention() {
	if e.cfg.Retention <= 0 {
		return
	}
	e.tasks.ForgetTerminatedBefore(e.cfg.Clock.Now().Add(-e.cfg.Retention))
}

// TickExpiry expires every overdue task still waiting in the pool. Each
// expiry lands on the event spine as a KindExpire event. Tasks already
// in a worker's hands run to (possibly late) completion — the paper's
// soft-deadline policy.
func (e *Engine) TickExpiry() {
	for range e.tasks.ExpireUnassigned() {
		e.ctr.expired.Add(1)
	}
}

// ExpireAllDue expires every overdue task, assigned or not — the
// end-of-run accounting sweep the experiments harness performs after the
// drain window.
func (e *Engine) ExpireAllDue() {
	for range e.tasks.ExpireDue() {
		e.ctr.expired.Add(1)
	}
}

// TickMonitor runs one Eq. 2 sweep: every executing task whose completion
// probability fell below the threshold is returned to the pool and its
// worker freed.
func (e *Engine) TickMonitor() {
	now := e.cfg.Clock.Now()
	for _, d := range e.cfg.Monitor.Sweep(e.workers, e.tasks, now) {
		if !d.Reassign {
			continue
		}
		if err := e.tasks.Unassign(d.TaskID, taskq.CauseEq2, d.Probability); err != nil {
			continue
		}
		e.ctr.reassigned.Add(1)
		if p, ok := e.workers.Get(d.Worker); ok && p.CurrentTask() == d.TaskID {
			p.MarkIdle()
		}
	}
}

// TryBatch runs one scheduling round if the trigger is due: snapshot the
// available workers and unassigned tasks, build the Eq. 3 graph, match it,
// and apply the assignments. With Config.Defer set, application is
// postponed by the modelled matcher latency and at most one round is in
// flight at a time; the deferred apply re-arms the trigger check so a
// backlog that built up during the charge drains immediately.
func (e *Engine) TryBatch() {
	assignments, byID, stats, latency, ok := e.planBatch()
	if !ok {
		return
	}
	// The round summary publishes with no engine lock held: a tap is free
	// to call back into the engine (Complete, Feedback, even TryBatch —
	// the inFlight gate makes that a no-op) without deadlocking, and a
	// slow subscriber can never stall the trigger check. reactlint's
	// hookreentrancy analyzer enforces this.
	e.bus.Publish(event.Event{Kind: event.KindBatch, At: e.cfg.Clock.Now(), Batch: &stats})
	if e.cfg.Defer != nil {
		e.cfg.Defer(latency, e.deferredApply(assignments, byID))
		return
	}
	e.applyAssignments(assignments, byID)
	e.batchMu.Lock()
	e.inFlight = false
	e.batchMu.Unlock()
}

// planBatch is the locked half of TryBatch: check the trigger, snapshot
// workers and tasks, and run the matcher, all under batchMu. When a round
// is produced, inFlight is set before the lock is released so concurrent
// TryBatch calls stay no-ops until the round is applied.
func (e *Engine) planBatch() (assignments map[string]string, byID map[string]taskq.Task, stats event.BatchStats, latency time.Duration, ok bool) {
	e.batchMu.Lock()
	defer e.batchMu.Unlock()
	if e.inFlight {
		return nil, nil, event.BatchStats{}, 0, false
	}
	now := e.cfg.Clock.Now()
	if !e.trigger.Due(e.tasks.UnassignedCount(), now) {
		return nil, nil, event.BatchStats{}, 0, false
	}
	avail := e.workers.Available()
	unassigned := e.tasks.Unassigned()
	if len(avail) == 0 || len(unassigned) == 0 {
		return nil, nil, event.BatchStats{}, 0, false
	}
	batch, err := schedule.Run(e.cfg.Schedule, e.cfg.Matcher, avail, unassigned, now)
	if err != nil {
		return nil, nil, event.BatchStats{}, 0, false // construction bug; skip the round rather than wedge the host
	}
	e.trigger.Ran(now)
	e.ctr.batches.Add(1)
	e.ctr.matcherNs.Add(int64(batch.Elapsed))
	if e.cfg.Latency != nil {
		latency = e.cfg.Latency(len(unassigned), len(avail), batch.Build.Edges, batch.Match.Cycles)
	}
	stats = event.BatchStats{
		Workers:      len(avail),
		Tasks:        len(unassigned),
		Edges:        batch.Build.Edges,
		PrunedProb:   batch.Build.PrunedProb,
		PrunedReward: batch.Build.PrunedReward,
		Cycles:       batch.Match.Cycles,
		Assignments:  len(batch.Assignments),
		Elapsed:      batch.Elapsed,
		Latency:      latency,
	}
	byID = make(map[string]taskq.Task, len(unassigned))
	for _, t := range unassigned {
		byID[t.ID] = t
	}
	e.inFlight = true
	return batch.Assignments, byID, stats, latency, true
}

// deferredApply builds the callback that lands a postponed batch: apply,
// clear the in-flight gate, and re-check the trigger for backlog that
// accumulated while the modelled matcher ran.
func (e *Engine) deferredApply(assignments map[string]string, byID map[string]taskq.Task) func(time.Time) {
	return func(time.Time) {
		e.applyAssignments(assignments, byID)
		e.batchMu.Lock()
		e.inFlight = false
		e.batchMu.Unlock()
		e.TryBatch()
	}
}

// applyAssignments binds matcher output to live state. Runs with no
// engine lock held — the inFlight gate serializes rounds, and the task
// and worker stores carry their own locks — so the Deliver hook may
// re-enter the engine freely. Sorted order keeps downstream consumers
// (the harness's exec-time RNG stream) deterministic; map iteration
// order would not be.
func (e *Engine) applyAssignments(assignments map[string]string, byID map[string]taskq.Task) {
	taskIDs := make([]string, 0, len(assignments))
	for taskID := range assignments {
		taskIDs = append(taskIDs, taskID)
	}
	sort.Strings(taskIDs)
	for _, taskID := range taskIDs {
		workerID := assignments[taskID]
		rec, ok := e.tasks.Get(taskID)
		if !ok || rec.Status != taskq.Unassigned {
			continue // expired or re-bound while the matcher ran
		}
		p, ok := e.workers.Get(workerID)
		if !ok || !p.Available() {
			continue // worker detached after the snapshot
		}
		if err := e.tasks.Assign(taskID, workerID); err != nil {
			continue
		}
		task := byID[taskID]
		rec, _ = e.tasks.Get(taskID)
		a := Assignment{
			TaskID:      taskID,
			WorkerID:    workerID,
			Category:    task.Category,
			Description: task.Description,
			Location:    task.Location,
			Deadline:    task.Deadline,
			Reward:      task.Reward,
			AssignedAt:  rec.AssignedAt,
		}
		// Mark busy BEFORE the assignment becomes visible to the transport:
		// a fast worker may Complete the task (and clear the busy mark)
		// before this call returns, and marking busy afterwards would wedge
		// the worker permanently.
		p.MarkBusy(taskID)
		if e.hooks.Deliver != nil && !e.hooks.Deliver(a) {
			// Transport refused (feed full, worker detached mid-delivery):
			// revoke. The detach path may already have unassigned and idled,
			// so both cleanups tolerate a no-op.
			e.tasks.Unassign(taskID, taskq.CauseUndeliverable, 0)
			if p.CurrentTask() == taskID {
				p.MarkIdle()
			}
			continue
		}
		e.ctr.assigned.Add(1)
	}
}
