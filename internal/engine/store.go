package engine

import (
	"sort"
	"time"

	"react/internal/clock"
	"react/internal/taskq"
)

// TaskStore is the engine's task-management state, striped across N
// taskq.Manager shards keyed by an FNV-1a hash of the task id. Point
// operations (Submit, Get, Assign, Complete, ...) touch exactly one shard,
// so completions and submissions arriving concurrently with a running batch
// contend on 1/N of the locks the old single manager forced them through.
//
// Snapshot operations (Unassigned, AssignedTasks, ExpireUnassigned) merge
// the per-shard results and re-sort them globally, so every observable
// ordering is identical to a single-manager store regardless of the shard
// count — the property the determinism gate relies on.
type TaskStore struct {
	shards []*taskq.Manager
}

// NewTaskStore creates a store with n shards reading time from clk. n below
// 1 is treated as 1.
func NewTaskStore(clk clock.Clock, n int) *TaskStore {
	if n < 1 {
		n = 1
	}
	s := &TaskStore{shards: make([]*taskq.Manager, n)}
	for i := range s.shards {
		s.shards[i] = taskq.NewManager(clk)
	}
	return s
}

// Shards reports the stripe count.
func (s *TaskStore) Shards() int { return len(s.shards) }

// shard routes a task id to its manager (FNV-1a, inlined to keep the hot
// path allocation-free).
func (s *TaskStore) shard(id string) *taskq.Manager {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * prime32
	}
	return s.shards[h%uint32(len(s.shards))]
}

// Submit registers a new unassigned task on its shard.
func (s *TaskStore) Submit(t taskq.Task) error { return s.shard(t.ID).Submit(t) }

// Get returns a copy of the record for id.
func (s *TaskStore) Get(id string) (taskq.Record, bool) { return s.shard(id).Get(id) }

// Assign binds an unassigned task to a worker.
func (s *TaskStore) Assign(taskID, workerID string) error {
	return s.shard(taskID).Assign(taskID, workerID)
}

// Unassign returns an assigned task to the pool, tagging the emitted
// event with cause (a taskq.Cause* constant) and, for Eq. 2 revocations,
// the predicted completion probability.
func (s *TaskStore) Unassign(taskID, cause string, prob float64) error {
	return s.shard(taskID).Unassign(taskID, cause, prob)
}

// Complete finishes an assigned task and returns the final record.
func (s *TaskStore) Complete(taskID string) (taskq.Record, error) {
	return s.shard(taskID).Complete(taskID)
}

// MarkGraded records that the requester's feedback has been consumed.
func (s *TaskStore) MarkGraded(taskID string) error { return s.shard(taskID).MarkGraded(taskID) }

// Shed terminates an unassigned task on admission control's orders (see
// taskq.Manager.Shed), returning the final record.
func (s *TaskStore) Shed(taskID string) (taskq.Record, error) {
	return s.shard(taskID).Shed(taskID)
}

// Unassigned snapshots the tasks waiting for a worker, oldest submission
// first (ties broken by id), merged across shards. The merge collects the
// per-shard slices first and allocates the result once at the summed
// length: this runs on the per-batch hot path, where growing the slice by
// repeated append costs a realloc-and-copy per doubling.
func (s *TaskStore) Unassigned() []taskq.Task {
	if len(s.shards) == 1 {
		return s.shards[0].Unassigned()
	}
	parts := make([][]taskq.Task, len(s.shards))
	total := 0
	for i, m := range s.shards {
		parts[i] = m.Unassigned()
		total += len(parts[i])
	}
	out := make([]taskq.Task, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Submitted.Equal(out[j].Submitted) {
			return out[i].Submitted.Before(out[j].Submitted)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// mergeRecords merges one record-snapshot call across shards into a single
// id-sorted slice, presized to the exact total (see Unassigned).
func (s *TaskStore) mergeRecords(snap func(*taskq.Manager) []taskq.Record) []taskq.Record {
	if len(s.shards) == 1 {
		return snap(s.shards[0])
	}
	parts := make([][]taskq.Record, len(s.shards))
	total := 0
	for i, m := range s.shards {
		parts[i] = snap(m)
		total += len(parts[i])
	}
	out := make([]taskq.Record, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task.ID < out[j].Task.ID })
	return out
}

// UnassignedCount sums the per-shard backlog — the batch trigger reads this
// on every arrival.
func (s *TaskStore) UnassignedCount() int {
	n := 0
	for _, m := range s.shards {
		n += m.UnassignedCount()
	}
	return n
}

// AssignedTasks snapshots the records currently executing, sorted by task
// id across shards, for the Eq. 2 monitor.
func (s *TaskStore) AssignedTasks() []taskq.Record {
	return s.mergeRecords((*taskq.Manager).AssignedTasks)
}

// ExpireUnassigned expires every overdue task still waiting in the pool and
// returns their records sorted by task id.
func (s *TaskStore) ExpireUnassigned() []taskq.Record {
	return s.mergeRecords((*taskq.Manager).ExpireUnassigned)
}

// ExpireDue expires every overdue non-terminal task, assigned or not, and
// returns their records sorted by task id.
func (s *TaskStore) ExpireDue() []taskq.Record {
	return s.mergeRecords((*taskq.Manager).ExpireDue)
}

// Counts sums how many tasks are in each state across shards.
func (s *TaskStore) Counts() (unassigned, assigned, completed, expired int) {
	for _, m := range s.shards {
		u, a, c, e := m.Counts()
		unassigned += u
		assigned += a
		completed += c
		expired += e
	}
	return
}

// ShardStat is one stripe's depth snapshot for the observability plane.
type ShardStat struct {
	Shard               int // stripe index
	Unassigned          int // tasks waiting for a worker
	Assigned            int // tasks in a worker's hands
	Terminal            int // completed + expired records still retained
	UnassignedHighWater int // peak unassigned backlog ever held by this stripe
}

// ShardStats snapshots every stripe's depths and high-water marks, in
// stripe order. Each shard is locked independently, so the rows are not a
// single consistent cut — fine for monitoring, wrong for accounting.
func (s *TaskStore) ShardStats() []ShardStat {
	out := make([]ShardStat, len(s.shards))
	for i, m := range s.shards {
		u, a, c, e := m.Counts()
		out[i] = ShardStat{
			Shard:               i,
			Unassigned:          u,
			Assigned:            a,
			Terminal:            c + e,
			UnassignedHighWater: m.UnassignedHighWater(),
		}
	}
	return out
}

// Total reports how many tasks have ever been submitted.
func (s *TaskStore) Total() int {
	n := 0
	for _, m := range s.shards {
		n += m.Total()
	}
	return n
}

// Restore inserts a recovered record verbatim on its shard, bypassing
// lifecycle checks (see taskq.Manager.Restore). Journal recovery
// bulk-loads a snapshot through this before the engine starts.
func (s *TaskStore) Restore(r taskq.Record) error { return s.shard(r.Task.ID).Restore(r) }

// setSink installs fn as every shard's mutation observer. Events are
// emitted while the shard's lock is held, which gives the event spine
// its per-task total order; fn must be fast, must not block, and must not
// call back into the store. Engine.New owns the single sink (it forwards
// into the event bus); everything else consumes the bus.
func (s *TaskStore) setSink(fn func(taskq.Event)) {
	for _, m := range s.shards {
		m.SetSink(fn)
	}
}

// ForgetTerminatedBefore garbage-collects terminal records older than
// cutoff on every shard, returning how many were removed.
func (s *TaskStore) ForgetTerminatedBefore(cutoff time.Time) int {
	n := 0
	for _, m := range s.shards {
		n += m.ForgetTerminatedBefore(cutoff)
	}
	return n
}
