package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"react/internal/clock"
	"react/internal/matching"
	"react/internal/region"
	"react/internal/schedule"
	"react/internal/taskq"
)

var testEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func testTask(id string, clk clock.Clock) taskq.Task {
	return taskq.Task{
		ID:       id,
		Category: "photo",
		Location: region.Point{Lat: 38.0, Lon: 23.7},
		Deadline: clk.Now().Add(time.Minute),
		Reward:   1,
	}
}

// harness bundles an engine on a virtual clock with a captured Defer queue,
// so tests control exactly when a deferred batch lands.
type harness struct {
	clk     *clock.Virtual
	eng     *Engine
	pending []func(now time.Time)
}

func newHarness(t *testing.T, hooks Hooks, shards int) *harness {
	t.Helper()
	h := &harness{clk: clock.NewVirtual(testEpoch)}
	h.eng = New(Config{
		Clock:    h.clk,
		Matcher:  matching.Greedy{},
		Schedule: schedule.Config{BatchBound: 10, BatchPeriod: time.Second},
		Shards:   shards,
		Defer: func(d time.Duration, fn func(now time.Time)) {
			h.pending = append(h.pending, fn)
		},
	}, hooks)
	return h
}

// flush lands every deferred batch application (and any cascaded rounds).
func (h *harness) flush() {
	for len(h.pending) > 0 {
		fn := h.pending[0]
		h.pending = h.pending[1:]
		fn(h.clk.Now())
	}
}

// TestDetachDuringBatch drives a worker detach through every window of the
// batch pipeline and asserts the invariant the monitor relies on: the task
// always returns to the unassigned pool, and the worker is never left
// wedged busy on a task it no longer holds.
func TestDetachDuringBatch(t *testing.T) {
	cases := []struct {
		name string
		// run drives one scenario and returns the engine for the common
		// assertions below.
		run func(t *testing.T) *harness
	}{
		{
			// Detach lands while the batch waits out its modelled latency:
			// the apply must notice the snapshot is stale and skip.
			name: "during deferred latency window",
			run: func(t *testing.T) *harness {
				h := newHarness(t, Hooks{}, 1)
				mustAttach(t, h.eng, "w1")
				mustSubmit(t, h.eng, testTask("t1", h.clk))
				h.eng.TryBatch()
				if len(h.pending) != 1 {
					t.Fatalf("deferred applies = %d, want 1", len(h.pending))
				}
				if err := h.eng.DetachWorker("w1"); err != nil {
					t.Fatalf("DetachWorker: %v", err)
				}
				h.flush()
				return h
			},
		},
		{
			// Detach races delivery itself: the transport tears down the
			// feed mid-handoff and refuses the assignment, so the engine
			// must revoke a binding it just applied.
			name: "inside refused delivery",
			run: func(t *testing.T) *harness {
				var h *harness
				refused := false
				h = newHarness(t, Hooks{
					Deliver: func(a Assignment) bool {
						if refused {
							return true // the reattached worker accepts normally
						}
						refused = true
						if err := h.eng.DetachWorker(a.WorkerID); err != nil {
							t.Errorf("DetachWorker in Deliver: %v", err)
						}
						return false
					},
				}, 1)
				mustAttach(t, h.eng, "w1")
				mustSubmit(t, h.eng, testTask("t1", h.clk))
				h.eng.TryBatch()
				h.flush()
				return h
			},
		},
		{
			// Detach after a clean delivery: the held task must come back.
			name: "after delivery while executing",
			run: func(t *testing.T) *harness {
				h := newHarness(t, Hooks{}, 1)
				mustAttach(t, h.eng, "w1")
				mustSubmit(t, h.eng, testTask("t1", h.clk))
				h.eng.TryBatch()
				h.flush()
				if rec, _ := h.eng.Tasks().Get("t1"); rec.Status != taskq.Assigned {
					t.Fatalf("before detach: status = %v, want Assigned", rec.Status)
				}
				if err := h.eng.DetachWorker("w1"); err != nil {
					t.Fatalf("DetachWorker: %v", err)
				}
				return h
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := tc.run(t)

			// Invariant 1: the task is back in the pool, not wedged.
			rec, ok := h.eng.Tasks().Get("t1")
			if !ok || rec.Status != taskq.Unassigned {
				t.Fatalf("after detach: status = %v (ok=%v), want Unassigned", rec.Status, ok)
			}
			// Invariant 2: the worker is offline, idle, and not busy.
			p, ok := h.eng.Workers().Get("w1")
			if !ok {
				t.Fatal("worker profile vanished on detach")
			}
			if p.Connected() {
				t.Error("worker still connected after detach")
			}
			if cur := p.CurrentTask(); cur != "" {
				t.Errorf("worker wedged busy on %q after detach", cur)
			}

			// Invariant 3: a reattached worker can pick the task up again.
			if _, err := h.eng.ReattachWorker("w1"); err != nil {
				t.Fatalf("ReattachWorker: %v", err)
			}
			h.clk.Advance(2 * time.Second) // let the period trigger re-arm
			h.eng.TryBatch()
			h.flush()
			rec, _ = h.eng.Tasks().Get("t1")
			if rec.Status != taskq.Assigned || rec.Worker != "w1" {
				t.Fatalf("after reattach: status = %v worker = %q, want Assigned/w1", rec.Status, rec.Worker)
			}
		})
	}
}

func mustAttach(t *testing.T, e *Engine, id string) {
	t.Helper()
	if _, err := e.AttachWorker(id, region.Point{Lat: 38.0, Lon: 23.7}); err != nil {
		t.Fatalf("AttachWorker(%s): %v", id, err)
	}
}

func mustSubmit(t *testing.T, e *Engine, task taskq.Task) {
	t.Helper()
	if err := e.Submit(task); err != nil {
		t.Fatalf("Submit(%s): %v", task.ID, err)
	}
}

// TestCompleteLifecycle walks submit → assign → complete → feedback and
// checks the counters and profile updates land.
func TestCompleteLifecycle(t *testing.T) {
	var delivered []Assignment
	h := newHarness(t, Hooks{
		Deliver: func(a Assignment) bool { delivered = append(delivered, a); return true },
	}, 1)
	mustAttach(t, h.eng, "w1")
	mustSubmit(t, h.eng, testTask("t1", h.clk))
	h.eng.TryBatch()
	h.flush()
	if len(delivered) != 1 || delivered[0].TaskID != "t1" || delivered[0].WorkerID != "w1" {
		t.Fatalf("delivered = %+v, want one t1→w1", delivered)
	}

	h.clk.Advance(10 * time.Second)
	res, final, err := h.eng.Complete("t1", "w1", "answer")
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if !res.MetDeadline || res.WorkerID != "w1" {
		t.Fatalf("result = %+v, want on-time by w1", res)
	}
	if got := final.ExecTime(); got != 10*time.Second {
		t.Fatalf("exec time = %v, want 10s", got)
	}
	if err := h.eng.Feedback("t1", true); err != nil {
		t.Fatalf("Feedback: %v", err)
	}
	p, _ := h.eng.Workers().Get("w1")
	if acc, ok := p.Accuracy("photo"); !ok || acc != 1 {
		t.Fatalf("accuracy = %v (ok=%v), want 1", acc, ok)
	}

	st := h.eng.Stats()
	if st.Received != 1 || st.Assigned != 1 || st.Completed != 1 || st.OnTime != 1 {
		t.Fatalf("stats = %+v, want 1/1/1/1", st)
	}

	// Completing twice, or as the wrong worker, is rejected.
	if _, _, err := h.eng.Complete("t1", "w1", "again"); !errors.Is(err, ErrNotAssigned) {
		t.Fatalf("double complete: err = %v, want ErrNotAssigned", err)
	}
	// Grading twice is rejected too.
	if err := h.eng.Feedback("t1", true); err == nil {
		t.Fatal("double feedback accepted")
	}
}

// TestFeedbackNoWorker covers the satellite fix: feedback for a task nobody
// can be credited for must be rejected, not silently swallowed.
func TestFeedbackNoWorker(t *testing.T) {
	h := newHarness(t, Hooks{}, 1)

	// An expired-unassigned task has no worker at all.
	mustSubmit(t, h.eng, testTask("t-exp", h.clk))
	h.clk.Advance(2 * time.Minute)
	h.eng.TickExpiry()
	if err := h.eng.Feedback("t-exp", true); !errors.Is(err, ErrNoWorker) {
		t.Fatalf("expired task feedback: err = %v, want ErrNoWorker", err)
	}

	// A completed task whose worker deregistered has nobody to credit, and
	// the grade must not be consumed.
	mustAttach(t, h.eng, "w1")
	mustSubmit(t, h.eng, testTask("t-done", h.clk))
	h.eng.TryBatch()
	h.flush()
	if _, _, err := h.eng.Complete("t-done", "w1", ""); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if err := h.eng.DeregisterWorker("w1"); err != nil {
		t.Fatalf("DeregisterWorker: %v", err)
	}
	if err := h.eng.Feedback("t-done", true); !errors.Is(err, ErrNoWorker) {
		t.Fatalf("departed-worker feedback: err = %v, want ErrNoWorker", err)
	}
	if rec, _ := h.eng.Tasks().Get("t-done"); rec.Graded {
		t.Fatal("rejected feedback still consumed the grade")
	}
}

// TestTaskStoreShardingInvariance checks the refactor's core promise: shard
// count changes lock layout, never observable behaviour or ordering.
func TestTaskStoreShardingInvariance(t *testing.T) {
	clk1 := clock.NewVirtual(testEpoch)
	clk8 := clock.NewVirtual(testEpoch)
	one := NewTaskStore(clk1, 1)
	eight := NewTaskStore(clk8, 8)
	for i := 0; i < 100; i++ {
		task := taskq.Task{
			ID:       fmt.Sprintf("task%03d", i),
			Deadline: testEpoch.Add(time.Duration(60+i) * time.Second),
			Reward:   float64(i),
		}
		if err := one.Submit(task); err != nil {
			t.Fatal(err)
		}
		if err := eight.Submit(task); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i += 3 {
		id := fmt.Sprintf("task%03d", i)
		if err := one.Assign(id, "w"); err != nil {
			t.Fatal(err)
		}
		if err := eight.Assign(id, "w"); err != nil {
			t.Fatal(err)
		}
	}

	ua1, ua8 := one.Unassigned(), eight.Unassigned()
	if len(ua1) != len(ua8) {
		t.Fatalf("unassigned: %d vs %d", len(ua1), len(ua8))
	}
	for i := range ua1 {
		if ua1[i].ID != ua8[i].ID {
			t.Fatalf("unassigned order diverges at %d: %s vs %s", i, ua1[i].ID, ua8[i].ID)
		}
	}
	as1, as8 := one.AssignedTasks(), eight.AssignedTasks()
	if len(as1) != len(as8) {
		t.Fatalf("assigned: %d vs %d", len(as1), len(as8))
	}
	for i := range as1 {
		if as1[i].Task.ID != as8[i].Task.ID {
			t.Fatalf("assigned order diverges at %d", i)
		}
	}
	u1, a1, c1, e1 := one.Counts()
	u8, a8, c8, e8 := eight.Counts()
	if u1 != u8 || a1 != a8 || c1 != c8 || e1 != e8 {
		t.Fatalf("counts diverge: %d/%d/%d/%d vs %d/%d/%d/%d", u1, a1, c1, e1, u8, a8, c8, e8)
	}

	// Expiry returns the same records in the same order.
	clk1.Advance(3 * time.Minute)
	clk8.Advance(3 * time.Minute)
	ex1, ex8 := one.ExpireUnassigned(), eight.ExpireUnassigned()
	if len(ex1) != len(ex8) {
		t.Fatalf("expired: %d vs %d", len(ex1), len(ex8))
	}
	for i := range ex1 {
		if ex1[i].Task.ID != ex8[i].Task.ID {
			t.Fatalf("expiry order diverges at %d", i)
		}
	}
}

// TestConcurrentPipeline hammers a sharded engine from many goroutines so
// the race detector can vet the lock layout: submissions, completions,
// feedback, monitor sweeps, and batches all in flight together.
func TestConcurrentPipeline(t *testing.T) {
	clk := clock.NewVirtual(testEpoch)
	feeds := make(map[string]chan Assignment)
	var eng *Engine
	eng = New(Config{
		Clock:    clk,
		Matcher:  matching.Greedy{},
		Schedule: schedule.Config{BatchBound: 1, BatchPeriod: time.Millisecond},
		Shards:   8,
	}, Hooks{
		Deliver: func(a Assignment) bool {
			select {
			case feeds[a.WorkerID] <- a:
				return true
			default:
				return false
			}
		},
	})
	const workers = 8
	for w := 0; w < workers; w++ {
		id := fmt.Sprintf("w%d", w)
		feeds[id] = make(chan Assignment, 4)
		mustAttach(t, eng, id)
	}

	var wg sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		id := fmt.Sprintf("w%d", w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				case a := <-feeds[id]:
					if _, _, err := eng.Complete(a.TaskID, id, "ok"); err == nil {
						// Concurrent grading may race task GC; losing one
						// grade is the test's point.
						eng.Feedback(a.TaskID, true)
					}
				}
			}
		}()
	}
	const total = 400
	for i := 0; i < total; i++ {
		mustSubmit(t, eng, taskq.Task{
			ID:       fmt.Sprintf("task%04d", i),
			Deadline: clk.Now().Add(time.Hour),
			Reward:   1,
		})
		eng.TryBatch()
		if i%16 == 0 {
			eng.TickMonitor()
			eng.TickExpiry()
		}
	}
	// Drain: batches keep running until everything terminal.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, _, completed, expired := eng.Tasks().Counts()
		if completed+expired == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain stalled: %d terminal of %d", completed+expired, total)
		}
		clk.Advance(time.Millisecond) // re-arm the period trigger for refused re-deliveries
		eng.TryBatch()
	}
	close(done)
	wg.Wait()
	st := eng.Stats()
	if st.Received != total || st.Completed+st.Expired != total {
		t.Fatalf("stats = %+v, want %d received and terminal", st, total)
	}
}
