// Package taskq is REACT's Task Management Component (§III.A): the
// authoritative registry of every task submitted to a region server. It
// tracks each task's assignment state, the time elapsed since assignment,
// the remaining time to its deadline, and expiry. The Scheduling Component
// reads the unassigned set from here; the Dynamic Assignment Component
// returns tasks here when it predicts a deadline miss.
package taskq

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"react/internal/clock"
	"react/internal/region"
)

// Status is a task's lifecycle state.
type Status int

// Task lifecycle: submitted tasks are Unassigned until the scheduler matches
// them, may bounce between Assigned and Unassigned on reassignment, and
// terminate as Completed (result delivered) or Expired (deadline passed).
const (
	Unassigned Status = iota
	Assigned
	Completed
	Expired
)

// String names the status for logs and tables.
func (s Status) String() string {
	switch s {
	case Unassigned:
		return "unassigned"
	case Assigned:
		return "assigned"
	case Completed:
		return "completed"
	case Expired:
		return "expired"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Task is the requester-supplied description of a unit of crowd work
// (§III.B): ⟨id, latitude, longitude, deadline, reward, description⟩ plus
// the category used by the quality weight function.
type Task struct {
	ID          string
	Location    region.Point
	Deadline    time.Time // absolute instant the soft deadline expires
	Reward      float64
	Category    string
	Description string
	Submitted   time.Time
}

// Record is the manager's view of a task: the task itself plus assignment
// bookkeeping.
type Record struct {
	Task       Task
	Status     Status
	Worker     string    // current or last worker ("" if never assigned)
	AssignedAt time.Time // zero unless Status == Assigned
	FinishedAt time.Time // zero unless terminal
	Attempts   int       // number of assignments performed (≥1 after first)
	Graded     bool      // requester feedback already recorded
}

// Errors reported by the manager.
var (
	ErrDuplicateTask = errors.New("taskq: duplicate task id")
	ErrUnknownTask   = errors.New("taskq: unknown task id")
	ErrBadState      = errors.New("taskq: operation invalid in current status")
	ErrPastDeadline  = errors.New("taskq: deadline not after submission")
)

// EventKind names a state mutation reported to the manager's sink.
type EventKind uint8

// The task-lifecycle mutations a sink observes. Every kind carries the
// full post-mutation record, so a consumer can treat the stream as a
// per-task sequence of states rather than reconstructing transitions.
const (
	EvSubmit EventKind = iota + 1
	EvAssign
	EvUnassign
	EvComplete
	EvExpire
	EvForget
)

// Cause vocabulary for Event.Cause: why a mutation happened. The manager
// stamps the kinds it decides itself (submissions, completions, expiry);
// callers of Unassign supply the revocation causes, since only the
// component taking the assignment back knows why.
const (
	CauseSubmit        = "submit"         // requester submitted the task
	CauseBatch         = "batch"          // a scheduling round applied the binding
	CauseWorker        = "worker"         // the worker reported a completion
	CauseEq2           = "eq2"            // the Eq. 2 monitor predicted a deadline miss
	CauseDetach        = "detach"         // the holder's connection dropped
	CauseDeregister    = "deregister"     // the holder left the platform entirely
	CauseUndeliverable = "undeliverable"  // transport refused the fresh assignment
	CauseRecoverySweep = "recovery-sweep" // crash recovery returned an orphaned binding
	CauseDeadline      = "deadline"       // the task's deadline passed
	CauseRetention     = "retention"      // retention GC dropped a terminal record
	CauseExplicit      = "explicit"       // a direct Forget call
	CauseShed          = "shed"           // admission control shed the task under overload
)

// Event is one observed mutation: the kind plus a copy of the record as it
// stands after the mutation (for EvForget, as it stood just before removal),
// annotated with when it took effect, which worker was involved, and why.
type Event struct {
	Kind   EventKind
	Record Record
	// At is the instant the mutation took effect, read from the manager's
	// clock under the same mutex hold that applied it.
	At time.Time
	// Worker is the worker involved: the assignee on EvAssign, the holder
	// whose binding was revoked on EvUnassign (Record.Worker is already
	// cleared by then), the answerer on EvComplete, the last holder on
	// EvExpire/EvForget ("" if the task never reached a worker).
	Worker string
	// Cause is one of the Cause* constants above.
	Cause string
	// Prob is the Eq. 2 completion probability behind a CauseEq2
	// revocation (0 otherwise).
	Prob float64
}

// Manager is the Task Management Component. It is safe for concurrent use.
type Manager struct {
	clk     clock.Clock
	mu      sync.Mutex
	records map[string]*Record
	counts  [4]int
	// unassignedHW is the peak unassigned backlog ever observed — the
	// quantity that reveals batch-trigger starvation or matcher collapse
	// on a dashboard long after the spike itself has drained.
	unassignedHW int
	// sink, when set, observes every lifecycle mutation. It is invoked
	// while m.mu is held, which is what gives a write-ahead log its
	// per-task total order: no second mutation of the same task can start
	// until the sink has sequenced the first. Implementations must be
	// fast, must not block, and must not call back into the manager.
	sink func(Event)
}

// NewManager creates a manager reading time from clk.
func NewManager(clk clock.Clock) *Manager {
	return &Manager{clk: clk, records: make(map[string]*Record)}
}

// SetSink installs the mutation observer (see Event). It must be set
// before traffic: the manager does not synchronize sink replacement with
// in-flight operations beyond its own mutex.
func (m *Manager) SetSink(fn func(Event)) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.sink = fn
}

// emit reports a mutation to the sink. Callers hold m.mu.
func (m *Manager) emit(kind EventKind, r *Record, at time.Time, worker, cause string, prob float64) {
	if m.sink != nil {
		m.sink(Event{Kind: kind, Record: *r, At: at, Worker: worker, Cause: cause, Prob: prob})
	}
}

// Restore inserts a record verbatim — status, worker, timestamps, attempt
// and grading state — as recovery bulk-loads a journal snapshot into a
// fresh manager. It bypasses the lifecycle checks Submit enforces (a
// restored record may already be terminal) and emits no sink event: the
// journal already holds this state.
func (m *Manager) Restore(r Record) error {
	if r.Task.ID == "" {
		return fmt.Errorf("%w: restore with empty id", ErrUnknownTask)
	}
	if r.Status < Unassigned || r.Status > Expired {
		return fmt.Errorf("%w: restore %q with status %d", ErrBadState, r.Task.ID, int(r.Status))
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.records[r.Task.ID]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateTask, r.Task.ID)
	}
	rec := r
	m.records[r.Task.ID] = &rec
	m.counts[r.Status]++
	if m.counts[Unassigned] > m.unassignedHW {
		m.unassignedHW = m.counts[Unassigned]
	}
	return nil
}

// Submit registers a new unassigned task. The task's Submitted field is
// stamped with the current instant; its deadline must lie in the future.
func (m *Manager) Submit(t Task) error {
	now := m.clk.Now()
	if !t.Deadline.After(now) {
		return fmt.Errorf("%w: task %q deadline %v at %v", ErrPastDeadline, t.ID, t.Deadline, now)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.records[t.ID]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateTask, t.ID)
	}
	t.Submitted = now
	r := &Record{Task: t, Status: Unassigned}
	m.records[t.ID] = r
	m.counts[Unassigned]++
	if m.counts[Unassigned] > m.unassignedHW {
		m.unassignedHW = m.counts[Unassigned]
	}
	m.emit(EvSubmit, r, now, "", CauseSubmit, 0)
	return nil
}

// Get returns a copy of the record for id.
func (m *Manager) Get(id string) (Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.records[id]
	if !ok {
		return Record{}, false
	}
	return *r, true
}

// Unassigned snapshots the tasks currently waiting for a worker, oldest
// submission first (stable order keeps batch construction deterministic).
func (m *Manager) Unassigned() []Task {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Task, 0, m.counts[Unassigned])
	for _, r := range m.records {
		if r.Status == Unassigned {
			out = append(out, r.Task)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Submitted.Equal(out[j].Submitted) {
			return out[i].Submitted.Before(out[j].Submitted)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// UnassignedCount reports how many tasks await assignment — the batch
// trigger reads this every arrival.
func (m *Manager) UnassignedCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[Unassigned]
}

// Assign binds an unassigned task to a worker, stamping AssignedAt.
func (m *Manager) Assign(taskID, workerID string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.records[taskID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTask, taskID)
	}
	if r.Status != Unassigned {
		return fmt.Errorf("%w: assign %q while %v", ErrBadState, taskID, r.Status)
	}
	m.transition(r, Assigned)
	r.Worker = workerID
	r.AssignedAt = m.clk.Now()
	r.Attempts++
	m.emit(EvAssign, r, r.AssignedAt, workerID, CauseBatch, 0)
	return nil
}

// Unassign returns an assigned task to the pool (worker abandoned it, or
// the Dynamic Assignment Component predicted a miss). The attempt count is
// preserved so profiles of flaky workers can be penalized by callers.
// cause says which component took the assignment back (one of the Cause*
// constants); prob is the Eq. 2 completion probability for CauseEq2
// revocations (0 otherwise). Both are carried on the emitted event.
func (m *Manager) Unassign(taskID, cause string, prob float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.records[taskID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTask, taskID)
	}
	if r.Status != Assigned {
		return fmt.Errorf("%w: unassign %q while %v", ErrBadState, taskID, r.Status)
	}
	worker := r.Worker
	m.transition(r, Unassigned)
	r.Worker = ""
	r.AssignedAt = time.Time{}
	m.emit(EvUnassign, r, m.clk.Now(), worker, cause, prob)
	return nil
}

// Complete finishes an assigned task and returns the final record. The
// caller decides whether the completion beat the deadline via MetDeadline.
func (m *Manager) Complete(taskID string) (Record, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.records[taskID]
	if !ok {
		return Record{}, fmt.Errorf("%w: %q", ErrUnknownTask, taskID)
	}
	if r.Status != Assigned {
		return Record{}, fmt.Errorf("%w: complete %q while %v", ErrBadState, taskID, r.Status)
	}
	m.transition(r, Completed)
	r.FinishedAt = m.clk.Now()
	m.emit(EvComplete, r, r.FinishedAt, r.Worker, CauseWorker, 0)
	return *r, nil
}

// ExpireDue transitions every non-terminal task whose deadline has passed
// to Expired and returns their records. REACT treats deadlines as soft, so
// an expired-while-assigned task is simply recorded as missed; the worker's
// eventual answer is discarded.
func (m *Manager) ExpireDue() []Record {
	return m.expire(true)
}

// ExpireUnassigned is ExpireDue restricted to tasks still waiting in the
// pool. The paper's evaluation uses this policy: a task already in a
// worker's hands runs to (possibly late) completion and is merely *counted*
// as missed, while a task nobody picked up by its deadline leaves the
// repository — the fate of the Greedy approach's queued tasks in §V.C.
func (m *Manager) ExpireUnassigned() []Record {
	return m.expire(false)
}

func (m *Manager) expire(includeAssigned bool) []Record {
	now := m.clk.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	var out []Record
	for _, r := range m.records {
		if r.Status != Unassigned && !(includeAssigned && r.Status == Assigned) {
			continue
		}
		if r.Task.Deadline.After(now) {
			continue
		}
		m.transition(r, Expired)
		r.FinishedAt = now
		m.emit(EvExpire, r, now, r.Worker, CauseDeadline, 0)
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task.ID < out[j].Task.ID })
	return out
}

// Shed terminates an unassigned task before its deadline because admission
// control decided the pool can no longer plausibly serve it. The record
// lands in the same terminal state as a deadline expiry (Expired — the
// requester-visible outcome is identical: no answer arrived) but the
// emitted event carries CauseShed, so the spine, journal, and any tail
// watcher can attribute the loss to overload protection rather than the
// clock. Only unassigned tasks can be shed; a task already in a worker's
// hands runs to completion.
func (m *Manager) Shed(taskID string) (Record, error) {
	now := m.clk.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.records[taskID]
	if !ok {
		return Record{}, fmt.Errorf("%w: %q", ErrUnknownTask, taskID)
	}
	if r.Status != Unassigned {
		return Record{}, fmt.Errorf("%w: shed %q while %v", ErrBadState, taskID, r.Status)
	}
	m.transition(r, Expired)
	r.FinishedAt = now
	m.emit(EvExpire, r, now, r.Worker, CauseShed, 0)
	return *r, nil
}

// RemainingTime reports the time from now until the task's deadline
// (negative once overdue).
func (m *Manager) RemainingTime(taskID string) (time.Duration, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.records[taskID]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTask, taskID)
	}
	return r.Task.Deadline.Sub(m.clk.Now()), nil
}

// Elapsed reports t_ij, the time since the task was assigned.
func (m *Manager) Elapsed(taskID string) (time.Duration, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.records[taskID]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTask, taskID)
	}
	if r.Status != Assigned {
		return 0, fmt.Errorf("%w: elapsed of %q while %v", ErrBadState, taskID, r.Status)
	}
	return m.clk.Now().Sub(r.AssignedAt), nil
}

// AssignedTasks snapshots the records currently executing, for the dynamic
// assignment monitor.
func (m *Manager) AssignedTasks() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, 0, m.counts[Assigned])
	for _, r := range m.records {
		if r.Status == Assigned {
			out = append(out, *r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task.ID < out[j].Task.ID })
	return out
}

// Counts reports how many tasks are in each state.
func (m *Manager) Counts() (unassigned, assigned, completed, expired int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.counts[Unassigned], m.counts[Assigned], m.counts[Completed], m.counts[Expired]
}

// Total reports how many tasks have ever been submitted.
func (m *Manager) Total() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.records)
}

// Forget drops a terminal task from the registry, bounding memory in
// long-running deployments. Non-terminal tasks cannot be forgotten.
func (m *Manager) Forget(taskID string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.records[taskID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTask, taskID)
	}
	if r.Status != Completed && r.Status != Expired {
		return fmt.Errorf("%w: forget %q while %v", ErrBadState, taskID, r.Status)
	}
	m.counts[r.Status]--
	delete(m.records, taskID)
	m.emit(EvForget, r, m.clk.Now(), r.Worker, CauseExplicit, 0)
	return nil
}

// MarkGraded records that the requester's feedback for a completed task has
// been consumed, exactly once: a second call fails, protecting the Eq. 1
// accuracy counters from double grading.
func (m *Manager) MarkGraded(taskID string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	r, ok := m.records[taskID]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTask, taskID)
	}
	if r.Status != Completed {
		return fmt.Errorf("%w: grade %q while %v", ErrBadState, taskID, r.Status)
	}
	if r.Graded {
		return fmt.Errorf("%w: %q already graded", ErrBadState, taskID)
	}
	r.Graded = true
	return nil
}

// ForgetTerminatedBefore drops every completed or expired task whose
// terminal instant precedes cutoff, returning how many were removed. A
// long-running server calls this periodically to bound registry memory;
// REACT's own components never read terminal records after the requester
// has been notified.
func (m *Manager) ForgetTerminatedBefore(cutoff time.Time) int {
	now := m.clk.Now()
	m.mu.Lock()
	defer m.mu.Unlock()
	removed := 0
	for id, r := range m.records {
		if r.Status != Completed && r.Status != Expired {
			continue
		}
		if r.FinishedAt.Before(cutoff) {
			m.counts[r.Status]--
			delete(m.records, id)
			m.emit(EvForget, r, now, r.Worker, CauseRetention, 0)
			removed++
		}
	}
	return removed
}

func (m *Manager) transition(r *Record, to Status) {
	m.counts[r.Status]--
	m.counts[to]++
	r.Status = to
	if to == Unassigned && m.counts[Unassigned] > m.unassignedHW {
		m.unassignedHW = m.counts[Unassigned]
	}
}

// UnassignedHighWater reports the peak unassigned backlog this manager has
// ever held (submissions plus Eq. 2 / detach returns to the pool).
func (m *Manager) UnassignedHighWater() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.unassignedHW
}

// MetDeadline reports whether a completed record finished at or before its
// deadline.
func (r Record) MetDeadline() bool {
	return r.Status == Completed && !r.FinishedAt.After(r.Task.Deadline)
}

// ExecTime is ExecTime_ij: assignment to completion, 0 for non-terminal or
// never-assigned records.
func (r Record) ExecTime() time.Duration {
	if r.FinishedAt.IsZero() || r.AssignedAt.IsZero() {
		return 0
	}
	return r.FinishedAt.Sub(r.AssignedAt)
}

// TotalTime is the requester-visible latency: submission to completion.
func (r Record) TotalTime() time.Duration {
	if r.FinishedAt.IsZero() {
		return 0
	}
	return r.FinishedAt.Sub(r.Task.Submitted)
}
