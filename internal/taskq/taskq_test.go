package taskq

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"react/internal/clock"
	"react/internal/region"
)

func newTestManager() (*Manager, *clock.Virtual) {
	clk := clock.NewVirtual(clock.Epoch)
	return NewManager(clk), clk
}

func testTask(id string, deadline time.Duration) Task {
	return Task{
		ID:          id,
		Location:    region.Point{Lat: 37.98, Lon: 23.73},
		Deadline:    clock.Epoch.Add(deadline),
		Reward:      0.05,
		Category:    "traffic",
		Description: "Is road A congested?",
	}
}

func TestSubmitAndCounts(t *testing.T) {
	m, _ := newTestManager()
	if err := m.Submit(testTask("t1", 90*time.Second)); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(testTask("t2", 60*time.Second)); err != nil {
		t.Fatal(err)
	}
	u, a, c, e := m.Counts()
	if u != 2 || a != 0 || c != 0 || e != 0 {
		t.Fatalf("counts = %d/%d/%d/%d", u, a, c, e)
	}
	if m.Total() != 2 {
		t.Fatalf("Total = %d", m.Total())
	}
}

func TestSubmitRejectsDuplicateAndPastDeadline(t *testing.T) {
	m, clk := newTestManager()
	if err := m.Submit(testTask("t1", time.Minute)); err != nil {
		t.Fatal(err)
	}
	if err := m.Submit(testTask("t1", time.Minute)); !errors.Is(err, ErrDuplicateTask) {
		t.Fatalf("dup err = %v", err)
	}
	clk.Advance(2 * time.Minute)
	if err := m.Submit(testTask("t2", time.Minute)); !errors.Is(err, ErrPastDeadline) {
		t.Fatalf("past deadline err = %v", err)
	}
}

func TestSubmitStampsSubmittedTime(t *testing.T) {
	m, clk := newTestManager()
	clk.Advance(10 * time.Second)
	task := testTask("t1", time.Minute)
	task.Submitted = clock.Epoch.Add(-time.Hour) // caller-provided junk is overwritten
	if err := m.Submit(task); err != nil {
		t.Fatal(err)
	}
	r, _ := m.Get("t1")
	if !r.Task.Submitted.Equal(clk.Now()) {
		t.Fatalf("Submitted = %v, want %v", r.Task.Submitted, clk.Now())
	}
}

func TestAssignCompleteLifecycle(t *testing.T) {
	m, clk := newTestManager()
	m.Submit(testTask("t1", 90*time.Second))
	if err := m.Assign("t1", "alice"); err != nil {
		t.Fatal(err)
	}
	r, _ := m.Get("t1")
	if r.Status != Assigned || r.Worker != "alice" || r.Attempts != 1 {
		t.Fatalf("record after assign: %+v", r)
	}
	clk.Advance(15 * time.Second)
	if el, err := m.Elapsed("t1"); err != nil || el != 15*time.Second {
		t.Fatalf("Elapsed = %v, %v", el, err)
	}
	rec, err := m.Complete("t1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != Completed || !rec.MetDeadline() {
		t.Fatalf("completed record: %+v", rec)
	}
	if rec.ExecTime() != 15*time.Second {
		t.Fatalf("ExecTime = %v", rec.ExecTime())
	}
	if rec.TotalTime() != 15*time.Second {
		t.Fatalf("TotalTime = %v", rec.TotalTime())
	}
}

func TestCompleteAfterDeadlineMisses(t *testing.T) {
	m, clk := newTestManager()
	m.Submit(testTask("t1", 30*time.Second))
	m.Assign("t1", "bob")
	clk.Advance(45 * time.Second)
	rec, err := m.Complete("t1")
	if err != nil {
		t.Fatal(err)
	}
	if rec.MetDeadline() {
		t.Fatal("late completion reported as meeting deadline")
	}
}

func TestStateMachineRejections(t *testing.T) {
	m, _ := newTestManager()
	m.Submit(testTask("t1", time.Minute))
	if err := m.Unassign("t1", CauseWorker, 0); !errors.Is(err, ErrBadState) {
		t.Fatalf("unassign unassigned err = %v", err)
	}
	if _, err := m.Complete("t1"); !errors.Is(err, ErrBadState) {
		t.Fatalf("complete unassigned err = %v", err)
	}
	if err := m.Assign("nope", "w"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("assign unknown err = %v", err)
	}
	m.Assign("t1", "w")
	if err := m.Assign("t1", "w2"); !errors.Is(err, ErrBadState) {
		t.Fatalf("double assign err = %v", err)
	}
	m.Complete("t1")
	if err := m.Unassign("t1", CauseWorker, 0); !errors.Is(err, ErrBadState) {
		t.Fatalf("unassign completed err = %v", err)
	}
	if _, err := m.Elapsed("t1"); !errors.Is(err, ErrBadState) {
		t.Fatalf("elapsed of completed err = %v", err)
	}
}

func TestReassignmentKeepsAttempts(t *testing.T) {
	m, clk := newTestManager()
	m.Submit(testTask("t1", 5*time.Minute))
	m.Assign("t1", "w1")
	clk.Advance(10 * time.Second)
	if err := m.Unassign("t1", CauseWorker, 0); err != nil {
		t.Fatal(err)
	}
	r, _ := m.Get("t1")
	if r.Status != Unassigned || r.Worker != "" || r.Attempts != 1 {
		t.Fatalf("after unassign: %+v", r)
	}
	m.Assign("t1", "w2")
	r, _ = m.Get("t1")
	if r.Attempts != 2 || r.Worker != "w2" {
		t.Fatalf("after reassign: %+v", r)
	}
	// AssignedAt reflects the latest assignment only.
	if el, _ := m.Elapsed("t1"); el != 0 {
		t.Fatalf("Elapsed after fresh reassign = %v", el)
	}
}

func TestUnassignedSnapshotOrdering(t *testing.T) {
	m, clk := newTestManager()
	m.Submit(testTask("b", 10*time.Minute))
	clk.Advance(time.Second)
	m.Submit(testTask("a", 10*time.Minute))
	clk.Advance(time.Second)
	m.Submit(testTask("c", 10*time.Minute))
	got := m.Unassigned()
	if len(got) != 3 || got[0].ID != "b" || got[1].ID != "a" || got[2].ID != "c" {
		t.Fatalf("order = %v", []string{got[0].ID, got[1].ID, got[2].ID})
	}
	m.Assign("a", "w")
	if m.UnassignedCount() != 2 {
		t.Fatalf("UnassignedCount = %d", m.UnassignedCount())
	}
}

func TestExpireDue(t *testing.T) {
	m, clk := newTestManager()
	m.Submit(testTask("short", 30*time.Second))
	m.Submit(testTask("long", 10*time.Minute))
	m.Submit(testTask("running", 40*time.Second))
	m.Assign("running", "w")
	clk.Advance(time.Minute)
	expired := m.ExpireDue()
	if len(expired) != 2 {
		t.Fatalf("expired %d tasks, want 2", len(expired))
	}
	ids := []string{expired[0].Task.ID, expired[1].Task.ID}
	if ids[0] != "running" || ids[1] != "short" {
		t.Fatalf("expired ids = %v", ids)
	}
	for _, r := range expired {
		if r.Status != Expired || r.MetDeadline() {
			t.Fatalf("expired record: %+v", r)
		}
	}
	// Idempotent: second call finds nothing new.
	if again := m.ExpireDue(); len(again) != 0 {
		t.Fatalf("repeat ExpireDue returned %d", len(again))
	}
	u, a, c, e := m.Counts()
	if u != 1 || a != 0 || c != 0 || e != 2 {
		t.Fatalf("counts = %d/%d/%d/%d", u, a, c, e)
	}
}

func TestRemainingTime(t *testing.T) {
	m, clk := newTestManager()
	m.Submit(testTask("t1", 90*time.Second))
	clk.Advance(30 * time.Second)
	if rem, err := m.RemainingTime("t1"); err != nil || rem != 60*time.Second {
		t.Fatalf("RemainingTime = %v, %v", rem, err)
	}
	clk.Advance(2 * time.Minute)
	if rem, _ := m.RemainingTime("t1"); rem >= 0 {
		t.Fatalf("overdue RemainingTime = %v, want negative", rem)
	}
	if _, err := m.RemainingTime("ghost"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("unknown task err = %v", err)
	}
}

func TestAssignedTasksSnapshot(t *testing.T) {
	m, _ := newTestManager()
	for i := 0; i < 5; i++ {
		m.Submit(testTask(fmt.Sprintf("t%d", i), time.Minute))
	}
	m.Assign("t1", "w1")
	m.Assign("t3", "w3")
	got := m.AssignedTasks()
	if len(got) != 2 || got[0].Task.ID != "t1" || got[1].Task.ID != "t3" {
		t.Fatalf("AssignedTasks = %+v", got)
	}
}

func TestForget(t *testing.T) {
	m, _ := newTestManager()
	m.Submit(testTask("t1", time.Minute))
	if err := m.Forget("t1"); !errors.Is(err, ErrBadState) {
		t.Fatalf("forget active task err = %v", err)
	}
	m.Assign("t1", "w")
	m.Complete("t1")
	if err := m.Forget("t1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Get("t1"); ok {
		t.Fatal("forgotten task still present")
	}
	if m.Total() != 0 {
		t.Fatalf("Total = %d", m.Total())
	}
	_, _, c, _ := m.Counts()
	if c != 0 {
		t.Fatalf("completed count = %d after forget", c)
	}
	if err := m.Forget("t1"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("double forget err = %v", err)
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Unassigned: "unassigned", Assigned: "assigned",
		Completed: "completed", Expired: "expired", Status(9): "status(9)",
	} {
		if got := s.String(); got != want {
			t.Errorf("Status(%d).String() = %q", int(s), got)
		}
	}
}

func TestConcurrentSubmitAssign(t *testing.T) {
	m, _ := newTestManager()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := fmt.Sprintf("g%d-t%d", g, i)
				if err := m.Submit(testTask(id, time.Hour)); err != nil {
					t.Error(err)
					return
				}
				if err := m.Assign(id, "w"); err != nil {
					t.Error(err)
					return
				}
				if _, err := m.Complete(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	u, a, c, e := m.Counts()
	if u != 0 || a != 0 || c != 800 || e != 0 {
		t.Fatalf("counts = %d/%d/%d/%d", u, a, c, e)
	}
}

func TestRecordTimesZeroForNonTerminal(t *testing.T) {
	m, _ := newTestManager()
	m.Submit(testTask("t1", time.Minute))
	r, _ := m.Get("t1")
	if r.ExecTime() != 0 || r.TotalTime() != 0 {
		t.Fatalf("non-terminal times = %v/%v", r.ExecTime(), r.TotalTime())
	}
}

func TestExpireUnassignedLeavesAssignedRunning(t *testing.T) {
	m, clk := newTestManager()
	m.Submit(testTask("queued", 30*time.Second))
	m.Submit(testTask("running", 30*time.Second))
	m.Assign("running", "w")
	clk.Advance(time.Minute)
	expired := m.ExpireUnassigned()
	if len(expired) != 1 || expired[0].Task.ID != "queued" {
		t.Fatalf("expired = %+v", expired)
	}
	// The assigned task is still running and completes late.
	rec, err := m.Complete("running")
	if err != nil {
		t.Fatal(err)
	}
	if rec.MetDeadline() {
		t.Fatal("late completion met deadline")
	}
	u, a, c, e := m.Counts()
	if u != 0 || a != 0 || c != 1 || e != 1 {
		t.Fatalf("counts = %d/%d/%d/%d", u, a, c, e)
	}
}

func TestForgetTerminatedBefore(t *testing.T) {
	m, clk := newTestManager()
	// old: completed at t+10s. recent: completed at t+70s. live: assigned.
	m.Submit(testTask("old", 10*time.Minute))
	m.Assign("old", "w")
	clk.Advance(10 * time.Second)
	m.Complete("old")
	m.Submit(testTask("recent", 10*time.Minute))
	m.Assign("recent", "w")
	clk.Advance(time.Minute)
	m.Complete("recent")
	m.Submit(testTask("live", 10*time.Minute))
	m.Assign("live", "w")

	cutoff := clock.Epoch.Add(30 * time.Second)
	if got := m.ForgetTerminatedBefore(cutoff); got != 1 {
		t.Fatalf("removed %d, want 1", got)
	}
	if _, ok := m.Get("old"); ok {
		t.Fatal("old record survived GC")
	}
	if _, ok := m.Get("recent"); !ok {
		t.Fatal("recent record lost")
	}
	if _, ok := m.Get("live"); !ok {
		t.Fatal("live record lost")
	}
	_, a, c, _ := m.Counts()
	if a != 1 || c != 1 {
		t.Fatalf("counts after GC: assigned=%d completed=%d", a, c)
	}
	// Idempotent.
	if got := m.ForgetTerminatedBefore(cutoff); got != 0 {
		t.Fatalf("second GC removed %d", got)
	}
}

// Property: any sequence of operations keeps the per-status counts equal to
// a full recount, and status transitions stay legal.
func TestQuickCountsStayConsistent(t *testing.T) {
	f := func(ops []uint8) bool {
		clk := clock.NewVirtual(clock.Epoch)
		m := NewManager(clk)
		next := 0
		ids := []string{}
		for _, op := range ops {
			switch op % 6 {
			case 0:
				id := fmt.Sprintf("t%d", next)
				next++
				if m.Submit(Task{ID: id, Deadline: clk.Now().Add(time.Minute)}) == nil {
					ids = append(ids, id)
				}
			case 1:
				if len(ids) > 0 {
					m.Assign(ids[int(op)%len(ids)], "w")
				}
			case 2:
				if len(ids) > 0 {
					m.Unassign(ids[int(op)%len(ids)], CauseWorker, 0)
				}
			case 3:
				if len(ids) > 0 {
					m.Complete(ids[int(op)%len(ids)])
				}
			case 4:
				clk.Advance(time.Duration(op) * time.Second)
				m.ExpireUnassigned()
			case 5:
				m.ExpireDue()
			}
		}
		u, a, c, e := m.Counts()
		var ru, ra, rc, re int
		for _, id := range ids {
			rec, ok := m.Get(id)
			if !ok {
				return false
			}
			switch rec.Status {
			case Unassigned:
				ru++
			case Assigned:
				ra++
			case Completed:
				rc++
			case Expired:
				re++
			}
		}
		return u == ru && a == ra && c == rc && e == re && m.Total() == len(ids)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(71))}); err != nil {
		t.Fatal(err)
	}
}

func TestMarkGradedOnce(t *testing.T) {
	m, _ := newTestManager()
	m.Submit(testTask("t1", time.Minute))
	if err := m.MarkGraded("t1"); !errors.Is(err, ErrBadState) {
		t.Fatalf("grade before completion err = %v", err)
	}
	m.Assign("t1", "w")
	m.Complete("t1")
	if err := m.MarkGraded("t1"); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkGraded("t1"); !errors.Is(err, ErrBadState) {
		t.Fatalf("double grade err = %v", err)
	}
	if err := m.MarkGraded("ghost"); !errors.Is(err, ErrUnknownTask) {
		t.Fatalf("unknown grade err = %v", err)
	}
	r, _ := m.Get("t1")
	if !r.Graded {
		t.Fatal("record not marked graded")
	}
}

func TestUnassignedHighWater(t *testing.T) {
	m, _ := newTestManager()
	if hw := m.UnassignedHighWater(); hw != 0 {
		t.Fatalf("fresh manager high-water = %d, want 0", hw)
	}
	for i := 0; i < 3; i++ {
		if err := m.Submit(testTask(fmt.Sprintf("t%d", i), 90*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if hw := m.UnassignedHighWater(); hw != 3 {
		t.Fatalf("high-water after 3 submissions = %d, want 3", hw)
	}
	// Draining the backlog must not lower the mark.
	for i := 0; i < 3; i++ {
		if err := m.Assign(fmt.Sprintf("t%d", i), "w1"); err != nil {
			t.Fatal(err)
		}
	}
	if hw := m.UnassignedHighWater(); hw != 3 {
		t.Fatalf("high-water after drain = %d, want 3", hw)
	}
	// A return to the pool counts toward a new peak: 2 in pool < 3, then
	// submissions push past the old mark.
	if err := m.Unassign("t0", CauseWorker, 0); err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 6; i++ {
		if err := m.Submit(testTask(fmt.Sprintf("t%d", i), 90*time.Second)); err != nil {
			t.Fatal(err)
		}
	}
	if hw := m.UnassignedHighWater(); hw != 4 {
		t.Fatalf("high-water after refill = %d, want 4", hw)
	}
}
