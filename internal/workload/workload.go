// Package workload generates the task streams of §V.C/D: tasks arrive at a
// configured rate (1.5–12.5 tasks/s in the scalability sweep, 9.375 tasks/s
// in the main experiment — deliberately above the AMT arrival rate the
// paper cites), each with a location inside the region, a 60–120 s soft
// deadline derived from the case study, a small monetary reward, and a
// category for the quality weight function.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"react/internal/crowd"
	"react/internal/region"
	"react/internal/taskq"
)

// Arrival produces interarrival gaps for a task stream.
type Arrival interface {
	// Next returns the gap until the next task arrives.
	Next(rng *rand.Rand) time.Duration
}

// Poisson is a memoryless arrival process with the given mean rate in
// tasks per second — the natural model for independent requesters.
type Poisson struct {
	Rate float64
}

// Next draws an exponential interarrival time.
func (p Poisson) Next(rng *rand.Rand) time.Duration {
	if p.Rate <= 0 {
		return time.Hour // effectively stalls the stream
	}
	return time.Duration(rng.ExpFloat64() / p.Rate * float64(time.Second))
}

// Constant spaces arrivals exactly 1/Rate apart — the paper's fixed-rate
// formulation ("receives tasks in a rate of 9.375 tasks/second").
type Constant struct {
	Rate float64
}

// Next returns the fixed gap.
func (c Constant) Next(*rand.Rand) time.Duration {
	if c.Rate <= 0 {
		return time.Hour
	}
	return time.Duration(float64(time.Second) / c.Rate)
}

// DefaultCategories are the location-based task types the paper's intro
// motivates: traffic checks, price checks, point-of-interest surveys,
// photo/event reports.
var DefaultCategories = []string{"traffic", "price-check", "poi-survey", "photo"}

// Generator stamps out tasks. Zero fields are filled by Normalize with the
// paper's experimental settings.
type Generator struct {
	Prefix       string            // task id prefix (default "task")
	Area         region.Rect       // tasks land uniformly here
	DeadlineMin  time.Duration     // soft deadline band (default 60 s)
	DeadlineMax  time.Duration     // (default 120 s)
	RewardMin    float64           // monetary reward band (default 0.01)
	RewardMax    float64           // (default 0.10 — 90 % of AMT HITs pay below this)
	Categories   []string          // drawn uniformly (default DefaultCategories)
	Descriptions map[string]string // optional per-category description template
}

// Normalize fills defaults.
func (g Generator) Normalize() Generator {
	if g.Prefix == "" {
		g.Prefix = "task"
	}
	if !g.Area.Valid() {
		g.Area = region.Rect{MinLat: 37.8, MinLon: 23.5, MaxLat: 38.2, MaxLon: 24.0}
	}
	if g.DeadlineMin <= 0 {
		g.DeadlineMin = crowd.DeadlineMin
	}
	if g.DeadlineMax < g.DeadlineMin {
		g.DeadlineMax = crowd.DeadlineMax
		if g.DeadlineMax < g.DeadlineMin {
			g.DeadlineMax = g.DeadlineMin
		}
	}
	if g.RewardMax <= 0 {
		g.RewardMin, g.RewardMax = 0.01, 0.10
	}
	if len(g.Categories) == 0 {
		g.Categories = DefaultCategories
	}
	return g
}

// Make builds task number seq arriving at now. Callers must use a single
// RNG stream per generator for reproducible workloads.
func (g Generator) Make(seq int, now time.Time, rng *rand.Rand) taskq.Task {
	g = g.Normalize()
	deadline := g.DeadlineMin
	if span := g.DeadlineMax - g.DeadlineMin; span > 0 {
		deadline += time.Duration(rng.Int63n(int64(span) + 1))
	}
	category := g.Categories[rng.Intn(len(g.Categories))]
	desc := g.Descriptions[category]
	if desc == "" {
		desc = fmt.Sprintf("%s request", category)
	}
	return taskq.Task{
		ID:          fmt.Sprintf("%s-%06d", g.Prefix, seq),
		Location:    g.Area.RandomPoint(rng),
		Deadline:    now.Add(deadline),
		Reward:      g.RewardMin + rng.Float64()*(g.RewardMax-g.RewardMin),
		Category:    category,
		Description: desc,
	}
}

// Stream couples a generator with an arrival process and yields tasks in
// submission order, tracking virtual time internally.
type Stream struct {
	Gen     Generator
	Arrival Arrival
	rng     *rand.Rand
	seq     int
	next    time.Time
}

// NewStream starts a stream whose first task arrives one interarrival gap
// after start.
func NewStream(gen Generator, arrival Arrival, start time.Time, rng *rand.Rand) *Stream {
	s := &Stream{Gen: gen.Normalize(), Arrival: arrival, rng: rng}
	s.next = start.Add(arrival.Next(rng))
	return s
}

// Peek reports when the next task arrives.
func (s *Stream) Peek() time.Time { return s.next }

// Take returns the next task, stamped at its arrival instant, and advances
// the stream.
func (s *Stream) Take() taskq.Task {
	t := s.Gen.Make(s.seq, s.next, s.rng)
	s.seq++
	s.next = s.next.Add(s.Arrival.Next(s.rng))
	return t
}

// Emitted reports how many tasks the stream has produced.
func (s *Stream) Emitted() int { return s.seq }
