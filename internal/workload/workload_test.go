package workload

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"

	"react/internal/clock"
	"react/internal/crowd"
)

func TestPoissonMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Poisson{Rate: 9.375}
	var total time.Duration
	const n = 50000
	for i := 0; i < n; i++ {
		total += p.Next(rng)
	}
	gotRate := float64(n) / total.Seconds()
	if math.Abs(gotRate-9.375)/9.375 > 0.03 {
		t.Fatalf("empirical rate = %v, want ≈9.375", gotRate)
	}
}

func TestPoissonZeroRateStalls(t *testing.T) {
	if got := (Poisson{}).Next(rand.New(rand.NewSource(1))); got < time.Minute {
		t.Fatalf("zero-rate gap = %v", got)
	}
}

func TestConstantSpacing(t *testing.T) {
	c := Constant{Rate: 12.5}
	want := 80 * time.Millisecond
	for i := 0; i < 5; i++ {
		if got := c.Next(nil); got != want {
			t.Fatalf("gap = %v, want %v", got, want)
		}
	}
	if got := (Constant{}).Next(nil); got < time.Minute {
		t.Fatalf("zero-rate gap = %v", got)
	}
}

func TestGeneratorDefaults(t *testing.T) {
	g := Generator{}.Normalize()
	if g.Prefix != "task" || g.DeadlineMin != crowd.DeadlineMin ||
		g.DeadlineMax != crowd.DeadlineMax || g.RewardMax != 0.10 ||
		len(g.Categories) != len(DefaultCategories) {
		t.Fatalf("defaults = %+v", g)
	}
	if !g.Area.Valid() {
		t.Fatal("default area invalid")
	}
}

func TestMakeTaskFields(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := Generator{Prefix: "exp"}
	now := clock.Epoch
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		task := g.Make(i, now, rng)
		if !strings.HasPrefix(task.ID, "exp-") {
			t.Fatalf("id = %q", task.ID)
		}
		if seen[task.ID] {
			t.Fatalf("duplicate id %q", task.ID)
		}
		seen[task.ID] = true
		d := task.Deadline.Sub(now)
		if d < crowd.DeadlineMin || d > crowd.DeadlineMax {
			t.Fatalf("deadline offset %v outside 60-120s", d)
		}
		if task.Reward < 0.01 || task.Reward > 0.10 {
			t.Fatalf("reward %v outside band", task.Reward)
		}
		if task.Category == "" || task.Description == "" {
			t.Fatalf("task missing category/description: %+v", task)
		}
		if !g.Normalize().Area.Contains(task.Location) {
			t.Fatalf("location %v outside area", task.Location)
		}
	}
}

func TestMakeCoversAllCategories(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := Generator{}
	counts := map[string]int{}
	for i := 0; i < 4000; i++ {
		counts[g.Make(i, clock.Epoch, rng).Category]++
	}
	for _, c := range DefaultCategories {
		if counts[c] < 800 { // ≈1000 expected each
			t.Fatalf("category %q drawn %d times: %v", c, counts[c], counts)
		}
	}
}

func TestCustomDescriptions(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := Generator{
		Categories:   []string{"traffic"},
		Descriptions: map[string]string{"traffic": "Is road A highly congested?"},
	}
	task := g.Make(0, clock.Epoch, rng)
	if task.Description != "Is road A highly congested?" {
		t.Fatalf("description = %q", task.Description)
	}
}

func TestStreamOrderingAndRate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := NewStream(Generator{}, Constant{Rate: 10}, clock.Epoch, rng)
	prev := clock.Epoch
	for i := 0; i < 100; i++ {
		at := s.Peek()
		if !at.After(prev) {
			t.Fatalf("arrival %d at %v not after %v", i, at, prev)
		}
		task := s.Take()
		if !task.Deadline.After(at) {
			t.Fatalf("deadline not after arrival")
		}
		prev = at
	}
	if s.Emitted() != 100 {
		t.Fatalf("Emitted = %d", s.Emitted())
	}
	// Constant 10/s ⇒ 100 tasks span 10s ending at Epoch+10s.
	if want := clock.Epoch.Add(10 * time.Second); !prev.Equal(want) {
		t.Fatalf("last arrival %v, want %v", prev, want)
	}
}

func TestStreamDeterministicPerSeed(t *testing.T) {
	a := NewStream(Generator{}, Poisson{Rate: 5}, clock.Epoch, rand.New(rand.NewSource(6)))
	b := NewStream(Generator{}, Poisson{Rate: 5}, clock.Epoch, rand.New(rand.NewSource(6)))
	for i := 0; i < 50; i++ {
		ta, tb := a.Take(), b.Take()
		if ta.ID != tb.ID || !ta.Deadline.Equal(tb.Deadline) || ta.Reward != tb.Reward {
			t.Fatalf("streams diverged at %d: %+v vs %+v", i, ta, tb)
		}
	}
}

func TestGeneratorDeadlineMaxBelowMin(t *testing.T) {
	g := Generator{DeadlineMin: 5 * time.Minute, DeadlineMax: time.Minute}.Normalize()
	if g.DeadlineMax < g.DeadlineMin {
		t.Fatalf("normalize left inverted band [%v,%v]", g.DeadlineMin, g.DeadlineMax)
	}
	task := g.Make(0, clock.Epoch, rand.New(rand.NewSource(7)))
	if d := task.Deadline.Sub(clock.Epoch); d < g.DeadlineMin {
		t.Fatalf("deadline offset %v below min", d)
	}
}
