package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"react/internal/clock"
)

func TestStepDeliversInTimeOrder(t *testing.T) {
	e := New(1)
	var got []string
	e.After(3*time.Second, "c", func(time.Time) { got = append(got, "c") })
	e.After(1*time.Second, "a", func(time.Time) { got = append(got, "a") })
	e.After(2*time.Second, "b", func(time.Time) { got = append(got, "b") })
	for e.Step() {
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("delivery order %v, want %v", got, want)
		}
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	e := New(1)
	at := e.Now().Add(time.Second)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(at, "x", func(time.Time) { got = append(got, i) })
	}
	e.Drain()
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO violated at %d: got %v", i, got)
		}
	}
}

func TestClockAdvancesToEventTime(t *testing.T) {
	e := New(1)
	target := e.Now().Add(42 * time.Second)
	var at time.Time
	e.Schedule(target, "probe", func(now time.Time) { at = now })
	e.Drain()
	if !at.Equal(target) {
		t.Fatalf("handler saw %v, want %v", at, target)
	}
	if !e.Now().Equal(target) {
		t.Fatalf("clock at %v, want %v", e.Now(), target)
	}
}

func TestSchedulePastClampsToNow(t *testing.T) {
	e := New(1)
	e.RunFor(time.Minute)
	fired := false
	e.Schedule(clock.Epoch, "stale", func(now time.Time) {
		fired = true
		if now.Before(e.Now()) {
			t.Errorf("stale event fired in the past: %v", now)
		}
	})
	e.Drain()
	if !fired {
		t.Fatal("past-scheduled event never fired")
	}
}

func TestCancelPreventsDelivery(t *testing.T) {
	e := New(1)
	fired := false
	tm := e.After(time.Second, "x", func(time.Time) { fired = true })
	if !tm.Cancel() {
		t.Fatal("first Cancel should succeed")
	}
	if tm.Cancel() {
		t.Fatal("second Cancel should report no effect")
	}
	e.Drain()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after drain", e.Pending())
	}
}

func TestCancelAfterFire(t *testing.T) {
	e := New(1)
	tm := e.After(time.Second, "x", func(time.Time) {})
	e.Drain()
	if tm.Cancel() {
		t.Fatal("Cancel after firing should report no effect")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := New(1)
	var fired []string
	e.After(10*time.Second, "early", func(time.Time) { fired = append(fired, "early") })
	e.After(100*time.Second, "late", func(time.Time) { fired = append(fired, "late") })
	deadline := e.Now().Add(50 * time.Second)
	n := e.RunUntil(deadline)
	if n != 1 {
		t.Fatalf("delivered %d events, want 1", n)
	}
	if len(fired) != 1 || fired[0] != "early" {
		t.Fatalf("fired %v, want [early]", fired)
	}
	if !e.Now().Equal(deadline) {
		t.Fatalf("clock at %v, want deadline %v", e.Now(), deadline)
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

func TestRunUntilSkipsCancelledHead(t *testing.T) {
	e := New(1)
	tm := e.After(time.Second, "dead", func(time.Time) { t.Error("cancelled head fired") })
	fired := false
	e.After(2*time.Second, "live", func(time.Time) { fired = true })
	tm.Cancel()
	e.RunFor(time.Minute)
	if !fired {
		t.Fatal("live event not delivered")
	}
}

func TestEveryTicksAtPeriodUntilStopped(t *testing.T) {
	e := New(1)
	var ticks []time.Time
	stop := e.Every(10*time.Second, "tick", func(now time.Time) {
		ticks = append(ticks, now)
		if len(ticks) == 5 {
			// stop from within the handler
		}
	})
	e.RunFor(55 * time.Second)
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks in 55s at 10s period, want 5", len(ticks))
	}
	for i, at := range ticks {
		want := clock.Epoch.Add(time.Duration(i+1) * 10 * time.Second)
		if !at.Equal(want) {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
	stop()
	before := len(ticks)
	e.RunFor(time.Minute)
	if len(ticks) != before {
		t.Fatalf("ticker kept firing after stop: %d → %d", before, len(ticks))
	}
}

func TestEveryStopFromWithinHandler(t *testing.T) {
	e := New(1)
	count := 0
	var stop func()
	stop = e.Every(time.Second, "tick", func(time.Time) {
		count++
		if count == 3 {
			stop()
		}
	})
	e.Drain()
	if count != 3 {
		t.Fatalf("ticker fired %d times, want 3", count)
	}
}

func TestEveryRejectsNonPositivePeriod(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	New(1).Every(0, "bad", func(time.Time) {})
}

func TestScheduleNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(nil) did not panic")
		}
	}()
	New(1).After(time.Second, "bad", nil)
}

func TestHandlerMaySchedule(t *testing.T) {
	e := New(1)
	depth := 0
	var recurse Handler
	recurse = func(time.Time) {
		depth++
		if depth < 100 {
			e.After(time.Millisecond, "r", recurse)
		}
	}
	e.After(time.Millisecond, "r", recurse)
	e.Drain()
	if depth != 100 {
		t.Fatalf("recursion depth %d, want 100", depth)
	}
	if got := e.Fired(); got != 100 {
		t.Fatalf("Fired() = %d, want 100", got)
	}
}

func TestRandStreamsDeterministicAndIndependent(t *testing.T) {
	a1 := New(7).Rand("workers")
	a2 := New(7).Rand("workers")
	b := New(7).Rand("tasks")
	for i := 0; i < 100; i++ {
		x, y := a1.Float64(), a2.Float64()
		if x != y {
			t.Fatalf("same seed+label diverged at %d: %v vs %v", i, x, y)
		}
	}
	// Different labels should not produce the identical stream.
	same := true
	a3 := New(7).Rand("workers")
	for i := 0; i < 16; i++ {
		if a3.Float64() != b.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Fatal("distinct labels produced identical streams")
	}
}

func TestTracerSeesEveryDelivery(t *testing.T) {
	e := New(1)
	var names []string
	e.SetTracer(func(_ time.Time, name string) { names = append(names, name) })
	e.After(time.Second, "a", func(time.Time) {})
	e.After(2*time.Second, "b", func(time.Time) {})
	e.Drain()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("tracer saw %v", names)
	}
}

// Property: for any set of non-negative delays, delivery order is sorted by
// fire time.
func TestQuickDeliveryOrderSorted(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := New(99)
		var seen []time.Time
		for _, ms := range raw {
			d := time.Duration(ms) * time.Millisecond
			e.After(d, "x", func(now time.Time) { seen = append(seen, now) })
		}
		e.Drain()
		for i := 1; i < len(seen); i++ {
			if seen[i].Before(seen[i-1]) {
				return false
			}
		}
		return len(seen) == len(raw)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleAndDrain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := New(int64(i))
		rng := e.Rand("bench")
		for j := 0; j < 1000; j++ {
			e.After(time.Duration(rng.Intn(1_000_000))*time.Microsecond, "e", func(time.Time) {})
		}
		e.Drain()
	}
}
