// Package sim is a deterministic discrete-event simulation engine. It stands
// in for the paper's PlanetLab deployment: virtual workers, requesters and
// the REACT server all run as event handlers against a virtual clock, so an
// experiment that covers tens of simulated minutes executes in milliseconds
// and yields the same series for the same seed.
//
// The engine is deliberately single-threaded: handlers run one at a time in
// timestamp order (FIFO among equal timestamps), which is what makes runs
// reproducible. Concurrency in the *deployed* middleware is exercised by the
// wire/core live mode instead.
package sim

import (
	"container/heap"
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"react/internal/clock"
)

// Handler is an event callback. It receives the virtual instant at which the
// event fires.
type Handler func(now time.Time)

// Timer is a handle to a scheduled event; it can be cancelled before firing.
type Timer struct {
	at       time.Time
	seq      uint64
	name     string
	fn       Handler
	canceled bool
	fired    bool
}

// At reports the instant the timer is scheduled to fire.
func (t *Timer) At() time.Time { return t.at }

// Name reports the label the event was scheduled with.
func (t *Timer) Name() string { return t.name }

// Cancel prevents the event from firing. It reports whether the cancellation
// had effect (false if the event already fired or was already cancelled).
func (t *Timer) Cancel() bool {
	if t.fired || t.canceled {
		return false
	}
	t.canceled = true
	return true
}

// eventQueue is a min-heap ordered by (time, sequence).
type eventQueue []*Timer

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*Timer)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return it
}

// Engine owns the virtual clock and the pending event set.
type Engine struct {
	clk    *clock.Virtual
	queue  eventQueue
	seq    uint64
	seed   int64
	fired  uint64
	tracer func(at time.Time, name string)
}

// New returns an engine whose clock starts at clock.Epoch and whose RNG
// streams derive from seed.
func New(seed int64) *Engine {
	return NewAt(clock.Epoch, seed)
}

// NewAt returns an engine whose clock starts at the given instant.
func NewAt(start time.Time, seed int64) *Engine {
	return &Engine{clk: clock.NewVirtual(start), seed: seed}
}

// Clock exposes the engine's virtual clock for components that only need to
// read time.
func (e *Engine) Clock() clock.Clock { return e.clk }

// Now reports the current virtual instant.
func (e *Engine) Now() time.Time { return e.clk.Now() }

// Pending reports the number of events still queued (including cancelled
// events not yet drained).
func (e *Engine) Pending() int { return len(e.queue) }

// Fired reports how many events have been delivered so far.
func (e *Engine) Fired() uint64 { return e.fired }

// SetTracer installs a hook invoked for every delivered event; useful in
// tests and for debugging schedules. A nil tracer disables tracing.
func (e *Engine) SetTracer(fn func(at time.Time, name string)) { e.tracer = fn }

// Schedule queues fn to run at the given instant. Scheduling in the past is
// clamped to the current instant (the event fires on the next step). The
// returned Timer may be used to cancel the event.
func (e *Engine) Schedule(at time.Time, name string, fn Handler) *Timer {
	if fn == nil {
		panic("sim: Schedule with nil handler")
	}
	if at.Before(e.clk.Now()) {
		at = e.clk.Now()
	}
	e.seq++
	t := &Timer{at: at, seq: e.seq, name: name, fn: fn}
	heap.Push(&e.queue, t)
	return t
}

// After queues fn to run d after the current instant.
func (e *Engine) After(d time.Duration, name string, fn Handler) *Timer {
	return e.Schedule(e.clk.Now().Add(d), name, fn)
}

// Every schedules fn at the given period, starting one period from now,
// until the returned stop function is called. The period must be positive.
func (e *Engine) Every(period time.Duration, name string, fn Handler) (stop func()) {
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every with non-positive period %v", period))
	}
	stopped := false
	var tick Handler
	tick = func(now time.Time) {
		if stopped {
			return
		}
		fn(now)
		if !stopped {
			e.After(period, name, tick)
		}
	}
	e.After(period, name, tick)
	return func() { stopped = true }
}

// Step delivers the single earliest pending event, advancing the clock to
// its timestamp. It reports false when no events remain.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		t := heap.Pop(&e.queue).(*Timer)
		if t.canceled {
			continue
		}
		e.clk.Set(t.at)
		t.fired = true
		e.fired++
		if e.tracer != nil {
			e.tracer(t.at, t.name)
		}
		t.fn(t.at)
		return true
	}
	return false
}

// RunUntil delivers events in order until the queue is empty or the next
// event is after deadline. The clock finishes at deadline if it was reached,
// otherwise at the last event's timestamp. It returns the number of events
// delivered.
func (e *Engine) RunUntil(deadline time.Time) (delivered uint64) {
	start := e.fired
	for len(e.queue) > 0 {
		// Peek: drain cancelled heads without advancing time.
		head := e.queue[0]
		if head.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if head.at.After(deadline) {
			break
		}
		e.Step()
	}
	e.clk.Set(deadline)
	return e.fired - start
}

// RunFor is RunUntil(now + d).
func (e *Engine) RunFor(d time.Duration) uint64 {
	return e.RunUntil(e.clk.Now().Add(d))
}

// Drain delivers every remaining event regardless of timestamp and returns
// the number delivered. It guards against runaway self-rescheduling with a
// generous cap; exceeding the cap panics, which in practice only a forgotten
// Every ticker triggers.
func (e *Engine) Drain() (delivered uint64) {
	const cap = 50_000_000
	start := e.fired
	for e.Step() {
		if e.fired-start > cap {
			panic("sim: Drain exceeded event cap; unbounded rescheduling?")
		}
	}
	return e.fired - start
}

// Rand derives a deterministic RNG stream from the engine seed and a label.
// Distinct labels give independent streams, so adding a new consumer does
// not perturb existing ones — the property that keeps figure series stable
// as the system grows.
func (e *Engine) Rand(label string) *rand.Rand {
	h := fnv.New64a()
	fmt.Fprint(h, label)
	return rand.New(rand.NewSource(e.seed ^ int64(h.Sum64())))
}
