package matching

import (
	"react/internal/bipartite"
)

// Hungarian computes the exact maximum-weight bipartite matching with the
// O(n³) potentials-and-augmenting-paths formulation of the Kuhn–Munkres
// algorithm (Kuhn 1955, the paper's reference [9] for the offline optimum).
// The paper rejects it for online use because of exactly this cost; here it
// serves as the ground truth that quantifies the optimality gap of the
// heuristics in tests and ablation benchmarks.
//
// Vertex pairs without an edge are modelled as zero-weight pseudo-edges
// (always admissible, never preferable to any positive edge); pseudo-pairs
// in the optimal assignment are dropped from the returned matching.
type Hungarian struct{}

// Name implements Matcher.
func (Hungarian) Name() string { return "hungarian" }

// Match implements Matcher.
func (Hungarian) Match(g *bipartite.Graph) (*bipartite.Matching, Stats) {
	m := bipartite.NewMatching(g)
	nW, nT := g.NumWorkers(), g.NumTasks()
	var st Stats
	if nW == 0 || nT == 0 || g.NumEdges() == 0 {
		return m, st
	}

	// Rows must be the smaller side for the augmenting loop below.
	// rowIsTask records whether row indices are tasks or workers.
	rows, cols := nT, nW
	rowIsTask := true
	if rows > cols {
		rows, cols = cols, rows
		rowIsTask = false
	}

	// Dense weight and edge-index lookup, 1-based to match the classic
	// formulation. cost = −weight turns maximization into minimization.
	const noEdge = int32(-1)
	cost := make([][]float64, rows+1)
	edgeAt := make([][]int32, rows+1)
	for i := 1; i <= rows; i++ {
		cost[i] = make([]float64, cols+1)
		edgeAt[i] = make([]int32, cols+1)
		for j := range edgeAt[i] {
			edgeAt[i][j] = noEdge
		}
	}
	for ei, e := range g.Edges() {
		r, c := int(e.Task)+1, int(e.Worker)+1
		if !rowIsTask {
			r, c = c, r
		}
		cost[r][c] = -e.Weight
		edgeAt[r][c] = int32(ei)
		st.EdgesScanned++
	}

	u := make([]float64, rows+1)
	v := make([]float64, cols+1)
	p := make([]int, cols+1)   // p[j] = row matched to column j (0 = free)
	way := make([]int, cols+1) // predecessor column on the alternating path

	const inf = 1e308
	for i := 1; i <= rows; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, cols+1)
		used := make([]bool, cols+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := 0
			for j := 1; j <= cols; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0][j] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= cols; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	for j := 1; j <= cols; j++ {
		if p[j] == 0 {
			continue
		}
		if ei := edgeAt[p[j]][j]; ei != noEdge {
			// Real edge in the optimal assignment. Errors are impossible
			// here — the assignment is a matching by construction — but a
			// failed Add would mean a solver bug, so surface it loudly.
			if err := m.Add(ei); err != nil {
				panic("matching: hungarian produced conflicting assignment: " + err.Error())
			}
			st.Adds++
		}
	}
	return m, st
}
