package matching

import (
	"react/internal/bipartite"
)

// Greedy is the paper's quality baseline (§V.B): for every unassigned task
// it picks the heaviest edge to a still-available worker. On full graphs
// this is near-optimal — there is almost always a free worker with weight
// close to the maximum — but the scan is Θ(V·E) exactly as the paper
// analyses it: for each task the algorithm walks the whole edge set. That
// deliberate cost model is what reproduces the Figure 3 blow-up (99.7 s at
// 1000×1000 in the paper's Java implementation) and the queueing collapse
// in Figures 5 and 9.
type Greedy struct{}

// Name implements Matcher.
func (Greedy) Name() string { return "greedy" }

// Match implements Matcher.
func (Greedy) Match(g *bipartite.Graph) (*bipartite.Matching, Stats) {
	m := bipartite.NewMatching(g)
	var st Stats
	edges := g.Edges()
	for t := int32(0); t < int32(g.NumTasks()); t++ {
		best := int32(-1)
		bestW := -1.0
		// Full edge scan per task — the O(V·E) the paper ascribes to Greedy.
		for i := range edges {
			st.EdgesScanned++
			e := &edges[i]
			if e.Task != t {
				continue
			}
			if m.WorkerEdge(e.Worker) != -1 {
				continue // worker already taken
			}
			if e.Weight > bestW {
				bestW = e.Weight
				best = int32(i)
			}
		}
		if best >= 0 {
			m.Add(best)
			st.Adds++
		}
	}
	return m, st
}

// GreedyIndexed is the same greedy policy implemented with per-task
// incidence lists, i.e. Θ(E) total. It exists to separate the *policy* from
// the paper's *cost model* in ablation benchmarks: comparing Greedy and
// GreedyIndexed shows how much of the Figure 5 collapse is the scan cost
// rather than the greedy decision rule.
type GreedyIndexed struct{}

// Name implements Matcher.
func (GreedyIndexed) Name() string { return "greedy-indexed" }

// Match implements Matcher.
func (GreedyIndexed) Match(g *bipartite.Graph) (*bipartite.Matching, Stats) {
	m := bipartite.NewMatching(g)
	var st Stats
	for t := int32(0); t < int32(g.NumTasks()); t++ {
		best := int32(-1)
		bestW := -1.0
		for _, ei := range g.TaskEdges(t) {
			st.EdgesScanned++
			e := g.Edge(int(ei))
			if m.WorkerEdge(e.Worker) != -1 {
				continue
			}
			if e.Weight > bestW {
				bestW = e.Weight
				best = ei
			}
		}
		if best >= 0 {
			m.Add(best)
			st.Adds++
		}
	}
	return m, st
}
