package matching

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"react/internal/bipartite"
)

// randomGraph builds a bipartite graph with the given density and U[0,1)
// weights, deterministically from seed.
func randomGraph(nW, nT int, density float64, seed int64) *bipartite.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := bipartite.NewBuilder(nW, nT)
	for i := 0; i < nW; i++ {
		b.AddWorker(workerName(i))
	}
	for j := 0; j < nT; j++ {
		b.AddTask(taskName(j))
	}
	for i := 0; i < nW; i++ {
		for j := 0; j < nT; j++ {
			if rng.Float64() < density {
				b.AddEdgeIdx(int32(i), int32(j), rng.Float64())
			}
		}
	}
	return b.Build()
}

func workerName(i int) string { return "w" + string(rune('0'+i/10)) + string(rune('0'+i%10)) }
func taskName(j int) string   { return "t" + string(rune('0'+j/10)) + string(rune('0'+j%10)) }

// bruteForce computes the exact maximum matching weight by recursion over
// tasks; usable only on tiny graphs.
func bruteForce(g *bipartite.Graph) float64 {
	usedW := make([]bool, g.NumWorkers())
	var rec func(t int32) float64
	rec = func(t int32) float64 {
		if t == int32(g.NumTasks()) {
			return 0
		}
		best := rec(t + 1) // leave task t unmatched
		for _, ei := range g.TaskEdges(t) {
			e := g.Edge(int(ei))
			if usedW[e.Worker] {
				continue
			}
			usedW[e.Worker] = true
			if w := e.Weight + rec(t+1); w > best {
				best = w
			}
			usedW[e.Worker] = false
		}
		return best
	}
	return rec(0)
}

func allMatchers(seed int64) []Matcher {
	return []Matcher{
		REACT{Cycles: 2000, Rand: rand.New(rand.NewSource(seed))},
		Metropolis{Cycles: 2000, Rand: rand.New(rand.NewSource(seed))},
		Greedy{},
		GreedyIndexed{},
		Uniform{Rand: rand.New(rand.NewSource(seed))},
		Hungarian{},
	}
}

func TestAllMatchersProduceValidMatchings(t *testing.T) {
	for _, density := range []float64{0.1, 0.5, 1.0} {
		g := randomGraph(12, 9, density, 42)
		for _, a := range allMatchers(7) {
			m, _ := a.Match(g)
			if err := m.Validate(); err != nil {
				t.Errorf("%s on density %.1f: %v", a.Name(), density, err)
			}
		}
	}
}

func TestAllMatchersHandleEmptyGraphs(t *testing.T) {
	empty := bipartite.NewBuilder(0, 0).Build()
	noEdges := randomGraph(5, 5, 0, 1)
	for _, a := range allMatchers(1) {
		for _, g := range []*bipartite.Graph{empty, noEdges} {
			m, st := a.Match(g)
			if m.Size() != 0 || m.Weight() != 0 {
				t.Errorf("%s on empty graph: size=%d weight=%v", a.Name(), m.Size(), m.Weight())
			}
			if st.Adds != 0 {
				t.Errorf("%s on empty graph reported %d adds", a.Name(), st.Adds)
			}
		}
	}
}

func TestHungarianMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		for _, dims := range [][2]int{{4, 4}, {5, 3}, {3, 6}, {6, 6}} {
			g := randomGraph(dims[0], dims[1], 0.7, seed)
			m, _ := Hungarian{}.Match(g)
			want := bruteForce(g)
			if math.Abs(m.Weight()-want) > 1e-9 {
				t.Fatalf("seed %d dims %v: hungarian %v, brute force %v", seed, dims, m.Weight(), want)
			}
		}
	}
}

func TestHungarianKnownMatrix(t *testing.T) {
	// Classic 3x3 instance: optimal assignment is the anti-diagonal.
	b := bipartite.NewBuilder(3, 3)
	for i := 0; i < 3; i++ {
		b.AddWorker(workerName(i))
		b.AddTask(taskName(i))
	}
	w := [3][3]float64{
		{1, 2, 9},
		{2, 7, 3},
		{8, 2, 1},
	}
	for i := int32(0); i < 3; i++ {
		for j := int32(0); j < 3; j++ {
			b.AddEdgeIdx(i, j, w[i][j])
		}
	}
	m, _ := Hungarian{}.Match(b.Build())
	if m.Weight() != 24 {
		t.Fatalf("weight = %v, want 24 (9+7+8)", m.Weight())
	}
	if m.Size() != 3 {
		t.Fatalf("size = %d, want 3", m.Size())
	}
}

func TestHeuristicsNeverExceedOptimum(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(10, 10, 0.6, seed+100)
		opt, _ := Hungarian{}.Match(g)
		for _, a := range allMatchers(seed) {
			m, _ := a.Match(g)
			if m.Weight() > opt.Weight()+1e-9 {
				t.Fatalf("%s weight %v exceeds optimum %v (seed %d)", a.Name(), m.Weight(), opt.Weight(), seed)
			}
		}
	}
}

func TestGreedyNearOptimalOnFullGraph(t *testing.T) {
	// §V.B: on full graphs with many spare workers Greedy is almost optimal
	// because some free worker always has weight close to the maximum.
	g := bipartite.Full(100, 30, func(w, tk int) float64 {
		return rand.New(rand.NewSource(int64(w*31 + tk))).Float64()
	})
	opt, _ := Hungarian{}.Match(g)
	grd, _ := Greedy{}.Match(g)
	if grd.Weight() < 0.95*opt.Weight() {
		t.Fatalf("greedy %v far below optimum %v", grd.Weight(), opt.Weight())
	}
	if grd.Size() != 30 {
		t.Fatalf("greedy matched %d of 30 tasks on a full graph", grd.Size())
	}
}

func TestGreedyIndexedSameResultAsGreedy(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		g := randomGraph(15, 12, 0.5, seed+50)
		a, _ := Greedy{}.Match(g)
		b, _ := GreedyIndexed{}.Match(g)
		if math.Abs(a.Weight()-b.Weight()) > 1e-12 || a.Size() != b.Size() {
			t.Fatalf("seed %d: greedy %v/%d, indexed %v/%d", seed, a.Weight(), a.Size(), b.Weight(), b.Size())
		}
	}
}

func TestGreedyScanCostIsVE(t *testing.T) {
	g := bipartite.Full(20, 10, func(w, tk int) float64 { return 1 })
	_, st := Greedy{}.Match(g)
	if want := 10 * g.NumEdges(); st.EdgesScanned != want {
		t.Fatalf("greedy scanned %d edges, want V·E = %d", st.EdgesScanned, want)
	}
	_, sti := GreedyIndexed{}.Match(g)
	if want := g.NumEdges(); sti.EdgesScanned != want {
		t.Fatalf("indexed greedy scanned %d edges, want E = %d", sti.EdgesScanned, want)
	}
}

func TestREACTBeatsMetropolisAtEqualCycles(t *testing.T) {
	// The paper's central matcher claim (Fig. 4): REACT yields higher
	// output weight than Metropolis for the same cycle budget. Compare
	// totals across several seeds to avoid flakiness from a single run.
	g := bipartite.Full(60, 60, func(w, tk int) float64 {
		return rand.New(rand.NewSource(int64(w*61 + tk))).Float64()
	})
	var reactTotal, metroTotal float64
	for seed := int64(0); seed < 5; seed++ {
		r, _ := REACT{Cycles: 3000, Rand: rand.New(rand.NewSource(seed))}.Match(g)
		mt, _ := Metropolis{Cycles: 3000, Rand: rand.New(rand.NewSource(seed))}.Match(g)
		reactTotal += r.Weight()
		metroTotal += mt.Weight()
	}
	if reactTotal <= metroTotal {
		t.Fatalf("REACT total %v not above Metropolis %v", reactTotal, metroTotal)
	}
}

func TestREACTWithThirdCyclesStillBeatsMetropolis(t *testing.T) {
	// §V.B: "the REACT algorithm results on a higher output even with a
	// third of the cycles".
	g := bipartite.Full(60, 60, func(w, tk int) float64 {
		return rand.New(rand.NewSource(int64(w*67 + tk))).Float64()
	})
	var reactTotal, metroTotal float64
	for seed := int64(0); seed < 5; seed++ {
		r, _ := REACT{Cycles: 1000, Rand: rand.New(rand.NewSource(seed))}.Match(g)
		mt, _ := Metropolis{Cycles: 3000, Rand: rand.New(rand.NewSource(seed))}.Match(g)
		reactTotal += r.Weight()
		metroTotal += mt.Weight()
	}
	if reactTotal <= metroTotal {
		t.Fatalf("REACT(1000) total %v not above Metropolis(3000) %v", reactTotal, metroTotal)
	}
}

func TestREACTImprovesWithMoreCycles(t *testing.T) {
	g := bipartite.Full(80, 80, func(w, tk int) float64 {
		return rand.New(rand.NewSource(int64(w*83 + tk))).Float64()
	})
	short, _ := REACT{Cycles: 200, Rand: rand.New(rand.NewSource(1))}.Match(g)
	long, _ := REACT{Cycles: 20000, Rand: rand.New(rand.NewSource(1))}.Match(g)
	if long.Weight() <= short.Weight() {
		t.Fatalf("more cycles did not help: %v vs %v", long.Weight(), short.Weight())
	}
}

func TestREACTDeterministicForSeed(t *testing.T) {
	g := randomGraph(20, 20, 0.8, 5)
	a, sa := REACT{Cycles: 500, Rand: rand.New(rand.NewSource(9))}.Match(g)
	b, sb := REACT{Cycles: 500, Rand: rand.New(rand.NewSource(9))}.Match(g)
	if a.Weight() != b.Weight() || sa != sb {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", a.Weight(), sa, b.Weight(), sb)
	}
}

func TestREACTZeroValueUsesDefaults(t *testing.T) {
	g := randomGraph(10, 10, 1, 3)
	m, st := REACT{}.Match(g)
	if st.Cycles != DefaultCycles {
		t.Fatalf("zero-value cycles = %d, want %d", st.Cycles, DefaultCycles)
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.Size() == 0 {
		t.Fatal("default REACT matched nothing on a full 10x10 graph")
	}
}

func TestAdaptiveCycles(t *testing.T) {
	if got := AdaptiveCycles(10); got != DefaultCycles {
		t.Fatalf("AdaptiveCycles(10) = %d, want floor %d", got, DefaultCycles)
	}
	if got := AdaptiveCycles(50_000); got != 50_000 {
		t.Fatalf("AdaptiveCycles(50000) = %d", got)
	}
	g := randomGraph(40, 40, 1, 8) // 1600 edges
	_, st := REACT{Adaptive: true, Rand: rand.New(rand.NewSource(2))}.Match(g)
	if st.Cycles != 1600 {
		t.Fatalf("adaptive run used %d cycles, want 1600", st.Cycles)
	}
}

func TestUniformIgnoresWeights(t *testing.T) {
	// With one heavy edge per task and many light ones, uniform assignment
	// should pick the heavy edge only rarely — unlike Greedy, which always
	// does. This is the skill-blindness of the traditional approach.
	const nW, nT = 30, 10
	b := bipartite.NewBuilder(nW, nT)
	for i := 0; i < nW; i++ {
		b.AddWorker(workerName(i))
	}
	for j := 0; j < nT; j++ {
		b.AddTask(taskName(j))
	}
	for i := int32(0); i < nW; i++ {
		for j := int32(0); j < nT; j++ {
			w := 0.1
			if int32(i) == j { // worker j is the expert for task j
				w = 1.0
			}
			b.AddEdgeIdx(i, j, w)
		}
	}
	g := b.Build()
	grd, _ := Greedy{}.Match(g)
	if grd.Weight() < float64(nT)*0.99 {
		t.Fatalf("greedy should find all experts, weight %v", grd.Weight())
	}
	uni, _ := Uniform{Rand: rand.New(rand.NewSource(4))}.Match(g)
	if uni.Weight() >= grd.Weight() {
		t.Fatalf("uniform weight %v not below greedy %v", uni.Weight(), grd.Weight())
	}
	if uni.Size() != nT {
		t.Fatalf("uniform left tasks unmatched on a full graph: %d/%d", uni.Size(), nT)
	}
}

func TestStatsAccumulate(t *testing.T) {
	var total Stats
	total.Add(Stats{Cycles: 10, Adds: 1, Swaps: 2, Rejects: 3, EdgesScanned: 4})
	total.Add(Stats{Cycles: 5, Removes: 7, WorseAccepts: 8})
	if total.Cycles != 15 || total.Adds != 1 || total.Swaps != 2 || total.Rejects != 3 ||
		total.EdgesScanned != 4 || total.Removes != 7 || total.WorseAccepts != 8 {
		t.Fatalf("accumulated stats wrong: %+v", total)
	}
}

// Property: REACT's final state is always a valid matching with
// non-negative weight regardless of graph shape or budget.
func TestQuickREACTAlwaysValid(t *testing.T) {
	f := func(seed int64, nw, nt, cyc uint8) bool {
		g := randomGraph(int(nw%10)+1, int(nt%10)+1, 0.5, seed)
		m, _ := REACT{Cycles: int(cyc) + 1, Rand: rand.New(rand.NewSource(seed))}.Match(g)
		return m.Validate() == nil && m.Weight() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(31))}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Hungarian solver dominates every heuristic on random
// instances.
func TestQuickHungarianDominates(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(7, 7, 0.6, seed)
		opt, _ := Hungarian{}.Match(g)
		r, _ := REACT{Cycles: 500, Rand: rand.New(rand.NewSource(seed))}.Match(g)
		gr, _ := Greedy{}.Match(g)
		return opt.Weight() >= r.Weight()-1e-9 && opt.Weight() >= gr.Weight()-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rand.New(rand.NewSource(37))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkREACT1000Cycles100x100(b *testing.B) {
	g := bipartite.Full(100, 100, func(w, tk int) float64 { return float64((w*101+tk)%100) / 100 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		REACT{Cycles: 1000, Rand: rand.New(rand.NewSource(int64(i)))}.Match(g)
	}
}

func BenchmarkGreedy100x100(b *testing.B) {
	g := bipartite.Full(100, 100, func(w, tk int) float64 { return float64((w*101+tk)%100) / 100 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy{}.Match(g)
	}
}

func BenchmarkHungarian100x100(b *testing.B) {
	g := bipartite.Full(100, 100, func(w, tk int) float64 { return float64((w*101+tk)%100) / 100 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Hungarian{}.Match(g)
	}
}

func TestREACTWarmStartDominatesColdAtSmallBudgets(t *testing.T) {
	// With a budget far too small to build a matching from scratch, the
	// warm-started search keeps the greedy seed's weight; the cold search
	// cannot catch up.
	g := bipartite.Full(200, 200, func(w, tk int) float64 {
		return rand.New(rand.NewSource(int64(w*211 + tk))).Float64()
	})
	var warmTotal, coldTotal float64
	for seed := int64(0); seed < 3; seed++ {
		warm, _ := REACT{Cycles: 500, WarmStart: true, Rand: rand.New(rand.NewSource(seed))}.Match(g)
		if err := warm.Validate(); err != nil {
			t.Fatal(err)
		}
		cold, _ := REACT{Cycles: 500, Rand: rand.New(rand.NewSource(seed))}.Match(g)
		warmTotal += warm.Weight()
		coldTotal += cold.Weight()
	}
	if warmTotal <= coldTotal {
		t.Fatalf("warm-start total %v not above cold %v", warmTotal, coldTotal)
	}
}

func TestREACTWarmStartNearGreedySeed(t *testing.T) {
	g := bipartite.Full(80, 80, func(w, tk int) float64 {
		return rand.New(rand.NewSource(int64(w*83 + tk))).Float64()
	})
	seedMatch, _ := GreedyIndexed{}.Match(g)
	warm, _ := REACT{Cycles: 2000, WarmStart: true, Rand: rand.New(rand.NewSource(4))}.Match(g)
	// The annealed removals may trade a little weight transiently, but the
	// final result should stay in the seed's neighbourhood or above.
	if warm.Weight() < 0.9*seedMatch.Weight() {
		t.Fatalf("warm-start %v fell far below its seed %v", warm.Weight(), seedMatch.Weight())
	}
}
