package matching

import (
	"math/rand"

	"react/internal/bipartite"
)

// Uniform models the "traditional approach" of §V.C: systems like AMT do
// not assign tasks at all — workers browse the portal and self-select, which
// from the scheduler's viewpoint is a uniformly random pairing of tasks with
// willing (edge-connected, still-free) workers, blind to skill, speed, or
// deadline. Each task draws one incident edge uniformly among those whose
// worker is available.
type Uniform struct {
	Rand *rand.Rand
}

// Name implements Matcher.
func (Uniform) Name() string { return "traditional" }

// Match implements Matcher.
func (a Uniform) Match(g *bipartite.Graph) (*bipartite.Matching, Stats) {
	m := bipartite.NewMatching(g)
	rng := rngOrDefault(a.Rand)
	var st Stats
	// Visit tasks in random order so early tasks are not systematically
	// favoured when workers run short.
	order := rng.Perm(g.NumTasks())
	var free []int32
	for _, ti := range order {
		t := int32(ti)
		free = free[:0]
		for _, ei := range g.TaskEdges(t) {
			st.EdgesScanned++
			if m.WorkerEdge(g.Edge(int(ei)).Worker) == -1 {
				free = append(free, ei)
			}
		}
		if len(free) == 0 {
			continue
		}
		m.Add(free[rng.Intn(len(free))])
		st.Adds++
	}
	return m, st
}
