package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"react/internal/bipartite"
)

func TestAuctionValidMatching(t *testing.T) {
	for _, density := range []float64{0.1, 0.5, 1.0} {
		g := randomGraph(12, 9, density, 7)
		m, _ := Auction{}.Match(g)
		if err := m.Validate(); err != nil {
			t.Errorf("density %.1f: %v", density, err)
		}
	}
}

func TestAuctionEmptyGraph(t *testing.T) {
	m, st := Auction{}.Match(bipartite.NewBuilder(0, 0).Build())
	if m.Size() != 0 || st.Adds != 0 {
		t.Fatalf("empty: size=%d stats=%+v", m.Size(), st)
	}
	m, _ = Auction{}.Match(randomGraph(5, 5, 0, 1))
	if m.Size() != 0 {
		t.Fatal("edgeless graph produced a matching")
	}
}

func TestAuctionNearOptimal(t *testing.T) {
	// ε-optimality: weight ≥ optimum − matched·ε.
	for seed := int64(0); seed < 15; seed++ {
		g := randomGraph(12, 12, 0.7, seed+200)
		opt, _ := Hungarian{}.Match(g)
		eps := g.MaxWeight() / float64(g.NumTasks()+1)
		auc, _ := Auction{Epsilon: eps}.Match(g)
		bound := opt.Weight() - float64(auc.Size())*eps
		if auc.Weight() < bound-1e-9 {
			t.Fatalf("seed %d: auction %v below ε-bound %v (opt %v)", seed, auc.Weight(), bound, opt.Weight())
		}
		if auc.Weight() > opt.Weight()+1e-9 {
			t.Fatalf("seed %d: auction %v above optimum %v", seed, auc.Weight(), opt.Weight())
		}
	}
}

func TestAuctionTightEpsilonApproachesOptimum(t *testing.T) {
	g := randomGraph(20, 20, 1.0, 9)
	opt, _ := Hungarian{}.Match(g)
	auc, _ := Auction{Epsilon: 1e-6}.Match(g)
	if diff := opt.Weight() - auc.Weight(); diff > 20*1e-6+1e-9 {
		t.Fatalf("tight-ε auction off optimum by %v", diff)
	}
	if auc.Size() != opt.Size() {
		t.Fatalf("auction matched %d, optimum %d", auc.Size(), opt.Size())
	}
}

func TestAuctionFullGraphMatchesEveryTask(t *testing.T) {
	g := bipartite.Full(30, 20, func(w, tk int) float64 {
		return 0.1 + float64((w*7+tk*3)%90)/100
	})
	m, st := Auction{}.Match(g)
	if m.Size() != 20 {
		t.Fatalf("matched %d of 20 on a full graph with spare workers", m.Size())
	}
	if st.Adds < 20 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestAuctionBeatsREACTGivenSameGraph(t *testing.T) {
	// Not a theorem, but with ε-optimality the auction should comfortably
	// beat a small fixed REACT budget on dense mid-sized graphs.
	g := bipartite.Full(60, 60, func(w, tk int) float64 {
		return rand.New(rand.NewSource(int64(w*61 + tk))).Float64()
	})
	auc, _ := Auction{}.Match(g)
	re, _ := REACT{Cycles: 1000, Rand: rand.New(rand.NewSource(1))}.Match(g)
	if auc.Weight() <= re.Weight() {
		t.Fatalf("auction %v not above REACT(1000) %v", auc.Weight(), re.Weight())
	}
}

func TestQuickAuctionValidAndBounded(t *testing.T) {
	f := func(seed int64, nw, nt uint8) bool {
		g := randomGraph(int(nw%12)+1, int(nt%12)+1, 0.6, seed)
		m, _ := Auction{}.Match(g)
		if m.Validate() != nil {
			return false
		}
		opt, _ := Hungarian{}.Match(g)
		return m.Weight() <= opt.Weight()+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(41))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAuction100x100(b *testing.B) {
	g := bipartite.Full(100, 100, func(w, tk int) float64 { return float64((w*101+tk)%100) / 100 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Auction{}.Match(g)
	}
}
