package matching

import (
	"math"
	"math/rand"

	"react/internal/bipartite"
)

// REACT is Algorithm 1 of the paper: for a fixed number of cycles, pick a
// uniformly random edge and flip its membership bit in the search state x.
//
//   - Flips that raise the fitness g(x) = Σ x_ij·w_ij are accepted.
//   - A flip that would make two selected edges share a vertex drives g to 0
//     (the matching is no longer "reasonable"); REACT's distinguishing branch
//     then compares the new edge's weight against every conflicting matched
//     edge and swaps them out when the new edge is strictly heavier.
//   - A flip that lowers the fitness (removing a selected edge) is accepted
//     with probability e^{(g(x')−g(x))/K}, the simulated-annealing escape
//     hatch.
//
// The zero value runs with DefaultCycles, an auto-scaled K, and a fixed
// seed; set Cycles/K/Rand to override, or Adaptive to scale cycles with the
// edge count as §IV.A suggests.
type REACT struct {
	Cycles   int        // iteration budget c (0 → DefaultCycles)
	K        float64    // acceptance constant (0 → MaxWeight/4)
	Rand     *rand.Rand // RNG; nil → deterministic default
	Adaptive bool       // scale cycles to the edge count (overrides Cycles)
	// Anneal decays the acceptance constant linearly from K to ~0 across
	// the cycle budget — a full simulated-annealing schedule instead of the
	// paper's fixed K. Early cycles escape local optima; late cycles
	// converge instead of undoing good edges. The ablation bench quantifies
	// the effect.
	Anneal bool
	// WarmStart seeds the search state with the Θ(E) indexed-greedy
	// matching instead of the empty state, so the random flips refine a
	// good solution rather than build one from nothing. This hybrid trades
	// one cheap deterministic pass for a large head start when the cycle
	// budget is small relative to the graph.
	WarmStart bool
}

// Name implements Matcher.
func (a REACT) Name() string { return "react" }

// Match implements Matcher.
func (a REACT) Match(g *bipartite.Graph) (*bipartite.Matching, Stats) {
	m := bipartite.NewMatching(g)
	e := g.NumEdges()
	if e == 0 {
		return m, Stats{}
	}
	cycles := a.Cycles
	if a.Adaptive {
		cycles = AdaptiveCycles(e)
	} else if cycles <= 0 {
		cycles = DefaultCycles
	}
	k := acceptConstant(a.K, g)
	rng := rngOrDefault(a.Rand)
	var st Stats
	st.Cycles = cycles
	if a.WarmStart {
		seed, gs := GreedyIndexed{}.Match(g)
		st.EdgesScanned += gs.EdgesScanned
		for _, ei := range seed.SelectedEdges() {
			m.Add(ei) // conflict-free by construction
			st.Adds++
		}
	}

	for loop := 0; loop < cycles; loop++ {
		kNow := k
		if a.Anneal {
			// Linear cooling; the floor keeps Exp finite at the last cycle.
			frac := 1 - float64(loop)/float64(cycles)
			kNow = k*frac + 1e-12
		}
		ei := int32(rng.Intn(e))
		edge := g.Edge(int(ei))
		if m.Selected(ei) {
			// Flipping 1→0 lowers g by the edge weight: accept with the
			// annealing probability (weights are non-negative, so this is
			// never an uphill move).
			if edge.Weight <= 0 || rng.Float64() <= math.Exp(-edge.Weight/kNow) {
				m.Remove(ei)
				st.Removes++
				if edge.Weight > 0 {
					st.WorseAccepts++
				}
			} else {
				st.Rejects++
			}
			continue
		}
		conflicts := m.Conflicts(ei)
		if len(conflicts) == 0 {
			// g(x') = g(x) + w ≥ g(x): always accept.
			m.Add(ei)
			st.Adds++
			continue
		}
		// g(x') = 0 branch: replace the conflicting edge(s) only if the new
		// edge is strictly heavier than each of them.
		better := true
		for _, ce := range conflicts {
			if g.Edge(int(ce)).Weight >= edge.Weight {
				better = false
				break
			}
		}
		if !better {
			st.Rejects++
			continue
		}
		for _, ce := range conflicts {
			m.Remove(ce)
		}
		m.Add(ei)
		st.Swaps++
	}
	return m, st
}
