package matching

import (
	"math/rand"
	"runtime"
	"sync"

	"react/internal/bipartite"
)

// Portfolio runs several independent randomized searches concurrently and
// keeps the best matching — the classic portfolio strategy for Las
// Vegas-style heuristics. REACT's quality at a fixed cycle budget has high
// variance (a few unlucky flips strand tasks); k parallel searches with
// distinct seeds cost the same wall time on k idle cores and take the
// maximum, tightening the output distribution without touching the paper's
// algorithm. The ablation bench quantifies the gain.
type Portfolio struct {
	// Searches is the number of concurrent runs (0 → GOMAXPROCS, capped
	// at 16 to keep diminishing returns from burning cores).
	Searches int
	// Cycles is the per-search budget (0 → DefaultCycles).
	Cycles int
	// K is the per-search acceptance constant (0 → auto).
	K float64
	// Seed derives the per-search RNGs; the same seed reproduces the same
	// portfolio outcome regardless of scheduling order.
	Seed int64
	// Anneal applies the cooling schedule in every search.
	Anneal bool
}

// Name implements Matcher.
func (Portfolio) Name() string { return "react-portfolio" }

// Match implements Matcher.
func (p Portfolio) Match(g *bipartite.Graph) (*bipartite.Matching, Stats) {
	n := p.Searches
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if n > 16 {
			n = 16
		}
	}
	if n == 1 || g.NumEdges() == 0 {
		return REACT{Cycles: p.Cycles, K: p.K, Anneal: p.Anneal,
			Rand: rand.New(rand.NewSource(p.Seed))}.Match(g)
	}

	type outcome struct {
		m  *bipartite.Matching
		st Stats
	}
	results := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := REACT{
				Cycles: p.Cycles,
				K:      p.K,
				Anneal: p.Anneal,
				Rand:   rand.New(rand.NewSource(p.Seed ^ (int64(i)+1)*0x5851f42d4c957f2d)),
			}
			m, st := r.Match(g)
			results[i] = outcome{m, st}
		}(i)
	}
	//lint:ignore blockingunderlock joins the portfolio's own CPU-bound matcher goroutines, spawned a few lines up; holding the engine's batch lock across the match is the one-round-at-a-time design
	wg.Wait()

	// Deterministic winner: highest weight, lowest index on ties.
	best := 0
	var total Stats
	for i, r := range results {
		total.Add(r.st)
		if r.m.Weight() > results[best].m.Weight() {
			best = i
		}
	}
	return results[best].m, total
}
