package matching

import (
	"react/internal/bipartite"
)

// Auction is Bertsekas' auction algorithm, a third point on the
// speed/optimality spectrum between the exact Hungarian solver and the
// randomized heuristics. Tasks bid for workers: each unassigned task finds
// its most profitable worker at current prices, outbids any current holder
// by the profit margin plus a slack ε, and the worker's price rises
// accordingly. The final matching's weight is within |matched|·ε of the
// optimum, for a small fraction of Hungarian's wall time on large graphs —
// useful when a deployment wants near-optimal batches and can afford more
// than REACT's fixed budget but not O(n³).
//
// Epsilon defaults to maxWeight/(tasks+1); smaller values tighten the bound
// and lengthen the run.
type Auction struct {
	Epsilon float64
}

// Name implements Matcher.
func (Auction) Name() string { return "auction" }

// Match implements Matcher.
func (a Auction) Match(g *bipartite.Graph) (*bipartite.Matching, Stats) {
	m := bipartite.NewMatching(g)
	var st Stats
	nT := g.NumTasks()
	if nT == 0 || g.NumWorkers() == 0 || g.NumEdges() == 0 {
		return m, st
	}
	eps := a.Epsilon
	if eps <= 0 {
		eps = g.MaxWeight() / float64(nT+1)
		if eps <= 0 {
			eps = 1e-9
		}
	}

	prices := make([]float64, g.NumWorkers())
	// queue of unassigned task indices; a displaced task re-enters.
	queue := make([]int32, 0, nT)
	for t := int32(0); t < int32(nT); t++ {
		if len(g.TaskEdges(t)) > 0 {
			queue = append(queue, t)
		}
	}

	// Each displacement raises a price by ≥ ε, and prices are bounded by
	// maxWeight, so the loop terminates in O(E·maxW/ε) bids; the cap is a
	// safety net against degenerate ε.
	maxBids := g.NumEdges() * (nT + 2)
	for len(queue) > 0 && st.Cycles < maxBids {
		t := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		st.Cycles++

		// Find best and second-best net profit w_ij − p_j over t's edges.
		bestEdge := int32(-1)
		best, second := -1.0, -1.0
		for _, ei := range g.TaskEdges(t) {
			st.EdgesScanned++
			e := g.Edge(int(ei))
			profit := e.Weight - prices[e.Worker]
			if profit > best {
				second = best
				best = profit
				bestEdge = ei
			} else if profit > second {
				second = profit
			}
		}
		if bestEdge < 0 || best < 0 {
			// Every worker is priced beyond this task's weights: staying
			// unmatched (value 0) is its best option.
			st.Rejects++
			continue
		}
		if second < 0 {
			second = 0 // the outside option
		}
		winner := g.Edge(int(bestEdge)).Worker
		// Displace the current holder, if any.
		if held := m.WorkerEdge(winner); held != -1 {
			displaced := g.Edge(int(held)).Task
			m.Remove(held)
			queue = append(queue, displaced)
			st.Swaps++
		}
		m.Add(bestEdge)
		st.Adds++
		prices[winner] += best - second + eps
	}
	return m, st
}
