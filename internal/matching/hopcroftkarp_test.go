package matching

import (
	"math/rand"
	"testing"
	"testing/quick"

	"react/internal/bipartite"
)

// bruteMaxCardinality finds the maximum matching size by recursion; tiny
// graphs only.
func bruteMaxCardinality(g *bipartite.Graph) int {
	usedW := make([]bool, g.NumWorkers())
	var rec func(t int32) int
	rec = func(t int32) int {
		if t == int32(g.NumTasks()) {
			return 0
		}
		best := rec(t + 1)
		for _, ei := range g.TaskEdges(t) {
			e := g.Edge(int(ei))
			if usedW[e.Worker] {
				continue
			}
			usedW[e.Worker] = true
			if n := 1 + rec(t+1); n > best {
				best = n
			}
			usedW[e.Worker] = false
		}
		return best
	}
	return rec(0)
}

func TestHopcroftKarpMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		for _, density := range []float64{0.2, 0.5, 0.8} {
			g := randomGraph(7, 7, density, seed+300)
			m, _ := HopcroftKarp{}.Match(g)
			if err := m.Validate(); err != nil {
				t.Fatal(err)
			}
			if want := bruteMaxCardinality(g); m.Size() != want {
				t.Fatalf("seed %d density %v: size %d, want %d", seed, density, m.Size(), want)
			}
		}
	}
}

func TestHopcroftKarpPerfectOnFullGraph(t *testing.T) {
	g := bipartite.Full(40, 25, func(w, tk int) float64 { return 1 })
	m, st := HopcroftKarp{}.Match(g)
	if m.Size() != 25 {
		t.Fatalf("size %d, want 25", m.Size())
	}
	if st.Adds != 25 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestHopcroftKarpEmpty(t *testing.T) {
	m, _ := HopcroftKarp{}.Match(bipartite.NewBuilder(0, 0).Build())
	if m.Size() != 0 {
		t.Fatal("matched on empty graph")
	}
	m, _ = HopcroftKarp{}.Match(randomGraph(4, 4, 0, 1))
	if m.Size() != 0 {
		t.Fatal("matched on edgeless graph")
	}
}

func TestHopcroftKarpBottleneckGraph(t *testing.T) {
	// Every task connects only to worker 0: max cardinality is exactly 1.
	b := bipartite.NewBuilder(3, 5)
	for i := 0; i < 3; i++ {
		b.AddWorker(workerName(i))
	}
	for j := 0; j < 5; j++ {
		b.AddTask(taskName(j))
		b.AddEdgeIdx(0, int32(j), 0.5)
	}
	m, _ := HopcroftKarp{}.Match(b.Build())
	if m.Size() != 1 {
		t.Fatalf("bottleneck size = %d, want 1", m.Size())
	}
}

func TestHopcroftKarpCeilingDominatesWeightedMatchers(t *testing.T) {
	// The cardinality ceiling bounds every other matcher's Size.
	for seed := int64(0); seed < 10; seed++ {
		g := randomGraph(10, 14, 0.3, seed+400)
		ceiling, _ := HopcroftKarp{}.Match(g)
		for _, a := range allMatchers(seed) {
			m, _ := a.Match(g)
			if m.Size() > ceiling.Size() {
				t.Fatalf("%s matched %d above ceiling %d (seed %d)",
					a.Name(), m.Size(), ceiling.Size(), seed)
			}
		}
	}
}

func TestQuickHopcroftKarpOptimalCardinality(t *testing.T) {
	f := func(seed int64) bool {
		g := randomGraph(6, 6, 0.4, seed)
		m, _ := HopcroftKarp{}.Match(g)
		return m.Validate() == nil && m.Size() == bruteMaxCardinality(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rand.New(rand.NewSource(43))}); err != nil {
		t.Fatal(err)
	}
}

func TestREACTAnnealedValidAndCompetitive(t *testing.T) {
	g := bipartite.Full(60, 60, func(w, tk int) float64 {
		return rand.New(rand.NewSource(int64(w*61 + tk))).Float64()
	})
	var fixed, annealed float64
	for seed := int64(0); seed < 5; seed++ {
		f, _ := REACT{Cycles: 3000, Rand: rand.New(rand.NewSource(seed))}.Match(g)
		a, _ := REACT{Cycles: 3000, Anneal: true, Rand: rand.New(rand.NewSource(seed))}.Match(g)
		if err := a.Validate(); err != nil {
			t.Fatal(err)
		}
		fixed += f.Weight()
		annealed += a.Weight()
	}
	// Annealing should at least not be badly worse; typically it helps by
	// suppressing late-stage removals.
	if annealed < 0.9*fixed {
		t.Fatalf("annealed total %v far below fixed-K %v", annealed, fixed)
	}
}

func BenchmarkHopcroftKarp500x500(b *testing.B) {
	g := bipartite.Full(500, 500, func(w, tk int) float64 { return 1 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HopcroftKarp{}.Match(g)
	}
}
