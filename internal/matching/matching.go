// Package matching implements the assignment algorithms evaluated in the
// paper (§IV.A, §V.B):
//
//   - REACT: the paper's randomized state-flip heuristic (Algorithm 1) with
//     the g(x')=0 conflict-resolution branch and Metropolis-style acceptance
//     of worse states;
//   - Metropolis: the baseline from Shih's thesis that REACT is compared
//     against — identical search but without the conflict branch;
//   - Greedy: the O(V·E) highest-weight-edge-per-task baseline;
//   - Uniform: the "traditional" crowdsourcing assignment (workers pick
//     tasks effectively at random, as on AMT) used in §V.C;
//   - Hungarian: an exact O(n³) maximum-weight solver, the offline optimum
//     the introduction mentions, used here to measure optimality gaps.
//
// All matchers are deterministic given their RNG and never mutate the input
// graph.
package matching

import (
	"math/rand"

	"react/internal/bipartite"
)

// Matcher computes a conflict-free assignment on a weighted bipartite graph.
type Matcher interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Match returns a valid matching on g together with search statistics.
	Match(g *bipartite.Graph) (*bipartite.Matching, Stats)
}

// Stats describes what a matcher did; the figure harnesses report them
// alongside wall time and output weight.
type Stats struct {
	Cycles       int // search iterations executed (0 for non-iterative matchers)
	Adds         int // edges accepted into the matching
	Removes      int // edges removed by a downhill-accepted flip
	Swaps        int // conflict resolutions that replaced existing edge(s)
	Rejects      int // proposed flips rejected
	WorseAccepts int // downhill moves accepted by the e^{Δ/K} rule
	EdgesScanned int // edge weight inspections (dominant cost for Greedy)
}

// Add folds other into s; the scalability harness aggregates per-batch stats.
func (s *Stats) Add(other Stats) {
	s.Cycles += other.Cycles
	s.Adds += other.Adds
	s.Removes += other.Removes
	s.Swaps += other.Swaps
	s.Rejects += other.Rejects
	s.WorseAccepts += other.WorseAccepts
	s.EdgesScanned += other.EdgesScanned
}

// DefaultCycles is the cycle budget the paper's end-to-end experiments use
// for REACT and Metropolis.
const DefaultCycles = 1000

// AdaptiveCycles scales the cycle budget with the graph's order of
// magnitude, the tuning the paper suggests instead of a fixed constant: one
// expected visit per edge, with DefaultCycles as the floor.
func AdaptiveCycles(edges int) int {
	if edges < DefaultCycles {
		return DefaultCycles
	}
	return edges
}

// acceptConstant picks the K of the e^{(g(x')−g(x))/K} rule when the caller
// leaves it zero: a quarter of the largest edge weight, so removing a
// typical edge survives with probability e^{−4·w/w_max} — rare enough to
// stay near the hill-climb, frequent enough to escape local optima.
func acceptConstant(k float64, g *bipartite.Graph) float64 {
	if k > 0 {
		return k
	}
	if max := g.MaxWeight(); max > 0 {
		return max / 4
	}
	return 1
}

// rngOrDefault keeps matchers usable with a nil RNG while staying
// deterministic.
func rngOrDefault(r *rand.Rand) *rand.Rand {
	if r != nil {
		return r
	}
	return rand.New(rand.NewSource(1))
}
