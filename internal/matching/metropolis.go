package matching

import (
	"math"
	"math/rand"

	"react/internal/bipartite"
)

// Metropolis is the baseline Markov-chain matcher REACT is evaluated
// against (§V.B, from Shih's thesis): the same random edge-flip search, but
// without REACT's conflict-resolution branch. A flip that would create a
// vertex conflict leaves the state with fitness g(x') = 0, which the
// Metropolis rule accepts only with probability e^{(0−g(x))/K} — essentially
// never once the matching has any weight. When such a move *is* accepted,
// validity is restored by evicting the conflicting edges, which is the
// closest valid-state interpretation of "accept x'" and is what lets the
// chain leave a conflict-accepted state immediately, as in the original
// algorithm. The practical consequence is the one the paper measures:
// Metropolis needs more cycles than REACT to reach the same weight because
// it cannot swap a heavier edge in directly.
type Metropolis struct {
	Cycles   int
	K        float64
	Rand     *rand.Rand
	Adaptive bool
}

// Name implements Matcher.
func (a Metropolis) Name() string { return "metropolis" }

// Match implements Matcher.
func (a Metropolis) Match(g *bipartite.Graph) (*bipartite.Matching, Stats) {
	m := bipartite.NewMatching(g)
	e := g.NumEdges()
	if e == 0 {
		return m, Stats{}
	}
	cycles := a.Cycles
	if a.Adaptive {
		cycles = AdaptiveCycles(e)
	} else if cycles <= 0 {
		cycles = DefaultCycles
	}
	k := acceptConstant(a.K, g)
	rng := rngOrDefault(a.Rand)
	var st Stats
	st.Cycles = cycles

	for loop := 0; loop < cycles; loop++ {
		ei := int32(rng.Intn(e))
		edge := g.Edge(int(ei))
		if m.Selected(ei) {
			if edge.Weight <= 0 || rng.Float64() <= math.Exp(-edge.Weight/k) {
				m.Remove(ei)
				st.Removes++
				if edge.Weight > 0 {
					st.WorseAccepts++
				}
			} else {
				st.Rejects++
			}
			continue
		}
		conflicts := m.Conflicts(ei)
		if len(conflicts) == 0 {
			m.Add(ei)
			st.Adds++
			continue
		}
		// No conflict branch: g(x') = 0 < g(x); accept with e^{−g/K}.
		if rng.Float64() <= math.Exp(-m.Weight()/k) {
			for _, ce := range conflicts {
				m.Remove(ce)
			}
			m.Add(ei)
			st.WorseAccepts++
			st.Swaps++
		} else {
			st.Rejects++
		}
	}
	return m, st
}
