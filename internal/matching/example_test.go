package matching_test

import (
	"fmt"
	"math/rand"

	"react/internal/bipartite"
	"react/internal/matching"
)

// Build a small batch graph and compare the paper's heuristic against the
// exact optimum.
func Example() {
	b := bipartite.NewBuilder(3, 2)
	for _, w := range []string{"alice", "bob", "carol"} {
		b.AddWorker(w)
	}
	for _, t := range []string{"traffic-check", "photo-tag"} {
		b.AddTask(t)
	}
	b.AddEdge("alice", "traffic-check", 0.9) // alice is the traffic expert
	b.AddEdge("alice", "photo-tag", 0.4)
	b.AddEdge("bob", "traffic-check", 0.7)
	b.AddEdge("carol", "photo-tag", 0.8)
	g := b.Build()

	react, _ := matching.REACT{Cycles: 200, Rand: rand.New(rand.NewSource(1))}.Match(g)
	exact, _ := matching.Hungarian{}.Match(g)
	fmt.Printf("react:  %s\n", react.Assignments()["traffic-check"])
	fmt.Printf("weight: react %.1f vs optimal %.1f\n", react.Weight(), exact.Weight())
	// Output:
	// react:  alice
	// weight: react 1.7 vs optimal 1.7
}

// The cardinality ceiling tells the scheduler whether unmatched tasks are a
// budget problem (REACT matched fewer than possible) or a pruning problem
// (nobody could match more).
func ExampleHopcroftKarp() {
	// Three tasks all depend on the same single worker: only one is
	// assignable no matter the algorithm.
	b := bipartite.NewBuilder(1, 3)
	b.AddWorker("solo")
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("t%d", i)
		b.AddTask(id)
		b.AddEdge("solo", id, 0.5)
	}
	ceiling, _ := matching.HopcroftKarp{}.Match(b.Build())
	fmt.Println("assignable:", ceiling.Size(), "of 3")
	// Output: assignable: 1 of 3
}
