package matching

import (
	"react/internal/bipartite"
)

// HopcroftKarp computes a maximum-cardinality matching in O(E·√V),
// ignoring weights. It answers a question none of the weighted matchers do:
// how many of this batch's tasks are assignable *at all* given the surviving
// edges? The scheduler's diagnostics compare a weighted matcher's Size
// against this ceiling to distinguish "cycles too small" (REACT matched
// fewer than possible) from "pruning too aggressive" (nobody could match
// more).
type HopcroftKarp struct{}

// Name implements Matcher.
func (HopcroftKarp) Name() string { return "hopcroft-karp" }

const hkInf = int32(1) << 30

// Match implements Matcher.
func (HopcroftKarp) Match(g *bipartite.Graph) (*bipartite.Matching, Stats) {
	m := bipartite.NewMatching(g)
	var st Stats
	nT := int32(g.NumTasks())
	nW := int32(g.NumWorkers())
	if nT == 0 || nW == 0 || g.NumEdges() == 0 {
		return m, st
	}

	pairT := make([]int32, nT) // matched edge index at each task, -1 free
	pairW := make([]int32, nW) // matched edge index at each worker, -1 free
	for i := range pairT {
		pairT[i] = -1
	}
	for i := range pairW {
		pairW[i] = -1
	}
	dist := make([]int32, nT)
	queue := make([]int32, 0, nT)

	bfs := func() bool {
		queue = queue[:0]
		for t := int32(0); t < nT; t++ {
			if pairT[t] == -1 {
				dist[t] = 0
				queue = append(queue, t)
			} else {
				dist[t] = hkInf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			t := queue[head]
			for _, ei := range g.TaskEdges(t) {
				st.EdgesScanned++
				w := g.Edge(int(ei)).Worker
				if pairW[w] == -1 {
					found = true
					continue
				}
				next := g.Edge(int(pairW[w])).Task
				if dist[next] == hkInf {
					dist[next] = dist[t] + 1
					queue = append(queue, next)
				}
			}
		}
		return found
	}

	var dfs func(t int32) bool
	dfs = func(t int32) bool {
		for _, ei := range g.TaskEdges(t) {
			st.EdgesScanned++
			w := g.Edge(int(ei)).Worker
			if pairW[w] == -1 {
				pairT[t] = ei
				pairW[w] = ei
				return true
			}
			next := g.Edge(int(pairW[w])).Task
			if dist[next] == dist[t]+1 && dfs(next) {
				pairT[t] = ei
				pairW[w] = ei
				return true
			}
		}
		dist[t] = hkInf
		return false
	}

	for bfs() {
		st.Cycles++ // phases
		for t := int32(0); t < nT; t++ {
			if pairT[t] == -1 && dfs(t) {
				st.Adds++
			}
		}
	}
	for t := int32(0); t < nT; t++ {
		if pairT[t] != -1 {
			if err := m.Add(pairT[t]); err != nil {
				panic("matching: hopcroft-karp produced conflicting pairs: " + err.Error())
			}
		}
	}
	return m, st
}
