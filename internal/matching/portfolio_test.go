package matching

import (
	"math/rand"
	"testing"

	"react/internal/bipartite"
)

func TestPortfolioValidAndDeterministic(t *testing.T) {
	g := randomGraph(15, 15, 0.7, 11)
	a, sa := Portfolio{Searches: 4, Cycles: 500, Seed: 5}.Match(g)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	b, sb := Portfolio{Searches: 4, Cycles: 500, Seed: 5}.Match(g)
	if a.Weight() != b.Weight() || sa.Cycles != sb.Cycles {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", a.Weight(), sa.Cycles, b.Weight(), sb.Cycles)
	}
	if sa.Cycles != 4*500 {
		t.Fatalf("aggregate cycles = %d, want 2000", sa.Cycles)
	}
}

func TestPortfolioAtLeastSingleSearch(t *testing.T) {
	// The max over k searches dominates any single member, so across seeds
	// the portfolio should never lose to search #0 with the same stream.
	g := bipartite.Full(50, 50, func(w, tk int) float64 {
		return rand.New(rand.NewSource(int64(w*53 + tk))).Float64()
	})
	for seed := int64(0); seed < 5; seed++ {
		single, _ := REACT{Cycles: 800,
			Rand: rand.New(rand.NewSource(seed ^ 1*0x5851f42d4c957f2d))}.Match(g)
		port, _ := Portfolio{Searches: 4, Cycles: 800, Seed: seed}.Match(g)
		if port.Weight() < single.Weight()-1e-9 {
			t.Fatalf("seed %d: portfolio %v below its own first member %v",
				seed, port.Weight(), single.Weight())
		}
	}
}

func TestPortfolioSingleSearchEqualsREACT(t *testing.T) {
	g := randomGraph(10, 10, 0.8, 13)
	p, _ := Portfolio{Searches: 1, Cycles: 300, Seed: 9}.Match(g)
	r, _ := REACT{Cycles: 300, Rand: rand.New(rand.NewSource(9))}.Match(g)
	if p.Weight() != r.Weight() {
		t.Fatalf("degenerate portfolio %v != react %v", p.Weight(), r.Weight())
	}
}

func TestPortfolioEmptyGraph(t *testing.T) {
	m, _ := Portfolio{Searches: 4}.Match(bipartite.NewBuilder(0, 0).Build())
	if m.Size() != 0 {
		t.Fatal("matched on empty graph")
	}
}

func TestPortfolioImprovesExpectedWeight(t *testing.T) {
	// Statistical: averaged over seeds, max-of-4 beats a single search.
	g := bipartite.Full(60, 60, func(w, tk int) float64 {
		return rand.New(rand.NewSource(int64(w*59 + tk))).Float64()
	})
	var single, portfolio float64
	for seed := int64(0); seed < 8; seed++ {
		s, _ := REACT{Cycles: 600, Rand: rand.New(rand.NewSource(seed))}.Match(g)
		p, _ := Portfolio{Searches: 4, Cycles: 600, Seed: seed}.Match(g)
		single += s.Weight()
		portfolio += p.Weight()
	}
	if portfolio <= single {
		t.Fatalf("portfolio total %v not above single %v", portfolio, single)
	}
}

func BenchmarkPortfolio4x1000Cycles(b *testing.B) {
	g := bipartite.Full(100, 100, func(w, tk int) float64 { return float64((w*101+tk)%100) / 100 })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Portfolio{Searches: 4, Cycles: 1000, Seed: int64(i)}.Match(g)
	}
}
