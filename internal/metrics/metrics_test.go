package metrics

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-2)
	if got := c.Value(); got != 3 {
		t.Fatalf("Value = %d, want 3", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Fatalf("Value = %d, want 16000", got)
	}
}

func TestWelfordKnownValues(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if got := w.Mean(); got != 5 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Unbiased variance of this classic set is 32/7.
	if got, want := w.Variance(), 32.0/7; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if w.Min() != 2 || w.Max() != 9 || w.Count() != 8 {
		t.Fatalf("min/max/count = %v/%v/%v", w.Min(), w.Max(), w.Count())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 || w.Std() != 0 {
		t.Fatal("empty Welford should report zeros")
	}
	w.Observe(3)
	if w.Mean() != 3 || w.Variance() != 0 {
		t.Fatalf("single-sample mean/var = %v/%v", w.Mean(), w.Variance())
	}
}

func TestQuickWelfordMatchesDirect(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) < 2 {
			return true
		}
		var w Welford
		var sum float64
		for _, r := range raw {
			w.Observe(float64(r))
			sum += float64(r)
		}
		mean := sum / float64(len(raw))
		var m2 float64
		for _, r := range raw {
			d := float64(r) - mean
			m2 += d * d
		}
		variance := m2 / float64(len(raw)-1)
		return math.Abs(w.Mean()-mean) < 1e-6 && math.Abs(w.Variance()-variance) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 5); err == nil {
		t.Fatal("zero width accepted")
	}
	if _, err := NewHistogram(1, 0); err == nil {
		t.Fatal("zero buckets accepted")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h, err := NewHistogram(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	// Uniform 0..99: median ≈ 50, p90 ≈ 90.
	for i := 0; i < 100; i++ {
		h.Observe(float64(i) + 0.5)
	}
	if got := h.Quantile(0.5); math.Abs(got-50) > 1.5 {
		t.Fatalf("median = %v", got)
	}
	if got := h.Quantile(0.9); math.Abs(got-90) > 1.5 {
		t.Fatalf("p90 = %v", got)
	}
	if got := h.Quantile(0); got > 1.5 {
		t.Fatalf("p0 = %v", got)
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestHistogramOverflowAndNegative(t *testing.T) {
	h, err := NewHistogram(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(-5) // clamps to bucket 0
	h.Observe(500)
	h.Observe(1000)
	if h.Count() != 3 {
		t.Fatalf("Count = %d", h.Count())
	}
	// With 2/3 of mass in overflow, the p99 reports the upper bound.
	if got := h.Quantile(0.99); got != 10 {
		t.Fatalf("overflow quantile = %v, want upper bound 10", got)
	}
	if got := h.Quantile(0.2); got > 1 {
		t.Fatalf("low quantile = %v", got)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h, _ := NewHistogram(1, 4)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v", got)
	}
}

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("deadline-met")
	if x, y := s.Last(); x != 0 || y != 0 {
		t.Fatal("empty Last should be zeros")
	}
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*i))
	}
	if s.Len() != 10 {
		t.Fatalf("Len = %d", s.Len())
	}
	if x, y := s.At(3); x != 3 || y != 9 {
		t.Fatalf("At(3) = %v,%v", x, y)
	}
	if x, y := s.Last(); x != 9 || y != 81 {
		t.Fatalf("Last = %v,%v", x, y)
	}
	if s.Name() != "deadline-met" {
		t.Fatalf("Name = %q", s.Name())
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("s")
	s.Add(1, 2)
	s.Add(3, 4)
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "s,1,2\ns,3,4\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestSeriesDownsample(t *testing.T) {
	s := NewSeries("s")
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i))
	}
	pts := s.Downsample(5)
	if len(pts) != 5 {
		t.Fatalf("Downsample(5) len = %d", len(pts))
	}
	if pts[0][0] != 0 || pts[4][0] != 99 {
		t.Fatalf("endpoints = %v, %v", pts[0], pts[4])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] <= pts[i-1][0] {
			t.Fatalf("downsampled xs not increasing: %v", pts)
		}
	}
	if got := s.Downsample(0); got != nil {
		t.Fatalf("Downsample(0) = %v", got)
	}
	if got := s.Downsample(1000); len(got) != 100 {
		t.Fatalf("oversized Downsample len = %d", len(got))
	}
	one := NewSeries("one")
	one.Add(5, 6)
	if got := one.Downsample(3); len(got) != 1 || got[0] != [2]float64{5, 6} {
		t.Fatalf("single-point downsample = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("algo", "tasks", "weight")
	tb.AddRow("react", 1000, 812.25)
	tb.AddRow("greedy", 10, 9.5)
	var b strings.Builder
	if err := tb.Write(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("rendered %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "algo") || !strings.Contains(lines[1], "812.250") {
		t.Fatalf("unexpected render:\n%s", out)
	}
	// Columns align: "tasks" column starts at the same offset in each line.
	idx := strings.Index(lines[0], "tasks")
	if !strings.HasPrefix(lines[1][idx:], "1000") {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableSortRows(t *testing.T) {
	tb := NewTable("n", "v")
	tb.AddRow(30, "c")
	tb.AddRow(10, "a")
	tb.AddRow(20, "b")
	tb.SortRows(0)
	var b strings.Builder
	tb.Write(&b)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if !strings.HasPrefix(lines[1], "10") || !strings.HasPrefix(lines[3], "30") {
		t.Fatalf("sort failed:\n%s", b.String())
	}
}

func TestSeriesConcurrent(t *testing.T) {
	s := NewSeries("c")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Add(float64(i), float64(i))
				s.Last()
			}
		}()
	}
	wg.Wait()
	if s.Len() != 4000 {
		t.Fatalf("Len = %d, want 4000", s.Len())
	}
}
