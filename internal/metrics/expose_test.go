package metrics

import (
	"strings"
	"testing"
)

func TestCounterExposition(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	c.Add(42)
	if err := reg.RegisterCounter("react_tasks_total", "tasks seen", &c); err != nil {
		t.Fatal(err)
	}
	out := render(t, reg)
	want := "# HELP react_tasks_total tasks seen\n# TYPE react_tasks_total counter\nreact_tasks_total 42\n"
	if out != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", out, want)
	}
}

func TestGaugeAndLabels(t *testing.T) {
	reg := NewRegistry()
	v := 1.5
	err := reg.RegisterGauge("react_depth", "queue depth", func() float64 { return v },
		L("shard", "0"), L("state", "unassigned"))
	if err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterGauge("react_depth", "queue depth", func() float64 { return 7 },
		L("shard", "1"), L("state", "unassigned")); err != nil {
		t.Fatal(err)
	}
	out := render(t, reg)
	for _, want := range []string{
		"# TYPE react_depth gauge",
		`react_depth{shard="0",state="unassigned"} 1.5`,
		`react_depth{shard="1",state="unassigned"} 7`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE react_depth") != 1 {
		t.Errorf("TYPE line must appear once per family:\n%s", out)
	}
}

func TestWelfordSummaryExposition(t *testing.T) {
	reg := NewRegistry()
	var w Welford
	w.Observe(1)
	w.Observe(2)
	w.Observe(3)
	if err := reg.RegisterSummary("react_batch_size", "", &w); err != nil {
		t.Fatal(err)
	}
	out := render(t, reg)
	for _, want := range []string{
		"# TYPE react_batch_size summary",
		"react_batch_size_sum 6",
		"react_batch_size_count 3",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, out)
		}
	}
}

func TestHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	h, err := NewHistogram(0.5, 2) // buckets [0,0.5) [0.5,1.0), then +Inf
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(0.1)
	h.Observe(0.6)
	h.Observe(0.7)
	h.Observe(5) // overflow
	if err := reg.RegisterHistogram("react_latency_seconds", "matcher latency", h); err != nil {
		t.Fatal(err)
	}
	out := render(t, reg)
	for _, want := range []string{
		"# TYPE react_latency_seconds histogram",
		`react_latency_seconds_bucket{le="0.5"} 1`,
		`react_latency_seconds_bucket{le="1"} 3`,
		`react_latency_seconds_bucket{le="+Inf"} 4`,
		"react_latency_seconds_sum 6.4",
		"react_latency_seconds_count 4",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, out)
		}
	}
}

func TestHistogramSumTracksClamp(t *testing.T) {
	h, err := NewHistogram(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Observe(-3) // clamps to 0
	h.Observe(2)
	if got := h.Sum(); got != 2 {
		t.Fatalf("Sum = %v, want 2 (negative samples clamp to 0)", got)
	}
}

func TestRegisterRejectsBadInput(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	if err := reg.RegisterCounter("0bad", "", &c); err == nil {
		t.Error("numeric-leading name accepted")
	}
	if err := reg.RegisterCounter("bad-name", "", &c); err == nil {
		t.Error("dash in name accepted")
	}
	if err := reg.Register("x", "", "nonsense", &c); err == nil {
		t.Error("invalid kind accepted")
	}
	if err := reg.Register("x", "", KindCounter, nil); err == nil {
		t.Error("nil source accepted")
	}
	if err := reg.RegisterCounter("ok_name", "", &c, L("bad-key", "v")); err == nil {
		t.Error("invalid label key accepted")
	}
}

func TestRegisterRejectsConflicts(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	if err := reg.RegisterCounter("react_x", "", &c); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterGauge("react_x", "", func() float64 { return 0 }); err == nil {
		t.Error("same name with different kind accepted")
	}
	if err := reg.RegisterCounter("react_x", "", &c); err == nil {
		t.Error("duplicate series (same name, same labels) accepted")
	}
	if err := reg.RegisterCounter("react_x", "", &c, L("region", "a")); err != nil {
		t.Errorf("distinct label set rejected: %v", err)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	reg := NewRegistry()
	var c Counter
	if err := reg.RegisterCounter("react_esc", "", &c, L("id", "a\"b\\c\nd")); err != nil {
		t.Fatal(err)
	}
	out := render(t, reg)
	if !strings.Contains(out, `react_esc{id="a\"b\\c\nd"} 0`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
}

func TestFamiliesSortedByName(t *testing.T) {
	reg := NewRegistry()
	var a, b Counter
	if err := reg.RegisterCounter("react_zz", "", &a); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterCounter("react_aa", "", &b); err != nil {
		t.Fatal(err)
	}
	out := render(t, reg)
	if strings.Index(out, "react_aa") > strings.Index(out, "react_zz") {
		t.Errorf("families not sorted:\n%s", out)
	}
}

func render(t *testing.T, reg *Registry) string {
	t.Helper()
	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}
