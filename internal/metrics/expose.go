// Prometheus text exposition (version 0.0.4) for the measurement
// primitives in this package, plus the Registry every subsystem reports
// into. The live observability plane (internal/obs) serves a Registry at
// /metrics; nothing here depends on HTTP, so offline tools can render the
// same families to a file.
//
// The mapping is the conventional one:
//
//	Counter   → a single "counter" sample
//	GaugeFunc → a single "gauge" sample read at scrape time
//	Welford   → a "summary" family (_sum and _count)
//	Histogram → a "histogram" family (_bucket{le=...}, _sum, _count)
package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Label is one name/value pair attached to a metric series. Several series
// may share a family name as long as their label sets differ (per-shard
// depths, per-region engines).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Exposer writes the sample lines of one metric series in Prometheus text
// exposition format. name is the family name; labels (possibly empty) are
// appended to every sample the series emits.
type Exposer interface {
	ExposeMetric(w io.Writer, name string, labels []Label) error
}

// GaugeFunc adapts a read-at-scrape-time function into an Exposer; the
// natural carrier for values the system already tracks elsewhere (queue
// depths, worker counts, engine counters held as atomics).
type GaugeFunc func() float64

// ExposeMetric writes one gauge sample.
func (g GaugeFunc) ExposeMetric(w io.Writer, name string, labels []Label) error {
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, formatLabels(labels), formatFloat(g()))
	return err
}

// ExposeMetric writes one counter sample.
func (c *Counter) ExposeMetric(w io.Writer, name string, labels []Label) error {
	_, err := fmt.Fprintf(w, "%s%s %d\n", name, formatLabels(labels), c.Value())
	return err
}

// ExposeMetric writes the summary pair (_sum, _count) for the accumulated
// samples.
func (w *Welford) ExposeMetric(out io.Writer, name string, labels []Label) error {
	w.mu.Lock()
	n, sum := w.n, w.mean*float64(w.n)
	w.mu.Unlock()
	ls := formatLabels(labels)
	if _, err := fmt.Fprintf(out, "%s_sum%s %s\n", name, ls, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(out, "%s_count%s %d\n", name, ls, n)
	return err
}

// ExposeMetric writes the cumulative bucket series, _sum, and _count.
// Bucket upper bounds are the histogram's fixed-width edges; the overflow
// bucket becomes le="+Inf".
func (h *Histogram) ExposeMetric(w io.Writer, name string, labels []Label) error {
	h.mu.Lock()
	buckets := append([]int64(nil), h.buckets...)
	total, sum, width := h.total, h.sum, h.width
	h.mu.Unlock()
	var cum int64
	for i, c := range buckets {
		cum += c
		le := formatFloat(width * float64(i+1))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name,
			formatLabels(append(append([]Label(nil), labels...), Label{"le", le})), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name,
		formatLabels(append(append([]Label(nil), labels...), Label{"le", "+Inf"})), total); err != nil {
		return err
	}
	ls := formatLabels(labels)
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, ls, formatFloat(sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, ls, total)
	return err
}

// Metric kinds for Registry.Register; they become the "# TYPE" line.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindSummary   = "summary"
	KindHistogram = "histogram"
)

// series is one registered Exposer with its label set.
type series struct {
	labels []Label
	src    Exposer
}

// family groups every series sharing one metric name.
type family struct {
	help, kind string
	series     []series
}

// Registry is the instrumentation index the observability plane exposes:
// subsystems register their counters, gauges, summaries, and histograms
// once at startup, and WriteText renders a consistent snapshot on every
// scrape. Safe for concurrent use; registration during scraping is
// allowed (regions can spin up while the plane is live).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Register adds one series under name. The name and label keys must be
// valid Prometheus identifiers; registering the same name with a
// different kind, or the same name with an identical label set, is an
// error.
func (r *Registry) Register(name, help, kind string, src Exposer, labels ...Label) error {
	if !validMetricName(name) {
		return fmt.Errorf("metrics: invalid metric name %q", name)
	}
	switch kind {
	case KindCounter, KindGauge, KindSummary, KindHistogram:
	default:
		return fmt.Errorf("metrics: invalid kind %q for %q", kind, name)
	}
	for _, l := range labels {
		if !validLabelKey(l.Key) {
			return fmt.Errorf("metrics: invalid label key %q on %q", l.Key, name)
		}
	}
	if src == nil {
		return fmt.Errorf("metrics: nil source for %q", name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{help: help, kind: kind}
		r.families[name] = f
	} else if f.kind != kind {
		return fmt.Errorf("metrics: %q already registered as %s, not %s", name, f.kind, kind)
	}
	key := labelKey(labels)
	for _, s := range f.series {
		if labelKey(s.labels) == key {
			return fmt.Errorf("metrics: duplicate series %s%s", name, formatLabels(labels))
		}
	}
	f.series = append(f.series, series{labels: append([]Label(nil), labels...), src: src})
	return nil
}

// MustRegister is Register that panics on error — registration mistakes
// are programming bugs and surface at startup, not at scrape time.
func (r *Registry) MustRegister(name, help, kind string, src Exposer, labels ...Label) {
	if err := r.Register(name, help, kind, src, labels...); err != nil {
		panic(err)
	}
}

// RegisterCounter registers a Counter under name.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labels ...Label) error {
	return r.Register(name, help, KindCounter, c, labels...)
}

// RegisterGauge registers a read-at-scrape-time gauge under name.
func (r *Registry) RegisterGauge(name, help string, f func() float64, labels ...Label) error {
	return r.Register(name, help, KindGauge, GaugeFunc(f), labels...)
}

// RegisterCounterFunc registers a read-at-scrape-time monotonic counter —
// for totals the system already keeps as atomics elsewhere.
func (r *Registry) RegisterCounterFunc(name, help string, f func() float64, labels ...Label) error {
	return r.Register(name, help, KindCounter, GaugeFunc(f), labels...)
}

// RegisterSummary registers a Welford accumulator under name.
func (r *Registry) RegisterSummary(name, help string, w *Welford, labels ...Label) error {
	return r.Register(name, help, KindSummary, w, labels...)
}

// RegisterHistogram registers a Histogram under name.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labels ...Label) error {
	return r.Register(name, help, KindHistogram, h, labels...)
}

// WriteText renders every family in Prometheus text exposition format,
// families sorted by name, series in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	// Snapshot the series lists so sources are read outside the registry
	// lock (a source must never re-enter the registry, but may take its
	// own locks).
	type fam struct {
		name string
		family
	}
	fams := make([]fam, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		fams = append(fams, fam{name: name, family: family{
			help: f.help, kind: f.kind, series: append([]series(nil), f.series...),
		}})
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := s.src.ExposeMetric(w, f.name, s.labels); err != nil {
				return err
			}
		}
	}
	return nil
}

// formatLabels renders {k="v",...}, empty string for no labels.
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// labelKey is a canonical identity for a label set (registration dedup).
func labelKey(labels []Label) string {
	return formatLabels(labels)
}

// formatFloat renders a sample value the way Prometheus expects: plain
// decimal, no exponent for the common cases, %g otherwise.
func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelKey(key string) bool {
	if key == "" {
		return false
	}
	for i, c := range key {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
