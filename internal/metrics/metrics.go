// Package metrics provides the measurement primitives the experiment
// harnesses report with: atomic counters, streaming moments (Welford),
// bucketed histograms with quantile queries, and (x, y) series for the
// paper's cumulative curves (Figures 5 and 6). Everything is safe for
// concurrent use so the live (wall-clock) middleware can share the same
// instrumentation as the single-threaded simulator.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic (or signed) event counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds delta (may be negative).
func (c *Counter) Add(delta int64) { c.v.Add(delta) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Welford accumulates streaming mean and variance with Welford's method,
// plus min/max. The zero value is ready to use.
type Welford struct {
	mu       sync.Mutex
	n        int64
	mean, m2 float64
	min, max float64
}

// Observe records one sample.
func (w *Welford) Observe(x float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.n++
	if w.n == 1 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// Count reports the number of samples.
func (w *Welford) Count() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.n
}

// Mean reports the sample mean (0 with no samples).
func (w *Welford) Mean() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.mean
}

// Variance reports the unbiased sample variance (0 with <2 samples).
func (w *Welford) Variance() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Std reports the sample standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Variance()) }

// Min reports the smallest sample (0 with none).
func (w *Welford) Min() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.min
}

// Max reports the largest sample (0 with none).
func (w *Welford) Max() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.max
}

// Histogram counts samples into fixed-width buckets over [0, width·n) with
// an overflow bucket, and answers quantile queries by linear interpolation
// inside the winning bucket.
type Histogram struct {
	mu      sync.Mutex
	width   float64
	buckets []int64
	over    int64
	total   int64
	sum     float64
}

// NewHistogram creates a histogram with n buckets of the given width.
func NewHistogram(width float64, n int) (*Histogram, error) {
	if width <= 0 || n < 1 {
		return nil, fmt.Errorf("metrics: invalid histogram shape width=%v n=%d", width, n)
	}
	return &Histogram{width: width, buckets: make([]int64, n)}, nil
}

// Observe records one non-negative sample; negative samples clamp to 0.
func (h *Histogram) Observe(x float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if x < 0 {
		x = 0
	}
	i := int(x / h.width)
	if i >= len(h.buckets) {
		h.over++
	} else {
		h.buckets[i]++
	}
	h.total++
	h.sum += x
}

// Sum reports the total of all observed samples (after the non-negative
// clamp) — the _sum series of the histogram's text exposition.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Count reports total samples.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Quantile returns an estimate of the p-quantile (p in [0,1]). Samples in
// the overflow bucket report the histogram's upper bound. With no samples it
// returns 0.
func (h *Histogram) Quantile(p float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := p * float64(h.total)
	var cum float64
	for i, c := range h.buckets {
		next := cum + float64(c)
		if next >= target && c > 0 {
			frac := (target - cum) / float64(c)
			return (float64(i) + frac) * h.width
		}
		cum = next
	}
	return h.width * float64(len(h.buckets))
}

// Series is an ordered list of (x, y) points, e.g. "tasks received" vs
// "tasks finished before deadline" for Figure 5.
type Series struct {
	mu   sync.Mutex
	name string
	xs   []float64
	ys   []float64
}

// NewSeries names a series for CSV output.
func NewSeries(name string) *Series { return &Series{name: name} }

// Name reports the series label.
func (s *Series) Name() string { return s.name }

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
}

// Len reports the number of points.
func (s *Series) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.xs)
}

// At returns point i.
func (s *Series) At(i int) (x, y float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.xs[i], s.ys[i]
}

// Last returns the final point, or zeros when empty.
func (s *Series) Last() (x, y float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.xs) == 0 {
		return 0, 0
	}
	return s.xs[len(s.xs)-1], s.ys[len(s.ys)-1]
}

// WriteCSV emits "name,x,y" rows.
func (s *Series) WriteCSV(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.xs {
		if _, err := fmt.Fprintf(w, "%s,%g,%g\n", s.name, s.xs[i], s.ys[i]); err != nil {
			return err
		}
	}
	return nil
}

// Downsample returns at most n points spread evenly across the series,
// always including the last point — enough to print a readable curve.
func (s *Series) Downsample(n int) [][2]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || len(s.xs) == 0 {
		return nil
	}
	if n > len(s.xs) {
		n = len(s.xs)
	}
	out := make([][2]float64, 0, n)
	step := float64(len(s.xs)-1) / float64(n-1)
	if n == 1 {
		step = 0
	}
	for i := 0; i < n; i++ {
		idx := int(math.Round(float64(i) * step))
		if idx >= len(s.xs) {
			idx = len(s.xs) - 1
		}
		out = append(out, [2]float64{s.xs[idx], s.ys[idx]})
	}
	return out
}

// Table renders aligned experiment rows; the harnesses print one table per
// figure.
type Table struct {
	mu     sync.Mutex
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
}

// Write renders the table with aligned columns.
func (t *Table) Write(w io.Writer) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		for i, c := range cells {
			pad := widths[i] - len(c)
			if i > 0 {
				if _, err := io.WriteString(w, "  "); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s%s", c, spaces(pad)); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.header); err != nil {
		return err
	}
	return writeRowsSorted(t.rows, writeRow)
}

func writeRowsSorted(rows [][]string, emit func([]string) error) error {
	// Rows keep insertion order; sorting is left to callers that need it.
	for _, r := range rows {
		if err := emit(r); err != nil {
			return err
		}
	}
	return nil
}

func spaces(n int) string {
	if n <= 0 {
		return ""
	}
	const pad = "                                                                "
	if n <= len(pad) {
		return pad[:n]
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = ' '
	}
	return string(b)
}

// SortRows orders the table's rows by the numeric value of column col; rows
// whose cell fails to parse sort last in input order.
func (t *Table) SortRows(col int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	sort.SliceStable(t.rows, func(i, j int) bool {
		a, aerr := parseFloat(t.rows[i], col)
		b, berr := parseFloat(t.rows[j], col)
		if aerr != nil {
			return false
		}
		if berr != nil {
			return true
		}
		return a < b
	})
}

func parseFloat(row []string, col int) (float64, error) {
	if col >= len(row) {
		return 0, fmt.Errorf("no column %d", col)
	}
	var v float64
	_, err := fmt.Sscanf(row[col], "%g", &v)
	return v, err
}
