package journal

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"react/internal/clock"
)

// Store is the durable journal for one region server: a sequenced WAL of
// segment files plus a snapshot, under a single data directory.
//
// Appends are memory-only — frames accumulate in a buffer under a mutex,
// so the taskq sink can call Append while holding a shard lock without
// ever touching the disk. A flusher goroutine group-commits the buffer:
// it writes and fsyncs on a time interval (Options.FsyncInterval) or as
// soon as the buffer passes Options.FsyncBytes. The durability window is
// therefore one fsync interval; the wire layer's resubmit-on-unknown
// reconciliation covers exactly that window (see docs/PERSISTENCE.md).
//
// When the active segment passes Options.CompactBytes it is sealed and a
// snapshot is rebuilt OFFLINE by replaying the previous snapshot plus the
// sealed, immutable segments — never by reading the live engine — so the
// snapshot is exact at a known sequence boundary.
type Store struct {
	dir  string
	clk  clock.Clock
	opts Options

	// mu guards the append state. Hold it only for memory work: the taskq
	// sink calls Append under a shard lock, so anything slower than a
	// buffer append here would serialize the engine on the disk.
	mu          sync.Mutex
	seq         uint64 // last assigned sequence number
	buf         []byte // framed records not yet written
	pendingRecs int
	f           *os.File // active segment
	activePath  string
	err         error // sticky: first I/O failure, journaling stops
	closed      bool

	// flushMu serializes disk work (flush, compaction). Never acquired
	// while holding mu; flush takes the buffer under mu, then writes.
	flushMu      sync.Mutex
	lastFlushed  uint64 // highest seq durable in the active segment
	snapPath     string
	snapSeq      uint64
	sealed       []string // sealed segments since the last snapshot

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup

	recovered *State
	summary   Summary

	records     atomic.Int64
	bytes       atomic.Int64
	fsyncs      atomic.Int64
	fsyncNanos  atomic.Int64
	compactions atomic.Int64
	segBytes    atomic.Int64
	failed      atomic.Bool
	fsyncObs    atomic.Value // func(seconds float64)
}

// Options configures Open.
type Options struct {
	// Dir is the data directory; created if absent.
	Dir string
	// Clock times fsync latency (never the pacing ticker). Defaults to
	// the system clock.
	Clock clock.Clock
	// FsyncInterval bounds how long an acknowledged append may sit in
	// memory before it is durable. Default 25ms.
	FsyncInterval time.Duration
	// FsyncBytes forces an early group commit once this many buffered
	// bytes accumulate. Default 256KiB.
	FsyncBytes int
	// CompactBytes seals the active segment and rebuilds the snapshot
	// once the segment grows past this size. Default 4MiB.
	CompactBytes int64
	// Logf receives recovery and failure reports. Defaults to log.Printf.
	Logf func(format string, args ...any)
}

const (
	defaultFsyncInterval = 25 * time.Millisecond
	defaultFsyncBytes    = 256 << 10
	defaultCompactBytes  = 4 << 20
)

// Summary describes what Open recovered.
type Summary struct {
	SnapshotSeq uint64 // sequence boundary of the snapshot recovery started from
	TailRecords int    // WAL records replayed past the snapshot
	TornBytes   int    // unreadable bytes truncated from the crash tail
	Tasks       int    // tasks in the recovered state
	Workers     int    // worker profiles in the recovered state
	LastSeq     uint64 // highest sequence number recovered
}

// Stats is a point-in-time counter snapshot for the observability plane.
type Stats struct {
	Records      int64 // records appended since Open
	Bytes        int64 // frame bytes appended since Open
	Fsyncs       int64 // group commits performed
	FsyncNanos   int64 // cumulative fsync latency
	Compactions  int64 // snapshot rebuilds performed
	PendingBytes int   // bytes buffered, not yet durable
	SegmentBytes int64 // bytes in the active segment
	LastSeq      uint64
	Failed       bool // sticky I/O failure: journaling has stopped
}

var errClosed = errors.New("journal: store closed")

func segmentName(firstSeq uint64) string { return fmt.Sprintf("wal-%016x.log", firstSeq) }

// Open recovers whatever the directory holds — snapshot, sealed segments,
// a possibly-torn active segment — and leaves a clean baseline: a fresh
// snapshot at the recovered boundary and a new empty active segment, with
// every older file deleted. Recovery either replays cleanly or fails
// loudly (ErrCorrupt); it never silently drops a record.
func Open(opts Options) (*Store, error) {
	if opts.Dir == "" {
		return nil, errors.New("journal: Options.Dir is required")
	}
	if opts.Clock == nil {
		opts.Clock = clock.System{}
	}
	if opts.FsyncInterval <= 0 {
		opts.FsyncInterval = defaultFsyncInterval
	}
	if opts.FsyncBytes <= 0 {
		opts.FsyncBytes = defaultFsyncBytes
	}
	if opts.CompactBytes <= 0 {
		opts.CompactBytes = defaultCompactBytes
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: create data dir: %w", err)
	}

	snapPath, segs, leftovers, err := scanDir(opts.Dir)
	if err != nil {
		return nil, err
	}
	st := NewState()
	var snapSeq uint64
	if snapPath != "" {
		if st, snapSeq, err = readSnapshot(snapPath); err != nil {
			return nil, err
		}
	}
	last, tailRecords, torn, err := replaySegments(st, snapSeq, segs, true)
	if err != nil {
		return nil, err
	}

	// Write the recovered state back as a fresh snapshot and start a new
	// empty segment, then delete everything older. Recovery is thereby
	// idempotent: a crash at any point here re-recovers to the same state.
	newSnap, err := writeSnapshot(opts.Dir, st, last)
	if err != nil {
		return nil, err
	}
	activePath := filepath.Join(opts.Dir, segmentName(last+1))
	f, err := os.OpenFile(activePath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: create segment: %w", err)
	}
	for _, stale := range append(append(leftovers, segs...), snapPath) {
		if stale == "" || stale == newSnap || stale == activePath {
			continue
		}
		if err := os.Remove(stale); err != nil {
			f.Close()
			return nil, fmt.Errorf("journal: remove stale %s: %w", filepath.Base(stale), err)
		}
	}
	if err := syncDir(opts.Dir); err != nil {
		f.Close()
		return nil, err
	}

	s := &Store{
		dir:         opts.Dir,
		clk:         opts.Clock,
		opts:        opts,
		seq:         last,
		f:           f,
		activePath:  activePath,
		lastFlushed: last,
		snapPath:    newSnap,
		snapSeq:     last,
		kick:        make(chan struct{}, 1),
		done:        make(chan struct{}),
		recovered:   st,
		summary: Summary{
			SnapshotSeq: snapSeq,
			TailRecords: tailRecords,
			TornBytes:   torn,
			Tasks:       len(st.Tasks),
			Workers:     st.Profiles.Size(),
			LastSeq:     last,
		},
	}
	if torn > 0 {
		opts.Logf("journal: truncated %d unreadable bytes from the crash tail (records past the last group commit)", torn)
	}
	s.wg.Add(1)
	go s.flusher()
	return s, nil
}

// scanDir classifies the directory contents: the newest snapshot, the
// segment files in sequence order, and leftover files (older snapshots,
// an interrupted snapshot.tmp) recovery should delete once done.
func scanDir(dir string) (snapPath string, segs, leftovers []string, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", nil, nil, fmt.Errorf("journal: scan data dir: %w", err)
	}
	type seg struct {
		first uint64
		path  string
	}
	var segList []seg
	var snapSeq uint64
	for _, e := range entries {
		name := e.Name()
		switch {
		case name == snapshotTmp:
			leftovers = append(leftovers, filepath.Join(dir, name))
		case strings.HasPrefix(name, "snapshot-") && strings.HasSuffix(name, ".snap"):
			seqHex := strings.TrimSuffix(strings.TrimPrefix(name, "snapshot-"), ".snap")
			n, perr := strconv.ParseUint(seqHex, 16, 64)
			if perr != nil {
				return "", nil, nil, fmt.Errorf("journal: unparseable snapshot name %q", name)
			}
			if p := filepath.Join(dir, name); snapPath == "" || n > snapSeq {
				if snapPath != "" {
					leftovers = append(leftovers, snapPath)
				}
				snapPath, snapSeq = p, n
			} else {
				leftovers = append(leftovers, p)
			}
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			seqHex := strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log")
			n, perr := strconv.ParseUint(seqHex, 16, 64)
			if perr != nil {
				return "", nil, nil, fmt.Errorf("journal: unparseable segment name %q", name)
			}
			segList = append(segList, seg{first: n, path: filepath.Join(dir, name)})
		}
	}
	sort.Slice(segList, func(i, j int) bool { return segList[i].first < segList[j].first })
	for _, sg := range segList {
		segs = append(segs, sg.path)
	}
	return snapPath, segs, leftovers, nil
}

// replaySegments applies every record after snapSeq to st, enforcing
// sequence contiguity. Records at or below snapSeq are leftovers of a
// compaction that crashed before deleting its inputs and are skipped. A
// torn tail is tolerated only on the final segment when allowTornTail is
// set (Open's crash window); anywhere else unreadable bytes are ErrCorrupt.
func replaySegments(st *State, snapSeq uint64, segs []string, allowTornTail bool) (last uint64, records, torn int, err error) {
	last = snapSeq
	for i, path := range segs {
		base := filepath.Base(path)
		raw, rerr := os.ReadFile(path)
		if rerr != nil {
			return last, records, torn, fmt.Errorf("journal: read segment: %w", rerr)
		}
		recs, t, derr := decodeFrames(raw)
		if derr != nil {
			return last, records, torn, fmt.Errorf("journal: segment %s: %w", base, derr)
		}
		if t > 0 {
			if !allowTornTail || i != len(segs)-1 {
				return last, records, torn, fmt.Errorf(
					"%w: sealed segment %s has %d unreadable trailing bytes", ErrCorrupt, base, t)
			}
			torn += t
		}
		for _, rec := range recs {
			if rec.Seq <= snapSeq {
				continue
			}
			if rec.Seq != last+1 {
				return last, records, torn, fmt.Errorf(
					"%w: sequence gap — recovered through %d but segment %s continues at %d",
					ErrCorrupt, last, base, rec.Seq)
			}
			if aerr := st.Apply(rec); aerr != nil {
				return last, records, torn, aerr
			}
			last = rec.Seq
			records++
		}
	}
	return last, records, torn, nil
}

// TakeRecovered hands over the state Open rebuilt, once; later calls
// return nil. The caller bulk-loads it into a fresh engine and the store
// drops its reference so the memory can be reclaimed.
func (s *Store) TakeRecovered() *State {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.recovered
	s.recovered = nil
	return st
}

// Summary reports what Open recovered.
func (s *Store) Summary() Summary { return s.summary }

// Append sequences rec and buffers its frame. It performs no I/O and is
// safe to call from a taskq sink holding a shard lock; durability follows
// within one fsync interval (or sooner, once FsyncBytes accumulate).
func (s *Store) Append(rec Record) error {
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return err
	}
	if s.closed {
		s.mu.Unlock()
		return errClosed
	}
	rec.Seq = s.seq + 1
	buf, err := appendFrame(s.buf, rec)
	if err != nil {
		s.mu.Unlock()
		return err
	}
	grew := len(buf) - len(s.buf)
	s.seq++
	s.buf = buf
	s.pendingRecs++
	pending := len(s.buf)
	s.mu.Unlock()

	s.records.Add(1)
	s.bytes.Add(int64(grew))
	if pending >= s.opts.FsyncBytes {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// flusher is the group-commit loop: every tick (or early kick) it writes
// the buffered frames and fsyncs once, amortizing the fsync across every
// append since the last commit.
func (s *Store) flusher() {
	defer s.wg.Done()
	//lint:ignore clockdiscipline the ticker only paces group commits; fsync latency itself reads the injected clock
	ticker := time.NewTicker(s.opts.FsyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-ticker.C:
		case <-s.kick:
		}
		if s.flush() != nil {
			return // sticky error recorded; appends now fail loudly
		}
	}
}

// Sync forces a group commit, blocking until every record appended before
// the call is durable (or the store has failed).
func (s *Store) Sync() error { return s.flush() }

func (s *Store) flush() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	return s.flushLocked()
}

// flushLocked writes and fsyncs the buffered frames. Callers hold flushMu.
func (s *Store) flushLocked() error {
	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return err
	}
	buf := s.buf
	s.buf = nil
	s.pendingRecs = 0
	f := s.f
	boundary := s.seq
	s.mu.Unlock()
	if len(buf) == 0 {
		return nil
	}
	start := s.clk.Now()
	if _, err := f.Write(buf); err != nil {
		return s.fail(fmt.Errorf("journal: write segment: %w", err))
	}
	if err := f.Sync(); err != nil {
		return s.fail(fmt.Errorf("journal: fsync segment: %w", err))
	}
	elapsed := s.clk.Now().Sub(start)
	s.fsyncs.Add(1)
	s.fsyncNanos.Add(int64(elapsed))
	if obs, _ := s.fsyncObs.Load().(func(float64)); obs != nil {
		obs(elapsed.Seconds())
	}
	s.lastFlushed = boundary
	if s.segBytes.Add(int64(len(buf))) >= s.opts.CompactBytes {
		if err := s.compactLocked(); err != nil {
			return s.fail(err)
		}
	}
	return nil
}

// Compact forces a segment seal and snapshot rebuild, as the size trigger
// would. Mostly for tests and operational tooling.
func (s *Store) Compact() error {
	s.flushMu.Lock()
	defer s.flushMu.Unlock()
	if err := s.flushLocked(); err != nil {
		return err
	}
	if err := s.compactLocked(); err != nil {
		return s.fail(err)
	}
	return nil
}

// compactLocked seals the active segment and rebuilds the snapshot at the
// last durable sequence number by replaying the previous snapshot plus the
// sealed segments — offline state only, never the live engine, so the new
// snapshot is exact at the boundary. Callers hold flushMu.
func (s *Store) compactLocked() error {
	boundary := s.lastFlushed
	if boundary == s.snapSeq {
		return nil // nothing durable beyond the snapshot yet
	}

	// Seal: swap in a fresh segment so appends continue; the old file is
	// now immutable (everything through boundary was just fsynced).
	newPath := filepath.Join(s.dir, segmentName(boundary+1))
	nf, err := os.OpenFile(newPath, os.O_WRONLY|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: create segment: %w", err)
	}
	s.mu.Lock()
	old := s.f
	oldPath := s.activePath
	s.f = nf
	s.activePath = newPath
	s.mu.Unlock()
	if err := old.Close(); err != nil {
		return fmt.Errorf("journal: close sealed segment: %w", err)
	}
	s.sealed = append(s.sealed, oldPath)
	s.segBytes.Store(0)

	// Rebuild offline and publish the new snapshot, then delete inputs.
	st, snapSeq, err := readSnapshot(s.snapPath)
	if err != nil {
		return err
	}
	last, _, _, err := replaySegments(st, snapSeq, s.sealed, false)
	if err != nil {
		return err
	}
	if last != boundary {
		return fmt.Errorf("%w: compaction replayed through %d, expected boundary %d", ErrCorrupt, last, boundary)
	}
	newSnap, err := writeSnapshot(s.dir, st, boundary)
	if err != nil {
		return err
	}
	oldSnap := s.snapPath
	s.snapPath, s.snapSeq = newSnap, boundary
	for _, p := range append(s.sealed, oldSnap) {
		if err := os.Remove(p); err != nil {
			return fmt.Errorf("journal: remove compacted %s: %w", filepath.Base(p), err)
		}
	}
	s.sealed = nil
	if err := syncDir(s.dir); err != nil {
		return err
	}
	s.compactions.Add(1)
	return nil
}

// fail records the first I/O failure; journaling stops, every later
// Append returns the same error, and the failure is loud in the log and
// on the metrics plane. The server itself keeps scheduling: a dead disk
// degrades durability, not availability.
func (s *Store) fail(err error) error {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	err = s.err
	s.mu.Unlock()
	s.failed.Store(true)
	s.opts.Logf("journal: FAILED, journaling stopped: %v", err)
	return err
}

// Err reports the sticky failure, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// SetFsyncObserver installs a callback receiving each group commit's
// fsync latency in seconds (e.g. a metrics histogram).
func (s *Store) SetFsyncObserver(fn func(seconds float64)) {
	if fn != nil {
		s.fsyncObs.Store(fn)
	}
}

// Stats snapshots the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	pending := len(s.buf)
	last := s.seq
	s.mu.Unlock()
	return Stats{
		Records:      s.records.Load(),
		Bytes:        s.bytes.Load(),
		Fsyncs:       s.fsyncs.Load(),
		FsyncNanos:   s.fsyncNanos.Load(),
		Compactions:  s.compactions.Load(),
		PendingBytes: pending,
		SegmentBytes: s.segBytes.Load(),
		LastSeq:      last,
		Failed:       s.failed.Load(),
	}
}

// Close stops the flusher, performs a final group commit so every
// acknowledged append is durable, and closes the active segment. The
// flush-before-shutdown ordering is the caller's contract: stop producing
// appends (engine loops, connections) before calling Close.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.err
	}
	s.closed = true
	s.mu.Unlock()
	close(s.done)
	s.wg.Wait()
	ferr := s.flush()
	s.mu.Lock()
	f := s.f
	s.f = nil
	s.mu.Unlock()
	var cerr error
	if f != nil {
		cerr = f.Close()
	}
	if ferr != nil {
		return ferr
	}
	if cerr != nil {
		return fmt.Errorf("journal: close segment: %w", cerr)
	}
	return nil
}
