// Package journal makes a region server's scheduling state durable: a
// per-shard-ordered write-ahead log of task-lifecycle mutations plus
// periodic snapshot compaction, so a crashed reactd restarts with every
// in-flight task instead of relying on clients to resubmit.
//
// The design splits into three layers:
//
//   - Records (this file): each WAL entry carries the FULL post-mutation
//     task record — physiological redo logging — so replay is a pure
//     upsert. No replayed operation can fail a lifecycle check, no clock
//     needs rewinding, and the final state of a task is simply its last
//     record. Per-task ordering is guaranteed at the source: taskq emits
//     events under the shard mutex, before the mutating call returns.
//   - Framing and the WAL (frame.go, store.go): length-prefixed,
//     CRC32C-checked frames appended to segment files with group-commit
//     fsync batching. Recovery distinguishes a torn tail (the crash
//     window — truncated and reported) from mid-log corruption (valid
//     frames found beyond the damage — refused loudly).
//   - Snapshots and compaction (snapshot.go, rebuild.go): a snapshot is
//     always produced by replaying sealed, immutable segments offline —
//     never by racing a live engine — so it is exact at a known sequence
//     boundary and recovery applies only records strictly after it.
package journal

import (
	"fmt"

	"react/internal/event"
	"react/internal/taskq"
)

// Kind discriminates WAL records.
type Kind uint8

// Record kinds. The task-lifecycle kinds (Submit through Forget) mirror
// taskq.EventKind and carry the full record; Feedback, Attach, and
// Deregister are engine-level facts the task store cannot observe.
const (
	KindSubmit Kind = iota + 1
	KindAssign
	KindUnassign
	KindComplete
	KindExpire
	KindForget
	KindFeedback
	KindAttach
	KindDeregister
)

// String names the kind for logs and errors.
func (k Kind) String() string {
	switch k {
	case KindSubmit:
		return "submit"
	case KindAssign:
		return "assign"
	case KindUnassign:
		return "unassign"
	case KindComplete:
		return "complete"
	case KindExpire:
		return "expire"
	case KindForget:
		return "forget"
	case KindFeedback:
		return "feedback"
	case KindAttach:
		return "attach"
	case KindDeregister:
		return "deregister"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Record is one WAL entry. Seq is assigned by the store at append time and
// is strictly contiguous within a log: recovery treats a gap as data loss
// and refuses to start.
type Record struct {
	Seq  uint64 `json:"seq"`
	Kind Kind   `json:"kind"`

	// Task carries the full post-mutation record for the task-lifecycle
	// kinds (nil for KindForget and the worker-level kinds).
	Task *taskq.Record `json:"task,omitempty"`

	// TaskID identifies the subject of KindForget and KindFeedback.
	TaskID string `json:"task_id,omitempty"`

	// Worker-level fields: KindFeedback credits Worker's accuracy in
	// Category; KindAttach registers Worker at (Lat, Lon); KindDeregister
	// removes Worker and its history.
	Worker   string  `json:"worker,omitempty"`
	Category string  `json:"category,omitempty"`
	Positive bool    `json:"positive,omitempty"`
	Lat      float64 `json:"lat,omitempty"`
	Lon      float64 `json:"lon,omitempty"`
}

// FromEvent derives the WAL record for a spine event. The second return
// is false for events that are not journaled (scheduling-round
// summaries): batches are recomputed, not replayed. The event's Record
// is the full post-mutation state, so the WAL entry is exactly the
// physiological redo payload replay needs.
func FromEvent(ev event.Event) (Record, bool) {
	rec := ev.Record
	switch ev.Kind {
	case event.KindSubmit:
		return Record{Kind: KindSubmit, Task: &rec}, true
	case event.KindAssign:
		return Record{Kind: KindAssign, Task: &rec}, true
	case event.KindRevoke:
		return Record{Kind: KindUnassign, Task: &rec}, true
	case event.KindComplete:
		return Record{Kind: KindComplete, Task: &rec}, true
	case event.KindExpire:
		return Record{Kind: KindExpire, Task: &rec}, true
	case event.KindForget:
		return Record{Kind: KindForget, TaskID: ev.Task}, true
	default:
		return Record{}, false
	}
}

// validate rejects records that could not be replayed.
func (r Record) validate() error {
	switch r.Kind {
	case KindSubmit, KindAssign, KindUnassign, KindComplete, KindExpire:
		if r.Task == nil || r.Task.Task.ID == "" {
			return fmt.Errorf("journal: %v record without task state", r.Kind)
		}
	case KindForget, KindFeedback:
		if r.TaskID == "" {
			return fmt.Errorf("journal: %v record without task id", r.Kind)
		}
	case KindAttach, KindDeregister:
		if r.Worker == "" {
			return fmt.Errorf("journal: %v record without worker id", r.Kind)
		}
	default:
		return fmt.Errorf("journal: unknown record kind %d", int(r.Kind))
	}
	return nil
}
