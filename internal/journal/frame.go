package journal

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
)

// WAL framing: every record is one frame on disk,
//
//	[4B little-endian payload length][4B CRC32C of payload][payload JSON]
//
// Length-prefixing makes scanning cheap; the checksum catches both torn
// writes (the crash window between append and fsync) and at-rest
// corruption. decodeFrames tells those two apart: damage followed only by
// unreadable bytes is a torn tail and recovery truncates it, damage with a
// provably valid frame beyond it means the middle of the log is gone and
// recovery must refuse rather than silently drop the records in between.

const frameHeaderLen = 8

// maxRecordBytes bounds a single frame's payload. Real records are a few
// hundred bytes; the bound keeps a corrupt length prefix from asking the
// decoder to allocate gigabytes.
const maxRecordBytes = 1 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt marks damage recovery must not paper over: checksummed frames
// exist beyond the failure point, so truncating would silently drop
// acknowledged records.
var ErrCorrupt = errors.New("journal: log corrupt")

// appendFrame encodes rec and appends its frame to dst.
func appendFrame(dst []byte, rec Record) ([]byte, error) {
	if err := rec.validate(); err != nil {
		return dst, err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return dst, fmt.Errorf("journal: encode record: %w", err)
	}
	if len(payload) > maxRecordBytes {
		return dst, fmt.Errorf("journal: record of %d bytes exceeds frame bound", len(payload))
	}
	var hdr [frameHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	return dst, nil
}

// frameAt tries to decode one frame starting at off. ok reports a
// complete, checksummed, decodable frame; next is the offset just past it.
func frameAt(buf []byte, off int) (rec Record, next int, ok bool) {
	if off+frameHeaderLen > len(buf) {
		return Record{}, 0, false
	}
	n := int(binary.LittleEndian.Uint32(buf[off : off+4]))
	if n <= 0 || n > maxRecordBytes || off+frameHeaderLen+n > len(buf) {
		return Record{}, 0, false
	}
	payload := buf[off+frameHeaderLen : off+frameHeaderLen+n]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[off+4:off+8]) {
		return Record{}, 0, false
	}
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, 0, false
	}
	if rec.validate() != nil {
		return Record{}, 0, false
	}
	return rec, off + frameHeaderLen + n, true
}

// decodeFrames walks buf from the start, returning every valid frame and
// the number of trailing bytes that form a torn tail. If the walk stops
// before the end but another valid frame with a larger sequence number
// exists anywhere beyond the stop point, the damage is mid-log and the
// error wraps ErrCorrupt.
func decodeFrames(buf []byte) (recs []Record, tornBytes int, err error) {
	off := 0
	for off < len(buf) {
		rec, next, ok := frameAt(buf, off)
		if !ok {
			break
		}
		recs = append(recs, rec)
		off = next
	}
	if off == len(buf) {
		return recs, 0, nil
	}
	var lastSeq uint64
	if len(recs) > 0 {
		lastSeq = recs[len(recs)-1].Seq
	}
	// Scan the damaged region for any later frame that still checks out.
	// A CRC32C + JSON + sequence match on random garbage is vanishingly
	// unlikely, so a hit means real records lie beyond the damage.
	for probe := off + 1; probe+frameHeaderLen < len(buf); probe++ {
		if rec, _, ok := frameAt(buf, probe); ok && rec.Seq > lastSeq {
			return recs, 0, fmt.Errorf(
				"%w: unreadable bytes at offset %d but a valid frame (seq %d) survives at offset %d",
				ErrCorrupt, off, rec.Seq, probe)
		}
	}
	return recs, len(buf) - off, nil
}
