package journal

import (
	"fmt"

	"react/internal/profile"
	"react/internal/region"
	"react/internal/taskq"
)

// Counters are the engine statistics the journal can reconstruct. Batch
// counts and matcher wall time are intentionally absent: scheduling rounds
// are not journaled (they carry no state a replay needs), so those two
// reset across a recovery.
type Counters struct {
	Received   int64 `json:"received"`
	Assigned   int64 `json:"assigned"`
	Completed  int64 `json:"completed"`
	OnTime     int64 `json:"on_time"`
	Expired    int64 `json:"expired"`
	Reassigned int64 `json:"reassigned"`
}

// State is rebuilt scheduling state: the task registry as plain records,
// the worker profiles, and the counters. It is produced by replaying a
// snapshot plus WAL records and consumed either by recovery (bulk-loaded
// into a fresh engine) or by compaction (written straight back out as the
// next snapshot).
type State struct {
	Tasks    map[string]taskq.Record
	Profiles *profile.Registry
	Stats    Counters
}

// NewState returns an empty rebuild target.
func NewState() *State {
	return &State{
		Tasks:    make(map[string]taskq.Record),
		Profiles: profile.NewRegistry(),
	}
}

// Apply replays one record. Task-lifecycle records are pure upserts — the
// record carries the full post-mutation state, and the taskq sink's
// under-lock emission guarantees per-task order — so Apply cannot reject a
// record for being in the "wrong" state; it only fails on records that
// reference impossible worker state, which indicates a corrupt or
// hand-edited log.
func (s *State) Apply(r Record) error {
	switch r.Kind {
	case KindSubmit:
		s.Tasks[r.Task.Task.ID] = *r.Task
		s.Stats.Received++
	case KindAssign:
		s.Tasks[r.Task.Task.ID] = *r.Task
		s.Stats.Assigned++
	case KindUnassign:
		s.Tasks[r.Task.Task.ID] = *r.Task
		s.Stats.Reassigned++
	case KindComplete:
		s.Tasks[r.Task.Task.ID] = *r.Task
		s.Stats.Completed++
		if r.Task.MetDeadline() {
			s.Stats.OnTime++
		}
		// Mirror the live engine: a completion feeds the worker's
		// power-law execution-time model immediately.
		if p, ok := s.Profiles.Get(r.Task.Worker); ok {
			p.RecordExecTime(r.Task.ExecTime().Seconds())
		}
	case KindExpire:
		s.Tasks[r.Task.Task.ID] = *r.Task
		s.Stats.Expired++
	case KindForget:
		delete(s.Tasks, r.TaskID)
	case KindFeedback:
		// The grade credits the worker's per-category accuracy (Eq. 1) and
		// marks the task graded so a replayed server still rejects double
		// grading. A missing task is normal (retention may have forgotten
		// it between the grade and the crash); a missing worker means the
		// worker deregistered afterwards, and its history went with it.
		if p, ok := s.Profiles.Get(r.Worker); ok {
			p.RecordFeedback(r.Category, r.Positive)
		}
		if rec, ok := s.Tasks[r.TaskID]; ok {
			rec.Graded = true
			s.Tasks[r.TaskID] = rec
		}
	case KindAttach:
		loc := region.Point{Lat: r.Lat, Lon: r.Lon}
		if _, err := s.Profiles.Register(r.Worker, loc); err != nil {
			// Already present: the worker was restored from the snapshot
			// or attached earlier in the log; refresh its location.
			if p, ok := s.Profiles.Get(r.Worker); ok && loc.Valid() {
				p.SetLocation(loc)
			} else if !ok {
				return fmt.Errorf("journal: replay attach %q: %w", r.Worker, err)
			}
		}
	case KindDeregister:
		if err := s.Profiles.Deregister(r.Worker); err != nil {
			return fmt.Errorf("journal: replay deregister: %w", err)
		}
	default:
		return fmt.Errorf("journal: replay unknown record kind %d", int(r.Kind))
	}
	return nil
}
