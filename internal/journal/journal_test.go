package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"react/internal/event"
	"react/internal/taskq"
)

var testEpoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// taskRec builds a full post-mutation record, as the taskq sink would emit.
func taskRec(id string, status taskq.Status, worker string) *taskq.Record {
	r := &taskq.Record{
		Task: taskq.Task{
			ID:        id,
			Deadline:  testEpoch.Add(time.Minute),
			Reward:    1,
			Category:  "ocr",
			Submitted: testEpoch,
		},
		Status: status,
		Worker: worker,
	}
	if status != taskq.Unassigned {
		r.AssignedAt = testEpoch.Add(time.Second)
		r.Attempts = 1
	}
	if status == taskq.Completed || status == taskq.Expired {
		r.FinishedAt = testEpoch.Add(30 * time.Second)
	}
	return r
}

func mustFrames(recs ...Record) []byte {
	var buf []byte
	var err error
	for _, r := range recs {
		if buf, err = appendFrame(buf, r); err != nil {
			panic(err)
		}
	}
	return buf
}

func frames(t *testing.T, recs ...Record) []byte {
	t.Helper()
	return mustFrames(recs...)
}

func lifecycle(n int) []Record {
	var recs []Record
	seq := uint64(0)
	next := func() uint64 { seq++; return seq }
	recs = append(recs, Record{Seq: next(), Kind: KindAttach, Worker: "w1", Lat: 40, Lon: -74})
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("t%03d", i)
		recs = append(recs,
			Record{Seq: next(), Kind: KindSubmit, Task: taskRec(id, taskq.Unassigned, "")},
			Record{Seq: next(), Kind: KindAssign, Task: taskRec(id, taskq.Assigned, "w1")},
			Record{Seq: next(), Kind: KindComplete, Task: taskRec(id, taskq.Completed, "w1")},
			Record{Seq: next(), Kind: KindFeedback, TaskID: id, Worker: "w1", Category: "ocr", Positive: true},
		)
	}
	return recs
}

func TestFrameRoundtrip(t *testing.T) {
	want := lifecycle(3)
	buf := frames(t, want...)
	got, torn, err := decodeFrames(buf)
	if err != nil || torn != 0 {
		t.Fatalf("decodeFrames: torn=%d err=%v", torn, err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Seq != want[i].Seq || got[i].Kind != want[i].Kind {
			t.Fatalf("record %d: got seq=%d kind=%v, want seq=%d kind=%v",
				i, got[i].Seq, got[i].Kind, want[i].Seq, want[i].Kind)
		}
	}
}

// TestDecodeTruncatedAtEveryOffset is the torn-write corpus: a crash can
// cut the log at ANY byte. Every prefix must decode to exactly the
// complete frames it contains, reporting the remainder as a torn tail —
// never an error, never a phantom record.
func TestDecodeTruncatedAtEveryOffset(t *testing.T) {
	recs := lifecycle(2)
	buf := frames(t, recs...)
	// Frame boundaries, so we know how many records each prefix holds.
	var bounds []int
	off := 0
	for off < len(buf) {
		_, next, ok := frameAt(buf, off)
		if !ok {
			t.Fatalf("frameAt(%d) failed on pristine log", off)
		}
		bounds = append(bounds, next)
		off = next
	}
	for cut := 0; cut <= len(buf); cut++ {
		got, torn, err := decodeFrames(buf[:cut])
		if err != nil {
			t.Fatalf("cut=%d: unexpected error %v", cut, err)
		}
		wantN := 0
		for _, b := range bounds {
			if b <= cut {
				wantN++
			}
		}
		if len(got) != wantN {
			t.Fatalf("cut=%d: decoded %d records, want %d", cut, len(got), wantN)
		}
		wantTorn := cut
		if wantN > 0 {
			wantTorn = cut - bounds[wantN-1]
		}
		if torn != wantTorn {
			t.Fatalf("cut=%d: torn=%d, want %d", cut, torn, wantTorn)
		}
	}
}

// TestDecodeMidLogCorruption pins the loud-failure contract: damage with
// valid frames beyond it is ErrCorrupt, because truncating there would
// silently drop acknowledged records.
func TestDecodeMidLogCorruption(t *testing.T) {
	buf := frames(t, lifecycle(3)...)
	for _, flip := range []int{0, 1, 4, 9, 20} {
		bad := bytes.Clone(buf)
		bad[flip] ^= 0xff
		_, _, err := decodeFrames(bad)
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip byte %d: got err=%v, want ErrCorrupt", flip, err)
		}
	}
}

// TestDecodeTailGarbage: trailing garbage with no valid frame beyond it is
// a torn tail, not corruption.
func TestDecodeTailGarbage(t *testing.T) {
	recs := lifecycle(1)
	buf := frames(t, recs...)
	garbage := append(bytes.Clone(buf), 0xde, 0xad, 0xbe, 0xef, 0x01, 0x02)
	got, torn, err := decodeFrames(garbage)
	if err != nil {
		t.Fatalf("decodeFrames: %v", err)
	}
	if len(got) != len(recs) || torn != 6 {
		t.Fatalf("got %d records torn=%d, want %d records torn=6", len(got), torn, len(recs))
	}
}

func TestStateApply(t *testing.T) {
	st := NewState()
	for _, r := range lifecycle(2) {
		if err := st.Apply(r); err != nil {
			t.Fatalf("Apply(%v): %v", r.Kind, err)
		}
	}
	if len(st.Tasks) != 2 {
		t.Fatalf("tasks: %d, want 2", len(st.Tasks))
	}
	if st.Stats.Received != 2 || st.Stats.Completed != 2 || st.Stats.OnTime != 2 {
		t.Fatalf("stats: %+v", st.Stats)
	}
	p, ok := st.Profiles.Get("w1")
	if !ok {
		t.Fatal("worker w1 not restored")
	}
	if acc, ok := p.Accuracy("ocr"); !ok || acc != 1 {
		t.Fatalf("accuracy: %v %v, want 1", acc, ok)
	}
	if p.FitSamples() != 2 {
		t.Fatalf("fit samples: %d, want 2", p.FitSamples())
	}
	if !st.Tasks["t000"].Graded {
		t.Fatal("feedback did not mark task graded")
	}
	// Forget removes, deregister drops the worker.
	if err := st.Apply(Record{Seq: 100, Kind: KindForget, TaskID: "t000"}); err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Tasks["t000"]; ok {
		t.Fatal("forget did not remove the task")
	}
	if err := st.Apply(Record{Seq: 101, Kind: KindDeregister, Worker: "w1"}); err != nil {
		t.Fatal(err)
	}
	if st.Profiles.Size() != 0 {
		t.Fatal("deregister did not remove the worker")
	}
}

func openTest(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestStoreRoundtrip(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	if sum := s.Summary(); sum.Tasks != 0 || sum.LastSeq != 0 {
		t.Fatalf("fresh dir summary: %+v", sum)
	}
	s.TakeRecovered()
	for _, r := range lifecycle(5) {
		r.Seq = 0 // the store assigns sequence numbers
		if err := s.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := openTest(t, dir)
	defer s2.Close()
	sum := s2.Summary()
	if sum.Tasks != 5 || sum.Workers != 1 || sum.LastSeq != 21 {
		t.Fatalf("summary after reopen: %+v", sum)
	}
	st := s2.TakeRecovered()
	if st == nil || len(st.Tasks) != 5 {
		t.Fatalf("recovered state: %+v", st)
	}
	for id, rec := range st.Tasks {
		if rec.Status != taskq.Completed || !rec.Graded {
			t.Fatalf("task %s: status=%v graded=%v", id, rec.Status, rec.Graded)
		}
	}
	if s2.TakeRecovered() != nil {
		t.Fatal("TakeRecovered handed the state out twice")
	}
}

// TestStoreKillAtEveryOffset is the crash-injection sweep: truncate the
// segment at every byte, reopen, and require recovery to surface exactly
// the records that survived whole — fail loudly or replay cleanly, never
// silently drop an intact record.
func TestStoreKillAtEveryOffset(t *testing.T) {
	master := t.TempDir()
	s := openTest(t, master)
	s.TakeRecovered()
	recs := lifecycle(3)
	for _, r := range recs {
		r.Seq = 0
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(master, segmentName(1))
	seg, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	snapName := snapshotName(0)
	snap, err := os.ReadFile(filepath.Join(master, snapName))
	if err != nil {
		t.Fatal(err)
	}

	// Every byte offset is exercised cheaply at the decoder level by
	// TestDecodeTruncatedAtEveryOffset; here each cut pays three fsyncs
	// for a full store Open, so sweep the interesting offsets: every
	// frame boundary and its neighborhood, plus a coarse stride in
	// between.
	cuts := map[int]bool{0: true, len(seg): true}
	off := 0
	for off < len(seg) {
		_, next, ok := frameAt(seg, off)
		if !ok {
			t.Fatalf("frameAt(%d) failed on pristine segment", off)
		}
		for _, c := range []int{next - 1, next, next + 1, next + 5, (off + next) / 2} {
			if c >= 0 && c <= len(seg) {
				cuts[c] = true
			}
		}
		off = next
	}
	for c := 0; c < len(seg); c += 37 {
		cuts[c] = true
	}
	for cut := range cuts {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, snapName), snap, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segmentName(1)), seg[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		wantRecs, _, err := decodeFrames(seg[:cut])
		if err != nil {
			t.Fatalf("cut=%d: pristine prefix decode failed: %v", cut, err)
		}
		s, err := Open(Options{Dir: dir, Logf: t.Logf})
		if err != nil {
			t.Fatalf("cut=%d: Open: %v", cut, err)
		}
		st := s.TakeRecovered()
		want := NewState()
		for _, r := range wantRecs {
			if err := want.Apply(r); err != nil {
				t.Fatalf("cut=%d: apply: %v", cut, err)
			}
		}
		if len(st.Tasks) != len(want.Tasks) {
			t.Fatalf("cut=%d: recovered %d tasks, want %d", cut, len(st.Tasks), len(want.Tasks))
		}
		for id, rec := range want.Tasks {
			got, ok := st.Tasks[id]
			if !ok || got.Status != rec.Status || got.Graded != rec.Graded {
				t.Fatalf("cut=%d: task %s mismatch: got %+v want %+v", cut, id, got, rec)
			}
		}
		if sum := s.Summary(); sum.TailRecords != len(wantRecs) {
			t.Fatalf("cut=%d: summary says %d tail records, want %d", cut, sum.TailRecords, len(wantRecs))
		}
		s.Close()
	}
}

// TestStoreRefusesMidLogCorruption: a flipped byte with intact frames
// beyond it must refuse recovery, not truncate away acknowledged records.
func TestStoreRefusesMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	s.TakeRecovered()
	for _, r := range lifecycle(3) {
		r.Seq = 0
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segPath := filepath.Join(dir, segmentName(1))
	seg, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	seg[10] ^= 0xff
	if err := os.WriteFile(segPath, seg, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Logf: t.Logf}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on corrupt log: err=%v, want ErrCorrupt", err)
	}
}

// TestStoreRefusesSequenceGap: a missing record (hand-edited or lost
// segment) must refuse recovery.
func TestStoreRefusesSequenceGap(t *testing.T) {
	dir := t.TempDir()
	buf := frames(t,
		Record{Seq: 1, Kind: KindSubmit, Task: taskRec("a", taskq.Unassigned, "")},
		Record{Seq: 3, Kind: KindSubmit, Task: taskRec("b", taskq.Unassigned, "")},
	)
	if err := os.WriteFile(filepath.Join(dir, segmentName(1)), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Logf: t.Logf}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open with seq gap: err=%v, want ErrCorrupt", err)
	}
}

// TestStoreRefusesTruncatedSnapshot: a snapshot missing its trailer (or
// lines) must refuse recovery rather than load partial state.
func TestStoreRefusesTruncatedSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	s.TakeRecovered()
	for _, r := range lifecycle(4) {
		r.Seq = 0
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, snapshotName(17))
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapPath, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir, Logf: t.Logf}); err == nil {
		t.Fatal("Open loaded a truncated snapshot")
	}
}

// TestStoreCompaction: compaction rebuilds the snapshot at the durable
// boundary, removes the inputs, and recovery from the compacted dir sees
// the identical state.
func TestStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	s := openTest(t, dir)
	s.TakeRecovered()
	for _, r := range lifecycle(10) {
		r.Seq = 0
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if got := s.Stats().Compactions; got != 1 {
		t.Fatalf("compactions: %d, want 1", got)
	}
	// More records after the compaction land in the new segment.
	if err := s.Append(Record{Kind: KindSubmit, Task: taskRec("after", taskq.Unassigned, "")}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, segmentName(1))); !os.IsNotExist(err) {
		t.Fatalf("compaction left the old segment behind: %v", err)
	}

	s2 := openTest(t, dir)
	defer s2.Close()
	st := s2.TakeRecovered()
	if len(st.Tasks) != 11 {
		t.Fatalf("recovered %d tasks, want 11", len(st.Tasks))
	}
	if st.Stats.Completed != 10 {
		t.Fatalf("recovered stats: %+v", st.Stats)
	}
	if sum := s2.Summary(); sum.LastSeq != 42 {
		t.Fatalf("summary: %+v", sum)
	}
}

// TestStoreSizeTriggeredCompaction: the CompactBytes threshold seals and
// compacts without an explicit call.
func TestStoreSizeTriggeredCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, CompactBytes: 2048, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s.TakeRecovered()
	for _, r := range lifecycle(20) {
		r.Seq = 0
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Stats().Compactions; got == 0 {
		t.Fatal("size threshold never triggered a compaction")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir)
	defer s2.Close()
	if st := s2.TakeRecovered(); len(st.Tasks) != 20 {
		t.Fatalf("recovered %d tasks, want 20", len(st.Tasks))
	}
}

// TestStoreAppendAfterClose: appends after Close fail loudly instead of
// vanishing.
func TestStoreAppendAfterClose(t *testing.T) {
	s := openTest(t, t.TempDir())
	s.TakeRecovered()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(Record{Kind: KindSubmit, Task: taskRec("x", taskq.Unassigned, "")}); err == nil {
		t.Fatal("Append after Close succeeded")
	}
}

// TestStoreConcurrentAppend exercises the append/flush paths under the
// race detector: many goroutines appending while the flusher commits.
func TestStoreConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, FsyncInterval: time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s.TakeRecovered()
	done := make(chan error)
	const workers, per = 8, 50
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < per; i++ {
				id := fmt.Sprintf("w%d-t%d", w, i)
				if err := s.Append(Record{Kind: KindSubmit, Task: taskRec(id, taskq.Unassigned, "")}); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openTest(t, dir)
	defer s2.Close()
	if st := s2.TakeRecovered(); len(st.Tasks) != workers*per {
		t.Fatalf("recovered %d tasks, want %d", len(st.Tasks), workers*per)
	}
}

// FuzzJournalDecode hammers the frame decoder with arbitrary bytes: it
// must never panic, and whatever it accepts must re-encode to frames the
// decoder accepts again (decode∘encode = identity on the accepted set).
func FuzzJournalDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(mustFrames(lifecycle(2)...))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	seed := mustFrames(Record{Seq: 1, Kind: KindAttach, Worker: "w", Lat: 1, Lon: 2})
	f.Add(seed[:len(seed)-3])
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, torn, err := decodeFrames(data)
		if err != nil {
			return
		}
		if torn < 0 || torn > len(data) {
			t.Fatalf("torn=%d out of range", torn)
		}
		var buf []byte
		for _, r := range recs {
			var aerr error
			if buf, aerr = appendFrame(buf, r); aerr != nil {
				t.Fatalf("accepted record fails re-encode: %v", aerr)
			}
		}
		again, torn2, err2 := decodeFrames(buf)
		if err2 != nil || torn2 != 0 || len(again) != len(recs) {
			t.Fatalf("re-decode: %d records torn=%d err=%v, want %d", len(again), torn2, err2, len(recs))
		}
	})
}

// TestKindStringAndFromEvent pins the log-facing names and the spine
// event → WAL record mapping, including the not-journaled verdict for
// batch summaries and unknown event kinds.
func TestKindStringAndFromEvent(t *testing.T) {
	names := map[Kind]string{
		KindSubmit: "submit", KindAssign: "assign", KindUnassign: "unassign",
		KindComplete: "complete", KindExpire: "expire", KindForget: "forget",
		KindFeedback: "feedback", KindAttach: "attach", KindDeregister: "deregister",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(0).String(); got == "" {
		t.Error("unknown kind must still name itself for logs")
	}

	rec := *taskRec("t1", taskq.Assigned, "w1")
	pairs := map[event.Kind]Kind{
		event.KindSubmit: KindSubmit, event.KindAssign: KindAssign,
		event.KindRevoke: KindUnassign, event.KindComplete: KindComplete,
		event.KindExpire: KindExpire,
	}
	for ek, want := range pairs {
		got, ok := FromEvent(event.Event{Kind: ek, Task: "t1", Record: rec})
		if !ok || got.Kind != want || got.Task == nil || got.Task.Task.ID != "t1" {
			t.Errorf("FromEvent(%v) = %+v ok=%v, want kind %v carrying t1", ek, got, ok, want)
		}
		if err := got.validate(); err != nil {
			t.Errorf("FromEvent(%v) does not validate: %v", ek, err)
		}
	}
	forget, ok := FromEvent(event.Event{Kind: event.KindForget, Task: "t1", Record: rec})
	if !ok || forget.Kind != KindForget || forget.TaskID != "t1" || forget.Task != nil {
		t.Errorf("forget mapping = %+v ok=%v", forget, ok)
	}
	if _, ok := FromEvent(event.Event{Kind: event.KindBatch}); ok {
		t.Error("batch summaries must not be journaled")
	}
	if _, ok := FromEvent(event.Event{}); ok {
		t.Error("unknown event kind must not map to a journal record")
	}
}

// TestStoreErrAndObserver covers the healthy-path plumbing: Err is nil
// while the store works, and an installed fsync observer sees every group
// commit's latency.
func TestStoreErrAndObserver(t *testing.T) {
	s, err := Open(Options{Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var observed int
	s.SetFsyncObserver(func(seconds float64) {
		if seconds < 0 {
			t.Errorf("negative fsync latency %v", seconds)
		}
		observed++
	})
	if err := s.Append(Record{Kind: KindAttach, Worker: "w1", Lat: 40, Lon: -74}); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if observed == 0 {
		t.Fatal("fsync observer never called")
	}
	if err := s.Err(); err != nil {
		t.Fatalf("healthy store reports sticky error %v", err)
	}
}
