package journal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"react/internal/taskq"
)

// Snapshot format: line-oriented JSON, so the file streams and diffs well
// and the profile section can reuse profile.WriteSnapshot verbatim.
//
//	line 1                  header {v, seq, tasks, workers, stats}
//	lines 2..1+tasks        one taskq.Record per line, sorted by task ID
//	next `workers` lines    profile.Registry snapshot lines
//	last line               trailer {"eof":true}
//
// The header's counts plus the trailer make truncation detectable: a
// snapshot either reads back whole or recovery refuses it. Writes go
// through a temp file, fsync, rename, and directory fsync, so a crash
// mid-snapshot leaves the previous snapshot untouched.

const snapshotVersion = 1

type snapshotHeader struct {
	V       int      `json:"v"`
	Seq     uint64   `json:"seq"`
	Tasks   int      `json:"tasks"`
	Workers int      `json:"workers"`
	Stats   Counters `json:"stats"`
}

type snapshotTrailer struct {
	EOF bool `json:"eof"`
}

func snapshotName(seq uint64) string { return fmt.Sprintf("snapshot-%016x.snap", seq) }

const snapshotTmp = "snapshot.tmp"

// writeSnapshot persists st as the snapshot covering sequence numbers
// 1..seq and returns the final path.
func writeSnapshot(dir string, st *State, seq uint64) (string, error) {
	ids := make([]string, 0, len(st.Tasks))
	for id := range st.Tasks {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	hdr := snapshotHeader{
		V:       snapshotVersion,
		Seq:     seq,
		Tasks:   len(ids),
		Workers: st.Profiles.Size(),
		Stats:   st.Stats,
	}
	//lint:ignore blockingunderlock encodes into the in-memory buffer above; flushMu is the compaction serializer and holding it across the offline rebuild is the design (docs/PERSISTENCE.md)
	if err := enc.Encode(hdr); err != nil {
		return "", fmt.Errorf("journal: encode snapshot header: %w", err)
	}
	for _, id := range ids {
		rec := st.Tasks[id]
		//lint:ignore blockingunderlock same in-memory buffer as the header encode
		if err := enc.Encode(rec); err != nil {
			return "", fmt.Errorf("journal: encode snapshot task %q: %w", id, err)
		}
	}
	if err := st.Profiles.WriteSnapshot(&buf); err != nil {
		return "", err
	}
	//lint:ignore blockingunderlock same in-memory buffer as the header encode
	if err := enc.Encode(snapshotTrailer{EOF: true}); err != nil {
		return "", fmt.Errorf("journal: encode snapshot trailer: %w", err)
	}

	tmp := filepath.Join(dir, snapshotTmp)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("journal: create snapshot: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return "", fmt.Errorf("journal: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", fmt.Errorf("journal: fsync snapshot: %w", err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("journal: close snapshot: %w", err)
	}
	path := filepath.Join(dir, snapshotName(seq))
	if err := os.Rename(tmp, path); err != nil {
		return "", fmt.Errorf("journal: publish snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return path, nil
}

// readSnapshot loads a snapshot file, returning the rebuilt state and the
// sequence boundary it covers. Any shortfall — wrong version, missing
// lines, malformed records, absent trailer — is an error: a snapshot is
// all-or-nothing.
func readSnapshot(path string) (*State, uint64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, fmt.Errorf("journal: read snapshot: %w", err)
	}
	lines := bytes.Split(raw, []byte("\n"))
	// The file ends with a newline, so drop the final empty element.
	if n := len(lines); n > 0 && len(lines[n-1]) == 0 {
		lines = lines[:n-1]
	}
	if len(lines) < 2 {
		return nil, 0, fmt.Errorf("journal: snapshot %s truncated", filepath.Base(path))
	}
	var hdr snapshotHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return nil, 0, fmt.Errorf("journal: snapshot %s header: %w", filepath.Base(path), err)
	}
	if hdr.V != snapshotVersion {
		return nil, 0, fmt.Errorf("journal: snapshot %s has version %d, want %d", filepath.Base(path), hdr.V, snapshotVersion)
	}
	if want := 1 + hdr.Tasks + hdr.Workers + 1; len(lines) != want {
		return nil, 0, fmt.Errorf("journal: snapshot %s has %d lines, header promises %d — truncated or damaged",
			filepath.Base(path), len(lines), want)
	}
	var tr snapshotTrailer
	if err := json.Unmarshal(lines[len(lines)-1], &tr); err != nil || !tr.EOF {
		return nil, 0, fmt.Errorf("journal: snapshot %s missing eof trailer — truncated", filepath.Base(path))
	}

	st := NewState()
	st.Stats = hdr.Stats
	for i := 0; i < hdr.Tasks; i++ {
		var rec taskq.Record
		if err := json.Unmarshal(lines[1+i], &rec); err != nil {
			return nil, 0, fmt.Errorf("journal: snapshot %s task line %d: %w", filepath.Base(path), i+1, err)
		}
		if rec.Task.ID == "" {
			return nil, 0, fmt.Errorf("journal: snapshot %s task line %d has no id", filepath.Base(path), i+1)
		}
		if _, dup := st.Tasks[rec.Task.ID]; dup {
			return nil, 0, fmt.Errorf("journal: snapshot %s repeats task %q", filepath.Base(path), rec.Task.ID)
		}
		st.Tasks[rec.Task.ID] = rec
	}
	workerLines := bytes.Join(lines[1+hdr.Tasks:1+hdr.Tasks+hdr.Workers], []byte("\n"))
	restored, err := st.Profiles.ReadSnapshot(bytes.NewReader(workerLines))
	if err != nil {
		return nil, 0, fmt.Errorf("journal: snapshot %s: %w", filepath.Base(path), err)
	}
	if restored != hdr.Workers {
		return nil, 0, fmt.Errorf("journal: snapshot %s restored %d workers, header promises %d",
			filepath.Base(path), restored, hdr.Workers)
	}
	return st, hdr.Seq, nil
}

// syncDir fsyncs a directory so renames and unlinks within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("journal: open dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("journal: fsync dir: %w", err)
	}
	return nil
}
