// Package federation implements REACT's multi-server deployment (§III.A):
// the geographic area is decomposed into non-overlapping regions, each
// owned by one REACT server that matches only the tasks and workers located
// inside it — "this approach reduces the size of the matching problem
// without affecting the output". The Coordinator routes registrations and
// submissions by location, lazily starting one core.Server per active
// region, and aggregates statistics across the fleet. It is the
// programmatic form of what examples/overload demonstrates numerically:
// when one server can no longer sustain the assignment rate, run more
// servers on smaller regions.
package federation

import (
	"fmt"
	"sync"

	"react/internal/core"
	"react/internal/profile"
	"react/internal/region"
	"react/internal/taskq"
)

// ServerFactory builds the region server for a region ID. Factories let
// deployments vary configuration per region (e.g. larger cycle budgets for
// denser regions).
type ServerFactory func(regionID string) *core.Server

// Coordinator routes by geography across per-region servers. Safe for
// concurrent use.
type Coordinator struct {
	grid    *region.Grid
	factory ServerFactory

	mu           sync.Mutex
	servers      map[string]*core.Server
	workerRegion map[string]string // worker id → region id
	taskRegion   map[string]string // task id → region id
	stopped      bool
}

// New creates a coordinator over the given static decomposition.
func New(grid *region.Grid, factory ServerFactory) *Coordinator {
	return &Coordinator{
		grid:         grid,
		factory:      factory,
		servers:      make(map[string]*core.Server),
		workerRegion: make(map[string]string),
		taskRegion:   make(map[string]string),
	}
}

// server returns the region's server, starting it on first use.
func (c *Coordinator) server(regionID string) (*core.Server, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped {
		return nil, core.ErrStopped
	}
	s, ok := c.servers[regionID]
	if !ok {
		s = c.factory(regionID)
		s.Start()
		c.servers[regionID] = s
	}
	return s, nil
}

// RegisterWorker routes the worker to the server owning its location.
func (c *Coordinator) RegisterWorker(id string, loc region.Point) (<-chan core.Assignment, error) {
	regionID := c.grid.Locate(loc)
	s, err := c.server(regionID)
	if err != nil {
		return nil, err
	}
	feed, err := s.RegisterWorker(id, loc)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.workerRegion[id] = regionID
	c.mu.Unlock()
	return feed, nil
}

// DeregisterWorker removes the worker from its region server.
func (c *Coordinator) DeregisterWorker(id string) error {
	c.mu.Lock()
	regionID, ok := c.workerRegion[id]
	var s *core.Server
	if ok {
		s = c.servers[regionID]
		delete(c.workerRegion, id)
	}
	c.mu.Unlock()
	if !ok || s == nil {
		return fmt.Errorf("federation: unknown worker %q", id)
	}
	return s.DeregisterWorker(id)
}

// workerServer routes to the region server owning a worker.
func (c *Coordinator) workerServer(id string) (*core.Server, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	regionID, ok := c.workerRegion[id]
	if !ok {
		return nil, fmt.Errorf("federation: unknown worker %q", id)
	}
	s := c.servers[regionID]
	if s == nil {
		return nil, fmt.Errorf("federation: region %q has no server", regionID)
	}
	return s, nil
}

// DetachWorker forwards a connection drop to the owning region server; the
// profile survives for a later reconnect.
func (c *Coordinator) DetachWorker(id string) error {
	s, err := c.workerServer(id)
	if err != nil {
		return err
	}
	return s.DetachWorker(id)
}

// ReconnectWorker re-attaches a detached or snapshot-restored worker in its
// owning region.
func (c *Coordinator) ReconnectWorker(id string) (<-chan core.Assignment, error) {
	s, err := c.workerServer(id)
	if err != nil {
		return nil, err
	}
	return s.ReconnectWorker(id)
}

// Worker looks up a worker's profile across the fleet.
func (c *Coordinator) Worker(id string) (*profile.Profile, bool) {
	s, err := c.workerServer(id)
	if err != nil {
		return nil, false
	}
	return s.Worker(id)
}

// Submit routes the task to the server owning its location.
func (c *Coordinator) Submit(t taskq.Task) error {
	regionID := c.grid.Locate(t.Location)
	s, err := c.server(regionID)
	if err != nil {
		return err
	}
	if err := s.Submit(t); err != nil {
		return err
	}
	c.mu.Lock()
	c.taskRegion[t.ID] = regionID
	c.mu.Unlock()
	return nil
}

// Complete forwards a worker's answer to the server owning the task.
func (c *Coordinator) Complete(taskID, workerID, answer string) (core.Result, error) {
	s, err := c.taskServer(taskID)
	if err != nil {
		return core.Result{}, err
	}
	return s.Complete(taskID, workerID, answer)
}

// Feedback forwards the requester's verdict to the server owning the task.
func (c *Coordinator) Feedback(taskID string, positive bool) error {
	s, err := c.taskServer(taskID)
	if err != nil {
		return err
	}
	return s.Feedback(taskID, positive)
}

func (c *Coordinator) taskServer(taskID string) (*core.Server, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	regionID, ok := c.taskRegion[taskID]
	if !ok {
		return nil, fmt.Errorf("federation: unknown task %q", taskID)
	}
	s := c.servers[regionID]
	if s == nil {
		return nil, fmt.Errorf("federation: region %q has no server", regionID)
	}
	return s, nil
}

// TaskStatus reports a task's lifecycle state from the region server
// owning it; ok is false for tasks the federation has never routed.
func (c *Coordinator) TaskStatus(taskID string) (core.TaskStatus, bool) {
	s, err := c.taskServer(taskID)
	if err != nil {
		return core.TaskStatus{}, false
	}
	return s.TaskStatus(taskID)
}

// Regions lists the regions with running servers.
func (c *Coordinator) Regions() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.servers))
	for id := range c.servers {
		out = append(out, id)
	}
	return out
}

// RegionStats reports one region's counters; ok is false when the region
// has no server yet.
func (c *Coordinator) RegionStats(regionID string) (core.Stats, bool) {
	c.mu.Lock()
	s := c.servers[regionID]
	c.mu.Unlock()
	if s == nil {
		return core.Stats{}, false
	}
	return s.Stats(), true
}

// Stats aggregates counters across every running region server.
func (c *Coordinator) Stats() core.Stats {
	c.mu.Lock()
	servers := make([]*core.Server, 0, len(c.servers))
	for _, s := range c.servers {
		servers = append(servers, s)
	}
	c.mu.Unlock()
	var total core.Stats
	for _, s := range servers {
		st := s.Stats()
		total.Received += st.Received
		total.Assigned += st.Assigned
		total.Completed += st.Completed
		total.OnTime += st.OnTime
		total.Expired += st.Expired
		total.Reassigned += st.Reassigned
		total.Batches += st.Batches
		total.MatcherTime += st.MatcherTime
		total.WorkersOnline += st.WorkersOnline
		total.WorkersKnown += st.WorkersKnown
	}
	return total
}

// Stop shuts down every region server. Idempotent.
func (c *Coordinator) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	servers := make([]*core.Server, 0, len(c.servers))
	for _, s := range c.servers {
		servers = append(servers, s)
	}
	c.mu.Unlock()
	for _, s := range servers {
		s.Stop()
	}
}
