package federation

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"react/internal/core"
	"react/internal/region"
	"react/internal/schedule"
	"react/internal/taskq"
)

// twoByTwo decomposes a 4°×4° box into four regions.
func twoByTwo(t *testing.T) *region.Grid {
	t.Helper()
	g, err := region.NewGrid(region.Rect{MinLat: 0, MinLon: 0, MaxLat: 4, MaxLon: 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func fastFactory(string) *core.Server {
	return core.New(core.Options{
		BatchPoll:     5 * time.Millisecond,
		MonitorPeriod: 50 * time.Millisecond,
		Schedule:      schedule.Config{BatchBound: 1, BatchPeriod: 10 * time.Millisecond},
	})
}

func newCoordinator(t *testing.T) *Coordinator {
	t.Helper()
	c := New(twoByTwo(t), fastFactory)
	t.Cleanup(c.Stop)
	return c
}

func task(id string, at region.Point) taskq.Task {
	return taskq.Task{
		ID:       id,
		Location: at,
		Deadline: time.Now().Add(time.Minute),
		Category: "traffic",
	}
}

func TestLazyServerCreation(t *testing.T) {
	c := newCoordinator(t)
	if got := len(c.Regions()); got != 0 {
		t.Fatalf("regions before traffic = %d", got)
	}
	if _, err := c.RegisterWorker("w", region.Point{Lat: 0.5, Lon: 0.5}); err != nil {
		t.Fatal(err)
	}
	if got := c.Regions(); len(got) != 1 || got[0] != "r0c0" {
		t.Fatalf("regions = %v", got)
	}
	c.Submit(task("t", region.Point{Lat: 3.5, Lon: 3.5}))
	if got := len(c.Regions()); got != 2 {
		t.Fatalf("regions after cross-region traffic = %d", got)
	}
}

func TestSameRegionTaskCompletes(t *testing.T) {
	c := newCoordinator(t)
	loc := region.Point{Lat: 0.5, Lon: 0.5}
	feed, err := c.RegisterWorker("alice", loc)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(task("t1", loc)); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-feed:
		if a.TaskID != "t1" {
			t.Fatalf("assignment = %+v", a)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("same-region assignment never arrived")
	}
	res, err := c.Complete("t1", "alice", "ok")
	if err != nil {
		t.Fatal(err)
	}
	if !res.MetDeadline {
		t.Fatalf("result = %+v", res)
	}
	if err := c.Feedback("t1", true); err != nil {
		t.Fatal(err)
	}
}

func TestCrossRegionIsolation(t *testing.T) {
	c := newCoordinator(t)
	// Worker in r0c0; task in r1c1 — the worker must never receive it.
	feed, err := c.RegisterWorker("homebody", region.Point{Lat: 0.5, Lon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(task("far", region.Point{Lat: 3.5, Lon: 3.5})); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-feed:
		t.Fatalf("cross-region assignment leaked: %+v", a)
	case <-time.After(300 * time.Millisecond):
	}
	// The far task is still waiting in its own region.
	st, ok := c.RegionStats("r1c1")
	if !ok || st.Received != 1 || st.Assigned != 0 {
		t.Fatalf("far region stats = %+v, %v", st, ok)
	}
}

func TestAggregatedStats(t *testing.T) {
	c := newCoordinator(t)
	cells := []region.Point{
		{Lat: 0.5, Lon: 0.5}, {Lat: 0.5, Lon: 3.5},
		{Lat: 3.5, Lon: 0.5}, {Lat: 3.5, Lon: 3.5},
	}
	var wg sync.WaitGroup
	for i, loc := range cells {
		id := fmt.Sprintf("w%d", i)
		feed, err := c.RegisterWorker(id, loc)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id string, feed <-chan core.Assignment) {
			defer wg.Done()
			for a := range feed {
				c.Complete(a.TaskID, id, "done")
			}
		}(id, feed)
		if err := c.Submit(task(fmt.Sprintf("t%d", i), loc)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := c.Stats(); st.Completed == 4 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := c.Stats()
	if st.Received != 4 || st.Completed != 4 || st.WorkersOnline != 4 {
		t.Fatalf("aggregate stats = %+v", st)
	}
	if len(c.Regions()) != 4 {
		t.Fatalf("regions = %v", c.Regions())
	}
	c.Stop()
	wg.Wait()
}

func TestDeregisterRoutesToOwningRegion(t *testing.T) {
	c := newCoordinator(t)
	if _, err := c.RegisterWorker("w", region.Point{Lat: 0.5, Lon: 0.5}); err != nil {
		t.Fatal(err)
	}
	if err := c.DeregisterWorker("w"); err != nil {
		t.Fatal(err)
	}
	if err := c.DeregisterWorker("w"); err == nil {
		t.Fatal("double deregister accepted")
	}
	if err := c.DeregisterWorker("ghost"); err == nil {
		t.Fatal("unknown worker accepted")
	}
}

func TestUnknownTaskRouting(t *testing.T) {
	c := newCoordinator(t)
	if _, err := c.Complete("ghost", "w", "x"); err == nil {
		t.Fatal("unknown task complete accepted")
	}
	if err := c.Feedback("ghost", true); err == nil {
		t.Fatal("unknown task feedback accepted")
	}
}

func TestStopIsIdempotentAndBlocksNewTraffic(t *testing.T) {
	c := newCoordinator(t)
	c.Submit(task("t", region.Point{Lat: 0.5, Lon: 0.5}))
	c.Stop()
	c.Stop()
	if _, err := c.RegisterWorker("late", region.Point{Lat: 0.5, Lon: 0.5}); err == nil {
		t.Fatal("register after stop accepted")
	}
	// Note: submissions to an already-running region server after Stop
	// fail inside core; a new region fails at the coordinator.
	if err := c.Submit(task("t2", region.Point{Lat: 3.9, Lon: 3.9})); err == nil {
		t.Fatal("submit to new region after stop accepted")
	}
}
