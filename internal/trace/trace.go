// Package trace records per-task lifecycle events — submission, each
// (re)assignment, revocation, completion, expiry — and exports the raw
// timeline as CSV for external analysis. The experiments attach a
// Recorder to answer questions the aggregate counters cannot: how long
// tasks queued before first assignment, how reassignment chains
// distribute, which phase lost each missed deadline. Live servers feed a
// bounded Recorder (NewBounded) from the event spine via Handle, so the
// same CSV timeline is available from a running reactd.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"react/internal/event"
)

// Kind classifies a lifecycle event.
type Kind int

// Lifecycle events in causal order.
const (
	Submitted Kind = iota
	Assigned
	Revoked // Eq. 2 monitor or worker departure returned the task
	Completed
	Expired
)

// String names the kind for CSV output.
func (k Kind) String() string {
	switch k {
	case Submitted:
		return "submitted"
	case Assigned:
		return "assigned"
	case Revoked:
		return "revoked"
	case Completed:
		return "completed"
	case Expired:
		return "expired"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one lifecycle step of one task.
type Event struct {
	Task   string
	Kind   Kind
	At     time.Time
	Worker string // assigned/revoked/completed: the worker involved
	Late   bool   // completed: the completion missed the task's deadline
}

// Recorder accumulates events. Safe for concurrent use; events are kept in
// arrival order, which under the deterministic engine is time order. An
// unbounded recorder (NewRecorder) keeps everything — right for finite
// simulation runs; a bounded one (NewBounded) overwrites the oldest
// events once full, so a live server's recorder holds the most recent
// window of the timeline in fixed memory.
type Recorder struct {
	mu      sync.Mutex
	events  []Event
	cap     int    // ring capacity; 0 = unbounded
	start   int    // ring read index (oldest event) once len(events) == cap
	evicted uint64 // events overwritten since creation
}

// NewRecorder returns an empty, unbounded recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// NewBounded returns a recorder that retains at most limit events,
// evicting the oldest when full. limit below 1 is treated as 1.
func NewBounded(limit int) *Recorder {
	if limit < 1 {
		limit = 1
	}
	return &Recorder{cap: limit}
}

// Record appends one event, evicting the oldest when a bounded recorder
// is full.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cap > 0 && len(r.events) == r.cap {
		r.events[r.start] = e
		r.start = (r.start + 1) % r.cap
		r.evicted++
		return
	}
	r.events = append(r.events, e)
}

// Len reports the number of retained events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Evicted reports how many events a bounded recorder has overwritten
// (always 0 for an unbounded one).
func (r *Recorder) Evicted() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.evicted
}

// Events returns a copy of the retained timeline, oldest first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.events))
	out = append(out, r.events[r.start:]...)
	out = append(out, r.events[:r.start]...)
	return out
}

// Handle maps a spine event onto the recorder — the adapter that lets a
// Recorder tap an event.Bus directly. Forget and batch events carry no
// per-task timeline step and are ignored.
func (r *Recorder) Handle(ev event.Event) {
	switch ev.Kind {
	case event.KindSubmit:
		r.Record(Event{Task: ev.Task, Kind: Submitted, At: ev.At})
	case event.KindAssign:
		r.Record(Event{Task: ev.Task, Kind: Assigned, At: ev.At, Worker: ev.Worker})
	case event.KindRevoke:
		r.Record(Event{Task: ev.Task, Kind: Revoked, At: ev.At, Worker: ev.Worker})
	case event.KindComplete:
		r.Record(Event{Task: ev.Task, Kind: Completed, At: ev.At, Worker: ev.Worker, Late: !ev.Record.MetDeadline()})
	case event.KindExpire:
		r.Record(Event{Task: ev.Task, Kind: Expired, At: ev.At, Worker: ev.Worker})
	}
}

// WriteCSV emits "task,kind,at_unix_ms,worker" rows in arrival order.
func (r *Recorder) WriteCSV(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%s\n",
			e.Task, e.Kind, e.At.UnixMilli(), e.Worker); err != nil {
			return err
		}
	}
	return nil
}

// Lifecycle summarizes one task's journey.
type Lifecycle struct {
	Task          string
	Submitted     time.Time
	FirstAssigned time.Time // zero if never assigned
	Finished      time.Time // completion or expiry instant (zero if still open)
	FinalWorker   string
	Attempts      int  // assignments granted
	Revocations   int  // assignments taken back
	Done          bool // reached completed/expired
	Expired       bool
	Late          bool // completed after the deadline
}

// QueueWait is submission → first assignment (0 when never assigned).
func (l Lifecycle) QueueWait() time.Duration {
	if l.FirstAssigned.IsZero() {
		return 0
	}
	return l.FirstAssigned.Sub(l.Submitted)
}

// Lifecycles folds the timeline into one summary per task, sorted by task
// ID.
func (r *Recorder) Lifecycles() []Lifecycle {
	byTask := map[string]*Lifecycle{}
	for _, e := range r.Events() {
		l := byTask[e.Task]
		if l == nil {
			l = &Lifecycle{Task: e.Task}
			byTask[e.Task] = l
		}
		switch e.Kind {
		case Submitted:
			l.Submitted = e.At
		case Assigned:
			if l.FirstAssigned.IsZero() {
				l.FirstAssigned = e.At
			}
			l.Attempts++
			l.FinalWorker = e.Worker
		case Revoked:
			l.Revocations++
		case Completed:
			l.Finished = e.At
			l.Done = true
			l.FinalWorker = e.Worker
			l.Late = e.Late
		case Expired:
			l.Finished = e.At
			l.Done = true
			l.Expired = true
		}
	}
	out := make([]Lifecycle, 0, len(byTask))
	for _, l := range byTask {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}

// Summary aggregates the timeline.
type Summary struct {
	Tasks         int
	Completed     int
	Expired       int
	Open          int
	NeverAssigned int // expired without any worker ever holding them
	MeanQueueWait time.Duration
	MaxAttempts   int
	TotalRevoked  int
}

// Summarize folds the lifecycles into counts.
func (r *Recorder) Summarize() Summary {
	var s Summary
	var waitSum time.Duration
	waited := 0
	for _, l := range r.Lifecycles() {
		s.Tasks++
		switch {
		case !l.Done:
			s.Open++
		case l.Expired:
			s.Expired++
			if l.Attempts == 0 {
				s.NeverAssigned++
			}
		default:
			s.Completed++
		}
		if w := l.QueueWait(); w > 0 || l.Attempts > 0 {
			waitSum += w
			waited++
		}
		if l.Attempts > s.MaxAttempts {
			s.MaxAttempts = l.Attempts
		}
		s.TotalRevoked += l.Revocations
	}
	if waited > 0 {
		s.MeanQueueWait = waitSum / time.Duration(waited)
	}
	return s
}
