// Package trace records per-task lifecycle events during simulation runs:
// submission, each (re)assignment, revocation, completion, expiry. The
// experiments attach a Recorder to answer questions the aggregate counters
// cannot — how long tasks queued before first assignment, how reassignment
// chains distribute, which phase lost each missed deadline — and export the
// raw timeline as CSV for external analysis.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Kind classifies a lifecycle event.
type Kind int

// Lifecycle events in causal order.
const (
	Submitted Kind = iota
	Assigned
	Revoked // Eq. 2 monitor or worker departure returned the task
	Completed
	Expired
)

// String names the kind for CSV output.
func (k Kind) String() string {
	switch k {
	case Submitted:
		return "submitted"
	case Assigned:
		return "assigned"
	case Revoked:
		return "revoked"
	case Completed:
		return "completed"
	case Expired:
		return "expired"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one lifecycle step of one task.
type Event struct {
	Task   string
	Kind   Kind
	At     time.Time
	Worker string // assigned/revoked/completed: the worker involved
	Late   bool   // completed: the completion missed the task's deadline
}

// Recorder accumulates events. Safe for concurrent use; events are kept in
// arrival order, which under the deterministic engine is time order.
type Recorder struct {
	mu     sync.Mutex
	events []Event
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Record appends one event.
func (r *Recorder) Record(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

// Len reports the number of recorded events.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Events returns a copy of the timeline.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// WriteCSV emits "task,kind,at_unix_ms,worker" rows in arrival order.
func (r *Recorder) WriteCSV(w io.Writer) error {
	for _, e := range r.Events() {
		if _, err := fmt.Fprintf(w, "%s,%s,%d,%s\n",
			e.Task, e.Kind, e.At.UnixMilli(), e.Worker); err != nil {
			return err
		}
	}
	return nil
}

// Lifecycle summarizes one task's journey.
type Lifecycle struct {
	Task          string
	Submitted     time.Time
	FirstAssigned time.Time // zero if never assigned
	Finished      time.Time // completion or expiry instant (zero if still open)
	FinalWorker   string
	Attempts      int  // assignments granted
	Revocations   int  // assignments taken back
	Done          bool // reached completed/expired
	Expired       bool
	Late          bool // completed after the deadline
}

// QueueWait is submission → first assignment (0 when never assigned).
func (l Lifecycle) QueueWait() time.Duration {
	if l.FirstAssigned.IsZero() {
		return 0
	}
	return l.FirstAssigned.Sub(l.Submitted)
}

// Lifecycles folds the timeline into one summary per task, sorted by task
// ID.
func (r *Recorder) Lifecycles() []Lifecycle {
	byTask := map[string]*Lifecycle{}
	for _, e := range r.Events() {
		l := byTask[e.Task]
		if l == nil {
			l = &Lifecycle{Task: e.Task}
			byTask[e.Task] = l
		}
		switch e.Kind {
		case Submitted:
			l.Submitted = e.At
		case Assigned:
			if l.FirstAssigned.IsZero() {
				l.FirstAssigned = e.At
			}
			l.Attempts++
			l.FinalWorker = e.Worker
		case Revoked:
			l.Revocations++
		case Completed:
			l.Finished = e.At
			l.Done = true
			l.FinalWorker = e.Worker
			l.Late = e.Late
		case Expired:
			l.Finished = e.At
			l.Done = true
			l.Expired = true
		}
	}
	out := make([]Lifecycle, 0, len(byTask))
	for _, l := range byTask {
		out = append(out, *l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Task < out[j].Task })
	return out
}

// Summary aggregates the timeline.
type Summary struct {
	Tasks         int
	Completed     int
	Expired       int
	Open          int
	NeverAssigned int // expired without any worker ever holding them
	MeanQueueWait time.Duration
	MaxAttempts   int
	TotalRevoked  int
}

// Summarize folds the lifecycles into counts.
func (r *Recorder) Summarize() Summary {
	var s Summary
	var waitSum time.Duration
	waited := 0
	for _, l := range r.Lifecycles() {
		s.Tasks++
		switch {
		case !l.Done:
			s.Open++
		case l.Expired:
			s.Expired++
			if l.Attempts == 0 {
				s.NeverAssigned++
			}
		default:
			s.Completed++
		}
		if w := l.QueueWait(); w > 0 || l.Attempts > 0 {
			waitSum += w
			waited++
		}
		if l.Attempts > s.MaxAttempts {
			s.MaxAttempts = l.Attempts
		}
		s.TotalRevoked += l.Revocations
	}
	if waited > 0 {
		s.MeanQueueWait = waitSum / time.Duration(waited)
	}
	return s
}
