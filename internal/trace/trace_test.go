package trace

import (
	"strings"
	"sync"
	"testing"
	"time"

	"react/internal/clock"
)

func at(d time.Duration) time.Time { return clock.Epoch.Add(d) }

// record a typical reassignment story: t1 submitted, assigned to w1,
// revoked, assigned to w2, completed.
func storyRecorder() *Recorder {
	r := NewRecorder()
	r.Record(Event{Task: "t1", Kind: Submitted, At: at(0)})
	r.Record(Event{Task: "t1", Kind: Assigned, At: at(2 * time.Second), Worker: "w1"})
	r.Record(Event{Task: "t1", Kind: Revoked, At: at(40 * time.Second), Worker: "w1"})
	r.Record(Event{Task: "t1", Kind: Assigned, At: at(41 * time.Second), Worker: "w2"})
	r.Record(Event{Task: "t1", Kind: Completed, At: at(50 * time.Second), Worker: "w2"})
	r.Record(Event{Task: "t2", Kind: Submitted, At: at(time.Second)})
	r.Record(Event{Task: "t2", Kind: Expired, At: at(90 * time.Second)})
	r.Record(Event{Task: "t3", Kind: Submitted, At: at(5 * time.Second)})
	return r
}

func TestLifecycleReconstruction(t *testing.T) {
	r := storyRecorder()
	ls := r.Lifecycles()
	if len(ls) != 3 {
		t.Fatalf("lifecycles = %d", len(ls))
	}
	t1 := ls[0]
	if t1.Task != "t1" || t1.Attempts != 2 || t1.Revocations != 1 ||
		!t1.Done || t1.Expired || t1.FinalWorker != "w2" {
		t.Fatalf("t1 = %+v", t1)
	}
	if t1.QueueWait() != 2*time.Second {
		t.Fatalf("t1 queue wait = %v", t1.QueueWait())
	}
	if !t1.Finished.Equal(at(50 * time.Second)) {
		t.Fatalf("t1 finished = %v", t1.Finished)
	}
	t2 := ls[1]
	if !t2.Expired || t2.Attempts != 0 || t2.QueueWait() != 0 {
		t.Fatalf("t2 = %+v", t2)
	}
	t3 := ls[2]
	if t3.Done {
		t.Fatalf("t3 should be open: %+v", t3)
	}
}

func TestSummarize(t *testing.T) {
	s := storyRecorder().Summarize()
	if s.Tasks != 3 || s.Completed != 1 || s.Expired != 1 || s.Open != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.NeverAssigned != 1 || s.MaxAttempts != 2 || s.TotalRevoked != 1 {
		t.Fatalf("summary = %+v", s)
	}
	if s.MeanQueueWait != 2*time.Second {
		t.Fatalf("mean queue wait = %v", s.MeanQueueWait)
	}
}

func TestCSVOutput(t *testing.T) {
	var b strings.Builder
	if err := storyRecorder().WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 8 {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t1,submitted,") {
		t.Fatalf("first line = %q", lines[0])
	}
	if !strings.Contains(lines[2], "revoked") || !strings.HasSuffix(lines[2], ",w1") {
		t.Fatalf("revoke line = %q", lines[2])
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Submitted: "submitted", Assigned: "assigned", Revoked: "revoked",
		Completed: "completed", Expired: "expired", Kind(42): "kind(42)",
	} {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q", int(k), got)
		}
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Record(Event{Task: "t", Kind: Assigned, At: at(time.Duration(i))})
			}
		}(g)
	}
	wg.Wait()
	if r.Len() != 1600 {
		t.Fatalf("Len = %d", r.Len())
	}
	if ls := r.Lifecycles(); len(ls) != 1 || ls[0].Attempts != 1600 {
		t.Fatalf("lifecycles = %+v", ls)
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := NewRecorder()
	if r.Len() != 0 || len(r.Lifecycles()) != 0 {
		t.Fatal("empty recorder not empty")
	}
	s := r.Summarize()
	if s.Tasks != 0 || s.MeanQueueWait != 0 {
		t.Fatalf("summary = %+v", s)
	}
}
