package trace

import (
	"fmt"
	"testing"
	"time"

	"react/internal/event"
	"react/internal/taskq"
)

func TestBoundedRecorderEvictsOldest(t *testing.T) {
	r := NewBounded(3)
	for i := 0; i < 5; i++ {
		r.Record(Event{Task: fmt.Sprintf("t%d", i), Kind: Submitted})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	if r.Evicted() != 2 {
		t.Fatalf("evicted = %d, want 2", r.Evicted())
	}
	evs := r.Events()
	for i, want := range []string{"t2", "t3", "t4"} {
		if evs[i].Task != want {
			t.Fatalf("events[%d].Task = %q, want %q (ring order broken: %+v)", i, evs[i].Task, want, evs)
		}
	}
}

func TestBoundedRecorderLimitClampedToOne(t *testing.T) {
	r := NewBounded(0)
	r.Record(Event{Task: "a", Kind: Submitted})
	r.Record(Event{Task: "b", Kind: Submitted})
	if r.Len() != 1 || r.Events()[0].Task != "b" || r.Evicted() != 1 {
		t.Fatalf("clamped recorder wrong: len=%d evicted=%d %+v", r.Len(), r.Evicted(), r.Events())
	}
}

func TestUnboundedRecorderNeverEvicts(t *testing.T) {
	r := NewRecorder()
	for i := 0; i < 100; i++ {
		r.Record(Event{Task: "t", Kind: Submitted})
	}
	if r.Len() != 100 || r.Evicted() != 0 {
		t.Fatalf("len=%d evicted=%d", r.Len(), r.Evicted())
	}
}

func TestHandleMapsSpineEvents(t *testing.T) {
	r := NewRecorder()
	at := time.Unix(50, 0)
	deadline := at.Add(time.Minute)
	late := taskq.Record{
		Task:       taskq.Task{ID: "t1", Deadline: deadline},
		Status:     taskq.Completed,
		FinishedAt: deadline.Add(time.Second),
	}
	onTime := taskq.Record{
		Task:       taskq.Task{ID: "t1", Deadline: deadline},
		Status:     taskq.Completed,
		FinishedAt: deadline.Add(-time.Second),
	}
	r.Handle(event.Event{Kind: event.KindSubmit, Task: "t1", At: at})
	r.Handle(event.Event{Kind: event.KindAssign, Task: "t1", Worker: "w1", At: at})
	r.Handle(event.Event{Kind: event.KindRevoke, Task: "t1", Worker: "w1", At: at})
	r.Handle(event.Event{Kind: event.KindComplete, Task: "t1", Worker: "w2", At: at, Record: late})
	r.Handle(event.Event{Kind: event.KindComplete, Task: "t1", Worker: "w2", At: at, Record: onTime})
	r.Handle(event.Event{Kind: event.KindExpire, Task: "t2", Worker: "", At: at})
	// Forget and batch carry no timeline step.
	r.Handle(event.Event{Kind: event.KindForget, Task: "t1", At: at})
	r.Handle(event.Event{Kind: event.KindBatch, At: at})

	evs := r.Events()
	want := []struct {
		kind   Kind
		worker string
		late   bool
	}{
		{Submitted, "", false},
		{Assigned, "w1", false},
		{Revoked, "w1", false},
		{Completed, "w2", true},
		{Completed, "w2", false},
		{Expired, "", false},
	}
	if len(evs) != len(want) {
		t.Fatalf("recorded %d events, want %d: %+v", len(evs), len(want), evs)
	}
	for i, w := range want {
		if evs[i].Kind != w.kind || evs[i].Worker != w.worker || evs[i].Late != w.late {
			t.Errorf("events[%d] = %+v, want kind=%v worker=%q late=%v", i, evs[i], w.kind, w.worker, w.late)
		}
		if !evs[i].At.Equal(at) {
			t.Errorf("events[%d].At = %v, want %v", i, evs[i].At, at)
		}
	}
}
