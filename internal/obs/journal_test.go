package obs

import (
	"net/http"
	"strings"
	"testing"

	"react/internal/clock"
	"react/internal/journal"
	"react/internal/metrics"
	"react/internal/taskq"
)

// TestJournalMetrics drives a journal store through an append and a sync,
// scrapes the plane, and checks the WAL counters, the recovery gauges,
// and the fsync latency histogram all appear with live values.
func TestJournalMetrics(t *testing.T) {
	store, err := journal.Open(journal.Options{Dir: t.TempDir(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()

	reg := metrics.NewRegistry()
	if err := RegisterJournal(reg, store); err != nil {
		t.Fatal(err)
	}
	rec := taskq.Record{Task: taskq.Task{ID: "t1", Reward: 1}, Status: taskq.Unassigned}
	if err := store.Append(journal.Record{Kind: journal.KindSubmit, Task: &rec}); err != nil {
		t.Fatal(err)
	}
	if err := store.Sync(); err != nil {
		t.Fatal(err)
	}

	srv := NewServer(Options{Clock: clock.NewVirtual(clock.Epoch), Registry: reg})
	code, body := get(t, srv.Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		"react_journal_records_total 1",
		"react_journal_fsyncs_total 1",
		"react_journal_pending_bytes 0",
		"react_journal_failed 0",
		"react_journal_recovered_tasks 0",
		"react_journal_recovered_workers 0",
		"# TYPE react_journal_fsync_latency_seconds histogram",
		"react_journal_fsync_latency_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in exposition:\n%s", want, body)
		}
	}

	if err := RegisterJournal(reg, store); err == nil {
		t.Fatal("duplicate registration not rejected")
	}
}
