// Package obs is REACT's read-only observability plane: a small stdlib-only
// HTTP server exposing Prometheus-format metrics (/metrics), a JSON status
// snapshot (/statusz), and the runtime profiler (/debug/pprof/*). It is
// strictly a window — handlers only read from the engine, never write — so
// attaching it cannot perturb scheduling decisions or the determinism gate.
//
// The plane listens on its own address (reactd's -http flag), separate from
// the wire protocol, so operational scraping never competes with worker
// traffic for the protocol listener.
package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
	"time"

	"react/internal/clock"
	"react/internal/metrics"
	"react/internal/trace"
)

// contentTypeMetrics is the Prometheus text exposition format version the
// /metrics handler emits.
const contentTypeMetrics = "text/plain; version=0.0.4; charset=utf-8"

// Options configures the plane.
type Options struct {
	// Clock supplies time for uptime and the /statusz timestamp. Required.
	Clock clock.Clock
	// Registry backs /metrics. Nil serves 503 on /metrics.
	Registry *metrics.Registry
	// Regions snapshots the engines /statusz reports on. Nil serves an
	// empty region list. Called per request; must be safe for concurrent
	// use and cheap (a mutex-guarded slice copy).
	Regions func() []Source
	// Trace backs /trace.csv with the recorder's retained timeline
	// (reactd wires a bounded recorder tapping the event spine). Nil
	// serves 503 on /trace.csv.
	Trace *trace.Recorder
	// Logf receives serve-loop errors. Nil discards them.
	Logf func(format string, args ...any)
}

// Server is the observability HTTP server. Create with NewServer, start
// with Start, stop with Shutdown.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	start time.Time

	mu   sync.Mutex
	http *http.Server
	ln   net.Listener
	done chan struct{}
}

// NewServer builds the plane. It panics if opts.Clock is nil — the plane
// exists to report time-derived state and has no sane fallback that would
// not re-couple the package to the wall clock.
func NewServer(opts Options) *Server {
	if opts.Clock == nil {
		panic("obs: Options.Clock is required")
	}
	s := &Server{
		opts:  opts,
		mux:   http.NewServeMux(),
		start: opts.Clock.Now(),
	}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/statusz", s.handleStatusz)
	s.mux.HandleFunc("/trace.csv", s.handleTrace)
	// The plane runs its own mux, so net/http/pprof's DefaultServeMux
	// registrations never become reachable; wire the handlers explicitly.
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler exposes the route table, primarily for in-process tests.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr and serves in the background until Shutdown. It
// returns once the listener is bound, so a caller that gets nil knows the
// port is open. Addr reports the bound address (useful with ":0").
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done != nil {
		ln.Close()
		return errors.New("obs: already started")
	}
	s.ln = ln
	s.http = &http.Server{
		Handler: s.mux,
		// The plane serves trusted operators, but a stuck scraper must
		// not pin a connection open forever.
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.done = make(chan struct{})
	go func(srv *http.Server, done chan struct{}) {
		defer close(done)
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.logf("obs: serve: %v", err)
		}
	}(s.http, s.done)
	return nil
}

// Addr reports the bound listen address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the server, waiting for in-flight requests
// until ctx expires. It is a no-op before Start.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	srv, done := s.http, s.done
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	err := srv.Shutdown(ctx)
	<-done
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "react observability plane")
	fmt.Fprintln(w, "  /metrics       Prometheus text exposition")
	fmt.Fprintln(w, "  /statusz       JSON engine/worker snapshot (?workers=N)")
	fmt.Fprintln(w, "  /trace.csv     recent task-lifecycle timeline (task,kind,at_unix_ms,worker)")
	fmt.Fprintln(w, "  /debug/pprof/  runtime profiles")
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.opts.Trace == nil {
		http.Error(w, "no trace recorder configured", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	if err := s.opts.Trace.WriteCSV(w); err != nil {
		s.logf("obs: /trace.csv: %v", err) // headers already sent; log only
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.opts.Registry == nil {
		http.Error(w, "no metrics registry configured", http.StatusServiceUnavailable)
		return
	}
	// Render to a buffer first so a slow client can never hold metric
	// sources' locks, and so an exposition error yields a clean 500
	// instead of a truncated body.
	var buf bytes.Buffer
	if err := s.opts.Registry.WriteText(&buf); err != nil {
		s.logf("obs: /metrics: %v", err)
		http.Error(w, "exposition failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", contentTypeMetrics)
	w.Write(buf.Bytes())
}

func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	limit := DefaultWorkerLimit
	if q := r.URL.Query().Get("workers"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil {
			http.Error(w, "workers: not an integer", http.StatusBadRequest)
			return
		}
		limit = n // 0 or negative means "all"
	}
	now := s.opts.Clock.Now()
	st := Status{
		Now:           now.UTC().Format(time.RFC3339Nano),
		UptimeSeconds: now.Sub(s.start).Seconds(),
	}
	if s.opts.Regions != nil {
		for _, src := range s.opts.Regions() {
			if src.Engine == nil {
				continue
			}
			st.Regions = append(st.Regions, buildRegion(src, limit))
		}
	}
	if st.Regions == nil {
		st.Regions = []RegionStatus{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(st); err != nil {
		// Headers are gone; all we can do is log.
		s.logf("obs: /statusz: %v", err)
	}
}

// StaticRegions adapts a fixed set of sources to Options.Regions.
func StaticRegions(srcs ...Source) func() []Source {
	return func() []Source { return srcs }
}

// RegionSet is a mutex-guarded, growable region list for deployments that
// create engines after the plane starts (the federation factory pattern in
// reactd's grid mode).
type RegionSet struct {
	mu   sync.Mutex
	srcs []Source
}

// Add appends a region source.
func (rs *RegionSet) Add(src Source) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.srcs = append(rs.srcs, src)
}

// Snapshot implements Options.Regions.
func (rs *RegionSet) Snapshot() []Source {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]Source, len(rs.srcs))
	copy(out, rs.srcs)
	return out
}
