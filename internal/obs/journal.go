package obs

import (
	"react/internal/journal"
	"react/internal/metrics"
)

// fsyncHistogramWidth/Buckets shape the group-commit latency histogram:
// 0.5 ms buckets up to 100 ms, overflow beyond. A healthy fsync on local
// storage lands in the first few buckets; a commit in the overflow bucket
// means the durability window has blown past the configured interval.
const (
	fsyncHistogramWidth   = 0.0005
	fsyncHistogramBuckets = 200
)

// RegisterJournal adds a write-ahead journal's counters, depth gauges, and
// group-commit fsync latency histogram to reg, plus constant gauges for
// what this process recovered at startup. It installs the store's fsync
// observer; call it once per store.
func RegisterJournal(reg *metrics.Registry, store *journal.Store, labels ...metrics.Label) error {
	snap := func(read func(journal.Stats) float64) func() float64 {
		return func() float64 { return read(store.Stats()) }
	}
	counters := []struct {
		name, help string
		read       func(journal.Stats) float64
	}{
		{"react_journal_records_total", "WAL records appended since startup", func(s journal.Stats) float64 { return float64(s.Records) }},
		{"react_journal_bytes_total", "WAL frame bytes appended since startup", func(s journal.Stats) float64 { return float64(s.Bytes) }},
		{"react_journal_fsyncs_total", "group commits performed", func(s journal.Stats) float64 { return float64(s.Fsyncs) }},
		{"react_journal_fsync_seconds_total", "cumulative group-commit fsync latency", func(s journal.Stats) float64 { return float64(s.FsyncNanos) / 1e9 }},
		{"react_journal_compactions_total", "snapshot compactions performed", func(s journal.Stats) float64 { return float64(s.Compactions) }},
	}
	for _, c := range counters {
		if err := reg.RegisterCounterFunc(c.name, c.help, snap(c.read), labels...); err != nil {
			return err
		}
	}
	gauges := []struct {
		name, help string
		read       func(journal.Stats) float64
	}{
		{"react_journal_pending_bytes", "bytes buffered but not yet durable (the loss window)", func(s journal.Stats) float64 { return float64(s.PendingBytes) }},
		{"react_journal_segment_bytes", "bytes in the active WAL segment since the last compaction", func(s journal.Stats) float64 { return float64(s.SegmentBytes) }},
		{"react_journal_last_seq", "highest sequence number appended", func(s journal.Stats) float64 { return float64(s.LastSeq) }},
		{"react_journal_failed", "1 after a sticky I/O failure stopped journaling", func(s journal.Stats) float64 {
			if s.Failed {
				return 1
			}
			return 0
		}},
	}
	for _, g := range gauges {
		if err := reg.RegisterGauge(g.name, g.help, snap(g.read), labels...); err != nil {
			return err
		}
	}

	// Recovery outcome: fixed for the life of the process, exported so a
	// scrape after a crash-restart shows what came back (and what the torn
	// tail cost).
	sum := store.Summary()
	recovered := []struct {
		name, help string
		value      float64
	}{
		{"react_journal_recovered_tasks", "tasks recovered from the journal at startup", float64(sum.Tasks)},
		{"react_journal_recovered_workers", "worker profiles recovered from the journal at startup", float64(sum.Workers)},
		{"react_journal_recovered_tail_records", "WAL records replayed past the snapshot at startup", float64(sum.TailRecords)},
		{"react_journal_recovery_torn_bytes", "unreadable bytes truncated from the crash tail at startup", float64(sum.TornBytes)},
	}
	for _, r := range recovered {
		r := r
		if err := reg.RegisterGauge(r.name, r.help, func() float64 { return r.value }, labels...); err != nil {
			return err
		}
	}

	h, err := metrics.NewHistogram(fsyncHistogramWidth, fsyncHistogramBuckets)
	if err != nil {
		panic(err) // constants above are valid by construction
	}
	if err := reg.RegisterHistogram("react_journal_fsync_latency_seconds",
		"group-commit fsync latency per flush", h, labels...); err != nil {
		return err
	}
	store.SetFsyncObserver(h.Observe)
	return nil
}
