package obs

// This file is the observability plane's concurrency gate: it scrapes
// /metrics and /statusz from a live in-process server while loadgen
// traffic is running, so `go test -race ./internal/obs` exercises every
// collector read path against the engine's write paths.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"react/internal/clock"
	"react/internal/core"
	"react/internal/dynassign"
	"react/internal/loadgen"
	"react/internal/metrics"
	"react/internal/schedule"
	"react/internal/wire"
)

func TestScrapeUnderLoad(t *testing.T) {
	col := NewEngineCollector()
	ws, err := wire.Serve("127.0.0.1:0", core.Options{
		BatchPoll:     5 * time.Millisecond,
		MonitorPeriod: 20 * time.Millisecond,
		Schedule:      schedule.Config{BatchBound: 3, BatchPeriod: 20 * time.Millisecond},
		Monitor:       dynassign.Monitor{Threshold: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ws.Close() })
	col.Attach(ws.Core().Engine())

	reg := metrics.NewRegistry()
	if err := col.Register(reg, ws.Core().Engine(), metrics.L("region", "all")); err != nil {
		t.Fatal(err)
	}
	if err := RegisterWireServer(reg, ws); err != nil {
		t.Fatal(err)
	}
	obs := NewServer(Options{
		Clock:    clock.System{},
		Registry: reg,
		Regions:  StaticRegions(Source{ID: "all", Engine: ws.Core().Engine()}),
		Logf:     t.Logf,
	})
	if err := obs.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := obs.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	base := "http://" + obs.Addr()

	// Drive real traffic through the wire protocol in the background.
	loadDone := make(chan error, 1)
	go func() {
		_, err := loadgen.Run(loadgen.Config{
			Addr:     ws.Addr(),
			Workers:  8,
			Rate:     5,
			Tasks:    30,
			Seed:     11,
			Compress: 200,
		})
		loadDone <- err
	}()

	// Scrape both endpoints continuously until the load finishes.
	scrapes := 0
	for done := false; !done; {
		select {
		case err := <-loadDone:
			if err != nil {
				t.Fatalf("loadgen: %v", err)
			}
			done = true
		default:
			scrapeMetrics(t, base)
			scrapeStatusz(t, base)
			scrapes++
		}
	}
	if scrapes == 0 {
		t.Fatal("load finished before a single scrape")
	}

	// A final scrape after traffic must show the work that happened.
	body := scrapeMetrics(t, base)
	for _, want := range []string{
		`react_engine_tasks_received_total{region="all"} 30`,
		`react_wire_connections_total `,
		`react_engine_matcher_latency_seconds_count`,
		`react_wire_bytes_written_total `,
		`react_wire_flushes_total `,
		`react_wire_frames_per_flush_count`,
		`react_wire_flush_latency_seconds_count`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("final exposition missing %q", want)
		}
	}
	st := scrapeStatusz(t, base)
	if len(st.Regions) != 1 || st.Regions[0].Engine.Received != 30 {
		t.Errorf("final statusz wrong: %+v", st.Regions)
	}
}

func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("scrape /metrics: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d: %s", resp.StatusCode, b)
	}
	return string(b)
}

func scrapeStatusz(t *testing.T, base string) Status {
	t.Helper()
	resp, err := http.Get(base + "/statusz?workers=5")
	if err != nil {
		t.Fatalf("scrape /statusz: %v", err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /statusz: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/statusz status %d: %s", resp.StatusCode, b)
	}
	var st Status
	if err := json.Unmarshal(b, &st); err != nil {
		t.Fatalf("/statusz not JSON: %v\n%s", err, b)
	}
	return st
}
