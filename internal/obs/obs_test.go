package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"react/internal/clock"
	"react/internal/engine"
	"react/internal/event"
	"react/internal/metrics"
	"react/internal/region"
	"react/internal/schedule"
	"react/internal/taskq"
)

// newTestEngine builds a virtual-clock engine with one registered worker
// and one submitted task, a scheduling round already run, and the
// collector attached to the event spine.
func newTestEngine(t *testing.T) (*engine.Engine, *clock.Virtual, *EngineCollector) {
	t.Helper()
	clk := clock.NewVirtual(clock.Epoch)
	col := NewEngineCollector()
	eng := engine.New(engine.Config{
		Clock:    clk,
		Shards:   2,
		Schedule: schedule.Config{BatchBound: 1},
	}, engine.Hooks{})
	col.Attach(eng)
	if _, err := eng.AttachWorker("w1", region.Point{}); err != nil {
		t.Fatal(err)
	}
	if err := eng.Submit(taskq.Task{
		ID:        "t1",
		Deadline:  clk.Now().Add(time.Hour),
		Reward:    1,
		Category:  "ocr",
		Submitted: clk.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	eng.TryBatch()
	return eng, clk, col
}

func newTestServer(t *testing.T, eng *engine.Engine, clk clock.Clock, col *EngineCollector) *Server {
	t.Helper()
	reg := metrics.NewRegistry()
	if err := col.Register(reg, eng, metrics.L("region", "all")); err != nil {
		t.Fatal(err)
	}
	return NewServer(Options{
		Clock:    clk,
		Registry: reg,
		Regions:  StaticRegions(Source{ID: "all", Engine: eng}),
	})
}

func get(t *testing.T, h http.Handler, url string) (int, string) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	return rr.Code, rr.Body.String()
}

func TestMetricsEndpoint(t *testing.T) {
	eng, clk, col := newTestEngine(t)
	srv := newTestServer(t, eng, clk, col)

	code, body := get(t, srv.Handler(), "/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	for _, want := range []string{
		`react_engine_tasks_received_total{region="all"} 1`,
		`react_engine_batches_total{region="all"} 1`,
		`# TYPE react_engine_matcher_latency_seconds histogram`,
		`react_engine_matcher_latency_seconds_count{region="all"} 1`,
		`react_taskq_unassigned_highwater{region="all",shard=`,
		`react_workers_known{region="all"} 1`,
		`# HELP react_engine_reassign_eq2_total`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("missing %q in exposition:\n%s", want, body)
		}
	}
}

func TestMetricsWithoutRegistry(t *testing.T) {
	srv := NewServer(Options{Clock: clock.NewVirtual(clock.Epoch)})
	if code, _ := get(t, srv.Handler(), "/metrics"); code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", code)
	}
}

func TestReassignCounters(t *testing.T) {
	_, clk, col := newTestEngine(t)
	col.HandleEvent(event.Event{Kind: event.KindRevoke, Task: "t1", Worker: "w1", Cause: taskq.CauseEq2, Prob: 0.42})
	col.HandleEvent(event.Event{Kind: event.KindRevoke, Task: "t1", Worker: "w1", Cause: taskq.CauseDetach})
	col.HandleEvent(event.Event{Kind: event.KindRevoke, Task: "t2", Worker: "w1", Cause: taskq.CauseDetach})
	// Causes outside the two counted ones stay uncounted.
	col.HandleEvent(event.Event{Kind: event.KindRevoke, Task: "t3", Worker: "w1", Cause: taskq.CauseRecoverySweep})
	reg := metrics.NewRegistry()
	if err := reg.RegisterCounter("react_engine_reassign_eq2_total", "h", &col.reassignEq2); err != nil {
		t.Fatal(err)
	}
	if err := reg.RegisterCounter("react_engine_reassign_detach_total", "h", &col.reassignDetach); err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{Clock: clk, Registry: reg})
	_, body := get(t, srv.Handler(), "/metrics")
	if !strings.Contains(body, "react_engine_reassign_eq2_total 1") {
		t.Errorf("eq2 counter wrong:\n%s", body)
	}
	if !strings.Contains(body, "react_engine_reassign_detach_total 2") {
		t.Errorf("detach counter wrong:\n%s", body)
	}
}

func TestStatuszEndpoint(t *testing.T) {
	eng, clk, col := newTestEngine(t)
	// Give the worker enough history for a power-law fit.
	p, _ := eng.Workers().Get("w1")
	for i := 1; i <= 4; i++ {
		p.RecordCompletion("ocr", float64(i)*10, i%2 == 0)
	}
	srv := newTestServer(t, eng, clk, col)
	clk.Advance(90 * time.Second)

	code, body := get(t, srv.Handler(), "/statusz")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("statusz is not JSON: %v\n%s", err, body)
	}
	if st.UptimeSeconds != 90 {
		t.Errorf("uptime %v, want 90", st.UptimeSeconds)
	}
	if len(st.Regions) != 1 {
		t.Fatalf("regions %d", len(st.Regions))
	}
	r := st.Regions[0]
	if r.ID != "all" || r.Engine.Received != 1 || r.WorkersKnown != 1 {
		t.Errorf("region snapshot wrong: %+v", r)
	}
	if len(r.Shards) != 2 {
		t.Errorf("shards %d, want 2", len(r.Shards))
	}
	if len(r.Workers) != 1 {
		t.Fatalf("workers %d", len(r.Workers))
	}
	w := r.Workers[0]
	if w.ID != "w1" || w.Finished != 4 || w.FitSamples != 4 {
		t.Errorf("worker snapshot wrong: %+v", w)
	}
	if w.Accuracy == nil || *w.Accuracy != 0.5 {
		t.Errorf("accuracy = %v, want 0.5", w.Accuracy)
	}
	if w.Model == nil || w.Model.Alpha <= 1 || w.Model.N != 4 {
		t.Errorf("model = %+v", w.Model)
	}
}

func TestStatuszWorkerLimit(t *testing.T) {
	clk := clock.NewVirtual(clock.Epoch)
	eng := engine.New(engine.Config{Clock: clk}, engine.Hooks{})
	for i := 0; i < 5; i++ {
		if _, err := eng.AttachWorker(fmt.Sprintf("w%02d", i), region.Point{}); err != nil {
			t.Fatal(err)
		}
	}
	srv := NewServer(Options{
		Clock:   clk,
		Regions: StaticRegions(Source{ID: "all", Engine: eng}),
	})

	_, body := get(t, srv.Handler(), "/statusz?workers=2")
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	r := st.Regions[0]
	if r.WorkersShown != 2 || r.WorkersElided != 3 || len(r.Workers) != 2 {
		t.Errorf("limit not applied: shown=%d elided=%d rows=%d", r.WorkersShown, r.WorkersElided, len(r.Workers))
	}

	if code, _ := get(t, srv.Handler(), "/statusz?workers=x"); code != http.StatusBadRequest {
		t.Errorf("bad workers param: status %d, want 400", code)
	}

	// 0 means "all".
	_, body = get(t, srv.Handler(), "/statusz?workers=0")
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.Regions[0].WorkersShown != 5 {
		t.Errorf("workers=0 should show all, got %d", st.Regions[0].WorkersShown)
	}
}

func TestPprofIndex(t *testing.T) {
	srv := NewServer(Options{Clock: clock.NewVirtual(clock.Epoch)})
	code, body := get(t, srv.Handler(), "/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index missing profiles:\n%.200s", body)
	}
}

func TestIndexRoutes(t *testing.T) {
	srv := NewServer(Options{Clock: clock.NewVirtual(clock.Epoch)})
	if code, body := get(t, srv.Handler(), "/"); code != http.StatusOK || !strings.Contains(body, "/metrics") {
		t.Fatalf("index: %d %q", code, body)
	}
	if code, _ := get(t, srv.Handler(), "/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path should 404, got %d", code)
	}
}

func TestStartShutdown(t *testing.T) {
	srv := NewServer(Options{
		Clock: clock.System{},
		Logf:  t.Logf,
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start("127.0.0.1:0"); err == nil {
		t.Fatal("second Start should fail")
	}
	addr := srv.Addr()
	if addr == "" {
		t.Fatal("no bound address")
	}

	resp, err := http.Get("http://" + addr + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/"); err == nil {
		t.Fatal("server still serving after Shutdown")
	}
	// Shutdown again is a no-op.
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestRegionSet(t *testing.T) {
	var rs RegionSet
	if got := rs.Snapshot(); len(got) != 0 {
		t.Fatalf("empty set snapshot: %v", got)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rs.Add(Source{ID: fmt.Sprintf("r%d", i)})
		}(i)
	}
	wg.Wait()
	if got := rs.Snapshot(); len(got) != 8 {
		t.Fatalf("snapshot has %d regions, want 8", len(got))
	}
}
