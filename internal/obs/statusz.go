package obs

import (
	"react/internal/admission"
	"react/internal/engine"
	"react/internal/profile"
)

// DefaultWorkerLimit caps how many per-worker rows a /statusz response
// carries unless the caller asks for more with ?workers=N. Worker counts in
// the paper's experiments reach the thousands; the status page is for
// humans.
const DefaultWorkerLimit = 50

// Source names one engine the status page should report on. ID is the
// region identifier ("all" for a single-region deployment).
type Source struct {
	ID     string
	Engine *engine.Engine
	// Admission is the region's admission controller, nil when the
	// admission plane is disabled.
	Admission *admission.Controller
}

// EngineStatus mirrors engine.Stats with JSON tags.
type EngineStatus struct {
	Received           int64   `json:"received"`
	Assigned           int64   `json:"assigned"`
	Completed          int64   `json:"completed"`
	OnTime             int64   `json:"on_time"`
	Expired            int64   `json:"expired"`
	Reassigned         int64   `json:"reassigned"`
	Batches            int64   `json:"batches"`
	MatcherTimeSeconds float64 `json:"matcher_time_seconds"`
}

// ShardStatus is one taskq stripe's depth row.
type ShardStatus struct {
	Shard               int `json:"shard"`
	Unassigned          int `json:"unassigned"`
	Assigned            int `json:"assigned"`
	Terminal            int `json:"terminal"`
	UnassignedHighWater int `json:"unassigned_highwater"`
}

// ModelStatus is a worker's fitted power-law execution model (§IV.B).
type ModelStatus struct {
	Alpha float64 `json:"alpha"`
	Kmin  float64 `json:"kmin"`
	N     int     `json:"n"`
}

// WorkerStatus is one worker's profile snapshot.
type WorkerStatus struct {
	ID         string       `json:"id"`
	Connected  bool         `json:"connected"`
	Available  bool         `json:"available"`
	BusyTask   string       `json:"busy_task,omitempty"`
	Finished   int          `json:"finished"`
	Accuracy   *float64     `json:"accuracy,omitempty"` // absent until first feedback
	FitSamples int          `json:"fit_samples"`
	Model      *ModelStatus `json:"model,omitempty"` // absent below the training threshold
}

// RegionStatus is one engine's full snapshot.
type RegionStatus struct {
	ID            string         `json:"id"`
	Engine        EngineStatus   `json:"engine"`
	Shards        []ShardStatus  `json:"shards"`
	WorkersOnline int            `json:"workers_online"`
	WorkersKnown  int            `json:"workers_known"`
	WorkersShown  int            `json:"workers_shown"`
	WorkersElided int            `json:"workers_elided"`
	Workers       []WorkerStatus `json:"workers"`
	TasksBacklog  int            `json:"tasks_backlog"`
	TasksRetained int            `json:"tasks_retained"`
	// Admission is the admission plane's snapshot (floor, load gauges,
	// decision counters, per-requester buckets); absent when disabled.
	Admission *admission.Snapshot `json:"admission,omitempty"`
}

// Status is the /statusz document.
type Status struct {
	Now           string         `json:"now"`
	UptimeSeconds float64        `json:"uptime_seconds"`
	Regions       []RegionStatus `json:"regions"`
}

// buildRegion snapshots one engine. workerLimit <= 0 means no cap.
func buildRegion(src Source, workerLimit int) RegionStatus {
	eng := src.Engine
	s := eng.Stats()
	rs := RegionStatus{
		ID: src.ID,
		Engine: EngineStatus{
			Received:           int64(s.Received),
			Assigned:           int64(s.Assigned),
			Completed:          int64(s.Completed),
			OnTime:             int64(s.OnTime),
			Expired:            int64(s.Expired),
			Reassigned:         int64(s.Reassigned),
			Batches:            int64(s.Batches),
			MatcherTimeSeconds: s.MatcherTime.Seconds(),
		},
	}
	for _, sh := range eng.Tasks().ShardStats() {
		rs.Shards = append(rs.Shards, ShardStatus{
			Shard:               sh.Shard,
			Unassigned:          sh.Unassigned,
			Assigned:            sh.Assigned,
			Terminal:            sh.Terminal,
			UnassignedHighWater: sh.UnassignedHighWater,
		})
		rs.TasksBacklog += sh.Unassigned
		rs.TasksRetained += sh.Terminal
	}
	workers := eng.Workers()
	rs.WorkersOnline = workers.CountConnected()
	all := workers.All()
	rs.WorkersKnown = len(all)
	shown := all
	if workerLimit > 0 && len(shown) > workerLimit {
		shown = shown[:workerLimit]
	}
	rs.WorkersShown = len(shown)
	rs.WorkersElided = len(all) - len(shown)
	for _, p := range shown {
		rs.Workers = append(rs.Workers, buildWorker(p))
	}
	if src.Admission != nil {
		snap := src.Admission.Snapshot()
		rs.Admission = &snap
	}
	return rs
}

func buildWorker(p *profile.Profile) WorkerStatus {
	w := WorkerStatus{
		ID:         p.ID(),
		Connected:  p.Connected(),
		Available:  p.Available(),
		BusyTask:   p.CurrentTask(),
		Finished:   p.Finished(),
		FitSamples: p.FitSamples(),
	}
	if acc, ok := p.OverallAccuracy(); ok {
		w.Accuracy = &acc
	}
	if m, ok := p.Model(0); ok {
		w.Model = &ModelStatus{Alpha: m.Alpha, Kmin: m.Kmin, N: m.N}
	}
	return w
}
