// Collectors bridge the running system into the metrics.Registry: engine
// counters become counter families read at scrape time, per-shard task
// depths become labelled gauges, and the engine's event spine feeds
// histograms and revocation counters that no polling snapshot could
// reconstruct.
package obs

import (
	"fmt"

	"react/internal/admission"
	"react/internal/engine"
	"react/internal/event"
	"react/internal/metrics"
	"react/internal/taskq"
	"react/internal/wire"
)

// matcherHistogramWidth/Buckets shape the matcher wall-time histogram:
// 1 ms buckets up to 250 ms, overflow beyond. The paper's matchers run in
// tens of milliseconds at batch-bound scale; a round in the overflow
// bucket is itself the signal (queue collapse, §V.C).
const (
	matcherHistogramWidth   = 0.001
	matcherHistogramBuckets = 250
)

// batchSizeHistogramWidth/Buckets shape the per-round task-count
// histogram: width 8 up to 1024 tasks.
const (
	batchSizeHistogramWidth   = 8
	batchSizeHistogramBuckets = 128
)

// Flush instrument shapes: frames-per-flush counts 1..256 with overflow
// beyond (a broadcast storm coalescing hundreds of frames into one write
// is exactly what the overflow bucket should show), and flush latency uses
// 0.5 ms buckets up to 100 ms — a healthy localhost write sits in the
// first bucket; anything near the overflow is a wedged peer.
const (
	framesPerFlushHistogramWidth   = 1
	framesPerFlushHistogramBuckets = 256

	flushLatencyHistogramWidth   = 0.0005
	flushLatencyHistogramBuckets = 200
)

// EngineCollector observes one scheduling engine through its event
// spine: call Attach once the engine exists (it installs HandleEvent as
// a bus tap), then Register to expose the instruments.
//
// HandleEvent is safe for concurrent use and never blocks: lifecycle
// events touch only atomic counters (safe under the shard lock a tap
// runs beneath); the mutex-guarded histograms are touched only by batch
// summaries, which publish outside every engine lock.
type EngineCollector struct {
	matcherElapsed *metrics.Histogram // measured matcher wall time per round (s)
	matcherModel   *metrics.Histogram // modelled latency charged via Config.Latency (s)
	batchTasks     *metrics.Histogram // unassigned tasks per round
	batchWorkers   *metrics.Welford   // available workers per round
	batchEdges     *metrics.Welford   // Eq. 3 edges instantiated per round
	prunedProb     metrics.Counter    // edges dropped by the probability bound
	prunedReward   metrics.Counter    // edges dropped by the reward-range filter
	reassignEq2    metrics.Counter    // Eq. 2 revocations (monitor)
	reassignDetach metrics.Counter    // revocations from worker detach
}

// NewEngineCollector creates a collector with empty instruments.
func NewEngineCollector() *EngineCollector {
	me, err := metrics.NewHistogram(matcherHistogramWidth, matcherHistogramBuckets)
	if err != nil {
		panic(err) // constants above are valid by construction
	}
	mm, err := metrics.NewHistogram(matcherHistogramWidth, matcherHistogramBuckets)
	if err != nil {
		panic(err)
	}
	bt, err := metrics.NewHistogram(batchSizeHistogramWidth, batchSizeHistogramBuckets)
	if err != nil {
		panic(err)
	}
	return &EngineCollector{
		matcherElapsed: me,
		matcherModel:   mm,
		batchTasks:     bt,
		batchWorkers:   &metrics.Welford{},
		batchEdges:     &metrics.Welford{},
	}
}

// Attach installs the collector as a tap on the engine's event spine.
// Call once, before traffic starts.
func (c *EngineCollector) Attach(eng *engine.Engine) {
	eng.Events().Tap(c.HandleEvent)
}

// HandleEvent consumes one spine event: batch summaries feed the
// matcher/graph instruments, revocations split into the Eq. 2 and
// detach counters (other causes — recovery sweeps, undeliverable
// assignments — are visible on the spine but not counted here).
func (c *EngineCollector) HandleEvent(ev event.Event) {
	switch ev.Kind {
	case event.KindBatch:
		b := ev.Batch
		c.matcherElapsed.Observe(b.Elapsed.Seconds())
		if b.Latency > 0 {
			c.matcherModel.Observe(b.Latency.Seconds())
		}
		c.batchTasks.Observe(float64(b.Tasks))
		c.batchWorkers.Observe(float64(b.Workers))
		c.batchEdges.Observe(float64(b.Edges))
		c.prunedProb.Add(int64(b.PrunedProb))
		c.prunedReward.Add(int64(b.PrunedReward))
	case event.KindRevoke:
		switch ev.Cause {
		case taskq.CauseEq2:
			c.reassignEq2.Inc()
		case taskq.CauseDetach:
			c.reassignDetach.Inc()
		}
	}
}

// Register adds the collector's instruments plus the engine's own counters
// and per-shard depths to reg. The labels (e.g. region="athens-ne") are
// attached to every family, so several engines can share one registry.
// Registration errors are programming bugs (duplicate names/labels) and
// are returned for the caller to fail fast on.
func (c *EngineCollector) Register(reg *metrics.Registry, eng *engine.Engine, labels ...metrics.Label) error {
	stat := func(read func(engine.Stats) float64) func() float64 {
		return func() float64 { return read(eng.Stats()) }
	}
	counters := []struct {
		name, help string
		read       func(engine.Stats) float64
	}{
		{"react_engine_tasks_received_total", "tasks submitted to the engine", func(s engine.Stats) float64 { return float64(s.Received) }},
		{"react_engine_tasks_assigned_total", "assignments applied and delivered", func(s engine.Stats) float64 { return float64(s.Assigned) }},
		{"react_engine_tasks_completed_total", "tasks completed by workers", func(s engine.Stats) float64 { return float64(s.Completed) }},
		{"react_engine_tasks_ontime_total", "completions at or before the deadline", func(s engine.Stats) float64 { return float64(s.OnTime) }},
		{"react_engine_tasks_expired_total", "tasks that left the repository unserved", func(s engine.Stats) float64 { return float64(s.Expired) }},
		{"react_engine_tasks_reassigned_total", "assignments revoked (Eq. 2 monitor + detaches)", func(s engine.Stats) float64 { return float64(s.Reassigned) }},
		{"react_engine_batches_total", "scheduling rounds run", func(s engine.Stats) float64 { return float64(s.Batches) }},
		{"react_engine_matcher_seconds_total", "cumulative matcher wall time", func(s engine.Stats) float64 { return s.MatcherTime.Seconds() }},
	}
	for _, m := range counters {
		if err := reg.RegisterCounterFunc(m.name, m.help, stat(m.read), labels...); err != nil {
			return err
		}
	}

	if err := reg.RegisterHistogram("react_engine_matcher_latency_seconds",
		"measured matcher wall time per scheduling round", c.matcherElapsed, labels...); err != nil {
		return err
	}
	if err := reg.RegisterHistogram("react_engine_matcher_model_latency_seconds",
		"modelled matcher latency charged per round (Config.Latency)", c.matcherModel, labels...); err != nil {
		return err
	}
	if err := reg.RegisterHistogram("react_engine_batch_tasks",
		"unassigned tasks snapshotted per scheduling round", c.batchTasks, labels...); err != nil {
		return err
	}
	if err := reg.RegisterSummary("react_engine_batch_workers",
		"available workers snapshotted per scheduling round", c.batchWorkers, labels...); err != nil {
		return err
	}
	if err := reg.RegisterSummary("react_engine_batch_edges",
		"Eq. 3 edges instantiated per scheduling round", c.batchEdges, labels...); err != nil {
		return err
	}
	if err := reg.RegisterCounter("react_engine_edges_pruned_prob_total",
		"edges dropped by the Eq. 3 probability bound", &c.prunedProb, labels...); err != nil {
		return err
	}
	if err := reg.RegisterCounter("react_engine_edges_pruned_reward_total",
		"edges dropped by the reward-range filter", &c.prunedReward, labels...); err != nil {
		return err
	}
	if err := reg.RegisterCounter("react_engine_reassign_eq2_total",
		"Eq. 2 monitor revocations", &c.reassignEq2, labels...); err != nil {
		return err
	}
	if err := reg.RegisterCounter("react_engine_reassign_detach_total",
		"revocations caused by worker detach", &c.reassignDetach, labels...); err != nil {
		return err
	}

	// Event-spine health: fan-out volume, subscriber overflow drops, and
	// the live subscriber count, read off the bus at scrape time.
	bus := eng.Events()
	if err := reg.RegisterCounterFunc("react_events_published_total",
		"events published on the lifecycle event spine", func() float64 { return float64(bus.Stats().Published) }, labels...); err != nil {
		return err
	}
	if err := reg.RegisterCounterFunc("react_events_dropped_total",
		"events dropped by full subscription buffers", func() float64 { return float64(bus.Stats().Dropped) }, labels...); err != nil {
		return err
	}
	if err := reg.RegisterGauge("react_event_subscribers",
		"open event-spine subscriptions", func() float64 { return float64(bus.Stats().Subscribers) }, labels...); err != nil {
		return err
	}

	// Worker-registry gauges.
	workers := eng.Workers()
	if err := reg.RegisterGauge("react_workers_online",
		"connected workers (busy or idle)", func() float64 { return float64(workers.CountConnected()) }, labels...); err != nil {
		return err
	}
	if err := reg.RegisterGauge("react_workers_known",
		"every profile the engine remembers, including detached workers", func() float64 { return float64(workers.Size()) }, labels...); err != nil {
		return err
	}
	if err := reg.RegisterGauge("react_workers_available",
		"connected idle workers eligible for matching", func() float64 { return float64(len(workers.Available())) }, labels...); err != nil {
		return err
	}

	// Per-shard taskq depths and high-water marks. The shard count is
	// fixed at engine construction, so the series set is stable.
	store := eng.Tasks()
	for i := 0; i < store.Shards(); i++ {
		i := i
		shardLabels := append(append([]metrics.Label(nil), labels...), metrics.L("shard", fmt.Sprintf("%d", i)))
		depth := func(read func(engine.ShardStat) float64) func() float64 {
			return func() float64 { return read(store.ShardStats()[i]) }
		}
		if err := reg.RegisterGauge("react_taskq_unassigned",
			"tasks waiting for a worker, per stripe", depth(func(s engine.ShardStat) float64 { return float64(s.Unassigned) }), shardLabels...); err != nil {
			return err
		}
		if err := reg.RegisterGauge("react_taskq_assigned",
			"tasks in a worker's hands, per stripe", depth(func(s engine.ShardStat) float64 { return float64(s.Assigned) }), shardLabels...); err != nil {
			return err
		}
		if err := reg.RegisterGauge("react_taskq_terminal",
			"completed+expired records retained, per stripe", depth(func(s engine.ShardStat) float64 { return float64(s.Terminal) }), shardLabels...); err != nil {
			return err
		}
		if err := reg.RegisterGauge("react_taskq_unassigned_highwater",
			"peak unassigned backlog ever held, per stripe", depth(func(s engine.ShardStat) float64 { return float64(s.UnassignedHighWater) }), shardLabels...); err != nil {
			return err
		}
	}
	return nil
}

// admissionProbHistogramWidth/Buckets shape the predicted deadline-
// meeting-probability histogram: 0.02-wide buckets spanning [0, 1]. Mass
// piling up just above the floor means the plane is running at the edge
// of its capacity model.
const (
	admissionProbHistogramWidth   = 0.02
	admissionProbHistogramBuckets = 50
)

// RegisterAdmission exposes an admission controller's decision counters,
// load gauges, and the per-decision probability histogram. It installs
// the controller's observer, so call it at most once per controller and
// before traffic starts. Per-requester bucket fills are deliberately not
// exported here (the registry has no dynamic labels); they live in the
// /statusz admission block instead.
func RegisterAdmission(reg *metrics.Registry, ctl *admission.Controller, labels ...metrics.Label) error {
	counters := []struct {
		name, help string
		read       func(admitted, rejProb, rejRate, shed int64) int64
	}{
		{"react_admission_admitted_total", "submissions admitted", func(a, _, _, _ int64) int64 { return a }},
		{"react_admission_rejected_probability_total", "submissions rejected below the probability floor", func(_, p, _, _ int64) int64 { return p }},
		{"react_admission_rejected_rate_total", "submissions rejected by rate or concurrency limits", func(_, _, r, _ int64) int64 { return r }},
		{"react_admission_shed_total", "queued tasks shed by the queue-delay controller", func(_, _, _, s int64) int64 { return s }},
	}
	for _, c := range counters {
		c := c
		read := func() float64 { return float64(c.read(ctl.Counters())) }
		if err := reg.RegisterCounterFunc(c.name, c.help, read, labels...); err != nil {
			return err
		}
	}
	if err := reg.RegisterGauge("react_admission_inflight",
		"tasks submitted but not yet terminal, as seen by admission", func() float64 {
			inflight, _ := ctl.Loads()
			return float64(inflight)
		}, labels...); err != nil {
		return err
	}
	if err := reg.RegisterGauge("react_admission_unassigned",
		"tasks waiting for a worker, as seen by admission", func() float64 {
			_, unassigned := ctl.Loads()
			return float64(unassigned)
		}, labels...); err != nil {
		return err
	}
	if err := reg.RegisterGauge("react_admission_prob_floor",
		"configured admission probability floor", func() float64 { return ctl.Config().ProbFloor }, labels...); err != nil {
		return err
	}
	if err := reg.RegisterGauge("react_admission_fleet_samples",
		"execution-time samples in the pooled fleet model", func() float64 {
			n, _, _ := ctl.FleetModel()
			return float64(n)
		}, labels...); err != nil {
		return err
	}
	if err := reg.RegisterGauge("react_admission_capacity_per_second",
		"estimated fleet service rate: online workers over median service time (0 while the model is cold)", func() float64 {
			_, median, warm := ctl.FleetModel()
			if !warm || median <= 0 || ctl.Config().Workers == nil {
				return 0
			}
			return float64(ctl.Config().Workers()) / median
		}, labels...); err != nil {
		return err
	}

	probHist, err := metrics.NewHistogram(admissionProbHistogramWidth, admissionProbHistogramBuckets)
	if err != nil {
		panic(err) // constants above are valid by construction
	}
	if err := reg.RegisterHistogram("react_admission_probability",
		"predicted deadline-meeting probability per admission decision", probHist, labels...); err != nil {
		return err
	}
	ctl.SetObserver(func(d admission.Decision) { probHist.Observe(d.Probability) })
	return nil
}

// RegisterWireServer adds a wire transport's connection/frame counters
// plus its write-coalescing instruments to reg. It installs a flush
// observer on srv, so every completed flush (from any connection's
// writer) feeds the frames-per-flush and flush-latency histograms; call
// it before traffic starts.
func RegisterWireServer(reg *metrics.Registry, srv *wire.Server, labels ...metrics.Label) error {
	snap := func(read func(wire.ServerMetrics) float64) func() float64 {
		return func() float64 { return read(srv.Metrics()) }
	}
	gauges := []struct {
		name, help string
		read       func(wire.ServerMetrics) float64
	}{
		{"react_wire_connections_active", "connections currently open", func(m wire.ServerMetrics) float64 { return float64(m.ConnsActive) }},
		{"react_wire_watchers", "connections subscribed to result pushes", func(m wire.ServerMetrics) float64 { return float64(m.Watchers) }},
	}
	for _, g := range gauges {
		if err := reg.RegisterGauge(g.name, g.help, snap(g.read), labels...); err != nil {
			return err
		}
	}
	counters := []struct {
		name, help string
		read       func(wire.ServerMetrics) float64
	}{
		{"react_wire_connections_total", "connections ever accepted", func(m wire.ServerMetrics) float64 { return float64(m.ConnsTotal) }},
		{"react_wire_frames_read_total", "frames parsed off all connections", func(m wire.ServerMetrics) float64 { return float64(m.FramesRead) }},
		{"react_wire_frames_written_total", "frames written (responses + pushes)", func(m wire.ServerMetrics) float64 { return float64(m.FramesWritten) }},
		{"react_wire_bad_frames_total", "inbound frames that failed to parse", func(m wire.ServerMetrics) float64 { return float64(m.BadFrames) }},
		{"react_wire_errors_sent_total", "error responses sent", func(m wire.ServerMetrics) float64 { return float64(m.ErrorsSent) }},
		{"react_wire_bytes_written_total", "bytes flushed to all connections", func(m wire.ServerMetrics) float64 { return float64(m.BytesWritten) }},
		{"react_wire_flushes_total", "coalesced write syscalls across all connections", func(m wire.ServerMetrics) float64 { return float64(m.Flushes) }},
	}
	for _, c := range counters {
		if err := reg.RegisterCounterFunc(c.name, c.help, snap(c.read), labels...); err != nil {
			return err
		}
	}

	framesPerFlush, err := metrics.NewHistogram(framesPerFlushHistogramWidth, framesPerFlushHistogramBuckets)
	if err != nil {
		panic(err) // constants above are valid by construction
	}
	flushLatency, err := metrics.NewHistogram(flushLatencyHistogramWidth, flushLatencyHistogramBuckets)
	if err != nil {
		panic(err)
	}
	if err := reg.RegisterHistogram("react_wire_frames_per_flush",
		"frames coalesced into each write syscall", framesPerFlush, labels...); err != nil {
		return err
	}
	if err := reg.RegisterHistogram("react_wire_flush_latency_seconds",
		"wall time of each coalesced write syscall", flushLatency, labels...); err != nil {
		return err
	}
	srv.SetFlushObserver(func(frames, bytes int, latencySeconds float64) {
		framesPerFlush.Observe(float64(frames))
		flushLatency.Observe(latencySeconds)
	})
	return nil
}

// RegisterClientMetrics adds one wire client's push-queue depths and Seq
// health counters to reg — useful for tools (loadgen, relays) that expose
// their own plane.
func RegisterClientMetrics(reg *metrics.Registry, read func() wire.ClientMetrics, labels ...metrics.Label) error {
	snap := func(f func(wire.ClientMetrics) float64) func() float64 {
		return func() float64 { return f(read()) }
	}
	gauges := []struct {
		name, help string
		read       func(wire.ClientMetrics) float64
	}{
		{"react_wire_client_assignment_backlog", "assignment pushes queued but not yet consumed", func(m wire.ClientMetrics) float64 { return float64(m.AssignmentBacklog) }},
		{"react_wire_client_assignment_highwater", "peak assignment backlog over the connection", func(m wire.ClientMetrics) float64 { return float64(m.AssignmentHighWater) }},
		{"react_wire_client_result_backlog", "result pushes queued but not yet consumed", func(m wire.ClientMetrics) float64 { return float64(m.ResultBacklog) }},
		{"react_wire_client_result_highwater", "peak result backlog over the connection", func(m wire.ClientMetrics) float64 { return float64(m.ResultHighWater) }},
	}
	for _, g := range gauges {
		if err := reg.RegisterGauge(g.name, g.help, snap(g.read), labels...); err != nil {
			return err
		}
	}
	counters := []struct {
		name, help string
		read       func(wire.ClientMetrics) float64
	}{
		{"react_wire_client_stale_responses_total", "late responses discarded by Seq correlation", func(m wire.ClientMetrics) float64 { return float64(m.StaleResponses) }},
		{"react_wire_client_mismatched_responses_total", "responses whose Seq matched no outstanding request", func(m wire.ClientMetrics) float64 { return float64(m.MismatchedResponses) }},
		{"react_wire_client_dropped_responses_total", "responses dropped because nothing awaited them", func(m wire.ClientMetrics) float64 { return float64(m.DroppedResponses) }},
	}
	for _, c := range counters {
		if err := reg.RegisterCounterFunc(c.name, c.help, snap(c.read), labels...); err != nil {
			return err
		}
	}
	return nil
}
