// Package voting provides requester-side redundancy on top of REACT's
// single-assignment model: replicate a question into k tasks, collect the
// answers that arrive before the deadline, and resolve them by majority.
// This is the aggregation pattern of CrowdSearch and CDAS (the paper's
// references [16] and [28]); the paper positions REACT as reducing how much
// such redundancy costs, since better worker selection needs fewer
// replicas for the same confidence.
package voting

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"react/internal/taskq"
)

// ErrUnknownReplica is returned for votes on tasks no poll created.
var ErrUnknownReplica = errors.New("voting: unknown replica task")

// sep joins a poll ID and replica ordinal into a task ID; ReplicaTaskID and
// SplitReplica are inverses.
const sep = "#rep"

// ReplicaTaskID names the i-th replica task of a poll.
func ReplicaTaskID(pollID string, i int) string {
	return fmt.Sprintf("%s%s%d", pollID, sep, i)
}

// SplitReplica extracts the poll ID from a replica task ID.
func SplitReplica(taskID string) (pollID string, ok bool) {
	i := strings.LastIndex(taskID, sep)
	if i < 0 {
		return "", false
	}
	return taskID[:i], true
}

// Verdict is the resolution of one poll.
type Verdict struct {
	PollID   string
	Answer   string // winning answer ("" when no votes arrived)
	Votes    int    // votes for the winner
	Total    int    // votes received
	Replicas int    // replicas issued
	Quorum   bool   // winner reached the configured quorum
}

// Poll tracks the replicas and votes of one replicated question.
type poll struct {
	replicas int
	votes    map[string]int // answer → count
	received int
}

// Collector accumulates votes across polls. Safe for concurrent use — the
// result hook of a live server may feed it directly.
type Collector struct {
	mu     sync.Mutex
	quorum int // minimum winning votes for Quorum (default: majority of replicas)
	polls  map[string]*poll
}

// NewCollector creates a collector. quorum ≤ 0 means strict majority of the
// issued replicas.
func NewCollector(quorum int) *Collector {
	return &Collector{quorum: quorum, polls: make(map[string]*poll)}
}

// Plan creates the replica tasks for a question: base describes the task
// (its ID is the poll ID); k replicas are returned ready to Submit, and the
// poll is registered for vote collection.
func (c *Collector) Plan(base taskq.Task, k int) ([]taskq.Task, error) {
	if k < 1 {
		return nil, fmt.Errorf("voting: need at least 1 replica, got %d", k)
	}
	if strings.Contains(base.ID, sep) {
		return nil, fmt.Errorf("voting: poll id %q contains reserved separator %q", base.ID, sep)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.polls[base.ID]; dup {
		return nil, fmt.Errorf("voting: duplicate poll %q", base.ID)
	}
	c.polls[base.ID] = &poll{replicas: k, votes: make(map[string]int)}
	out := make([]taskq.Task, k)
	for i := range out {
		t := base
		t.ID = ReplicaTaskID(base.ID, i)
		out[i] = t
	}
	return out, nil
}

// Vote records a worker's answer for a replica task. Late or duplicate
// deliveries are the caller's policy; the collector counts whatever it is
// given.
func (c *Collector) Vote(replicaTaskID, answer string) error {
	pollID, ok := SplitReplica(replicaTaskID)
	if !ok {
		return fmt.Errorf("%w: %q has no replica suffix", ErrUnknownReplica, replicaTaskID)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.polls[pollID]
	if !ok {
		return fmt.Errorf("%w: poll %q", ErrUnknownReplica, pollID)
	}
	p.votes[answer]++
	p.received++
	return nil
}

// Verdict resolves one poll from the votes received so far. Ties break
// lexicographically for determinism.
func (c *Collector) Verdict(pollID string) (Verdict, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.polls[pollID]
	if !ok {
		return Verdict{}, fmt.Errorf("%w: poll %q", ErrUnknownReplica, pollID)
	}
	v := Verdict{PollID: pollID, Total: p.received, Replicas: p.replicas}
	answers := make([]string, 0, len(p.votes))
	for a := range p.votes {
		answers = append(answers, a)
	}
	sort.Strings(answers)
	for _, a := range answers {
		if n := p.votes[a]; n > v.Votes {
			v.Votes = n
			v.Answer = a
		}
	}
	quorum := c.quorum
	if quorum <= 0 {
		quorum = p.replicas/2 + 1
	}
	v.Quorum = v.Votes >= quorum
	return v, nil
}

// Verdicts resolves every poll, sorted by poll ID.
func (c *Collector) Verdicts() []Verdict {
	c.mu.Lock()
	ids := make([]string, 0, len(c.polls))
	for id := range c.polls {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	sort.Strings(ids)
	out := make([]Verdict, 0, len(ids))
	for _, id := range ids {
		if v, err := c.Verdict(id); err == nil {
			out = append(out, v)
		}
	}
	return out
}
