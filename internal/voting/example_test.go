package voting_test

import (
	"fmt"
	"time"

	"react/internal/taskq"
	"react/internal/voting"
)

// Replicate a validation question three ways, collect whatever arrives
// before the deadline, and take the majority.
func Example() {
	votes := voting.NewCollector(0) // strict majority of replicas
	tasks, _ := votes.Plan(taskq.Task{
		ID:       "img-42",
		Deadline: time.Now().Add(time.Minute),
		Category: "image-validation",
	}, 3)
	fmt.Println("replicas:", len(tasks))

	// Two answers arrive in time; the third worker was too slow.
	votes.Vote(tasks[0].ID, "yes")
	votes.Vote(tasks[1].ID, "yes")

	v, _ := votes.Verdict("img-42")
	fmt.Printf("verdict=%s votes=%d/%d quorum=%v\n", v.Answer, v.Votes, v.Total, v.Quorum)
	// Output:
	// replicas: 3
	// verdict=yes votes=2/2 quorum=true
}
