package voting

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"react/internal/taskq"
)

func baseTask(id string) taskq.Task {
	return taskq.Task{
		ID:       id,
		Deadline: time.Now().Add(time.Minute),
		Category: "image-validation",
	}
}

func TestReplicaIDRoundTrip(t *testing.T) {
	id := ReplicaTaskID("img-7", 2)
	poll, ok := SplitReplica(id)
	if !ok || poll != "img-7" {
		t.Fatalf("SplitReplica(%q) = %q, %v", id, poll, ok)
	}
	if _, ok := SplitReplica("plain-task"); ok {
		t.Fatal("non-replica id split successfully")
	}
}

func TestPlanCreatesReplicas(t *testing.T) {
	c := NewCollector(0)
	tasks, err := c.Plan(baseTask("img-1"), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3 {
		t.Fatalf("planned %d tasks", len(tasks))
	}
	seen := map[string]bool{}
	for _, task := range tasks {
		if seen[task.ID] {
			t.Fatalf("duplicate replica id %q", task.ID)
		}
		seen[task.ID] = true
		if poll, ok := SplitReplica(task.ID); !ok || poll != "img-1" {
			t.Fatalf("replica id %q does not map back", task.ID)
		}
		if task.Category != "image-validation" {
			t.Fatal("base fields not copied")
		}
	}
}

func TestPlanValidation(t *testing.T) {
	c := NewCollector(0)
	if _, err := c.Plan(baseTask("p"), 0); err == nil {
		t.Fatal("zero replicas accepted")
	}
	if _, err := c.Plan(baseTask("bad"+sep+"id"), 2); err == nil {
		t.Fatal("reserved separator accepted")
	}
	if _, err := c.Plan(baseTask("p"), 2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Plan(baseTask("p"), 2); err == nil {
		t.Fatal("duplicate poll accepted")
	}
}

func TestMajorityVerdict(t *testing.T) {
	c := NewCollector(0)
	c.Plan(baseTask("img"), 3)
	c.Vote(ReplicaTaskID("img", 0), "yes")
	c.Vote(ReplicaTaskID("img", 1), "no")
	c.Vote(ReplicaTaskID("img", 2), "yes")
	v, err := c.Verdict("img")
	if err != nil {
		t.Fatal(err)
	}
	if v.Answer != "yes" || v.Votes != 2 || v.Total != 3 || !v.Quorum {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestQuorumWithMissingVotes(t *testing.T) {
	// 3 replicas, only 1 on-time vote: majority quorum (2) not reached.
	c := NewCollector(0)
	c.Plan(baseTask("img"), 3)
	c.Vote(ReplicaTaskID("img", 0), "yes")
	v, _ := c.Verdict("img")
	if v.Quorum {
		t.Fatalf("quorum with 1/3 votes: %+v", v)
	}
	if v.Answer != "yes" || v.Total != 1 {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestExplicitQuorum(t *testing.T) {
	c := NewCollector(1) // any single vote decides
	c.Plan(baseTask("img"), 5)
	c.Vote(ReplicaTaskID("img", 3), "no")
	v, _ := c.Verdict("img")
	if !v.Quorum || v.Answer != "no" {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestTieBreaksDeterministically(t *testing.T) {
	c := NewCollector(0)
	c.Plan(baseTask("img"), 2)
	c.Vote(ReplicaTaskID("img", 0), "zebra")
	c.Vote(ReplicaTaskID("img", 1), "apple")
	v, _ := c.Verdict("img")
	if v.Answer != "apple" { // lexicographic tie-break
		t.Fatalf("tie resolved to %q", v.Answer)
	}
}

func TestEmptyPollVerdict(t *testing.T) {
	c := NewCollector(0)
	c.Plan(baseTask("img"), 3)
	v, err := c.Verdict("img")
	if err != nil {
		t.Fatal(err)
	}
	if v.Answer != "" || v.Votes != 0 || v.Quorum {
		t.Fatalf("empty verdict = %+v", v)
	}
}

func TestVoteErrors(t *testing.T) {
	c := NewCollector(0)
	if err := c.Vote("no-suffix", "x"); !errors.Is(err, ErrUnknownReplica) {
		t.Fatalf("err = %v", err)
	}
	if err := c.Vote(ReplicaTaskID("ghost", 0), "x"); !errors.Is(err, ErrUnknownReplica) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Verdict("ghost"); !errors.Is(err, ErrUnknownReplica) {
		t.Fatalf("err = %v", err)
	}
}

func TestVerdictsSorted(t *testing.T) {
	c := NewCollector(0)
	for _, id := range []string{"c", "a", "b"} {
		c.Plan(baseTask(id), 1)
		c.Vote(ReplicaTaskID(id, 0), "v-"+id)
	}
	vs := c.Verdicts()
	if len(vs) != 3 || vs[0].PollID != "a" || vs[2].PollID != "c" {
		t.Fatalf("verdicts = %+v", vs)
	}
}

func TestConcurrentVoting(t *testing.T) {
	c := NewCollector(0)
	const polls, votes = 20, 50
	for p := 0; p < polls; p++ {
		c.Plan(baseTask(fmt.Sprintf("p%02d", p)), votes)
	}
	var wg sync.WaitGroup
	for p := 0; p < polls; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for v := 0; v < votes; v++ {
				ans := "yes"
				if v%3 == 0 {
					ans = "no"
				}
				if err := c.Vote(ReplicaTaskID(fmt.Sprintf("p%02d", p), v), ans); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	for _, v := range c.Verdicts() {
		if v.Answer != "yes" || v.Total != votes || !v.Quorum {
			t.Fatalf("verdict = %+v", v)
		}
	}
}
