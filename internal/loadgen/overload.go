package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"react/internal/clock"
	"react/internal/crowd"
	"react/internal/wire"
	"react/internal/workload"
)

// OverloadConfig parameterizes an open-loop overload run: the submission
// schedule is fixed by Rate and Duration and never slows down for the
// server, which is what makes overload overload. Pointed at a server with
// the admission plane on, the report splits the offered load into what was
// admitted, what each gate turned away, and what the shedder later
// evicted; pointed at a plain server it records the collapse instead.
type OverloadConfig struct {
	Addr     string        // region server address (required)
	Workers  int           // crowd size (default 20)
	Rate     float64       // offered tasks per *uncompressed* second (default 10x the stable ratio)
	Duration time.Duration // uncompressed run length (default 60s)
	Seed     int64         // behaviour/workload seed
	Compress float64       // time compression factor (default 100)
	Logf     func(format string, args ...any)

	// Clock is the timebase for pacing and latency measurement (default
	// clock.System{}).
	Clock clock.Sleeper
}

func (c OverloadConfig) normalize() OverloadConfig {
	if c.Workers <= 0 {
		c.Workers = 20
	}
	if c.Rate <= 0 {
		// Ten times the paper's stable operating ratio (~80 workers per
		// task/s): deliberately past what the fleet can serve.
		c.Rate = 10 * float64(c.Workers) / 80
	}
	if c.Duration <= 0 {
		c.Duration = 60 * time.Second
	}
	if c.Compress <= 0 {
		c.Compress = 100
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Clock == nil {
		c.Clock = clock.System{}
	}
	return c
}

// OverloadReport splits the offered load by outcome. Offered = Admitted +
// RejectedRate + RejectedProbability + QueueFull + FailedSubmits; admitted
// tasks then finish as on-time, late, shed, or expired (a handful may
// still be open when the drain window closes).
type OverloadReport struct {
	Offered             int
	Admitted            int
	RejectedRate        int // token-bucket rejections (retryable)
	RejectedProbability int // deadline-probability-floor rejections (permanent)
	QueueFull           int // engine hard-ceiling rejections (retryable)
	FailedSubmits       int // transport or unclassified submission errors

	OnTime  int
	Late    int
	Shed    int // terminated by the CoDel shedder (expire events with cause "shed")
	Expired int // deadline passed unserved

	// GoodputPerSec is on-time completions per uncompressed second —
	// directly comparable to Rate.
	GoodputPerSec float64

	// Submit latency quantiles over every submission attempt, including
	// rejected ones (a rejection is still a round trip).
	SubmitP50 time.Duration
	SubmitP99 time.Duration

	Wall   time.Duration
	Server wire.StatsPayload
}

// RunOverload executes the open-loop run: Workers crowd connections with
// §V.C behaviours, one requester firing the fixed submission schedule, and
// the server's lifecycle event stream for outcome attribution (the "shed"
// cause only travels there).
func RunOverload(cfg OverloadConfig) (OverloadReport, error) {
	cfg = cfg.normalize()
	start := cfg.Clock.Now()

	gen := workload.Generator{Prefix: fmt.Sprintf("over-%d", cfg.Seed)}.Normalize()
	locRng := rand.New(rand.NewSource(cfg.Seed ^ 0x10c))
	behaviors := crowd.NewPopulation(cfg.Workers, rand.New(rand.NewSource(cfg.Seed)))
	var wg sync.WaitGroup
	workers := make([]*wire.Client, 0, cfg.Workers)
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	for i, b := range behaviors {
		cl, err := wire.Dial(cfg.Addr)
		if err != nil {
			return OverloadReport{}, fmt.Errorf("loadgen: worker dial: %w", err)
		}
		workers = append(workers, cl)
		id := fmt.Sprintf("over-w%03d", i)
		loc := gen.Area.RandomPoint(locRng)
		if err := cl.Register(id, loc.Lat, loc.Lon); err != nil {
			return OverloadReport{}, fmt.Errorf("loadgen: register %s: %w", id, err)
		}
		wg.Add(1)
		go func(id string, cl *wire.Client, b crowd.Behavior, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for a := range cl.Assignments() {
				exec := time.Duration(float64(b.ExecTime(rng)) / cfg.Compress)
				cfg.Clock.Sleep(exec)
				cl.Complete(a.TaskID, id, "synthetic answer")
			}
		}(id, cl, b, cfg.Seed^int64(i*2654435761))
	}

	// Requester: the lifecycle event stream carries every outcome this
	// report splits on — complete (on-time or late) and expire, with the
	// expire cause distinguishing shedder evictions from plain deadline
	// misses.
	req, err := wire.Dial(cfg.Addr)
	if err != nil {
		return OverloadReport{}, fmt.Errorf("loadgen: requester dial: %w", err)
	}
	defer req.Close()
	if err := req.WatchEvents(""); err != nil {
		return OverloadReport{}, err
	}

	var rep OverloadReport
	var mu sync.Mutex
	outstanding := make(map[string]struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range req.Events() {
			if !ev.Terminal() {
				continue
			}
			mu.Lock()
			if _, open := outstanding[ev.TaskID]; open {
				delete(outstanding, ev.TaskID)
				switch {
				case ev.Kind == "complete" && ev.MetDeadline:
					rep.OnTime++
				case ev.Kind == "complete":
					rep.Late++
				case ev.Cause == "shed":
					rep.Shed++
				default:
					rep.Expired++
				}
			}
			mu.Unlock()
		}
	}()

	// Open-loop submissions: one attempt per schedule slot, rejections
	// counted and left behind — retrying them would close the loop.
	total := int(cfg.Rate * cfg.Duration.Seconds())
	gap := time.Duration(float64(time.Second) / cfg.Rate / cfg.Compress)
	wrng := rand.New(rand.NewSource(cfg.Seed ^ 0x10adfeed))
	latencies := make([]time.Duration, 0, total)
	for i := 0; i < total; i++ {
		task := gen.Make(i, cfg.Clock.Now(), wrng)
		deadline := time.Duration(float64(task.Deadline.Sub(cfg.Clock.Now())) / cfg.Compress)
		payload := wire.TaskPayload{
			ID:         task.ID,
			Lat:        task.Location.Lat,
			Lon:        task.Location.Lon,
			DeadlineMS: deadline.Milliseconds(),
			Reward:     task.Reward,
			Category:   task.Category,
		}
		rep.Offered++
		t0 := cfg.Clock.Now()
		_, err := req.SubmitAdmit(payload)
		latencies = append(latencies, cfg.Clock.Now().Sub(t0))
		if err == nil {
			mu.Lock()
			outstanding[payload.ID] = struct{}{}
			rep.Admitted++
			mu.Unlock()
		} else {
			var se *wire.ServerError
			switch {
			case errors.As(err, &se) && se.Code == wire.CodeRejectedRate:
				rep.RejectedRate++
			case errors.As(err, &se) && se.Code == wire.CodeRejectedProbability:
				rep.RejectedProbability++
			case errors.As(err, &se) && se.Code == wire.CodeQueueFull:
				rep.QueueFull++
			default:
				rep.FailedSubmits++
				cfg.Logf("loadgen: submit %s failed: %v", payload.ID, err)
			}
		}
		cfg.Clock.Sleep(gap)
	}
	cfg.Logf("loadgen: offered %d tasks (%d admitted), draining", rep.Offered, rep.Admitted)

	// Drain: give admitted tasks their deadlines (compressed) to reach a
	// terminal event, then stop counting.
	window := time.Duration(float64(3*time.Minute) / cfg.Compress * 2)
	deadline := cfg.Clock.Now().Add(window)
	for cfg.Clock.Now().Before(deadline) {
		mu.Lock()
		open := len(outstanding)
		mu.Unlock()
		if open == 0 {
			break
		}
		cfg.Clock.Sleep(10 * time.Millisecond)
	}

	stats, statsErr := req.Stats()
	for _, w := range workers {
		w.Close()
	}
	wg.Wait()
	req.Close()
	<-done
	if statsErr == nil {
		rep.Server = stats
	}

	mu.Lock()
	defer mu.Unlock()
	rep.Wall = cfg.Clock.Now().Sub(start)
	// Goodput is reported against uncompressed time so it is in Rate's
	// units: the wall run is Duration/Compress long.
	rep.GoodputPerSec = float64(rep.OnTime) / cfg.Duration.Seconds()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if n := len(latencies); n > 0 {
		rep.SubmitP50 = latencies[n/2]
		rep.SubmitP99 = latencies[n*99/100]
	}
	return rep, nil
}
