package loadgen

// Kill-recovery: the end-to-end durability gate. A real reactd process is
// started with -data-dir, loaded over real TCP, and killed with SIGKILL —
// no flush, no goodbye — in the middle of the run, twice. Each restart
// must recover from the write-ahead journal on the same port and the run
// must still end with zero unresolved tasks: completions that were
// in flight die with the process, but the journal brings the tasks back,
// the sweep returns them to the pool, and the resilient requester
// reconciles or resubmits anything the crash window swallowed.
//
// The test needs a built binary, so it is gated on REACTD_BIN (set by
// `make recovery`); without it the test skips and `go test ./...` stays
// hermetic.

import (
	"net"
	"os"
	"os/exec"
	"syscall"
	"testing"
	"time"

	"react/internal/journal"
	"react/internal/taskq"
)

// startReactd launches the binary journaling into dataDir and waits until
// it accepts connections on addr.
func startReactd(t *testing.T, bin, addr, dataDir string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", addr,
		"-data-dir", dataDir,
		"-fsync-interval", "5ms",
		"-batch-bound", "3",
		"-batch-period", "20ms",
		"-monitor-period", "20ms",
		"-stats-every", "0",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", bin, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		c, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			c.Close()
			return cmd
		}
		time.Sleep(20 * time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()
	t.Fatalf("reactd never started listening on %s", addr)
	return nil
}

func TestKillRecoveryZeroLostTasks(t *testing.T) {
	bin := os.Getenv("REACTD_BIN")
	if bin == "" {
		t.Skip("REACTD_BIN not set; run via `make recovery`")
	}

	// Reserve a port so the restarted process can reuse the address the
	// clients keep reconnecting to.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	dataDir := t.TempDir()
	cmd := startReactd(t, bin, addr, dataDir)
	t.Cleanup(func() {
		if cmd != nil && cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	const tasks = 45
	kill := map[int]bool{tasks / 3: true, 2 * tasks / 3: true}
	rep, err := Run(Config{
		Addr:      addr,
		Workers:   10,
		Rate:      5,
		Tasks:     tasks,
		Seed:      11,
		Compress:  100,
		Resilient: true,
		Logf:      t.Logf,
		OnSubmit: func(n int) {
			if !kill[n] {
				return
			}
			// SIGKILL mid-batch: whatever sits in the group-commit buffer
			// is lost, whatever was fsynced must come back.
			if err := cmd.Process.Kill(); err != nil {
				t.Errorf("kill: %v", err)
				return
			}
			cmd.Wait()
			t.Logf("killed reactd at task %d, restarting on %s", n, addr)
			cmd = startReactd(t, bin, addr, dataDir)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != tasks {
		t.Fatalf("submitted %d, want %d", rep.Submitted, tasks)
	}
	if rep.Unresolved != 0 {
		t.Fatalf("%d tasks unresolved after kill/recovery: %+v", rep.Unresolved, rep)
	}
	if rep.Mismatched != 0 {
		t.Fatalf("response correlation broke across restarts: %+v", rep)
	}
	if rep.Reconnects == 0 {
		t.Fatalf("kills injected but no reconnects recorded: %+v", rep)
	}
	if rep.OnTime+rep.Late+rep.Expired != rep.Results {
		t.Fatalf("result accounting broken: %+v", rep)
	}
	t.Logf("kill-recovery report: %+v", rep)

	// Shut the surviving server down cleanly (flushes and closes the
	// journal), then replay the journal offline and check that the
	// spine-sourced records rebuild exactly the task states the clients
	// reconciled to: every task terminal, with the same completed/expired
	// split the requester observed.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("terminate reactd: %v", err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("reactd exit after SIGTERM: %v", err)
	}
	store, err := journal.Open(journal.Options{Dir: dataDir, Logf: t.Logf})
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer store.Close()
	st := store.TakeRecovered()
	if st == nil {
		t.Fatal("journal recovered no state")
	}
	if len(st.Tasks) != tasks {
		t.Fatalf("journal recovered %d tasks, want %d", len(st.Tasks), tasks)
	}
	completed, expired := 0, 0
	for id, rec := range st.Tasks {
		switch rec.Status {
		case taskq.Completed:
			completed++
			if rec.Worker == "" || rec.FinishedAt.IsZero() || rec.Attempts < 1 {
				t.Errorf("task %s: completed record incoherent: %+v", id, rec)
			}
		case taskq.Expired:
			expired++
		default:
			t.Errorf("task %s: non-terminal status %v after a finished run", id, rec.Status)
		}
	}
	if completed != rep.OnTime+rep.Late || expired != rep.Expired {
		t.Fatalf("journal replay disagrees with client view: journal %d completed / %d expired, clients saw %d completed / %d expired",
			completed, expired, rep.OnTime+rep.Late, rep.Expired)
	}
	t.Logf("journal replay matches client view: %d completed, %d expired", completed, expired)
}
