package loadgen

import (
	"testing"
	"time"

	"react/internal/core"
	"react/internal/dynassign"
	"react/internal/faultnet"
	"react/internal/schedule"
	"react/internal/wire"
)

// startServer launches a wire server whose loop periods are compressed to
// match the load generator's time scale.
func startServer(t *testing.T) *wire.Server {
	t.Helper()
	s, err := wire.Serve("127.0.0.1:0", core.Options{
		BatchPoll:     5 * time.Millisecond,
		MonitorPeriod: 20 * time.Millisecond,
		Schedule:      schedule.Config{BatchBound: 3, BatchPeriod: 20 * time.Millisecond},
		Monitor:       dynassign.Monitor{Threshold: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestLoadRunCompletes(t *testing.T) {
	s := startServer(t)
	rep, err := Run(Config{
		Addr:     s.Addr(),
		Workers:  10,
		Rate:     5,
		Tasks:    40,
		Seed:     1,
		Compress: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 40 {
		t.Fatalf("submitted %d", rep.Submitted)
	}
	if rep.Results == 0 {
		t.Fatal("no results received")
	}
	if rep.OnTime+rep.Late+rep.Expired != rep.Results {
		t.Fatalf("result accounting broken: %+v", rep)
	}
	// The crowd model has DelayProb 0.5 with the monitor active, so a
	// majority of tasks should land on time even at high compression.
	if rep.OnTime < rep.Submitted/3 {
		t.Fatalf("only %d/%d on time: %+v", rep.OnTime, rep.Submitted, rep)
	}
	if rep.Server.Received != int64(rep.Submitted) {
		t.Fatalf("server saw %d, submitted %d", rep.Server.Received, rep.Submitted)
	}
	if rep.Positive == 0 {
		t.Fatal("no positive feedback delivered")
	}
	if rep.Wall <= 0 {
		t.Fatal("wall time not recorded")
	}
}

func TestLoadRunResilientSurvivesResets(t *testing.T) {
	s := startServer(t)
	proxy, err := faultnet.New(faultnet.Config{Target: s.Addr(), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { proxy.Close() })

	rep, err := Run(Config{
		Addr:      proxy.Addr(),
		Workers:   8,
		Rate:      5,
		Tasks:     30,
		Seed:      2,
		Compress:  200,
		Resilient: true,
		OnSubmit: func(n int) {
			if n == 10 || n == 20 {
				proxy.ResetAll() // cut every connection mid-run, twice
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Submitted != 30 {
		t.Fatalf("submitted %d", rep.Submitted)
	}
	if rep.Unresolved != 0 {
		t.Fatalf("%d tasks unresolved: %+v", rep.Unresolved, rep)
	}
	if rep.Mismatched != 0 {
		t.Fatalf("response correlation broke: %+v", rep)
	}
	if rep.Reconnects == 0 {
		t.Fatalf("resets injected but no reconnects recorded: %+v", rep)
	}
	if rep.OnTime+rep.Late+rep.Expired != rep.Results {
		t.Fatalf("result accounting broken: %+v", rep)
	}
}

func TestLoadRunBadAddress(t *testing.T) {
	if _, err := Run(Config{Addr: "127.0.0.1:1", Tasks: 1, Workers: 1}); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.normalize()
	if c.Workers != 20 || c.Rate != 0.25 || c.Tasks != 100 || c.Compress != 100 || c.Logf == nil {
		t.Fatalf("defaults = %+v", c)
	}
}
