// Package loadgen drives a live (TCP) REACT region server with a synthetic
// crowd and a task stream — the wall-clock counterpart of the deterministic
// harness in internal/experiments. It exists to exercise the deployed
// middleware end-to-end: real connections, real goroutine workers with the
// §V.C behaviour model, real deadlines. Because the experiments' 60–120 s
// deadlines would make each run minutes long, every duration is compressed
// by a configurable factor (default 100×: deadlines become 0.6–1.2 s,
// completions 10–200 ms), which preserves all the ratios the scheduler
// reasons about.
//
// With Resilient set, every connection is a wire.ReconnectingClient and the
// requester reconciles outstanding tasks through the task-status query, so
// a run survives injected connection faults and even a server restart —
// the harness behind `reactload -chaos`.
package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"react/internal/clock"
	"react/internal/crowd"
	"react/internal/wire"
	"react/internal/workload"
)

// Config parameterizes one load run. Zero fields take defaults.
type Config struct {
	Addr     string  // region server address (required)
	Workers  int     // crowd size (default 20)
	Rate     float64 // tasks per *uncompressed* second (default: Workers/80, the paper's stable ratio)
	Tasks    int     // total tasks to submit (default 100)
	Seed     int64   // behaviour/workload seed
	Compress float64 // time compression factor (default 100)
	Logf     func(format string, args ...any)

	// Resilient switches every connection to a wire.ReconnectingClient
	// and turns on requester-side reconciliation: results whose push was
	// lost to an outage are recovered via the task-status query, and
	// tasks the server never saw (submission cut mid-flight, or a restart
	// wiped the queue) are resubmitted. A resilient run is the way to
	// drive a server that is being deliberately broken underneath it.
	Resilient bool

	// OnSubmit, if set, is called after each successful submission with
	// the number submitted so far — the hook chaos drivers use to fire
	// faults at chosen points in the run.
	OnSubmit func(n int)

	// Clock is the timebase for pacing, deadlines, and the wall-time
	// report (default clock.System{}). Injectable so the generator obeys
	// the same clock discipline as the rest of the module.
	Clock clock.Sleeper
}

func (c Config) normalize() Config {
	if c.Workers <= 0 {
		c.Workers = 20
	}
	if c.Rate <= 0 {
		// The paper's stable operating ratio: ~80 workers per task/s
		// (750 workers at 9.375 tasks/s).
		c.Rate = float64(c.Workers) / 80
	}
	if c.Tasks <= 0 {
		c.Tasks = 100
	}
	if c.Compress <= 0 {
		c.Compress = 100
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Clock == nil {
		c.Clock = clock.System{}
	}
	return c
}

// Report summarizes a run from the requester's perspective, plus the
// server's own counters.
type Report struct {
	Submitted int
	Results   int // results observed (pushes plus reconciled statuses)
	OnTime    int
	Late      int
	Expired   int
	Positive  int // positive feedbacks sent
	Wall      time.Duration
	Server    wire.StatsPayload

	// Resilience accounting (resilient runs only).
	Resubmitted int   // tasks re-sent because the server had no record of them
	Reconciled  int   // terminal states recovered by status query, not push
	Unresolved  int   // tasks that never reached a terminal state — MUST be 0
	Reconnects  int64 // sessions re-established across all connections
	Stale       int64 // late responses discarded by Seq correlation
	Mismatched  int64 // responses that matched no request — MUST be 0
}

// client is the connection surface the generator drives, satisfied by both
// *wire.Client and *wire.ReconnectingClient.
type client interface {
	Register(workerID string, lat, lon float64) error
	Assignments() <-chan wire.AssignmentPayload
	Complete(taskID, workerID, answer string) error
	Watch() error
	Results() <-chan wire.ResultPayload
	Feedback(taskID string, positive bool) error
	Submit(t wire.TaskPayload) error
	Stats() (wire.StatsPayload, error)
	TaskStatus(taskID string) (wire.TaskStatusPayload, error)
	Metrics() wire.ClientMetrics
	Close() error
}

// dial opens one connection in the run's chosen mode. Resilient dials
// return immediately and connect in the background; the first call blocks
// until the session is up.
func (c Config) dial(seed int64) (client, error) {
	if !c.Resilient {
		return wire.Dial(c.Addr)
	}
	return wire.DialReconnecting(wire.ReconnectConfig{
		Addr:      c.Addr,
		Seed:      seed,
		BaseDelay: 20 * time.Millisecond,
		MaxDelay:  time.Second,
		MaxOutage: 30 * time.Second,
		Logf:      c.Logf,
	})
}

// gather folds one connection's wire metrics into the report.
func gather(rep *Report, c client) {
	m := c.Metrics()
	rep.Stale += m.StaleResponses
	rep.Mismatched += m.MismatchedResponses
	if rc, ok := c.(*wire.ReconnectingClient); ok {
		rep.Reconnects += rc.Reconnects()
	}
}

// Run executes the load: Workers worker connections with crowd behaviours,
// one watching requester, Tasks submissions at the configured rate.
func Run(cfg Config) (Report, error) {
	cfg = cfg.normalize()
	start := cfg.Clock.Now()

	// Crowd connections, spread uniformly over the same area the task
	// generator uses so multi-region backends see workers in every cell.
	gen := workload.Generator{Prefix: fmt.Sprintf("load-%d", cfg.Seed)}.Normalize()
	locRng := rand.New(rand.NewSource(cfg.Seed ^ 0x10c))
	behaviors := crowd.NewPopulation(cfg.Workers, rand.New(rand.NewSource(cfg.Seed)))
	var wg sync.WaitGroup
	workers := make([]client, 0, cfg.Workers)
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	for i, b := range behaviors {
		cl, err := cfg.dial(cfg.Seed ^ int64(i+1)<<20)
		if err != nil {
			return Report{}, fmt.Errorf("loadgen: worker dial: %w", err)
		}
		workers = append(workers, cl)
		id := fmt.Sprintf("load-w%03d", i)
		loc := gen.Area.RandomPoint(locRng)
		if err := cl.Register(id, loc.Lat, loc.Lon); err != nil {
			return Report{}, fmt.Errorf("loadgen: register %s: %w", id, err)
		}
		wg.Add(1)
		go func(id string, cl client, b crowd.Behavior, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for a := range cl.Assignments() {
				exec := time.Duration(float64(b.ExecTime(rng)) / cfg.Compress)
				cfg.Clock.Sleep(exec)
				// Reassigned tasks fail Complete; that is expected traffic.
				cl.Complete(a.TaskID, id, "synthetic answer")
			}
		}(id, cl, b, cfg.Seed^int64(i*2654435761))
	}

	// Requester connection: watch results, grade them.
	req, err := cfg.dial(cfg.Seed ^ 0x5e90)
	if err != nil {
		return Report{}, fmt.Errorf("loadgen: requester dial: %w", err)
	}
	defer req.Close()
	if err := req.Watch(); err != nil {
		return Report{}, err
	}

	var rep Report
	var mu sync.Mutex
	// outstanding tracks every submitted task until a terminal state is
	// observed — by result push, or (resilient runs) by status query.
	outstanding := make(map[string]wire.TaskPayload, cfg.Tasks)
	// settle records one terminal observation; idempotent per task so a
	// push racing a reconciling status query cannot double-count.
	settle := func(taskID string, expired, metDeadline bool, reconciled bool) {
		mu.Lock()
		if _, open := outstanding[taskID]; !open {
			mu.Unlock()
			return
		}
		delete(outstanding, taskID)
		rep.Results++
		switch {
		case expired:
			rep.Expired++
		case metDeadline:
			rep.OnTime++
		default:
			rep.Late++
		}
		if reconciled {
			rep.Reconciled++
		}
		mu.Unlock()
		if !expired {
			if err := req.Feedback(taskID, metDeadline); err == nil && metDeadline {
				mu.Lock()
				rep.Positive++
				mu.Unlock()
			}
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range req.Results() {
			settle(r.TaskID, r.Expired, r.MetDeadline, false)
		}
	}()

	// Submission loop: compressed constant-rate stream with the §V.C
	// deadline band.
	wrng := rand.New(rand.NewSource(cfg.Seed ^ 0x10adfeed))
	gap := time.Duration(float64(time.Second) / cfg.Rate / cfg.Compress)
	for i := 0; i < cfg.Tasks; i++ {
		task := gen.Make(i, cfg.Clock.Now(), wrng)
		deadline := time.Duration(float64(task.Deadline.Sub(cfg.Clock.Now())) / cfg.Compress)
		payload := wire.TaskPayload{
			ID:          task.ID,
			Lat:         task.Location.Lat,
			Lon:         task.Location.Lon,
			DeadlineMS:  deadline.Milliseconds(),
			Reward:      task.Reward,
			Category:    task.Category,
			Description: task.Description,
		}
		mu.Lock()
		outstanding[payload.ID] = payload
		mu.Unlock()
		if err := req.Submit(payload); err != nil {
			if !cfg.Resilient {
				return rep, fmt.Errorf("loadgen: submit: %w", err)
			}
			// Ambiguous failure (timeout, conn cut mid-send): the server
			// may or may not have the task. Leave it outstanding — the
			// reconcile pass resubmits if the server reports "unknown".
			cfg.Logf("loadgen: submit %s unconfirmed: %v", payload.ID, err)
		}
		rep.Submitted++
		if cfg.OnSubmit != nil {
			cfg.OnSubmit(rep.Submitted)
		}
		cfg.Clock.Sleep(gap)
	}
	cfg.Logf("loadgen: submitted %d tasks, draining", rep.Submitted)

	// Drain: wait for every submission to terminate (bounded). Resilient
	// runs get a wider window — recovery from injected faults (backoff,
	// idle-deadline detection, restart) happens in uncompressed time.
	window := time.Duration(float64(3*time.Minute) / cfg.Compress * 2)
	if cfg.Resilient && window < 15*time.Second {
		window = 15 * time.Second
	}
	deadline := cfg.Clock.Now().Add(window)
	for cfg.Clock.Now().Before(deadline) {
		mu.Lock()
		open := len(outstanding)
		mu.Unlock()
		if open == 0 {
			break
		}
		if cfg.Resilient {
			reconcile(cfg, req, &mu, outstanding, &rep, settle)
		}
		cfg.Clock.Sleep(10 * time.Millisecond)
	}
	stats, err := req.Stats()
	for _, w := range workers {
		gather(&rep, w)
		w.Close()
	}
	wg.Wait()
	// Close the requester feed and wait for the result collector so every
	// rep field is settled before the final read.
	gather(&rep, req)
	req.Close()
	<-done
	if err == nil {
		rep.Server = stats
	}
	mu.Lock()
	rep.Unresolved = len(outstanding)
	mu.Unlock()
	rep.Wall = cfg.Clock.Now().Sub(start)
	return rep, nil
}

// reconcile resolves outstanding tasks whose result push was lost to an
// outage: terminal states are settled from the status query, and tasks the
// server has no record of are resubmitted with a fresh deadline.
func reconcile(cfg Config, req client, mu *sync.Mutex,
	outstanding map[string]wire.TaskPayload, rep *Report,
	settle func(taskID string, expired, metDeadline, reconciled bool)) {
	mu.Lock()
	open := make([]wire.TaskPayload, 0, len(outstanding))
	for _, p := range outstanding {
		open = append(open, p)
	}
	mu.Unlock()
	for _, p := range open {
		st, err := req.TaskStatus(p.ID)
		if err != nil {
			return // connection trouble; the next pass retries
		}
		switch st.State {
		case "completed":
			settle(p.ID, false, st.MetDeadline, true)
		case "expired":
			settle(p.ID, true, false, true)
		case "unknown":
			// The server never saw it (cut submission) or lost it (task
			// state is in-memory; a restart wipes the queue). Resubmit.
			err := req.Submit(p)
			if err == nil {
				mu.Lock()
				rep.Resubmitted++
				mu.Unlock()
				cfg.Logf("loadgen: resubmitted %s", p.ID)
			} else if errors.Is(err, wire.ErrTimeout) ||
				strings.Contains(err.Error(), "duplicate") {
				continue // ambiguous or raced a concurrent resubmit; retry next pass
			}
		}
	}
}
