// Package loadgen drives a live (TCP) REACT region server with a synthetic
// crowd and a task stream — the wall-clock counterpart of the deterministic
// harness in internal/experiments. It exists to exercise the deployed
// middleware end-to-end: real connections, real goroutine workers with the
// §V.C behaviour model, real deadlines. Because the experiments' 60–120 s
// deadlines would make each run minutes long, every duration is compressed
// by a configurable factor (default 100×: deadlines become 0.6–1.2 s,
// completions 10–200 ms), which preserves all the ratios the scheduler
// reasons about.
package loadgen

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"react/internal/clock"
	"react/internal/crowd"
	"react/internal/wire"
	"react/internal/workload"
)

// Config parameterizes one load run. Zero fields take defaults.
type Config struct {
	Addr     string  // region server address (required)
	Workers  int     // crowd size (default 20)
	Rate     float64 // tasks per *uncompressed* second (default: Workers/80, the paper's stable ratio)
	Tasks    int     // total tasks to submit (default 100)
	Seed     int64   // behaviour/workload seed
	Compress float64 // time compression factor (default 100)
	Logf     func(format string, args ...any)

	// Clock is the timebase for pacing, deadlines, and the wall-time
	// report (default clock.System{}). Injectable so the generator obeys
	// the same clock discipline as the rest of the module.
	Clock clock.Sleeper
}

func (c Config) normalize() Config {
	if c.Workers <= 0 {
		c.Workers = 20
	}
	if c.Rate <= 0 {
		// The paper's stable operating ratio: ~80 workers per task/s
		// (750 workers at 9.375 tasks/s).
		c.Rate = float64(c.Workers) / 80
	}
	if c.Tasks <= 0 {
		c.Tasks = 100
	}
	if c.Compress <= 0 {
		c.Compress = 100
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Clock == nil {
		c.Clock = clock.System{}
	}
	return c
}

// Report summarizes a run from the requester's perspective, plus the
// server's own counters.
type Report struct {
	Submitted int
	Results   int // result pushes received (completions + expiries)
	OnTime    int
	Late      int
	Expired   int
	Positive  int // positive feedbacks sent
	Wall      time.Duration
	Server    wire.StatsPayload
}

// Run executes the load: Workers worker connections with crowd behaviours,
// one watching requester, Tasks submissions at the configured rate.
func Run(cfg Config) (Report, error) {
	cfg = cfg.normalize()
	start := cfg.Clock.Now()

	// Crowd connections, spread uniformly over the same area the task
	// generator uses so multi-region backends see workers in every cell.
	gen := workload.Generator{Prefix: fmt.Sprintf("load-%d", cfg.Seed)}.Normalize()
	locRng := rand.New(rand.NewSource(cfg.Seed ^ 0x10c))
	behaviors := crowd.NewPopulation(cfg.Workers, rand.New(rand.NewSource(cfg.Seed)))
	var wg sync.WaitGroup
	workers := make([]*wire.Client, 0, cfg.Workers)
	defer func() {
		for _, w := range workers {
			w.Close()
		}
	}()
	for i, b := range behaviors {
		cl, err := wire.Dial(cfg.Addr)
		if err != nil {
			return Report{}, fmt.Errorf("loadgen: worker dial: %w", err)
		}
		workers = append(workers, cl)
		id := fmt.Sprintf("load-w%03d", i)
		loc := gen.Area.RandomPoint(locRng)
		if err := cl.Register(id, loc.Lat, loc.Lon); err != nil {
			return Report{}, fmt.Errorf("loadgen: register %s: %w", id, err)
		}
		wg.Add(1)
		go func(id string, cl *wire.Client, b crowd.Behavior, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for a := range cl.Assignments() {
				exec := time.Duration(float64(b.ExecTime(rng)) / cfg.Compress)
				cfg.Clock.Sleep(exec)
				// Reassigned tasks fail Complete; that is expected traffic.
				cl.Complete(a.TaskID, id, "synthetic answer")
			}
		}(id, cl, b, cfg.Seed^int64(i*2654435761))
	}

	// Requester connection: watch results, grade them.
	req, err := wire.Dial(cfg.Addr)
	if err != nil {
		return Report{}, fmt.Errorf("loadgen: requester dial: %w", err)
	}
	defer req.Close()
	if err := req.Watch(); err != nil {
		return Report{}, err
	}
	var rep Report
	var mu sync.Mutex
	var resultsSeen atomic.Int32
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := range req.Results() {
			mu.Lock()
			rep.Results++
			switch {
			case r.Expired:
				rep.Expired++
			case r.MetDeadline:
				rep.OnTime++
			default:
				rep.Late++
			}
			mu.Unlock()
			if !r.Expired {
				positive := r.MetDeadline
				if err := req.Feedback(r.TaskID, positive); err == nil && positive {
					mu.Lock()
					rep.Positive++
					mu.Unlock()
				}
			}
			resultsSeen.Add(1)
		}
	}()

	// Submission loop: compressed constant-rate stream with the §V.C
	// deadline band.
	wrng := rand.New(rand.NewSource(cfg.Seed ^ 0x10adfeed))
	gap := time.Duration(float64(time.Second) / cfg.Rate / cfg.Compress)
	for i := 0; i < cfg.Tasks; i++ {
		task := gen.Make(i, cfg.Clock.Now(), wrng)
		deadline := time.Duration(float64(task.Deadline.Sub(cfg.Clock.Now())) / cfg.Compress)
		err := req.Submit(wire.TaskPayload{
			ID:          task.ID,
			Lat:         task.Location.Lat,
			Lon:         task.Location.Lon,
			DeadlineMS:  deadline.Milliseconds(),
			Reward:      task.Reward,
			Category:    task.Category,
			Description: task.Description,
		})
		if err != nil {
			return rep, fmt.Errorf("loadgen: submit: %w", err)
		}
		rep.Submitted++
		cfg.Clock.Sleep(gap)
	}
	cfg.Logf("loadgen: submitted %d tasks, draining", rep.Submitted)

	// Drain: wait for every submission to terminate (bounded).
	deadline := cfg.Clock.Now().Add(time.Duration(float64(3*time.Minute) / cfg.Compress * 2))
	for cfg.Clock.Now().Before(deadline) && int(resultsSeen.Load()) < cfg.Tasks {
		cfg.Clock.Sleep(10 * time.Millisecond)
	}
	stats, err := req.Stats()
	for _, w := range workers {
		w.Close()
	}
	wg.Wait()
	// Close the requester feed and wait for the result collector so every
	// rep field is settled before the final read.
	req.Close()
	<-done
	if err == nil {
		rep.Server = stats
	}
	rep.Wall = cfg.Clock.Now().Sub(start)
	return rep, nil
}
