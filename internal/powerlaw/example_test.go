package powerlaw_test

import (
	"fmt"

	"react/internal/powerlaw"
)

// A worker's last five completion times (seconds) feed the model; the
// scheduler then asks Eq. 3 whether a 30-second deadline is realistic and
// Eq. 2 whether a task already running for 20 seconds is still likely to
// make a 60-second window.
func Example() {
	var f powerlaw.Fitter
	for _, secs := range []float64{4, 6, 9, 5, 7} {
		f.Add(secs)
	}
	m, _ := f.Model()
	fmt.Printf("alpha=%.2f kmin=%.0f\n", m.Alpha, m.Kmin)
	fmt.Printf("Eq3 Pr(exec < 30s)       = %.2f\n", m.ProbMeetDeadline(30))
	fmt.Printf("Eq2 Pr(20s < exec < 60s) = %.2f\n", m.ProbWindow(20, 60))
	// Output:
	// alpha=2.87 kmin=4
	// Eq3 Pr(exec < 30s)       = 0.98
	// Eq2 Pr(20s < exec < 60s) = 0.04
}

// Quantile answers "by when will 90% of this worker's tasks be done".
func ExampleModel_Quantile() {
	m, _ := powerlaw.New(2.5, 5)
	fmt.Printf("p50=%.1fs p90=%.1fs\n", m.Quantile(0.5), m.Quantile(0.9))
	// Output: p50=7.9s p90=23.2s
}
