package powerlaw

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustModel(t *testing.T, alpha, kmin float64) Model {
	t.Helper()
	m, err := New(alpha, kmin)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewValidates(t *testing.T) {
	cases := []struct {
		alpha, kmin float64
		ok          bool
	}{
		{2.5, 1, true},
		{1.0001, 0.5, true},
		{1, 1, false},   // alpha must exceed 1
		{0.5, 1, false}, // alpha below 1
		{2, 0, false},   // kmin must be positive
		{2, -3, false},  // negative kmin
		{math.NaN(), 1, false},
		{2, math.NaN(), false},
		{math.Inf(1), 1, false},
	}
	for _, c := range cases {
		_, err := New(c.alpha, c.kmin)
		if (err == nil) != c.ok {
			t.Errorf("New(%v, %v) err=%v, want ok=%v", c.alpha, c.kmin, err, c.ok)
		}
	}
}

func TestFitRejectsBadSamples(t *testing.T) {
	if _, err := Fit(nil); err != ErrNoSamples {
		t.Errorf("Fit(nil) err = %v, want ErrNoSamples", err)
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := Fit([]float64{2, bad, 3}); err == nil {
			t.Errorf("Fit with sample %v accepted", bad)
		}
	}
}

func TestFitMatchesPaperFormula(t *testing.T) {
	// Hand-computed α = 1 + n[Σ ln(k_i/(kmin−½))]⁻¹ for a fixed set.
	samples := []float64{2, 4, 8, 16}
	kmin := 2.0
	var s float64
	for _, k := range samples {
		s += math.Log(k / (kmin - 0.5))
	}
	want := 1 + 4/s
	m, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Alpha-want) > 1e-12 {
		t.Fatalf("Alpha = %v, want %v", m.Alpha, want)
	}
	if m.Kmin != 2 {
		t.Fatalf("Kmin = %v, want 2", m.Kmin)
	}
	if m.N != 4 {
		t.Fatalf("N = %v, want 4", m.N)
	}
}

func TestFitDegenerateHistoryCapsAlpha(t *testing.T) {
	// All samples at kmin with kmin < 0.5 uses the continuous denominator,
	// making Σ ln(k/kmin) = 0 → capped α.
	m, err := Fit([]float64{0.25, 0.25, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if m.Alpha != MaxAlpha {
		t.Fatalf("degenerate fit Alpha = %v, want MaxAlpha", m.Alpha)
	}
}

func TestFitterIncrementalEqualsBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	truth := mustModel(t, 2.3, 1.5)
	samples := make([]float64, 500)
	var f Fitter
	for i := range samples {
		samples[i] = truth.Sample(rng)
		if err := f.Add(samples[i]); err != nil {
			t.Fatal(err)
		}
	}
	inc, err := f.Model()
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(inc.Alpha-batch.Alpha) > 1e-9 || inc.Kmin != batch.Kmin || inc.N != batch.N {
		t.Fatalf("incremental %+v != batch %+v", inc, batch)
	}
}

func TestFitRecoversExponent(t *testing.T) {
	// Sampling from a known model and refitting should recover α within a
	// few percent at n=20000. Use a large kmin so the paper's discrete −½
	// correction (designed for integer-valued data) is negligible against
	// the continuous samples we draw.
	rng := rand.New(rand.NewSource(7))
	for _, alpha := range []float64{1.8, 2.5, 3.5} {
		truth := mustModel(t, alpha, 100)
		var f Fitter
		for i := 0; i < 20000; i++ {
			if err := f.Add(truth.Sample(rng)); err != nil {
				t.Fatal(err)
			}
		}
		m, err := f.Model()
		if err != nil {
			t.Fatal(err)
		}
		// The discrete −½ correction biases slightly for continuous data;
		// accept 10% relative error.
		if rel := math.Abs(m.Alpha-alpha) / alpha; rel > 0.10 {
			t.Errorf("alpha %v: fitted %v (rel err %.3f)", alpha, m.Alpha, rel)
		}
	}
}

func TestCCDFBoundsAndMonotonicity(t *testing.T) {
	m := mustModel(t, 2.5, 2)
	if got := m.CCDF(1); got != 1 {
		t.Fatalf("CCDF below kmin = %v, want 1", got)
	}
	if got := m.CCDF(2); got != 1 {
		t.Fatalf("CCDF at kmin = %v, want 1", got)
	}
	prev := 1.0
	for k := 2.0; k < 1000; k *= 1.3 {
		p := m.CCDF(k)
		if p < 0 || p > 1 {
			t.Fatalf("CCDF(%v) = %v out of [0,1]", k, p)
		}
		if p > prev {
			t.Fatalf("CCDF increased at %v: %v > %v", k, p, prev)
		}
		prev = p
	}
	if m.CCDF(1e12) > 1e-6 {
		t.Fatalf("CCDF tail did not vanish: %v", m.CCDF(1e12))
	}
}

func TestCDFComplementsCCDF(t *testing.T) {
	m := mustModel(t, 2.2, 1)
	for k := 0.5; k < 100; k *= 1.7 {
		if got := m.CDF(k) + m.CCDF(k); math.Abs(got-1) > 1e-12 {
			t.Fatalf("CDF+CCDF at %v = %v", k, got)
		}
	}
}

func TestEq3ProbMeetDeadline(t *testing.T) {
	m := mustModel(t, 2.5, 2)
	if got := m.ProbMeetDeadline(0); got != 0 {
		t.Fatalf("ProbMeetDeadline(0) = %v, want 0", got)
	}
	if got := m.ProbMeetDeadline(-5); got != 0 {
		t.Fatalf("ProbMeetDeadline(-5) = %v, want 0", got)
	}
	// At the lower bound everything is still ahead: probability 0.
	if got := m.ProbMeetDeadline(2); got != 0 {
		t.Fatalf("ProbMeetDeadline(kmin) = %v, want 0", got)
	}
	// Far beyond the typical value the probability approaches 1.
	if got := m.ProbMeetDeadline(1e9); got < 0.999999 {
		t.Fatalf("ProbMeetDeadline(huge) = %v", got)
	}
	// Monotone in the deadline.
	prev := 0.0
	for ttd := 2.0; ttd < 500; ttd *= 1.5 {
		p := m.ProbMeetDeadline(ttd)
		if p < prev {
			t.Fatalf("Eq.3 not monotone at %v", ttd)
		}
		prev = p
	}
}

func TestEq2MatchesAlgebraicForm(t *testing.T) {
	// The paper writes Eq.2 as 1 − (P(TTD) + (1 − P(t))); check it equals
	// P(t) − P(TTD) wherever the window is non-degenerate.
	m := mustModel(t, 2.1, 1)
	for _, tc := range []struct{ t, ttd float64 }{
		{1, 10}, {2, 3}, {5, 100}, {0.5, 2},
	} {
		want := m.CCDF(tc.t) - m.CCDF(tc.ttd)
		if want < 0 {
			want = 0
		}
		got := m.ProbWindow(tc.t, tc.ttd)
		if math.Abs(got-want) > 1e-12 {
			t.Fatalf("ProbWindow(%v,%v) = %v, want %v", tc.t, tc.ttd, got, want)
		}
	}
}

func TestEq2DegenerateWindow(t *testing.T) {
	m := mustModel(t, 2.5, 1)
	if got := m.ProbWindow(10, 10); got != 0 {
		t.Fatalf("ProbWindow(t==TTD) = %v, want 0", got)
	}
	if got := m.ProbWindow(20, 10); got != 0 {
		t.Fatalf("ProbWindow(t>TTD) = %v, want 0", got)
	}
}

func TestEq2ShrinksAsTimePasses(t *testing.T) {
	// As elapsed time grows toward a fixed deadline, the probability of
	// finishing in the remaining window must not increase — this is the
	// monotonicity the reassignment monitor relies on.
	m := mustModel(t, 2.0, 1)
	const ttd = 120.0
	prev := 1.0
	for elapsed := 1.0; elapsed < ttd; elapsed += 5 {
		p := m.ProbWindow(elapsed, ttd)
		if p > prev+1e-12 {
			t.Fatalf("Eq.2 increased at elapsed=%v: %v > %v", elapsed, p, prev)
		}
		prev = p
	}
}

func TestQuantileInvertsCDF(t *testing.T) {
	m := mustModel(t, 2.7, 3)
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.99} {
		k := m.Quantile(p)
		if got := m.CDF(k); math.Abs(got-p) > 1e-9 {
			t.Fatalf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
	if !math.IsInf(m.Quantile(1), 1) {
		t.Fatal("Quantile(1) should be +Inf")
	}
	if m.Quantile(0) != 3 {
		t.Fatalf("Quantile(0) = %v, want kmin", m.Quantile(0))
	}
}

func TestSampleRespectsLowerBoundAndMedian(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	m := mustModel(t, 2.5, 2)
	const n = 50000
	below := 0
	underMedian := 0
	for i := 0; i < n; i++ {
		s := m.Sample(rng)
		if s < m.Kmin {
			below++
		}
		if s < m.Median() {
			underMedian++
		}
	}
	if below != 0 {
		t.Fatalf("%d samples below kmin", below)
	}
	frac := float64(underMedian) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("fraction under median = %v, want ≈0.5", frac)
	}
}

func TestMean(t *testing.T) {
	m := mustModel(t, 3, 2)
	if got, want := m.Mean(), 2*2.0/1.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	heavy := mustModel(t, 1.9, 2)
	if !math.IsInf(heavy.Mean(), 1) {
		t.Fatalf("Mean for α≤2 = %v, want +Inf", heavy.Mean())
	}
	// Empirical check: sample mean approaches analytic mean for α=3.
	rng := rand.New(rand.NewSource(5))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += m.Sample(rng)
	}
	if got := sum / n; math.Abs(got-m.Mean())/m.Mean() > 0.05 {
		t.Fatalf("empirical mean %v, analytic %v", got, m.Mean())
	}
}

func TestStringFormat(t *testing.T) {
	m := mustModel(t, 2.5, 1.25)
	if got := m.String(); got != "powerlaw(α=2.500, kmin=1.250, n=0)" {
		t.Fatalf("String() = %q", got)
	}
}

// Property: for any positive samples, the fitted model is valid (α in
// range, kmin = min sample) and its CCDF is within bounds and monotone on a
// grid.
func TestQuickFitProducesValidModel(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]float64, 0, len(raw))
		min := math.Inf(1)
		for _, r := range raw {
			k := 1 + float64(r%130) // completion times 1..130s as in the paper
			samples = append(samples, k)
			if k < min {
				min = k
			}
		}
		m, err := Fit(samples)
		if err != nil {
			return false
		}
		if m.Alpha < MinAlpha || m.Alpha > MaxAlpha || m.Kmin != min {
			return false
		}
		prev := 1.0
		for k := min; k < 10*min; k += min / 2 {
			p := m.CCDF(k)
			if p < 0 || p > prev {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

// Property: Eq.2 and Eq.3 always produce probabilities in [0,1].
func TestQuickProbabilitiesInRange(t *testing.T) {
	f := func(a, k, t1, t2 uint16) bool {
		alpha := 1.01 + float64(a%400)/100 // 1.01..5.01
		kmin := 0.5 + float64(k%100)
		m, err := New(alpha, kmin)
		if err != nil {
			return false
		}
		elapsed := float64(t1)
		ttd := float64(t2)
		p2 := m.ProbWindow(elapsed, ttd)
		p3 := m.ProbMeetDeadline(ttd)
		return p2 >= 0 && p2 <= 1 && p3 >= 0 && p3 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
}

// Property: sampling then refitting recovers kmin exactly and a usable α.
func TestQuickSampleFitRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(a uint8) bool {
		alpha := 1.5 + float64(a%25)/10 // 1.5..3.9
		truth, err := New(alpha, 2)
		if err != nil {
			return false
		}
		var fit Fitter
		for i := 0; i < 2000; i++ {
			if err := fit.Add(truth.Sample(rng)); err != nil {
				return false
			}
		}
		m, err := fit.Model()
		if err != nil {
			return false
		}
		return m.Kmin >= 2 && m.Alpha > 1 && math.Abs(m.Alpha-alpha)/alpha < 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFitterAdd(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m, _ := New(2.5, 1)
	samples := make([]float64, 1024)
	for i := range samples {
		samples[i] = m.Sample(rng)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var f Fitter
	for i := 0; i < b.N; i++ {
		_ = f.Add(samples[i%len(samples)])
	}
}

func BenchmarkProbWindow(b *testing.B) {
	m, _ := New(2.3, 1.5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = m.ProbWindow(float64(i%60)+1, 120)
	}
}

func TestFitContinuousLessBiasedOnContinuousData(t *testing.T) {
	// Continuous samples with small kmin: the discrete −½ correction
	// deflates α badly; the continuous estimator recovers it closely.
	rng := rand.New(rand.NewSource(19))
	truth := mustModel(t, 2.5, 1)
	samples := make([]float64, 20000)
	for i := range samples {
		samples[i] = truth.Sample(rng)
	}
	disc, err := Fit(samples)
	if err != nil {
		t.Fatal(err)
	}
	cont, err := FitContinuous(samples)
	if err != nil {
		t.Fatal(err)
	}
	errDisc := math.Abs(disc.Alpha - 2.5)
	errCont := math.Abs(cont.Alpha - 2.5)
	if errCont > 0.1 {
		t.Fatalf("continuous estimator off by %v", errCont)
	}
	if errCont >= errDisc {
		t.Fatalf("continuous error %v not below discrete %v at kmin≈1", errCont, errDisc)
	}
}

func TestFitContinuousValidation(t *testing.T) {
	if _, err := FitContinuous(nil); err != ErrNoSamples {
		t.Fatalf("err = %v", err)
	}
	if _, err := FitContinuous([]float64{1, -2}); err == nil {
		t.Fatal("negative sample accepted")
	}
	// Degenerate constant data caps.
	m, err := FitContinuous([]float64{3, 3, 3})
	if err != nil {
		t.Fatal(err)
	}
	if m.Alpha != MaxAlpha {
		t.Fatalf("constant-data alpha = %v, want cap", m.Alpha)
	}
}
