package powerlaw

import (
	"fmt"
	"math/rand"
	"sort"
)

// This file implements the goodness-of-fit machinery of Clauset, Shalizi
// and Newman (the paper's reference [22] for why completion times are
// power-law distributed): the Kolmogorov–Smirnov distance between a fitted
// model and its data, and a parametric-bootstrap p-value. REACT itself
// schedules on the fitted CCDF regardless, but a deployment can use the
// p-value to flag workers whose history has stopped looking power-law —
// e.g. a bot with constant response times — and fall back to trainee
// handling for them.

// KSDistance is the Kolmogorov–Smirnov statistic between the model and an
// empirical sample: the maximum absolute difference between the model CDF
// and the empirical CDF, evaluated over samples ≥ Kmin (the region where
// power-law behaviour is claimed). It returns an error when no samples
// reach Kmin.
func (m Model) KSDistance(samples []float64) (float64, error) {
	tail := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s >= m.Kmin {
			tail = append(tail, s)
		}
	}
	if len(tail) == 0 {
		return 0, fmt.Errorf("powerlaw: no samples at or above kmin %v", m.Kmin)
	}
	sort.Float64s(tail)
	n := float64(len(tail))
	var max float64
	for i, x := range tail {
		model := m.CDF(x)
		// Compare against both step edges of the empirical CDF.
		lo := float64(i) / n
		hi := float64(i+1) / n
		if d := model - lo; d > max {
			max = d
		}
		if d := hi - model; d > max {
			max = d
		}
	}
	return max, nil
}

// GoFResult reports a bootstrap goodness-of-fit test.
type GoFResult struct {
	Distance float64 // KS distance of the fitted model vs the data
	PValue   float64 // fraction of synthetic datasets fitting worse
	Trials   int
}

// PlausiblyPowerLaw applies the conventional 0.1 threshold of Clauset et
// al.: below it the power-law hypothesis is rejected.
func (r GoFResult) PlausiblyPowerLaw() bool { return r.PValue > 0.1 }

// GoodnessOfFit runs the parametric bootstrap: fit the data, then repeat
// `trials` times {draw an equal-size dataset from the fitted model, refit,
// measure its KS distance}; the p-value is the fraction of synthetic
// datasets whose distance is at least the data's. 100 trials give a ±0.03
// p-value resolution, enough for the 0.1 decision threshold.
func GoodnessOfFit(samples []float64, trials int, rng *rand.Rand) (GoFResult, error) {
	if trials < 1 {
		return GoFResult{}, fmt.Errorf("powerlaw: need at least 1 trial, got %d", trials)
	}
	model, err := Fit(samples)
	if err != nil {
		return GoFResult{}, err
	}
	d0, err := model.KSDistance(samples)
	if err != nil {
		return GoFResult{}, err
	}
	worse := 0
	synth := make([]float64, len(samples))
	for t := 0; t < trials; t++ {
		for i := range synth {
			synth[i] = model.Sample(rng)
		}
		mt, err := Fit(synth)
		if err != nil {
			return GoFResult{}, err
		}
		dt, err := mt.KSDistance(synth)
		if err != nil {
			return GoFResult{}, err
		}
		if dt >= d0 {
			worse++
		}
	}
	return GoFResult{
		Distance: d0,
		PValue:   float64(worse) / float64(trials),
		Trials:   trials,
	}, nil
}
