package powerlaw

import (
	"math/rand"
	"testing"
)

func TestKSDistanceBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := mustModel(t, 2.5, 2)
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = m.Sample(rng)
	}
	d, err := m.KSDistance(samples)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0 || d > 1 {
		t.Fatalf("KS distance %v out of [0,1]", d)
	}
	// Data drawn from the model itself should fit closely at n=2000.
	if d > 0.05 {
		t.Fatalf("self-sampled KS distance %v unexpectedly large", d)
	}
}

func TestKSDistanceDetectsWrongModel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	truth := mustModel(t, 3.5, 2)
	wrong := mustModel(t, 1.5, 2) // much heavier tail
	samples := make([]float64, 2000)
	for i := range samples {
		samples[i] = truth.Sample(rng)
	}
	dTruth, err := truth.KSDistance(samples)
	if err != nil {
		t.Fatal(err)
	}
	dWrong, err := wrong.KSDistance(samples)
	if err != nil {
		t.Fatal(err)
	}
	if dWrong < 5*dTruth {
		t.Fatalf("wrong model KS %v not clearly above true model %v", dWrong, dTruth)
	}
}

func TestKSDistanceNoTail(t *testing.T) {
	m := mustModel(t, 2.5, 100)
	if _, err := m.KSDistance([]float64{1, 2, 3}); err == nil {
		t.Fatal("KS with all samples below kmin accepted")
	}
}

func TestGoodnessOfFitAcceptsPowerLawData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	truth := mustModel(t, 2.5, 5)
	samples := make([]float64, 500)
	for i := range samples {
		samples[i] = truth.Sample(rng)
	}
	res, err := GoodnessOfFit(samples, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	if !res.PlausiblyPowerLaw() {
		t.Fatalf("true power-law data rejected: %+v", res)
	}
	if res.Trials != 60 || res.Distance <= 0 {
		t.Fatalf("result = %+v", res)
	}
}

func TestGoodnessOfFitRejectsUniformData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// Uniform [10, 20) data has a sharp upper cutoff no power law matches.
	samples := make([]float64, 800)
	for i := range samples {
		samples[i] = 10 + 10*rng.Float64()
	}
	res, err := GoodnessOfFit(samples, 60, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlausiblyPowerLaw() {
		t.Fatalf("uniform data accepted as power law: %+v", res)
	}
}

func TestGoodnessOfFitRejectsConstantBotData(t *testing.T) {
	// The deployment scenario: a bot answering in exactly 3.0s every time.
	// The discrete −½ correction still yields a finite α, but the KS
	// distance between a point mass and any power law is near 1, so the
	// bootstrap rejects decisively.
	samples := make([]float64, 100)
	for i := range samples {
		samples[i] = 3.0
	}
	rng := rand.New(rand.NewSource(6))
	res, err := GoodnessOfFit(samples, 40, rng)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlausiblyPowerLaw() {
		t.Fatalf("bot data accepted as power law: %+v", res)
	}
	if res.Distance < 0.5 {
		t.Fatalf("point-mass KS distance %v unexpectedly small", res.Distance)
	}
}

func TestGoodnessOfFitValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if _, err := GoodnessOfFit([]float64{1, 2, 3}, 0, rng); err == nil {
		t.Fatal("zero trials accepted")
	}
	if _, err := GoodnessOfFit(nil, 10, rng); err == nil {
		t.Fatal("empty samples accepted")
	}
}

// FuzzFitterInvariants drives the fitting pipeline with arbitrary sample
// bytes: whatever the inputs, Fit must either reject them or produce a
// model whose CCDF is a valid monotone survival function.
func FuzzFitterInvariants(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4})
	f.Add([]byte{255, 0, 17})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		samples := make([]float64, 0, len(data))
		for _, b := range data {
			samples = append(samples, 0.5+float64(b)) // positive by construction
		}
		m, err := Fit(samples)
		if err != nil {
			if len(samples) != 0 {
				t.Fatalf("positive samples rejected: %v", err)
			}
			return
		}
		if m.Alpha < MinAlpha || m.Alpha > MaxAlpha {
			t.Fatalf("alpha %v out of range", m.Alpha)
		}
		prev := 1.0
		for k := m.Kmin; k < m.Kmin*8; k += m.Kmin / 4 {
			p := m.CCDF(k)
			if p < 0 || p > prev {
				t.Fatalf("CCDF not monotone at %v", k)
			}
			prev = p
		}
	})
}
