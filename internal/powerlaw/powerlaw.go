// Package powerlaw implements the execution-time model of REACT (§IV.B of
// the paper). Worker completion times are assumed to follow a power law
// p(k) ∝ k^(−α); the scaling exponent is estimated from a worker's history
// with the discrete maximum-likelihood approximation of Clauset, Shalizi and
// Newman that the paper quotes:
//
//	α = 1 + n · [ Σᵢ ln( kᵢ / (k_min − ½) ) ]⁻¹
//
// with k_min the smallest observed completion time. The complementary CDF
//
//	P(k) = Pr(K ≥ k) = (k / k_min)^(−α+1)
//
// then yields the two probabilities REACT schedules with:
//
//	Eq. 3  Pr(Exec < TTD)        = 1 − P(TTD)               (edge pruning)
//	Eq. 2  Pr(t < Exec < TTD)    = 1 − (P(TTD) + (1 − P(t))) (reassignment)
//
// Both are exposed verbatim so the scheduler code reads like the paper.
package powerlaw

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Estimation guards. An α at MaxAlpha means the history is (numerically)
// degenerate — e.g. every sample equals k_min — and the distribution is
// treated as a point mass just above k_min.
const (
	// MinAlpha is the smallest exponent Fit will return. α must exceed 1
	// for the CCDF (k/kmin)^(1−α) to decay at all.
	MinAlpha = 1.000001
	// MaxAlpha caps the exponent for degenerate histories.
	MaxAlpha = 64.0
)

// Errors returned by the fitting routines.
var (
	ErrNoSamples         = errors.New("powerlaw: no samples")
	ErrNonPositiveSample = errors.New("powerlaw: samples must be positive")
)

// Model is a fitted power-law distribution with lower bound Kmin and
// exponent Alpha. The zero value is not valid; obtain models from Fit, a
// Fitter, or construct one explicitly with New.
type Model struct {
	Alpha float64 // scaling exponent, > 1
	Kmin  float64 // lower bound of power-law behaviour, > 0
	N     int     // number of samples the fit is based on (0 if synthetic)
}

// New constructs a model directly from parameters, validating them. It is
// used by tests and by workload generators that need a ground-truth
// distribution to sample from.
func New(alpha, kmin float64) (Model, error) {
	if !(alpha > 1) || math.IsInf(alpha, 0) || math.IsNaN(alpha) {
		return Model{}, fmt.Errorf("powerlaw: alpha %v out of range (need > 1)", alpha)
	}
	if !(kmin > 0) || math.IsInf(kmin, 0) || math.IsNaN(kmin) {
		return Model{}, fmt.Errorf("powerlaw: kmin %v out of range (need > 0)", kmin)
	}
	return Model{Alpha: alpha, Kmin: kmin}, nil
}

// Fit estimates a model from a sample set using the paper's discrete MLE
// approximation. All samples must be positive. When k_min ≤ ½ the discrete
// correction k_min−½ is meaningless (non-positive denominator), so the
// continuous MLE denominator k_min is used instead; completion times in
// REACT are measured in seconds ≥ 1, where the discrete form applies.
func Fit(samples []float64) (Model, error) {
	var f Fitter
	for _, k := range samples {
		if err := f.Add(k); err != nil {
			return Model{}, err
		}
	}
	return f.Model()
}

// FitContinuous estimates with the continuous MLE α = 1 + n[Σ ln(kᵢ/k_min)]⁻¹
// (no −½ correction). The paper quotes the discrete form, which is right
// for integer-valued data but biased low on continuous completion times with
// small k_min; deployments measuring sub-second precision should prefer
// this estimator. CCDF and the Eq. 2/3 probabilities are identical either
// way — only α differs.
func FitContinuous(samples []float64) (Model, error) {
	var f Fitter
	for _, k := range samples {
		if err := f.Add(k); err != nil {
			return Model{}, err
		}
	}
	if f.n == 0 {
		return Model{}, ErrNoSamples
	}
	s := f.sumLog - float64(f.n)*math.Log(f.min)
	alpha := MaxAlpha
	if s > 0 {
		alpha = 1 + float64(f.n)/s
	}
	alpha = math.Min(math.Max(alpha, MinAlpha), MaxAlpha)
	return Model{Alpha: alpha, Kmin: f.min, N: f.n}, nil
}

// Fitter accumulates samples incrementally in O(1) memory. The profiling
// component keeps one Fitter per worker and refreshes the model after each
// completed task. The zero value is ready to use.
type Fitter struct {
	n      int
	sumLog float64 // Σ ln kᵢ
	min    float64
}

// Add records one completion time. Non-positive or non-finite samples are
// rejected.
func (f *Fitter) Add(k float64) error {
	if !(k > 0) || math.IsInf(k, 0) || math.IsNaN(k) {
		return fmt.Errorf("%w: got %v", ErrNonPositiveSample, k)
	}
	if f.n == 0 || k < f.min {
		f.min = k
	}
	f.n++
	f.sumLog += math.Log(k)
	return nil
}

// N reports the number of samples recorded.
func (f *Fitter) N() int { return f.n }

// State exports the accumulator for persistence: the sample count, the sum
// of sample logarithms, and the minimum sample. RestoreFitter inverts it.
func (f *Fitter) State() (n int, sumLog, min float64) {
	return f.n, f.sumLog, f.min
}

// RestoreFitter reconstructs a fitter from persisted state. Invalid state
// (negative count, non-positive min with samples present, non-finite sums)
// is rejected.
func RestoreFitter(n int, sumLog, min float64) (*Fitter, error) {
	if n < 0 {
		return nil, fmt.Errorf("powerlaw: negative sample count %d", n)
	}
	if n > 0 && !(min > 0) {
		return nil, fmt.Errorf("powerlaw: restored min %v must be positive", min)
	}
	if math.IsNaN(sumLog) || math.IsInf(sumLog, 0) || math.IsNaN(min) || math.IsInf(min, 0) {
		return nil, fmt.Errorf("powerlaw: non-finite restored state (sumLog=%v min=%v)", sumLog, min)
	}
	if n == 0 {
		return &Fitter{}, nil
	}
	return &Fitter{n: n, sumLog: sumLog, min: min}, nil
}

// Min reports the smallest sample recorded (0 before any Add).
func (f *Fitter) Min() float64 { return f.min }

// Model produces the fitted distribution. It fails only when no samples
// have been added.
func (f *Fitter) Model() (Model, error) {
	if f.n == 0 {
		return Model{}, ErrNoSamples
	}
	denom := f.min - 0.5
	if denom <= 0 {
		denom = f.min // continuous MLE fallback for sub-unit samples
	}
	// Σ ln(kᵢ/denom) = Σ ln kᵢ − n·ln denom, so the incremental sums
	// suffice even though k_min changes as samples arrive.
	s := f.sumLog - float64(f.n)*math.Log(denom)
	alpha := MaxAlpha
	if s > 0 {
		alpha = 1 + float64(f.n)/s
	}
	alpha = math.Min(math.Max(alpha, MinAlpha), MaxAlpha)
	return Model{Alpha: alpha, Kmin: f.min, N: f.n}, nil
}

// CCDF is the complementary CDF P(k) = Pr(K ≥ k). For k ≤ Kmin the
// probability is 1 by definition of the lower bound.
func (m Model) CCDF(k float64) float64 {
	if k <= m.Kmin {
		return 1
	}
	return math.Pow(k/m.Kmin, 1-m.Alpha)
}

// CDF is Pr(K < k) = 1 − CCDF(k).
func (m Model) CDF(k float64) float64 { return 1 - m.CCDF(k) }

// ProbMeetDeadline is Eq. 3: the probability that a fresh execution
// completes within timeToDeadline, 1 − P(TTD). The scheduler prunes edges
// whose value falls below the application bound.
func (m Model) ProbMeetDeadline(timeToDeadline float64) float64 {
	if timeToDeadline <= 0 {
		return 0
	}
	return 1 - m.CCDF(timeToDeadline)
}

// ProbWindow is Eq. 2: the probability that the execution time lands in the
// open window (elapsed, timeToDeadline) — i.e. the task is still going to
// finish, and before its deadline — written exactly as the paper does:
// 1 − (P(TTD) + (1 − P(t))). Algebraically this is P(t) − P(TTD); the value
// is clamped to [0,1] to absorb the degenerate case elapsed ≥ TTD.
func (m Model) ProbWindow(elapsed, timeToDeadline float64) float64 {
	if timeToDeadline <= elapsed {
		return 0
	}
	p := 1 - (m.CCDF(timeToDeadline) + (1 - m.CCDF(elapsed)))
	return math.Min(math.Max(p, 0), 1)
}

// Quantile inverts the CDF: Quantile(p) is the smallest k with CDF(k) ≥ p.
// p must lie in [0,1); p=0 returns Kmin.
func (m Model) Quantile(p float64) float64 {
	if p <= 0 {
		return m.Kmin
	}
	if p >= 1 {
		return math.Inf(1)
	}
	return m.Kmin * math.Pow(1-p, -1/(m.Alpha-1))
}

// Sample draws one value by inverse-transform sampling.
func (m Model) Sample(rng *rand.Rand) float64 {
	// rng.Float64 ∈ [0,1); use 1−u ∈ (0,1] so the pow never sees 0.
	u := 1 - rng.Float64()
	return m.Kmin * math.Pow(u, -1/(m.Alpha-1))
}

// Mean is the distribution mean k_min(α−1)/(α−2) for α > 2 and +Inf
// otherwise (heavy tails with α ≤ 2 have no finite mean — the formal reason
// crowdsourcing completion times are so hard to bound, §IV.B).
func (m Model) Mean() float64 {
	if m.Alpha <= 2 {
		return math.Inf(1)
	}
	return m.Kmin * (m.Alpha - 1) / (m.Alpha - 2)
}

// Median is Quantile(0.5), the "typical value" the paper says completion
// times cluster around.
func (m Model) Median() float64 { return m.Quantile(0.5) }

// String renders the model compactly for logs.
func (m Model) String() string {
	return fmt.Sprintf("powerlaw(α=%.3f, kmin=%.3f, n=%d)", m.Alpha, m.Kmin, m.N)
}
