package clock

import (
	"sync"
	"testing"
	"time"
)

func TestSystemNowMovesForward(t *testing.T) {
	var c System
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("system clock went backwards: %v then %v", a, b)
	}
}

func TestVirtualStartsAtGivenInstant(t *testing.T) {
	v := NewVirtual(Epoch)
	if got := v.Now(); !got.Equal(Epoch) {
		t.Fatalf("Now() = %v, want %v", got, Epoch)
	}
}

func TestVirtualZeroValueUsable(t *testing.T) {
	var v Virtual
	if !v.Now().IsZero() {
		t.Fatalf("zero-value Virtual should start at zero time, got %v", v.Now())
	}
	v.Advance(time.Second)
	if got := v.Now().Sub(time.Time{}); got != time.Second {
		t.Fatalf("after Advance(1s) offset = %v, want 1s", got)
	}
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual(Epoch)
	got := v.Advance(90 * time.Second)
	want := Epoch.Add(90 * time.Second)
	if !got.Equal(want) {
		t.Fatalf("Advance returned %v, want %v", got, want)
	}
	if !v.Now().Equal(want) {
		t.Fatalf("Now() = %v, want %v", v.Now(), want)
	}
}

func TestVirtualAdvanceIgnoresNegative(t *testing.T) {
	v := NewVirtual(Epoch)
	v.Advance(-time.Hour)
	if !v.Now().Equal(Epoch) {
		t.Fatalf("negative Advance moved the clock to %v", v.Now())
	}
	v.Advance(0)
	if !v.Now().Equal(Epoch) {
		t.Fatalf("zero Advance moved the clock to %v", v.Now())
	}
}

func TestVirtualSet(t *testing.T) {
	v := NewVirtual(Epoch)
	later := Epoch.Add(time.Minute)
	if !v.Set(later) {
		t.Fatal("Set(later) rejected")
	}
	if !v.Now().Equal(later) {
		t.Fatalf("Now() = %v, want %v", v.Now(), later)
	}
	if v.Set(Epoch) {
		t.Fatal("Set into the past must be rejected")
	}
	if !v.Now().Equal(later) {
		t.Fatalf("rejected Set still moved the clock to %v", v.Now())
	}
	// Setting to the exact current instant is allowed (idempotent).
	if !v.Set(later) {
		t.Fatal("Set to the current instant should succeed")
	}
}

func TestVirtualConcurrentAdvance(t *testing.T) {
	v := NewVirtual(Epoch)
	const (
		goroutines = 8
		steps      = 1000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < steps; i++ {
				v.Advance(time.Millisecond)
				_ = v.Now()
			}
		}()
	}
	wg.Wait()
	want := Epoch.Add(goroutines * steps * time.Millisecond)
	if !v.Now().Equal(want) {
		t.Fatalf("after concurrent advances Now() = %v, want %v", v.Now(), want)
	}
}

func TestClockInterfaceSatisfied(t *testing.T) {
	var _ Clock = System{}
	var _ Clock = (*Virtual)(nil)
	var _ Sleeper = System{}
	var _ Sleeper = (*Virtual)(nil)
}

func TestVirtualSleepAdvancesWithoutBlocking(t *testing.T) {
	v := NewVirtual(Epoch)
	v.Sleep(2 * time.Hour) // must return immediately
	if want := Epoch.Add(2 * time.Hour); !v.Now().Equal(want) {
		t.Fatalf("after Sleep(2h) Now() = %v, want %v", v.Now(), want)
	}
	v.Sleep(-time.Hour)
	if want := Epoch.Add(2 * time.Hour); !v.Now().Equal(want) {
		t.Fatalf("negative Sleep moved the clock to %v", v.Now())
	}
}

func TestSystemSleepBlocks(t *testing.T) {
	var c System
	before := c.Now()
	c.Sleep(10 * time.Millisecond)
	if elapsed := c.Now().Sub(before); elapsed < 10*time.Millisecond {
		t.Fatalf("Sleep(10ms) returned after %v", elapsed)
	}
}
