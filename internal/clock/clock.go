// Package clock abstracts time so that every REACT component can run either
// under real wall-clock time (the deployed middleware) or under a virtual
// clock driven by the discrete-event simulator. Components take a
// clock.Clock and never call time.Now directly; that single rule is what
// makes the paper's experiments deterministic and fast to regenerate.
package clock

import (
	"sync"
	"time"
)

// Clock supplies the current time. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now reports the current instant on this clock.
	Now() time.Time
}

// Sleeper is a Clock that can also block the caller for a duration.
// Wall-clock drivers (internal/loadgen) pace themselves through it so
// that even real-time code has a single, injectable timebase — and so
// reactlint's clockdiscipline analyzer can forbid raw time.Sleep
// everywhere else.
type Sleeper interface {
	Clock
	// Sleep pauses the caller for d on this clock's timebase.
	Sleep(d time.Duration)
}

// System is the ambient wall clock. The zero value is ready to use.
type System struct{}

// Now returns time.Now.
func (System) Now() time.Time { return time.Now() }

// Sleep blocks for d of real time.
func (System) Sleep(d time.Duration) { time.Sleep(d) }

// Virtual is a manually advanced clock. It only moves when Advance or Set is
// called, which the simulation engine does as it pops events. The zero value
// starts at the zero time; NewVirtual starts at a chosen epoch.
type Virtual struct {
	mu  sync.RWMutex
	now time.Time
}

// Epoch is the conventional start instant for simulations. Using a fixed,
// non-zero epoch keeps durations positive and makes logs comparable across
// runs.
var Epoch = time.Date(2013, time.May, 20, 0, 0, 0, 0, time.UTC)

// NewVirtual returns a virtual clock positioned at start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now reports the virtual instant.
func (v *Virtual) Now() time.Time {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.now
}

// Advance moves the clock forward by d and returns the new instant.
// Negative d is ignored: a virtual clock never runs backwards.
func (v *Virtual) Advance(d time.Duration) time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	if d > 0 {
		v.now = v.now.Add(d)
	}
	return v.now
}

// Sleep advances the virtual clock by d without blocking: under
// simulation, "waiting" is just time moving.
func (v *Virtual) Sleep(d time.Duration) { v.Advance(d) }

// Set jumps the clock to t if t is not before the current instant.
// It reports whether the jump was applied.
func (v *Virtual) Set(t time.Time) bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t.Before(v.now) {
		return false
	}
	v.now = t
	return true
}
