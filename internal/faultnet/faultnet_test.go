package faultnet

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

// echoServer answers every line with prefix+line. Returns its address and
// a stop function.
func echoServer(t *testing.T, prefix string) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func(c net.Conn) {
				defer wg.Done()
				defer c.Close()
				sc := bufio.NewScanner(c)
				for sc.Scan() {
					fmt.Fprintf(c, "%s%s\n", prefix, sc.Text())
				}
			}(c)
		}
	}()
	t.Cleanup(func() { ln.Close(); wg.Wait() })
	return ln.Addr().String()
}

func startProxy(t *testing.T, cfg Config) *Proxy {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

// roundTrip sends one line through c and returns the reply (or error).
func roundTrip(c net.Conn, line string) (string, error) {
	c.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := fmt.Fprintf(c, "%s\n", line); err != nil {
		return "", err
	}
	r := bufio.NewReader(c)
	s, err := r.ReadString('\n')
	return strings.TrimSuffix(s, "\n"), err
}

func TestProxyForwards(t *testing.T) {
	target := echoServer(t, "echo:")
	p := startProxy(t, Config{Target: target})
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := roundTrip(c, "hello")
	if err != nil || got != "echo:hello" {
		t.Fatalf("roundTrip = %q, %v", got, err)
	}
	st := p.Stats()
	if st.Accepted != 1 || st.BytesUp == 0 || st.BytesDn == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProxyResetAllCutsLiveConnections(t *testing.T) {
	target := echoServer(t, "")
	p := startProxy(t, Config{Target: target})
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := roundTrip(c, "warm"); err != nil {
		t.Fatal(err)
	}
	if n := p.ResetAll(); n != 1 {
		t.Fatalf("ResetAll cut %d links", n)
	}
	// The cut surfaces as an error on the next exchange (possibly after
	// one buffered success).
	var rtErr error
	for i := 0; i < 5 && rtErr == nil; i++ {
		_, rtErr = roundTrip(c, "after-reset")
	}
	if rtErr == nil {
		t.Fatal("connection survived ResetAll")
	}
	if st := p.Stats(); st.Resets != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProxyPartitionRefusesAndHeals(t *testing.T) {
	target := echoServer(t, "")
	p := startProxy(t, Config{Target: target})
	p.Partition(true)
	// New connections die without ever reaching the target.
	c, err := net.Dial("tcp", p.Addr())
	if err == nil {
		if _, err2 := roundTrip(c, "into the void"); err2 == nil {
			t.Fatal("exchange succeeded through a partition")
		}
		c.Close()
	}
	p.Partition(false)
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got, err := roundTrip(c2, "healed"); err != nil || got != "healed" {
		t.Fatalf("after heal: %q, %v", got, err)
	}
	if st := p.Stats(); st.Refused == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProxyPartitionStallsInFlight(t *testing.T) {
	target := echoServer(t, "")
	p := startProxy(t, Config{Target: target})
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := roundTrip(c, "warm"); err != nil {
		t.Fatal(err)
	}
	p.Partition(true)
	// The line sent during the partition must not come back until healed.
	if _, err := fmt.Fprintf(c, "stalled\n"); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 64)
	if n, err := c.Read(buf); err == nil {
		t.Fatalf("read %q during partition", buf[:n])
	}
	p.Partition(false)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	r := bufio.NewReader(c)
	got, err := r.ReadString('\n')
	if err != nil || strings.TrimSuffix(got, "\n") != "stalled" {
		t.Fatalf("after heal: %q, %v", got, err)
	}
}

func TestProxySetTargetSwitchesBackend(t *testing.T) {
	a := echoServer(t, "a:")
	b := echoServer(t, "b:")
	p := startProxy(t, Config{Target: a})
	c1, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if got, _ := roundTrip(c1, "x"); got != "a:x" {
		t.Fatalf("before retarget: %q", got)
	}
	p.SetTarget(b)
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got, _ := roundTrip(c2, "x"); got != "b:x" {
		t.Fatalf("after retarget: %q", got)
	}
}

func TestProxyDropRateOneResetsEveryChunk(t *testing.T) {
	target := echoServer(t, "")
	p := startProxy(t, Config{Target: target, DropRate: 1, Seed: 7})
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := roundTrip(c, "doomed"); err == nil {
		t.Fatal("exchange survived dropRate=1")
	}
	if st := p.Stats(); st.Resets == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProxyDelaySlowsRoundTrip(t *testing.T) {
	target := echoServer(t, "")
	p := startProxy(t, Config{Target: target, Delay: 60 * time.Millisecond})
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	if _, err := roundTrip(c, "slow"); err != nil {
		t.Fatal(err)
	}
	// Two directions, each delayed ≥60ms.
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("round trip took only %v", d)
	}
}

func TestProxyCloseIdempotent(t *testing.T) {
	target := echoServer(t, "")
	p, err := New(Config{Target: target})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestProxyRequiresTarget(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("proxy started without a target")
	}
}
