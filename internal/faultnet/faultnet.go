// Package faultnet is a fault-injecting TCP proxy for exercising the wire
// layer's resilience machinery. It sits between REACT clients and a region
// server and, on command or by seeded chance, delays traffic, hard-resets
// connections (RST, not FIN — the peer sees an error, not a clean close),
// blackholes a partition, or retargets to a different backend after a
// server restart. The chaos tests in internal/wire and the `reactload
// -chaos` harness drive their failure scenarios through it; production
// code never imports this package.
//
// All randomness is seeded and all waiting goes through an injected
// clock.Sleeper, so a chaos run's fault schedule is reproducible.
package faultnet

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"

	"react/internal/clock"
)

// partitionPoll is how often an in-flight transfer re-checks whether a
// partition has been healed (or imposed). Coarse is fine: partitions in
// chaos tests last tens to hundreds of milliseconds.
const partitionPoll = 2 * time.Millisecond

// Config parameterizes a Proxy. Target is required; everything else has a
// usable zero value.
type Config struct {
	// Listen is the proxy's own address (default "127.0.0.1:0" — an
	// ephemeral port reported by Addr).
	Listen string

	// Target is the backend the proxy forwards to. Retargetable at
	// runtime with SetTarget (the server-restart scenario).
	Target string

	// Delay is added to every chunk in both directions.
	Delay time.Duration

	// DropRate in [0,1] is the per-chunk probability of hard-resetting
	// the connection instead of forwarding.
	DropRate float64

	// Seed drives the drop-rate dice.
	Seed int64

	// Clock is the timebase for delays and partition polling (default
	// the system clock; tests may slow or virtualize it).
	Clock clock.Sleeper
}

// Stats are the proxy's lifetime counters.
type Stats struct {
	Accepted int64 // connections accepted and linked to the target
	Refused  int64 // connections rejected (partitioned, or target down)
	Resets   int64 // connections hard-reset by fault injection
	BytesUp  int64 // client→server bytes forwarded
	BytesDn  int64 // server→client bytes forwarded
}

// Proxy is a running fault-injection proxy. Safe for concurrent use.
type Proxy struct {
	ln  net.Listener
	clk clock.Sleeper

	mu          sync.Mutex
	target      string
	delay       time.Duration
	dropRate    float64
	rng         *rand.Rand
	partitioned bool
	links       map[*link]struct{}
	stats       Stats
	closed      bool

	wg sync.WaitGroup
}

// link is one proxied connection pair.
type link struct {
	client net.Conn
	server net.Conn
	once   sync.Once
}

// reset tears the pair down abruptly: SetLinger(0) makes the close emit a
// TCP RST, so both peers observe a connection error rather than EOF.
func (l *link) reset() {
	l.once.Do(func() {
		if tc, ok := l.client.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		if tc, ok := l.server.(*net.TCPConn); ok {
			tc.SetLinger(0)
		}
		l.client.Close()
		l.server.Close()
	})
}

// close tears the pair down without forcing an RST.
func (l *link) close() {
	l.once.Do(func() {
		l.client.Close()
		l.server.Close()
	})
}

// New starts a proxy. Close releases it.
func New(cfg Config) (*Proxy, error) {
	if cfg.Target == "" {
		return nil, errors.New("faultnet: missing target")
	}
	if cfg.Listen == "" {
		cfg.Listen = "127.0.0.1:0"
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System{}
	}
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:       ln,
		clk:      cfg.Clock,
		target:   cfg.Target,
		delay:    cfg.Delay,
		dropRate: cfg.DropRate,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		links:    make(map[*link]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr is the address clients should dial instead of the real server.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// SetDelay changes the per-chunk forwarding delay for existing and future
// connections.
func (p *Proxy) SetDelay(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.delay = d
}

// SetDropRate changes the per-chunk reset probability (clamped to [0,1]).
func (p *Proxy) SetDropRate(r float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if r < 0 {
		r = 0
	}
	if r > 1 {
		r = 1
	}
	p.dropRate = r
}

// SetTarget points future connections at a new backend — the proxy-side
// half of a server restart. Existing links keep their old backend until
// they die (usually because the old server closed them).
func (p *Proxy) SetTarget(addr string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.target = addr
}

// Partition blackholes the proxy: existing links stall mid-transfer (no
// FIN, no RST — bytes just stop, exactly what a routing failure looks
// like) and new connections are refused. Healing the partition releases
// stalled transfers; connections refused meanwhile must redial.
func (p *Proxy) Partition(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.partitioned = on
}

// ResetAll hard-resets every live link and reports how many were cut.
func (p *Proxy) ResetAll() int {
	p.mu.Lock()
	links := make([]*link, 0, len(p.links))
	for l := range p.links {
		links = append(links, l)
	}
	p.stats.Resets += int64(len(links))
	p.mu.Unlock()
	for _, l := range links {
		l.reset()
	}
	return len(links)
}

// Stats snapshots the proxy's counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Close stops accepting, severs every link, and waits for the forwarding
// goroutines to drain. Idempotent.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	links := make([]*link, 0, len(p.links))
	for l := range p.links {
		links = append(links, l)
	}
	p.mu.Unlock()
	p.ln.Close()
	for _, l := range links {
		l.close()
	}
	p.wg.Wait()
	return nil
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		refuse := p.partitioned || p.closed
		target := p.target
		p.mu.Unlock()
		if refuse {
			p.refuse(c)
			continue
		}
		s, err := net.DialTimeout("tcp", target, 2*time.Second)
		if err != nil {
			p.refuse(c)
			continue
		}
		l := &link{client: c, server: s}
		p.addLink(l)
		p.wg.Add(2)
		go p.pipe(l, l.client, l.server, &p.stats.BytesUp)
		go p.pipe(l, l.server, l.client, &p.stats.BytesDn)
	}
}

func (p *Proxy) refuse(c net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats.Refused++
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0) // refusal reads as a reset, not a polite close
	}
	c.Close()
}

func (p *Proxy) addLink(l *link) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.links[l] = struct{}{}
	p.stats.Accepted++
}

func (p *Proxy) dropLink(l *link) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.links, l)
}

// faults samples the current fault settings for one chunk: the delay to
// impose, whether the chunk triggers a reset, and whether a partition is
// in force.
func (p *Proxy) faults() (delay time.Duration, reset, partitioned bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.dropRate > 0 && p.rng.Float64() < p.dropRate {
		p.stats.Resets++
		reset = true
	}
	return p.delay, reset, p.partitioned
}

func (p *Proxy) partitionedNow() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.partitioned
}

func (p *Proxy) countBytes(counter *int64, n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	*counter += int64(n)
}

// pipe forwards src→dst chunk by chunk, applying the proxy's fault policy
// to each chunk. It owns one direction of one link; either direction
// dying tears down the whole link.
func (p *Proxy) pipe(l *link, src, dst net.Conn, counter *int64) {
	defer p.wg.Done()
	defer p.dropLink(l)
	defer l.close()
	buf := make([]byte, 32*1024)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			delay, reset, _ := p.faults()
			if reset {
				l.reset()
				return
			}
			if delay > 0 {
				p.clk.Sleep(delay)
			}
			// A partition stalls the transfer without closing anything:
			// poll until it heals or the link is torn down under us.
			for p.partitionedNow() {
				p.clk.Sleep(partitionPoll)
			}
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
			p.countBytes(counter, n)
		}
		if err != nil {
			return
		}
	}
}
