package wire

// Chaos tests: drive the wire layer through injected network faults — the
// failure modes §I of the paper attributes to a mobile crowd (abrupt
// disconnections, dead peers, partitions) plus a full server restart —
// and assert that sequence correlation, reconnection, and the idle
// deadline actually deliver the resilience they promise.

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"react/internal/core"
	"react/internal/faultnet"
	"react/internal/journal"
	"react/internal/schedule"
)

func fastOptions() core.Options {
	return core.Options{
		BatchPoll:     5 * time.Millisecond,
		MonitorPeriod: 50 * time.Millisecond,
		Schedule:      schedule.Config{BatchBound: 1, BatchPeriod: 10 * time.Millisecond},
	}
}

func startProxy(t *testing.T, target string) *faultnet.Proxy {
	t.Helper()
	p, err := faultnet.New(faultnet.Config{Target: target, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	return p
}

func dialReconnecting(t *testing.T, addr string, seed int64) *ReconnectingClient {
	t.Helper()
	rc, err := DialReconnecting(ReconnectConfig{
		Addr:        addr,
		Seed:        seed,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    200 * time.Millisecond,
		MaxOutage:   30 * time.Second,
		CallTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	return rc
}

// TestChaosSeqCorrelationAfterTimeout is the regression test for the
// response-desync bug: a call that times out leaves its response in
// flight; when that response finally lands it must be recognized as stale
// and discarded, not consumed as the answer to the next call. Before
// sequence correlation, the late "ok" here would have been returned to
// Stats(), whose real (stats-bearing) response would then desync every
// call after it.
func TestChaosSeqCorrelationAfterTimeout(t *testing.T) {
	s := startServer(t)
	p := startProxy(t, s.Addr())
	c, err := Dial(p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	if err := c.Ping(); err != nil { // warm the link fault-free
		t.Fatal(err)
	}

	p.SetDelay(250 * time.Millisecond) // round trip ≈500ms
	c.SetCallTimeout(50 * time.Millisecond)
	if err := c.Ping(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("delayed ping error = %v, want ErrTimeout", err)
	}

	// Let the late response land and park in the response buffer.
	c.SetCallTimeout(5 * time.Second)
	p.SetDelay(0)
	time.Sleep(700 * time.Millisecond)

	// The next call must skip the stale frame and get its own answer.
	st, err := c.Stats()
	if err != nil {
		t.Fatalf("call after timed-out call: %v", err)
	}
	if st.WorkersOnline != 0 {
		t.Fatalf("stats desynced: %+v", st)
	}
	m := c.Metrics()
	if m.StaleResponses < 1 {
		t.Fatalf("stale response not detected: %+v", m)
	}
	if m.MismatchedResponses != 0 {
		t.Fatalf("spurious mismatches: %+v", m)
	}
}

// TestChaosServerRestartZeroLostTasks runs a worker and a requester
// through the proxy, restarts the server under them (new port, state
// recovered from the write-ahead journal — the reactd crash/deploy
// cycle), retargets the proxy, and requires every task from both halves
// of the run to complete with the worker's learned history intact.
// Tasks submitted just before the restart are still in flight when the
// first server stops; recovery must return them to the pool so the
// second half resolves them.
func TestChaosServerRestartZeroLostTasks(t *testing.T) {
	dataDir := t.TempDir()
	store1, err := journal.Open(journal.Options{Dir: dataDir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s1, _, err := ServeDurable("127.0.0.1:0", fastOptions(), store1)
	if err != nil {
		t.Fatal(err)
	}
	p := startProxy(t, s1.Addr())

	worker := dialReconnecting(t, p.Addr(), 1)
	if err := worker.Register("veteran", 37.98, 23.73); err != nil {
		t.Fatal(err)
	}
	requester := dialReconnecting(t, p.Addr(), 2)
	if err := requester.Watch(); err != nil {
		t.Fatal(err)
	}

	// The worker answers everything it is handed, across reconnects: the
	// stable assignment feed hides the outages.
	go func() {
		for a := range worker.Assignments() {
			worker.Complete(a.TaskID, "veteran", "ok")
		}
	}()

	runBatch := func(ids []string) {
		t.Helper()
		for _, id := range ids {
			if err := requester.Submit(testTask(id)); err != nil {
				t.Fatalf("submit %s: %v", id, err)
			}
		}
		want := make(map[string]bool, len(ids))
		for _, id := range ids {
			want[id] = true
		}
		deadline := time.After(20 * time.Second)
		for len(want) > 0 {
			select {
			case r := <-requester.Results():
				if want[r.TaskID] {
					delete(want, r.TaskID)
					requester.Feedback(r.TaskID, true)
				}
			case <-deadline:
				t.Fatalf("tasks never completed: %v", want)
			}
		}
	}

	runBatch([]string{"t1", "t2", "t3", "t4"})

	// Submit the next batch and stop the server before waiting on it: these
	// tasks are in flight — some assigned, some still pooled — when the
	// journal takes its final flush and the process "dies".
	inflight := []string{"t5", "t6", "t7", "t8"}
	for _, id := range inflight {
		if err := requester.Submit(testTask(id)); err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
	}

	// Restart: stop the server (flush-before-shutdown closes the journal),
	// recover a new one on a different port from the same data dir, and
	// retarget the proxy. No profile snapshot/restore hack: the worker's
	// history and every task come back from the write-ahead log.
	s1.Close()
	store2, err := journal.Open(journal.Options{Dir: dataDir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s2, sum, err := ServeDurable("127.0.0.1:0", fastOptions(), store2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s2.Close() })
	if sum.Workers != 1 {
		t.Fatalf("recovered %d workers, want 1", sum.Workers)
	}
	if sum.Tasks < len(inflight) {
		t.Fatalf("recovered %d tasks, want at least the in-flight batch of %d",
			sum.Tasks, len(inflight))
	}
	p.SetTarget(s2.Addr())

	// Resolve the in-flight batch: by result push when the re-established
	// watch catches it, by status query when the push was lost to the
	// restart outage.
	pending := make(map[string]bool, len(inflight))
	for _, id := range inflight {
		pending[id] = true
	}
	deadline := time.Now().Add(30 * time.Second)
	for len(pending) > 0 && time.Now().Before(deadline) {
		select {
		case r := <-requester.Results():
			delete(pending, r.TaskID)
		case <-time.After(200 * time.Millisecond):
			for id := range pending {
				st, err := requester.TaskStatus(id)
				if err != nil {
					continue
				}
				if st.State == "completed" || st.State == "expired" {
					delete(pending, id)
				}
			}
		}
	}
	if len(pending) > 0 {
		t.Fatalf("in-flight tasks lost across restart: %v", pending)
	}

	runBatch([]string{"t9", "t10", "t11", "t12"})

	if worker.Reconnects() < 1 || requester.Reconnects() < 1 {
		t.Fatalf("reconnects: worker=%d requester=%d",
			worker.Reconnects(), requester.Reconnects())
	}
	prof, ok := s2.Core().Workers().Get("veteran")
	if !ok {
		t.Fatal("profile lost across restart")
	}
	if prof.Finished() < 8 {
		t.Fatalf("history across restart: finished = %d, want >= 8", prof.Finished())
	}
	if m := requester.Metrics(); m.MismatchedResponses != 0 {
		t.Fatalf("requester mismatches: %+v", m)
	}
}

// TestChaosConnectionResetsDuringLoad injects hard resets mid-run and
// requires every submitted task to reach a terminal state, using the
// task-status query to reconcile any results lost while the requester's
// watch subscription was down.
func TestChaosConnectionResetsDuringLoad(t *testing.T) {
	s := startServer(t)
	p := startProxy(t, s.Addr())

	worker := dialReconnecting(t, p.Addr(), 3)
	if err := worker.Register("grinder", 37.98, 23.73); err != nil {
		t.Fatal(err)
	}
	requester := dialReconnecting(t, p.Addr(), 4)
	if err := requester.Watch(); err != nil {
		t.Fatal(err)
	}
	go func() {
		for a := range worker.Assignments() {
			worker.Complete(a.TaskID, "grinder", "ok")
		}
	}()

	const n = 12
	pending := make(map[string]bool, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("r%02d", i)
		if err := requester.Submit(testTask(id)); err != nil {
			t.Fatalf("submit %s: %v", id, err)
		}
		pending[id] = true
		if i == 3 || i == 7 {
			p.ResetAll() // cut every live connection mid-run
		}
	}

	// Resolve by result push when the watch is up, by status query when a
	// push was lost to an outage.
	deadline := time.Now().Add(30 * time.Second)
	for len(pending) > 0 && time.Now().Before(deadline) {
		select {
		case r := <-requester.Results():
			delete(pending, r.TaskID)
		case <-time.After(200 * time.Millisecond):
			for id := range pending {
				st, err := requester.TaskStatus(id)
				if err != nil {
					continue
				}
				if st.State == "completed" || st.State == "expired" {
					delete(pending, id)
				}
			}
		}
	}
	if len(pending) > 0 {
		t.Fatalf("unresolved tasks after resets: %v", pending)
	}
	if worker.Reconnects()+requester.Reconnects() < 1 {
		t.Fatal("resets were injected but nobody reconnected")
	}
	if m := requester.Metrics(); m.MismatchedResponses != 0 {
		t.Fatalf("requester mismatches: %+v", m)
	}
}

// TestChaosIdleDeadlineDetachesSilentWorker covers the server's read
// deadline: a worker whose connection goes silent (keepalives disabled —
// the pulled-cable case) must be detached within a bounded interval so
// its held capacity returns to the pool.
func TestChaosIdleDeadlineDetachesSilentWorker(t *testing.T) {
	s := startServer(t)
	s.SetIdleTimeout(200 * time.Millisecond)
	c := dial(t, s)
	c.SetKeepalive(-1) // silence: no pings
	if err := c.Register("sleeper", 37.98, 23.73); err != nil {
		t.Fatal(err)
	}
	// The server must notice the silence and tear the connection down,
	// which closes the assignment feed and marks the worker unavailable.
	select {
	case _, ok := <-c.Assignments():
		if ok {
			t.Fatal("unexpected assignment")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("idle connection never torn down")
	}
	prof, ok := s.Core().Workers().Get("sleeper")
	if !ok {
		t.Fatal("profile discarded on idle teardown")
	}
	if prof.Available() {
		t.Fatal("silent worker still marked available")
	}
}

// TestChaosKeepaliveSurvivesIdleDeadline is the counterpart: a healthy
// but quiet client pinging under the idle deadline must NOT be torn down.
func TestChaosKeepaliveSurvivesIdleDeadline(t *testing.T) {
	s := startServer(t)
	s.SetIdleTimeout(300 * time.Millisecond)
	c := dial(t, s)
	c.SetKeepalive(50 * time.Millisecond)
	if err := c.Register("steady", 37.98, 23.73); err != nil {
		t.Fatal(err)
	}
	time.Sleep(time.Second) // several deadline windows, zero requests
	if err := c.Ping(); err != nil {
		t.Fatalf("keepalive failed to hold the connection: %v", err)
	}
	prof, ok := s.Core().Workers().Get("steady")
	if !ok || !prof.Available() {
		t.Fatal("quiet-but-alive worker lost availability")
	}
}
