// Package wire deploys a REACT region server over TCP, standing in for the
// paper's PlanetLab deployment: requesters and workers connect from
// anywhere, speak newline-delimited JSON, and the server pushes assignments
// to registered workers and results to watching requesters. cmd/reactd
// hosts the server; cmd/reactctl and the examples use the client.
//
// Protocol: each line is one Message. Clients send requests
// (register/submit/complete/feedback/watch/watch-events/stats); the server
// answers every request with exactly one "ok" or "error" message, in order,
// and may interleave asynchronous "assignment", "result", and "event"
// pushes at any time.
package wire

import (
	"time"

	"react/internal/admission"
	"react/internal/core"
	"react/internal/event"
	"react/internal/region"
	"react/internal/taskq"
)

// Message is the single frame type of the protocol; Type selects which
// fields are meaningful.
type Message struct {
	Type string `json:"type"` // request: register|deregister|location|available|
	// submit|complete|feedback|watch|watch-events|task|stats — response:
	// ok|error — push: assignment|result|event

	// Seq correlates a response with the request that caused it: clients
	// stamp every request with a strictly increasing sequence number and
	// the server echoes it on the matching ok/error frame. This is what
	// lets a client outlive a timed-out call — the late response is
	// recognized as stale by its old Seq and discarded instead of being
	// mistaken for the answer to the next request. Zero means "not
	// stamped": servers tolerate its absence and clients accept unstamped
	// responses from legacy servers (which can only answer in order).
	// Pushes carry no Seq.
	Seq uint64 `json:"seq,omitempty"`

	// register / deregister / location / available
	Worker    string  `json:"worker,omitempty"`
	Lat       float64 `json:"lat,omitempty"`
	Lon       float64 `json:"lon,omitempty"`
	Available *bool   `json:"available,omitempty"`

	// submit
	Task *TaskPayload `json:"task,omitempty"`

	// complete / feedback
	TaskID   string `json:"task_id,omitempty"`
	Answer   string `json:"answer,omitempty"`
	Positive *bool  `json:"positive,omitempty"`

	// error; Code, when present, is a stable machine-readable class (one
	// of the Code* constants) so clients distinguish retryable failures
	// (queue full, rate limited) from permanent ones (duplicate id,
	// past deadline) without parsing the human-readable text.
	Error string `json:"error,omitempty"`
	Code  string `json:"code,omitempty"`

	// pushes and stats responses
	Assignment *AssignmentPayload   `json:"assignment,omitempty"`
	Result     *ResultPayload       `json:"result,omitempty"`
	Stats      *StatsPayload        `json:"stats,omitempty"`
	Regions    []RegionStatsPayload `json:"regions,omitempty"`
	Status     *TaskStatusPayload   `json:"status,omitempty"`
	Event      *EventPayload        `json:"event,omitempty"`

	// Admission is the submit reply's admission verdict: present on "ok"
	// (status "admitted" plus the predicted deadline-meeting probability)
	// and on admission-rejection "error" frames (status, probability,
	// floor, retry-after hint). Servers without admission enabled omit it.
	Admission *AdmissionPayload `json:"admission,omitempty"`
}

// Error codes carried in Message.Code. Stable wire vocabulary — clients
// switch on these, so renaming one is a protocol break.
const (
	// CodeDuplicateTask: the task id was already submitted (permanent —
	// retrying the same id can never succeed).
	CodeDuplicateTask = "duplicate_task"
	// CodeQueueFull: the engine's in-flight ceiling is reached
	// (retryable — capacity frees as tasks finish).
	CodeQueueFull = "queue_full"
	// CodePastDeadline: the deadline was not in the future at receipt
	// (permanent for this payload).
	CodePastDeadline = "past_deadline"
	// CodeRejectedProbability: admission predicted the deadline cannot
	// plausibly be met (permanent — the deadline only gets closer).
	CodeRejectedProbability = string(admission.StatusRejectedProbability)
	// CodeRejectedRate: admission rejected on rate or concurrency limits
	// (retryable — honor the retry-after hint).
	CodeRejectedRate = string(admission.StatusRejectedRate)
)

// AdmissionPayload is the wire form of admission.Decision.
type AdmissionPayload struct {
	// Status is "admitted", "rejected_probability", or "rejected_rate"
	// (submissions never see "shed": shedding happens after admission,
	// and surfaces as an expire event with cause "shed" on the watch
	// stream instead).
	Status string `json:"status"`
	// Probability is the predicted deadline-meeting probability at
	// submit time (0 while the server's fleet model is cold).
	Probability float64 `json:"probability,omitempty"`
	// Floor is the server's configured rejection threshold.
	Floor float64 `json:"floor,omitempty"`
	// RetryAfterMS hints when a rejected submission is worth retrying
	// (only on retryable rejections).
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

func toAdmissionPayload(d admission.Decision) *AdmissionPayload {
	return &AdmissionPayload{
		Status:       string(d.Status),
		Probability:  d.Probability,
		Floor:        d.Floor,
		RetryAfterMS: int64(d.RetryAfter / time.Millisecond),
	}
}

// EventPayload is the wire form of one lifecycle event from the engine's
// event spine, pushed after a "watch-events" subscription. Seq is the
// bus-wide publish order (strictly increasing, per-task total order);
// AtUnixMS is the engine-clock timestamp of the transition.
type EventPayload struct {
	Seq         uint64  `json:"seq"`
	Kind        string  `json:"kind"` // submit|assign|revoke|complete|expire|forget
	TaskID      string  `json:"task_id"`
	Worker      string  `json:"worker,omitempty"`
	AtUnixMS    int64   `json:"at_unix_ms"`
	Cause       string  `json:"cause,omitempty"`
	Probability float64 `json:"probability,omitempty"` // eq. 2 estimate on eq2 revokes
	Status      string  `json:"status,omitempty"`      // task state after the transition
	MetDeadline bool    `json:"met_deadline,omitempty"`
	Attempts    int     `json:"attempts,omitempty"`
}

// Terminal reports whether this event ends the task's lifecycle, which is
// how `reactctl tail -id` knows the timeline is over.
func (p EventPayload) Terminal() bool {
	switch p.Kind {
	case "complete", "expire", "forget":
		return true
	}
	return false
}

func toEventPayload(ev event.Event) *EventPayload {
	return &EventPayload{
		Seq:         ev.Seq,
		Kind:        ev.Kind.String(),
		TaskID:      ev.Task,
		Worker:      ev.Worker,
		AtUnixMS:    ev.At.UnixMilli(),
		Cause:       ev.Cause,
		Probability: ev.Prob,
		Status:      ev.Record.Status.String(),
		MetDeadline: ev.Record.MetDeadline(),
		Attempts:    ev.Record.Attempts,
	}
}

// TaskStatusPayload answers a "task" status query: the lifecycle state of
// one task. Requesters use it to reconcile after a reconnect — a result
// pushed while the watcher was disconnected is otherwise unobservable.
// State is one of "unassigned", "assigned", "completed", "expired", or
// "unknown" (never submitted here, or already garbage-collected after the
// retention window).
type TaskStatusPayload struct {
	TaskID      string `json:"task_id"`
	State       string `json:"state"`
	Worker      string `json:"worker,omitempty"`
	MetDeadline bool   `json:"met_deadline,omitempty"`
}

// RegionStatsPayload is one region's counters in a "regions" response.
type RegionStatsPayload struct {
	Region string       `json:"region"`
	Stats  StatsPayload `json:"stats"`
}

// TaskPayload is the wire form of taskq.Task; the deadline travels as a
// relative duration in milliseconds so clients need not share a clock with
// the server.
type TaskPayload struct {
	ID          string  `json:"id"`
	Lat         float64 `json:"lat"`
	Lon         float64 `json:"lon"`
	DeadlineMS  int64   `json:"deadline_ms"` // from server receipt
	Reward      float64 `json:"reward"`
	Category    string  `json:"category"`
	Description string  `json:"description"`
}

// Task materializes the payload against the server clock.
func (p TaskPayload) Task(now time.Time) taskq.Task {
	return taskq.Task{
		ID:          p.ID,
		Location:    region.Point{Lat: p.Lat, Lon: p.Lon},
		Deadline:    now.Add(time.Duration(p.DeadlineMS) * time.Millisecond),
		Reward:      p.Reward,
		Category:    p.Category,
		Description: p.Description,
	}
}

// AssignmentPayload is the wire form of core.Assignment.
type AssignmentPayload struct {
	TaskID      string  `json:"task_id"`
	WorkerID    string  `json:"worker_id"`
	Category    string  `json:"category"`
	Description string  `json:"description"`
	Lat         float64 `json:"lat"`
	Lon         float64 `json:"lon"`
	DeadlineMS  int64   `json:"deadline_ms"` // remaining at push time
	Reward      float64 `json:"reward"`
}

func toAssignmentPayload(a core.Assignment, now time.Time) *AssignmentPayload {
	return &AssignmentPayload{
		TaskID:      a.TaskID,
		WorkerID:    a.WorkerID,
		Category:    a.Category,
		Description: a.Description,
		Lat:         a.Location.Lat,
		Lon:         a.Location.Lon,
		DeadlineMS:  int64(time.Until(a.Deadline) / time.Millisecond),
		Reward:      a.Reward,
	}
}

// ResultPayload is the wire form of core.Result.
type ResultPayload struct {
	TaskID      string `json:"task_id"`
	WorkerID    string `json:"worker_id,omitempty"`
	Answer      string `json:"answer,omitempty"`
	MetDeadline bool   `json:"met_deadline"`
	Expired     bool   `json:"expired"`
}

func toResultPayload(r core.Result) *ResultPayload {
	return &ResultPayload{
		TaskID:      r.TaskID,
		WorkerID:    r.WorkerID,
		Answer:      r.Answer,
		MetDeadline: r.MetDeadline,
		Expired:     r.Expired,
	}
}

// StatsPayload is the wire form of core.Stats.
type StatsPayload struct {
	Received      int64 `json:"received"`
	Assigned      int64 `json:"assigned"`
	Completed     int64 `json:"completed"`
	OnTime        int64 `json:"on_time"`
	Expired       int64 `json:"expired"`
	Reassigned    int64 `json:"reassigned"`
	Batches       int64 `json:"batches"`
	WorkersOnline int   `json:"workers_online"`
	WorkersKnown  int   `json:"workers_known"`
}

func toStatsPayload(s core.Stats) *StatsPayload {
	return &StatsPayload{
		Received:      s.Received,
		Assigned:      s.Assigned,
		Completed:     s.Completed,
		OnTime:        s.OnTime,
		Expired:       s.Expired,
		Reassigned:    s.Reassigned,
		Batches:       s.Batches,
		WorkersOnline: s.WorkersOnline,
		WorkersKnown:  s.WorkersKnown,
	}
}
