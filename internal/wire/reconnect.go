package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ReconnectConfig parameterizes a ReconnectingClient. Zero fields take
// defaults.
type ReconnectConfig struct {
	Addr string // region server address (required)

	// Seed drives the backoff jitter. Reconnection timing is the only
	// randomness in the wire layer, and like every other draw in this
	// module it flows from an explicit seed — a chaos run reconnects on
	// the same schedule every time.
	Seed int64

	BaseDelay time.Duration // first retry delay (default 50ms)
	MaxDelay  time.Duration // backoff ceiling (default 5s)

	// MaxOutage bounds one continuous reconnection effort: if no session
	// can be established for this long, the client gives up and closes
	// itself, failing pending and future calls. Zero means the default
	// (2 minutes); negative retries forever.
	MaxOutage time.Duration

	CallTimeout time.Duration // per-call response timeout (default DefaultCallTimeout)
	Keepalive   time.Duration // idle ping interval (default DefaultKeepalive; negative disables)

	// OnReconnect, if set, is called after every re-established session
	// (not the first) with the number of failed dials during the outage.
	OnReconnect func(failedAttempts int)

	Logf func(format string, args ...any) // optional reconnect diagnostics
}

func (c ReconnectConfig) normalize() ReconnectConfig {
	if c.BaseDelay <= 0 {
		c.BaseDelay = 50 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 5 * time.Second
	}
	if c.MaxOutage == 0 {
		c.MaxOutage = 2 * time.Minute
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = DefaultCallTimeout
	}
	if c.Keepalive == 0 {
		c.Keepalive = DefaultKeepalive
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// ReconnectingClient is a Client that survives connection loss: when the
// underlying connection dies it redials with exponential backoff and
// seeded jitter, re-registers its worker (the server's reconnect path
// keeps the learned profile), restores availability, re-subscribes the
// watch, and resumes the assignment and result feeds on stable channels
// that never close until Close. Calls issued during an outage block until
// the session is back (or MaxOutage expires); calls that failed on a dying
// connection are retried on the next one. Server-rejected requests and
// call timeouts are NOT retried — only connection faults are.
type ReconnectingClient struct {
	cfg ReconnectConfig

	mu         sync.Mutex
	cond       *sync.Cond // broadcast on publish/unpublish/close
	cur        *Client    // nil while disconnected
	epoch      uint64     // bumps on every established session
	down       bool       // terminal: no further sessions
	err        error      // terminal failure (nil after plain Close)
	rng        *rand.Rand // backoff jitter; guarded by mu
	worker     string     // desired session state, restored on reconnect:
	lat, lon   float64
	registered bool
	available  *bool
	watching   bool
	regOn      *Client // connection restore() already registered worker on
	regWorker  string
	agg        ClientMetrics // counters folded in from finished sessions

	// The stable feeds are accounted queues, not plain channels: the
	// session loop must never block handing a push to a slow consumer,
	// because the same loop is what re-establishes the connection — a
	// blocked delivery would stall reconnection behind the consumer.
	assignments *pushQueue[AssignmentPayload]
	results     *pushQueue[ResultPayload]

	reconnects atomic.Int64
	closed     chan struct{}
	closeOnce  sync.Once
	wg         sync.WaitGroup
}

// DialReconnecting starts a reconnecting client session. It returns
// immediately; the first connection is established in the background, and
// calls block until it is up. If the address stays unreachable past
// MaxOutage the client closes itself and calls fail with the dial error.
func DialReconnecting(cfg ReconnectConfig) (*ReconnectingClient, error) {
	if cfg.Addr == "" {
		return nil, errors.New("wire: reconnect: missing address")
	}
	cfg = cfg.normalize()
	rc := &ReconnectingClient{
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		closed: make(chan struct{}),
	}
	rc.assignments = newPushQueue[AssignmentPayload](DefaultMaxBacklog, rc.overflow)
	rc.results = newPushQueue[ResultPayload](DefaultMaxBacklog, rc.overflow)
	rc.cond = sync.NewCond(&rc.mu)
	rc.wg.Add(1)
	go rc.run()
	return rc, nil
}

// Close tears down the current connection and stops reconnecting. The
// Assignments and Results channels close once the session loop drains.
func (rc *ReconnectingClient) Close() error {
	rc.fail(nil)
	rc.wg.Wait()
	return nil
}

// fail terminates the client: err is reported by subsequent calls (nil
// for a plain Close).
func (rc *ReconnectingClient) fail(err error) {
	rc.closeOnce.Do(func() {
		rc.mu.Lock()
		rc.down = true
		rc.err = err
		cur := rc.cur
		rc.mu.Unlock()
		close(rc.closed)
		if cur != nil {
			cur.Close()
		}
		rc.cond.Broadcast()
	})
}

// overflow is the stable-queue overflow hook: a consumer this far behind
// is treated as gone, exactly like Client's policy.
func (rc *ReconnectingClient) overflow() {
	rc.fail(errors.New("wire: reconnect: push backlog overflow"))
}

// Reconnects reports how many times a lost session has been re-established.
func (rc *ReconnectingClient) Reconnects() int64 { return rc.reconnects.Load() }

// Metrics aggregates wire-level counters across every session this client
// has had, including the live one.
func (rc *ReconnectingClient) Metrics() ClientMetrics {
	rc.mu.Lock()
	m := rc.agg
	if rc.cur != nil {
		m = foldMetrics(m, rc.cur.Metrics())
	}
	rc.mu.Unlock()
	// Backlog accounting lives in the stable queues; the per-connection
	// queues drain into them immediately, so their depths are transient.
	var aOver, rOver bool
	m.AssignmentBacklog, m.AssignmentHighWater, _, aOver = rc.assignments.depthStats()
	m.ResultBacklog, m.ResultHighWater, _, rOver = rc.results.depthStats()
	m.OverflowClosed = m.OverflowClosed || aOver || rOver
	return m
}

func foldMetrics(a, b ClientMetrics) ClientMetrics {
	a.StaleResponses += b.StaleResponses
	a.MismatchedResponses += b.MismatchedResponses
	a.DroppedResponses += b.DroppedResponses
	a.AssignmentBacklog = b.AssignmentBacklog
	a.ResultBacklog = b.ResultBacklog
	if b.AssignmentHighWater > a.AssignmentHighWater {
		a.AssignmentHighWater = b.AssignmentHighWater
	}
	if b.ResultHighWater > a.ResultHighWater {
		a.ResultHighWater = b.ResultHighWater
	}
	a.OverflowClosed = a.OverflowClosed || b.OverflowClosed
	return a
}

// run owns the connection lifecycle: connect, restore session state, pump
// pushes until the connection dies, repeat.
func (rc *ReconnectingClient) run() {
	defer rc.wg.Done()
	defer rc.assignments.close()
	defer rc.results.close()
	first := true
	for {
		cl, attempts, err := rc.connect()
		if err != nil {
			rc.fail(err)
			return
		}
		if cl == nil {
			return // closed during backoff
		}
		if !first {
			rc.reconnects.Add(1)
			if rc.cfg.OnReconnect != nil {
				rc.cfg.OnReconnect(attempts)
			}
		}
		first = false
		rc.publish(cl)
		rc.pump(cl) // returns when the connection's feeds close
		rc.unpublish(cl)
		cl.Close()
		select {
		case <-rc.closed:
			return
		default:
		}
	}
}

// connect dials and restores session state, backing off between attempts.
// A nil client with nil error means the client was closed.
func (rc *ReconnectingClient) connect() (*Client, int, error) {
	start := time.Now()
	for attempt := 0; ; attempt++ {
		select {
		case <-rc.closed:
			return nil, attempt, nil
		default:
		}
		cl, err := Dial(rc.cfg.Addr)
		if err == nil {
			cl.SetCallTimeout(rc.cfg.CallTimeout)
			cl.SetKeepalive(rc.cfg.Keepalive)
			if err = rc.restore(cl); err == nil {
				return cl, attempt, nil
			}
			cl.Close()
		}
		rc.cfg.Logf("wire: reconnect %s attempt %d: %v", rc.cfg.Addr, attempt+1, err)
		if rc.cfg.MaxOutage >= 0 && time.Since(start) > rc.cfg.MaxOutage {
			return nil, attempt, fmt.Errorf("wire: %s unreachable for %v: %w", rc.cfg.Addr, rc.cfg.MaxOutage, err)
		}
		if !rc.sleep(rc.backoff(attempt)) {
			return nil, attempt, nil
		}
	}
}

// restore replays the desired session state onto a fresh connection: the
// reconnect handshake. Register rides the server's reconnect path (the
// profile and its learned history survive a detach), availability is
// reapplied, and the watch subscription is renewed. A failure here — e.g.
// the server still considers the old connection live because its idle
// deadline has not fired yet — aborts the attempt; the next backoff round
// retries after the server has had time to notice.
func (rc *ReconnectingClient) restore(cl *Client) error {
	rc.mu.Lock()
	worker, lat, lon, registered := rc.worker, rc.lat, rc.lon, rc.registered
	available := rc.available
	watching := rc.watching
	rc.mu.Unlock()
	if registered {
		if err := cl.Register(worker, lat, lon); err != nil {
			return err
		}
		// Remember that this connection carries the registration: a
		// Register call racing with this replay must not re-register on
		// the same connection (the server rejects a second live session).
		rc.mu.Lock()
		rc.regOn, rc.regWorker = cl, worker
		rc.mu.Unlock()
		if available != nil {
			if err := cl.SetAvailable(*available); err != nil {
				return err
			}
		}
	}
	if watching {
		if err := cl.Watch(); err != nil {
			return err
		}
	}
	return nil
}

// backoff returns the pre-jitter-scaled delay before retry attempt n:
// exponential from BaseDelay to MaxDelay with ±50% multiplicative jitter,
// so a crowd of workers dropped by the same fault does not redial in
// phase.
func (rc *ReconnectingClient) backoff(attempt int) time.Duration {
	if attempt > 30 {
		attempt = 30 // avoid shift overflow; MaxDelay caps long before this
	}
	d := rc.cfg.BaseDelay << uint(attempt)
	if d <= 0 || d > rc.cfg.MaxDelay {
		d = rc.cfg.MaxDelay
	}
	rc.mu.Lock()
	jitter := 0.5 + rc.rng.Float64() // [0.5, 1.5)
	rc.mu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// sleep waits d, interruptible by Close; reports whether it slept fully.
func (rc *ReconnectingClient) sleep(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-rc.closed:
		return false
	case <-t.C:
		return true
	}
}

func (rc *ReconnectingClient) publish(cl *Client) {
	rc.mu.Lock()
	rc.cur = cl
	rc.epoch++
	rc.mu.Unlock()
	rc.cond.Broadcast()
}

func (rc *ReconnectingClient) unpublish(cl *Client) {
	rc.mu.Lock()
	if rc.cur == cl {
		rc.agg = foldMetrics(rc.agg, cl.Metrics())
		rc.cur = nil
	}
	rc.mu.Unlock()
	rc.cond.Broadcast()
}

// pump forwards one connection's pushes into the stable queues until the
// connection dies (its feed channels close). Pushes never block, so a
// slow consumer cannot stall the reconnect loop behind this call.
func (rc *ReconnectingClient) pump(cl *Client) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for a := range cl.Assignments() {
			rc.assignments.push(a)
		}
	}()
	go func() {
		defer wg.Done()
		for r := range cl.Results() {
			rc.results.push(r)
		}
	}()
	wg.Wait()
}

// conn returns a live connection with epoch > after, blocking through
// outages; it fails once the client is closed (returning the terminal
// error, or ErrClosed after a plain Close).
func (rc *ReconnectingClient) conn(after uint64) (*Client, uint64, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for {
		if rc.down {
			if rc.err != nil {
				return nil, 0, rc.err
			}
			return nil, 0, ErrClosed
		}
		if rc.cur != nil && rc.epoch > after {
			return rc.cur, rc.epoch, nil
		}
		rc.cond.Wait()
	}
}

// do runs one call, retrying on a fresh connection when the current one
// fails at the transport level. Server rejections and call timeouts are
// returned to the caller: the request was (or may have been) delivered,
// so blind replay is the caller's decision, not the transport's.
func (rc *ReconnectingClient) do(f func(cl *Client) error) error {
	var after uint64
	for {
		cl, epoch, err := rc.conn(after)
		if err != nil {
			return err
		}
		err = f(cl)
		if err == nil {
			return nil
		}
		var se *ServerError
		if errors.As(err, &se) || errors.Is(err, ErrTimeout) {
			return err
		}
		// Transport fault: make sure this session is torn down, then wait
		// for its replacement.
		cl.Close()
		after = epoch
	}
}

// Register announces the worker; after any reconnect the registration is
// replayed automatically, so the worker's assignment feed resumes without
// caller involvement.
func (rc *ReconnectingClient) Register(workerID string, lat, lon float64) error {
	rc.mu.Lock()
	rc.worker, rc.lat, rc.lon, rc.registered = workerID, lat, lon, true
	rc.mu.Unlock()
	err := rc.do(func(cl *Client) error {
		rc.mu.Lock()
		replayed := rc.regOn == cl && rc.regWorker == workerID
		rc.mu.Unlock()
		if replayed {
			return nil // restore() already registered on this connection
		}
		if err := cl.Register(workerID, lat, lon); err != nil {
			return err
		}
		rc.mu.Lock()
		rc.regOn, rc.regWorker = cl, workerID
		rc.mu.Unlock()
		return nil
	})
	if err != nil {
		var se *ServerError
		if errors.As(err, &se) {
			// The server rejected the registration; do not replay it.
			rc.mu.Lock()
			rc.registered = false
			rc.mu.Unlock()
		}
	}
	return err
}

// Deregister removes the worker entirely and stops replaying registration.
func (rc *ReconnectingClient) Deregister() error {
	err := rc.do(func(cl *Client) error { return cl.Deregister() })
	if err == nil {
		rc.mu.Lock()
		rc.registered = false
		rc.available = nil
		rc.regOn, rc.regWorker = nil, ""
		rc.mu.Unlock()
	}
	return err
}

// SetLocation updates the worker's location, remembered for reconnects.
func (rc *ReconnectingClient) SetLocation(lat, lon float64) error {
	err := rc.do(func(cl *Client) error { return cl.SetLocation(lat, lon) })
	if err == nil {
		rc.mu.Lock()
		rc.lat, rc.lon = lat, lon
		rc.mu.Unlock()
	}
	return err
}

// SetAvailable toggles assignment willingness, remembered for reconnects.
func (rc *ReconnectingClient) SetAvailable(v bool) error {
	err := rc.do(func(cl *Client) error { return cl.SetAvailable(v) })
	if err == nil {
		rc.mu.Lock()
		rc.available = &v
		rc.mu.Unlock()
	}
	return err
}

// Watch subscribes to result pushes; the subscription is renewed on every
// reconnect. Results pushed during an outage are not replayed — use
// TaskStatus to reconcile outstanding tasks after gaps.
func (rc *ReconnectingClient) Watch() error {
	err := rc.do(func(cl *Client) error { return cl.Watch() })
	if err == nil {
		rc.mu.Lock()
		rc.watching = true
		rc.mu.Unlock()
	}
	return err
}

// submitRetries bounds how many times Submit re-presents a task after a
// retryable rejection before surfacing the error to the caller.
const submitRetries = 4

// Submit places a task. During an outage it blocks until the session is
// back. A call timeout is returned as-is: the task may or may not have
// been accepted, and a resubmission of the same id is answered with a
// duplicate-task error, so replay is safe to attempt.
//
// Retryable rejections (queue full, admission rate limit) are retried up
// to submitRetries times, honoring the server's retry-after hint with
// seeded jitter so a crowd of rejected requesters does not re-present in
// phase. Permanent rejections (duplicate id, past deadline, probability
// floor) are returned immediately — the deadline only gets closer, so
// waiting cannot help.
func (rc *ReconnectingClient) Submit(t TaskPayload) error {
	for attempt := 0; ; attempt++ {
		err := rc.do(func(cl *Client) error { return cl.Submit(t) })
		var se *ServerError
		if err == nil || !errors.As(err, &se) || !se.Retryable() || attempt >= submitRetries {
			return err
		}
		wait := se.RetryAfter()
		if wait > 0 {
			rc.mu.Lock()
			jitter := 0.5 + rc.rng.Float64() // [0.5, 1.5)
			rc.mu.Unlock()
			wait = time.Duration(float64(wait) * jitter)
			if wait > rc.cfg.MaxDelay {
				wait = rc.cfg.MaxDelay
			}
		} else {
			wait = rc.backoff(attempt)
		}
		if !rc.sleep(wait) {
			return err
		}
	}
}

// Complete reports a worker's answer for a held task.
func (rc *ReconnectingClient) Complete(taskID, workerID, answer string) error {
	return rc.do(func(cl *Client) error { return cl.Complete(taskID, workerID, answer) })
}

// Feedback records the requester's verdict for a completed task.
func (rc *ReconnectingClient) Feedback(taskID string, positive bool) error {
	return rc.do(func(cl *Client) error { return cl.Feedback(taskID, positive) })
}

// Ping round-trips a keepalive frame on the current session.
func (rc *ReconnectingClient) Ping() error {
	return rc.do(func(cl *Client) error { return cl.Ping() })
}

// TaskStatus queries a task's lifecycle state.
func (rc *ReconnectingClient) TaskStatus(taskID string) (TaskStatusPayload, error) {
	var st TaskStatusPayload
	err := rc.do(func(cl *Client) error {
		var err error
		st, err = cl.TaskStatus(taskID)
		return err
	})
	return st, err
}

// Stats fetches the server counters.
func (rc *ReconnectingClient) Stats() (StatsPayload, error) {
	var st StatsPayload
	err := rc.do(func(cl *Client) error {
		var err error
		st, err = cl.Stats()
		return err
	})
	return st, err
}

// Regions fetches per-region counters.
func (rc *ReconnectingClient) Regions() ([]RegionStatsPayload, error) {
	var rs []RegionStatsPayload
	err := rc.do(func(cl *Client) error {
		var err error
		rs, err = cl.Regions()
		return err
	})
	return rs, err
}

// Assignments is the worker's assignment stream. Unlike Client, the
// channel survives reconnects and closes only on Close (or terminal
// failure).
func (rc *ReconnectingClient) Assignments() <-chan AssignmentPayload { return rc.assignments.out }

// Results is the requester's result stream after Watch; it survives
// reconnects and closes only on Close (or terminal failure).
func (rc *ReconnectingClient) Results() <-chan ResultPayload { return rc.results.out }
