package wire

import (
	"react/internal/core"
	"react/internal/journal"
)

// ServeDurable is Serve with crash recovery: the journal store's
// recovered state is bulk-loaded into the fresh region server before it
// starts, every subsequent mutation is write-ahead journaled, and Close
// flushes the journal after the last connection drains. The returned
// summary says what was recovered, for startup logs.
//
// The store must come straight from journal.Open — its recovered state is
// consumed here. On error the store is left open; the caller owns closing
// it.
func ServeDurable(addr string, opts core.Options, store *journal.Store) (*Server, journal.Summary, error) {
	var relay ResultRelay
	userHook := opts.OnResult
	opts.OnResult = func(r core.Result) {
		if userHook != nil {
			userHook(r)
		}
		relay.Publish(r)
	}
	cs := core.New(opts)
	sum, err := cs.EnablePersistence(store)
	if err != nil {
		return nil, sum, err
	}
	cs.Start()
	s, err := ServeBackend(addr, cs, &relay)
	if err != nil {
		cs.Stop() // closes the journal store too
		return nil, sum, err
	}
	s.core = cs
	return s, sum, nil
}
