package wire

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"react/internal/clock"
	"react/internal/core"
)

// memConn is a net.Conn sink for coalescer tests: Write appends to an
// in-memory buffer so a test can compare the exact byte stream a peer
// would have observed.
type memConn struct {
	mu     sync.Mutex
	buf    bytes.Buffer
	writes int
	closed bool
}

func (c *memConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, errors.New("memConn: closed")
	}
	c.writes++
	return c.buf.Write(p)
}

func (c *memConn) snapshot() (string, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.buf.String(), c.writes
}

func (c *memConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

func (c *memConn) Read([]byte) (int, error)           { return 0, errors.New("memConn: not readable") }
func (c *memConn) LocalAddr() net.Addr                { return nil }
func (c *memConn) RemoteAddr() net.Addr               { return nil }
func (c *memConn) SetDeadline(time.Time) error        { return nil }
func (c *memConn) SetReadDeadline(t time.Time) error  { return nil }
func (c *memConn) SetWriteDeadline(t time.Time) error { return nil }

// TestConnWriterCloseFlushesInOrder is the no-frame-left-behind gate:
// frames enqueued through both the async and inline paths must reach the
// peer exactly once, in enqueue order, with close() draining whatever the
// flusher had not written yet — the byte stream equals what the
// pre-coalescing synchronous writer produced.
func TestConnWriterCloseFlushesInOrder(t *testing.T) {
	nc := &memConn{}
	w := newConnWriter(nc, writerConfig{})
	var want bytes.Buffer
	for i := 0; i < 200; i++ {
		frame := []byte(fmt.Sprintf(`{"type":"event","seq":%d}`+"\n", i))
		want.Write(frame)
		if err := w.enqueue(frame, i%3 == 0); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	w.close()
	got, writes := nc.snapshot()
	if got != want.String() {
		t.Fatalf("byte stream diverged from synchronous order:\n got %d bytes\nwant %d bytes", len(got), want.Len())
	}
	if writes >= 200 {
		t.Errorf("no coalescing happened: %d writes for 200 frames", writes)
	}
	if err := w.enqueue([]byte("late\n"), false); !errors.Is(err, ErrClosed) {
		t.Errorf("enqueue after close = %v, want ErrClosed", err)
	}
}

// TestConnWriterSizeTrigger pins the FlushBytes boundary: below it the
// linger holds the frames back, reaching it flushes immediately — one
// write carrying both frames.
func TestConnWriterSizeTrigger(t *testing.T) {
	f1 := []byte("frame-one-frame-one\n")
	f2 := []byte("frame-two-frame-two\n")
	nc := &memConn{}
	flushed := make(chan int, 8)
	w := newConnWriter(nc, writerConfig{
		FlushBytes: len(f1) + len(f2),
		Interval:   time.Hour,
		Clock:      clock.NewVirtual(time.Unix(0, 0)),
		OnFlush:    func(frames, bytes int, elapsed time.Duration) { flushed <- frames },
	})
	defer w.close()
	if err := w.enqueue(f1, false); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-flushed:
		t.Fatalf("flushed %d frames below the size threshold with an hour of linger left", n)
	case <-time.After(30 * time.Millisecond):
	}
	if err := w.enqueue(f2, false); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-flushed:
		if n != 2 {
			t.Fatalf("size-triggered flush carried %d frames, want 2", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("size threshold reached but nothing flushed")
	}
	if got, writes := nc.snapshot(); got != string(f1)+string(f2) || writes != 1 {
		t.Fatalf("want one write of both frames, got %d writes of %q", writes, got)
	}
}

// TestConnWriterIntervalTrigger pins the linger boundary on a virtual
// clock: while the oldest pending frame is younger than Interval nothing
// is written, and the first enqueue at or past the boundary flushes the
// whole batch together.
func TestConnWriterIntervalTrigger(t *testing.T) {
	vc := clock.NewVirtual(time.Unix(0, 0))
	nc := &memConn{}
	flushed := make(chan int, 8)
	w := newConnWriter(nc, writerConfig{
		FlushBytes: 1 << 20,
		Interval:   100 * time.Millisecond,
		Clock:      vc,
		OnFlush:    func(frames, bytes int, elapsed time.Duration) { flushed <- frames },
	})
	defer w.close()
	if err := w.enqueue([]byte("a\n"), false); err != nil {
		t.Fatal(err)
	}
	vc.Advance(99 * time.Millisecond) // just inside the linger window
	if err := w.enqueue([]byte("b\n"), false); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-flushed:
		t.Fatalf("flushed %d frames before the interval elapsed on the virtual clock", n)
	case <-time.After(30 * time.Millisecond):
	}
	vc.Advance(1 * time.Millisecond) // boundary: the oldest frame is now exactly Interval old
	if err := w.enqueue([]byte("c\n"), false); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-flushed:
		if n != 3 {
			t.Fatalf("interval-triggered flush carried %d frames, want all 3", n)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("interval elapsed but nothing flushed")
	}
	if got, _ := nc.snapshot(); got != "a\nb\nc\n" {
		t.Fatalf("stream = %q, want frames in enqueue order", got)
	}
}

// TestConnWriterOverflow wedges the peer (nobody reads the pipe) and
// checks the MaxPending backstop: the enqueue that crosses the bound gets
// the overflow error, the socket is closed to wake the read side, and the
// error is sticky.
func TestConnWriterOverflow(t *testing.T) {
	ours, theirs := net.Pipe() // unread: the first flush write blocks forever
	defer theirs.Close()
	w := newConnWriter(ours, writerConfig{MaxPending: 256, WriteTimeout: time.Hour})
	defer w.close()
	frame := bytes.Repeat([]byte{'x'}, 64)
	var overflowed error
	for i := 0; i < 64 && overflowed == nil; i++ {
		overflowed = w.enqueue(frame, false)
	}
	if !errors.Is(overflowed, errWriterOverflow) {
		t.Fatalf("backlog never overflowed: %v", overflowed)
	}
	if err := w.enqueue(frame, false); !errors.Is(err, errWriterOverflow) {
		t.Errorf("overflow error not sticky: %v", err)
	}
	// The socket was closed, so the peer's (blocked) read side wakes.
	theirs.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4096)
	for {
		if _, err := theirs.Read(buf); err != nil {
			break // closed pipe surfaces here; a deadline error would fail below
		}
	}
	if _, err := ours.Write([]byte("x")); err == nil {
		t.Error("socket still writable after overflow teardown")
	}
}

// TestConnWriterWriteErrorSticky forces a write failure and checks every
// later enqueue reports it rather than silently dropping frames.
func TestConnWriterWriteErrorSticky(t *testing.T) {
	nc := &memConn{}
	nc.Close() // every Write fails from the start
	w := newConnWriter(nc, writerConfig{})
	defer w.close()
	var got error
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if got = w.enqueue([]byte("f\n"), true); got != nil {
			break
		}
	}
	if got == nil {
		t.Fatal("write failures never surfaced to enqueue")
	}
}

// TestBroadcastStormRace floods 1024 watcher connections through the real
// server and coalescing writers; under -race it is the concurrency gate
// for the broadcast fan-out path (encode-once frame sharing, per-conn
// flushers, inline replies racing pushes). Every watcher must see every
// frame — coalescing may merge writes, never drop or reorder them.
func TestBroadcastStormRace(t *testing.T) {
	watchers, results := 1024, 30
	if testing.Short() {
		watchers = 64
	}
	var relay ResultRelay
	s, err := ServeBackend("127.0.0.1:0", noEventsBackend{}, &relay)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var wg sync.WaitGroup
	for i := 0; i < watchers; i++ {
		cl := dial(t, s)
		if err := cl.Watch(); err != nil {
			t.Fatalf("watch %d: %v", i, err)
		}
		wg.Add(1)
		go func(i int, cl *Client) {
			defer wg.Done()
			for seen := 0; seen < results; seen++ {
				select {
				case res, ok := <-cl.Results():
					if !ok {
						t.Errorf("watcher %d feed closed after %d/%d frames", i, seen, results)
						return
					}
					if want := fmt.Sprintf("t%04d", seen); res.TaskID != want {
						t.Errorf("watcher %d frame %d: got %q, want %q (reordered or dropped)", i, seen, res.TaskID, want)
						return
					}
				case <-time.After(60 * time.Second):
					t.Errorf("watcher %d stalled at %d/%d frames", i, seen, results)
					return
				}
			}
		}(i, cl)
	}
	for i := 0; i < results; i++ {
		relay.Publish(core.Result{TaskID: fmt.Sprintf("t%04d", i), WorkerID: "w", Answer: "y", MetDeadline: true})
	}
	wg.Wait()
}
