package wire

import "sync"

// pushQueue decouples a connection's read loop from a consumer that may
// drain slowly: pushes never block (or silently drop) on a full fixed
// buffer the way the old 32-slot assignment channel did — they append to
// an accounted in-memory queue that a pump goroutine delivers to a plain
// channel. Depth and high-water marks are exported through
// Client.Metrics so overload is visible, and a queue that grows past max
// fires onOverflow exactly once: wire clients close the connection there,
// so the server's DetachWorker path recovers any held task instead of
// the frame rotting in a buffer nobody reads.
type pushQueue[T any] struct {
	mu         sync.Mutex
	buf        []T
	closed     bool
	overflowed bool
	highWater  int
	pushed     int64

	wake chan struct{} // 1-buffered pump doorbell
	dead chan struct{} // closed on close(): aborts a blocked delivery
	out  chan T

	max        int
	onOverflow func()
}

func newPushQueue[T any](max int, onOverflow func()) *pushQueue[T] {
	q := &pushQueue[T]{
		wake:       make(chan struct{}, 1),
		dead:       make(chan struct{}),
		out:        make(chan T),
		max:        max,
		onOverflow: onOverflow,
	}
	go q.pump()
	return q
}

// push enqueues one item; it never blocks. Items pushed after close are
// discarded (the connection is gone; the server re-pushes on reconnect).
func (q *pushQueue[T]) push(v T) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.buf = append(q.buf, v)
	if len(q.buf) > q.highWater {
		q.highWater = len(q.buf)
	}
	q.pushed++
	over := q.max > 0 && len(q.buf) > q.max && !q.overflowed
	if over {
		q.overflowed = true
	}
	q.mu.Unlock()
	select {
	case q.wake <- struct{}{}:
	default:
	}
	if over && q.onOverflow != nil {
		q.onOverflow()
	}
}

// close stops the queue: the pump delivers nothing further and the out
// channel closes, exactly like a closed channel would — undelivered items
// are dropped, which is correct because they belonged to a dead
// connection. Idempotent.
func (q *pushQueue[T]) close() {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.closed = true
	q.mu.Unlock()
	close(q.dead)
	select {
	case q.wake <- struct{}{}:
	default:
	}
	// Retract a delivery the pump may already be parked on: without this, a
	// consumer arriving after close() could still rendezvous with that
	// parked send and receive one more item. The steal pairs with the
	// parked send — dropping the item, which belonged to this dead
	// connection — or takes the default when no send is pending.
	select {
	case <-q.out:
	default:
	}
}

func (q *pushQueue[T]) pump() {
	defer close(q.out)
	for {
		v, ok, closed := q.pop()
		if closed {
			return
		}
		if !ok {
			select {
			case <-q.wake:
			case <-q.dead:
				return
			}
			continue
		}
		// Check dead with priority before offering the item: when close()
		// landed while the item was being popped, the send and the abort
		// below are both ready and select picks randomly — without this
		// check the pump could hand a consumer one more item after
		// close(), violating the "delivers nothing further" contract.
		select {
		case <-q.dead:
			return
		default:
		}
		select {
		case q.out <- v:
		case <-q.dead:
			return
		}
	}
}

// pop removes the head item; ok reports an item was available, closed
// reports the queue is closed (delivery stops immediately — remaining
// items belonged to a dead connection).
func (q *pushQueue[T]) pop() (v T, ok, closed bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return v, false, true
	}
	if len(q.buf) == 0 {
		return v, false, false
	}
	v = q.buf[0]
	q.buf = q.buf[1:]
	if len(q.buf) == 0 {
		q.buf = nil // release the drained backing array
	}
	return v, true, false
}

// depthStats snapshots the queue accounting for Client.Metrics.
func (q *pushQueue[T]) depthStats() (depth, highWater int, pushed int64, overflowed bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf), q.highWater, q.pushed, q.overflowed
}
