package wire

import (
	"encoding/json"
	"math"
	"strconv"
	"sync"
)

// This file is the pooled wire codec: hand-written append-style JSON
// framing for Message plus reusable decode scratch, so the steady-state
// encode of the hot frames (assignment, result, event, submit, ok/error)
// allocates nothing. encoding/json built a fresh buffer and reflected over
// the struct for every frame, which made the transport — not the engine —
// the allocation hot path once the scheduler was sharded.
//
// The encoding mirrors the Message struct tags exactly (field order,
// omitempty semantics, string escaping sufficient for the
// newline-delimited protocol), and codec_test.go holds encoding/json
// round-trip equivalence over a corpus plus a fuzzer
// (FuzzFrameDecode) so the two can never drift apart silently.

// frameBuf is a pooled encode buffer holding one framed message (trailing
// newline included). Release returns it to the pool; the bytes must not be
// referenced afterwards.
type frameBuf struct{ b []byte }

// maxPooledFrame keeps pathological frames (a huge regions list, a
// kilobyte description) from pinning their capacity in the pool forever.
const maxPooledFrame = 64 << 10

var framePool = sync.Pool{New: func() any { return &frameBuf{b: make([]byte, 0, 512)} }}

// encodeFrame frames m into a pooled buffer: one JSON object, one
// trailing newline, ready for a single write.
func encodeFrame(m *Message) *frameBuf {
	fb := framePool.Get().(*frameBuf)
	fb.b = AppendFrame(fb.b[:0], m)
	return fb
}

func (fb *frameBuf) release() {
	if cap(fb.b) > maxPooledFrame {
		return
	}
	framePool.Put(fb)
}

// AppendFrame appends m's newline-terminated wire form to dst. The field
// order and omitempty behaviour mirror the Message struct tags, so frames
// are interchangeable with what encoding/json produced. Exported so the
// benchmark suite and the reactbench allocs gate can measure the encoder
// with a caller-owned buffer (the steady state allocates nothing).
func AppendFrame(dst []byte, m *Message) []byte {
	dst = append(dst, `{"type":`...)
	dst = appendJSONString(dst, m.Type)
	if m.Seq != 0 {
		dst = append(dst, `,"seq":`...)
		dst = strconv.AppendUint(dst, m.Seq, 10)
	}
	if m.Worker != "" {
		dst = append(dst, `,"worker":`...)
		dst = appendJSONString(dst, m.Worker)
	}
	if m.Lat != 0 {
		dst = append(dst, `,"lat":`...)
		dst = appendJSONFloat(dst, m.Lat)
	}
	if m.Lon != 0 {
		dst = append(dst, `,"lon":`...)
		dst = appendJSONFloat(dst, m.Lon)
	}
	if m.Available != nil {
		dst = append(dst, `,"available":`...)
		dst = strconv.AppendBool(dst, *m.Available)
	}
	if m.Task != nil {
		dst = append(dst, `,"task":`...)
		dst = appendTask(dst, m.Task)
	}
	if m.TaskID != "" {
		dst = append(dst, `,"task_id":`...)
		dst = appendJSONString(dst, m.TaskID)
	}
	if m.Answer != "" {
		dst = append(dst, `,"answer":`...)
		dst = appendJSONString(dst, m.Answer)
	}
	if m.Positive != nil {
		dst = append(dst, `,"positive":`...)
		dst = strconv.AppendBool(dst, *m.Positive)
	}
	if m.Error != "" {
		dst = append(dst, `,"error":`...)
		dst = appendJSONString(dst, m.Error)
	}
	if m.Code != "" {
		dst = append(dst, `,"code":`...)
		dst = appendJSONString(dst, m.Code)
	}
	if m.Assignment != nil {
		dst = append(dst, `,"assignment":`...)
		dst = appendAssignment(dst, m.Assignment)
	}
	if m.Result != nil {
		dst = append(dst, `,"result":`...)
		dst = appendResult(dst, m.Result)
	}
	if m.Stats != nil {
		dst = append(dst, `,"stats":`...)
		dst = appendStats(dst, m.Stats)
	}
	if len(m.Regions) > 0 {
		dst = append(dst, `,"regions":[`...)
		for i := range m.Regions {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = append(dst, `{"region":`...)
			dst = appendJSONString(dst, m.Regions[i].Region)
			dst = append(dst, `,"stats":`...)
			dst = appendStats(dst, &m.Regions[i].Stats)
			dst = append(dst, '}')
		}
		dst = append(dst, ']')
	}
	if m.Status != nil {
		dst = append(dst, `,"status":`...)
		dst = appendStatus(dst, m.Status)
	}
	if m.Event != nil {
		dst = append(dst, `,"event":`...)
		dst = appendEvent(dst, m.Event)
	}
	if m.Admission != nil {
		dst = append(dst, `,"admission":`...)
		dst = appendAdmission(dst, m.Admission)
	}
	return append(dst, '}', '\n')
}

func appendAdmission(dst []byte, p *AdmissionPayload) []byte {
	dst = append(dst, `{"status":`...)
	dst = appendJSONString(dst, p.Status)
	if p.Probability != 0 {
		dst = append(dst, `,"probability":`...)
		dst = appendJSONFloat(dst, p.Probability)
	}
	if p.Floor != 0 {
		dst = append(dst, `,"floor":`...)
		dst = appendJSONFloat(dst, p.Floor)
	}
	if p.RetryAfterMS != 0 {
		dst = append(dst, `,"retry_after_ms":`...)
		dst = strconv.AppendInt(dst, p.RetryAfterMS, 10)
	}
	return append(dst, '}')
}

func appendTask(dst []byte, p *TaskPayload) []byte {
	dst = append(dst, `{"id":`...)
	dst = appendJSONString(dst, p.ID)
	dst = append(dst, `,"lat":`...)
	dst = appendJSONFloat(dst, p.Lat)
	dst = append(dst, `,"lon":`...)
	dst = appendJSONFloat(dst, p.Lon)
	dst = append(dst, `,"deadline_ms":`...)
	dst = strconv.AppendInt(dst, p.DeadlineMS, 10)
	dst = append(dst, `,"reward":`...)
	dst = appendJSONFloat(dst, p.Reward)
	dst = append(dst, `,"category":`...)
	dst = appendJSONString(dst, p.Category)
	dst = append(dst, `,"description":`...)
	dst = appendJSONString(dst, p.Description)
	return append(dst, '}')
}

func appendAssignment(dst []byte, p *AssignmentPayload) []byte {
	dst = append(dst, `{"task_id":`...)
	dst = appendJSONString(dst, p.TaskID)
	dst = append(dst, `,"worker_id":`...)
	dst = appendJSONString(dst, p.WorkerID)
	dst = append(dst, `,"category":`...)
	dst = appendJSONString(dst, p.Category)
	dst = append(dst, `,"description":`...)
	dst = appendJSONString(dst, p.Description)
	dst = append(dst, `,"lat":`...)
	dst = appendJSONFloat(dst, p.Lat)
	dst = append(dst, `,"lon":`...)
	dst = appendJSONFloat(dst, p.Lon)
	dst = append(dst, `,"deadline_ms":`...)
	dst = strconv.AppendInt(dst, p.DeadlineMS, 10)
	dst = append(dst, `,"reward":`...)
	dst = appendJSONFloat(dst, p.Reward)
	return append(dst, '}')
}

func appendResult(dst []byte, p *ResultPayload) []byte {
	dst = append(dst, `{"task_id":`...)
	dst = appendJSONString(dst, p.TaskID)
	if p.WorkerID != "" {
		dst = append(dst, `,"worker_id":`...)
		dst = appendJSONString(dst, p.WorkerID)
	}
	if p.Answer != "" {
		dst = append(dst, `,"answer":`...)
		dst = appendJSONString(dst, p.Answer)
	}
	dst = append(dst, `,"met_deadline":`...)
	dst = strconv.AppendBool(dst, p.MetDeadline)
	dst = append(dst, `,"expired":`...)
	dst = strconv.AppendBool(dst, p.Expired)
	return append(dst, '}')
}

func appendStats(dst []byte, p *StatsPayload) []byte {
	dst = append(dst, `{"received":`...)
	dst = strconv.AppendInt(dst, p.Received, 10)
	dst = append(dst, `,"assigned":`...)
	dst = strconv.AppendInt(dst, p.Assigned, 10)
	dst = append(dst, `,"completed":`...)
	dst = strconv.AppendInt(dst, p.Completed, 10)
	dst = append(dst, `,"on_time":`...)
	dst = strconv.AppendInt(dst, p.OnTime, 10)
	dst = append(dst, `,"expired":`...)
	dst = strconv.AppendInt(dst, p.Expired, 10)
	dst = append(dst, `,"reassigned":`...)
	dst = strconv.AppendInt(dst, p.Reassigned, 10)
	dst = append(dst, `,"batches":`...)
	dst = strconv.AppendInt(dst, p.Batches, 10)
	dst = append(dst, `,"workers_online":`...)
	dst = strconv.AppendInt(dst, int64(p.WorkersOnline), 10)
	dst = append(dst, `,"workers_known":`...)
	dst = strconv.AppendInt(dst, int64(p.WorkersKnown), 10)
	return append(dst, '}')
}

func appendStatus(dst []byte, p *TaskStatusPayload) []byte {
	dst = append(dst, `{"task_id":`...)
	dst = appendJSONString(dst, p.TaskID)
	dst = append(dst, `,"state":`...)
	dst = appendJSONString(dst, p.State)
	if p.Worker != "" {
		dst = append(dst, `,"worker":`...)
		dst = appendJSONString(dst, p.Worker)
	}
	if p.MetDeadline {
		dst = append(dst, `,"met_deadline":true`...)
	}
	return append(dst, '}')
}

func appendEvent(dst []byte, p *EventPayload) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, p.Seq, 10)
	dst = append(dst, `,"kind":`...)
	dst = appendJSONString(dst, p.Kind)
	dst = append(dst, `,"task_id":`...)
	dst = appendJSONString(dst, p.TaskID)
	if p.Worker != "" {
		dst = append(dst, `,"worker":`...)
		dst = appendJSONString(dst, p.Worker)
	}
	dst = append(dst, `,"at_unix_ms":`...)
	dst = strconv.AppendInt(dst, p.AtUnixMS, 10)
	if p.Cause != "" {
		dst = append(dst, `,"cause":`...)
		dst = appendJSONString(dst, p.Cause)
	}
	if p.Probability != 0 {
		dst = append(dst, `,"probability":`...)
		dst = appendJSONFloat(dst, p.Probability)
	}
	if p.Status != "" {
		dst = append(dst, `,"status":`...)
		dst = appendJSONString(dst, p.Status)
	}
	if p.MetDeadline {
		dst = append(dst, `,"met_deadline":true`...)
	}
	if p.Attempts != 0 {
		dst = append(dst, `,"attempts":`...)
		dst = strconv.AppendInt(dst, int64(p.Attempts), 10)
	}
	return append(dst, '}')
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a quoted JSON string. Quotes, backslashes,
// and control characters are escaped — newline escaping is what keeps one
// frame on one line, which the whole protocol depends on. Other bytes pass
// through verbatim: valid UTF-8 survives exactly, and the decoder treats
// invalid bytes the same way it treated encoding/json's output.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c != '"' && c != '\\' && c >= 0x20 {
			continue
		}
		dst = append(dst, s[start:i]...)
		switch c {
		case '"':
			dst = append(dst, '\\', '"')
		case '\\':
			dst = append(dst, '\\', '\\')
		case '\n':
			dst = append(dst, '\\', 'n')
		case '\r':
			dst = append(dst, '\\', 'r')
		case '\t':
			dst = append(dst, '\\', 't')
		default:
			dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		start = i + 1
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// appendJSONFloat appends f in a round-trip-exact form. JSON has no
// representation for non-finite values (encoding/json fails the whole
// marshal); a coordinate or reward can never legitimately be one, so they
// degrade to 0 rather than producing an unparseable frame.
func appendJSONFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, '0')
	}
	return strconv.AppendFloat(dst, f, 'g', -1, 64)
}

// decodeScratch is one connection's reusable decode state: the Message and
// the hot push/submit payloads are preallocated once and re-filled frame
// after frame (encoding/json reuses memory behind non-nil pointers), so
// steady-state decode does not allocate a payload struct per frame. A
// frame that omits a pre-pointed payload leaves it zero — presence checks
// on the read paths therefore test the payload's key field (task id, event
// kind), which a meaningful frame always carries, instead of pointer
// nilness.
//
// Not safe for concurrent use; each read loop owns one. The returned
// *Message and its pre-pointed payloads are valid only until the next
// decode call — anything that outlives the loop iteration (a response
// handed to a waiting caller) must be copied with the scratch-backed
// pointers cleared (see Client.readLoop).
type decodeScratch struct {
	msg    Message
	task   TaskPayload
	assign AssignmentPayload
	result ResultPayload
	event  EventPayload
}

// decode parses one frame into the scratch message. On error the partially
// filled message is still returned: the server's error reply echoes
// whatever Seq the frame managed to carry, matching encoding/json's
// partial-fill behaviour.
func (d *decodeScratch) decode(data []byte) (*Message, error) {
	d.task = TaskPayload{}
	d.assign = AssignmentPayload{}
	d.result = ResultPayload{}
	d.event = EventPayload{}
	d.msg = Message{
		Task:       &d.task,
		Assignment: &d.assign,
		Result:     &d.result,
		Event:      &d.event,
	}
	err := json.Unmarshal(data, &d.msg)
	return &d.msg, err
}
