package wire

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"react/internal/admission"
)

// The pooled codec and encoding/json must agree forever: every frame the
// hand-written encoder emits has to decode (by either decoder) into the
// message that produced it, and every frame encoding/json would have
// produced has to mean the same thing to the reusable scratch decoder.
// codecCorpus holds one message per frame shape the protocol uses, plus
// the string/float edge cases that make hand-written JSON encoders rot.

func boolPtr(b bool) *bool { return &b }

func codecCorpus() []Message {
	return []Message{
		{Type: "register", Seq: 1, Worker: "alice", Lat: 37.9838, Lon: 23.7275},
		{Type: "availability", Seq: 2, Worker: "alice", Available: boolPtr(true)},
		{Type: "availability", Seq: 3, Worker: "alice", Available: boolPtr(false)},
		{Type: "move", Seq: 4, Worker: "alice", Lat: -37.5, Lon: 144.9},
		{Type: "submit", Seq: 5, Task: &TaskPayload{
			ID: "t1", Lat: 37.98, Lon: 23.73, DeadlineMS: 60000, Reward: 2.5,
			Category: "traffic", Description: "is the on-ramp jammed?",
		}},
		{Type: "submit", Seq: 6, Task: &TaskPayload{
			ID: "t\"2\\", DeadlineMS: -5,
			Description: "line one\nline two\ttab\rcr \x01ctl Ωθήνα ταξί 🚕",
		}},
		{Type: "complete", Seq: 7, Worker: "alice", TaskID: "t1", Answer: "yes, jammed"},
		{Type: "feedback", Seq: 8, TaskID: "t1", Positive: boolPtr(true)},
		{Type: "error", Seq: 9, Error: "no such task: t9"},
		{Type: "ok", Seq: 10},
		{Type: "ok", Seq: 11, Assignment: &AssignmentPayload{
			TaskID: "t1", WorkerID: "alice", Category: "traffic",
			Description: "look left", Lat: 1e-12, Lon: -179.999999999, DeadlineMS: 30000, Reward: 0.25,
		}},
		{Type: "assignment", Assignment: &AssignmentPayload{TaskID: "t3", WorkerID: "bob", DeadlineMS: 1}},
		{Type: "result", Result: &ResultPayload{TaskID: "t1", WorkerID: "alice", Answer: "no", MetDeadline: true}},
		{Type: "result", Result: &ResultPayload{TaskID: "t4", Expired: true}},
		{Type: "ok", Seq: 12, Stats: &StatsPayload{
			Received: 100, Assigned: 90, Completed: 80, OnTime: 70,
			Expired: 10, Reassigned: 5, Batches: 40, WorkersOnline: 8, WorkersKnown: 12,
		}},
		{Type: "ok", Seq: 13, Regions: []RegionStatsPayload{
			{Region: "athens-ne", Stats: StatsPayload{Received: 1}},
			{Region: "athens-sw", Stats: StatsPayload{Completed: 2}},
		}},
		{Type: "ok", Seq: 14, Status: &TaskStatusPayload{TaskID: "t1", State: "assigned", Worker: "alice"}},
		{Type: "ok", Seq: 15, Status: &TaskStatusPayload{TaskID: "t2", State: "completed", MetDeadline: true}},
		{Type: "event", Event: &EventPayload{
			Seq: 99, Kind: "reassigned", TaskID: "t1", Worker: "alice", AtUnixMS: 1754550000123,
			Cause: "eq2", Probability: 0.125, Status: "assigned", MetDeadline: true, Attempts: 3,
		}},
		{Type: "event", Event: &EventPayload{Seq: 100, Kind: "expired", TaskID: "t5", AtUnixMS: -1}},
		{Type: "error", Seq: 16, Error: "queue full", Code: CodeQueueFull},
		{Type: "error", Seq: 17, Error: "rate limited", Code: CodeRejectedRate, Admission: &AdmissionPayload{
			Status: string(admission.StatusRejectedRate), RetryAfterMS: 1500,
		}},
		{Type: "error", Seq: 18, Error: "hopeless deadline", Code: CodeRejectedProbability, Admission: &AdmissionPayload{
			Status: string(admission.StatusRejectedProbability), Probability: 0.03125, Floor: 0.5,
		}},
		{Type: "ok", Seq: 19, Admission: &AdmissionPayload{
			Status: string(admission.StatusAdmitted), Probability: 0.9990234375,
		}},
	}
}

// normalizePresence maps a decoded message onto the presence semantics the
// read loops use: a pre-pointed payload whose key field is zero means "not
// in the frame" and becomes nil, so scratch-decoded and pointer-decoded
// messages compare equal.
func normalizePresence(m Message) Message {
	if m.Task != nil && m.Task.ID == "" {
		m.Task = nil
	}
	if m.Assignment != nil && m.Assignment.TaskID == "" {
		m.Assignment = nil
	}
	if m.Result != nil && m.Result.TaskID == "" {
		m.Result = nil
	}
	if m.Event != nil && m.Event.Kind == "" {
		m.Event = nil
	}
	return m
}

// TestFrameCodecMatchesEncodingJSON drives the corpus through all four
// codec quadrants: hand encode -> std decode, std encode -> scratch
// decode, and hand encode -> scratch decode must all reproduce the
// original message, and every hand-encoded frame must be exactly one line.
func TestFrameCodecMatchesEncodingJSON(t *testing.T) {
	for _, m := range codecCorpus() {
		m := m
		frame := AppendFrame(nil, &m)
		if frame[len(frame)-1] != '\n' {
			t.Fatalf("frame for %+v missing trailing newline", m)
		}
		if i := bytes.IndexByte(frame[:len(frame)-1], '\n'); i >= 0 {
			t.Fatalf("frame for %+v has interior newline at %d: %q", m, i, frame)
		}

		var viaStd Message
		if err := json.Unmarshal(frame, &viaStd); err != nil {
			t.Fatalf("encoding/json rejects hand-encoded frame %q: %v", frame, err)
		}
		if want := normalizePresence(m); !reflect.DeepEqual(normalizePresence(viaStd), want) {
			t.Errorf("hand encode -> std decode mismatch:\nframe: %s\n got: %+v\nwant: %+v", frame, viaStd, want)
		}

		stdFrame, err := json.Marshal(m)
		if err != nil {
			t.Fatalf("json.Marshal(%+v): %v", m, err)
		}
		var scr decodeScratch
		viaScratch, err := scr.decode(stdFrame)
		if err != nil {
			t.Fatalf("scratch decoder rejects encoding/json frame %q: %v", stdFrame, err)
		}
		if want := normalizePresence(m); !reflect.DeepEqual(normalizePresence(*viaScratch), want) {
			t.Errorf("std encode -> scratch decode mismatch:\nframe: %s\n got: %+v\nwant: %+v", stdFrame, *viaScratch, want)
		}

		viaBoth, err := scr.decode(frame)
		if err != nil {
			t.Fatalf("scratch decoder rejects hand-encoded frame %q: %v", frame, err)
		}
		if want := normalizePresence(m); !reflect.DeepEqual(normalizePresence(*viaBoth), want) {
			t.Errorf("hand encode -> scratch decode mismatch:\nframe: %s\n got: %+v\nwant: %+v", frame, *viaBoth, want)
		}
	}
}

// TestFrameEncodeOmitsZeroFields pins the omitempty behaviour byte-for-
// byte on minimal messages, where a regression would hide inside
// round-trip equality.
func TestFrameEncodeOmitsZeroFields(t *testing.T) {
	for _, tc := range []struct {
		m    Message
		want string
	}{
		{Message{Type: "ok"}, `{"type":"ok"}` + "\n"},
		{Message{Type: "ok", Seq: 7}, `{"type":"ok","seq":7}` + "\n"},
		{Message{Type: "stats", Seq: 1, Worker: "w"}, `{"type":"stats","seq":1,"worker":"w"}` + "\n"},
		{Message{Type: "error", Seq: 2, Error: "bad"}, `{"type":"error","seq":2,"error":"bad"}` + "\n"},
		{Message{Type: "error", Seq: 4, Error: "full", Code: CodeQueueFull},
			`{"type":"error","seq":4,"error":"full","code":"queue_full"}` + "\n"},
		{Message{Type: "ok", Seq: 5, Admission: &AdmissionPayload{Status: "admitted"}},
			`{"type":"ok","seq":5,"admission":{"status":"admitted"}}` + "\n"},
	} {
		if got := string(AppendFrame(nil, &tc.m)); got != tc.want {
			t.Errorf("AppendFrame(%+v) = %q, want %q", tc.m, got, tc.want)
		}
	}
}

// TestFrameFloatRoundTrip checks coordinates and rewards survive encode ->
// decode bit-for-bit, and that the non-finite degradation is the
// documented one (0, not a broken frame).
func TestFrameFloatRoundTrip(t *testing.T) {
	for _, f := range []float64{
		37.9838, -23.7275, 1e-12, 5e-324, math.MaxFloat64, 1.0 / 3.0, 123456789.123456789,
	} {
		m := Message{Type: "move", Lat: f, Lon: -f}
		var scr decodeScratch
		got, err := scr.decode(AppendFrame(nil, &m))
		if err != nil {
			t.Fatalf("decode lat=%g: %v", f, err)
		}
		if math.Float64bits(got.Lat) != math.Float64bits(f) || math.Float64bits(got.Lon) != math.Float64bits(-f) {
			t.Errorf("float round trip lat=%g -> %g, lon=%g -> %g", f, got.Lat, -f, got.Lon)
		}
	}
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		m := Message{Type: "move", Lat: f}
		frame := AppendFrame(nil, &m)
		if !strings.Contains(string(frame), `"lat":0`) {
			t.Errorf("non-finite lat %v encoded as %q, want degradation to 0", f, frame)
		}
		var scr decodeScratch
		if _, err := scr.decode(frame); err != nil {
			t.Errorf("non-finite degradation produced unparseable frame %q: %v", frame, err)
		}
	}
}

// TestDecodeScratchReuse proves the scratch really is reusable: payloads
// from an earlier frame never bleed into a later one, and a frame with a
// wrongly-typed field still surfaces its Seq for the error reply.
func TestDecodeScratchReuse(t *testing.T) {
	var scr decodeScratch
	m, err := scr.decode([]byte(`{"type":"assignment","assignment":{"task_id":"t1","worker_id":"alice"}}`))
	if err != nil || m.Assignment.TaskID != "t1" {
		t.Fatalf("first decode: %+v, %v", m, err)
	}
	m, err = scr.decode([]byte(`{"type":"event","event":{"seq":5,"kind":"expired","task_id":"t2","at_unix_ms":1}}`))
	if err != nil {
		t.Fatalf("second decode: %v", err)
	}
	if m.Assignment.TaskID != "" {
		t.Errorf("assignment payload leaked across decode calls: %+v", m.Assignment)
	}
	if m.Event.Kind != "expired" || m.Event.TaskID != "t2" {
		t.Errorf("event payload wrong after reuse: %+v", m.Event)
	}

	m, err = scr.decode([]byte(`{"type":"complete","seq":42,"answer":5}`))
	if err == nil {
		t.Fatal("wrongly-typed answer field decoded without error")
	}
	if m.Seq != 42 {
		t.Errorf("partial fill lost Seq: got %d, want 42 (error replies echo it)", m.Seq)
	}
}

// TestEncodeFramePoolReuse cycles the frame pool and checks a recycled
// buffer starts clean — stale bytes from a longer earlier frame must never
// leak into a shorter later one.
func TestEncodeFramePoolReuse(t *testing.T) {
	long := Message{Type: "submit", Task: &TaskPayload{ID: "t1", Description: strings.Repeat("x", 2048)}}
	short := Message{Type: "ok", Seq: 3}
	for i := 0; i < 8; i++ {
		fb := encodeFrame(&long)
		fb.release()
		fb2 := encodeFrame(&short)
		if got := string(fb2.b); got != `{"type":"ok","seq":3}`+"\n" {
			t.Fatalf("iteration %d: recycled buffer produced %q", i, got)
		}
		fb2.release()
	}
}
