package wire

import (
	"testing"
	"time"

	"react/internal/core"
	"react/internal/federation"
	"react/internal/region"
	"react/internal/schedule"
)

// startFederation serves a 2×2 multi-region coordinator over TCP.
func startFederation(t *testing.T) (*Server, *federation.Coordinator) {
	t.Helper()
	grid, err := region.NewGrid(region.Rect{MinLat: 0, MinLon: 0, MaxLat: 4, MaxLon: 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var relay ResultRelay
	coord := federation.New(grid, func(regionID string) *core.Server {
		return core.New(core.Options{
			BatchPoll:     5 * time.Millisecond,
			MonitorPeriod: 50 * time.Millisecond,
			Schedule:      schedule.Config{BatchBound: 1, BatchPeriod: 10 * time.Millisecond},
			OnResult:      relay.Publish,
		})
	})
	s, err := ServeBackend("127.0.0.1:0", coord, &relay)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, coord
}

func TestFederationOverTCP(t *testing.T) {
	s, coord := startFederation(t)

	// Two workers in different regions.
	sw := dial(t, s)
	if err := sw.Register("southwest", 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	ne := dial(t, s)
	if err := ne.Register("northeast", 3.5, 3.5); err != nil {
		t.Fatal(err)
	}

	req := dial(t, s)
	if err := req.Watch(); err != nil {
		t.Fatal(err)
	}
	// A task in the northeast region must go to the northeast worker.
	task := TaskPayload{ID: "t-ne", Lat: 3.6, Lon: 3.6, DeadlineMS: 60_000, Category: "traffic"}
	if err := req.Submit(task); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-ne.Assignments():
		if a.TaskID != "t-ne" {
			t.Fatalf("assignment = %+v", a)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("northeast assignment never arrived")
	}
	select {
	case a := <-sw.Assignments():
		t.Fatalf("southwest worker received foreign task %+v", a)
	case <-time.After(200 * time.Millisecond):
	}
	if err := ne.Complete("t-ne", "northeast", "clear roads"); err != nil {
		t.Fatal(err)
	}
	// Result pushes flow from the region server through the relay.
	select {
	case r := <-req.Results():
		if r.TaskID != "t-ne" || !r.MetDeadline {
			t.Fatalf("result = %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("result never arrived")
	}
	if err := req.Feedback("t-ne", true); err != nil {
		t.Fatal(err)
	}

	// Aggregated stats over the wire cover both regions.
	st, err := req.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Received != 1 || st.Completed != 1 || st.WorkersOnline != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if got := len(coord.Regions()); got != 2 {
		t.Fatalf("regions = %d", got)
	}
}

func TestFederationDisconnectAndReconnect(t *testing.T) {
	s, _ := startFederation(t)
	w := dial(t, s)
	if err := w.Register("roamer", 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	req := dial(t, s)
	req.Submit(TaskPayload{ID: "t1", Lat: 0.6, Lon: 0.6, DeadlineMS: 60_000, Category: "traffic"})
	select {
	case a := <-w.Assignments():
		w.Complete(a.TaskID, "roamer", "ok")
		req.Feedback("t1", true)
	case <-time.After(5 * time.Second):
		t.Fatal("assignment never arrived")
	}
	w.Close()
	// Reconnect in the same region: history survives.
	deadline := time.Now().Add(2 * time.Second)
	var ok bool
	for time.Now().Before(deadline) {
		w2 := dial(t, s)
		if err := w2.Register("roamer", 0.7, 0.7); err == nil {
			st, _ := w2.Stats()
			if st.WorkersOnline >= 1 {
				ok = true
			}
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !ok {
		t.Fatal("reconnect into federation failed")
	}
}

func TestRegionsOverWire(t *testing.T) {
	s, _ := startFederation(t)
	c := dial(t, s)
	// Activate two regions.
	if err := c.Register("sw", 0.5, 0.5); err != nil {
		t.Fatal(err)
	}
	c2 := dial(t, s)
	if err := c2.Register("ne", 3.5, 3.5); err != nil {
		t.Fatal(err)
	}
	regions, err := c.Regions()
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 2 {
		t.Fatalf("regions = %+v", regions)
	}
	if regions[0].Region >= regions[1].Region {
		t.Fatalf("regions not sorted: %q, %q", regions[0].Region, regions[1].Region)
	}
	var online int
	for _, r := range regions {
		online += r.Stats.WorkersOnline
	}
	if online != 2 {
		t.Fatalf("workers across regions = %d", online)
	}
}

func TestRegionsSingleServer(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	regions, err := c.Regions()
	if err != nil {
		t.Fatal(err)
	}
	if len(regions) != 1 || regions[0].Region != "all" {
		t.Fatalf("regions = %+v", regions)
	}
}
