package wire

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// FuzzMessageDecode exercises the protocol decoder with arbitrary bytes:
// whatever arrives, decoding must not panic, and any message that decodes
// must re-encode and materialize payloads without panicking — the server's
// read loop depends on that totality.
func FuzzMessageDecode(f *testing.F) {
	seeds := []string{
		`{"type":"register","worker":"alice","lat":37.98,"lon":23.73}`,
		`{"type":"submit","task":{"id":"t1","deadline_ms":60000,"category":"traffic"}}`,
		`{"type":"complete","task_id":"t1","worker":"alice","answer":"yes"}`,
		`{"type":"feedback","task_id":"t1","positive":true}`,
		`{"type":"assignment","assignment":{"task_id":"t1","worker_id":"alice","deadline_ms":-5}}`,
		`{"type":"result","result":{"task_id":"t1","met_deadline":true}}`,
		`{"type":"stats"}`,
		`{"type":"watch"}`,
		`{}`,
		`{"type":"submit","task":{"id":"","deadline_ms":-9223372036854775808}}`,
		`not json at all`,
		`{"type":`,
		`{"type":"submit","task":{"deadline_ms":1e309}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := json.Unmarshal(data, &m); err != nil {
			return // rejected input is fine; panics are not
		}
		if _, err := json.Marshal(m); err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		if m.Task != nil {
			task := m.Task.Task(time.Now())
			_ = task.Deadline // arbitrary DeadlineMS must not panic
		}
	})
}

// FuzzFrameDecode holds the pooled codec to the encoding/json contract on
// arbitrary bytes: whenever encoding/json accepts a frame, the scratch
// decoder must accept it and agree on every field; whatever decodes must
// re-encode through appendFrame as a single line whose meaning is a fixed
// point (encode -> decode -> encode is byte-stable). This is the fuzzer
// the nightly workflow runs against the hand-written encoder.
func FuzzFrameDecode(f *testing.F) {
	for _, m := range codecCorpus() {
		m := m
		f.Add(AppendFrame(nil, &m))
	}
	seeds := []string{
		`{"type":"register","worker":"alice","lat":37.98,"lon":23.73}`,
		`{"type":"submit","task":{"id":"t1","deadline_ms":60000}}`,
		`{"type":"ok","seq":18446744073709551615}`,
		`{"type":"move","lat":5e-324,"lon":-1.7976931348623157e308}`,
		`{"type":"complete","seq":42,"answer":5}`,
		`{"seq":1e20}`,
		`not json`,
		`{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var scr decodeScratch
		m, scratchErr := scr.decode(data)

		var std Message
		stdErr := json.Unmarshal(data, &std)
		if stdErr == nil && scratchErr != nil {
			t.Fatalf("encoding/json accepts %q but scratch decoder rejects it: %v", data, scratchErr)
		}
		if scratchErr != nil {
			return
		}
		if stdErr == nil {
			got, want := normalizePresence(*m), normalizePresence(std)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("decoders disagree on %q:\nscratch: %+v\n    std: %+v", data, got, want)
			}
		}

		frame := AppendFrame(nil, m)
		if frame[len(frame)-1] != '\n' || bytes.IndexByte(frame[:len(frame)-1], '\n') >= 0 {
			t.Fatalf("re-encoded frame is not exactly one line: %q", frame)
		}
		var scr2 decodeScratch
		m2, err := scr2.decode(frame)
		if err != nil {
			t.Fatalf("appendFrame output %q does not decode: %v", frame, err)
		}
		if frame2 := AppendFrame(nil, m2); !bytes.Equal(frame, frame2) {
			t.Fatalf("encode is not a fixed point:\nfirst:  %q\nsecond: %q", frame, frame2)
		}
	})
}
