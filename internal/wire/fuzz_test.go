package wire

import (
	"encoding/json"
	"testing"
	"time"
)

// FuzzMessageDecode exercises the protocol decoder with arbitrary bytes:
// whatever arrives, decoding must not panic, and any message that decodes
// must re-encode and materialize payloads without panicking — the server's
// read loop depends on that totality.
func FuzzMessageDecode(f *testing.F) {
	seeds := []string{
		`{"type":"register","worker":"alice","lat":37.98,"lon":23.73}`,
		`{"type":"submit","task":{"id":"t1","deadline_ms":60000,"category":"traffic"}}`,
		`{"type":"complete","task_id":"t1","worker":"alice","answer":"yes"}`,
		`{"type":"feedback","task_id":"t1","positive":true}`,
		`{"type":"assignment","assignment":{"task_id":"t1","worker_id":"alice","deadline_ms":-5}}`,
		`{"type":"result","result":{"task_id":"t1","met_deadline":true}}`,
		`{"type":"stats"}`,
		`{"type":"watch"}`,
		`{}`,
		`{"type":"submit","task":{"id":"","deadline_ms":-9223372036854775808}}`,
		`not json at all`,
		`{"type":`,
		`{"type":"submit","task":{"deadline_ms":1e309}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := json.Unmarshal(data, &m); err != nil {
			return // rejected input is fine; panics are not
		}
		if _, err := json.Marshal(m); err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		if m.Task != nil {
			task := m.Task.Task(time.Now())
			_ = task.Deadline // arbitrary DeadlineMS must not panic
		}
	})
}
