package wire

import (
	"strings"
	"testing"
	"time"

	"react/internal/core"
	"react/internal/profile"
	"react/internal/region"
	"react/internal/taskq"
)

// drainTimeline collects events until a terminal one arrives for taskID.
func drainTimeline(t *testing.T, c *Client, taskID string) []EventPayload {
	t.Helper()
	var got []EventPayload
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-c.Events():
			if !ok {
				t.Fatalf("event stream closed after %d events", len(got))
			}
			got = append(got, ev)
			if ev.TaskID == taskID && ev.Terminal() {
				return got
			}
		case <-deadline:
			t.Fatalf("no terminal event for %q; got %+v", taskID, got)
		}
	}
}

func TestWatchEventsStreamsTaskTimeline(t *testing.T) {
	s := startServer(t)

	watcher := dial(t, s)
	if err := watcher.WatchEvents("t1"); err != nil {
		t.Fatal(err)
	}

	worker := dial(t, s)
	if err := worker.Register("alice", 37.98, 23.73); err != nil {
		t.Fatal(err)
	}
	requester := dial(t, s)
	if err := requester.Submit(testTask("t1")); err != nil {
		t.Fatal(err)
	}
	// An off-filter task: none of its events may leak into the stream.
	if err := requester.Submit(testTask("t2")); err != nil {
		t.Fatal(err)
	}

	var a AssignmentPayload
	for a.TaskID != "t1" {
		select {
		case a = <-worker.Assignments():
		case <-time.After(5 * time.Second):
			t.Fatal("assignment never arrived")
		}
	}
	if err := worker.Complete("t1", "alice", "yes"); err != nil {
		t.Fatal(err)
	}

	got := drainTimeline(t, watcher, "t1")
	var kinds []string
	var lastSeq uint64
	for _, ev := range got {
		if ev.TaskID != "t1" {
			t.Fatalf("event for %q leaked through the t1 filter: %+v", ev.TaskID, ev)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("seq not strictly increasing: %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		kinds = append(kinds, ev.Kind)
	}
	timeline := strings.Join(kinds, "→")
	if timeline != "submit→assign→complete" {
		t.Fatalf("timeline = %s, want submit→assign→complete", timeline)
	}
	last := got[len(got)-1]
	if last.Worker != "alice" || !last.MetDeadline || last.Status != "completed" || last.Attempts != 1 {
		t.Fatalf("terminal event = %+v", last)
	}
}

func TestWatchEventsUnfiltered(t *testing.T) {
	s := startServer(t)

	watcher := dial(t, s)
	if err := watcher.WatchEvents(""); err != nil {
		t.Fatal(err)
	}
	requester := dial(t, s)
	if err := requester.Submit(testTask("a")); err != nil {
		t.Fatal(err)
	}
	if err := requester.Submit(testTask("b")); err != nil {
		t.Fatal(err)
	}

	seen := map[string]bool{}
	deadline := time.After(5 * time.Second)
	for !(seen["a"] && seen["b"]) {
		select {
		case ev := <-watcher.Events():
			if ev.Kind != "submit" {
				t.Fatalf("unexpected kind %q before any worker exists", ev.Kind)
			}
			seen[ev.TaskID] = true
		case <-deadline:
			t.Fatalf("submit events missing; seen %v", seen)
		}
	}
}

// noEventsBackend satisfies Backend but not the optional event-spine
// interface, like the federation coordinator.
type noEventsBackend struct{}

func (noEventsBackend) RegisterWorker(string, region.Point) (<-chan core.Assignment, error) {
	return nil, nil
}
func (noEventsBackend) ReconnectWorker(string) (<-chan core.Assignment, error) { return nil, nil }
func (noEventsBackend) DeregisterWorker(string) error                          { return nil }
func (noEventsBackend) DetachWorker(string) error                              { return nil }
func (noEventsBackend) Worker(string) (*profile.Profile, bool)                 { return nil, false }
func (noEventsBackend) Submit(taskq.Task) error                                { return nil }
func (noEventsBackend) Complete(string, string, string) (core.Result, error) {
	return core.Result{}, nil
}
func (noEventsBackend) Feedback(string, bool) error { return nil }
func (noEventsBackend) Stats() core.Stats           { return core.Stats{} }
func (noEventsBackend) Stop()                       {}

func TestWatchEventsWithoutSpineErrors(t *testing.T) {
	s, err := ServeBackend("127.0.0.1:0", noEventsBackend{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	c := dial(t, s)
	if err := c.WatchEvents(""); err == nil || !strings.Contains(err.Error(), "event spine") {
		t.Fatalf("err = %v, want event-spine rejection", err)
	}
}
