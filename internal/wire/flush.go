package wire

import (
	"errors"
	"net"
	"sync"
	"time"

	"react/internal/clock"
)

// This file is the write-coalescing half of the wire hot path: every
// connection owns a connWriter whose flusher goroutine group-commits
// queued frames into single buffered writes, mirroring the journal's
// group-commit shape (memory-only enqueue under a mutex, one flusher
// draining on size threshold or interval, flush-on-close, sticky error).
// A broadcast of E events to C connections therefore costs O(C) syscalls
// per flush round instead of O(C×E): while one write syscall is in
// flight, every frame queued behind it coalesces into the next.
//
// Request/reply traffic takes the inline path instead: enqueue(frame,
// true) writes synchronously on the caller's goroutine when no writer is
// active, so a lone RPC pays zero scheduler handoffs — identical latency
// to the pre-coalescing synchronous write — while concurrent writers
// still coalesce through the same swap-and-write critical section.

const (
	// defaultFlushBytes forces an early flush once this much is pending —
	// roughly one socket buffer's worth, so a storm never builds a giant
	// write.
	defaultFlushBytes = 64 << 10

	// defaultMaxPending bounds one connection's unflushed backlog. A peer
	// that stops reading for long enough to pin this much memory is torn
	// down (the server's detach path recovers any held task), mirroring
	// the client-side pushQueue overflow rule.
	defaultMaxPending = 64 << 20

	// defaultWriteTimeout bounds one flush syscall, like the old
	// per-frame write deadline did.
	defaultWriteTimeout = 10 * time.Second

	// closeFlushTimeout bounds the final flush-on-close write, so tearing
	// down a wedged peer cannot stall teardown for the full write timeout.
	closeFlushTimeout = 2 * time.Second
)

// writerConfig tunes one connection's coalescer. The zero value selects
// the defaults above with eager flushing (Interval 0): the flusher runs as
// soon as any frame is pending, so an idle connection's reply is written
// immediately and batching emerges only while a write is already in
// flight. Interval > 0 lingers instead — a flush below FlushBytes waits
// until the oldest pending frame is Interval old (measured on Clock), the
// journal's fsync-interval shape — trading bounded latency for bigger
// batches.
type writerConfig struct {
	FlushBytes   int
	Interval     time.Duration
	MaxPending   int
	WriteTimeout time.Duration
	// Clock supplies the timebase for the linger decision and for flush
	// latency measurement. Tests drive interval semantics with a virtual
	// clock; the parked flusher's wall wait is only a wakeup bound.
	Clock clock.Clock
	// OnFlush, if set, observes every completed flush (frame count, byte
	// count, syscall latency). Called from the flusher goroutine.
	OnFlush func(frames, bytes int, elapsed time.Duration)
}

func (cfg writerConfig) normalize() writerConfig {
	if cfg.FlushBytes <= 0 {
		cfg.FlushBytes = defaultFlushBytes
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = defaultMaxPending
	}
	if cfg.WriteTimeout <= 0 {
		cfg.WriteTimeout = defaultWriteTimeout
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.System{}
	}
	return cfg
}

// errWriterOverflow is the sticky error recorded when a connection's
// pending backlog passes MaxPending.
var errWriterOverflow = errors.New("wire: write backlog overflow")

// connWriter coalesces outbound frames for one connection. enqueue is
// memory-only and safe from any goroutine; a single flusher goroutine
// performs every write syscall. Frames flush in enqueue order, exactly
// once; close flushes whatever is pending before returning, so the byte
// stream a peer observes is identical to the pre-coalescing synchronous
// one.
type connWriter struct {
	nc  net.Conn
	cfg writerConfig

	mu      sync.Mutex
	cond    *sync.Cond // signals writing -> false
	pending []byte     // frames queued since the last swap
	frames  int        // frame count in pending
	firstAt time.Time  // cfg.Clock instant the oldest pending frame arrived
	spare   []byte     // recycled swap buffer
	writing bool       // a flush's write syscall is in flight
	err     error      // sticky: first write failure or overflow
	closed  bool

	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

func newConnWriter(nc net.Conn, cfg writerConfig) *connWriter {
	w := &connWriter{
		nc:   nc,
		cfg:  cfg.normalize(),
		kick: make(chan struct{}, 1),
		done: make(chan struct{}),
	}
	w.cond = sync.NewCond(&w.mu)
	w.wg.Add(1)
	go w.run()
	return w
}

// enqueue appends one encoded frame to the pending buffer. The frame
// bytes are copied, so pooled encode buffers can be released immediately.
// Returns the sticky error once the writer has failed or closed — callers
// treat that like the old synchronous write error (the socket is already
// being torn down).
//
// With inline=false enqueue is memory-only and never blocks: the flusher
// goroutine performs the write. With inline=true (and no linger interval)
// the caller flushes synchronously before returning — the right shape for
// request/reply frames, where the enqueueing goroutine is about to wait
// for the peer anyway and a scheduler handoff would only add latency.
func (w *connWriter) enqueue(frame []byte, inline bool) error {
	w.mu.Lock()
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.frames == 0 {
		w.firstAt = w.cfg.Clock.Now()
	}
	w.pending = append(w.pending, frame...)
	w.frames++
	over := len(w.pending) > w.cfg.MaxPending
	if over {
		w.err = errWriterOverflow
	}
	w.mu.Unlock()
	if over {
		// The peer has not read for long enough to pin MaxPending bytes;
		// closing the socket wakes its read loop, and teardown recovers
		// any held task. Mirrors the client pushQueue overflow rule.
		w.nc.Close()
		return errWriterOverflow
	}
	if inline && w.cfg.Interval <= 0 {
		return w.flush(w.cfg.WriteTimeout)
	}
	select {
	case w.kick <- struct{}{}:
	default:
	}
	return nil
}

// run is the group-commit loop: park until a frame is pending, then flush
// batches until drained. With a linger interval the flush waits until the
// size threshold trips or the oldest frame is Interval old; eager mode
// (Interval 0) flushes immediately, batching only what accumulated while
// the previous write syscall was in flight.
func (w *connWriter) run() {
	defer w.wg.Done()
	for {
		select {
		case <-w.done:
			w.finalFlush()
			return
		case <-w.kick:
		}
		for {
			wait, empty := w.lingerLeft()
			if empty {
				break // fully drained; park on the doorbell again
			}
			if wait > 0 {
				// Linger: batch more frames before writing. The timer is a
				// wall-clock wakeup bound; the decision itself re-reads the
				// injected clock, so virtual-clock tests drive the boundary
				// deterministically through enqueue kicks.
				timer := time.NewTimer(wait)
				select {
				case <-w.done:
					timer.Stop()
					w.finalFlush()
					return
				case <-w.kick:
					timer.Stop()
				case <-timer.C:
				}
				continue
			}
			if w.flush(w.cfg.WriteTimeout) != nil {
				return // sticky error recorded; the socket is closed
			}
		}
	}
}

// lingerLeft reports how much longer the flusher should wait before
// writing (0 = flush now), and whether nothing is pending at all.
func (w *connWriter) lingerLeft() (wait time.Duration, empty bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.frames == 0 {
		return 0, true
	}
	if w.cfg.Interval <= 0 || len(w.pending) >= w.cfg.FlushBytes {
		return 0, false
	}
	age := w.cfg.Clock.Now().Sub(w.firstAt)
	if age >= w.cfg.Interval {
		return 0, false
	}
	return w.cfg.Interval - age, false
}

// flush swaps the pending buffer out under the mutex and writes it with a
// single syscall. Both the flusher goroutine and inline enqueuers call
// it; the writing flag makes exactly one of them the active writer while
// the rest wait their turn (by which point their frames have usually been
// carried out by the active writer's swap, and their own flush is empty).
func (w *connWriter) flush(timeout time.Duration) error {
	w.mu.Lock()
	for w.writing {
		// cond.Wait releases the mutex; the active writer's syscall is
		// bounded by its write deadline, so the wait is too.
		w.cond.Wait()
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	buf, frames := w.pending, w.frames
	if len(buf) == 0 {
		w.mu.Unlock()
		return nil
	}
	w.pending, w.frames = w.spare[:0], 0
	w.spare = nil
	w.writing = true
	w.mu.Unlock()
	start := w.cfg.Clock.Now()
	w.nc.SetWriteDeadline(time.Now().Add(timeout))
	//lint:ignore blockingunderlock an inline flush runs on the caller's goroutine, which may hold Client.reqMu — the one-in-flight-call design; the write deadline above bounds the hold
	_, err := w.nc.Write(buf)
	elapsed := w.cfg.Clock.Now().Sub(start)
	w.mu.Lock()
	w.writing = false
	w.cond.Broadcast()
	if err != nil {
		if w.err == nil {
			w.err = err // sticky: every later enqueue returns this
		}
		err = w.err
		w.mu.Unlock()
		// Closing the socket wakes the connection's read loop so normal
		// teardown runs.
		w.nc.Close()
		return err
	}
	if w.spare == nil && cap(buf) <= maxPooledFrame*4 {
		w.spare = buf[:0] // recycle; oversized storm buffers are let go
	}
	w.mu.Unlock()
	if w.cfg.OnFlush != nil {
		w.cfg.OnFlush(frames, len(buf), elapsed)
	}
	return nil
}

// finalFlush drains what close() left pending, with a short deadline so a
// wedged peer cannot stall teardown. Linger never applies: close means
// "write it now".
func (w *connWriter) finalFlush() {
	w.flush(closeFlushTimeout)
}

// close stops the flusher after one final flush of everything enqueued
// before the call, then returns. It does not close the socket — callers
// own that — so a graceful teardown can flush, then close, and lose
// nothing. Idempotent.
func (w *connWriter) close() {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return
	}
	w.closed = true
	w.mu.Unlock()
	close(w.done)
	w.wg.Wait()
}
