package wire

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is one connection to a REACT region server. A single client can
// act as a worker (Register, then drain Assignments and Complete), as a
// requester (Submit, Watch, drain Results, Feedback), or both. All methods
// are safe for concurrent use; requests are serialized on the wire.
type Client struct {
	c   net.Conn
	enc *json.Encoder

	reqMu sync.Mutex // one outstanding request at a time
	resp  chan Message

	assignments chan AssignmentPayload
	results     chan ResultPayload

	closeOnce sync.Once
	closed    chan struct{}
}

// Dial connects to a region server.
func Dial(addr string) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		c:           c,
		enc:         json.NewEncoder(c),
		resp:        make(chan Message, 1),
		assignments: make(chan AssignmentPayload, 32),
		results:     make(chan ResultPayload, 128),
		closed:      make(chan struct{}),
	}
	go cl.readLoop()
	return cl, nil
}

// Close tears down the connection; pending calls fail with ErrClosed.
func (cl *Client) Close() error {
	cl.closeOnce.Do(func() { close(cl.closed); cl.c.Close() })
	return nil
}

func (cl *Client) readLoop() {
	scanner := bufio.NewScanner(cl.c)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		var m Message
		if err := json.Unmarshal(scanner.Bytes(), &m); err != nil {
			continue // tolerate junk; the next frame resynchronizes
		}
		switch m.Type {
		case "assignment":
			if m.Assignment != nil {
				select {
				case cl.assignments <- *m.Assignment:
				default: // drop rather than wedge the reader
				}
			}
		case "result":
			if m.Result != nil {
				select {
				case cl.results <- *m.Result:
				default:
				}
			}
		default: // ok / error responses
			select {
			case cl.resp <- m:
			default:
			}
		}
	}
	cl.Close()
	close(cl.assignments)
	close(cl.results)
}

// call sends one request and waits for its ok/error response.
func (cl *Client) call(m Message) (Message, error) {
	cl.reqMu.Lock()
	defer cl.reqMu.Unlock()
	select {
	case <-cl.closed:
		return Message{}, ErrClosed
	default:
	}
	if err := cl.enc.Encode(m); err != nil {
		return Message{}, err
	}
	select {
	case resp := <-cl.resp:
		if resp.Type == "error" {
			return resp, fmt.Errorf("wire: %s", resp.Error)
		}
		return resp, nil
	case <-cl.closed:
		return Message{}, ErrClosed
	case <-time.After(30 * time.Second):
		return Message{}, fmt.Errorf("wire: timeout waiting for response to %q", m.Type)
	}
}

// Register announces this connection as a worker at the given location.
// Assignments then arrive on Assignments().
func (cl *Client) Register(workerID string, lat, lon float64) error {
	_, err := cl.call(Message{Type: "register", Worker: workerID, Lat: lat, Lon: lon})
	return err
}

// Assignments is the stream of tasks pushed to this worker. Closed when
// the connection drops.
func (cl *Client) Assignments() <-chan AssignmentPayload { return cl.assignments }

// Deregister removes this connection's worker from the server. Any held
// task returns to the pool.
func (cl *Client) Deregister() error {
	_, err := cl.call(Message{Type: "deregister"})
	return err
}

// SetLocation updates this worker's location (mobile workers move between
// regions' weight ranges).
func (cl *Client) SetLocation(lat, lon float64) error {
	_, err := cl.call(Message{Type: "location", Lat: lat, Lon: lon})
	return err
}

// SetAvailable toggles this worker's willingness to receive assignments
// without dropping the connection (connectivity cycles, §I).
func (cl *Client) SetAvailable(v bool) error {
	_, err := cl.call(Message{Type: "available", Available: &v})
	return err
}

// Submit places a task. DeadlineMS is relative to server receipt.
func (cl *Client) Submit(t TaskPayload) error {
	_, err := cl.call(Message{Type: "submit", Task: &t})
	return err
}

// Complete reports this worker's answer for a held task.
func (cl *Client) Complete(taskID, workerID, answer string) error {
	_, err := cl.call(Message{Type: "complete", TaskID: taskID, Worker: workerID, Answer: answer})
	return err
}

// Feedback records the requester's verdict for a completed task.
func (cl *Client) Feedback(taskID string, positive bool) error {
	_, err := cl.call(Message{Type: "feedback", TaskID: taskID, Positive: &positive})
	return err
}

// Watch subscribes this connection to all task results; they arrive on
// Results().
func (cl *Client) Watch() error {
	_, err := cl.call(Message{Type: "watch"})
	return err
}

// Results is the stream of result pushes after Watch. Closed when the
// connection drops.
func (cl *Client) Results() <-chan ResultPayload { return cl.results }

// Ping round-trips a keepalive frame.
func (cl *Client) Ping() error {
	_, err := cl.call(Message{Type: "ping"})
	return err
}

// Regions fetches per-region counters; single-region servers report one
// entry named "all".
func (cl *Client) Regions() ([]RegionStatsPayload, error) {
	resp, err := cl.call(Message{Type: "regions"})
	if err != nil {
		return nil, err
	}
	return resp.Regions, nil
}

// Stats fetches the server counters.
func (cl *Client) Stats() (StatsPayload, error) {
	resp, err := cl.call(Message{Type: "stats"})
	if err != nil {
		return StatsPayload{}, err
	}
	if resp.Stats == nil {
		return StatsPayload{}, fmt.Errorf("wire: stats response missing payload")
	}
	return *resp.Stats, nil
}
