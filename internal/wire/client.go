package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ServerError is an "error" response from the server: the request was
// delivered and rejected. Connection-level failures (closed sockets, call
// timeouts) are reported as other error types — that distinction is how
// ReconnectingClient decides which failures are worth retrying on a fresh
// connection.
type ServerError struct {
	msg string
	// Code is the server's machine-readable error class (one of the
	// Code* constants), "" when the server sent none.
	Code string
	// Admission carries the admission verdict behind a typed rejection
	// (status, probability, floor, retry-after hint), nil otherwise.
	Admission *AdmissionPayload
}

func (e *ServerError) Error() string { return "wire: " + e.msg }

// Retryable reports whether the same request is worth retrying later:
// true for capacity/rate rejections (which clear as load drains), false
// for permanent classes (duplicate id, past deadline, probability floor)
// and for unclassified errors.
func (e *ServerError) Retryable() bool {
	return e.Code == CodeQueueFull || e.Code == CodeRejectedRate
}

// RetryAfter is the server's retry hint (0 when it sent none).
func (e *ServerError) RetryAfter() time.Duration {
	if e.Admission == nil {
		return 0
	}
	return time.Duration(e.Admission.RetryAfterMS) * time.Millisecond
}

// ErrTimeout wraps a call whose response did not arrive within the call
// timeout. The connection stays open: the late response, if it ever
// arrives, carries the old sequence number, is recognized as stale, and
// is discarded — it cannot desync later calls.
var ErrTimeout = errors.New("wire: call timeout")

const (
	// DefaultCallTimeout bounds one request/response round trip.
	DefaultCallTimeout = 30 * time.Second

	// DefaultKeepalive is how often an otherwise idle client pings so the
	// server's read deadline (Server.SetIdleTimeout) sees a live peer.
	// It must stay comfortably under DefaultIdleTimeout.
	DefaultKeepalive = 25 * time.Second

	// DefaultMaxBacklog bounds the inbound push queues. A client that
	// stops draining Assignments()/Results() past this depth is
	// disconnected so the server's DetachWorker path recovers any held
	// task, rather than the old behaviour of silently dropping frames
	// from a full 32-slot buffer while the server still believed the
	// task was assigned.
	DefaultMaxBacklog = 16384
)

// ClientMetrics are the wire-level health counters of one connection.
type ClientMetrics struct {
	StaleResponses      int64 // late responses discarded by Seq correlation
	MismatchedResponses int64 // responses whose Seq matched no outstanding request
	DroppedResponses    int64 // responses dropped because nothing awaited them
	AssignmentBacklog   int   // assignment pushes queued but not yet consumed
	AssignmentHighWater int   // peak assignment backlog over the connection
	ResultBacklog       int
	ResultHighWater     int
	EventBacklog        int
	EventHighWater      int
	OverflowClosed      bool // connection closed because a backlog exceeded the limit
}

// Client is one connection to a REACT region server. A single client can
// act as a worker (Register, then drain Assignments and Complete), as a
// requester (Submit, Watch, drain Results, Feedback), or both. All methods
// are safe for concurrent use; requests are serialized on the wire and
// correlated with responses by sequence number, so a timed-out call cannot
// desync the ones that follow.
type Client struct {
	c net.Conn
	w *connWriter // coalesces outbound request frames (flush.go)

	reqMu sync.Mutex // one outstanding request at a time
	resp  chan Message
	seq   atomic.Uint64 // last sequence number stamped on a request

	callTimeout atomic.Int64 // ns
	keepalive   atomic.Int64 // ns; <=0 disables the idle pinger
	lastSend    atomic.Int64 // unixnano of the last request written

	stale      atomic.Int64
	mismatched atomic.Int64
	respDrops  atomic.Int64

	assignments *pushQueue[AssignmentPayload]
	results     *pushQueue[ResultPayload]
	events      *pushQueue[EventPayload]

	closeOnce sync.Once
	closed    chan struct{}
}

// Dial connects to a region server.
func Dial(addr string) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		c:      c,
		w:      newConnWriter(c, writerConfig{}),
		resp:   make(chan Message, 16),
		closed: make(chan struct{}),
	}
	cl.callTimeout.Store(int64(DefaultCallTimeout))
	cl.keepalive.Store(int64(DefaultKeepalive))
	cl.lastSend.Store(time.Now().UnixNano())
	cl.assignments = newPushQueue[AssignmentPayload](DefaultMaxBacklog, cl.overflowClose)
	cl.results = newPushQueue[ResultPayload](DefaultMaxBacklog, cl.overflowClose)
	cl.events = newPushQueue[EventPayload](DefaultMaxBacklog, cl.overflowClose)
	go cl.readLoop()
	go cl.keepaliveLoop()
	return cl, nil
}

// SetCallTimeout bounds each request/response round trip (default
// DefaultCallTimeout). Zero or negative restores the default.
func (cl *Client) SetCallTimeout(d time.Duration) {
	if d <= 0 {
		d = DefaultCallTimeout
	}
	cl.callTimeout.Store(int64(d))
}

// SetKeepalive sets the idle ping interval (default DefaultKeepalive).
// Negative disables keepalives entirely; zero restores the default.
func (cl *Client) SetKeepalive(d time.Duration) {
	if d == 0 {
		d = DefaultKeepalive
	}
	cl.keepalive.Store(int64(d))
}

// Metrics snapshots the connection's health counters.
func (cl *Client) Metrics() ClientMetrics {
	m := ClientMetrics{
		StaleResponses:      cl.stale.Load(),
		MismatchedResponses: cl.mismatched.Load(),
		DroppedResponses:    cl.respDrops.Load(),
	}
	var aOver, rOver, eOver bool
	m.AssignmentBacklog, m.AssignmentHighWater, _, aOver = cl.assignments.depthStats()
	m.ResultBacklog, m.ResultHighWater, _, rOver = cl.results.depthStats()
	m.EventBacklog, m.EventHighWater, _, eOver = cl.events.depthStats()
	m.OverflowClosed = aOver || rOver || eOver
	return m
}

// Close tears down the connection; pending calls fail with ErrClosed.
// The socket closes first so Close never waits on a wedged peer; the
// writer is then stopped to reclaim its flusher goroutine.
func (cl *Client) Close() error {
	cl.closeOnce.Do(func() { close(cl.closed); cl.c.Close(); cl.w.close() })
	return nil
}

// overflowClose is the push-queue overflow hook: a consumer this far
// behind will never catch up before its deadlines, so drop the connection
// and let reconnect/DetachWorker recover the work.
func (cl *Client) overflowClose() { cl.Close() }

func (cl *Client) readLoop() {
	scanner := bufio.NewScanner(cl.c)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var scr decodeScratch
	for scanner.Scan() {
		m, err := scr.decode(scanner.Bytes())
		if err != nil {
			continue // tolerate junk; the next frame resynchronizes
		}
		// Push payloads are pre-pointed decode scratch, so presence is the
		// payload's key field, not pointer nilness; the pushQueue copies
		// the value, never the scratch pointer.
		switch m.Type {
		case "assignment":
			if m.Assignment.TaskID != "" {
				cl.assignments.push(*m.Assignment)
			}
		case "result":
			if m.Result.TaskID != "" {
				cl.results.push(*m.Result)
			}
		case "event":
			if m.Event.Kind != "" {
				cl.events.push(*m.Event)
			}
		default: // ok / error responses
			// The response escapes this loop to a waiting caller: copy it
			// and drop the scratch-backed pointers (a response never
			// carries them; Status/Stats/Regions are freshly allocated by
			// the decoder when present, so the copy owns them).
			resp := *m
			resp.Task, resp.Assignment, resp.Result, resp.Event = nil, nil, nil, nil
			select {
			case cl.resp <- resp:
			default:
				// No caller is waiting and the parking buffer is full —
				// a protocol violation worth counting, not wedging on.
				cl.respDrops.Add(1)
			}
		}
	}
	cl.Close()
	cl.assignments.close()
	cl.results.close()
	cl.events.close()
}

// keepaliveLoop pings whenever the connection has been request-idle for a
// keepalive interval, so the server's read deadline never fires on a
// healthy but quiet connection (e.g. a worker waiting for assignments).
func (cl *Client) keepaliveLoop() {
	for {
		d := time.Duration(cl.keepalive.Load())
		if d <= 0 {
			d = time.Second // disabled: poll cheaply for re-enablement
		}
		timer := time.NewTimer(d)
		select {
		case <-cl.closed:
			timer.Stop()
			return
		case <-timer.C:
		}
		if kd := time.Duration(cl.keepalive.Load()); kd > 0 &&
			time.Since(time.Unix(0, cl.lastSend.Load())) >= kd {
			_ = cl.Ping() // a dead connection surfaces via the read loop
		}
	}
}

// call sends one request and waits for its ok/error response, identified
// by sequence number. Stale responses — answers to calls that already
// timed out — are discarded and counted.
func (cl *Client) call(m Message) (Message, error) {
	cl.reqMu.Lock()
	defer cl.reqMu.Unlock()
	select {
	case <-cl.closed:
		return Message{}, ErrClosed
	default:
	}
	m.Seq = cl.seq.Add(1)
	cl.lastSend.Store(time.Now().UnixNano())
	fb := encodeFrame(&m)
	err := cl.w.enqueue(fb.b, true) // inline: the caller blocks on the reply anyway
	fb.release()
	if err != nil {
		return Message{}, err
	}
	timeout := time.NewTimer(time.Duration(cl.callTimeout.Load()))
	defer timeout.Stop()
	for {
		//lint:ignore blockingunderlock waiting for the matching response under reqMu is the one-in-flight-call design; the timeout arm bounds the hold
		select {
		case resp := <-cl.resp:
			switch {
			case resp.Seq == m.Seq || resp.Seq == 0:
				// Matched — or a legacy server that does not echo Seq,
				// which can only answer in order.
				if resp.Type == "error" {
					return resp, &ServerError{msg: resp.Error, Code: resp.Code, Admission: resp.Admission}
				}
				return resp, nil
			case resp.Seq < m.Seq:
				cl.stale.Add(1) // late answer to a timed-out call
			default:
				cl.mismatched.Add(1) // a response from the future: broken peer
			}
		case <-cl.closed:
			return Message{}, ErrClosed
		case <-timeout.C:
			return Message{}, fmt.Errorf("%w: no response to %q within %v",
				ErrTimeout, m.Type, time.Duration(cl.callTimeout.Load()))
		}
	}
}

// Register announces this connection as a worker at the given location.
// Assignments then arrive on Assignments().
func (cl *Client) Register(workerID string, lat, lon float64) error {
	_, err := cl.call(Message{Type: "register", Worker: workerID, Lat: lat, Lon: lon})
	return err
}

// Assignments is the stream of tasks pushed to this worker. Closed when
// the connection drops.
func (cl *Client) Assignments() <-chan AssignmentPayload { return cl.assignments.out }

// Deregister removes this connection's worker from the server. Any held
// task returns to the pool.
func (cl *Client) Deregister() error {
	_, err := cl.call(Message{Type: "deregister"})
	return err
}

// SetLocation updates this worker's location (mobile workers move between
// regions' weight ranges).
func (cl *Client) SetLocation(lat, lon float64) error {
	_, err := cl.call(Message{Type: "location", Lat: lat, Lon: lon})
	return err
}

// SetAvailable toggles this worker's willingness to receive assignments
// without dropping the connection (connectivity cycles, §I).
func (cl *Client) SetAvailable(v bool) error {
	_, err := cl.call(Message{Type: "available", Available: &v})
	return err
}

// Submit places a task. DeadlineMS is relative to server receipt.
// Rejections (duplicate id, queue full, admission) surface as
// *ServerError with the code and retry-after hint attached.
func (cl *Client) Submit(t TaskPayload) error {
	_, err := cl.call(Message{Type: "submit", Task: &t})
	return err
}

// SubmitAdmit places a task and returns the server's admission verdict
// alongside the error. The payload is nil when the server has no
// admission plane (and on transport failures); on typed rejections both
// the payload and a *ServerError are returned.
func (cl *Client) SubmitAdmit(t TaskPayload) (*AdmissionPayload, error) {
	resp, err := cl.call(Message{Type: "submit", Task: &t})
	return resp.Admission, err
}

// Complete reports this worker's answer for a held task.
func (cl *Client) Complete(taskID, workerID, answer string) error {
	_, err := cl.call(Message{Type: "complete", TaskID: taskID, Worker: workerID, Answer: answer})
	return err
}

// Feedback records the requester's verdict for a completed task.
func (cl *Client) Feedback(taskID string, positive bool) error {
	_, err := cl.call(Message{Type: "feedback", TaskID: taskID, Positive: &positive})
	return err
}

// Watch subscribes this connection to all task results; they arrive on
// Results().
func (cl *Client) Watch() error {
	_, err := cl.call(Message{Type: "watch"})
	return err
}

// Results is the stream of result pushes after Watch. Closed when the
// connection drops.
func (cl *Client) Results() <-chan ResultPayload { return cl.results.out }

// WatchEvents subscribes this connection to the server's lifecycle event
// stream; events arrive on Events(). An empty taskID streams every task's
// events; a non-empty one narrows the stream to that task's timeline.
// Calling it again replaces the previous subscription. The server-side
// buffer is bounded: a client that stops draining Events() loses frames
// rather than stalling the engine.
func (cl *Client) WatchEvents(taskID string) error {
	_, err := cl.call(Message{Type: "watch-events", TaskID: taskID})
	return err
}

// Events is the stream of lifecycle event pushes after WatchEvents. Closed
// when the connection drops.
func (cl *Client) Events() <-chan EventPayload { return cl.events.out }

// Ping round-trips a keepalive frame.
func (cl *Client) Ping() error {
	_, err := cl.call(Message{Type: "ping"})
	return err
}

// TaskStatus queries the lifecycle state of a task. State "unknown" means
// the server has no record of it — never submitted there, or already
// garbage-collected; requesters reconciling after a reconnect treat that
// as "resubmit".
func (cl *Client) TaskStatus(taskID string) (TaskStatusPayload, error) {
	resp, err := cl.call(Message{Type: "task", TaskID: taskID})
	if err != nil {
		return TaskStatusPayload{}, err
	}
	if resp.Status == nil {
		return TaskStatusPayload{}, fmt.Errorf("wire: task response missing payload")
	}
	return *resp.Status, nil
}

// Regions fetches per-region counters; single-region servers report one
// entry named "all".
func (cl *Client) Regions() ([]RegionStatsPayload, error) {
	resp, err := cl.call(Message{Type: "regions"})
	if err != nil {
		return nil, err
	}
	return resp.Regions, nil
}

// Stats fetches the server counters.
func (cl *Client) Stats() (StatsPayload, error) {
	resp, err := cl.call(Message{Type: "stats"})
	if err != nil {
		return StatsPayload{}, err
	}
	if resp.Stats == nil {
		return StatsPayload{}, fmt.Errorf("wire: stats response missing payload")
	}
	return *resp.Stats, nil
}
