package wire

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"react/internal/core"
	"react/internal/schedule"
)

func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0", core.Options{
		BatchPoll:     5 * time.Millisecond,
		MonitorPeriod: 50 * time.Millisecond,
		Schedule:      schedule.Config{BatchBound: 1, BatchPeriod: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dial(t *testing.T, s *Server) *Client {
	t.Helper()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func testTask(id string) TaskPayload {
	return TaskPayload{
		ID: id, Lat: 37.98, Lon: 23.73,
		DeadlineMS: 60_000, Reward: 0.05,
		Category: "traffic", Description: "congested?",
	}
}

func TestEndToEndOverTCP(t *testing.T) {
	s := startServer(t)

	worker := dial(t, s)
	if err := worker.Register("alice", 37.98, 23.73); err != nil {
		t.Fatal(err)
	}

	requester := dial(t, s)
	if err := requester.Watch(); err != nil {
		t.Fatal(err)
	}
	if err := requester.Submit(testTask("t1")); err != nil {
		t.Fatal(err)
	}

	// The worker receives the assignment pushed over TCP.
	var a AssignmentPayload
	select {
	case a = <-worker.Assignments():
	case <-time.After(5 * time.Second):
		t.Fatal("assignment never arrived")
	}
	if a.TaskID != "t1" || a.WorkerID != "alice" || a.Category != "traffic" {
		t.Fatalf("assignment = %+v", a)
	}
	if a.DeadlineMS <= 0 || a.DeadlineMS > 60_000 {
		t.Fatalf("relative deadline = %dms", a.DeadlineMS)
	}

	if err := worker.Complete("t1", "alice", "yes, jammed"); err != nil {
		t.Fatal(err)
	}

	// The watching requester sees the result and grades it.
	select {
	case r := <-requester.Results():
		if r.TaskID != "t1" || r.Answer != "yes, jammed" || !r.MetDeadline || r.Expired {
			t.Fatalf("result = %+v", r)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("result never arrived")
	}
	if err := requester.Feedback("t1", true); err != nil {
		t.Fatal(err)
	}

	st, err := requester.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Received != 1 || st.Completed != 1 || st.OnTime != 1 || st.WorkersOnline != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServerErrorsSurfaceToClient(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	if err := c.Register("", 0, 0); err == nil || !strings.Contains(err.Error(), "missing worker") {
		t.Fatalf("err = %v", err)
	}
	if err := c.Submit(TaskPayload{}); err == nil {
		t.Fatal("empty submit accepted")
	}
	if err := c.Complete("ghost", "nobody", "x"); err == nil {
		t.Fatal("bogus complete accepted")
	}
	if err := c.Feedback("ghost", true); err == nil {
		t.Fatal("bogus feedback accepted")
	}
	// Duplicate registration across connections.
	if err := c.Register("dup", 1, 1); err != nil {
		t.Fatal(err)
	}
	c2 := dial(t, s)
	if err := c2.Register("dup", 1, 1); err == nil {
		t.Fatal("duplicate worker id accepted")
	}
}

func TestWorkerDisconnectReturnsTask(t *testing.T) {
	s := startServer(t)
	w1 := dial(t, s)
	if err := w1.Register("flaky", 37.98, 23.73); err != nil {
		t.Fatal(err)
	}
	req := dial(t, s)
	if err := req.Submit(testTask("t1")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-w1.Assignments():
	case <-time.After(5 * time.Second):
		t.Fatal("assignment never arrived")
	}
	// Worker vanishes; a new worker should inherit the task.
	w1.Close()
	w2 := dial(t, s)
	if err := w2.Register("steady", 37.98, 23.73); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-w2.Assignments():
		if a.TaskID != "t1" {
			t.Fatalf("inherited %+v", a)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("task not reassigned after disconnect")
	}
}

func TestUnregisteredConnectionErrors(t *testing.T) {
	// Every worker-scoped request on a connection that never registered
	// must be rejected at the guard — before any backend lookup — with an
	// error naming the problem. (The location/available handlers used to
	// probe the backend with an empty worker id first.)
	cases := []struct {
		name string
		call func(c *Client) error
	}{
		{"location", func(c *Client) error { return c.SetLocation(37.98, 23.73) }},
		{"available", func(c *Client) error { return c.SetAvailable(true) }},
		{"deregister", func(c *Client) error { return c.Deregister() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := startServer(t)
			c := dial(t, s)
			err := tc.call(c)
			if err == nil {
				t.Fatalf("%s accepted on unregistered connection", tc.name)
			}
			var se *ServerError
			if !errors.As(err, &se) {
				t.Fatalf("%s error = %v, want server rejection", tc.name, err)
			}
			if !strings.Contains(err.Error(), "no registered worker") {
				t.Fatalf("%s error = %v, want 'no registered worker'", tc.name, err)
			}
			// The rejection must not have wedged the connection.
			if err := c.Ping(); err != nil {
				t.Fatalf("connection dead after rejection: %v", err)
			}
		})
	}
}

func TestGarbageInputTolerated(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	// Raw garbage through the underlying connection must produce an error
	// frame, not kill the server.
	if _, err := fmt.Fprintf(c.c, "this is not json\n"); err != nil {
		t.Fatal(err)
	}
	// The error response lands in the response queue; a following valid
	// request still works.
	time.Sleep(50 * time.Millisecond)
	select {
	case m := <-c.resp:
		if m.Type != "error" {
			t.Fatalf("garbage response = %+v", m)
		}
	default:
		t.Fatal("no error frame for garbage input")
	}
	if err := c.Register("after-garbage", 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestManyWorkersManyTasksOverTCP(t *testing.T) {
	s := startServer(t)
	const nWorkers, nTasks = 6, 60

	var completed atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < nWorkers; i++ {
		id := fmt.Sprintf("w%d", i)
		c := dial(t, s)
		if err := c.Register(id, 37.98, 23.73); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id string, c *Client) {
			defer wg.Done()
			for a := range c.Assignments() {
				if err := c.Complete(a.TaskID, id, "ok"); err == nil {
					completed.Add(1)
				}
			}
		}(id, c)
	}

	req := dial(t, s)
	for i := 0; i < nTasks; i++ {
		if err := req.Submit(testTask(fmt.Sprintf("t%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(20 * time.Second)
	for completed.Load() < nTasks && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if completed.Load() != nTasks {
		t.Fatalf("completed %d of %d", completed.Load(), nTasks)
	}
	st, err := req.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed != nTasks {
		t.Fatalf("stats = %+v", st)
	}
	s.Close() // closes feeds; worker goroutines exit
	wg.Wait()
}

func TestStatsAfterClose(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	s.Close()
	if _, err := c.Stats(); err == nil {
		t.Fatal("stats succeeded on closed server")
	}
}

func TestDeregisterOverWire(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	if err := c.Deregister(); err == nil {
		t.Fatal("deregister before register accepted")
	}
	if err := c.Register("w", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Deregister(); err != nil {
		t.Fatal(err)
	}
	if err := c.Deregister(); err == nil {
		t.Fatal("double deregister accepted")
	}
	// The worker is gone from the registry.
	if st, _ := c.Stats(); st.WorkersOnline != 0 {
		t.Fatalf("workers online = %d after deregister", st.WorkersOnline)
	}
	// Re-registering the same id now works.
	if err := c.Register("w", 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestAvailabilityToggleOverWire(t *testing.T) {
	s := startServer(t)
	w := dial(t, s)
	if err := w.SetAvailable(false); err == nil {
		t.Fatal("availability before register accepted")
	}
	if err := w.Register("w", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.SetAvailable(false); err != nil {
		t.Fatal(err)
	}
	req := dial(t, s)
	if err := req.Submit(testTask("t1")); err != nil {
		t.Fatal(err)
	}
	// Unavailable worker receives nothing.
	select {
	case a := <-w.Assignments():
		t.Fatalf("unavailable worker got %+v", a)
	case <-time.After(300 * time.Millisecond):
	}
	// Flipping back releases the queued task.
	if err := w.SetAvailable(true); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-w.Assignments():
		if a.TaskID != "t1" {
			t.Fatalf("assignment = %+v", a)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("assignment never arrived after re-enable")
	}
}

func TestLocationUpdateOverWire(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	if err := c.SetLocation(1, 1); err == nil {
		t.Fatal("location before register accepted")
	}
	if err := c.Register("w", 1, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.SetLocation(200, 0); err == nil {
		t.Fatal("invalid coordinates accepted")
	}
	if err := c.SetLocation(37.98, 23.73); err != nil {
		t.Fatal(err)
	}
	p, ok := s.Core().Workers().Get("w")
	if !ok || p.Location().Lat != 37.98 {
		t.Fatalf("location not applied: %+v", p.Location())
	}
}

func TestReconnectKeepsHistory(t *testing.T) {
	s := startServer(t)
	// First session: build a history.
	w1 := dial(t, s)
	if err := w1.Register("veteran", 37.98, 23.73); err != nil {
		t.Fatal(err)
	}
	req := dial(t, s)
	req.Submit(testTask("t1"))
	select {
	case a := <-w1.Assignments():
		if err := w1.Complete(a.TaskID, "veteran", "ok"); err != nil {
			t.Fatal(err)
		}
		req.Feedback("t1", true)
	case <-time.After(5 * time.Second):
		t.Fatal("assignment never arrived")
	}
	// Disconnect: profile must survive, marked offline.
	w1.Close()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if p, ok := s.Core().Workers().Get("veteran"); ok && !p.Available() {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	p, ok := s.Core().Workers().Get("veteran")
	if !ok {
		t.Fatal("profile lost on disconnect")
	}
	if p.Finished() != 1 {
		t.Fatalf("history lost: finished = %d", p.Finished())
	}
	// Second session under the same id: reconnect with history intact.
	w2 := dial(t, s)
	if err := w2.Register("veteran", 38.00, 23.75); err != nil {
		t.Fatal(err)
	}
	p2, _ := s.Core().Workers().Get("veteran")
	if p2.Finished() != 1 {
		t.Fatalf("reconnect reset history: %d", p2.Finished())
	}
	if p2.Location().Lat != 38.00 {
		t.Fatalf("reconnect did not update location: %v", p2.Location())
	}
	// And receives work again.
	req.Submit(testTask("t2"))
	select {
	case a := <-w2.Assignments():
		if a.TaskID != "t2" {
			t.Fatalf("assignment = %+v", a)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("reconnected worker never received work")
	}
}

func TestSecondLiveConnectionRejected(t *testing.T) {
	s := startServer(t)
	w1 := dial(t, s)
	if err := w1.Register("solo", 1, 1); err != nil {
		t.Fatal(err)
	}
	w2 := dial(t, s)
	if err := w2.Register("solo", 1, 1); err == nil {
		t.Fatal("second live connection for the same worker accepted")
	}
}

func TestTaskStatusQuery(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	// Unknown task: reported, not an error — reconciling requesters use
	// "unknown" as the resubmit signal.
	st, err := c.TaskStatus("never-submitted")
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "unknown" {
		t.Fatalf("state = %q, want unknown", st.State)
	}
	// Missing id: rejected.
	if _, err := c.TaskStatus(""); err == nil {
		t.Fatal("empty task id accepted")
	}
	// Live task: tracked through its lifecycle.
	w := dial(t, s)
	if err := w.Register("alice", 37.98, 23.73); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(testTask("t1")); err != nil {
		t.Fatal(err)
	}
	select {
	case a := <-w.Assignments():
		st, err = c.TaskStatus("t1")
		if err != nil || st.State != "assigned" || st.Worker != "alice" {
			t.Fatalf("assigned status = %+v, %v", st, err)
		}
		if err := w.Complete(a.TaskID, "alice", "ok"); err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("assignment never arrived")
	}
	st, err = c.TaskStatus("t1")
	if err != nil || st.State != "completed" || !st.MetDeadline {
		t.Fatalf("completed status = %+v, %v", st, err)
	}
}

func TestPing(t *testing.T) {
	s := startServer(t)
	c := dial(t, s)
	for i := 0; i < 3; i++ {
		if err := c.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	if err := c.Ping(); err == nil {
		t.Fatal("ping succeeded on closed server")
	}
}
