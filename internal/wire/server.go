package wire

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"react/internal/admission"
	"react/internal/core"
	"react/internal/engine"
	"react/internal/event"
	"react/internal/profile"
	"react/internal/region"
	"react/internal/taskq"
)

// Backend is the middleware surface the TCP transport serves: implemented
// by *core.Server (one region) and *federation.Coordinator (a fleet of
// region servers routed by geography).
type Backend interface {
	RegisterWorker(id string, loc region.Point) (<-chan core.Assignment, error)
	ReconnectWorker(id string) (<-chan core.Assignment, error)
	DeregisterWorker(id string) error
	DetachWorker(id string) error
	Worker(id string) (*profile.Profile, bool)
	Submit(t taskq.Task) error
	Complete(taskID, workerID, answer string) (core.Result, error)
	Feedback(taskID string, positive bool) error
	Stats() core.Stats
	Stop()
}

// ResultRelay forwards backend results to a transport installed later —
// the backend is constructed (with its OnResult hook) before the transport
// exists. Install relay.Publish as the backend's result hook, then hand the
// relay to ServeBackend.
type ResultRelay struct {
	mu sync.Mutex
	fn func(core.Result)
}

// Publish forwards a result to the attached transport (drops it when none
// is attached yet).
func (r *ResultRelay) Publish(res core.Result) {
	r.mu.Lock()
	fn := r.fn
	r.mu.Unlock()
	if fn != nil {
		fn(res)
	}
}

func (r *ResultRelay) attach(fn func(core.Result)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fn = fn
}

// DefaultIdleTimeout is the server's per-connection read deadline: a
// connection that sends nothing — not even a keepalive ping — for this
// long is presumed dead and torn down, which detaches its worker and
// returns any held task to the pool. Clients ping every DefaultKeepalive
// (well under this) so healthy idle connections survive. Without the
// deadline, a silently dead connection (pulled cable, NAT timeout,
// partition) holds its worker "busy" forever.
const DefaultIdleTimeout = 90 * time.Second

// eventWatchDepth bounds one watch-events subscription's buffer. Deep
// enough to ride out transient client stalls; a stream that falls further
// behind drops frames (counted on the bus) rather than blocking the shard
// lock under which events are published.
const eventWatchDepth = 1024

// Server exposes a Backend over TCP.
type Server struct {
	backend Backend
	core    *core.Server // non-nil only for single-region Serve
	ln      net.Listener

	idle atomic.Int64 // per-connection read deadline (ns); <=0 disables

	// Transport-level health counters, snapshotted by Metrics for the
	// observability plane. Atomics: the read loops bump them per frame,
	// the per-connection flushers per flush.
	connsTotal    atomic.Int64
	framesRead    atomic.Int64
	framesWritten atomic.Int64
	badFrames     atomic.Int64
	errorsSent    atomic.Int64
	bytesWritten  atomic.Int64
	flushes       atomic.Int64

	// flushObs, when set, receives every flush's shape (frame count, byte
	// count, syscall latency in seconds) — how the observability plane
	// builds its frames-per-flush and flush-latency histograms.
	flushObs atomic.Value // func(frames, bytes int, latencySeconds float64)

	// writerCfg is the coalescer template stamped onto new connections.
	// Tests tweak it (interval, thresholds) before traffic starts.
	writerCfg writerConfig

	mu       sync.Mutex
	watchers map[*conn]struct{}
	conns    map[*conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// ServerMetrics is a snapshot of one Server's transport-level counters.
type ServerMetrics struct {
	ConnsActive   int   // connections currently open
	ConnsTotal    int64 // connections ever accepted
	Watchers      int   // connections subscribed to result pushes
	FramesRead    int64 // frames parsed off all connections
	FramesWritten int64 // frames written (responses + pushes)
	BadFrames     int64 // inbound frames that failed to parse
	ErrorsSent    int64 // "error" responses sent
	BytesWritten  int64 // frame bytes flushed onto sockets
	Flushes       int64 // coalesced write syscalls (FramesWritten/Flushes = batching factor)
}

// Metrics snapshots the transport counters.
func (s *Server) Metrics() ServerMetrics {
	s.mu.Lock()
	active, watchers := len(s.conns), len(s.watchers)
	s.mu.Unlock()
	return ServerMetrics{
		ConnsActive:   active,
		ConnsTotal:    s.connsTotal.Load(),
		Watchers:      watchers,
		FramesRead:    s.framesRead.Load(),
		FramesWritten: s.framesWritten.Load(),
		BadFrames:     s.badFrames.Load(),
		ErrorsSent:    s.errorsSent.Load(),
		BytesWritten:  s.bytesWritten.Load(),
		Flushes:       s.flushes.Load(),
	}
}

// SetFlushObserver installs a callback receiving every connection flush's
// shape: frames coalesced, bytes written, and write-syscall latency in
// seconds. The observability plane feeds histograms from it.
func (s *Server) SetFlushObserver(fn func(frames, bytes int, latencySeconds float64)) {
	if fn != nil {
		s.flushObs.Store(fn)
	}
}

// observeFlush is every connection writer's OnFlush hook: it aggregates
// the transport counters and forwards to the installed observer.
func (s *Server) observeFlush(frames, bytes int, elapsed time.Duration) {
	s.framesWritten.Add(int64(frames))
	s.bytesWritten.Add(int64(bytes))
	s.flushes.Add(1)
	if obs, _ := s.flushObs.Load().(func(int, int, float64)); obs != nil {
		obs(frames, bytes, elapsed.Seconds())
	}
}

type conn struct {
	c      net.Conn
	w      *connWriter   // coalesces every outbound frame (flush.go)
	scr    decodeScratch // reusable decode state; readLoop-only
	worker string        // non-empty once registered
	srv    *Server

	evMu  sync.Mutex
	evSub *event.Subscription // non-nil after watch-events
}

// Serve starts a region server listening on addr (e.g. "127.0.0.1:7341" or
// ":0" for an ephemeral port). The core server is constructed from opts
// with its result hook wired to watcher broadcast, and started.
func Serve(addr string, opts core.Options) (*Server, error) {
	var relay ResultRelay
	userHook := opts.OnResult
	opts.OnResult = func(r core.Result) {
		if userHook != nil {
			userHook(r)
		}
		relay.Publish(r)
	}
	cs := core.New(opts)
	cs.Start()
	s, err := ServeBackend(addr, cs, &relay)
	if err != nil {
		cs.Stop()
		return nil, err
	}
	s.core = cs
	return s, nil
}

// ServeBackend exposes an already-running backend (e.g. a federation
// coordinator) on addr. The relay must be the one whose Publish the caller
// installed as the backend's result hook; pass nil when no result pushes
// are needed.
func ServeBackend(addr string, b Backend, relay *ResultRelay) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		backend:  b,
		watchers: make(map[*conn]struct{}),
		conns:    make(map[*conn]struct{}),
	}
	s.idle.Store(int64(DefaultIdleTimeout))
	if relay != nil {
		relay.attach(func(r core.Result) {
			s.broadcast(Message{Type: "result", Result: toResultPayload(r)})
		})
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// SetIdleTimeout changes the per-connection read deadline (default
// DefaultIdleTimeout). Zero or negative disables it. Existing connections
// adopt the new value at their next frame.
func (s *Server) SetIdleTimeout(d time.Duration) { s.idle.Store(int64(d)) }

// Core exposes the underlying region server for single-region deployments
// created with Serve; it is nil under ServeBackend.
func (s *Server) Core() *core.Server { return s.core }

// Backend exposes the middleware this transport serves.
func (s *Server) Backend() Backend { return s.backend }

// Close stops accepting, drops every connection, and stops the core server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.c.Close()
	}
	s.wg.Wait()
	s.backend.Stop()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := &conn{c: nc, srv: s}
		wcfg := s.writerCfg
		wcfg.OnFlush = s.observeFlush
		c.w = newConnWriter(nc, wcfg)
		s.connsTotal.Add(1)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go c.readLoop()
	}
}

func (s *Server) broadcast(m Message) {
	s.mu.Lock()
	targets := make([]*conn, 0, len(s.watchers))
	for c := range s.watchers {
		targets = append(targets, c)
	}
	s.mu.Unlock()
	// Encode once, enqueue the same bytes everywhere: a broadcast to 10k
	// watchers costs one encode, and each connection's flusher coalesces
	// it with whatever else is in flight there.
	fb := encodeFrame(&m)
	for _, c := range targets {
		if err := c.w.enqueue(fb.b, false); err != nil {
			// A watcher that cannot be written to is dead or wedged.
			// Close its socket so the read loop errors out and teardown
			// removes it from s.watchers — a write error alone never
			// wakes the read side, and without this nudge a dead watcher
			// would stay subscribed until TCP happened to fail a read.
			c.c.Close()
		}
	}
	fb.release()
}

// send frames m and hands it to the connection's coalescer; the flusher
// performs the actual write. An error is the writer's sticky failure —
// the socket is already being torn down.
func (c *conn) send(m Message) error {
	fb := encodeFrame(&m)
	err := c.w.enqueue(fb.b, true) // inline: a reply should reach the waiting peer now
	fb.release()
	return err
}

// reply answers one request, echoing its sequence number so the client
// can correlate the response even after its own call timed out. Errors
// with a known class additionally carry a machine-readable Code so
// clients distinguish retryable from permanent failures.
func (c *conn) reply(seq uint64, err error) {
	if err != nil {
		c.srv.errorsSent.Add(1)
		c.send(Message{Type: "error", Seq: seq, Error: err.Error(), Code: errCode(err)})
		return
	}
	c.send(Message{Type: "ok", Seq: seq})
}

// errCode maps a backend error to its stable wire code ("" for errors
// with no defined class).
func errCode(err error) string {
	var rej *admission.RejectionError
	switch {
	case errors.As(err, &rej):
		return string(rej.Decision.Status)
	case errors.Is(err, engine.ErrQueueFull):
		return CodeQueueFull
	case errors.Is(err, taskq.ErrDuplicateTask):
		return CodeDuplicateTask
	case errors.Is(err, taskq.ErrPastDeadline):
		return CodePastDeadline
	}
	return ""
}

// requester identifies the submitting party for per-requester rate
// fairness: the registered worker id when the connection has one, else
// the remote address — one bucket per connection, which is the natural
// identity a TCP transport can actually attest.
func (c *conn) requester() string {
	if c.worker != "" {
		return c.worker
	}
	return c.c.RemoteAddr().String()
}

func (c *conn) readLoop() {
	defer c.srv.wg.Done()
	defer c.teardown()
	scanner := bufio.NewScanner(c.c)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for {
		// Refresh the idle deadline before every frame: a connection that
		// goes silent past it (no requests, no keepalive pings) fails the
		// next Scan, and teardown detaches its worker within a bounded
		// interval instead of holding it busy forever.
		if d := time.Duration(c.srv.idle.Load()); d > 0 {
			c.c.SetReadDeadline(time.Now().Add(d))
		} else {
			c.c.SetReadDeadline(time.Time{})
		}
		if !scanner.Scan() {
			return // EOF, error, or idle deadline
		}
		c.srv.framesRead.Add(1)
		m, err := c.scr.decode(scanner.Bytes())
		if err != nil {
			c.srv.badFrames.Add(1)
			c.srv.errorsSent.Add(1)
			c.send(Message{Type: "error", Seq: m.Seq, Error: "bad message: " + err.Error()})
			continue
		}
		c.handle(m)
	}
}

func (c *conn) handle(m *Message) {
	s := c.srv
	switch m.Type {
	case "register":
		if m.Worker == "" {
			c.reply(m.Seq, errors.New("register: missing worker id"))
			return
		}
		feed, err := s.backend.RegisterWorker(m.Worker, region.Point{Lat: m.Lat, Lon: m.Lon})
		if errors.Is(err, profile.ErrDuplicateWorker) {
			// A worker restored from a profile snapshot (or one whose old
			// connection died without teardown) reconnects under its id and
			// keeps its learned history; a second *live* connection is
			// still rejected by ReconnectWorker.
			feed, err = s.backend.ReconnectWorker(m.Worker)
			if err == nil {
				if p, ok := s.backend.Worker(m.Worker); ok {
					if loc := (region.Point{Lat: m.Lat, Lon: m.Lon}); loc.Valid() {
						p.SetLocation(loc)
					}
				}
			}
		}
		if err != nil {
			c.reply(m.Seq, err)
			return
		}
		c.worker = m.Worker
		c.reply(m.Seq, nil)
		// Forward assignments until the feed closes (deregistration or
		// server stop).
		//lint:ignore nakedgoroutine the forwarder's lifetime is the feed channel: the backend closes it on deregister/detach/stop
		go func() {
			for a := range feed {
				if err := c.send(Message{Type: "assignment", Assignment: toAssignmentPayload(a, time.Now())}); err != nil {
					c.c.Close()
					return
				}
			}
		}()

	case "deregister":
		if c.worker == "" {
			c.reply(m.Seq, errors.New("deregister: connection has no registered worker"))
			return
		}
		worker := c.worker
		c.worker = "" // teardown must not deregister twice
		c.reply(m.Seq, s.backend.DeregisterWorker(worker))

	case "location":
		// Guard before touching the backend: probing Worker("") on an
		// unregistered connection sent a nonsense lookup to the backend
		// (and through a federation, a routing miss) on every bad request.
		if c.worker == "" {
			c.reply(m.Seq, errors.New("location: connection has no registered worker"))
			return
		}
		p, ok := s.backend.Worker(c.worker)
		if !ok {
			c.reply(m.Seq, errors.New("location: connection has no registered worker"))
			return
		}
		loc := region.Point{Lat: m.Lat, Lon: m.Lon}
		if !loc.Valid() {
			c.reply(m.Seq, fmt.Errorf("location: invalid coordinates %v", loc))
			return
		}
		p.SetLocation(loc)
		c.reply(m.Seq, nil)

	case "available":
		if c.worker == "" {
			c.reply(m.Seq, errors.New("available: connection has no registered worker"))
			return
		}
		p, ok := s.backend.Worker(c.worker)
		if !ok {
			c.reply(m.Seq, errors.New("available: connection has no registered worker"))
			return
		}
		if m.Available == nil {
			c.reply(m.Seq, errors.New("available: missing value"))
			return
		}
		p.SetAvailable(*m.Available)
		c.reply(m.Seq, nil)

	case "submit":
		if m.Task == nil || m.Task.ID == "" {
			c.reply(m.Seq, errors.New("submit: missing task"))
			return
		}
		//lint:ignore clocktaint the live server stamps real arrival time on submitted tasks by definition; replayable runs go through the sim harness
		t := m.Task.Task(time.Now())
		// Backends with an admission plane run the gates and the reply
		// carries the verdict: ok frames the probability, error frames the
		// typed status plus a retry-after hint. Plain backends (admission
		// off, federations) answer as before — the Admission field simply
		// never appears, which is what keeps old clients working.
		type admissionBackend interface {
			SubmitFrom(requester string, t taskq.Task) (admission.Decision, error)
			Admission() *admission.Controller
		}
		if ab, ok := s.backend.(admissionBackend); ok && ab.Admission() != nil {
			d, err := ab.SubmitFrom(c.requester(), t)
			if err != nil {
				c.srv.errorsSent.Add(1)
				msg := Message{Type: "error", Seq: m.Seq, Error: err.Error(), Code: errCode(err)}
				if !d.Admitted() {
					msg.Admission = toAdmissionPayload(d)
				}
				c.send(msg)
				return
			}
			c.send(Message{Type: "ok", Seq: m.Seq, Admission: toAdmissionPayload(d)})
			return
		}
		c.reply(m.Seq, s.backend.Submit(t))

	case "complete":
		if m.TaskID == "" || m.Worker == "" {
			c.reply(m.Seq, errors.New("complete: missing task or worker id"))
			return
		}
		_, err := s.backend.Complete(m.TaskID, m.Worker, m.Answer)
		c.reply(m.Seq, err)

	case "feedback":
		if m.TaskID == "" || m.Positive == nil {
			c.reply(m.Seq, errors.New("feedback: missing task id or verdict"))
			return
		}
		c.reply(m.Seq, s.backend.Feedback(m.TaskID, *m.Positive))

	case "watch":
		s.mu.Lock()
		s.watchers[c] = struct{}{}
		s.mu.Unlock()
		c.reply(m.Seq, nil)

	case "task":
		// Task-status query: how requesters reconcile after a reconnect,
		// since result pushes during the outage are gone for good.
		if m.TaskID == "" {
			c.reply(m.Seq, errors.New("task: missing task id"))
			return
		}
		type statusBackend interface {
			TaskStatus(taskID string) (core.TaskStatus, bool)
		}
		sb, ok := s.backend.(statusBackend)
		if !ok {
			c.reply(m.Seq, errors.New("task: backend does not report task status"))
			return
		}
		payload := &TaskStatusPayload{TaskID: m.TaskID, State: "unknown"}
		if st, ok := sb.TaskStatus(m.TaskID); ok {
			payload.State = st.State.String()
			payload.Worker = st.Worker
			payload.MetDeadline = st.MetDeadline
		}
		c.send(Message{Type: "ok", Seq: m.Seq, Status: payload})

	case "watch-events":
		// Subscribe this connection to the engine's lifecycle event spine.
		// With a TaskID the stream narrows to that task's timeline
		// (submit→assign→…→terminal); without one every lifecycle event
		// flows. The subscription is bounded and lossy by design: a client
		// that cannot keep up loses frames (counted on the bus), never
		// stalls the engine.
		type eventBackend interface {
			Events() *event.Bus
		}
		eb, ok := s.backend.(eventBackend)
		if !ok {
			c.reply(m.Seq, errors.New("watch-events: backend does not expose the event spine"))
			return
		}
		taskID := m.TaskID
		filter := func(ev event.Event) bool {
			if !ev.Kind.Lifecycle() {
				return false
			}
			return taskID == "" || ev.Task == taskID
		}
		sub := eb.Events().Subscribe(eventWatchDepth, filter)
		c.evMu.Lock()
		prev := c.evSub
		c.evSub = sub
		c.evMu.Unlock()
		if prev != nil {
			prev.Close() // re-subscribe replaces the old stream
		}
		c.reply(m.Seq, nil)
		// Forward until the subscription closes (teardown or replacement).
		//lint:ignore nakedgoroutine the forwarder's lifetime is the subscription channel: teardown or a replacing watch-events closes it
		go func() {
			for ev := range sub.C() {
				if err := c.send(Message{Type: "event", Event: toEventPayload(ev)}); err != nil {
					c.c.Close()
					return
				}
			}
		}()

	case "regions":
		// Multi-region backends list per-region counters; a single-region
		// server reports itself as "all".
		type regionLister interface {
			Regions() []string
			RegionStats(string) (core.Stats, bool)
		}
		var regions []RegionStatsPayload
		if rl, ok := s.backend.(regionLister); ok {
			ids := rl.Regions()
			sort.Strings(ids)
			for _, id := range ids {
				if st, ok := rl.RegionStats(id); ok {
					regions = append(regions, RegionStatsPayload{Region: id, Stats: *toStatsPayload(st)})
				}
			}
		} else {
			regions = []RegionStatsPayload{{Region: "all", Stats: *toStatsPayload(s.backend.Stats())}}
		}
		c.send(Message{Type: "ok", Seq: m.Seq, Regions: regions})

	case "ping":
		// Keepalive: refreshes the server's idle deadline, lets clients
		// detect dead connections through NATs, and lets operators probe
		// liveness with netcat.
		c.reply(m.Seq, nil)

	case "stats":
		c.send(Message{Type: "ok", Seq: m.Seq, Stats: toStatsPayload(s.backend.Stats())})

	default:
		c.reply(m.Seq, errors.New("unknown message type "+m.Type))
	}
}

func (c *conn) teardown() {
	s := c.srv
	c.evMu.Lock()
	if c.evSub != nil {
		c.evSub.Close() // unblocks the event forwarder goroutine
		c.evSub = nil
	}
	c.evMu.Unlock()
	s.mu.Lock()
	delete(s.watchers, c)
	delete(s.conns, c)
	closed := s.closed
	s.mu.Unlock()
	// Flush-on-close before the socket drops: a reply enqueued just before
	// the peer's EOF (deregister, a final stats answer) still reaches a
	// peer that is shutting down write-first. The final flush is bounded,
	// so a wedged peer cannot stall teardown.
	c.w.close()
	c.c.Close()
	if c.worker != "" && !closed {
		// A vanished worker's held task goes back to the pool; the profile
		// survives the disconnect so a later register reconnects with its
		// learned history intact.
		s.backend.DetachWorker(c.worker)
	}
}

// ErrClosed is returned by client operations after Close.
var ErrClosed = errors.New("wire: connection closed")

var _ io.Closer = (*Server)(nil)
