package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"react/internal/core"
	"react/internal/profile"
	"react/internal/region"
	"react/internal/taskq"
)

// Backend is the middleware surface the TCP transport serves: implemented
// by *core.Server (one region) and *federation.Coordinator (a fleet of
// region servers routed by geography).
type Backend interface {
	RegisterWorker(id string, loc region.Point) (<-chan core.Assignment, error)
	ReconnectWorker(id string) (<-chan core.Assignment, error)
	DeregisterWorker(id string) error
	DetachWorker(id string) error
	Worker(id string) (*profile.Profile, bool)
	Submit(t taskq.Task) error
	Complete(taskID, workerID, answer string) (core.Result, error)
	Feedback(taskID string, positive bool) error
	Stats() core.Stats
	Stop()
}

// ResultRelay forwards backend results to a transport installed later —
// the backend is constructed (with its OnResult hook) before the transport
// exists. Install relay.Publish as the backend's result hook, then hand the
// relay to ServeBackend.
type ResultRelay struct {
	mu sync.Mutex
	fn func(core.Result)
}

// Publish forwards a result to the attached transport (drops it when none
// is attached yet).
func (r *ResultRelay) Publish(res core.Result) {
	r.mu.Lock()
	fn := r.fn
	r.mu.Unlock()
	if fn != nil {
		fn(res)
	}
}

func (r *ResultRelay) attach(fn func(core.Result)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fn = fn
}

// Server exposes a Backend over TCP.
type Server struct {
	backend Backend
	core    *core.Server // non-nil only for single-region Serve
	ln      net.Listener

	mu       sync.Mutex
	watchers map[*conn]struct{}
	conns    map[*conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

type conn struct {
	c      net.Conn
	enc    *json.Encoder
	wmu    sync.Mutex
	worker string // non-empty once registered
	srv    *Server
}

// Serve starts a region server listening on addr (e.g. "127.0.0.1:7341" or
// ":0" for an ephemeral port). The core server is constructed from opts
// with its result hook wired to watcher broadcast, and started.
func Serve(addr string, opts core.Options) (*Server, error) {
	var relay ResultRelay
	userHook := opts.OnResult
	opts.OnResult = func(r core.Result) {
		if userHook != nil {
			userHook(r)
		}
		relay.Publish(r)
	}
	cs := core.New(opts)
	cs.Start()
	s, err := ServeBackend(addr, cs, &relay)
	if err != nil {
		cs.Stop()
		return nil, err
	}
	s.core = cs
	return s, nil
}

// ServeBackend exposes an already-running backend (e.g. a federation
// coordinator) on addr. The relay must be the one whose Publish the caller
// installed as the backend's result hook; pass nil when no result pushes
// are needed.
func ServeBackend(addr string, b Backend, relay *ResultRelay) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		backend:  b,
		watchers: make(map[*conn]struct{}),
		conns:    make(map[*conn]struct{}),
	}
	if relay != nil {
		relay.attach(func(r core.Result) {
			s.broadcast(Message{Type: "result", Result: toResultPayload(r)})
		})
	}
	s.ln = ln
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr reports the listening address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Core exposes the underlying region server for single-region deployments
// created with Serve; it is nil under ServeBackend.
func (s *Server) Core() *core.Server { return s.core }

// Backend exposes the middleware this transport serves.
func (s *Server) Backend() Backend { return s.backend }

// Close stops accepting, drops every connection, and stops the core server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	err := s.ln.Close()
	for _, c := range conns {
		c.c.Close()
	}
	s.wg.Wait()
	s.backend.Stop()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		nc, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		c := &conn{c: nc, enc: json.NewEncoder(nc), srv: s}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go c.readLoop()
	}
}

func (s *Server) broadcast(m Message) {
	s.mu.Lock()
	targets := make([]*conn, 0, len(s.watchers))
	for c := range s.watchers {
		targets = append(targets, c)
	}
	s.mu.Unlock()
	for _, c := range targets {
		c.send(m) // send errors detach the conn via its read loop
	}
}

func (c *conn) send(m Message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	c.c.SetWriteDeadline(time.Now().Add(10 * time.Second))
	return c.enc.Encode(m)
}

func (c *conn) reply(err error) {
	if err != nil {
		c.send(Message{Type: "error", Error: err.Error()})
		return
	}
	c.send(Message{Type: "ok"})
}

func (c *conn) readLoop() {
	defer c.srv.wg.Done()
	defer c.teardown()
	scanner := bufio.NewScanner(c.c)
	scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for scanner.Scan() {
		var m Message
		if err := json.Unmarshal(scanner.Bytes(), &m); err != nil {
			c.send(Message{Type: "error", Error: "bad message: " + err.Error()})
			continue
		}
		c.handle(m)
	}
}

func (c *conn) handle(m Message) {
	s := c.srv
	switch m.Type {
	case "register":
		if m.Worker == "" {
			c.reply(errors.New("register: missing worker id"))
			return
		}
		feed, err := s.backend.RegisterWorker(m.Worker, region.Point{Lat: m.Lat, Lon: m.Lon})
		if errors.Is(err, profile.ErrDuplicateWorker) {
			// A worker restored from a profile snapshot (or one whose old
			// connection died without teardown) reconnects under its id and
			// keeps its learned history; a second *live* connection is
			// still rejected by ReconnectWorker.
			feed, err = s.backend.ReconnectWorker(m.Worker)
			if err == nil {
				if p, ok := s.backend.Worker(m.Worker); ok {
					if loc := (region.Point{Lat: m.Lat, Lon: m.Lon}); loc.Valid() {
						p.SetLocation(loc)
					}
				}
			}
		}
		if err != nil {
			c.reply(err)
			return
		}
		c.worker = m.Worker
		c.reply(nil)
		// Forward assignments until the feed closes (deregistration or
		// server stop).
		//lint:ignore nakedgoroutine the forwarder's lifetime is the feed channel: the backend closes it on deregister/detach/stop
		go func() {
			for a := range feed {
				if err := c.send(Message{Type: "assignment", Assignment: toAssignmentPayload(a, time.Now())}); err != nil {
					c.c.Close()
					return
				}
			}
		}()

	case "deregister":
		if c.worker == "" {
			c.reply(errors.New("deregister: connection has no registered worker"))
			return
		}
		worker := c.worker
		c.worker = "" // teardown must not deregister twice
		c.reply(s.backend.DeregisterWorker(worker))

	case "location":
		p, ok := s.backend.Worker(c.worker)
		if c.worker == "" || !ok {
			c.reply(errors.New("location: connection has no registered worker"))
			return
		}
		loc := region.Point{Lat: m.Lat, Lon: m.Lon}
		if !loc.Valid() {
			c.reply(fmt.Errorf("location: invalid coordinates %v", loc))
			return
		}
		p.SetLocation(loc)
		c.reply(nil)

	case "available":
		p, ok := s.backend.Worker(c.worker)
		if c.worker == "" || !ok {
			c.reply(errors.New("available: connection has no registered worker"))
			return
		}
		if m.Available == nil {
			c.reply(errors.New("available: missing value"))
			return
		}
		p.SetAvailable(*m.Available)
		c.reply(nil)

	case "submit":
		if m.Task == nil || m.Task.ID == "" {
			c.reply(errors.New("submit: missing task"))
			return
		}
		c.reply(s.backend.Submit(m.Task.Task(time.Now())))

	case "complete":
		if m.TaskID == "" || m.Worker == "" {
			c.reply(errors.New("complete: missing task or worker id"))
			return
		}
		_, err := s.backend.Complete(m.TaskID, m.Worker, m.Answer)
		c.reply(err)

	case "feedback":
		if m.TaskID == "" || m.Positive == nil {
			c.reply(errors.New("feedback: missing task id or verdict"))
			return
		}
		c.reply(s.backend.Feedback(m.TaskID, *m.Positive))

	case "watch":
		s.mu.Lock()
		s.watchers[c] = struct{}{}
		s.mu.Unlock()
		c.reply(nil)

	case "regions":
		// Multi-region backends list per-region counters; a single-region
		// server reports itself as "all".
		type regionLister interface {
			Regions() []string
			RegionStats(string) (core.Stats, bool)
		}
		var regions []RegionStatsPayload
		if rl, ok := s.backend.(regionLister); ok {
			ids := rl.Regions()
			sort.Strings(ids)
			for _, id := range ids {
				if st, ok := rl.RegionStats(id); ok {
					regions = append(regions, RegionStatsPayload{Region: id, Stats: *toStatsPayload(st)})
				}
			}
		} else {
			regions = []RegionStatsPayload{{Region: "all", Stats: *toStatsPayload(s.backend.Stats())}}
		}
		c.send(Message{Type: "ok", Regions: regions})

	case "ping":
		// Keepalive: lets clients detect dead connections through NATs and
		// lets operators probe liveness with netcat.
		c.reply(nil)

	case "stats":
		c.send(Message{Type: "ok", Stats: toStatsPayload(s.backend.Stats())})

	default:
		c.reply(errors.New("unknown message type " + m.Type))
	}
}

func (c *conn) teardown() {
	s := c.srv
	s.mu.Lock()
	delete(s.watchers, c)
	delete(s.conns, c)
	closed := s.closed
	s.mu.Unlock()
	c.c.Close()
	if c.worker != "" && !closed {
		// A vanished worker's held task goes back to the pool; the profile
		// survives the disconnect so a later register reconnects with its
		// learned history intact.
		s.backend.DetachWorker(c.worker)
	}
}

// ErrClosed is returned by client operations after Close.
var ErrClosed = errors.New("wire: connection closed")

var _ io.Closer = (*Server)(nil)
