package wire

import (
	"runtime"
	"testing"
	"time"
)

// TestPushQueueDeliversInOrder pins the basic contract: everything pushed
// is delivered, in push order, and the accounting sees it.
func TestPushQueueDeliversInOrder(t *testing.T) {
	q := newPushQueue[int](0, nil)
	const n = 100
	for i := 0; i < n; i++ {
		q.push(i)
	}
	for i := 0; i < n; i++ {
		select {
		case v := <-q.out:
			if v != i {
				t.Fatalf("delivery %d: got %d", i, v)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("delivery %d never arrived", i)
		}
	}
	_, hw, pushed, overflowed := q.depthStats()
	if pushed != n || hw == 0 || overflowed {
		t.Fatalf("stats: pushed=%d highWater=%d overflowed=%v", pushed, hw, overflowed)
	}
	q.close()
}

// TestPushQueueOverflowFiresOnce pins the overflow contract: one callback,
// however far past max the queue grows.
func TestPushQueueOverflowFiresOnce(t *testing.T) {
	fired := 0
	q := newPushQueue[int](4, func() { fired++ })
	for i := 0; i < 20; i++ {
		q.push(i)
	}
	if fired != 1 {
		t.Fatalf("overflow fired %d times, want 1", fired)
	}
	q.close()
}

// TestPushQueueNothingAfterClose is the regression test for the
// close-race: the pump's delivery select — `case q.out <- v` vs
// `case <-q.dead` — picks randomly when both are ready, and a send the
// pump had already parked on could still rendezvous with a later
// consumer. Either way a receiver could get one more item after close()
// returned, violating the documented "delivers nothing further" contract.
// The fix checks dead with priority before offering an item and retracts
// a parked send from close() itself.
//
// The race needs the pump to be holding an item when close lands, so we
// run many iterations with jittered scheduling; before the fix a few
// percent of iterations received an item here.
func TestPushQueueNothingAfterClose(t *testing.T) {
	const iterations = 500
	for i := 0; i < iterations; i++ {
		q := newPushQueue[int](0, nil)
		q.push(1)
		// Vary how far the pump gets — from "still waking up" to "parked
		// in the send" — before close lands.
		switch i % 3 {
		case 1:
			runtime.Gosched()
		case 2:
			time.Sleep(50 * time.Microsecond)
		}
		q.close()
		// close() has returned: a consumer arriving now must observe only
		// the closed channel, never the undelivered item.
		select {
		case v, ok := <-q.out:
			if ok {
				t.Fatalf("iteration %d: received %d after close()", i, v)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("iteration %d: out never closed", i)
		}
	}
}

// TestPushQueueCloseIdempotent pins that double close is safe and that
// pushes after close are discarded without waking anything.
func TestPushQueueCloseIdempotent(t *testing.T) {
	q := newPushQueue[int](0, nil)
	q.close()
	q.close()
	q.push(7)
	if _, ok := <-q.out; ok {
		t.Fatal("received an item pushed after close")
	}
	if depth, _, _, _ := q.depthStats(); depth != 0 {
		t.Fatalf("push after close buffered an item (depth %d)", depth)
	}
}
