package event_test

// The per-task total-order property test: lifecycle events are published
// under the owning shard's mutex, so every consumer must observe each
// task's timeline as a legal state machine with strictly increasing Seq,
// no matter how many goroutines mutate different tasks concurrently.
// Run with -race: the tap below is the concurrency probe.

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"react/internal/clock"
	"react/internal/engine"
	"react/internal/event"
	"react/internal/matching"
	"react/internal/region"
	"react/internal/schedule"
	"react/internal/taskq"
)

// timelineChecker is a bus tap that validates per-task ordering as events
// arrive. Its own mutex stands in for whatever synchronization a real
// consumer uses; the ordering property must hold regardless.
type timelineChecker struct {
	mu      sync.Mutex
	lastSeq map[string]uint64
	state   map[string]event.Kind // last lifecycle kind per task
	errs    []string
}

func newTimelineChecker() *timelineChecker {
	return &timelineChecker{
		lastSeq: make(map[string]uint64),
		state:   make(map[string]event.Kind),
	}
}

func (tc *timelineChecker) failf(format string, args ...any) {
	tc.errs = append(tc.errs, fmt.Sprintf(format, args...))
}

// legal returns whether `next` may follow `prev` in one task's timeline.
func legal(prev, next event.Kind) bool {
	switch next {
	case event.KindSubmit:
		return prev == 0 // first event, exactly once
	case event.KindAssign:
		return prev == event.KindSubmit || prev == event.KindRevoke
	case event.KindRevoke:
		return prev == event.KindAssign
	case event.KindComplete:
		return prev == event.KindAssign
	case event.KindExpire:
		return prev == event.KindSubmit || prev == event.KindAssign || prev == event.KindRevoke
	case event.KindForget:
		return prev.Terminal() && prev != event.KindForget
	}
	return false
}

func (tc *timelineChecker) handle(ev event.Event) {
	if !ev.Kind.Lifecycle() {
		return
	}
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if last := tc.lastSeq[ev.Task]; ev.Seq <= last {
		tc.failf("task %s: seq %d after %d (%v)", ev.Task, ev.Seq, last, ev.Kind)
	}
	tc.lastSeq[ev.Task] = ev.Seq
	prev := tc.state[ev.Task]
	if !legal(prev, ev.Kind) {
		tc.failf("task %s: illegal transition %v→%v (seq %d)", ev.Task, prev, ev.Kind, ev.Seq)
	}
	tc.state[ev.Task] = ev.Kind
}

func TestPerTaskTotalOrderUnderConcurrency(t *testing.T) {
	const (
		workers      = 8
		tasksPerGoro = 40
		goroutines   = 6
	)
	clk := clock.NewVirtual(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	tc := newTimelineChecker()

	var eng *engine.Engine
	eng = engine.New(engine.Config{
		Clock:    clk,
		Matcher:  matching.Greedy{},
		Schedule: schedule.Config{BatchBound: 64, BatchPeriod: time.Second},
		Shards:   4,
	}, engine.Hooks{})
	eng.Events().Tap(tc.handle)

	for w := 0; w < workers; w++ {
		if _, err := eng.AttachWorker(fmt.Sprintf("w%d", w), region.Point{Lat: 38, Lon: 23.7}); err != nil {
			t.Fatal(err)
		}
	}

	// Goroutines submit distinct task sets, run scheduling rounds, complete
	// what got assigned, and churn workers — all interleaved across shards.
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < tasksPerGoro; i++ {
				id := fmt.Sprintf("g%d-t%d", g, i)
				err := eng.Submit(taskq.Task{
					ID:       id,
					Category: "photo",
					Location: region.Point{Lat: 38, Lon: 23.7},
					Deadline: clk.Now().Add(time.Hour),
					Reward:   1,
				})
				if err != nil {
					t.Errorf("submit %s: %v", id, err)
					return
				}
				eng.TryBatch()
				// Complete whatever this task got; "not assigned / wrong
				// worker" errors are expected interleavings, not failures.
				if rec, ok := eng.Tasks().Get(id); ok && rec.Worker != "" {
					_, _, _ = eng.Complete(id, rec.Worker, "a")
				}
				if i%16 == 7 {
					// Churn a worker: detach revokes its held task (if any),
					// exercising the Revoke path concurrently with batches.
					wid := fmt.Sprintf("w%d", (g+i)%workers)
					_ = eng.DetachWorker(wid)
					_, _ = eng.ReattachWorker(wid)
				}
			}
		}(g)
	}
	wg.Wait()

	// Drain the pipeline: keep batching+completing until nothing is held,
	// then expire the rest and garbage-collect every terminal record.
	for pass := 0; pass < 2*goroutines*tasksPerGoro; pass++ {
		eng.TryBatch()
		progressed := false
		for g := 0; g < goroutines; g++ {
			for i := 0; i < tasksPerGoro; i++ {
				id := fmt.Sprintf("g%d-t%d", g, i)
				if rec, ok := eng.Tasks().Get(id); ok && rec.Status == taskq.Assigned {
					if _, _, err := eng.Complete(id, rec.Worker, "a"); err == nil {
						progressed = true
					}
				}
			}
		}
		if !progressed {
			break
		}
	}
	clk.Advance(2 * time.Hour)
	eng.ExpireAllDue()
	eng.Tasks().ForgetTerminatedBefore(clk.Now().Add(time.Hour))

	tc.mu.Lock()
	defer tc.mu.Unlock()
	for _, msg := range tc.errs {
		t.Error(msg)
	}
	total := goroutines * tasksPerGoro
	if len(tc.state) != total {
		t.Errorf("saw %d tasks, want %d", len(tc.state), total)
	}
	for id, last := range tc.state {
		if last != event.KindForget {
			t.Errorf("task %s ended on %v, want forget", id, last)
		}
	}
	if st := eng.Events().Stats(); st.Published == 0 {
		t.Error("no events published")
	}
}
