// Package event is REACT's typed task-lifecycle event spine: one Event
// vocabulary for every mutation a task undergoes (submit → assign →
// revoke/reassign → complete/expire → forget, §III.A) plus the per-round
// scheduling summary, fanned out from a single Bus that every consumer —
// the write-ahead journal, the trace recorder, the observability
// collectors, the wire protocol's watch-events stream — shares.
//
// Ordering contract: task-lifecycle events are published by the engine's
// taskq sink while the task's shard mutex is held, so no second mutation
// of the same task can begin until the first has been sequenced. That
// gives every consumer a per-task total order for free. Seq is a single
// bus-wide counter: it is strictly increasing per task, but events of
// *different* tasks (striped onto different shards) may be published
// concurrently, so Seq is not a global wall-clock order across tasks.
//
// Delivery contract: taps (Bus.Tap) are synchronous and lossless — they
// run inside the publishing call, under the shard lock for lifecycle
// events, and therefore must be fast, non-blocking, and must never call
// back into the engine. Subscriptions (Bus.Subscribe) are asynchronous
// and bounded: publishing never blocks on a slow subscriber; events that
// do not fit the buffer are dropped and counted. Consumers that cannot
// tolerate loss (the journal) tap; consumers that tolerate gaps in
// exchange for isolation (sockets, loggers) subscribe. docs/EVENTS.md
// has the full contract.
package event

import (
	"fmt"
	"time"

	"react/internal/taskq"
)

// Kind classifies a spine event.
type Kind uint8

// The event vocabulary. The task-lifecycle kinds (Submit through Forget)
// mirror taskq.EventKind one-to-one and carry the full post-mutation
// record; Batch summarizes one scheduling round and carries BatchStats
// instead.
const (
	KindSubmit   Kind = iota + 1 // task entered the repository
	KindAssign                   // scheduler bound the task to a worker
	KindRevoke                   // assignment taken back (see Event.Cause)
	KindComplete                 // worker delivered an answer
	KindExpire                   // deadline passed; task left unserved
	KindForget                   // terminal record garbage-collected
	KindBatch                    // one scheduling round ran
)

// String names the kind for logs, CSV, and the wire protocol.
func (k Kind) String() string {
	switch k {
	case KindSubmit:
		return "submit"
	case KindAssign:
		return "assign"
	case KindRevoke:
		return "revoke"
	case KindComplete:
		return "complete"
	case KindExpire:
		return "expire"
	case KindForget:
		return "forget"
	case KindBatch:
		return "batch"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Lifecycle reports whether the kind narrates one task's lifecycle (as
// opposed to a scheduling-round summary).
func (k Kind) Lifecycle() bool { return k >= KindSubmit && k <= KindForget }

// Terminal reports whether the kind ends a task's timeline: after a
// Complete, Expire, or Forget no further lifecycle event for that task
// can follow (Forget only ever trails a terminal state).
func (k Kind) Terminal() bool {
	return k == KindComplete || k == KindExpire || k == KindForget
}

// BatchStats describes one completed scheduling round (KindBatch).
type BatchStats struct {
	Workers      int           // available workers in the snapshot
	Tasks        int           // unassigned tasks in the snapshot
	Edges        int           // edges instantiated by Eq. 3 construction
	PrunedProb   int           // edges dropped by the probability bound
	PrunedReward int           // edges dropped by the reward-range filter
	Cycles       int           // matcher iterations consumed
	Assignments  int           // bindings the matcher proposed
	Elapsed      time.Duration // measured matcher wall time
	Latency      time.Duration // modelled latency charged via Config.Defer (0 live)
}

// Event is one spine event. Lifecycle kinds fill Task/Worker/Record;
// KindBatch fills Batch and leaves the task fields zero.
type Event struct {
	// Seq is stamped by the bus at publish time: strictly increasing,
	// totally ordered per task (see the package ordering contract).
	Seq  uint64
	Kind Kind
	// Task is the subject task's id ("" for KindBatch).
	Task string
	// Worker is the worker involved: the assignee on Assign, the holder
	// whose binding was taken on Revoke, the answerer on Complete, the
	// last holder (possibly "") on Expire/Forget.
	Worker string
	// At is the instant the mutation took effect, read from the engine's
	// injected clock — identical between a live run and a virtual-clock
	// replay of the same schedule.
	At time.Time
	// Cause says why the event happened (the taskq.Cause* vocabulary):
	// which component revoked an assignment, whether a forget was
	// retention GC or explicit.
	Cause string
	// Prob is the Eq. 2 completion probability that triggered a
	// CauseEq2 revocation (0 otherwise).
	Prob float64
	// Record is the full post-mutation task record (for KindForget, as it
	// stood just before removal) — the same physiological payload the
	// journal persists, so any consumer can derive state without replay.
	Record taskq.Record
	// Batch is non-nil only for KindBatch.
	Batch *BatchStats
}

// FromTask lifts a taskq sink event into the spine vocabulary. Seq is
// left zero; Bus.Publish stamps it.
func FromTask(ev taskq.Event) Event {
	var k Kind
	switch ev.Kind {
	case taskq.EvSubmit:
		k = KindSubmit
	case taskq.EvAssign:
		k = KindAssign
	case taskq.EvUnassign:
		k = KindRevoke
	case taskq.EvComplete:
		k = KindComplete
	case taskq.EvExpire:
		k = KindExpire
	case taskq.EvForget:
		k = KindForget
	}
	return Event{
		Kind:   k,
		Task:   ev.Record.Task.ID,
		Worker: ev.Worker,
		At:     ev.At,
		Cause:  ev.Cause,
		Prob:   ev.Prob,
		Record: ev.Record,
	}
}
