package event

import (
	"sync"
	"sync/atomic"
)

// Bus fans one publisher's events out to any number of consumers, in two
// tiers with opposite guarantees:
//
//   - Taps are synchronous and lossless. They run inside Publish — for
//     lifecycle events, under the publishing task's shard mutex — so
//     they see every event in per-task order with no buffer in between.
//     The price is the publisher's lock: a tap must be fast, must not
//     block, and must not call back into the engine.
//   - Subscriptions are asynchronous and bounded. Publish performs a
//     non-blocking send into each subscription's buffer; a full buffer
//     drops the event and bumps the drop counters. A wedged socket or a
//     slow logger can therefore never stall the scheduler.
//
// Publish is safe for concurrent use (shards publish independently).
// Install taps before traffic starts: Tap is safe to call concurrently
// with Publish, but events published before the tap landed are gone.
type Bus struct {
	seq     atomic.Uint64
	dropped atomic.Uint64

	// taps holds an immutable []func(Event); Tap replaces the slice
	// copy-on-write under tapMu so Publish reads it with one atomic load
	// and never takes a lock on the hot path.
	tapMu sync.Mutex
	taps  atomic.Value

	subMu sync.Mutex
	subs  map[*Subscription]struct{}
}

// NewBus creates an empty bus.
func NewBus() *Bus {
	return &Bus{subs: make(map[*Subscription]struct{})}
}

// Stats is a snapshot of the bus's fan-out health.
type Stats struct {
	Published   uint64 // events ever published
	Dropped     uint64 // events dropped across all subscriptions
	Subscribers int    // open subscriptions
	Taps        int    // installed taps
}

// Stats snapshots the counters.
func (b *Bus) Stats() Stats {
	taps, _ := b.taps.Load().([]func(Event))
	b.subMu.Lock()
	subs := len(b.subs)
	b.subMu.Unlock()
	return Stats{
		Published:   b.seq.Load(),
		Dropped:     b.dropped.Load(),
		Subscribers: subs,
		Taps:        len(taps),
	}
}

// Tap installs a synchronous, lossless observer (see the Bus contract).
// Taps cannot be removed; they live as long as the bus.
func (b *Bus) Tap(fn func(Event)) {
	b.tapMu.Lock()
	defer b.tapMu.Unlock()
	old, _ := b.taps.Load().([]func(Event))
	next := make([]func(Event), len(old)+1)
	copy(next, old)
	next[len(old)] = fn
	b.taps.Store(next)
}

// Subscribe opens an asynchronous, bounded subscription. buffer is the
// channel depth (minimum 1); filter, when non-nil, is evaluated at
// publish time and events it rejects are skipped without counting as
// drops. Close the subscription to release it.
func (b *Bus) Subscribe(buffer int, filter func(Event) bool) *Subscription {
	if buffer < 1 {
		buffer = 1
	}
	s := &Subscription{bus: b, ch: make(chan Event, buffer), filter: filter}
	b.subMu.Lock()
	b.subs[s] = struct{}{}
	b.subMu.Unlock()
	return s
}

// Publish stamps ev's Seq and fans it out: taps synchronously, then a
// non-blocking send to every subscription. It never blocks. The stamped
// event is returned for publishers that need the sequence number.
func (b *Bus) Publish(ev Event) Event {
	ev.Seq = b.seq.Add(1)
	if taps, _ := b.taps.Load().([]func(Event)); len(taps) > 0 {
		for _, fn := range taps {
			fn(ev)
		}
	}
	b.subMu.Lock()
	for s := range b.subs {
		s.offer(ev)
	}
	b.subMu.Unlock()
	return ev
}

// Subscription is one bounded, asynchronous event consumer. Read events
// from C; when the buffer overflows, events are dropped (counted by
// Dropped) rather than blocking the publisher.
type Subscription struct {
	bus     *Bus
	ch      chan Event
	filter  func(Event) bool
	dropped atomic.Uint64

	mu     sync.Mutex // serializes offer vs Close so no send hits a closed channel
	closed bool
}

// C is the event stream. It is closed by Close; a range over it
// terminates when the subscription does.
func (s *Subscription) C() <-chan Event { return s.ch }

// Dropped reports how many events this subscription lost to a full
// buffer since it was opened.
func (s *Subscription) Dropped() uint64 { return s.dropped.Load() }

// offer delivers ev without blocking; called by the bus with subMu held.
func (s *Subscription) offer(ev Event) {
	if s.filter != nil && !s.filter(ev) {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case s.ch <- ev:
	default:
		s.dropped.Add(1)
		s.bus.dropped.Add(1)
	}
}

// Close detaches the subscription from the bus and closes C. It is
// idempotent and safe to call concurrently with Publish: an in-flight
// offer either lands before the close or is discarded, never sent on a
// closed channel.
func (s *Subscription) Close() {
	s.bus.subMu.Lock()
	delete(s.bus.subs, s)
	s.bus.subMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}
