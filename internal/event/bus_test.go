package event

import (
	"sync"
	"testing"
	"time"

	"react/internal/taskq"
)

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindSubmit:   "submit",
		KindAssign:   "assign",
		KindRevoke:   "revoke",
		KindComplete: "complete",
		KindExpire:   "expire",
		KindForget:   "forget",
		KindBatch:    "batch",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(0).String() != "kind(0)" {
		t.Errorf("zero kind = %q", Kind(0).String())
	}
	for k := KindSubmit; k <= KindForget; k++ {
		if !k.Lifecycle() {
			t.Errorf("%v should be lifecycle", k)
		}
	}
	if KindBatch.Lifecycle() {
		t.Error("batch is not lifecycle")
	}
	for _, k := range []Kind{KindComplete, KindExpire, KindForget} {
		if !k.Terminal() {
			t.Errorf("%v should be terminal", k)
		}
	}
	for _, k := range []Kind{KindSubmit, KindAssign, KindRevoke, KindBatch} {
		if k.Terminal() {
			t.Errorf("%v should not be terminal", k)
		}
	}
}

func TestFromTaskMapsEveryKind(t *testing.T) {
	rec := taskq.Record{Task: taskq.Task{ID: "t1"}, Attempts: 2}
	at := time.Unix(100, 0)
	pairs := map[taskq.EventKind]Kind{
		taskq.EvSubmit:   KindSubmit,
		taskq.EvAssign:   KindAssign,
		taskq.EvUnassign: KindRevoke,
		taskq.EvComplete: KindComplete,
		taskq.EvExpire:   KindExpire,
		taskq.EvForget:   KindForget,
	}
	for tk, ek := range pairs {
		ev := FromTask(taskq.Event{
			Kind: tk, Record: rec, At: at,
			Worker: "w1", Cause: taskq.CauseEq2, Prob: 0.3,
		})
		if ev.Kind != ek || ev.Task != "t1" || ev.Worker != "w1" ||
			!ev.At.Equal(at) || ev.Cause != taskq.CauseEq2 || ev.Prob != 0.3 {
			t.Errorf("FromTask(%v) = %+v", tk, ev)
		}
		if ev.Seq != 0 {
			t.Errorf("FromTask must leave Seq for Publish, got %d", ev.Seq)
		}
		if ev.Record.Attempts != 2 {
			t.Errorf("record not carried: %+v", ev.Record)
		}
	}
}

func TestTapSeesEveryEventInOrder(t *testing.T) {
	b := NewBus()
	var got []uint64
	b.Tap(func(ev Event) { got = append(got, ev.Seq) })
	for i := 0; i < 5; i++ {
		b.Publish(Event{Kind: KindSubmit, Task: "t"})
	}
	if len(got) != 5 {
		t.Fatalf("tap saw %d events, want 5", len(got))
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d", i, seq, i+1)
		}
	}
	if st := b.Stats(); st.Published != 5 || st.Taps != 1 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPublishReturnsStampedEvent(t *testing.T) {
	b := NewBus()
	first := b.Publish(Event{Kind: KindSubmit})
	second := b.Publish(Event{Kind: KindAssign})
	if first.Seq != 1 || second.Seq != 2 {
		t.Fatalf("seqs = %d, %d", first.Seq, second.Seq)
	}
}

func TestSubscribeFilterSkipsWithoutDropCounting(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(8, func(ev Event) bool { return ev.Task == "keep" })
	defer sub.Close()
	b.Publish(Event{Kind: KindSubmit, Task: "keep"})
	b.Publish(Event{Kind: KindSubmit, Task: "skip"})
	b.Publish(Event{Kind: KindComplete, Task: "keep"})

	if ev := <-sub.C(); ev.Kind != KindSubmit || ev.Seq != 1 {
		t.Fatalf("first = %+v", ev)
	}
	if ev := <-sub.C(); ev.Kind != KindComplete || ev.Seq != 3 {
		t.Fatalf("second = %+v", ev)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("filtered events counted as drops: %d", sub.Dropped())
	}
	if st := b.Stats(); st.Dropped != 0 || st.Subscribers != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSubscriptionOverflowDropsAndCounts(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(2, nil)
	defer sub.Close()
	for i := 0; i < 7; i++ {
		b.Publish(Event{Kind: KindSubmit, Task: "t"})
	}
	// Buffer depth 2: the first two landed, five overflowed.
	if d := sub.Dropped(); d != 5 {
		t.Fatalf("sub dropped %d, want 5", d)
	}
	if st := b.Stats(); st.Dropped != 5 || st.Published != 7 {
		t.Fatalf("stats = %+v", st)
	}
	// The retained events are the earliest ones, in order.
	if ev := <-sub.C(); ev.Seq != 1 {
		t.Fatalf("first retained seq = %d", ev.Seq)
	}
	if ev := <-sub.C(); ev.Seq != 2 {
		t.Fatalf("second retained seq = %d", ev.Seq)
	}
}

func TestMinimumBufferIsOne(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(0, nil)
	defer sub.Close()
	b.Publish(Event{Kind: KindSubmit})
	b.Publish(Event{Kind: KindSubmit})
	if d := sub.Dropped(); d != 1 {
		t.Fatalf("dropped %d, want 1 (buffer clamped to 1)", d)
	}
}

func TestCloseIsIdempotentAndDetaches(t *testing.T) {
	b := NewBus()
	sub := b.Subscribe(1, nil)
	sub.Close()
	sub.Close() // second close must not panic
	if _, ok := <-sub.C(); ok {
		t.Fatal("channel should be closed")
	}
	if st := b.Stats(); st.Subscribers != 0 {
		t.Fatalf("subscriber leaked: %+v", st)
	}
	// Publishing after close must not panic or count drops.
	b.Publish(Event{Kind: KindSubmit})
	if sub.Dropped() != 0 {
		t.Fatal("closed subscription counted a drop")
	}
}

func TestCloseRacesPublishSafely(t *testing.T) {
	b := NewBus()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				b.Publish(Event{Kind: KindSubmit, Task: "t"})
			}
		}
	}()
	for i := 0; i < 200; i++ {
		sub := b.Subscribe(1, nil)
		// Drain concurrently so offers interleave with the close.
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range sub.C() {
			}
		}()
		sub.Close()
	}
	close(stop)
	wg.Wait()
	if st := b.Stats(); st.Subscribers != 0 {
		t.Fatalf("subscribers leaked: %+v", st)
	}
}

func TestConcurrentPublishersStampUniqueSeqs(t *testing.T) {
	b := NewBus()
	const goroutines, per = 8, 500
	var mu sync.Mutex
	seen := make(map[uint64]bool, goroutines*per)
	b.Tap(func(ev Event) {
		// Taps run inside Publish concurrently across publishers; the
		// test's own mutex stands in for a consumer's synchronization.
		mu.Lock()
		if seen[ev.Seq] {
			t.Errorf("duplicate seq %d", ev.Seq)
		}
		seen[ev.Seq] = true
		mu.Unlock()
	})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Publish(Event{Kind: KindSubmit})
			}
		}()
	}
	wg.Wait()
	if len(seen) != goroutines*per {
		t.Fatalf("saw %d unique seqs, want %d", len(seen), goroutines*per)
	}
	if st := b.Stats(); st.Published != goroutines*per {
		t.Fatalf("stats = %+v", st)
	}
}
