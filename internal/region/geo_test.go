package region

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// athens is the rough bounding box the experiments use; the paper's case
// study asked workers about traffic in Athens-area road segments.
var athens = Rect{MinLat: 37.8, MinLon: 23.5, MaxLat: 38.2, MaxLon: 24.0}

func TestPointValid(t *testing.T) {
	cases := []struct {
		p  Point
		ok bool
	}{
		{Point{0, 0}, true},
		{Point{90, 180}, true},
		{Point{-90, -180}, true},
		{Point{91, 0}, false},
		{Point{0, 181}, false},
		{Point{math.NaN(), 0}, false},
	}
	for _, c := range cases {
		if got := c.p.Valid(); got != c.ok {
			t.Errorf("Valid(%v) = %v, want %v", c.p, got, c.ok)
		}
	}
}

func TestHaversineKnownDistances(t *testing.T) {
	// Athens (37.9838, 23.7275) to Thessaloniki (40.6401, 22.9444) ≈ 300 km.
	ath := Point{37.9838, 23.7275}
	thes := Point{40.6401, 22.9444}
	d := ath.DistanceKm(thes)
	if d < 290 || d > 310 {
		t.Fatalf("Athens-Thessaloniki = %.1f km, want ≈300", d)
	}
	// Symmetry and identity.
	if got := thes.DistanceKm(ath); math.Abs(got-d) > 1e-9 {
		t.Fatalf("distance not symmetric: %v vs %v", got, d)
	}
	if got := ath.DistanceKm(ath); got != 0 {
		t.Fatalf("self distance = %v", got)
	}
}

func TestHaversineOneDegreeLat(t *testing.T) {
	// One degree of latitude ≈ 111.2 km anywhere.
	a := Point{10, 50}
	b := Point{11, 50}
	d := a.DistanceKm(b)
	if math.Abs(d-111.2) > 1 {
		t.Fatalf("1° latitude = %v km, want ≈111.2", d)
	}
}

func TestQuickHaversineMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(a1, o1, a2, o2 uint16) bool {
		p := Point{float64(a1%180) - 90, float64(o1%360) - 180}
		q := Point{float64(a2%180) - 90, float64(o2%360) - 180}
		d := p.DistanceKm(q)
		if d < 0 || math.IsNaN(d) {
			return false
		}
		if d > math.Pi*EarthRadiusKm+1e-6 { // half circumference bound
			return false
		}
		return math.Abs(p.DistanceKm(q)-q.DistanceKm(p)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestRectContainsHalfOpen(t *testing.T) {
	r := Rect{0, 0, 10, 10}
	if !r.Contains(Point{0, 0}) {
		t.Fatal("min corner should be inside")
	}
	if r.Contains(Point{10, 5}) || r.Contains(Point{5, 10}) {
		t.Fatal("max edges should be outside (half-open)")
	}
	if !r.Contains(r.Center()) {
		t.Fatal("center should be inside")
	}
}

func TestQuadrantsTileExactly(t *testing.T) {
	r := athens
	quads := r.Quadrants()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		p := r.RandomPoint(rng)
		hits := 0
		for _, q := range quads {
			if q.Contains(p) {
				hits++
			}
		}
		// A point on an internal boundary belongs to exactly one quadrant
		// thanks to the half-open convention.
		if hits != 1 {
			t.Fatalf("point %v in %d quadrants", p, hits)
		}
	}
	// The shared center belongs to exactly the SE quadrant.
	c := r.Center()
	hits := 0
	for _, q := range quads {
		if q.Contains(c) {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("center in %d quadrants, want 1", hits)
	}
}

func TestRandomPointStaysInside(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		p := athens.RandomPoint(rng)
		if !athens.Contains(p) {
			t.Fatalf("random point %v escaped %v", p, athens)
		}
	}
}

func TestNewGridValidates(t *testing.T) {
	if _, err := NewGrid(Rect{}, 2, 2); err == nil {
		t.Fatal("degenerate bounds accepted")
	}
	if _, err := NewGrid(athens, 0, 3); err == nil {
		t.Fatal("zero rows accepted")
	}
	if _, err := NewGrid(athens, 3, -1); err == nil {
		t.Fatal("negative cols accepted")
	}
}

func TestGridLocateAndCells(t *testing.T) {
	g, err := NewGrid(Rect{0, 0, 4, 4}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		p    Point
		want string
	}{
		{Point{0.5, 0.5}, "r0c0"},
		{Point{0.5, 3.5}, "r0c1"},
		{Point{3.5, 0.5}, "r1c0"},
		{Point{3.5, 3.5}, "r1c1"},
		// Out-of-bounds clamps to the nearest edge cell.
		{Point{-5, -5}, "r0c0"},
		{Point{9, 9}, "r1c1"},
	}
	for _, c := range cases {
		if got := g.Locate(c.p); got != c.want {
			t.Errorf("Locate(%v) = %q, want %q", c.p, got, c.want)
		}
	}
	if got := len(g.Regions()); got != 4 {
		t.Fatalf("Regions() returned %d entries, want 4", got)
	}
}

func TestGridCellsPartitionArea(t *testing.T) {
	g, err := NewGrid(athens, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		p := athens.RandomPoint(rng)
		hits := 0
		for _, nr := range g.Regions() {
			if nr.Bounds.Contains(p) {
				hits++
			}
		}
		if hits != 1 {
			t.Fatalf("point %v covered by %d cells", p, hits)
		}
	}
}

func TestQuickGridLocateConsistentWithCell(t *testing.T) {
	g, err := NewGrid(athens, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	f := func(seed uint32) bool {
		p := athens.RandomPoint(rand.New(rand.NewSource(int64(seed))))
		id := g.Locate(p)
		for _, nr := range g.Regions() {
			if nr.Bounds.Contains(p) {
				return nr.ID == id
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}
