package region

import (
	"fmt"
	"strings"
	"sync"
)

// Tree is a hierarchical, load-adaptive spatial decomposition: a quadtree
// whose leaves are the active regions. When a leaf's load (registered
// workers plus open tasks) exceeds MaxLoad it is split into four children,
// which is the paper's proposed fix for overloaded region servers: "split
// the regions so that each of the servers would contain sufficient workers
// and tasks without being overloaded" (§V.D). Tiers of the tree correspond
// to the multi-granularity levels of §III.A, from local areas at the lowest
// tier up to the whole network area at the root.
//
// Tree is safe for concurrent use.
type Tree struct {
	mu      sync.RWMutex
	root    *node
	maxLoad int
	maxTier int
	splits  int
}

type node struct {
	id       string
	bounds   Rect
	tier     int
	load     int
	children *[4]*node // nil for leaves
}

// NewTree builds a tree covering bounds whose leaves split when their load
// exceeds maxLoad, down to at most maxTier levels below the root (a guard
// against splitting into uselessly tiny regions). maxLoad must be positive;
// maxTier of 0 disables splitting.
func NewTree(bounds Rect, maxLoad, maxTier int) (*Tree, error) {
	if !bounds.Valid() {
		return nil, fmt.Errorf("region: invalid bounds %v", bounds)
	}
	if maxLoad < 1 {
		return nil, fmt.Errorf("region: maxLoad must be positive, got %d", maxLoad)
	}
	if maxTier < 0 {
		return nil, fmt.Errorf("region: maxTier must be non-negative, got %d", maxTier)
	}
	return &Tree{
		root:    &node{id: "root", bounds: bounds, tier: 0},
		maxLoad: maxLoad,
		maxTier: maxTier,
	}, nil
}

// Locate returns the ID of the leaf region containing p. Out-of-bounds
// points clamp into the root area first.
func (t *Tree) Locate(p Point) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.leaf(t.clamp(p)).id
}

// Add registers one unit of load (a worker arrival or task submission) at p
// and returns the leaf region it landed in. If the leaf then exceeds the
// load bound it is split and the ID of the new, smaller leaf that would now
// contain p is returned alongside; callers use the returned ID for routing.
func (t *Tree) Add(p Point) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	p = t.clamp(p)
	n := t.leaf(p)
	n.load++
	if n.load > t.maxLoad && n.tier < t.maxTier {
		t.split(n)
		n = t.leaf(p)
	}
	return n.id
}

// Remove unregisters one unit of load at p (worker departure or task
// completion). Load never goes below zero. It returns the leaf region ID.
func (t *Tree) Remove(p Point) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.leaf(t.clamp(p))
	if n.load > 0 {
		n.load--
	}
	return n.id
}

// Load reports the load of the leaf containing p.
func (t *Tree) Load(p Point) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.leaf(t.clamp(p)).load
}

// Splits reports how many region splits have occurred.
func (t *Tree) Splits() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.splits
}

// Leaves returns every active region (leaf) with its extent, depth-first.
func (t *Tree) Leaves() []NamedRect {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []NamedRect
	var walk func(n *node)
	walk = func(n *node) {
		if n.children == nil {
			out = append(out, NamedRect{ID: n.id, Bounds: n.bounds})
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// LoadsByTier aggregates leaf loads per tree depth — the paper's
// multi-granularity view (§III.A: "several tiers at different levels of
// granularity, ranging from small local areas at the lowest tier, to the
// entire network area at the highest tier"), used by operators to see where
// the decomposition has had to go fine-grained.
func (t *Tree) LoadsByTier() map[int]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := map[int]int{}
	var walk func(n *node)
	walk = func(n *node) {
		if n.children == nil {
			out[n.tier] += n.load
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	return out
}

// Tier reports the depth of the leaf containing p (root = 0).
func (t *Tree) Tier(p Point) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.leaf(t.clamp(p)).tier
}

func (t *Tree) clamp(p Point) Point {
	b := t.root.bounds
	eps := 1e-9
	if p.Lat < b.MinLat {
		p.Lat = b.MinLat
	}
	if p.Lat >= b.MaxLat {
		p.Lat = b.MaxLat - eps
	}
	if p.Lon < b.MinLon {
		p.Lon = b.MinLon
	}
	if p.Lon >= b.MaxLon {
		p.Lon = b.MaxLon - eps
	}
	return p
}

func (t *Tree) leaf(p Point) *node {
	n := t.root
	for n.children != nil {
		next := n
		for _, c := range n.children {
			if c.bounds.Contains(p) {
				next = c
				break
			}
		}
		if next == n {
			// Floating-point edge: fall into the last quadrant.
			next = n.children[3]
		}
		n = next
	}
	return n
}

// split divides a leaf into four children and distributes its load evenly
// among them — the best estimate available without re-resolving every
// registered point; callers re-Add on their next touch, converging the
// counts.
func (t *Tree) split(n *node) {
	quads := n.bounds.Quadrants()
	var children [4]*node
	per := n.load / 4
	rem := n.load % 4
	for i := range children {
		load := per
		if i < rem {
			load++
		}
		children[i] = &node{
			id:     fmt.Sprintf("%s/q%d", n.id, i),
			bounds: quads[i],
			tier:   n.tier + 1,
			load:   load,
		}
	}
	n.children = &children
	n.load = 0
	t.splits++
}

// String renders the tree for diagnostics.
func (t *Tree) String() string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var b strings.Builder
	var walk func(n *node)
	walk = func(n *node) {
		fmt.Fprintf(&b, "%s%s load=%d %v\n", strings.Repeat("  ", n.tier), n.id, n.load, n.bounds)
		if n.children != nil {
			for _, c := range n.children {
				walk(c)
			}
		}
	}
	walk(t.root)
	return b.String()
}
