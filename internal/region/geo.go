// Package region implements REACT's spatial decomposition (§III.A): the
// geographic area is divided into non-overlapping regions, each owned by one
// REACT server that matches the tasks and workers located inside it. The
// package provides geographic primitives (points, rectangles, haversine
// distance), a flat grid partition, and a hierarchical quadtree that splits
// overloaded regions — the paper's future-work remedy for servers that can
// no longer sustain the assignment rate (§V.D, §VII).
package region

import (
	"fmt"
	"math"
	"math/rand"
)

// EarthRadiusKm is the mean Earth radius used by the haversine formula.
const EarthRadiusKm = 6371.0

// Point is a geographic coordinate in degrees.
type Point struct {
	Lat float64 // latitude, −90..90
	Lon float64 // longitude, −180..180
}

// Valid reports whether the coordinate lies in the legal range.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// DistanceKm is the great-circle (haversine) distance to q in kilometres.
// The distance-based weight function of §IV.A uses it to prefer workers
// physically near a task's location.
func (p Point) DistanceKm(q Point) float64 {
	const rad = math.Pi / 180
	lat1, lat2 := p.Lat*rad, q.Lat*rad
	dLat := (q.Lat - p.Lat) * rad
	dLon := (q.Lon - p.Lon) * rad
	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusKm * math.Asin(math.Sqrt(h))
}

func (p Point) String() string { return fmt.Sprintf("(%.4f,%.4f)", p.Lat, p.Lon) }

// Rect is an axis-aligned geographic rectangle. Min bounds are inclusive;
// max bounds are exclusive except on the outermost edge of a partition,
// which keeps sibling regions non-overlapping while covering the whole area.
type Rect struct {
	MinLat, MinLon float64
	MaxLat, MaxLon float64
}

// Valid reports whether the rectangle is non-degenerate and within range.
func (r Rect) Valid() bool {
	return r.MinLat < r.MaxLat && r.MinLon < r.MaxLon &&
		Point{r.MinLat, r.MinLon}.Valid() && Point{r.MaxLat, r.MaxLon}.Valid()
}

// Contains reports whether p lies inside r (min-inclusive, max-exclusive).
func (r Rect) Contains(p Point) bool {
	return p.Lat >= r.MinLat && p.Lat < r.MaxLat &&
		p.Lon >= r.MinLon && p.Lon < r.MaxLon
}

// Center returns the rectangle's midpoint.
func (r Rect) Center() Point {
	return Point{Lat: (r.MinLat + r.MaxLat) / 2, Lon: (r.MinLon + r.MaxLon) / 2}
}

// Quadrants splits r into four equal sub-rectangles (NW, NE, SW, SE order is
// row-major from the min corner). Together they tile r exactly.
func (r Rect) Quadrants() [4]Rect {
	c := r.Center()
	return [4]Rect{
		{r.MinLat, r.MinLon, c.Lat, c.Lon},
		{r.MinLat, c.Lon, c.Lat, r.MaxLon},
		{c.Lat, r.MinLon, r.MaxLat, c.Lon},
		{c.Lat, c.Lon, r.MaxLat, r.MaxLon},
	}
}

// RandomPoint draws a uniform point inside r.
func (r Rect) RandomPoint(rng *rand.Rand) Point {
	return Point{
		Lat: r.MinLat + rng.Float64()*(r.MaxLat-r.MinLat),
		Lon: r.MinLon + rng.Float64()*(r.MaxLon-r.MinLon),
	}
}

func (r Rect) String() string {
	return fmt.Sprintf("[%.4f,%.4f → %.4f,%.4f]", r.MinLat, r.MinLon, r.MaxLat, r.MaxLon)
}

// Grid partitions an area into rows×cols equal regions, the static
// decomposition of §III.A ("with respect to the size of the geographic
// area"). Region IDs are "r<row>c<col>".
type Grid struct {
	Bounds     Rect
	Rows, Cols int
}

// NewGrid validates and constructs a grid partition.
func NewGrid(bounds Rect, rows, cols int) (*Grid, error) {
	if !bounds.Valid() {
		return nil, fmt.Errorf("region: invalid bounds %v", bounds)
	}
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("region: grid needs positive dimensions, got %dx%d", rows, cols)
	}
	return &Grid{Bounds: bounds, Rows: rows, Cols: cols}, nil
}

// Cell returns the rectangle of the (row, col) region.
func (g *Grid) Cell(row, col int) Rect {
	dLat := (g.Bounds.MaxLat - g.Bounds.MinLat) / float64(g.Rows)
	dLon := (g.Bounds.MaxLon - g.Bounds.MinLon) / float64(g.Cols)
	return Rect{
		MinLat: g.Bounds.MinLat + float64(row)*dLat,
		MinLon: g.Bounds.MinLon + float64(col)*dLon,
		MaxLat: g.Bounds.MinLat + float64(row+1)*dLat,
		MaxLon: g.Bounds.MinLon + float64(col+1)*dLon,
	}
}

// Locate maps a point to its region ID. Points outside the grid clamp to
// the nearest edge cell, so a worker just over the boundary still lands in a
// server rather than nowhere.
func (g *Grid) Locate(p Point) string {
	row, col := g.locate(p)
	return fmt.Sprintf("r%dc%d", row, col)
}

func (g *Grid) locate(p Point) (row, col int) {
	dLat := (g.Bounds.MaxLat - g.Bounds.MinLat) / float64(g.Rows)
	dLon := (g.Bounds.MaxLon - g.Bounds.MinLon) / float64(g.Cols)
	row = int((p.Lat - g.Bounds.MinLat) / dLat)
	col = int((p.Lon - g.Bounds.MinLon) / dLon)
	row = min(max(row, 0), g.Rows-1)
	col = min(max(col, 0), g.Cols-1)
	return row, col
}

// Regions enumerates all region IDs with their rectangles in row-major
// order.
func (g *Grid) Regions() []NamedRect {
	out := make([]NamedRect, 0, g.Rows*g.Cols)
	for r := 0; r < g.Rows; r++ {
		for c := 0; c < g.Cols; c++ {
			out = append(out, NamedRect{ID: fmt.Sprintf("r%dc%d", r, c), Bounds: g.Cell(r, c)})
		}
	}
	return out
}

// NamedRect pairs a region identifier with its geographic extent.
type NamedRect struct {
	ID     string
	Bounds Rect
}
