package region

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func TestNewTreeValidates(t *testing.T) {
	if _, err := NewTree(Rect{}, 10, 3); err == nil {
		t.Fatal("invalid bounds accepted")
	}
	if _, err := NewTree(athens, 0, 3); err == nil {
		t.Fatal("zero maxLoad accepted")
	}
	if _, err := NewTree(athens, 10, -1); err == nil {
		t.Fatal("negative maxTier accepted")
	}
}

func TestTreeSingleRegionUntilOverload(t *testing.T) {
	tr, err := NewTree(athens, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5; i++ {
		if id := tr.Add(athens.RandomPoint(rng)); id != "root" {
			t.Fatalf("add %d landed in %q before overload", i, id)
		}
	}
	if tr.Splits() != 0 {
		t.Fatalf("split happened below the load bound")
	}
	// The 6th point pushes load over the bound and triggers a split.
	id := tr.Add(athens.RandomPoint(rng))
	if tr.Splits() != 1 {
		t.Fatalf("Splits() = %d after overload, want 1", tr.Splits())
	}
	if !strings.HasPrefix(id, "root/q") {
		t.Fatalf("post-split Add returned %q, want a child region", id)
	}
	if got := len(tr.Leaves()); got != 4 {
		t.Fatalf("Leaves() = %d regions after one split, want 4", got)
	}
}

func TestTreeMaxTierStopsSplitting(t *testing.T) {
	tr, err := NewTree(athens, 1, 0) // splitting disabled
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		tr.Add(athens.RandomPoint(rng))
	}
	if tr.Splits() != 0 {
		t.Fatal("maxTier=0 tree still split")
	}
	if got := tr.Load(athens.Center()); got != 100 {
		t.Fatalf("root load = %d, want 100", got)
	}
}

func TestTreeDeepSplitKeepsTiers(t *testing.T) {
	tr, err := NewTree(athens, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Hammer a single spot: the containing leaf keeps splitting until the
	// tier cap, and all load concentrates down the one branch.
	p := Point{37.95, 23.72}
	for i := 0; i < 200; i++ {
		tr.Add(p)
	}
	if tier := tr.Tier(p); tier != 8 {
		t.Fatalf("Tier = %d, want max 8", tier)
	}
	// Load must be conserved overall.
	total := 0
	for _, leaf := range tr.Leaves() {
		total += tr.Load(leaf.Bounds.Center())
	}
	if total != 200 {
		t.Fatalf("total load across leaves = %d, want 200", total)
	}
}

func TestTreeLeavesTileArea(t *testing.T) {
	tr, err := NewTree(athens, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 300; i++ {
		tr.Add(athens.RandomPoint(rng))
	}
	// Every point belongs to exactly one leaf.
	for i := 0; i < 2000; i++ {
		p := athens.RandomPoint(rng)
		hits := 0
		var hit string
		for _, leaf := range tr.Leaves() {
			if leaf.Bounds.Contains(p) {
				hits++
				hit = leaf.ID
			}
		}
		if hits != 1 {
			t.Fatalf("point %v in %d leaves", p, hits)
		}
		if got := tr.Locate(p); got != hit {
			t.Fatalf("Locate(%v) = %q but containment says %q", p, got, hit)
		}
	}
}

func TestTreeRemoveNeverNegative(t *testing.T) {
	tr, err := NewTree(athens, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := athens.Center()
	tr.Remove(p)
	if got := tr.Load(p); got != 0 {
		t.Fatalf("load after spurious remove = %d", got)
	}
	tr.Add(p)
	tr.Remove(p)
	if got := tr.Load(p); got != 0 {
		t.Fatalf("load after add+remove = %d", got)
	}
}

func TestTreeOutOfBoundsClamped(t *testing.T) {
	tr, err := NewTree(athens, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	id := tr.Add(Point{-89, -179})
	if id == "" {
		t.Fatal("out-of-bounds add returned empty region")
	}
	if got := tr.Locate(Point{89, 179}); got == "" {
		t.Fatal("out-of-bounds locate returned empty region")
	}
}

func TestTreeConcurrentUse(t *testing.T) {
	tr, err := NewTree(athens, 50, 6)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				p := athens.RandomPoint(rng)
				tr.Add(p)
				tr.Locate(p)
				if i%3 == 0 {
					tr.Remove(p)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	// Sanity: structure is still a valid tiling.
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		p := athens.RandomPoint(rng)
		hits := 0
		for _, leaf := range tr.Leaves() {
			if leaf.Bounds.Contains(p) {
				hits++
			}
		}
		if hits != 1 {
			t.Fatalf("after concurrent churn point %v in %d leaves", p, hits)
		}
	}
}

func TestTreeStringContainsRoot(t *testing.T) {
	tr, err := NewTree(athens, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s := tr.String(); !strings.Contains(s, "root") {
		t.Fatalf("String() = %q", s)
	}
}

func TestLoadsByTier(t *testing.T) {
	tr, err := NewTree(athens, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	// No load: one tier-0 leaf with zero load.
	if got := tr.LoadsByTier(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("empty tree tiers = %v", got)
	}
	// Hammer one spot past the bound: deeper tiers appear, and the total
	// across tiers equals the load inserted.
	p := Point{37.95, 23.72}
	for i := 0; i < 40; i++ {
		tr.Add(p)
	}
	tiers := tr.LoadsByTier()
	total := 0
	deepest := 0
	for tier, load := range tiers {
		total += load
		if tier > deepest {
			deepest = tier
		}
	}
	if total != 40 {
		t.Fatalf("tier loads sum to %d, want 40 (%v)", total, tiers)
	}
	if deepest == 0 {
		t.Fatalf("no splits despite overload: %v", tiers)
	}
}
