// Package schedule is REACT's Scheduling Component (§III.A, §IV.A). Per
// batch it (1) snapshots the unassigned tasks and available workers,
// (2) constructs the weighted bipartite graph — instantiating an edge
// (worker_i, task_j) only when the worker's fitted power-law model says
// Pr(ExecTime_ij < TimeToDeadline_ij) clears the application bound (Eq. 3),
// applying the trainee rule and the optional reward-range filter — and
// (3) hands the graph to a matching algorithm, returning the assignments.
//
// Batches trigger periodically or as soon as the number of unassigned tasks
// exceeds a bound, whichever comes first, exactly as §IV.A prescribes.
package schedule

import (
	"fmt"
	"time"

	"react/internal/bipartite"
	"react/internal/matching"
	"react/internal/profile"
	"react/internal/region"
	"react/internal/taskq"
)

// WeightFunc computes w_ij = F(worker_i, task_j) for an edge under
// consideration. Implementations must return values in [0, 1]; the matcher
// relies on non-negative weights.
type WeightFunc func(w *profile.Profile, t taskq.Task) float64

// QualityWeight is Eq. 1, the weight function the paper's experiments use:
// the worker's positive-feedback ratio in the task's category. Workers with
// no history in the category fall back to their overall accuracy, and
// with no history at all to neutral 0.5 (the trainee rule usually handles
// those before this fallback matters).
func QualityWeight(w *profile.Profile, t taskq.Task) float64 {
	if acc, ok := w.Accuracy(t.Category); ok {
		return acc
	}
	if acc, ok := w.OverallAccuracy(); ok {
		return acc
	}
	return 0.5
}

// DistanceWeight builds the location-based weight function sketched in
// §IV.A for applications like congestion detection: workers physically at
// the task's location give the most accurate answers. The weight decays
// linearly from 1 at distance zero to 0 at maxKm and beyond.
func DistanceWeight(maxKm float64) WeightFunc {
	if maxKm <= 0 {
		maxKm = 1
	}
	return func(w *profile.Profile, t taskq.Task) float64 {
		d := w.Location().DistanceKm(t.Location)
		if d >= maxKm {
			return 0
		}
		return 1 - d/maxKm
	}
}

// Term is one component of a blended weight function.
type Term struct {
	Coef float64
	Fn   WeightFunc
}

// Blend combines weight functions with fixed coefficients (e.g. 0.7·quality
// + 0.3·proximity). Coefficients should sum to at most 1 to keep results in
// [0, 1]; the blend clamps either way.
func Blend(terms ...Term) WeightFunc {
	return func(w *profile.Profile, t taskq.Task) float64 {
		var sum float64
		for _, term := range terms {
			sum += term.Coef * term.Fn(w, t)
		}
		if sum < 0 {
			return 0
		}
		if sum > 1 {
			return 1
		}
		return sum
	}
}

// Config parameterizes graph construction and batching. The zero value is
// completed by Normalize with the paper's experimental settings.
type Config struct {
	Weight        WeightFunc    // edge weight function (default QualityWeight)
	EdgeProbBound float64       // Eq. 3 lower bound for instantiating an edge (default 0.1)
	TraineeTasks  int           // z: assignments granted to new workers at max weight (default 3)
	MinHistory    int           // samples required before the model is trusted (default 3)
	MaxWeight     float64       // weight assigned to trainee edges (default 1.0)
	BatchBound    int           // run a batch once unassigned tasks exceed this (default 10)
	BatchPeriod   time.Duration // and at least this often regardless (default 5s)
	RegionID      string        // optional: only consider tasks/workers in this region
	Region        *region.Grid
	// NoPruning disables the Eq. 3 probability filter and the quality
	// weight, instantiating every (worker, task) edge at the maximum
	// weight. This models the traditional AMT-style platform of §V.C,
	// which has no worker model at all.
	NoPruning bool
}

// Normalize fills zero fields with the defaults used in §V.C.
func (c Config) Normalize() Config {
	if c.Weight == nil {
		c.Weight = QualityWeight
	}
	if c.EdgeProbBound <= 0 {
		c.EdgeProbBound = 0.1
	}
	if c.TraineeTasks <= 0 {
		c.TraineeTasks = 3
	}
	if c.MinHistory <= 0 {
		c.MinHistory = profile.DefaultMinHistory
	}
	if c.MaxWeight <= 0 {
		c.MaxWeight = 1.0
	}
	if c.BatchBound <= 0 {
		c.BatchBound = 10
	}
	if c.BatchPeriod <= 0 {
		c.BatchPeriod = 5 * time.Second
	}
	return c
}

// BuildStats describes one graph construction.
type BuildStats struct {
	Workers      int
	Tasks        int
	Edges        int
	PrunedProb   int // edges dropped by the Eq. 3 bound
	PrunedReward int // edges dropped by the reward-range filter
	Trainees     int // workers granted full edges at max weight
}

// BuildGraph constructs the weighted bipartite graph for one batch at the
// given instant. Workers must be the available snapshot, tasks the
// unassigned snapshot; the function never blocks on either component.
func BuildGraph(cfg Config, workers []*profile.Profile, tasks []taskq.Task, now time.Time) (*bipartite.Graph, BuildStats) {
	cfg = cfg.Normalize()
	var st BuildStats
	st.Workers = len(workers)
	st.Tasks = len(tasks)
	b := bipartite.NewBuilder(len(workers), len(tasks))
	for _, w := range workers {
		if _, err := b.AddWorker(w.ID()); err != nil {
			// Duplicate worker in the snapshot would be a registry bug;
			// skip rather than corrupt the batch.
			st.Workers--
			continue
		}
	}
	for _, t := range tasks {
		if _, err := b.AddTask(t.ID); err != nil {
			st.Tasks--
			continue
		}
	}
	for wi, w := range workers {
		trainee := w.Trainee(cfg.TraineeTasks)
		model, hasModel := w.Model(cfg.MinHistory)
		if trainee {
			st.Trainees++
		}
		for ti, t := range tasks {
			if !w.AcceptsReward(t.Reward) {
				st.PrunedReward++
				continue
			}
			var weight float64
			switch {
			case cfg.NoPruning:
				weight = cfg.MaxWeight
			case trainee || !hasModel:
				// Training rule (§IV.A): instantiate edges with every task
				// at the maximum weight so the profile gets built.
				weight = cfg.MaxWeight
			default:
				ttd := t.Deadline.Sub(now).Seconds()
				if p := model.ProbMeetDeadline(ttd); p < cfg.EdgeProbBound {
					st.PrunedProb++
					continue
				}
				weight = cfg.Weight(w, t)
				if weight < 0 {
					weight = 0
				}
				if weight > 1 {
					weight = 1
				}
			}
			if err := b.AddEdgeIdx(int32(wi), int32(ti), weight); err != nil {
				return nil, st // unreachable with valid indices; fail loudly via nil
			}
			st.Edges++
		}
	}
	return b.Build(), st
}

// Trigger decides when to run a batch.
type Trigger struct {
	cfg     Config
	lastRun time.Time
}

// NewTrigger creates a trigger that considers the first batch due
// immediately.
func NewTrigger(cfg Config, now time.Time) *Trigger {
	cfg = cfg.Normalize()
	return &Trigger{cfg: cfg, lastRun: now.Add(-cfg.BatchPeriod)}
}

// Due reports whether a batch should run now: the unassigned backlog
// exceeds the bound, or a full period elapsed since the last run.
func (tr *Trigger) Due(unassigned int, now time.Time) bool {
	if unassigned <= 0 {
		return false
	}
	return unassigned > tr.cfg.BatchBound || !now.Before(tr.lastRun.Add(tr.cfg.BatchPeriod))
}

// Ran records that a batch executed at now.
func (tr *Trigger) Ran(now time.Time) { tr.lastRun = now }

// Batch runs one scheduling round: build the graph from the given
// snapshots, match it, and return task→worker assignments.
type Batch struct {
	Assignments map[string]string
	Build       BuildStats
	Match       matching.Stats
	Weight      float64
	Elapsed     time.Duration // matcher wall time, for Fig. 3/8-style accounting
}

// Run executes a batch with the provided matcher. The caller applies the
// returned assignments to the task manager and worker profiles.
func Run(cfg Config, m matching.Matcher, workers []*profile.Profile, tasks []taskq.Task, now time.Time) (Batch, error) {
	g, bs := BuildGraph(cfg, workers, tasks, now)
	if g == nil {
		return Batch{}, fmt.Errorf("schedule: graph construction failed (%d workers, %d tasks)", len(workers), len(tasks))
	}
	//lint:ignore clockdiscipline,clocktaint Elapsed reports the matcher's real wall time (Fig. 3/8 accounting), not simulated time; it never feeds a scheduling decision
	start := time.Now()
	match, ms := m.Match(g)
	//lint:ignore clockdiscipline,clocktaint see above: a real measurement by design
	elapsed := time.Since(start)
	return Batch{
		Assignments: match.Assignments(),
		Build:       bs,
		Match:       ms,
		Weight:      match.Weight(),
		Elapsed:     elapsed,
	}, nil
}
