package schedule_test

import (
	"fmt"
	"time"

	"react/internal/clock"
	"react/internal/matching"
	"react/internal/profile"
	"react/internal/region"
	"react/internal/schedule"
	"react/internal/taskq"
)

// One scheduling batch end to end: snapshot workers and tasks, build the
// pruned weighted graph, match, and read the assignments. The hopeless
// pairing (a 10-second deadline against a worker who historically needs
// 10-15 s) never even becomes an edge.
func Example() {
	reg := profile.NewRegistry()
	athens := region.Point{Lat: 37.98, Lon: 23.73}
	fast, _ := reg.Register("fast", athens)
	slow, _ := reg.Register("slow", athens)
	for _, secs := range []float64{2, 3, 4} {
		fast.RecordCompletion("traffic", secs, true)
	}
	for _, secs := range []float64{10, 12, 15} {
		slow.RecordCompletion("traffic", secs, true)
	}

	now := clock.Epoch
	tasks := []taskq.Task{
		{ID: "urgent", Deadline: now.Add(10 * time.Second), Category: "traffic"},
		{ID: "normal", Deadline: now.Add(2 * time.Minute), Category: "traffic"},
	}

	batch, _ := schedule.Run(schedule.Config{}, matching.Greedy{}, reg.Available(), tasks, now)
	fmt.Printf("urgent → %s\n", batch.Assignments["urgent"])
	fmt.Printf("normal → %s\n", batch.Assignments["normal"])
	fmt.Printf("edges built: %d, pruned by Eq.3: %d\n", batch.Build.Edges, batch.Build.PrunedProb)
	// Output:
	// urgent → fast
	// normal → slow
	// edges built: 3, pruned by Eq.3: 1
}
