package schedule

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"react/internal/clock"
	"react/internal/matching"
	"react/internal/profile"
	"react/internal/region"
	"react/internal/taskq"
)

var athens = region.Point{Lat: 37.98, Lon: 23.73}

// seasonedWorker returns a profile with enough history that the model is
// active: execTimes are the completion samples, accuracy is positives/total.
func seasonedWorker(id string, execTimes []float64, positives int) *profile.Profile {
	r := profile.NewRegistry()
	p, _ := r.Register(id, athens)
	for i, e := range execTimes {
		p.RecordCompletion("traffic", e, i < positives)
	}
	return p
}

func task(id string, deadline time.Duration, now time.Time) taskq.Task {
	return taskq.Task{
		ID:       id,
		Location: athens,
		Deadline: now.Add(deadline),
		Reward:   0.05,
		Category: "traffic",
	}
}

func TestNormalizeDefaults(t *testing.T) {
	c := Config{}.Normalize()
	if c.Weight == nil || c.EdgeProbBound != 0.1 || c.TraineeTasks != 3 ||
		c.MinHistory != 3 || c.MaxWeight != 1.0 || c.BatchBound != 10 ||
		c.BatchPeriod != 5*time.Second {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestQualityWeightEq1(t *testing.T) {
	p := seasonedWorker("w", []float64{5, 6, 7, 8}, 3)
	now := clock.Epoch
	tk := task("t", time.Minute, now)
	if got := QualityWeight(p, tk); got != 0.75 {
		t.Fatalf("quality = %v, want 0.75", got)
	}
	// Unknown category falls back to overall accuracy.
	tk.Category = "photo"
	if got := QualityWeight(p, tk); got != 0.75 {
		t.Fatalf("fallback quality = %v", got)
	}
	// No history at all: neutral.
	var fresh profile.Profile
	if got := QualityWeight(&fresh, tk); got != 0.5 {
		t.Fatalf("fresh quality = %v", got)
	}
}

func TestDistanceWeight(t *testing.T) {
	w := DistanceWeight(10)
	r := profile.NewRegistry()
	near, _ := r.Register("near", athens)
	far, _ := r.Register("far", region.Point{Lat: 40.64, Lon: 22.94}) // ~300km away
	tk := task("t", time.Minute, clock.Epoch)
	if got := w(near, tk); got < 0.99 {
		t.Fatalf("near weight = %v", got)
	}
	if got := w(far, tk); got != 0 {
		t.Fatalf("far weight = %v", got)
	}
	// maxKm <= 0 is coerced to a sane positive value instead of dividing by zero.
	if got := DistanceWeight(0)(near, tk); got < 0 || got > 1 {
		t.Fatalf("coerced weight = %v", got)
	}
}

func TestBlend(t *testing.T) {
	w := Blend(
		Term{0.6, func(*profile.Profile, taskq.Task) float64 { return 1 }},
		Term{0.4, func(*profile.Profile, taskq.Task) float64 { return 0.5 }},
	)
	if got := w(nil, taskq.Task{}); got != 0.8 {
		t.Fatalf("blend = %v, want 0.8", got)
	}
	over := Blend(Term{2.0, func(*profile.Profile, taskq.Task) float64 { return 1 }})
	if got := over(nil, taskq.Task{}); got != 1 {
		t.Fatalf("clamped blend = %v", got)
	}
	// Equal coefficients are representable (the old map API could not).
	half := Blend(
		Term{0.5, func(*profile.Profile, taskq.Task) float64 { return 1 }},
		Term{0.5, func(*profile.Profile, taskq.Task) float64 { return 0 }},
	)
	if got := half(nil, taskq.Task{}); got != 0.5 {
		t.Fatalf("equal-coef blend = %v", got)
	}
}

func TestBuildGraphTraineeRule(t *testing.T) {
	// A brand-new worker gets edges to every task at max weight.
	r := profile.NewRegistry()
	p, _ := r.Register("newbie", athens)
	now := clock.Epoch
	tasks := []taskq.Task{task("t1", time.Minute, now), task("t2", time.Minute, now)}
	g, st := BuildGraph(Config{}, []*profile.Profile{p}, tasks, now)
	if st.Trainees != 1 {
		t.Fatalf("Trainees = %d", st.Trainees)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	for _, e := range g.Edges() {
		if e.Weight != 1.0 {
			t.Fatalf("trainee edge weight = %v", e.Weight)
		}
	}
}

func TestBuildGraphPrunesByEq3(t *testing.T) {
	// Worker history: completions around 10-15s. A task whose deadline is
	// 1s away is hopeless (Eq. 3 ≈ 0) and the edge must be pruned; a 120s
	// deadline is comfortably above the bound.
	p := seasonedWorker("w", []float64{10, 12, 15, 11, 13}, 5)
	now := clock.Epoch
	tasks := []taskq.Task{
		task("hopeless", time.Second, now),
		task("fine", 120*time.Second, now),
	}
	g, st := BuildGraph(Config{}, []*profile.Profile{p}, tasks, now)
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1 (hopeless pruned)", g.NumEdges())
	}
	if st.PrunedProb != 1 {
		t.Fatalf("PrunedProb = %d", st.PrunedProb)
	}
	e := g.Edge(0)
	if g.TaskID(e.Task) != "fine" {
		t.Fatalf("surviving edge is %q", g.TaskID(e.Task))
	}
	// Weight comes from Eq. 1, not the trainee max.
	if e.Weight != 1.0 { // 5 positives / 5 finished
		t.Fatalf("weight = %v", e.Weight)
	}
}

func TestBuildGraphRewardRange(t *testing.T) {
	p := seasonedWorker("w", []float64{5, 6, 7}, 3)
	p.SetRewardRange(0.10, 1.0)
	now := clock.Epoch
	cheap := task("cheap", time.Minute, now) // reward 0.05 below range
	rich := task("rich", time.Minute, now)
	rich.Reward = 0.25
	g, st := BuildGraph(Config{}, []*profile.Profile{p}, []taskq.Task{cheap, rich}, now)
	if g.NumEdges() != 1 || st.PrunedReward != 1 {
		t.Fatalf("edges = %d pruned = %d", g.NumEdges(), st.PrunedReward)
	}
	if g.TaskID(g.Edge(0).Task) != "rich" {
		t.Fatal("wrong edge survived the reward filter")
	}
}

func TestBuildGraphWeightClamped(t *testing.T) {
	p := seasonedWorker("w", []float64{5, 6, 7}, 3)
	now := clock.Epoch
	tasks := []taskq.Task{task("t", time.Minute, now)}
	cfg := Config{Weight: func(*profile.Profile, taskq.Task) float64 { return 7.5 }}
	g, _ := BuildGraph(cfg, []*profile.Profile{p}, tasks, now)
	if g.Edge(0).Weight != 1 {
		t.Fatalf("weight not clamped: %v", g.Edge(0).Weight)
	}
	cfg = Config{Weight: func(*profile.Profile, taskq.Task) float64 { return -2 }}
	g, _ = BuildGraph(cfg, []*profile.Profile{p}, tasks, now)
	if g.Edge(0).Weight != 0 {
		t.Fatalf("negative weight not clamped: %v", g.Edge(0).Weight)
	}
}

func TestBuildGraphEmptyInputs(t *testing.T) {
	g, st := BuildGraph(Config{}, nil, nil, clock.Epoch)
	if g.NumWorkers() != 0 || g.NumTasks() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty build: %d/%d/%d", g.NumWorkers(), g.NumTasks(), g.NumEdges())
	}
	if st.Edges != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTrigger(t *testing.T) {
	cfg := Config{BatchBound: 10, BatchPeriod: 5 * time.Second}
	now := clock.Epoch
	tr := NewTrigger(cfg, now)
	// First batch is due as soon as any task waits (period pre-elapsed).
	if !tr.Due(1, now) {
		t.Fatal("first batch not due")
	}
	tr.Ran(now)
	if tr.Due(5, now.Add(time.Second)) {
		t.Fatal("batch due below bound and before period")
	}
	// Backlog over the bound triggers immediately.
	if !tr.Due(11, now.Add(time.Second)) {
		t.Fatal("batch not due with backlog over bound")
	}
	// Period elapsed triggers even a small backlog.
	if !tr.Due(1, now.Add(5*time.Second)) {
		t.Fatal("batch not due after a full period")
	}
	// Zero backlog never triggers.
	if tr.Due(0, now.Add(time.Hour)) {
		t.Fatal("batch due with nothing to assign")
	}
}

func TestRunBatchEndToEnd(t *testing.T) {
	// Two seasoned workers with different quality; one task. The REACT
	// matcher should deliver a valid assignment to one of them, and greedy
	// should pick the better one.
	good := seasonedWorker("good", []float64{4, 5, 6, 5}, 4) // quality 1.0
	poor := seasonedWorker("poor", []float64{4, 5, 6, 5}, 1) // quality 0.25
	now := clock.Epoch
	tasks := []taskq.Task{task("t1", 2*time.Minute, now)}
	b, err := Run(Config{}, matching.Greedy{}, []*profile.Profile{good, poor}, tasks, now)
	if err != nil {
		t.Fatal(err)
	}
	if b.Assignments["t1"] != "good" {
		t.Fatalf("greedy picked %q", b.Assignments["t1"])
	}
	if b.Build.Edges != 2 || b.Weight != 1.0 {
		t.Fatalf("batch = %+v", b)
	}
	rb, err := Run(Config{}, matching.REACT{Cycles: 200, Rand: rand.New(rand.NewSource(1))},
		[]*profile.Profile{good, poor}, tasks, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(rb.Assignments) != 1 {
		t.Fatalf("REACT assigned %d tasks", len(rb.Assignments))
	}
	if rb.Elapsed < 0 {
		t.Fatal("negative elapsed")
	}
}

func TestBusyWorkersExcludedViaSnapshot(t *testing.T) {
	// The registry's Available() snapshot is the contract: busy workers
	// never reach BuildGraph.
	r := profile.NewRegistry()
	a, _ := r.Register("a", athens)
	r.Register("b", athens)
	a.MarkBusy("elsewhere")
	avail := r.Available()
	if len(avail) != 1 || avail[0].ID() != "b" {
		t.Fatalf("available = %d", len(avail))
	}
	g, _ := BuildGraph(Config{}, avail, []taskq.Task{task("t", time.Minute, clock.Epoch)}, clock.Epoch)
	if g.NumWorkers() != 1 {
		t.Fatalf("graph workers = %d", g.NumWorkers())
	}
}

func TestBuildGraphNoPruning(t *testing.T) {
	// The traditional platform model: every worker-task pair gets an edge
	// at max weight, regardless of history or deadline feasibility.
	p := seasonedWorker("w", []float64{10, 12, 15, 11, 13}, 1)
	now := clock.Epoch
	tasks := []taskq.Task{
		task("hopeless", time.Second, now),
		task("fine", 120*time.Second, now),
	}
	g, st := BuildGraph(Config{NoPruning: true}, []*profile.Profile{p}, tasks, now)
	if g.NumEdges() != 2 || st.PrunedProb != 0 {
		t.Fatalf("edges = %d pruned = %d", g.NumEdges(), st.PrunedProb)
	}
	for _, e := range g.Edges() {
		if e.Weight != 1.0 {
			t.Fatalf("no-pruning edge weight = %v", e.Weight)
		}
	}
}

// Property: every edge surviving construction either belongs to a trainee
// (max weight) or satisfies the Eq.3 probability bound for its task.
func TestQuickSurvivingEdgesMeetBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reg := profile.NewRegistry()
		var workers []*profile.Profile
		for i := 0; i < 8; i++ {
			p, _ := reg.Register(fmt.Sprintf("w%d", i), athens)
			// Random history depth: some trainees, some modelled.
			n := rng.Intn(8)
			for k := 0; k < n; k++ {
				p.RecordCompletion("traffic", 1+rng.Float64()*20, rng.Intn(2) == 0)
			}
			workers = append(workers, p)
		}
		now := clock.Epoch
		var tasks []taskq.Task
		for j := 0; j < 6; j++ {
			tasks = append(tasks, task(fmt.Sprintf("t%d", j),
				time.Duration(1+rng.Intn(120))*time.Second, now))
		}
		cfg := Config{}.Normalize()
		g, _ := BuildGraph(cfg, workers, tasks, now)
		for i := 0; i < g.NumEdges(); i++ {
			e := g.Edge(i)
			w := workers[e.Worker]
			if w.Trainee(cfg.TraineeTasks) {
				if e.Weight != cfg.MaxWeight {
					return false
				}
				continue
			}
			model, ok := w.Model(cfg.MinHistory)
			if !ok {
				continue // treated as trainee
			}
			ttd := tasks[e.Task].Deadline.Sub(now).Seconds()
			if model.ProbMeetDeadline(ttd) < cfg.EdgeProbBound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150, Rand: rand.New(rand.NewSource(61))}); err != nil {
		t.Fatal(err)
	}
}
