package admission

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"react/internal/clock"
	"react/internal/event"
	"react/internal/taskq"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// warm feeds n identical completions of the given execution time through
// the tap, as the spine would, so the fleet model leaves its cold state.
func warm(c *Controller, n int, exec time.Duration) {
	for i := 0; i < n; i++ {
		c.Tap(event.Event{Kind: event.KindComplete, Record: taskq.Record{
			AssignedAt: t0,
			FinishedAt: t0.Add(exec),
		}})
		// Completions decrement inflight; balance with a submit+assign so
		// warming does not drive the load gauges negative.
		c.Tap(event.Event{Kind: event.KindSubmit})
		c.Tap(event.Event{Kind: event.KindAssign})
	}
}

func task(id string, ttd time.Duration, clk clock.Clock) taskq.Task {
	return taskq.Task{ID: id, Deadline: clk.Now().Add(ttd), Submitted: clk.Now()}
}

func TestZeroConfigAdmitsEverything(t *testing.T) {
	clk := clock.NewVirtual(t0)
	c := New(Config{Clock: clk})
	for i := 0; i < 100; i++ {
		d := c.Decide("anyone", task("t", time.Nanosecond, clk))
		if !d.Admitted() {
			t.Fatalf("zero config rejected: %+v", d)
		}
		if d.Err() != nil {
			t.Fatalf("admitted decision carries error: %v", d.Err())
		}
	}
	admitted, rp, rr, shed := c.Counters()
	if admitted != 100 || rp != 0 || rr != 0 || shed != 0 {
		t.Fatalf("counters = %d %d %d %d, want 100 0 0 0", admitted, rp, rr, shed)
	}
}

func TestProbabilityFloor(t *testing.T) {
	// Fleet of 10 workers, warm model at 1s per task. The queue-delay
	// discount is unassigned/workers x median; the floor decides on the
	// CCDF of the remaining budget.
	newCtl := func() (*Controller, *clock.Virtual) {
		clk := clock.NewVirtual(t0)
		c := New(Config{Clock: clk, ProbFloor: 0.5, Workers: func() int { return 10 }})
		return c, clk
	}

	t.Run("cold model never rejects", func(t *testing.T) {
		c, clk := newCtl()
		warm(c, c.Config().MinSamples-1, time.Second) // one short of warm
		if d := c.Decide("r", task("t", time.Nanosecond, clk)); !d.Admitted() {
			t.Fatalf("cold model rejected: %+v", d)
		}
		if _, _, ok := c.FleetModel(); ok {
			t.Fatal("FleetModel reports warm below MinSamples")
		}
	})

	t.Run("past deadline rejects at probability zero", func(t *testing.T) {
		c, clk := newCtl()
		warm(c, 30, time.Second)
		d := c.Decide("r", task("t", 0, clk))
		if d.Status != StatusRejectedProbability || d.Probability != 0 {
			t.Fatalf("got %+v, want rejected_probability at 0", d)
		}
		if d.Status.Retryable() {
			t.Fatal("probability rejection must not be retryable")
		}
		var re *RejectionError
		if err := d.Err(); !errors.As(err, &re) || re.Decision.Status != d.Status {
			t.Fatalf("Err() = %v, want RejectionError carrying the decision", err)
		}
	})

	t.Run("generous deadline admits with probability attached", func(t *testing.T) {
		c, clk := newCtl()
		warm(c, 30, time.Second)
		d := c.Decide("r", task("t", time.Hour, clk))
		if !d.Admitted() {
			t.Fatalf("generous deadline rejected: %+v", d)
		}
		if d.Probability <= 0.5 || d.Probability > 1 {
			t.Fatalf("admitted probability = %v, want in (floor, 1]", d.Probability)
		}
	})

	t.Run("probability is monotone in the deadline", func(t *testing.T) {
		c, clk := newCtl()
		warm(c, 30, time.Second)
		prev := -1.0
		for _, ttd := range []time.Duration{
			100 * time.Millisecond, time.Second, 3 * time.Second, 30 * time.Second,
		} {
			p, ok := c.probMeet(ttd)
			if !ok {
				t.Fatalf("model cold at ttd %v", ttd)
			}
			if p < prev {
				t.Fatalf("probMeet(%v) = %v < previous %v", ttd, p, prev)
			}
			prev = p
		}
		_ = clk
	})

	t.Run("queue backlog flips the verdict", func(t *testing.T) {
		c, clk := newCtl()
		warm(c, 30, time.Second)
		ttd := 3 * time.Second
		if d := c.Decide("r", task("t", ttd, clk)); !d.Admitted() {
			t.Fatalf("uncontended deadline rejected: %+v", d)
		}
		// 100 waiting tasks / 10 workers x 1s median = ~10s of queue ahead;
		// a 3s deadline is now hopeless.
		for i := 0; i < 100; i++ {
			c.Tap(event.Event{Kind: event.KindSubmit})
		}
		d := c.Decide("r", task("t2", ttd, clk))
		if d.Status != StatusRejectedProbability {
			t.Fatalf("got %+v behind 100-deep queue, want rejected_probability", d)
		}
	})

	t.Run("floor zero disables the gate", func(t *testing.T) {
		clk := clock.NewVirtual(t0)
		c := New(Config{Clock: clk, Workers: func() int { return 10 }})
		warm(c, 30, time.Second)
		if d := c.Decide("r", task("t", time.Nanosecond, clk)); !d.Admitted() {
			t.Fatalf("floor 0 rejected: %+v", d)
		}
	})
}

func TestTokenBucket(t *testing.T) {
	clk := clock.NewVirtual(t0)
	c := New(Config{Clock: clk, RequesterRate: 2, RequesterBurst: 4})

	// The burst admits 4 back-to-back; the 5th is rejected with a
	// retry-after equal to one token's accrual time at 2/s.
	for i := 0; i < 4; i++ {
		if d := c.Decide("alice", task("t", time.Hour, clk)); !d.Admitted() {
			t.Fatalf("burst submission %d rejected: %+v", i, d)
		}
	}
	d := c.Decide("alice", task("t", time.Hour, clk))
	if d.Status != StatusRejectedRate {
		t.Fatalf("got %+v, want rejected_rate", d)
	}
	if !d.Status.Retryable() {
		t.Fatal("rate rejection must be retryable")
	}
	if d.RetryAfter != 500*time.Millisecond {
		t.Fatalf("retry-after = %v, want 500ms (one token at 2/s)", d.RetryAfter)
	}

	// Exactly one token accrues over the hinted wait: one admit, then
	// rejected again.
	clk.Advance(d.RetryAfter)
	if d := c.Decide("alice", task("t", time.Hour, clk)); !d.Admitted() {
		t.Fatalf("post-refill submission rejected: %+v", d)
	}
	if d := c.Decide("alice", task("t", time.Hour, clk)); d.Status != StatusRejectedRate {
		t.Fatalf("got %+v, want rejected_rate (bucket drained again)", d)
	}

	// Refill caps at the burst: after a long idle spell only 4 tokens wait.
	clk.Advance(time.Hour)
	for i := 0; i < 4; i++ {
		if d := c.Decide("alice", task("t", time.Hour, clk)); !d.Admitted() {
			t.Fatalf("post-idle submission %d rejected: %+v", i, d)
		}
	}
	if d := c.Decide("alice", task("t", time.Hour, clk)); d.Status != StatusRejectedRate {
		t.Fatalf("got %+v, want rejected_rate (burst must cap refill)", d)
	}

	// Other requesters have their own buckets; the empty requester id
	// (internal paths) bypasses rate limiting entirely.
	if d := c.Decide("bob", task("t", time.Hour, clk)); !d.Admitted() {
		t.Fatalf("bob rejected on alice's empty bucket: %+v", d)
	}
	for i := 0; i < 50; i++ {
		if d := c.Decide("", task("t", time.Hour, clk)); !d.Admitted() {
			t.Fatalf("exempt requester rejected: %+v", d)
		}
	}
}

func TestBucketDefaultBurst(t *testing.T) {
	c := New(Config{Clock: clock.NewVirtual(t0), RequesterRate: 3})
	if got := c.Config().RequesterBurst; got != 6 {
		t.Fatalf("default burst = %v, want 2x rate", got)
	}
	c = New(Config{Clock: clock.NewVirtual(t0), RequesterRate: 0.1})
	if got := c.Config().RequesterBurst; got != 1 {
		t.Fatalf("default burst = %v, want minimum 1", got)
	}
}

func TestBucketEviction(t *testing.T) {
	clk := clock.NewVirtual(t0)
	c := New(Config{Clock: clk, RequesterRate: 1, RequesterBurst: 2})
	// Fill the table to its cap with requesters that never return. Their
	// buckets refill to full burst and become evictable.
	for i := 0; i < maxBuckets; i++ {
		c.Decide(fmt.Sprintf("r%04d", i), task("t", time.Hour, clk))
	}
	clk.Advance(time.Hour) // everyone refills to full
	c.Decide("newcomer", task("t", time.Hour, clk))
	c.bktMu.Lock()
	n := len(c.buckets)
	c.bktMu.Unlock()
	if n > 1 {
		t.Fatalf("%d buckets survive eviction, want just the newcomer", n)
	}
}

func TestBucketSnapshotSortedAndRefreshed(t *testing.T) {
	clk := clock.NewVirtual(t0)
	c := New(Config{Clock: clk, RequesterRate: 1, RequesterBurst: 2})
	c.Decide("zoe", task("t", time.Hour, clk))
	c.Decide("abe", task("t", time.Hour, clk))
	c.Decide("abe", task("t", time.Hour, clk)) // abe drained to 0
	clk.Advance(500 * time.Millisecond)        // half a token back

	s := c.Snapshot()
	if len(s.Buckets) != 2 || s.Buckets[0].Requester != "abe" || s.Buckets[1].Requester != "zoe" {
		t.Fatalf("buckets = %+v, want [abe zoe]", s.Buckets)
	}
	if got := s.Buckets[0].Fill; got != 0.5 {
		t.Fatalf("abe fill = %v, want 0.5 (refreshed to now)", got)
	}
	if s.Buckets[0].Burst != 2 {
		t.Fatalf("burst = %v, want 2", s.Buckets[0].Burst)
	}
}

func TestMaxInflightCeiling(t *testing.T) {
	clk := clock.NewVirtual(t0)
	c := New(Config{Clock: clk, MaxInflight: 3})
	for i := 0; i < 3; i++ {
		if d := c.Decide("r", task("t", time.Hour, clk)); !d.Admitted() {
			t.Fatalf("submission %d under ceiling rejected: %+v", i, d)
		}
		c.Tap(event.Event{Kind: event.KindSubmit})
	}
	d := c.Decide("r", task("t", time.Hour, clk))
	if d.Status != StatusRejectedRate {
		t.Fatalf("got %+v at ceiling, want rejected_rate", d)
	}
	if d.RetryAfter != time.Second {
		t.Fatalf("cold drain hint = %v, want 1s", d.RetryAfter)
	}

	// One completion frees a slot.
	c.Tap(event.Event{Kind: event.KindAssign})
	c.Tap(event.Event{Kind: event.KindComplete, Record: taskq.Record{
		AssignedAt: t0, FinishedAt: t0.Add(2 * time.Second),
	}})
	if d := c.Decide("r", task("t", time.Hour, clk)); !d.Admitted() {
		t.Fatalf("submission after drain rejected: %+v", d)
	}

	// A warm model sizes the drain hint to the fleet median (clamped).
	warm(c, 40, 2*time.Second)
	for int(c.inflight.Load()) < 3 {
		c.Tap(event.Event{Kind: event.KindSubmit})
	}
	d = c.Decide("r", task("t", time.Hour, clk))
	if d.Status != StatusRejectedRate {
		t.Fatalf("got %+v at ceiling, want rejected_rate", d)
	}
	if d.RetryAfter < 2*time.Second || d.RetryAfter > 30*time.Second {
		t.Fatalf("warm drain hint = %v, want within [median, 30s]", d.RetryAfter)
	}
}

func TestObserverSeesEveryDecision(t *testing.T) {
	clk := clock.NewVirtual(t0)
	c := New(Config{Clock: clk, RequesterRate: 1, RequesterBurst: 1})
	var seen []Status
	c.SetObserver(func(d Decision) { seen = append(seen, d.Status) })
	c.Decide("r", task("t", time.Hour, clk))
	c.Decide("r", task("t", time.Hour, clk))
	if len(seen) != 2 || seen[0] != StatusAdmitted || seen[1] != StatusRejectedRate {
		t.Fatalf("observer saw %v, want [admitted rejected_rate]", seen)
	}
	c.SetObserver(nil)
	c.Decide("r2", task("t", time.Hour, clk))
	if len(seen) != 2 {
		t.Fatal("cleared observer still called")
	}
}
