package admission

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"react/internal/clock"
	"react/internal/event"
	"react/internal/taskq"
)

func TestTapLoadAccounting(t *testing.T) {
	c := New(Config{Clock: clock.NewVirtual(t0)})
	check := func(wantIn, wantUn int64, step string) {
		t.Helper()
		if in, un := c.Loads(); in != wantIn || un != wantUn {
			t.Fatalf("%s: inflight=%d unassigned=%d, want %d %d", step, in, un, wantIn, wantUn)
		}
	}

	c.Tap(event.Event{Kind: event.KindSubmit})
	c.Tap(event.Event{Kind: event.KindSubmit})
	check(2, 2, "two submits")

	c.Tap(event.Event{Kind: event.KindAssign})
	check(2, 1, "assign moves one off the pool")

	c.Tap(event.Event{Kind: event.KindRevoke})
	check(2, 2, "revoke returns it")

	c.Tap(event.Event{Kind: event.KindAssign})
	c.Tap(event.Event{Kind: event.KindComplete, Record: taskq.Record{
		AssignedAt: t0, FinishedAt: t0.Add(time.Second),
	}})
	check(1, 1, "completion retires the assigned task")

	// A pool-resident expiry (AssignedAt zero) drains both gauges; the
	// shed cause additionally bumps the shed counter.
	c.Tap(event.Event{Kind: event.KindExpire, Cause: taskq.CauseShed, Record: taskq.Record{}})
	check(0, 0, "pool-resident shed expiry")
	if _, _, _, shed := c.Counters(); shed != 1 {
		t.Fatalf("shed counter = %d, want 1", shed)
	}

	// An assigned-expiry (end-of-run sweep) was already off the unassigned
	// count; only inflight drops.
	c.Tap(event.Event{Kind: event.KindSubmit})
	c.Tap(event.Event{Kind: event.KindAssign})
	c.Tap(event.Event{Kind: event.KindExpire, Record: taskq.Record{AssignedAt: t0}})
	check(0, 0, "assigned expiry")
	if _, _, _, shed := c.Counters(); shed != 1 {
		t.Fatal("plain expiry must not count as shed")
	}

	// Batch and forget events carry no load signal.
	c.Tap(event.Event{Kind: event.KindBatch})
	c.Tap(event.Event{Kind: event.KindForget})
	check(0, 0, "batch/forget ignored")
}

func TestTapFeedsFleetModel(t *testing.T) {
	c := New(Config{Clock: clock.NewVirtual(t0), MinSamples: 3})
	if _, _, ok := c.FleetModel(); ok {
		t.Fatal("model warm with zero samples")
	}
	// Zero-exec completions (never-assigned records) must not pollute it.
	c.Tap(event.Event{Kind: event.KindComplete, Record: taskq.Record{}})
	for i := 0; i < 3; i++ {
		c.Tap(event.Event{Kind: event.KindComplete, Record: taskq.Record{
			AssignedAt: t0, FinishedAt: t0.Add(2 * time.Second),
		}})
	}
	samples, median, ok := c.FleetModel()
	if !ok || samples != 3 {
		t.Fatalf("model samples=%d ok=%v, want 3 warm", samples, ok)
	}
	if median < 2 {
		t.Fatalf("median = %v, want >= the 2s sample floor", median)
	}
	s := c.Snapshot()
	if s.FleetSamples != 3 || s.MedianExecSeconds != median {
		t.Fatalf("snapshot model = %d/%.2f, want 3/%.2f", s.FleetSamples, s.MedianExecSeconds, median)
	}
}

func TestSnapshotCapacity(t *testing.T) {
	c := New(Config{Clock: clock.NewVirtual(t0), MinSamples: 2, Workers: func() int { return 8 }})
	for i := 0; i < 2; i++ {
		c.Tap(event.Event{Kind: event.KindComplete, Record: taskq.Record{
			AssignedAt: t0, FinishedAt: t0.Add(4 * time.Second),
		}})
	}
	s := c.Snapshot()
	if s.WorkersOnline != 8 {
		t.Fatalf("workers = %d, want 8", s.WorkersOnline)
	}
	want := 8 / s.MedianExecSeconds
	if s.CapacityPerSec != want {
		t.Fatalf("capacity = %v, want workers/median = %v", s.CapacityPerSec, want)
	}
}

// TestTapConcurrent exercises every controller surface at once under the
// race detector: a real spine (event.Bus) publishing from several
// goroutines while Decide, Snapshot, and TickShed run against it.
func TestTapConcurrent(t *testing.T) {
	clk := clock.NewVirtual(t0)
	c := New(Config{
		Clock:         clk,
		ProbFloor:     0.5,
		MinSamples:    5,
		MaxInflight:   64,
		RequesterRate: 1000,
		ShedTarget:    time.Millisecond,
		ShedInterval:  time.Millisecond,
		Workers:       func() int { return 4 },
	})
	c.SetObserver(func(Decision) {})
	bus := event.NewBus()
	bus.Tap(c.Tap)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("g%d-t%d", g, i)
				rec := taskq.Record{Task: taskq.Task{ID: id}}
				bus.Publish(event.Event{Kind: event.KindSubmit, Task: id, Record: rec})
				bus.Publish(event.Event{Kind: event.KindAssign, Task: id, Record: rec})
				rec.AssignedAt = t0
				rec.FinishedAt = t0.Add(time.Duration(i%7+1) * 100 * time.Millisecond)
				bus.Publish(event.Event{Kind: event.KindComplete, Task: id, Record: rec})
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			c.Decide(fmt.Sprintf("r%d", i%3), taskq.Task{
				ID: "probe", Deadline: clk.Now().Add(time.Second), Submitted: clk.Now(),
			})
		}
	}()
	go func() {
		defer wg.Done()
		pool := &fakePool{}
		for i := 0; i < 100; i++ {
			c.Snapshot()
			c.Counters()
			c.Loads()
			c.TickShed(pool)
		}
	}()
	wg.Wait()

	if in, un := c.Loads(); in != 0 || un != 0 {
		t.Fatalf("loads after balanced traffic = %d/%d, want 0/0", in, un)
	}
	if samples, _, ok := c.FleetModel(); !ok || samples != 4*200 {
		t.Fatalf("fleet samples = %d (warm=%v), want 800", samples, ok)
	}
}
