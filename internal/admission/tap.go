package admission

import (
	"react/internal/event"
	"react/internal/taskq"
)

// Tap is the controller's event-spine observer: attach it with
// Engine.Events().Tap(c.Tap). It maintains the load signals every
// admission decision reads — live population, unassigned backlog, and
// the pooled fleet execution-time fitter — from the same lossless,
// per-task-ordered stream the journal trusts, so the controller never
// polls (or locks) the engine.
//
// Taps run under the task store's shard locks: this must stay fast, must
// not block, and must not call back into the engine. Everything here is
// a handful of atomic adds plus, on completions only, one short mutex
// hold to fold the sample into the fitter.
func (c *Controller) Tap(ev event.Event) {
	switch ev.Kind {
	case event.KindSubmit:
		c.inflight.Add(1)
		c.unassigned.Add(1)
	case event.KindAssign:
		c.unassigned.Add(-1)
	case event.KindRevoke:
		c.unassigned.Add(1)
	case event.KindComplete:
		c.inflight.Add(-1)
		if exec := ev.Record.ExecTime().Seconds(); exec > 0 {
			// Pool every worker's execution time into one fleet-wide
			// power-law fitter: the admission probability asks "can SOME
			// worker finish in time", so the fleet CCDF — not any single
			// profile — is the right distribution.
			c.fitMu.Lock()
			_ = c.fit.Add(exec) // rejects only non-positive samples, excluded above
			c.fitMu.Unlock()
		}
	case event.KindExpire:
		c.inflight.Add(-1)
		// Only tasks that died waiting in the pool reduce the unassigned
		// backlog; a task expired in a worker's hands (ExpireDue's
		// end-of-run sweep) was already off the unassigned count. The
		// discriminator is AssignedAt: cleared on unassign, never set for
		// pool-resident tasks, preserved on assigned-expiry.
		if ev.Record.AssignedAt.IsZero() {
			c.unassigned.Add(-1)
		}
		if ev.Cause == taskq.CauseShed {
			c.shedTotal.Add(1)
		}
	}
}
