package admission

import (
	"sort"
	"time"
)

// maxBuckets bounds the per-requester map: past it, fully-refilled
// buckets are evicted (a full bucket is indistinguishable from a fresh
// one, so dropping it loses nothing). Protects the controller from
// requester-id churn slowly pinning memory.
const maxBuckets = 4096

// bucket is one requester's token bucket. Refill is lazy: tokens accrue
// as elapsed-time × rate on each access, capped at the burst size, so no
// timer ever runs.
type bucket struct {
	fill float64   // tokens available
	last time.Time // instant of the previous refill
}

// takeToken consumes one token from requester's bucket, returning 0 on
// success or the wait until the next token accrues — the retry-after
// hint a rate rejection carries.
func (c *Controller) takeToken(requester string, now time.Time) time.Duration {
	c.bktMu.Lock()
	defer c.bktMu.Unlock()
	b, ok := c.buckets[requester]
	if !ok {
		if len(c.buckets) >= maxBuckets {
			c.evictFullLocked(now)
		}
		b = &bucket{fill: c.cfg.RequesterBurst, last: now}
		c.buckets[requester] = b
	}
	b.refill(now, c.cfg.RequesterRate, c.cfg.RequesterBurst)
	if b.fill >= 1 {
		b.fill--
		return 0
	}
	return time.Duration((1 - b.fill) / c.cfg.RequesterRate * float64(time.Second))
}

// refill accrues tokens for the time since the last access.
func (b *bucket) refill(now time.Time, rate, burst float64) {
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.fill += elapsed * rate
		if b.fill > burst {
			b.fill = burst
		}
	}
	b.last = now
}

// evictFullLocked drops every bucket already back at full burst. Caller
// holds bktMu.
func (c *Controller) evictFullLocked(now time.Time) {
	for id, b := range c.buckets {
		b.refill(now, c.cfg.RequesterRate, c.cfg.RequesterBurst)
		if b.fill >= c.cfg.RequesterBurst {
			delete(c.buckets, id)
		}
	}
}

// bucketSnapshot refreshes every bucket to now and returns them sorted
// by requester id, for /statusz and reactctl top.
func (c *Controller) bucketSnapshot(now time.Time) []RequesterBucket {
	c.bktMu.Lock()
	defer c.bktMu.Unlock()
	if len(c.buckets) == 0 {
		return nil
	}
	out := make([]RequesterBucket, 0, len(c.buckets))
	for id, b := range c.buckets {
		b.refill(now, c.cfg.RequesterRate, c.cfg.RequesterBurst)
		out = append(out, RequesterBucket{Requester: id, Fill: b.fill, Burst: c.cfg.RequesterBurst})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Requester < out[j].Requester })
	return out
}
