// Package admission is REACT's overload-protection plane: it decides at
// submit time whether a task can plausibly be served before its deadline,
// and degrades gracefully when the answer is no. Without it the engine
// admits every task unconditionally, so under sustained overload the
// unassigned pool grows without bound, batches bloat, matcher latency
// climbs, and goodput (tasks completed within deadline) collapses — the
// regime Eq. 3 pruning mitigates too late, at graph-construction time
// instead of intake.
//
// The controller runs three gates, cheapest first:
//
//  1. Per-requester token buckets (rate fairness): a requester that
//     exceeds its refill rate is rejected with a retry-after hint sized
//     to the token deficit.
//  2. A global concurrency ceiling: when the live (unassigned + assigned)
//     population reaches MaxInflight, further submissions are rejected
//     with a retry-after hint sized to the fleet's median service time.
//  3. A predicted deadline-meeting probability: the fleet's pooled
//     power-law execution-time CCDF, discounted by the estimated queue
//     delay (backlog over online-worker capacity), yields P(meet) for
//     the incoming deadline; below the configured floor the task is
//     rejected as implausible.
//
// Between submissions, a CoDel-style shedder (codel.go) watches the
// sojourn time of the oldest unassigned task and, when it stays above
// target, sheds earliest-deadline victims at the standard
// interval/√count cadence — bounding queue delay for the tasks that
// remain instead of letting every deadline rot in the pool.
//
// All load signals are fed from the engine's event spine via Tap (never
// by polling the engine), so the controller adds no locking to the
// scheduling hot path. Every decision is typed (Decision / Status) and
// surfaces to clients through the wire layer's submit reply; shed
// victims carry taskq.CauseShed through the spine, journal, and tail
// watchers. See docs/ADMISSION.md.
package admission

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"react/internal/clock"
	"react/internal/powerlaw"
	"react/internal/taskq"
)

// Status classifies an admission decision. The strings are wire-visible:
// they appear verbatim in the submit reply's admission payload and as
// error codes, so clients switch on them.
type Status string

// Decision statuses. StatusShed never appears in a submit reply (a shed
// task was admitted earlier); it is the status tail watchers see on the
// CauseShed expiry event and the vocabulary reactload uses to split
// losses.
const (
	StatusAdmitted            Status = "admitted"
	StatusRejectedProbability Status = "rejected_probability"
	StatusRejectedRate        Status = "rejected_rate"
	StatusShed                Status = "shed"
)

// Retryable reports whether a client holding this status should retry
// the same submission later: rate/capacity rejections clear as load
// drains, probability rejections do not (the deadline only gets closer).
func (s Status) Retryable() bool { return s == StatusRejectedRate }

// Decision is the controller's verdict on one submission.
type Decision struct {
	Status Status
	// Probability is the predicted deadline-meeting probability at submit
	// time (carried on admissions too, so requesters can log it). Zero
	// when the fleet model is still cold.
	Probability float64
	// Floor is the configured rejection threshold, echoed for context.
	Floor float64
	// RetryAfter hints when a rejected submission is worth retrying
	// (zero for admissions and for permanent rejections).
	RetryAfter time.Duration
}

// Admitted reports whether the task entered the system.
func (d Decision) Admitted() bool { return d.Status == StatusAdmitted }

// Err converts a rejection into its typed error (nil for admissions).
func (d Decision) Err() error {
	if d.Admitted() {
		return nil
	}
	return &RejectionError{Decision: d}
}

// RejectionError is the typed, client-visible rejection. Transports
// unwrap it with errors.As to echo the status and retry-after hint.
type RejectionError struct {
	Decision Decision
}

func (e *RejectionError) Error() string {
	switch e.Decision.Status {
	case StatusRejectedProbability:
		return fmt.Sprintf("admission: rejected, deadline-meet probability %.3f below floor %.3f",
			e.Decision.Probability, e.Decision.Floor)
	case StatusRejectedRate:
		return fmt.Sprintf("admission: rejected, over rate or capacity limit (retry after %v)",
			e.Decision.RetryAfter)
	default:
		return fmt.Sprintf("admission: rejected (%s)", e.Decision.Status)
	}
}

// Config parameterizes a Controller. The zero value admits everything
// (every gate disabled) — admission is strictly opt-in, which is what
// keeps the deterministic simulation figures byte-identical.
type Config struct {
	// Clock supplies time for bucket refill, sojourn measurement, and
	// probability horizons. Defaults to the system clock; hosts with a
	// virtual clock must inject it.
	Clock clock.Clock
	// ProbFloor rejects tasks whose predicted deadline-meeting
	// probability falls below it. 0 disables the gate; 0.2 is a
	// reasonable production floor.
	ProbFloor float64
	// MinSamples is how many fleet execution-time samples the estimator
	// needs before the probability gate activates (cold starts admit
	// optimistically). Default 30.
	MinSamples int
	// MaxInflight caps the live (unassigned + assigned) population as
	// observed from the spine. 0 disables the ceiling.
	MaxInflight int
	// RequesterRate is each requester's sustained submissions/second;
	// RequesterBurst the bucket capacity (default 2×rate, minimum 1).
	// Rate 0 disables per-requester limiting.
	RequesterRate  float64
	RequesterBurst float64
	// ShedTarget is the CoDel sojourn target for the oldest unassigned
	// task (default 5s); ShedInterval the initial drop interval
	// (default 500ms). ShedTarget < 0 disables shedding.
	ShedTarget   time.Duration
	ShedInterval time.Duration
	// Workers reports the online worker count for the capacity estimate
	// (typically profile.Registry.CountConnected). Nil treats capacity
	// as unknown: the probability gate then ignores queue delay.
	Workers func() int
}

func (c Config) normalize() Config {
	if c.Clock == nil {
		c.Clock = clock.System{}
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 30
	}
	if c.ShedTarget == 0 {
		c.ShedTarget = 5 * time.Second
	}
	if c.ShedInterval <= 0 {
		c.ShedInterval = 500 * time.Millisecond
	}
	if c.RequesterRate > 0 && c.RequesterBurst < 1 {
		c.RequesterBurst = 2 * c.RequesterRate
		if c.RequesterBurst < 1 {
			c.RequesterBurst = 1
		}
	}
	return c
}

// Controller is one region's admission plane. All methods are safe for
// concurrent use; Decide and Tap touch disjoint locks from the engine's,
// so neither can extend a scheduling critical section.
type Controller struct {
	cfg Config
	clk clock.Clock

	// Load signals maintained by the spine tap (tap.go).
	inflight   atomic.Int64
	unassigned atomic.Int64

	// fitMu guards the pooled fleet execution-time fitter. Tap updates
	// it on every completion; Decide reads a Model from it.
	fitMu sync.Mutex
	fit   powerlaw.Fitter

	// bktMu guards the per-requester token buckets (bucket.go).
	bktMu   sync.Mutex
	buckets map[string]*bucket

	// shedMu guards the CoDel state machine (codel.go).
	shedMu     sync.Mutex
	aboveSince time.Time
	dropNext   time.Time
	dropCount  int

	// Decision counters, exposed via Snapshot and the obs collector.
	admitted     atomic.Int64
	rejectedProb atomic.Int64
	rejectedRate atomic.Int64
	shedTotal    atomic.Int64

	// observer, when set, sees every Decide verdict (obs feeds its
	// probability histogram from it). Called outside all locks.
	obsMu    sync.Mutex
	observer func(Decision)
}

// New creates a controller. Attach it to an engine with
// eng.Events().Tap(c.Tap) before traffic starts.
func New(cfg Config) *Controller {
	cfg = cfg.normalize()
	return &Controller{cfg: cfg, clk: cfg.Clock, buckets: make(map[string]*bucket)}
}

// Config reports the normalized configuration.
func (c *Controller) Config() Config { return c.cfg }

// SetObserver installs fn as the per-decision observer (nil clears it).
func (c *Controller) SetObserver(fn func(Decision)) {
	c.obsMu.Lock()
	c.observer = fn
	c.obsMu.Unlock()
}

func (c *Controller) observe(d Decision) {
	c.obsMu.Lock()
	fn := c.observer
	c.obsMu.Unlock()
	if fn != nil {
		fn(d)
	}
}

// Decide runs the admission gates for one submission. requester
// identifies the submitting party for rate fairness ("" is exempt from
// the per-requester bucket — internal resubmission paths use it). The
// task is NOT submitted; the caller submits only on an admitted verdict.
func (c *Controller) Decide(requester string, t taskq.Task) Decision {
	now := c.clk.Now()

	if c.cfg.RequesterRate > 0 && requester != "" {
		if wait := c.takeToken(requester, now); wait > 0 {
			c.rejectedRate.Add(1)
			d := Decision{Status: StatusRejectedRate, RetryAfter: wait}
			c.observe(d)
			return d
		}
	}

	if c.cfg.MaxInflight > 0 && int(c.inflight.Load()) >= c.cfg.MaxInflight {
		c.rejectedRate.Add(1)
		d := Decision{Status: StatusRejectedRate, RetryAfter: c.drainHint()}
		c.observe(d)
		return d
	}

	prob, modeled := c.probMeet(t.Deadline.Sub(now))
	if modeled && c.cfg.ProbFloor > 0 && prob < c.cfg.ProbFloor {
		c.rejectedProb.Add(1)
		d := Decision{Status: StatusRejectedProbability, Probability: prob, Floor: c.cfg.ProbFloor}
		c.observe(d)
		return d
	}

	c.admitted.Add(1)
	d := Decision{Status: StatusAdmitted, Probability: prob, Floor: c.cfg.ProbFloor}
	c.observe(d)
	return d
}

// probMeet predicts the probability that a task with the given time to
// deadline completes on time: the fleet CCDF evaluated at the deadline
// budget left after the estimated queue delay (backlog spread across
// online workers, each slot costing one median service time). The second
// return is false while the fleet model is cold (too few samples), in
// which case the probability gate must not reject.
func (c *Controller) probMeet(ttd time.Duration) (float64, bool) {
	if ttd <= 0 {
		return 0, true
	}
	c.fitMu.Lock()
	n := c.fit.N()
	model, err := c.fit.Model()
	c.fitMu.Unlock()
	if n < c.cfg.MinSamples || err != nil {
		return 0, false
	}
	budget := ttd.Seconds()
	if c.cfg.Workers != nil {
		if w := c.cfg.Workers(); w > 0 {
			budget -= float64(c.unassigned.Load()) / float64(w) * model.Median()
		} else {
			// No workers online: nothing can be served before any deadline.
			return 0, true
		}
	}
	if budget <= 0 {
		return 0, true
	}
	return model.ProbMeetDeadline(budget), true
}

// drainHint sizes the retry-after for a capacity rejection: one median
// service time (the cadence at which in-flight slots free up), or a
// conservative constant while the model is cold.
func (c *Controller) drainHint() time.Duration {
	c.fitMu.Lock()
	n := c.fit.N()
	model, err := c.fit.Model()
	c.fitMu.Unlock()
	if n < c.cfg.MinSamples || err != nil {
		return time.Second
	}
	d := time.Duration(model.Median() * float64(time.Second))
	if d < 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// RequesterBucket is one requester's bucket state in a Snapshot.
type RequesterBucket struct {
	Requester string  `json:"requester"`
	Fill      float64 `json:"fill"`  // tokens currently available
	Burst     float64 `json:"burst"` // bucket capacity
}

// Snapshot is a point-in-time view of the admission plane for /statusz
// and reactctl top. Counters are monotonic; gauges are instantaneous.
type Snapshot struct {
	ProbFloor           float64           `json:"prob_floor"`
	MaxInflight         int               `json:"max_inflight"`
	Inflight            int64             `json:"inflight"`
	Unassigned          int64             `json:"unassigned"`
	WorkersOnline       int               `json:"workers_online"`
	FleetSamples        int               `json:"fleet_samples"`
	MedianExecSeconds   float64           `json:"median_exec_seconds"`
	CapacityPerSec      float64           `json:"capacity_per_sec"`
	Admitted            int64             `json:"admitted"`
	RejectedProbability int64             `json:"rejected_probability"`
	RejectedRate        int64             `json:"rejected_rate"`
	Shed                int64             `json:"shed"`
	Buckets             []RequesterBucket `json:"buckets,omitempty"`
}

// Counters reads the monotonic decision counters. Unlike Snapshot it
// does no bucket or model work, so scrape-time metric funcs can call it
// freely.
func (c *Controller) Counters() (admitted, rejectedProbability, rejectedRate, shed int64) {
	return c.admitted.Load(), c.rejectedProb.Load(), c.rejectedRate.Load(), c.shedTotal.Load()
}

// Loads reads the instantaneous spine-maintained load gauges.
func (c *Controller) Loads() (inflight, unassigned int64) {
	return c.inflight.Load(), c.unassigned.Load()
}

// FleetModel reports the pooled execution-time model: sample count, and
// — once warm — the median service time in seconds. ok is false while
// the model is cold (below MinSamples or unfittable).
func (c *Controller) FleetModel() (samples int, medianSeconds float64, ok bool) {
	c.fitMu.Lock()
	samples = c.fit.N()
	model, err := c.fit.Model()
	c.fitMu.Unlock()
	if err != nil || samples < c.cfg.MinSamples {
		return samples, 0, false
	}
	return samples, model.Median(), true
}

// Snapshot captures the current state. The bucket list is refreshed to
// now (so fills reflect elapsed refill) and sorted by requester.
func (c *Controller) Snapshot() Snapshot {
	s := Snapshot{
		ProbFloor:           c.cfg.ProbFloor,
		MaxInflight:         c.cfg.MaxInflight,
		Inflight:            c.inflight.Load(),
		Unassigned:          c.unassigned.Load(),
		Admitted:            c.admitted.Load(),
		RejectedProbability: c.rejectedProb.Load(),
		RejectedRate:        c.rejectedRate.Load(),
		Shed:                c.shedTotal.Load(),
		Buckets:             c.bucketSnapshot(c.clk.Now()),
	}
	if c.cfg.Workers != nil {
		s.WorkersOnline = c.cfg.Workers()
	}
	samples, median, warm := c.FleetModel()
	s.FleetSamples = samples
	if warm {
		s.MedianExecSeconds = median
		if median > 0 {
			s.CapacityPerSec = float64(s.WorkersOnline) / median
		}
	}
	return s
}
