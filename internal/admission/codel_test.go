package admission

import (
	"fmt"
	"math"
	"testing"
	"time"

	"react/internal/clock"
	"react/internal/taskq"
)

// fakePool is an in-memory Pool: tasks stay in submission order, Shed
// removes by id and logs the victim sequence.
type fakePool struct {
	tasks []taskq.Task
	shed  []string
	fail  map[string]bool // ids whose Shed call should error
}

func (p *fakePool) Unassigned() []taskq.Task {
	out := make([]taskq.Task, len(p.tasks))
	copy(out, p.tasks)
	return out
}

func (p *fakePool) Shed(id string) error {
	if p.fail[id] {
		return fmt.Errorf("fake: %s raced away", id)
	}
	for i, t := range p.tasks {
		if t.ID == id {
			p.tasks = append(p.tasks[:i], p.tasks[i+1:]...)
			p.shed = append(p.shed, id)
			return nil
		}
	}
	return taskq.ErrUnknownTask
}

func (p *fakePool) add(id string, submitted time.Time, deadline time.Time) {
	p.tasks = append(p.tasks, taskq.Task{ID: id, Submitted: submitted, Deadline: deadline})
}

func TestVictimIndex(t *testing.T) {
	mk := func(id string, ttd time.Duration) taskq.Task {
		return taskq.Task{ID: id, Deadline: t0.Add(ttd)}
	}
	cases := []struct {
		name    string
		waiting []taskq.Task
		want    int
	}{
		{"single", []taskq.Task{mk("a", time.Second)}, 0},
		{"earliest deadline wins", []taskq.Task{mk("a", 3 * time.Second), mk("b", time.Second), mk("c", 2 * time.Second)}, 1},
		{"tie broken by smaller id", []taskq.Task{mk("b", time.Second), mk("a", time.Second)}, 1},
		{"tie keeps first when already smallest", []taskq.Task{mk("a", time.Second), mk("b", time.Second)}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := victimIndex(tc.waiting); got != tc.want {
				t.Fatalf("victimIndex = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestShedStateMachine(t *testing.T) {
	const (
		target   = 5 * time.Second
		interval = 500 * time.Millisecond
	)
	clk := clock.NewVirtual(t0)
	c := New(Config{Clock: clk, ShedTarget: target, ShedInterval: interval})
	pool := &fakePool{}

	// Empty pool: nothing to do.
	if got := c.TickShed(pool); got != 0 {
		t.Fatalf("empty pool shed %d", got)
	}

	// Oldest sojourn below target: not even armed.
	pool.add("t1", clk.Now(), clk.Now().Add(time.Hour))
	clk.Advance(target - time.Millisecond)
	if got := c.TickShed(pool); got != 0 {
		t.Fatalf("below target shed %d", got)
	}
	if !c.aboveSince.IsZero() {
		t.Fatal("armed below target")
	}

	// First tick above target arms the interval without shedding — a burst
	// that drains within one interval must cost nothing.
	clk.Advance(2 * time.Millisecond)
	if got := c.TickShed(pool); got != 0 {
		t.Fatalf("arming tick shed %d", got)
	}
	if c.aboveSince.IsZero() {
		t.Fatal("not armed above target")
	}

	// Still above target when the interval elapses: one victim.
	clk.Advance(interval)
	if got := c.TickShed(pool); got != 1 {
		t.Fatalf("first drop shed %d, want 1", got)
	}
	if len(pool.shed) != 1 || pool.shed[0] != "t1" {
		t.Fatalf("shed %v, want [t1]", pool.shed)
	}

	// Pool now empty: the episode resets (dropCount back to 0).
	if got := c.TickShed(pool); got != 0 {
		t.Fatalf("post-drain tick shed %d", got)
	}
	if c.dropCount != 0 || !c.aboveSince.IsZero() {
		t.Fatalf("episode not reset: dropCount=%d aboveSince=%v", c.dropCount, c.aboveSince)
	}
}

func TestShedSqrtCadence(t *testing.T) {
	// With the pool pinned above target, successive drops come at
	// interval/sqrt(1), /sqrt(2), /sqrt(3)... — CoDel's accelerating
	// schedule. Tick on a fine cadence and log virtual drop times.
	const (
		target   = time.Second
		interval = 900 * time.Millisecond
		dt       = 10 * time.Millisecond
	)
	clk := clock.NewVirtual(t0)
	c := New(Config{Clock: clk, ShedTarget: target, ShedInterval: interval})
	pool := &fakePool{}
	for i := 0; i < 8; i++ {
		pool.add(fmt.Sprintf("t%d", i), clk.Now(), clk.Now().Add(time.Duration(i+1)*time.Hour))
	}

	var drops []time.Duration // virtual offsets of each shed
	for elapsed := time.Duration(0); elapsed < 5*time.Second && len(pool.tasks) > 0; elapsed += dt {
		clk.Advance(dt)
		if n := c.TickShed(pool); n > 0 {
			for i := 0; i < n; i++ {
				drops = append(drops, clk.Now().Sub(t0))
			}
		}
	}
	if len(drops) < 4 {
		t.Fatalf("only %d drops in 5s, want >= 4", len(drops))
	}
	// First drop: one interval after arming (armed at first tick past
	// target = 1.01s, so ~1.91s).
	if drops[0] > 2*time.Second {
		t.Fatalf("first drop at %v, want ~1.91s", drops[0])
	}
	// After drop k the next is interval/sqrt(k) later, so gaps shrink as
	// 900ms, 636ms, 520ms... within one tick of quantization.
	for k := 1; k < 4; k++ {
		gap := drops[k] - drops[k-1]
		want := time.Duration(float64(interval) / math.Sqrt(float64(k)))
		diff := gap - want
		if diff < 0 {
			diff = -diff
		}
		if diff > dt {
			t.Fatalf("gap %d = %v, want ~interval/sqrt(%d) = %v", k, gap, k, want)
		}
		if k > 1 && gap > drops[k-1]-drops[k-2] {
			t.Fatalf("gaps not accelerating: %v after %v", gap, drops[k-1]-drops[k-2])
		}
	}
	// Victims must leave earliest-deadline-first.
	for i := 1; i < len(pool.shed); i++ {
		if pool.shed[i-1] > pool.shed[i] {
			t.Fatalf("victims out of deadline order: %v", pool.shed)
		}
	}
}

func TestShedDisabled(t *testing.T) {
	clk := clock.NewVirtual(t0)
	c := New(Config{Clock: clk, ShedTarget: -1})
	pool := &fakePool{}
	pool.add("t1", clk.Now(), clk.Now().Add(time.Hour))
	clk.Advance(time.Hour)
	if got := c.TickShed(pool); got != 0 {
		t.Fatalf("disabled shedder shed %d", got)
	}
}

func TestShedFailedVictimNotCounted(t *testing.T) {
	// A victim that races away (Shed errors) is skipped without counting,
	// and the pass moves on to the next victim on the same schedule.
	clk := clock.NewVirtual(t0)
	c := New(Config{Clock: clk, ShedTarget: time.Second, ShedInterval: 100 * time.Millisecond})
	pool := &fakePool{fail: map[string]bool{"t0": true}}
	pool.add("t0", clk.Now(), clk.Now().Add(time.Minute))
	pool.add("t1", clk.Now(), clk.Now().Add(2*time.Minute))

	clk.Advance(1100 * time.Millisecond)
	c.TickShed(pool) // arms with dropNext one interval out
	// Far enough past dropNext that the pass covers both scheduled drops:
	// the earliest-deadline victim (t0) errors and is not counted; t1 is
	// shed on the next slot.
	clk.Advance(400 * time.Millisecond)
	if got := c.TickShed(pool); got != 1 {
		t.Fatalf("shed %d, want 1 (failed victim uncounted)", got)
	}
	if len(pool.shed) != 1 || pool.shed[0] != "t1" {
		t.Fatalf("shed %v, want [t1]", pool.shed)
	}
}
