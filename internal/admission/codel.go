package admission

import (
	"math"
	"time"

	"react/internal/taskq"
)

// Pool is the slice of the engine the shedder needs: the unassigned
// snapshot (oldest submission first, the order taskq already guarantees)
// and the shed operation itself. *engine.Engine satisfies it via a thin
// adapter in the host (core wires its own engine in).
type Pool interface {
	// Unassigned snapshots the tasks waiting for a worker, oldest
	// submission first.
	Unassigned() []taskq.Task
	// Shed terminates one unassigned task with CauseShed attribution.
	Shed(taskID string) error
}

// TickShed runs one pass of the CoDel-style queue-delay shedder and
// returns how many tasks it shed. Hosts call it periodically (the live
// server from its poll loop, the overload bench between arrivals).
//
// The controlled quantity is the sojourn time of the oldest unassigned
// task — how long the head of the pool has waited for a worker. CoDel's
// state machine applies unchanged: the first time sojourn exceeds
// ShedTarget, arm a timer one ShedInterval out; if it is still above
// target when the timer fires, shed one victim and re-arm at
// interval/√count, shedding faster the longer the overload persists;
// the moment sojourn dips below target, disarm and reset.
//
// Victim selection is oldest-deadline-first: among the waiting tasks the
// one whose deadline is nearest is the least likely to be served in time
// (its budget is smallest while its queue delay is the same), so
// shedding it sacrifices the least expected goodput and frees the pool
// fastest for tasks that can still make it. Shed victims land as
// Expired with taskq.CauseShed on the event spine.
func (c *Controller) TickShed(pool Pool) int {
	if c.cfg.ShedTarget < 0 {
		return 0
	}
	now := c.clk.Now()

	waiting := pool.Unassigned()
	c.shedMu.Lock()
	defer c.shedMu.Unlock()
	if len(waiting) == 0 || now.Sub(waiting[0].Submitted) < c.cfg.ShedTarget {
		// Below target (or empty): leave the overload episode.
		c.aboveSince = time.Time{}
		c.dropCount = 0
		return 0
	}
	if c.aboveSince.IsZero() {
		// First observation above target: arm, don't shed yet — a brief
		// burst that drains within one interval costs nothing.
		c.aboveSince = now
		c.dropNext = now.Add(c.cfg.ShedInterval)
		return 0
	}

	shed := 0
	for !now.Before(c.dropNext) && len(waiting) > 0 {
		v := victimIndex(waiting)
		if err := pool.Shed(waiting[v].ID); err == nil {
			shed++
		}
		waiting = append(waiting[:v], waiting[v+1:]...)
		c.dropCount++
		c.dropNext = c.dropNext.Add(time.Duration(
			float64(c.cfg.ShedInterval) / math.Sqrt(float64(c.dropCount))))
	}
	return shed
}

// victimIndex picks the waiting task with the earliest deadline (ties
// broken by id for determinism).
func victimIndex(waiting []taskq.Task) int {
	v := 0
	for i := 1; i < len(waiting); i++ {
		switch {
		case waiting[i].Deadline.Before(waiting[v].Deadline):
			v = i
		case waiting[i].Deadline.Equal(waiting[v].Deadline) && waiting[i].ID < waiting[v].ID:
			v = i
		}
	}
	return v
}
