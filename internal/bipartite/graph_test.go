package bipartite

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// buildSmall constructs the worked example used across tests:
// 3 workers, 2 tasks, 4 edges.
func buildSmall(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3, 2)
	for _, w := range []string{"alice", "bob", "carol"} {
		if _, err := b.AddWorker(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, task := range []string{"traffic", "photo"} {
		if _, err := b.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	edges := []struct {
		w, tk string
		wt    float64
	}{
		{"alice", "traffic", 0.9},
		{"alice", "photo", 0.4},
		{"bob", "traffic", 0.7},
		{"carol", "photo", 0.8},
	}
	for _, e := range edges {
		if err := b.AddEdge(e.w, e.tk, e.wt); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := buildSmall(t)
	if g.NumWorkers() != 3 || g.NumTasks() != 2 || g.NumEdges() != 4 {
		t.Fatalf("dims = %d/%d/%d", g.NumWorkers(), g.NumTasks(), g.NumEdges())
	}
	if g.WorkerID(0) != "alice" || g.TaskID(1) != "photo" {
		t.Fatal("vertex id mapping broken")
	}
	if got := g.MaxWeight(); got != 0.9 {
		t.Fatalf("MaxWeight = %v", got)
	}
}

func TestBuilderRejectsDuplicates(t *testing.T) {
	var b Builder
	if _, err := b.AddWorker("w"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddWorker("w"); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("dup worker err = %v", err)
	}
	if _, err := b.AddTask("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddTask("t"); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("dup task err = %v", err)
	}
	if err := b.AddEdge("w", "t", 1); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge("w", "t", 2); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("dup edge err = %v", err)
	}
}

func TestBuilderRejectsUnknownAndNegative(t *testing.T) {
	var b Builder
	b.AddWorker("w")
	b.AddTask("t")
	if err := b.AddEdge("nope", "t", 1); !errors.Is(err, ErrUnknownVertex) {
		t.Fatalf("unknown worker err = %v", err)
	}
	if err := b.AddEdge("w", "nope", 1); !errors.Is(err, ErrUnknownVertex) {
		t.Fatalf("unknown task err = %v", err)
	}
	if err := b.AddEdge("w", "t", -0.5); !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("negative weight err = %v", err)
	}
	if err := b.AddEdgeIdx(5, 0, 1); !errors.Is(err, ErrUnknownVertex) {
		t.Fatalf("bad worker idx err = %v", err)
	}
	if err := b.AddEdgeIdx(0, -1, 1); !errors.Is(err, ErrUnknownVertex) {
		t.Fatalf("bad task idx err = %v", err)
	}
}

func TestIncidenceLists(t *testing.T) {
	g := buildSmall(t)
	// alice (worker 0) touches edges 0 and 1.
	we := g.WorkerEdges(0)
	if len(we) != 2 || g.Edge(int(we[0])).Task == g.Edge(int(we[1])).Task {
		t.Fatalf("alice edges = %v", we)
	}
	// traffic (task 0) touches alice and bob.
	te := g.TaskEdges(0)
	if len(te) != 2 {
		t.Fatalf("traffic edges = %v", te)
	}
	for _, ei := range te {
		if g.Edge(int(ei)).Task != 0 {
			t.Fatalf("task incidence list contains foreign edge %d", ei)
		}
	}
	// carol (worker 2) has exactly one edge, to photo.
	ce := g.WorkerEdges(2)
	if len(ce) != 1 || g.Edge(int(ce[0])).Weight != 0.8 {
		t.Fatalf("carol edges = %v", ce)
	}
}

func TestFullGraphShape(t *testing.T) {
	g := Full(10, 7, func(w, tk int) float64 { return float64(w*7+tk) / 70 })
	if g.NumWorkers() != 10 || g.NumTasks() != 7 || g.NumEdges() != 70 {
		t.Fatalf("dims = %d/%d/%d", g.NumWorkers(), g.NumTasks(), g.NumEdges())
	}
	for w := int32(0); w < 10; w++ {
		if len(g.WorkerEdges(w)) != 7 {
			t.Fatalf("worker %d degree %d", w, len(g.WorkerEdges(w)))
		}
	}
	for tk := int32(0); tk < 7; tk++ {
		if len(g.TaskEdges(tk)) != 10 {
			t.Fatalf("task %d degree %d", tk, len(g.TaskEdges(tk)))
		}
	}
}

func TestMatchingAddRemove(t *testing.T) {
	g := buildSmall(t)
	m := NewMatching(g)
	if err := m.Validate(); err != nil {
		t.Fatalf("empty matching invalid: %v", err)
	}
	// Select alice-traffic (edge 0).
	if err := m.Add(0); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 1 || m.Weight() != 0.9 {
		t.Fatalf("after add: size=%d weight=%v", m.Size(), m.Weight())
	}
	// alice-photo conflicts at alice.
	if err := m.Add(1); !errors.Is(err, ErrEdgeConflict) {
		t.Fatalf("conflicting add err = %v", err)
	}
	// bob-traffic conflicts at traffic.
	if err := m.Add(2); !errors.Is(err, ErrEdgeConflict) {
		t.Fatalf("conflicting add err = %v", err)
	}
	// carol-photo is independent.
	if err := m.Add(3); err != nil {
		t.Fatal(err)
	}
	if m.Size() != 2 || math.Abs(m.Weight()-1.7) > 1e-12 {
		t.Fatalf("size=%d weight=%v", m.Size(), m.Weight())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	// Remove and re-add.
	if err := m.Remove(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Remove(0); !errors.Is(err, ErrNotSelected) {
		t.Fatalf("double remove err = %v", err)
	}
	if err := m.Add(2); err != nil { // bob can now take traffic
		t.Fatal(err)
	}
	if m.Weight() != 1.5 {
		t.Fatalf("weight = %v, want 1.5", m.Weight())
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMatchingRangeErrors(t *testing.T) {
	m := NewMatching(buildSmall(t))
	if err := m.Add(-1); !errors.Is(err, ErrEdgeRange) {
		t.Fatalf("Add(-1) err = %v", err)
	}
	if err := m.Add(99); !errors.Is(err, ErrEdgeRange) {
		t.Fatalf("Add(99) err = %v", err)
	}
	if err := m.Remove(99); !errors.Is(err, ErrEdgeRange) {
		t.Fatalf("Remove(99) err = %v", err)
	}
	if m.Selected(-1) || m.Selected(99) {
		t.Fatal("out-of-range Selected returned true")
	}
}

func TestMatchingDoubleAdd(t *testing.T) {
	m := NewMatching(buildSmall(t))
	if err := m.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := m.Add(0); !errors.Is(err, ErrDuplicateEdge) {
		t.Fatalf("double add err = %v", err)
	}
}

func TestConflicts(t *testing.T) {
	g := buildSmall(t)
	m := NewMatching(g)
	m.Add(0) // alice-traffic
	m.Add(3) // carol-photo
	// alice-photo conflicts with both selected edges.
	conf := m.Conflicts(1)
	if len(conf) != 2 {
		t.Fatalf("Conflicts(alice-photo) = %v, want 2 edges", conf)
	}
	// bob-traffic conflicts with alice-traffic only.
	conf = m.Conflicts(2)
	if len(conf) != 1 || conf[0] != 0 {
		t.Fatalf("Conflicts(bob-traffic) = %v, want [0]", conf)
	}
	// A selected edge has no conflicts besides itself.
	if conf := m.Conflicts(0); conf != nil {
		t.Fatalf("Conflicts(selected) = %v, want nil", conf)
	}
}

func TestAssignments(t *testing.T) {
	g := buildSmall(t)
	m := NewMatching(g)
	m.Add(0)
	m.Add(3)
	got := m.Assignments()
	want := map[string]string{"traffic": "alice", "photo": "carol"}
	if len(got) != len(want) {
		t.Fatalf("Assignments = %v", got)
	}
	for task, worker := range want {
		if got[task] != worker {
			t.Fatalf("Assignments[%s] = %s, want %s", task, got[task], worker)
		}
	}
}

func TestPairsMatchesSelected(t *testing.T) {
	g := Full(5, 5, func(w, tk int) float64 { return 1 })
	m := NewMatching(g)
	for i := 0; i < 5; i++ {
		if err := m.Add(int32(i*5 + i)); err != nil { // diagonal
			t.Fatal(err)
		}
	}
	pairs := m.Pairs()
	if len(pairs) != 5 {
		t.Fatalf("Pairs() len = %d", len(pairs))
	}
	for _, e := range pairs {
		if e.Worker != e.Task {
			t.Fatalf("unexpected pair %v", e)
		}
	}
}

// Property: a random sequence of add/remove operations that respects the
// reported errors always leaves a valid matching.
func TestQuickRandomOpsKeepInvariants(t *testing.T) {
	f := func(seed int64, nOps uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Full(6, 6, func(w, tk int) float64 { return rng.Float64() })
		m := NewMatching(g)
		for i := 0; i < int(nOps); i++ {
			e := int32(rng.Intn(g.NumEdges()))
			if m.Selected(e) {
				if err := m.Remove(e); err != nil {
					return false
				}
			} else if err := m.Add(e); err != nil && !errors.Is(err, ErrEdgeConflict) {
				return false
			}
		}
		return m.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(17))}); err != nil {
		t.Fatal(err)
	}
}

// Property: weight accounting equals the sum over Pairs.
func TestQuickWeightAccounting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := Full(8, 8, func(w, tk int) float64 { return float64(rng.Intn(100)) / 100 })
		m := NewMatching(g)
		for i := 0; i < 40; i++ {
			e := int32(rng.Intn(g.NumEdges()))
			if m.Selected(e) {
				m.Remove(e)
			} else {
				m.Add(e) // conflicts allowed to fail silently
			}
		}
		var sum float64
		for _, e := range m.Pairs() {
			sum += e.Weight
		}
		diff := sum - m.Weight()
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(23))}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFullGraphBuild1000x1000(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g := Full(1000, 1000, func(w, tk int) float64 { return float64(w^tk) / 1024 })
		if g.NumEdges() != 1_000_000 {
			b.Fatal("bad edge count")
		}
	}
}

func BenchmarkMatchingAddRemove(b *testing.B) {
	g := Full(100, 100, func(w, tk int) float64 { return 1 })
	m := NewMatching(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := int32(i % g.NumEdges())
		if m.Selected(e) {
			m.Remove(e)
		} else {
			m.Add(e)
		}
	}
}

func ExampleMatching_Assignments() {
	b := NewBuilder(2, 2)
	b.AddWorker("w1")
	b.AddWorker("w2")
	b.AddTask("t1")
	b.AddTask("t2")
	b.AddEdge("w1", "t1", 0.9)
	b.AddEdge("w2", "t2", 0.8)
	g := b.Build()
	m := NewMatching(g)
	m.Add(0)
	m.Add(1)
	fmt.Printf("%s %s %.1f\n", m.Assignments()["t1"], m.Assignments()["t2"], m.Weight())
	// Output: w1 w2 1.7
}
